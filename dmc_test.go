package dmc_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dmc"
)

// Example reproduces the paper's Figure 1 scenario through the public
// API: two contrasting paths reach 100 % in-time delivery together when
// neither could alone.
func Example() {
	network := dmc.NewNetwork(10*dmc.Mbps, time.Second,
		dmc.Path{Name: "big", Bandwidth: 10 * dmc.Mbps, Delay: 600 * time.Millisecond, Loss: 0.10},
		dmc.Path{Name: "fast", Bandwidth: 1 * dmc.Mbps, Delay: 200 * time.Millisecond, Loss: 0},
	)
	sol, err := dmc.SolveQuality(network)
	if err != nil {
		panic(err)
	}
	fmt.Printf("quality: %.0f%%\n", sol.Quality*100)
	fmt.Printf("x_{1,2}: %.0f%%\n", sol.Fraction(dmc.Combo{1, 2})*100)
	// Output:
	// quality: 100%
	// x_{1,2}: 100%
}

// ExampleSolveMinCost shows the §VI-A objective: cheapest strategy above
// a quality floor.
func ExampleSolveMinCost() {
	network := dmc.NewNetwork(10*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Name: "cheap", Bandwidth: 50 * dmc.Mbps, Delay: 200 * time.Millisecond, Loss: 0.3, Cost: 1},
		dmc.Path{Name: "pricey", Bandwidth: 50 * dmc.Mbps, Delay: 100 * time.Millisecond, Loss: 0, Cost: 10},
	)
	sol, err := dmc.SolveMinCost(network, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f/s at quality %.0f%%\n", sol.Cost()/dmc.Mbps, sol.Quality*100)
	// Output:
	// cost 40/s at quality 100%
}

// ExampleOptimalTimeouts optimizes Eq. 34 retransmission timeouts under
// shifted-gamma delays (Experiment 2's setup).
func ExampleOptimalTimeouts() {
	network := dmc.NewNetwork(90*dmc.Mbps, 750*time.Millisecond,
		dmc.Path{Bandwidth: 80 * dmc.Mbps, Loss: 0.2,
			RandDelay: dmc.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}},
		dmc.Path{Bandwidth: 20 * dmc.Mbps, Loss: 0,
			RandDelay: dmc.ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}},
	)
	to, err := dmc.OptimalTimeouts(network, dmc.TimeoutOptions{})
	if err != nil {
		panic(err)
	}
	if _, ok := to.Get(0, 0); !ok {
		fmt.Println("t11: no useful retransmission exists")
	}
	t12, _ := to.Get(0, 1)
	fmt.Printf("t12 within paper's ±2ms: %v\n", t12 >= 613*time.Millisecond && t12 <= 617*time.Millisecond)
	// Output:
	// t11: no useful retransmission exists
	// t12 within paper's ±2ms: true
}

func TestFacadeEndToEndSession(t *testing.T) {
	network := dmc.NewNetwork(15*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Name: "p1", Bandwidth: 80 * dmc.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		dmc.Path{Name: "p2", Bandwidth: 20 * dmc.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
	sol, err := dmc.SolveQuality(network)
	if err != nil {
		t.Fatal(err)
	}
	to, err := dmc.DeterministicTimeouts(network, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim := dmc.NewSimulator(11)
	res, err := dmc.RunSession(sim, dmc.SessionConfig{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    dmc.LinksFromNetwork(network, 0),
		MessageCount: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.03 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestFacadeExactPipeline(t *testing.T) {
	network := dmc.NewNetwork(40*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Bandwidth: 80 * dmc.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		dmc.Path{Bandwidth: 20 * dmc.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
	en, err := dmc.ExactFromFloat(network)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := dmc.SolveQualityExact(en)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sol.Quality.Float64()
	if math.Abs(q-1) > 1e-12 {
		t.Errorf("exact quality %v, want 1", q)
	}
}

func TestFacadeAdaptorAndScheduler(t *testing.T) {
	network := dmc.NewNetwork(5*dmc.Mbps, 300*time.Millisecond,
		dmc.Path{Bandwidth: 10 * dmc.Mbps, Delay: 50 * time.Millisecond},
	)
	a, err := dmc.NewAdaptor(network)
	if err != nil {
		t.Fatal(err)
	}
	sol, solved, err := a.Solution()
	if err != nil || !solved {
		t.Fatalf("bootstrap solve failed: %v", err)
	}
	sel, err := dmc.NewDeficit(sol.X)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Select() < 0 {
		t.Error("selector returned invalid index")
	}
	if _, err := dmc.QualityUpperBound(network); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrInfeasible(t *testing.T) {
	network := dmc.NewNetwork(100*dmc.Mbps, 300*time.Millisecond,
		dmc.Path{Bandwidth: 10 * dmc.Mbps, Delay: 50 * time.Millisecond},
	)
	_, err := dmc.SolveMinCost(network, 1.0)
	if !errors.Is(err, dmc.ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

// TestFacadeScalableSolve: the public API must solve a network far past
// the dense n^m limit through the automatic CG dispatch, report the
// dispatch in Stats, and agree with the explicit CG entry point.
func TestFacadeScalableSolve(t *testing.T) {
	paths := make([]dmc.Path, 40)
	for i := range paths {
		paths[i] = dmc.Path{
			Bandwidth: 50 * dmc.Mbps,
			Delay:     time.Duration(50+10*i) * time.Millisecond,
			Loss:      0.01 * float64(i%10),
			Cost:      float64(i % 5),
		}
	}
	network := dmc.NewNetwork(1500*dmc.Mbps, time.Second, paths...)
	network.Transmissions = 4

	sol, err := dmc.SolveQuality(network)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Dispatch != dmc.DispatchCG {
		t.Errorf("dispatch = %v, want %v", sol.Stats.Dispatch, dmc.DispatchCG)
	}
	if sol.Quality <= 0 || sol.Quality > 1 {
		t.Errorf("quality = %v", sol.Quality)
	}
	direct, err := dmc.SolveQualityCG(network)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Quality != sol.Quality {
		t.Errorf("SolveQualityCG quality %v != dispatched %v", direct.Quality, sol.Quality)
	}
}

func TestFacadeLoadAwareAndRisk(t *testing.T) {
	network := dmc.NewNetwork(90*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Bandwidth: 80 * dmc.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		dmc.Path{Bandwidth: 20 * dmc.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
	sol, loads, err := dmc.SolveQualityLoadAware(network,
		[]dmc.LoadModel{{}, {QueueFactor: 500 * time.Microsecond}}, dmc.LoadAwareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 || sol.Quality <= 0 {
		t.Fatalf("load-aware: %v %v", sol.Quality, loads)
	}
	// Bistable configuration surfaces the documented error.
	_, _, err = dmc.SolveQualityLoadAware(network,
		[]dmc.LoadModel{{}, {QueueFactor: 40 * time.Millisecond}}, dmc.LoadAwareOptions{})
	if !errors.Is(err, dmc.ErrLoadAwareDiverged) {
		t.Errorf("want ErrLoadAwareDiverged, got %v", err)
	}

	safe, rep, err := dmc.SolveQualityRiskAdjusted(network, dmc.RiskOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max() > 0.05 || safe.Quality <= 0 {
		t.Errorf("risk-adjusted: %v risk %v", safe.Quality, rep.Max())
	}
	if errors.Is(dmc.ErrRiskUnattainable, dmc.ErrInfeasible) {
		t.Error("sentinel errors must be distinct")
	}
}

func TestFacadeGilbertElliott(t *testing.T) {
	ge, err := dmc.NewGilbertElliott(0.05, 0.15, 0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var lm dmc.LossModel = ge
	if lm.Rate() <= 0.19 || lm.Rate() >= 0.21 {
		t.Errorf("rate %v", lm.Rate())
	}
	if _, err := dmc.NewGilbertElliott(-1, 0, 0, 0); err == nil {
		t.Error("invalid GE accepted")
	}
	// Burst channels plug into LinkConfig through the façade.
	sim := dmc.NewSimulator(5)
	n := 0
	link, err := dmc.NewLink(sim, dmc.LinkConfig{Name: "ge", LossModel: ge}, func(dmc.Packet) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		link.Send(dmc.Packet{Bytes: 10})
	}
	sim.Run()
	if n == 0 || n == 100 {
		t.Errorf("delivered %d of 100 through a 20%% burst channel", n)
	}
}

func TestFacadeLinkDirectUse(t *testing.T) {
	sim := dmc.NewSimulator(3)
	got := 0
	link, err := dmc.NewLink(sim, dmc.LinkConfig{
		Name:      "raw",
		Bandwidth: 1e6,
		Delay:     dmc.Deterministic{D: 10 * time.Millisecond},
	}, func(dmc.Packet) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	link.Send(dmc.Packet{Bytes: 100})
	sim.Run()
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}

// TestFacadeServer exercises the serving façade: NewServer over HTTP
// with a session-keyed warm re-solve and a metrics snapshot.
func TestFacadeServer(t *testing.T) {
	srv, err := dmc.NewServer(dmc.ServeConfig{Shards: 1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"network": {"rate_mbps": 10, "lifetime_ms": 1000,
		"paths": [{"bandwidth_mbps": 10, "delay_ms": 600, "loss": 0.1},
		          {"bandwidth_mbps": 1, "delay_ms": 200}]},
		"session_id": "facade"}`
	for round := 0; round < 2; round++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Result struct {
				Quality float64 `json:"quality"`
				Warm    bool    `json:"warm"`
			} `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		// The Figure 1 scenario delivers everything in time.
		if math.Abs(out.Result.Quality-1) > 1e-9 {
			t.Fatalf("round %d quality %v, want 1", round, out.Result.Quality)
		}
		if round > 0 && !out.Result.Warm {
			t.Error("re-solve on the same session was not warm")
		}
	}

	m := srv.Metrics()
	if m.Sessions != 1 || len(m.Shards) != 1 || m.Shards[0].Solves != 2 {
		t.Errorf("unexpected metrics: %+v", m)
	}
}

// Package dmc is the public API of the deadline-aware multipath
// communication library, a from-scratch Go reproduction of
//
//	Chuat, Perrig, Hu — "Deadline-Aware Multipath Communication:
//	An Optimization Problem", IEEE/IFIP DSN 2017.
//
// The library answers one question: given several end-to-end paths with
// different bandwidth, delay, loss, and cost, what fraction of a
// constant-rate data stream should be transmitted — and, after a loss,
// retransmitted — on each path so that as much data as possible arrives
// before its deadline?
//
// # Quick start
//
//	net := dmc.NewNetwork(10*dmc.Mbps, time.Second,
//		dmc.Path{Name: "lte", Bandwidth: 10 * dmc.Mbps, Delay: 600 * time.Millisecond, Loss: 0.10},
//		dmc.Path{Name: "wifi", Bandwidth: 1 * dmc.Mbps, Delay: 200 * time.Millisecond, Loss: 0},
//	)
//	sol, err := dmc.SolveQuality(net)
//	// sol.Quality == 1: everything arrives in time by sending on lte and
//	// retransmitting losses on wifi. sol.Fraction(dmc.Combo{1, 2}) == 1.
//
// # Layers
//
// Solving: SolveQuality (maximize delivered-in-time fraction, Eq. 10),
// SolveMinCost (§VI-A cost minimization under a quality floor), and
// SolveQualityRandom + OptimalTimeouts (§VI-B random delays, Eq. 26–34,
// with NewTimeoutCache memoizing tables across λ/µ/loss drift) all
// auto-dispatch between dense enumeration, dominance pruning, and
// column generation by problem size (SolveQualityCG, SolveMinCostCG,
// SolveQualityRandomCG are the CG cores, for combination spaces dense
// enumeration cannot materialize). Solver.Resolve, Solver.ResolveMinCost,
// and Solver.ResolveQualityRandom re-solve incrementally for drifting
// estimates: column tables rebuilt in place, CG pool retained and
// repriced, LP basis reused with newly priced columns appended onto the
// hot tableau; NewWarmPool shares that warm state across SolveMany
// workers for fleet-wide re-solve storms. SolveQualityExact solves with
// exact rational arithmetic, as the paper's CGAL setup.
//
// Scheduling: NewDeficit implements the paper's Algorithm 1, mapping the
// solved split to per-packet decisions.
//
// Simulation: NewSimulator/NewLink provide the discrete-event network
// substrate, and NewSession runs the full deadline-aware transport
// (retransmission timers, blackhole drops, acknowledgments, fast
// retransmit, vector acks) against it.
//
// Estimation: NewAdaptor maintains live loss/delay estimates (§VIII-A)
// and re-solves when they drift.
//
// Serving: NewServer runs the online solver service behind cmd/dmcd —
// sharded WarmPools answering session-keyed HTTP/JSON solve requests,
// with request coalescing into batched solve waves, per-session
// estimator feeds, admission control, and per-shard metrics.
//
// The underlying implementations live in internal/ packages; this package
// re-exports the supported surface via type aliases, so the types here
// are identical to the internal ones.
package dmc

import (
	"math/big"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/estimate"
	"dmc/internal/netsim"
	"dmc/internal/proto"
	"dmc/internal/sched"
	"dmc/internal/serve"
)

// Bandwidth units in bits per second.
const (
	Kbps = core.Kbps
	Mbps = core.Mbps
	Gbps = core.Gbps
)

// Model types (Table I / §V).
type (
	// Path is one end-to-end path: bandwidth bᵢ, one-way delay dᵢ,
	// erasure probability τᵢ, per-bit cost cᵢ, optional delay
	// distribution.
	Path = core.Path
	// Network is a scenario: paths plus rate λ, lifetime δ, cost bound µ,
	// and the per-packet transmission budget m.
	Network = core.Network
	// Combo is a path combination (0 = blackhole, k = Paths[k-1]).
	Combo = core.Combo
	// Solution is an optimal sending strategy with its metrics.
	Solution = core.Solution
	// ComboShare pairs a combination with its traffic share.
	ComboShare = core.ComboShare
	// Timeouts is the pairwise retransmission timeout table t_{i,j}.
	Timeouts = core.Timeouts
	// TimeoutOptions tunes OptimalTimeouts' search.
	TimeoutOptions = core.TimeoutOptions
	// Solver is a reusable solve context: it owns the simplex tableau and
	// combination-enumeration workspaces, so repeated solves of
	// same-shaped networks allocate almost nothing after warmup. Its
	// Resolve method solves incrementally: when only λ/µ/loss/delay
	// drift between calls (the §VIII-A adaptive regime), column tables
	// are rebuilt in place, the column-generation pool is retained and
	// repriced, and the previous LP basis warm-starts the simplex —
	// typically ≥5× faster than a cold solve at CG scale, with identical
	// optima. Not safe for concurrent use; use one per goroutine, or
	// SolveMany.
	Solver = core.Solver
	// TimeoutCache memoizes OptimalTimeouts tables keyed by the delay
	// inputs alone (delay distributions, lifetime, search options), so
	// re-solves under λ/µ/loss drift reuse the table for free. Safe for
	// concurrent use.
	TimeoutCache = core.TimeoutCache
	// WarmPool shares incremental re-solve state (column tables, CG
	// pools, LP bases) across fleet re-solves: a striped, shape-keyed
	// pool of warm Solvers with positional (SolveMany, SolveManyMinCost,
	// SolveManyRandom) and session-keyed (SolveSession, DropSession)
	// entry points. Safe for concurrent use; see NewWarmPool.
	WarmPool = core.WarmPool
	// SolveStats records which solve core ran (dense enumeration,
	// dominance-pruned dense, or column generation) and what it cost.
	SolveStats = core.SolveStats
	// Dispatch names a solve core in SolveStats.
	Dispatch = core.Dispatch
)

// Dispatch values reported in Solution.Stats.
const (
	// DispatchDense is plain dense enumeration of every combination.
	DispatchDense = core.DispatchDense
	// DispatchPruned is dense enumeration after dominance pruning.
	DispatchPruned = core.DispatchPruned
	// DispatchCG is column generation over a restricted master problem.
	DispatchCG = core.DispatchCG
)

// §IX extensions: load-dependent characteristics and risk adjustment.
type (
	// LoadModel describes how a path reacts to its own utilization
	// (§IX-A).
	LoadModel = core.LoadModel
	// PathLoad reports a converged load-aware operating point.
	PathLoad = core.PathLoad
	// LoadAwareOptions tunes the load-aware fixed-point solve.
	LoadAwareOptions = core.LoadAwareOptions
	// RiskReport holds §IX-C cap-exceedance probabilities.
	RiskReport = core.RiskReport
	// RiskOptions tunes the risk-adjusted solve.
	RiskOptions = core.RiskOptions
)

// Exact (rational-arithmetic) variants, mirroring the paper's CGAL use.
type (
	// ExactPath is a Path over math/big rationals.
	ExactPath = core.ExactPath
	// ExactNetwork is a Network over math/big rationals.
	ExactNetwork = core.ExactNetwork
	// ExactSolution is an exact optimal strategy.
	ExactSolution = core.ExactSolution
	// ExactComboShare pairs a combination with its exact share.
	ExactComboShare = core.ExactComboShare
)

// Delay distributions (§VI-B).
type (
	// Delay models a path's one-way delay distribution.
	Delay = dist.Delay
	// Deterministic is a fixed delay.
	Deterministic = dist.Deterministic
	// ShiftedGamma is the paper's Internet delay model (Eq. 31).
	ShiftedGamma = dist.ShiftedGamma
	// Uniform is a uniform jitter model.
	Uniform = dist.Uniform
)

// Scheduling (Algorithm 1 and baselines).
type (
	// Selector assigns packets to path combinations.
	Selector = sched.Selector
	// Deficit is the paper's Algorithm 1 selector.
	Deficit = sched.Deficit
)

// Simulation substrate and transport.
type (
	// Simulator is the deterministic discrete-event engine.
	Simulator = netsim.Simulator
	// Link is a point-to-point lossy bottleneck link.
	Link = netsim.Link
	// LinkConfig describes a Link.
	LinkConfig = netsim.LinkConfig
	// LinkStats counts link activity.
	LinkStats = netsim.LinkStats
	// Packet is the unit of simulated transfer.
	Packet = netsim.Packet
	// LossModel is the per-packet erasure channel interface.
	LossModel = netsim.LossModel
	// BernoulliLoss is the paper's memoryless erasure channel (§IV).
	BernoulliLoss = netsim.BernoulliLoss
	// GilbertElliott is a two-state burst-loss channel (§IX-B).
	GilbertElliott = netsim.GilbertElliott
	// Session is a full client/server transport run.
	Session = proto.Session
	// SessionConfig configures a Session.
	SessionConfig = proto.Config
	// SessionResult aggregates a finished Session.
	SessionResult = proto.Result
)

// Serving (the cmd/dmcd online solver service).
type (
	// ServeConfig tunes a served solver fleet: shard count, wave
	// coalescing window and batch cap, admission queue bound, and the
	// estimator feeds' drift tolerance. The zero value selects
	// production defaults.
	ServeConfig = serve.Config
	// Server is the online solver service: sharded WarmPools answering
	// session-keyed solve/observe requests over HTTP/JSON, with
	// admission control and graceful drain on Close.
	Server = serve.Server
	// ServeMetrics is the /metrics document: uptime, live sessions, and
	// per-shard counters.
	ServeMetrics = serve.Metrics
	// ShardMetrics is one shard's /metrics entry: solves, waves, warm
	// hit rate, rejections, solves/sec, and p50/p99 latency.
	ShardMetrics = serve.ShardMetrics
)

// Estimation (§VIII-A).
type (
	// Adaptor tracks live estimates and re-solves on drift.
	Adaptor = estimate.Adaptor
	// LossEstimator counts losses per path.
	LossEstimator = estimate.Loss
	// RTTEstimator is the RFC 6298 smoothed RTT.
	RTTEstimator = estimate.RTT
	// GammaFit fits a ShiftedGamma from delay samples.
	GammaFit = estimate.GammaFit
	// RateMeter measures achieved throughput.
	RateMeter = estimate.RateMeter
)

// NewNetwork returns a Network with rate λ (bits/s), lifetime δ, the
// given paths, an unlimited cost budget, and 2 transmissions per packet.
func NewNetwork(rate float64, lifetime time.Duration, paths ...Path) *Network {
	return core.NewNetwork(rate, lifetime, paths...)
}

// SolveQuality maximizes the communication quality Q (Eq. 10) with a
// pooled reusable solver. Dispatch scales automatically with the
// combination count (n+1)^m: dense enumeration for small spaces,
// dominance-pruned enumeration for mid-size ones, and column generation
// (SolveQualityCG) beyond that — 40 paths at 4 transmissions solves in
// tens of milliseconds. Solution.Stats reports which core ran.
func SolveQuality(n *Network) (*Solution, error) { return core.SolveQuality(n) }

// SolveQualityCG solves the quality maximization by column generation
// over a restricted master problem, pricing columns from the simplex
// duals without materializing the (n+1)^m combination space. It reaches
// the same optimum as dense enumeration; most callers want SolveQuality,
// which dispatches here automatically for large instances.
func SolveQualityCG(n *Network) (*Solution, error) { return core.SolveQualityCG(n) }

// NewSolver returns a reusable Solver for hot loops that solve many
// same-shaped networks (adaptive re-solves, sweeps): tableau, basis, and
// enumeration buffers are kept across calls. For repeated solves of ONE
// network shape under drifting estimates, use the Solver's Resolve
// method — the incremental path that reuses columns, the CG pool, and
// the LP basis across solves.
func NewSolver() *Solver { return core.NewSolver() }

// NewTimeoutCache returns an empty OptimalTimeouts cache keyed by the
// delay inputs alone — the Eq. 34 search never reads λ, µ, losses, or
// bandwidths, so adaptive re-solves under rate/budget/loss drift hit the
// cache for free.
func NewTimeoutCache() *TimeoutCache { return core.NewTimeoutCache() }

// SolveMany solves the quality maximization for every network, fanning
// the solves across GOMAXPROCS workers with per-worker reusable solvers.
// Results are in input order; on error, entries that did not solve are
// nil. Safe for concurrent use.
func SolveMany(nets []*Network) ([]*Solution, error) { return core.SolveMany(nets) }

// NewWarmPool returns an empty shared warm-solver pool with two kinds
// of entry point. The positional batch methods (SolveMany,
// SolveManyMinCost, SolveManyRandom) are the incremental counterparts
// of the package-level SolveMany: batch slot i re-solves on the solver
// that served slot i last time, so stable fleet orderings stay warm.
// The session-keyed methods (SolveSession, SolveSessionMinCost,
// SolveSessionRandom, DropSession) pin a caller-supplied key to its own
// warm solver, keeping basis and column-pool affinity as the fleet
// reorders, grows, and shrinks around it. Both share the
// Solver.Resolve result-invalidation contract: a Solution's slices are
// valid until the next solve that reuses its solver (same positional
// slot, or same session key).
func NewWarmPool() *WarmPool { return core.NewWarmPool() }

// SolveMinCost minimizes cost subject to a quality floor (§VI-A),
// auto-dispatching between dense enumeration, dominance pruning, and
// column generation by problem size.
func SolveMinCost(n *Network, minQuality float64) (*Solution, error) {
	return core.SolveMinCost(n, minQuality)
}

// SolveMinCostCG solves the §VI-A cost minimization by column
// generation: a feasibility stage grows the column pool until the
// quality floor is provably reachable (or certifies ErrInfeasible at
// the true quality optimum), then cost-reduced pricing runs to the
// certified minimum. Most callers want SolveMinCost, which dispatches
// here automatically for large instances.
func SolveMinCostCG(n *Network, minQuality float64) (*Solution, error) {
	return core.SolveMinCostCG(n, minQuality)
}

// SolveQualityRandom solves the random-delay model (§VI-B) with the given
// retransmission timeouts, auto-dispatching between dense enumeration
// and column generation by pair count.
func SolveQualityRandom(n *Network, to *Timeouts) (*Solution, error) {
	return core.SolveQualityRandom(n, to)
}

// SolveQualityRandomCG solves the §VI-B random-delay model by column
// generation over the (n+1)² pair space, pricing pairs by an exact scan
// of once-per-solve Eq. 27–30 tables. Most callers want
// SolveQualityRandom, which dispatches here automatically for large
// path counts.
func SolveQualityRandomCG(n *Network, to *Timeouts) (*Solution, error) {
	return core.SolveQualityRandomCG(n, to)
}

// SolveQualityExact solves with exact rational arithmetic.
func SolveQualityExact(n *ExactNetwork) (*ExactSolution, error) {
	return core.SolveQualityExact(n)
}

// SolveMinCostExact solves the §VI-A cost minimization with exact
// rational arithmetic — the differential reference for the float
// min-cost solve paths.
func SolveMinCostExact(n *ExactNetwork, minQuality *big.Rat) (*ExactSolution, error) {
	return core.SolveMinCostExact(n, minQuality)
}

// ExactFromFloat converts a float Network to an exact one.
func ExactFromFloat(n *Network) (*ExactNetwork, error) { return core.ExactFromFloat(n) }

// OptimalTimeouts optimizes t_{i,j} per Eq. 26/34.
func OptimalTimeouts(n *Network, opts TimeoutOptions) (*Timeouts, error) {
	return core.OptimalTimeouts(n, opts)
}

// DeterministicTimeouts returns tᵢ = dᵢ + d_min + margin (Eq. 4).
func DeterministicTimeouts(n *Network, margin time.Duration) (*Timeouts, error) {
	return core.DeterministicTimeouts(n, margin)
}

// QualityUpperBound returns the best quality ignoring bandwidth and cost.
func QualityUpperBound(n *Network) (float64, error) { return core.QualityUpperBound(n) }

// NewDeficit returns the Algorithm 1 selector for a solved split.
func NewDeficit(x []float64) (*Deficit, error) { return sched.NewDeficit(x) }

// NewSimulator returns a deterministic discrete-event simulator.
func NewSimulator(seed uint64) *Simulator { return netsim.NewSimulator(seed) }

// NewLink creates a link inside sim delivering to the callback.
func NewLink(sim *Simulator, cfg LinkConfig, deliver func(Packet)) (*Link, error) {
	return netsim.NewLink(sim, cfg, deliver)
}

// NewSession wires a transport session over sim.
func NewSession(sim *Simulator, cfg SessionConfig) (*Session, error) {
	return proto.NewSession(sim, cfg)
}

// RunSession builds and runs a session in one call.
func RunSession(sim *Simulator, cfg SessionConfig) (*SessionResult, error) {
	return proto.Run(sim, cfg)
}

// LinksFromNetwork derives true link configurations from a network
// description (queueLimit 0 selects a 100-packet drop-tail buffer,
// negative means unlimited).
func LinksFromNetwork(n *Network, queueLimit int) []LinkConfig {
	return proto.LinksFromNetwork(n, queueLimit)
}

// NewAdaptor wraps a base network with live estimators (§VIII-A).
func NewAdaptor(base *Network) (*Adaptor, error) { return estimate.NewAdaptor(base) }

// NewServer starts the online solver service (sharded WarmPools, wave
// coalescing, estimator feeds, admission control, and — with
// ServeConfig.StateDir set — crash-safe session durability). Serve its
// Handler over HTTP — cmd/dmcd is the ready-made binary — and Close it
// to drain gracefully. The error is non-nil only when a configured
// state dir is unusable or holds records from a newer schema.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// SolveQualityLoadAware solves the §IX-A variant where path delay and
// loss respond to the solution's own traffic (non-linear, fixed-point
// iteration).
func SolveQualityLoadAware(n *Network, models []LoadModel, opts LoadAwareOptions) (*Solution, []PathLoad, error) {
	return core.SolveQualityLoadAware(n, models, opts)
}

// SolveQualityRiskAdjusted shrinks caps and re-solves (§IX-C) until the
// probability of exceeding any bandwidth or cost limit under packetized
// traffic is at most opts.Epsilon.
func SolveQualityRiskAdjusted(n *Network, opts RiskOptions) (*Solution, *RiskReport, error) {
	return core.SolveQualityRiskAdjusted(n, opts)
}

// NewGilbertElliott builds a §IX-B burst-loss channel for LinkConfig.
func NewGilbertElliott(pGoodToBad, pBadToGood, lossGood, lossBad float64) (*GilbertElliott, error) {
	return netsim.NewGilbertElliott(pGoodToBad, pBadToGood, lossGood, lossBad)
}

// ErrInfeasible marks unattainable quality targets in SolveMinCost.
var ErrInfeasible = core.ErrInfeasible

// ErrLoadAwareDiverged marks bistable §IX-A configurations with no
// interior fixed point (use LoadAwareOptions.UtilizationCap).
var ErrLoadAwareDiverged = core.ErrLoadAwareDiverged

// ErrRiskUnattainable marks §IX-C targets the adjustment loop could not
// reach.
var ErrRiskUnattainable = core.ErrRiskUnattainable

// Adaptive demonstrates the §VIII-A estimation loop: a sender that knows
// only its paths' bandwidths starts with optimistic defaults (0 % loss,
// as the paper suggests), observes acknowledgments, and re-solves the LP
// whenever its estimates drift (§VIII-B: re-solve "only when the
// estimations of network characteristics vary significantly").
//
// The live stream runs in epochs. After epoch 2 the Wi-Fi path silently
// degrades (loss jumps from 2 % to 25 %); the adaptor notices through its
// loss counters, re-solves, and shifts traffic to the LTE path with Wi-Fi
// losses covered by retransmissions.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"dmc"
)

const (
	epochs       = 6
	msgsPerEpoch = 8000
	degradeAt    = 2 // epoch index when wifi degrades
)

func main() {
	// Ground truth (unknown to the sender beyond interface specs).
	trueNet := dmc.NewNetwork(10*dmc.Mbps, 400*time.Millisecond,
		dmc.Path{Name: "wifi", Bandwidth: 10 * dmc.Mbps, Delay: 30 * time.Millisecond},
		dmc.Path{Name: "lte", Bandwidth: 8 * dmc.Mbps, Delay: 60 * time.Millisecond},
	)
	// The sender's base beliefs derate bandwidth by ~10%: planning for
	// 100% utilization invites queueing delay and drop-tail loss (§IX-A),
	// which would contaminate the loss estimates.
	base := dmc.NewNetwork(10*dmc.Mbps, 400*time.Millisecond,
		dmc.Path{Name: "wifi", Bandwidth: 9 * dmc.Mbps, Delay: 30 * time.Millisecond},
		dmc.Path{Name: "lte", Bandwidth: 7 * dmc.Mbps, Delay: 60 * time.Millisecond},
	)
	adaptor, err := dmc.NewAdaptor(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  wifi-loss(true)  est-loss  resolved  quality   strategy")
	for epoch := 0; epoch < epochs; epoch++ {
		// Ground truth for this epoch.
		truth := *trueNet
		truth.Paths = append([]dmc.Path(nil), trueNet.Paths...)
		wifiLoss := 0.02
		if epoch >= degradeAt {
			wifiLoss = 0.25
		}
		truth.Paths[0].Loss = wifiLoss
		truth.Paths[1].Loss = 0.01

		sol, resolved, err := adaptor.Solution()
		if err != nil {
			log.Fatal(err)
		}

		timeouts, err := dmc.DeterministicTimeouts(&truth, 20*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		sim := dmc.NewSimulator(uint64(1000 + epoch))
		res, err := dmc.RunSession(sim, dmc.SessionConfig{
			Solution:     sol,
			Timeouts:     timeouts,
			TruePaths:    dmc.LinksFromNetwork(&truth, 0),
			MessageCount: msgsPerEpoch,
			// Acknowledgments ride the lowest-delay path (wifi, Eq. 25),
			// which is exactly the path that degrades: §VIII-C vector
			// acks keep ack loss from triggering spurious retransmits.
			AckWindow: 64,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Feed observations back: per-path sends and erasures from the
		// link stats (in a real deployment both come from acknowledgment
		// bookkeeping), and RTT samples including queueing.
		for i, st := range res.PathStats {
			for k := 0; k < st.Accepted; k++ {
				adaptor.ObserveSend(i)
			}
			for k := 0; k < st.LossDrops; k++ {
				adaptor.ObserveLoss(i)
			}
			rtt := truth.Paths[i].Delay + truth.MinDelay() + st.MeanQueueDelay()
			adaptor.ObserveRTT(i, rtt)
		}
		// Forget half the loss history each epoch so the estimator tracks
		// the degradation instead of averaging over all time.
		adaptor.Forget(0.5)

		strategy := ""
		for _, cs := range sol.ActiveCombos(0.01) {
			strategy += fmt.Sprintf("%s=%.2f ", cs.Combo, cs.Fraction)
		}
		estLoss := adaptor.EstimatedNetwork().Paths[0].Loss
		fmt.Printf("%5d  %14.0f%%  %7.1f%%  %-8v  %6.2f%%  %s\n",
			epoch, wifiLoss*100, estLoss*100, resolved, res.Quality()*100, strategy)
	}

	fmt.Printf("\nLP re-solves across %d epochs: %d (re-solving only on drift, §VIII-B)\n",
		epochs, adaptor.Resolves())
}

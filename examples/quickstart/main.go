// Quickstart reproduces the paper's motivating scenario (Figure 1, §II):
// a 10 Mbps stream with a 1-second lifetime over two contrasting paths —
// high-bandwidth/high-delay/lossy vs low-bandwidth/low-latency/clean.
//
// Neither path alone can deliver everything in time: the big path loses
// 10 % with no time for a same-path retry, and the small path carries
// only a tenth of the rate. The optimizer finds the combination the paper
// describes: transmit everything on the big path and retransmit losses on
// the fast one, reaching 100 % in-time delivery.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dmc"
)

func main() {
	network := dmc.NewNetwork(10*dmc.Mbps, time.Second,
		dmc.Path{
			Name:      "high-bandwidth",
			Bandwidth: 10 * dmc.Mbps,
			Delay:     600 * time.Millisecond,
			Loss:      0.10,
		},
		dmc.Path{
			Name:      "low-latency",
			Bandwidth: 1 * dmc.Mbps,
			Delay:     200 * time.Millisecond,
			Loss:      0,
		},
	)

	solution, err := dmc.SolveQuality(network)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Scenario: λ = %.0f Mbps, lifetime δ = %v\n", network.Rate/dmc.Mbps, network.Lifetime)
	fmt.Printf("Optimal communication quality: %.1f%%\n\n", solution.Quality*100)

	fmt.Println("Strategy (path 0 is the blackhole = deliberate drop):")
	for _, cs := range solution.ActiveCombos(1e-9) {
		fmt.Printf("  %-6s carries %5.1f%% of the data, delivering it with probability %.2f\n",
			cs.Combo, cs.Fraction*100, cs.DeliveryProb)
	}

	fmt.Println("\nPath usage vs capacity:")
	for i, p := range network.Paths {
		fmt.Printf("  %-15s %5.2f / %5.2f Mbps\n", p.Name, solution.SentRate(i)/dmc.Mbps, p.Bandwidth/dmc.Mbps)
	}

	fmt.Println("\nFor comparison, each path on its own:")
	for i, p := range network.Paths {
		single, err := dmc.SolveQuality(network.SinglePath(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s alone reaches %.1f%%\n", p.Name, single.Quality*100)
	}

	timeouts := solution.Timeouts(0)
	fmt.Println("\nRetransmission timeouts (t = d_i + d_min, Eq. 4):")
	for i, p := range network.Paths {
		fmt.Printf("  after sending on %-15s wait %v\n", p.Name, timeouts[i])
	}
}

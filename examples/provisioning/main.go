// Provisioning explores the paper's §IX discussion topics — the effects
// the plain linear model abstracts away — using the library's extensions:
//
//  1. §IX-A load-dependent characteristics: queueing delay grows with a
//     path's own utilization, turning the LP into a fixed-point problem
//     (SolveQualityLoadAware), with explicit headroom for bistable cases.
//  2. §IX-C expectation vs realization: an expectation-tight solution
//     exceeds its bandwidth caps about half the time under packetized
//     traffic; SolveQualityRiskAdjusted shrinks the planning caps until
//     overflows become rare.
//  3. §IX-B correlated losses: the same average loss rate hurts more in
//     bursts; simulated with a Gilbert–Elliott channel against the
//     memoryless-loss optimum.
//
// Run with: go run ./examples/provisioning
package main

import (
	"fmt"
	"log"
	"time"

	"dmc"
)

func main() {
	network := dmc.NewNetwork(90*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Name: "path1", Bandwidth: 80 * dmc.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		dmc.Path{Name: "path2", Bandwidth: 20 * dmc.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)

	fmt.Println("=== 1. Load-dependent delay (§IX-A) ===")
	plain, err := dmc.SolveQuality(network)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load-blind LP:   quality %.2f%%\n", plain.Quality*100)

	models := []dmc.LoadModel{
		{},                                    // path1: plenty of slack per-packet
		{QueueFactor: 500 * time.Microsecond}, // path2: small buffer, delay grows with load
	}
	sol, loads, err := dmc.SolveQualityLoadAware(network, models, dmc.LoadAwareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load-aware LP:   quality %.2f%% (path2 effective delay %v at %.0f%% utilization)\n",
		sol.Quality*100, loads[1].EffectiveDelay.Round(time.Millisecond), loads[1].Utilization*100)

	// A bigger buffer makes the system bistable: usable ⇒ saturated ⇒
	// delay beyond the lifetime ⇒ unusable. The solve reports divergence;
	// planning with explicit headroom restores a stable operating point.
	big := []dmc.LoadModel{{}, {QueueFactor: 40 * time.Millisecond}}
	if _, _, err := dmc.SolveQualityLoadAware(network, big, dmc.LoadAwareOptions{}); err != nil {
		fmt.Printf("deep-buffer model: %v\n", err)
	}
	capped, cappedLoads, err := dmc.SolveQualityLoadAware(network, big, dmc.LoadAwareOptions{UtilizationCap: 0.85})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("…with 85%% cap:  quality %.2f%% (path2 at %.0f%% → delay %v)\n\n",
		capped.Quality*100, cappedLoads[1].Utilization*100,
		cappedLoads[1].EffectiveDelay.Round(time.Millisecond))

	fmt.Println("=== 2. Expectation vs realization (§IX-C) ===")
	report, err := plain.RiskReport(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tight LP:        P(path2 over 20 Mbps in a 1s window) = %.2f\n", report.Bandwidth[1])
	safe, safeReport, err := dmc.SolveQualityRiskAdjusted(network, dmc.RiskOptions{Epsilon: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("risk-adjusted:   P = %.3f at quality %.2f%% (was %.2f%%)\n\n",
		safeReport.Bandwidth[1], safe.Quality*100, plain.Quality*100)

	fmt.Println("=== 3. Burst loss vs memoryless loss (§IX-B) ===")
	// Experiment 1 setup: the model's 450/150 ms include headroom over the
	// true 400/100 ms propagation, and timeouts add the §VII 100 ms
	// margin over the true ack return time.
	trueNet := dmc.NewNetwork(90*dmc.Mbps, 800*time.Millisecond,
		dmc.Path{Name: "path1", Bandwidth: 80 * dmc.Mbps, Delay: 400 * time.Millisecond, Loss: 0.2},
		dmc.Path{Name: "path2", Bandwidth: 20 * dmc.Mbps, Delay: 100 * time.Millisecond, Loss: 0},
	)
	to, err := dmc.DeterministicTimeouts(trueNet, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	run := func(label string, mkLoss func() (dmc.LossModel, error)) {
		links := dmc.LinksFromNetwork(trueNet, 0)
		lm, err := mkLoss()
		if err != nil {
			log.Fatal(err)
		}
		links[0].LossModel = lm
		sim := dmc.NewSimulator(99)
		res, err := dmc.RunSession(sim, dmc.SessionConfig{
			Solution:     plain,
			Timeouts:     to,
			TruePaths:    links,
			MessageCount: 30000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s quality %.2f%% (retransmissions %d)\n", label, res.Quality()*100, res.Retransmissions)
	}
	run("memoryless 20% loss:", func() (dmc.LossModel, error) {
		return dmc.BernoulliLoss{P: 0.2}, nil
	})
	run("bursty 20% loss (GE):", func() (dmc.LossModel, error) {
		// π_bad = 0.2 with total loss in the bad state → same 20%
		// average, but ~200-packet (≈33 ms) outages.
		return dmc.NewGilbertElliott(0.00125, 0.005, 0, 1)
	})
	fmt.Println("\nSame average loss, different clustering: each outage dumps a")
	fmt.Println("clump of retransmissions on the backup path at once, spiking its")
	fmt.Println("queue past the deadline slack — the §IX-B caveat quantified.")
}

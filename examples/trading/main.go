// Trading explores the cost dimension of the model (§IV, §VI-A) on a
// market-data distribution scenario: three links with very different
// economics, as in the paper's introduction — fiber (cheap, slower),
// microwave (fast, lossy, expensive), and satellite (fast-ish, very
// expensive).
//
// Two questions the model answers:
//
//  1. Given a cost budget µ, what is the best achievable in-time delivery
//     (quality maximization, Eq. 10 with the cost row of Eq. 16)?
//  2. Given a quality floor, what is the cheapest strategy (§VI-A)?
//
// Run with: go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"dmc"
)

func network() *dmc.Network {
	// 40 Mbps of market data; updates stale after 25 ms.
	return dmc.NewNetwork(40*dmc.Mbps, 25*time.Millisecond,
		dmc.Path{
			Name:      "fiber",
			Bandwidth: 100 * dmc.Mbps,
			Delay:     17 * time.Millisecond, // refraction-limited glass
			Loss:      0.001,
			Cost:      1, // baseline $/bit
		},
		dmc.Path{
			Name:      "microwave",
			Bandwidth: 30 * dmc.Mbps,
			Delay:     11 * time.Millisecond, // near speed-of-light in air
			Loss:      0.05,                  // rain fade
			Cost:      8,
		},
		dmc.Path{
			Name:      "satellite",
			Bandwidth: 20 * dmc.Mbps,
			Delay:     14 * time.Millisecond, // LEO constellation
			Loss:      0.02,
			Cost:      20,
		},
	)
}

func main() {
	n := network()

	fmt.Println("=== Quality vs cost budget (Eq. 10 with Eq. 16 cost row) ===")
	fmt.Printf("%-14s %-10s %-10s\n", "budget (M$/s)", "quality", "spent")
	for _, budget := range []float64{0, 40e6, 80e6, 160e6, 400e6, math.Inf(1)} {
		nb := *n
		nb.CostBound = budget
		sol, err := dmc.SolveQuality(&nb)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f", budget/1e6)
		if math.IsInf(budget, 1) {
			label = "unlimited"
		}
		fmt.Printf("%-14s %8.2f%% %10.0f\n", label, sol.Quality*100, sol.Cost()/1e6)
	}

	fmt.Println("\n=== Cheapest strategy for a quality floor (§VI-A) ===")
	fmt.Printf("%-10s %-12s %s\n", "floor", "cost (M$/s)", "strategy")
	for _, floor := range []float64{0.90, 0.95, 0.99, 0.999} {
		sol, err := dmc.SolveMinCost(n, floor)
		if err != nil {
			log.Fatalf("floor %v: %v", floor, err)
		}
		strategy := ""
		for _, cs := range sol.ActiveCombos(1e-6) {
			strategy += fmt.Sprintf("%s=%.3f ", cs.Combo, cs.Fraction)
		}
		fmt.Printf("%8.1f%% %12.1f %s\n", floor*100, sol.Cost()/1e6, strategy)
	}

	// An unreachable floor returns ErrInfeasible: with 25 ms of lifetime
	// there is no time for any retransmission chain that fixes every loss.
	fmt.Println("\n=== Feasibility edge ===")
	if _, err := dmc.SolveMinCost(n, 1.0); err != nil {
		fmt.Printf("quality 100.0%%: %v\n", err)
	} else {
		fmt.Println("quality 100.0%: feasible")
	}

	// Tighter deadline: microwave becomes the only option and the cost
	// of quality rises steeply.
	fmt.Println("\n=== Deadline pressure (δ = 12 ms: only microwave arrives) ===")
	tight := network()
	tight.Lifetime = 12 * time.Millisecond
	for _, floor := range []float64{0.5, 0.7} {
		sol, err := dmc.SolveMinCost(tight, floor)
		if err != nil {
			fmt.Printf("floor %.0f%%: %v\n", floor*100, err)
			continue
		}
		fmt.Printf("floor %.0f%%: cost %.1f M$/s via", floor*100, sol.Cost()/1e6)
		for _, cs := range sol.ActiveCombos(1e-6) {
			fmt.Printf(" %s=%.3f", cs.Combo, cs.Fraction)
		}
		fmt.Println()
	}
}

// Videocall models a laptop on a video call, connected simultaneously to
// Wi-Fi and LTE — the paper's §II smartphone scenario with the §VI-B
// random-delay extension.
//
// Delays follow shifted gamma distributions (the paper's model for
// Internet paths, Eq. 31). The example optimizes the retransmission
// timeouts t_{i,j} (Eq. 34), solves the random-delay LP, then validates
// the strategy by running the full transport through the discrete-event
// simulator and comparing measured quality against the model's
// prediction.
//
// Run with: go run ./examples/videocall
package main

import (
	"fmt"
	"log"
	"time"

	"dmc"
)

func main() {
	// 8 Mbps of video with a 300 ms interactive budget.
	network := dmc.NewNetwork(8*dmc.Mbps, 300*time.Millisecond,
		dmc.Path{
			Name:      "wifi",
			Bandwidth: 12 * dmc.Mbps,
			Loss:      0.08, // interference bursts
			RandDelay: dmc.ShiftedGamma{Loc: 20 * time.Millisecond, Shape: 6, Scale: 5 * time.Millisecond},
		},
		dmc.Path{
			Name:      "lte",
			Bandwidth: 6 * dmc.Mbps,
			Loss:      0.01,
			RandDelay: dmc.ShiftedGamma{Loc: 45 * time.Millisecond, Shape: 8, Scale: 3 * time.Millisecond},
		},
	)

	fmt.Println("Optimizing retransmission timeouts (Eq. 34)...")
	timeouts, err := dmc.OptimalTimeouts(network, dmc.TimeoutOptions{})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"wifi", "lte"}
	for i := range network.Paths {
		for j := range network.Paths {
			if t, ok := timeouts.Get(i, j); ok {
				fmt.Printf("  sent on %-4s → retransmit on %-4s after %v\n",
					names[i], names[j], t.Round(time.Millisecond))
			} else {
				fmt.Printf("  sent on %-4s → retransmission on %-4s can never meet the deadline\n",
					names[i], names[j])
			}
		}
	}

	solution, err := dmc.SolveQualityRandom(network, timeouts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nModel prediction: %.2f%% of frames arrive within %v\n",
		solution.Quality*100, network.Lifetime)
	for _, cs := range solution.ActiveCombos(1e-4) {
		fmt.Printf("  %-6s share %5.1f%%  delivery prob %.3f\n", cs.Combo, cs.Fraction*100, cs.DeliveryProb)
	}

	// Validate against the simulator: ground truth = the same paths, with
	// extra raw capacity so only the modeled allowance is consumed.
	truth := dmc.LinksFromNetwork(network, 0)
	for i := range truth {
		truth[i].Bandwidth *= 4
	}
	sim := dmc.NewSimulator(2025)
	result, err := dmc.RunSession(sim, dmc.SessionConfig{
		Solution:     solution,
		Timeouts:     timeouts,
		TruePaths:    truth,
		MessageCount: 50_000,
		MessageBytes: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSimulated 50,000 frames: %.2f%% in time (model predicted %.2f%%)\n",
		result.Quality()*100, solution.Quality*100)
	fmt.Printf("  retransmissions: %d, duplicates: %d, late: %d\n",
		result.Retransmissions, result.Duplicates, result.DeliveredLate)
	for i, st := range result.PathStats {
		fmt.Printf("  %-4s accepted %6d packets, observed loss %.2f%%\n",
			names[i], st.Accepted, st.LossRate()*100)
	}
}

module dmc

go 1.24

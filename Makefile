# Single source of truth for the build/test/fuzz/bench commands; the CI
# workflow (.github/workflows/ci.yml) invokes these same targets.

# bash for pipefail: bench-compare pipes `go test` into the comparison
# script and must fail when the benchmark run itself fails mid-suite.
SHELL := /bin/bash

GO ?= go

.PHONY: all build vet lint fmt-check test chaos-smoke chaos-restart chaos-failover fuzz-smoke bench-smoke bench run-dmcd ci

all: build vet lint fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project's own analyzer suite (cmd/dmclint): faultpoint, lockheld,
# poolescape, atomicmix — see the "Static analysis" section of the
# README. staticcheck and govulncheck run when installed (CI installs
# them; offline checkouts skip without failing).
lint:
	$(GO) run ./cmd/dmclint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping"; fi

# Fails (and lists the offenders) when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -race ./...

# The serving stack's chaos drill: the fault-storm invariant test
# (internal/serve TestChaosFleetSurvivesFaultStorms) at full length —
# CHAOS_ITERS randomized storms under the race detector. The regular
# `make test` runs the same test at a few iterations; this target is
# the long soak CI runs on the serving path.
CHAOS_ITERS ?= 100
chaos-smoke:
	DMC_CHAOS_ITERS=$(CHAOS_ITERS) $(GO) test -race -count=1 -run '^TestChaosFleetSurvivesFaultStorms$$' -v ./internal/serve

# The durability chaos drill: RESTART_ITERS kill-9/restart cycles of a
# loaded fleet under seeded fault storms (internal/serve
# TestCrashRestartFleet), each cycle tearing the journal and asserting
# restored estimator state matches an uninterrupted reference exactly.
# `make test` runs the same test at 2 cycles; this is the long soak.
RESTART_ITERS ?= 10
chaos-restart:
	DMC_RESTART_ITERS=$(RESTART_ITERS) $(GO) test -race -count=1 -run '^TestCrashRestartFleet$$' -v ./internal/serve

# The replication chaos drill: FAILOVER_ITERS kill-9/promote cycles of
# a loaded primary/standby pair in sync-ack mode under seeded fault
# storms (internal/serve TestFailoverFleet), each cycle promoting the
# standby, fencing the dead primary's stale incarnation, and rejoining
# it as a follower — asserting bit-exact estimator state and zero
# acked-write loss across every failover. `make test` runs the same
# test at 2 cycles; this is the long soak.
FAILOVER_ITERS ?= 10
chaos-failover:
	DMC_FAILOVER_ITERS=$(FAILOVER_ITERS) $(GO) test -race -count=1 -run '^TestFailoverFleet$$' -v ./internal/serve

# Ten seconds per seed fuzz target. `go test -fuzz` accepts exactly one
# target per invocation, so each runs separately.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzSolveSmallLP$$' -fuzztime=$(FUZZTIME) ./internal/lp
	$(GO) test -run='^$$' -fuzz='^FuzzPruner$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzLoadNetwork$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzSolveRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzLoadSimulation$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/scenario

# One iteration of every benchmark: proves they run, not how fast.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The real benchmark suite (the paper's evaluation artifacts live in
# bench_test.go at the repo root); compare against BENCH_baseline.json.
BENCHTIME ?= 1s
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) .

# Runs the root benchmarks and diffs ns/op against BENCH_baseline.json:
# >25% regressions in the solve-core benchmarks (benchcmp's -critical
# set) fail the run, regressions in sweep/simulation benchmarks only
# warn. Override BENCHTIME (e.g. 100ms) for a quicker, noisier pass;
# set BENCH_WRITE to also snapshot the results.
BENCH_WRITE ?=
bench-compare:
	set -o pipefail; \
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./scripts/benchcmp -baseline BENCH_baseline.json \
			$(if $(BENCH_WRITE),-write $(BENCH_WRITE),)

# The online solver daemon (cmd/dmcd) on its default port; override
# DMCD_FLAGS for address/shard/queue tuning.
DMCD_FLAGS ?= -addr :7117
run-dmcd:
	$(GO) run ./cmd/dmcd $(DMCD_FLAGS)

ci: all chaos-smoke chaos-restart chaos-failover fuzz-smoke bench-smoke

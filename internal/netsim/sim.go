// Package netsim is a deterministic discrete-event network simulator: the
// repository's substitute for ns-3 (§VII-A).
//
// It provides exactly the primitives the paper's evaluation uses:
// point-to-point links with configurable bandwidth (serialization delay),
// propagation delay (fixed or drawn from a distribution), random loss, and
// finite drop-tail queues whose overflow produces the §VII Experiment 3
// congestion behaviour. Every random draw derives from a named, seeded
// stream, so simulations are bit-reproducible.
package netsim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"
)

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	seed   uint64
}

// NewSimulator returns a simulator at virtual time zero whose random
// streams all derive from seed.
func NewSimulator(seed uint64) *Simulator {
	return &Simulator{seed: seed}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// RNG returns a deterministic random stream derived from the simulator
// seed and a stream name. Components with distinct names draw from
// independent streams, so adding a component never perturbs the draws of
// another.
func (s *Simulator) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	a := h.Sum64()
	h.Write([]byte{0x5f})
	return rand.New(rand.NewPCG(a, h.Sum64()))
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	ev *event
}

// Cancel prevents the callback from running; it reports whether the timer
// was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.done {
		return false
	}
	t.ev.canceled = true
	return true
}

// Schedule runs fn after delay of virtual time (a non-positive delay runs
// at the current instant, after already-queued events for that instant).
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: s.now + delay, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event; it reports whether one ran.
func (s *Simulator) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		ev.done = true
		ev.fn()
		return true
	}
	return false
}

// Run processes events until none remain, returning the number executed.
func (s *Simulator) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil processes all events scheduled at or before deadline, then
// advances the clock to the deadline. It returns the number executed.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	n := 0
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&s.events)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		ev.done = true
		ev.fn()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Pending reports how many events (including canceled placeholders) are
// queued.
func (s *Simulator) Pending() int { return s.events.Len() }

type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	done     bool
}

// eventHeap orders by time, then by scheduling order for FIFO stability.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

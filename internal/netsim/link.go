package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"dmc/internal/dist"
)

// Packet is an opaque unit of transfer; Bytes drives serialization time
// and Payload carries protocol state.
type Packet struct {
	Bytes   int
	Payload any
}

// LinkConfig describes one unidirectional point-to-point link.
type LinkConfig struct {
	// Name labels the link's random streams and diagnostics.
	Name string
	// Bandwidth in bits/s drives serialization delay; 0 or +Inf means
	// infinite (no serialization).
	Bandwidth float64
	// Delay is the propagation delay distribution. Nil means zero delay.
	Delay dist.Delay
	// Loss is the per-packet erasure probability (the paper's binary
	// erasure channel, §IV).
	Loss float64
	// LossModel, when non-nil, replaces Loss with a stateful erasure
	// channel (e.g. *GilbertElliott for §IX-B burst loss). The instance
	// must be exclusive to this link.
	LossModel LossModel
	// QueueLimit bounds the packets buffered awaiting serialization
	// (drop-tail); 0 means unlimited. Overflow is how Experiment 3's
	// bandwidth-overestimation loss arises.
	QueueLimit int
	// EnforceFIFO clamps each arrival to be no earlier than the previous
	// one, preventing in-path reordering under random propagation delays
	// (real IP paths mostly preserve order; §VIII-D relies on it).
	EnforceFIFO bool
}

// LinkStats counts link activity.
type LinkStats struct {
	// Offered counts packets presented to Send.
	Offered int
	// Accepted counts packets that entered the transmit queue.
	Accepted int
	// QueueDrops counts drop-tail overflows.
	QueueDrops int
	// LossDrops counts random erasures.
	LossDrops int
	// Delivered counts packets handed to the receiver.
	Delivered int
	// BytesAccepted totals accepted payload sizes.
	BytesAccepted int64
	// TotalQueueDelay accumulates time spent waiting behind earlier
	// packets (excludes own serialization).
	TotalQueueDelay time.Duration
	// MaxQueueDelay is the worst single queue wait.
	MaxQueueDelay time.Duration
}

// LossRate returns observed erasures over accepted packets.
func (st LinkStats) LossRate() float64 {
	if st.Accepted == 0 {
		return 0
	}
	return float64(st.LossDrops) / float64(st.Accepted)
}

// MeanQueueDelay returns the average wait behind earlier packets.
func (st LinkStats) MeanQueueDelay() time.Duration {
	if st.Accepted == 0 {
		return 0
	}
	return st.TotalQueueDelay / time.Duration(st.Accepted)
}

// Link is a unidirectional lossy bottleneck link feeding a receiver
// callback.
type Link struct {
	sim     *Simulator
	cfg     LinkConfig
	rng     *rand.Rand
	deliver func(Packet)

	busyUntil   time.Duration
	queued      int
	lastArrival time.Duration
	stats       LinkStats
}

// NewLink creates a link inside sim delivering to the given callback.
func NewLink(sim *Simulator, cfg LinkConfig, deliver func(Packet)) (*Link, error) {
	if sim == nil {
		return nil, fmt.Errorf("netsim: nil simulator")
	}
	if deliver == nil {
		return nil, fmt.Errorf("netsim: link %q has no receiver", cfg.Name)
	}
	if cfg.Loss < 0 || cfg.Loss > 1 || math.IsNaN(cfg.Loss) {
		return nil, fmt.Errorf("netsim: link %q loss %v outside [0,1]", cfg.Name, cfg.Loss)
	}
	if cfg.Bandwidth < 0 || math.IsNaN(cfg.Bandwidth) {
		return nil, fmt.Errorf("netsim: link %q bandwidth %v invalid", cfg.Name, cfg.Bandwidth)
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("netsim: link %q queue limit %d negative", cfg.Name, cfg.QueueLimit)
	}
	if cfg.Delay == nil {
		cfg.Delay = dist.Deterministic{}
	}
	if cfg.LossModel == nil {
		cfg.LossModel = BernoulliLoss{P: cfg.Loss}
	}
	return &Link{
		sim:     sim,
		cfg:     cfg,
		rng:     sim.RNG("link/" + cfg.Name),
		deliver: deliver,
	}, nil
}

// Send offers a packet to the link. It returns false if the transmit
// queue is full (drop-tail). Loss en route is not reported to the sender —
// the erasure-channel semantics of §IV.
func (l *Link) Send(pkt Packet) bool {
	l.stats.Offered++
	if l.cfg.QueueLimit > 0 && l.queued >= l.cfg.QueueLimit {
		l.stats.QueueDrops++
		return false
	}
	now := l.sim.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	queueDelay := start - now
	serialization := time.Duration(0)
	if l.cfg.Bandwidth > 0 && !math.IsInf(l.cfg.Bandwidth, 1) {
		serialization = time.Duration(float64(pkt.Bytes*8) / l.cfg.Bandwidth * float64(time.Second))
	}
	l.busyUntil = start + serialization
	l.queued++

	l.stats.Accepted++
	l.stats.BytesAccepted += int64(pkt.Bytes)
	l.stats.TotalQueueDelay += queueDelay
	if queueDelay > l.stats.MaxQueueDelay {
		l.stats.MaxQueueDelay = queueDelay
	}

	lost := l.cfg.LossModel.Lost(l.rng)
	departAt := l.busyUntil
	l.sim.Schedule(departAt-now, func() {
		l.queued--
		if lost {
			l.stats.LossDrops++
			return
		}
		arrival := departAt + l.cfg.Delay.Sample(l.rng)
		if l.cfg.EnforceFIFO && arrival < l.lastArrival {
			arrival = l.lastArrival
		}
		l.lastArrival = arrival
		l.sim.Schedule(arrival-departAt, func() {
			l.stats.Delivered++
			l.deliver(pkt)
		})
	})
	return true
}

// QueueLen reports packets accepted but not yet fully serialized.
func (l *Link) QueueLen() int { return l.queued }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

package netsim

import (
	"math"
	"testing"
	"time"

	"dmc/internal/dist"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewSimulator(1)
	var order []int
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 10) }) // FIFO at same time
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	if n := s.Run(); n != 4 {
		t.Fatalf("ran %d events, want 4", n)
	}
	want := []int{1, 10, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestScheduleNestedAndNegative(t *testing.T) {
	s := NewSimulator(1)
	var hits []time.Duration
	s.Schedule(5*time.Millisecond, func() {
		hits = append(hits, s.Now())
		s.Schedule(-time.Second, func() { hits = append(hits, s.Now()) }) // clamps to now
		s.Schedule(5*time.Millisecond, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 3 || hits[0] != 5*time.Millisecond || hits[1] != 5*time.Millisecond || hits[2] != 10*time.Millisecond {
		t.Errorf("hits = %v", hits)
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewSimulator(1)
	fired := false
	tm := s.Schedule(10*time.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Error("second Cancel should fail")
	}
	s.Run()
	if fired {
		t.Error("canceled timer fired")
	}
	// Cancel after firing fails.
	tm2 := s.Schedule(time.Millisecond, func() {})
	s.Run()
	if tm2.Cancel() {
		t.Error("Cancel after firing should fail")
	}
	var nilTimer *Timer
	if nilTimer.Cancel() {
		t.Error("nil timer Cancel should fail")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	if n := s.RunUntil(5 * time.Second); n != 5 {
		t.Errorf("ran %d, want 5", n)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", s.Pending())
	}
	// Advancing to a quiet deadline moves the clock.
	s.RunUntil(20 * time.Second)
	if s.Now() != 20*time.Second || count != 10 {
		t.Errorf("Now = %v count = %d", s.Now(), count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewSimulator(42).RNG("x")
	b := NewSimulator(42).RNG("x")
	c := NewSimulator(42).RNG("y")
	d := NewSimulator(43).RNG("x")
	sameXY, sameSeed := true, true
	for i := 0; i < 100; i++ {
		av := a.Float64()
		if av != b.Float64() {
			t.Fatal("same seed+name diverged")
		}
		if av != c.Float64() {
			sameXY = false
		}
		if av != d.Float64() {
			sameSeed = false
		}
	}
	if sameXY {
		t.Error("different names produced identical streams")
	}
	if sameSeed {
		t.Error("different seeds produced identical streams")
	}
}

func mustLink(t *testing.T, s *Simulator, cfg LinkConfig, deliver func(Packet)) *Link {
	t.Helper()
	l, err := NewLink(s, cfg, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := NewSimulator(1)
	var arrivals []time.Duration
	l := mustLink(t, s, LinkConfig{
		Name:      "l",
		Bandwidth: 8000, // 1000 bytes/s
		Delay:     dist.Deterministic{D: 100 * time.Millisecond},
	}, func(Packet) { arrivals = append(arrivals, s.Now()) })

	// Two 100-byte packets sent back to back: serialization 100 ms each.
	l.Send(Packet{Bytes: 100})
	l.Send(Packet{Bytes: 100})
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	if arrivals[0] != 200*time.Millisecond {
		t.Errorf("first arrival %v, want 200ms (100 serialization + 100 propagation)", arrivals[0])
	}
	if arrivals[1] != 300*time.Millisecond {
		t.Errorf("second arrival %v, want 300ms (queued behind first)", arrivals[1])
	}
	st := l.Stats()
	if st.MeanQueueDelay() != 50*time.Millisecond || st.MaxQueueDelay != 100*time.Millisecond {
		t.Errorf("queue delay stats wrong: %+v", st)
	}
	if st.BytesAccepted != 200 || st.Delivered != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	s := NewSimulator(1)
	var got time.Duration
	l := mustLink(t, s, LinkConfig{Name: "inf", Delay: dist.Deterministic{D: 5 * time.Millisecond}},
		func(Packet) { got = s.Now() })
	l.Send(Packet{Bytes: 1 << 20})
	s.Run()
	if got != 5*time.Millisecond {
		t.Errorf("arrival %v, want 5ms (no serialization)", got)
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	s := NewSimulator(1)
	delivered := 0
	l := mustLink(t, s, LinkConfig{
		Name:       "q",
		Bandwidth:  8000,
		QueueLimit: 3,
	}, func(Packet) { delivered++ })
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(Packet{Bytes: 100}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d, want 3", accepted)
	}
	st := l.Stats()
	if st.QueueDrops != 7 || st.Offered != 10 {
		t.Errorf("stats: %+v", st)
	}
	if l.QueueLen() != 3 {
		t.Errorf("QueueLen = %d", l.QueueLen())
	}
	s.Run()
	if delivered != 3 || l.QueueLen() != 0 {
		t.Errorf("delivered %d queue %d", delivered, l.QueueLen())
	}
}

func TestLinkLossRateConverges(t *testing.T) {
	s := NewSimulator(99)
	delivered := 0
	l := mustLink(t, s, LinkConfig{Name: "lossy", Loss: 0.2}, func(Packet) { delivered++ })
	const n = 50000
	for i := 0; i < n; i++ {
		l.Send(Packet{Bytes: 100})
	}
	s.Run()
	got := float64(n-delivered) / n
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("loss rate %v, want ≈0.2", got)
	}
	if lr := l.Stats().LossRate(); math.Abs(lr-got) > 1e-12 {
		t.Errorf("LossRate() = %v, observed %v", lr, got)
	}
}

func TestLinkRandomDelayAndFIFO(t *testing.T) {
	mk := func(fifo bool) (reordered int) {
		s := NewSimulator(7)
		var last time.Duration
		var lastSeq = -1
		l := mustLink(t, s, LinkConfig{
			Name:        "jitter",
			Delay:       dist.ShiftedGamma{Loc: 10 * time.Millisecond, Shape: 2, Scale: 5 * time.Millisecond},
			EnforceFIFO: fifo,
		}, func(p Packet) {
			seq := p.Payload.(int)
			if seq < lastSeq {
				reordered++
			}
			lastSeq = seq
			if s.Now() < last {
				t.Error("simulator time went backwards")
			}
			last = s.Now()
		})
		for i := 0; i < 2000; i++ {
			i := i
			s.Schedule(time.Duration(i)*time.Millisecond/4, func() {
				l.Send(Packet{Bytes: 100, Payload: i})
			})
		}
		s.Run()
		return reordered
	}
	if r := mk(false); r == 0 {
		t.Error("expected some reordering with gamma jitter and no FIFO clamp")
	}
	if r := mk(true); r != 0 {
		t.Errorf("FIFO clamp leaked %d reorderings", r)
	}
}

func TestLinkStatsZeroValues(t *testing.T) {
	var st LinkStats
	if st.LossRate() != 0 || st.MeanQueueDelay() != 0 {
		t.Error("zero-value stats should be zero")
	}
}

func TestNewLinkErrors(t *testing.T) {
	s := NewSimulator(1)
	ok := func(Packet) {}
	cases := []LinkConfig{
		{Name: "badloss", Loss: -0.1},
		{Name: "badloss2", Loss: 1.5},
		{Name: "badloss3", Loss: math.NaN()},
		{Name: "badbw", Bandwidth: -5},
		{Name: "badq", QueueLimit: -1},
	}
	for _, cfg := range cases {
		if _, err := NewLink(s, cfg, ok); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewLink(s, LinkConfig{Name: "nilrecv"}, nil); err == nil {
		t.Error("nil receiver accepted")
	}
	if _, err := NewLink(nil, LinkConfig{Name: "nilsim"}, ok); err == nil {
		t.Error("nil simulator accepted")
	}
	l, err := NewLink(s, LinkConfig{Name: "cfg", Bandwidth: 1000}, ok)
	if err != nil {
		t.Fatal(err)
	}
	if l.Config().Name != "cfg" {
		t.Error("Config() wrong")
	}
}

// TestLinkSaturationQueueingDelay reproduces the §VII observation that a
// near-saturated link develops tens of ms of queueing delay.
func TestLinkSaturationQueueingDelay(t *testing.T) {
	s := NewSimulator(3)
	l := mustLink(t, s, LinkConfig{
		Name:      "sat",
		Bandwidth: 20e6,
		Delay:     dist.Deterministic{D: 100 * time.Millisecond},
	}, func(Packet) {})
	// Offer 19.9 Mbps of 1024-byte packets with Poisson arrivals:
	// M/D/1 at ρ ≈ 0.995 develops queue waits of tens of ms.
	bitsPerPacket := 1024.0 * 8
	meanGap := bitsPerPacket / 19.9e6 * float64(time.Second)
	rng := s.RNG("arrivals")
	tm := time.Duration(0)
	for i := 0; i < 20000; i++ {
		tm += time.Duration(rng.ExpFloat64() * meanGap)
		at := tm
		s.Schedule(at, func() { l.Send(Packet{Bytes: 1024}) })
	}
	s.Run()
	st := l.Stats()
	if st.MaxQueueDelay < 2*time.Millisecond {
		t.Errorf("max queue delay %v suspiciously low for 99.5%% utilization", st.MaxQueueDelay)
	}
	if st.MeanQueueDelay() <= 0 {
		t.Error("no queueing at 99.5% utilization")
	}
}

package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// LossModel decides, per packet, whether the erasure channel drops it.
// Implementations may be stateful (burst models); a LossModel instance
// must not be shared between links.
type LossModel interface {
	// Lost draws the fate of one packet.
	Lost(rng *rand.Rand) bool
	// Rate returns the long-run average loss probability.
	Rate() float64
}

// BernoulliLoss drops packets independently — the paper's §IV binary
// erasure channel.
type BernoulliLoss struct {
	P float64
}

var _ LossModel = BernoulliLoss{}

// Lost draws one i.i.d. Bernoulli erasure.
func (b BernoulliLoss) Lost(rng *rand.Rand) bool { return rng.Float64() < b.P }

// Rate returns P.
func (b BernoulliLoss) Rate() float64 { return b.P }

// GilbertElliott is the classic two-state Markov burst-loss channel. The
// paper's §IX-B notes that real losses are correlated "even when as
// little as 10% of capacity is used" [31]; this model lets experiments
// quantify how burstiness affects the memoryless-loss optimizer.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-packet state transition
	// probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are per-state erasure probabilities
	// (classically ≈0 and ≈1).
	LossGood, LossBad float64

	bad bool
}

var _ LossModel = (*GilbertElliott)(nil)

// NewGilbertElliott validates and builds a burst-loss channel starting in
// the good state.
func NewGilbertElliott(pGoodToBad, pBadToGood, lossGood, lossBad float64) (*GilbertElliott, error) {
	for _, p := range []float64{pGoodToBad, pBadToGood, lossGood, lossBad} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("netsim: Gilbert-Elliott parameter %v outside [0,1]", p)
		}
	}
	if pGoodToBad > 0 && pBadToGood == 0 {
		return nil, fmt.Errorf("netsim: Gilbert-Elliott bad state is absorbing (PBadToGood = 0)")
	}
	return &GilbertElliott{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		LossGood:   lossGood,
		LossBad:    lossBad,
	}, nil
}

// Lost advances the channel one packet and draws its fate.
func (g *GilbertElliott) Lost(rng *rand.Rand) bool {
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Float64() < p
}

// Rate returns the stationary average loss probability
// π_bad·LossBad + π_good·LossGood.
func (g *GilbertElliott) Rate() float64 {
	den := g.PGoodToBad + g.PBadToGood
	if den == 0 {
		return g.LossGood // never leaves the good state
	}
	piBad := g.PGoodToBad / den
	return piBad*g.LossBad + (1-piBad)*g.LossGood
}

// MeanBurstLength returns the expected number of consecutive packets
// spent in the bad state once entered (1/PBadToGood).
func (g *GilbertElliott) MeanBurstLength() float64 {
	if g.PBadToGood == 0 {
		return math.Inf(1)
	}
	return 1 / g.PBadToGood
}

package netsim

import (
	"math"
	"testing"
)

func TestBernoulliLossRate(t *testing.T) {
	b := BernoulliLoss{P: 0.2}
	if b.Rate() != 0.2 {
		t.Errorf("Rate = %v", b.Rate())
	}
	rng := NewSimulator(1).RNG("bern")
	lost := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if b.Lost(rng) {
			lost++
		}
	}
	if got := float64(lost) / n; math.Abs(got-0.2) > 0.01 {
		t.Errorf("observed %v, want ≈0.2", got)
	}
}

func TestGilbertElliottStationaryRate(t *testing.T) {
	// π_bad = 0.02/(0.02+0.18) = 0.1; rate = 0.1·0.8 + 0.9·0.005 = 0.0845.
	g, err := NewGilbertElliott(0.02, 0.18, 0.005, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1*0.8 + 0.9*0.005
	if math.Abs(g.Rate()-want) > 1e-12 {
		t.Errorf("Rate = %v, want %v", g.Rate(), want)
	}
	rng := NewSimulator(2).RNG("ge")
	lost := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if g.Lost(rng) {
			lost++
		}
	}
	if got := float64(lost) / n; math.Abs(got-want) > 0.005 {
		t.Errorf("observed %v, want ≈%v", got, want)
	}
	if mb := g.MeanBurstLength(); math.Abs(mb-1/0.18) > 1e-12 {
		t.Errorf("MeanBurstLength = %v", mb)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Same average rate as a Bernoulli channel, but losses must cluster:
	// the mean run length of consecutive losses is clearly longer.
	g, err := NewGilbertElliott(0.01, 0.09, 0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rate := g.Rate() // 0.1·0.9 = 0.09
	runLen := func(lost func() bool) float64 {
		runs, total, cur := 0, 0, 0
		for i := 0; i < 200000; i++ {
			if lost() {
				cur++
			} else if cur > 0 {
				runs++
				total += cur
				cur = 0
			}
		}
		if runs == 0 {
			return 0
		}
		return float64(total) / float64(runs)
	}
	rngG := NewSimulator(3).RNG("g")
	rngB := NewSimulator(3).RNG("b")
	b := BernoulliLoss{P: rate}
	geRun := runLen(func() bool { return g.Lost(rngG) })
	bRun := runLen(func() bool { return b.Lost(rngB) })
	if geRun < 2*bRun {
		t.Errorf("GE run length %v not clearly burstier than Bernoulli %v", geRun, bRun)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	cases := [][4]float64{
		{-0.1, 0.5, 0, 1},
		{0.5, 1.5, 0, 1},
		{0.5, 0.5, -1, 1},
		{0.5, 0.5, 0, 2},
		{math.NaN(), 0.5, 0, 1},
		{0.5, 0, 0, 1}, // absorbing bad state
	}
	for i, c := range cases {
		if _, err := NewGilbertElliott(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("case %d accepted: %v", i, c)
		}
	}
	// Degenerate but valid: never leaves good.
	g, err := NewGilbertElliott(0, 0, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != 0.05 {
		t.Errorf("good-only rate = %v", g.Rate())
	}
	if !math.IsInf((&GilbertElliott{}).MeanBurstLength(), 1) {
		t.Error("zero recovery should mean infinite burst")
	}
}

func TestLinkWithGilbertElliott(t *testing.T) {
	sim := NewSimulator(9)
	delivered := 0
	g, err := NewGilbertElliott(0.05, 0.25, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(sim, LinkConfig{Name: "burst", LossModel: g}, func(Packet) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		l.Send(Packet{Bytes: 100})
	}
	sim.Run()
	want := g.Rate() // π_bad = 0.05/0.30 = 1/6
	got := float64(n-delivered) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("burst link loss %v, want ≈%v", got, want)
	}
}

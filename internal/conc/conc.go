// Package conc provides the one worker-pool primitive shared by the
// batch solver (core.SolveMany) and the experiment sweeps: run n
// independent tasks across GOMAXPROCS workers with first-error-wins
// cancellation and panic containment.
package conc

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a ForEach worker goroutine so
// it can be re-raised on the caller's goroutine without losing the
// original panic value or stack. ForEach panics with a *PanicError;
// recovery layers above (e.g. the serving stack) unwrap Value to
// classify the fault and log Stack for the real crash site — the stack
// of the re-panic itself only shows ForEach.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("conc: task panicked: %v\n\noriginal stack:\n%s", e.Value, e.Stack)
}

// ForEach runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers. Tasks must be independent; callers write results into
// pre-indexed slots so output order is deterministic. The first error
// (by scheduling order) wins and the remaining tasks are skipped.
//
// A panicking task does not crash the process from a worker goroutine:
// the panic is recovered, the remaining tasks are cancelled, and once
// every in-flight task has finished the panic is re-raised on the
// caller's goroutine as a *PanicError carrying the original value and
// stack. A panic outranks any error. The single-worker path raises the
// same *PanicError so callers see one contract regardless of
// GOMAXPROCS.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := protect(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		failed    atomic.Bool
		errOnce   sync.Once
		firstErr  error
		panicOnce sync.Once
		panicked  *PanicError
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicked = wrapPanic(r)
								failed.Store(true)
							})
						}
					}()
					return fn(i)
				}()
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						failed.Store(true)
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// wrapPanic turns a recovered value into a *PanicError, capturing the
// stack inside the recovering frame so it shows the actual crash site.
// An already-wrapped value (a nested ForEach re-panic) passes through,
// keeping the innermost stack.
func wrapPanic(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// protect runs fn(i) on the caller's goroutine, converting a panic into
// an immediate re-panic with a *PanicError so the sequential path obeys
// the same contract as the worker-pool path.
func protect(fn func(i int) error, i int) error {
	defer func() {
		if r := recover(); r != nil {
			panic(wrapPanic(r))
		}
	}()
	return fn(i)
}

// Package conc provides the one worker-pool primitive shared by the
// batch solver (core.SolveMany) and the experiment sweeps: run n
// independent tasks across GOMAXPROCS workers with first-error-wins
// cancellation.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers. Tasks must be independent; callers write results into
// pre-indexed slots so output order is deterministic. The first error
// (by scheduling order) wins and the remaining tasks are skipped.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						failed.Store(true)
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

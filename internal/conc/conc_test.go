package conc

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 1000
	var ran [n]atomic.Bool
	if err := ForEach(n, func(i int) error {
		ran[i].Store(true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	err := ForEach(10000, func(i int) error {
		executed.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := executed.Load(); got == 10000 {
		t.Error("error did not cancel remaining tasks")
	}
}

// panicHere exists so the recovered stack has a recognizable frame.
func panicHere() {
	panic("kaboom-original")
}

// forceWorkers pins GOMAXPROCS so the test exercises the worker-pool
// path even on a single-CPU machine.
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestForEachPanicContained(t *testing.T) {
	forceWorkers(t, 4)
	var executed atomic.Int64
	var pe *PanicError
	func() {
		defer func() {
			r := recover()
			var ok bool
			if pe, ok = r.(*PanicError); !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
		}()
		ForEach(100000, func(i int) error {
			executed.Add(1)
			if i == 5 {
				panicHere()
			}
			return nil
		})
		t.Fatal("ForEach returned instead of re-panicking")
	}()
	if pe.Value != "kaboom-original" {
		t.Errorf("panic value %v, want kaboom-original", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panicHere") {
		t.Errorf("re-panic lost the original stack:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "kaboom-original") {
		t.Errorf("Error() omits the panic value: %s", pe.Error())
	}
	if got := executed.Load(); got == 100000 {
		t.Error("panic did not cancel remaining tasks")
	}
}

// TestForEachPanicDoesNotLeakWorkers checks every worker goroutine
// exits after a panic (wg.Wait semantics survive the recover path).
func TestForEachPanicDoesNotLeakWorkers(t *testing.T) {
	forceWorkers(t, 4)
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		func() {
			defer func() { recover() }()
			ForEach(64, func(i int) error {
				if i%7 == 0 {
					panic(fmt.Sprintf("round %d", round))
				}
				return nil
			})
		}()
	}
	// Allow stragglers to finish unwinding.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew %d -> %d across panicking ForEach rounds", before, after)
	}
}

// TestForEachNestedPanic checks a panic crossing two ForEach layers
// keeps the innermost stack.
func TestForEachNestedPanic(t *testing.T) {
	forceWorkers(t, 4)
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if !strings.Contains(string(pe.Stack), "panicHere") {
			t.Errorf("nested re-panic lost the original stack:\n%s", pe.Stack)
		}
	}()
	ForEach(8, func(i int) error {
		return func() error {
			ForEach(8, func(j int) error {
				if i == 2 && j == 3 {
					panicHere()
				}
				return nil
			})
			return nil
		}()
	})
	t.Fatal("nested ForEach did not re-panic")
}

// TestForEachSingleWorkerPanicWrapped checks the sequential path obeys
// the same *PanicError contract as the worker-pool path.
func TestForEachSingleWorkerPanicWrapped(t *testing.T) {
	forceWorkers(t, 1)
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "direct" {
			t.Errorf("panic value %v, want direct", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "TestForEachSingleWorkerPanicWrapped") {
			t.Errorf("sequential re-panic lost the original stack:\n%s", pe.Stack)
		}
	}()
	ForEach(4, func(i int) error {
		if i == 1 {
			panic("direct")
		}
		return nil
	})
	t.Fatal("sequential ForEach did not propagate the panic")
}

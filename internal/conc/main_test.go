package conc

import (
	"testing"

	"dmc/internal/leak"
)

// TestMain fails the package when a test leaks pool workers — the
// ForEach contract is that every worker has exited by return.
func TestMain(m *testing.M) {
	leak.VerifyTestMain(m)
}

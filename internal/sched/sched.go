// Package sched discretizes an optimal traffic split x′ into per-packet
// path-combination decisions.
//
// The primary selector is the paper's Algorithm 1: a deficit rule that
// assigns each packet to the combination lagging furthest behind its ideal
// share, keeping the realized distribution within one packet of optimal at
// all times. Baseline selectors (weighted random, weighted round-robin
// over a precomputed pattern) are provided for the scheduler-ablation
// experiments.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Selector assigns successive packets to path-combination indices so the
// long-run distribution approaches a target split.
type Selector interface {
	// Select returns the combination index for the next packet.
	Select() int
	// Name identifies the strategy in ablation reports.
	Name() string
}

// normalizeTarget validates and normalizes a target distribution.
func normalizeTarget(x []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("sched: empty target distribution")
	}
	out := make([]float64, len(x))
	var sum float64
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sched: target[%d] = %v", i, v)
		}
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("sched: target[%d] = %v is negative", i, v)
			}
			v = 0
		}
		out[i] = v
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("sched: target distribution sums to zero")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// Deficit implements Algorithm 1. Not safe for concurrent use.
type Deficit struct {
	target   []float64
	assigned []int64
	total    int64
}

var _ Selector = (*Deficit)(nil)

// NewDeficit returns an Algorithm 1 selector for the target split x′
// (normalized copy; x must be non-negative with a positive sum).
func NewDeficit(x []float64) (*Deficit, error) {
	t, err := normalizeTarget(x)
	if err != nil {
		return nil, err
	}
	return &Deficit{target: t, assigned: make([]int64, len(t))}, nil
}

// Select implements the paper's selectPathCombination(): the first packet
// goes to the largest share; afterwards each packet goes to the
// combination minimizing assigned[i]/total − x′ᵢ. Ties break to the lowest
// index, making the sequence fully deterministic. Unlike the literal
// pseudocode, combinations with a zero share are never considered: the
// verbatim argmin would occasionally pick one on a tie (its lag is pinned
// at 0), assigning a packet to a combination the optimizer ruled out.
func (d *Deficit) Select() int {
	res := -1
	if d.total == 0 {
		best := math.Inf(-1)
		for i, v := range d.target {
			if v > 0 && v > best {
				best = v
				res = i
			}
		}
	} else {
		best := math.Inf(1)
		tot := float64(d.total)
		for i, v := range d.target {
			if v == 0 {
				continue
			}
			if lag := float64(d.assigned[i])/tot - v; lag < best {
				best = lag
				res = i
			}
		}
	}
	d.assigned[res]++
	d.total++
	return res
}

// Name implements Selector.
func (d *Deficit) Name() string { return "deficit" }

// Assigned returns how many packets combination i has received.
func (d *Deficit) Assigned(i int) int64 { return d.assigned[i] }

// Total returns the number of packets assigned so far.
func (d *Deficit) Total() int64 { return d.total }

// MaxDeviation returns max_i |assigned[i] − total·x′ᵢ| in packets — the
// distance from the ideal fluid split.
func (d *Deficit) MaxDeviation() float64 {
	var max float64
	for i, v := range d.target {
		dev := math.Abs(float64(d.assigned[i]) - float64(d.total)*v)
		if dev > max {
			max = dev
		}
	}
	return max
}

// WeightedRandom samples combinations i.i.d. from the target split: the
// natural stateless baseline. Not safe for concurrent use.
type WeightedRandom struct {
	cum []float64
	rng *rand.Rand
}

var _ Selector = (*WeightedRandom)(nil)

// NewWeightedRandom returns an i.i.d. sampler over x′ driven by rng.
func NewWeightedRandom(x []float64, rng *rand.Rand) (*WeightedRandom, error) {
	t, err := normalizeTarget(x)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sched: nil rng")
	}
	cum := make([]float64, len(t))
	var acc float64
	for i, v := range t {
		acc += v
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &WeightedRandom{cum: cum, rng: rng}, nil
}

// Select draws from the target distribution.
func (w *WeightedRandom) Select() int {
	u := w.rng.Float64()
	return sort.SearchFloat64s(w.cum, u)
}

// Name implements Selector.
func (w *WeightedRandom) Name() string { return "weighted-random" }

// RoundRobin cycles through a fixed pattern of combination indices built
// from the target split by largest-remainder apportionment over a window.
// It is the "static schedule" baseline: good long-run proportions but a
// bursty short-run pattern. Not safe for concurrent use.
type RoundRobin struct {
	pattern []int
	pos     int
}

var _ Selector = (*RoundRobin)(nil)

// DefaultRoundRobinWindow is the pattern length used by NewRoundRobin.
const DefaultRoundRobinWindow = 100

// NewRoundRobin builds a cyclic selector with the given pattern window
// (≤ 0 selects DefaultRoundRobinWindow).
func NewRoundRobin(x []float64, window int) (*RoundRobin, error) {
	t, err := normalizeTarget(x)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = DefaultRoundRobinWindow
	}
	type slot struct {
		idx   int
		count int
		frac  float64
	}
	slots := make([]slot, len(t))
	used := 0
	for i, v := range t {
		exact := v * float64(window)
		c := int(math.Floor(exact))
		slots[i] = slot{idx: i, count: c, frac: exact - float64(c)}
		used += c
	}
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].frac > slots[b].frac })
	for k := 0; used < window && k < len(slots); k++ {
		slots[k].count++
		used++
	}
	pattern := make([]int, 0, window)
	// Interleave: repeatedly emit the combination with the largest
	// remaining quota to avoid long runs of one index.
	remaining := make([]int, len(t))
	for _, s := range slots {
		remaining[s.idx] = s.count
	}
	for len(pattern) < window {
		best, bestQ := -1, -1
		for i, r := range remaining {
			if r > bestQ {
				bestQ = r
				best = i
			}
		}
		if bestQ <= 0 {
			break
		}
		pattern = append(pattern, best)
		remaining[best]--
	}
	if len(pattern) == 0 {
		return nil, errors.New("sched: empty round-robin pattern")
	}
	return &RoundRobin{pattern: pattern}, nil
}

// Select returns the next pattern entry.
func (r *RoundRobin) Select() int {
	v := r.pattern[r.pos]
	r.pos = (r.pos + 1) % len(r.pattern)
	return v
}

// Name implements Selector.
func (r *RoundRobin) Name() string { return "round-robin" }

package sched

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) }

func TestDeficitFirstPickIsArgmax(t *testing.T) {
	d, err := NewDeficit([]float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Select(); got != 1 {
		t.Errorf("first pick = %d, want 1 (largest share)", got)
	}
}

func TestDeficitExactProportions(t *testing.T) {
	// Rational target: after any multiple of 8 packets the split is exact.
	d, err := NewDeficit([]float64{5.0 / 8, 3.0 / 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		d.Select()
	}
	if d.Assigned(0) != 5000 || d.Assigned(1) != 3000 {
		t.Errorf("assigned = [%d %d], want [5000 3000]", d.Assigned(0), d.Assigned(1))
	}
	if d.Total() != 8000 {
		t.Errorf("total = %d", d.Total())
	}
}

func TestDeficitBoundedDeviation(t *testing.T) {
	// Algorithm 1 keeps the realized split within a small constant number
	// of packets of ideal at every prefix (within 1 for two combinations;
	// slightly above for larger sets — empirically < 2).
	rng := newRNG(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		d, err := NewDeficit(x)
		if err != nil {
			t.Fatal(err)
		}
		bound := 2.0
		if n == 2 {
			bound = 1.0
		}
		for k := 0; k < 3000; k++ {
			d.Select()
			if dev := d.MaxDeviation(); dev > bound+1e-9 {
				t.Fatalf("trial %d: deviation %v > %v after %d picks (x=%v)", trial, dev, bound, k+1, x)
			}
		}
	}
}

func TestDeficitSkipsZeroShares(t *testing.T) {
	d, err := NewDeficit([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := d.Select(); got != 1 {
			t.Fatalf("pick %d = %d, want 1", i, got)
		}
	}
}

func TestDeficitDeterministic(t *testing.T) {
	x := []float64{0.3, 0.3, 0.4}
	a, _ := NewDeficit(x)
	b, _ := NewDeficit(x)
	for i := 0; i < 500; i++ {
		if a.Select() != b.Select() {
			t.Fatal("two Deficit selectors diverged")
		}
	}
}

func TestNormalizeTargetErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0},
		{-0.5, 1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, x := range cases {
		if _, err := NewDeficit(x); err == nil {
			t.Errorf("case %d: accepted %v", i, x)
		}
	}
	// Tiny negative roundoff is clamped, not rejected.
	if _, err := NewDeficit([]float64{-1e-12, 1}); err != nil {
		t.Errorf("tiny negative rejected: %v", err)
	}
	// Unnormalized input is normalized.
	d, err := NewDeficit([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Select()
	d.Select()
	if d.Assigned(0) != 1 || d.Assigned(1) != 1 {
		t.Error("unnormalized target not handled")
	}
}

func TestWeightedRandomConverges(t *testing.T) {
	x := []float64{0.1, 0.6, 0.3}
	w, err := NewWeightedRandom(x, newRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[w.Select()]++
	}
	for i, want := range x {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("share[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestWeightedRandomErrors(t *testing.T) {
	if _, err := NewWeightedRandom([]float64{1}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewWeightedRandom(nil, newRNG(1)); err == nil {
		t.Error("empty target accepted")
	}
}

func TestRoundRobinProportions(t *testing.T) {
	x := []float64{0.25, 0.5, 0.25}
	r, err := NewRoundRobin(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		counts[r.Select()]++
	}
	if counts[0] != 2000 || counts[1] != 4000 || counts[2] != 2000 {
		t.Errorf("counts = %v, want [2000 4000 2000]", counts)
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	// With a 50/50 split the pattern must alternate, not block.
	r, err := NewRoundRobin([]float64{0.5, 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := r.Select()
	runLen := 1
	for i := 0; i < 20; i++ {
		cur := r.Select()
		if cur == prev {
			runLen++
			if runLen > 2 {
				t.Fatalf("run of %d identical picks in a 50/50 split", runLen)
			}
		} else {
			runLen = 1
		}
		prev = cur
	}
}

func TestRoundRobinDefaults(t *testing.T) {
	r, err := NewRoundRobin([]float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Select() != 0 {
		t.Error("single-target pattern wrong")
	}
	if _, err := NewRoundRobin([]float64{0, 0}, 10); err == nil {
		t.Error("zero target accepted")
	}
}

func TestSelectorNames(t *testing.T) {
	d, _ := NewDeficit([]float64{1})
	w, _ := NewWeightedRandom([]float64{1}, newRNG(1))
	r, _ := NewRoundRobin([]float64{1}, 4)
	for _, s := range []Selector{d, w, r} {
		if s.Name() == "" {
			t.Error("empty selector name")
		}
	}
}

// TestQuickDeficitMatchesTargetLongRun: realized shares converge to the
// target for arbitrary random targets.
func TestQuickDeficitMatchesTargetLongRun(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newRNG(seed)
		n := 1 + rng.IntN(9)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		var sum float64
		for _, v := range x {
			sum += v
		}
		if sum == 0 {
			return true
		}
		d, err := NewDeficit(x)
		if err != nil {
			return false
		}
		const picks = 5000
		for i := 0; i < picks; i++ {
			d.Select()
		}
		for i := range x {
			want := x[i] / sum
			got := float64(d.Assigned(i)) / picks
			// The deficit counter keeps every path within a bounded
			// number of picks of its quota, but that bound is not
			// exactly one: seed 0x3451f9e0088ac930 deviates by ~1.05
			// picks, so a 1/picks tolerance flakes. Two picks of slack
			// still pins convergence.
			if math.Abs(got-want) > 2.0/picks+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

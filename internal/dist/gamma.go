package dist

import (
	"math"
	"math/rand/v2"
	"time"
)

// ShiftedGamma is the paper's Internet delay model (Eq. 31): a constant
// propagation delay Loc plus a Gamma(Shape, Scale)-distributed queueing
// component,
//
//	D = Loc + Γ(Shape, Scale).
//
// Degenerate parameters (Shape ≤ 0, Scale ≤ 0, or NaN) collapse to a
// point mass at Loc.
type ShiftedGamma struct {
	// Loc is the shift: the minimum possible delay.
	Loc time.Duration
	// Shape is the gamma shape parameter k (dimensionless).
	Shape float64
	// Scale is the gamma scale parameter θ.
	Scale time.Duration
}

// degenerate reports whether the parameters describe a point mass.
func (g ShiftedGamma) degenerate() bool {
	return !(g.Shape > 0) || g.Scale <= 0
}

// Mean returns Loc + Shape·Scale.
func (g ShiftedGamma) Mean() time.Duration {
	if g.degenerate() {
		return g.Loc
	}
	return g.Loc + time.Duration(g.Shape*float64(g.Scale))
}

// Var returns the variance Shape·Scale² in seconds².
func (g ShiftedGamma) Var() float64 {
	if g.degenerate() {
		return 0
	}
	s := g.Scale.Seconds()
	return g.Shape * s * s
}

// z maps a delay to gamma coordinates (x − Loc)/Scale.
func (g ShiftedGamma) z(x time.Duration) float64 {
	return float64(x-g.Loc) / float64(g.Scale)
}

// CDF returns P(D ≤ x), the regularized lower incomplete gamma
// P(Shape, (x−Loc)/Scale).
func (g ShiftedGamma) CDF(x time.Duration) float64 {
	if g.degenerate() {
		return Deterministic{D: g.Loc}.CDF(x)
	}
	if x <= g.Loc {
		return 0
	}
	return lowerReg(g.Shape, g.z(x))
}

// Tail returns P(D > x), the regularized upper incomplete gamma
// Q(Shape, (x−Loc)/Scale), accurate to the smallest positive float64 —
// the precision Eq. 34's log-space objective needs in Experiment 2.
func (g ShiftedGamma) Tail(x time.Duration) float64 {
	if g.degenerate() {
		return Deterministic{D: g.Loc}.Tail(x)
	}
	if x <= g.Loc {
		return 1
	}
	return upperReg(g.Shape, g.z(x))
}

// Sample draws Loc + Γ(Shape, Scale) via Marsaglia–Tsang.
func (g ShiftedGamma) Sample(rng *rand.Rand) time.Duration {
	if g.degenerate() {
		return g.Loc
	}
	return g.Loc + time.Duration(gammaRand(rng, g.Shape)*float64(g.Scale))
}

func (g ShiftedGamma) support() (lo, hi float64) {
	lo = g.Loc.Seconds()
	if g.degenerate() {
		return lo, lo
	}
	return lo, lo + gammaSupportHi(g.Shape)*g.Scale.Seconds()
}

func (g ShiftedGamma) pdf(x float64) float64 {
	if g.degenerate() {
		return 0
	}
	scale := g.Scale.Seconds()
	z := (x - g.Loc.Seconds()) / scale
	if z <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	return math.Exp((g.Shape-1)*math.Log(z)-z-lg) / scale
}

// gammaSupportHi returns an x (in scale units) beyond which the gamma
// upper tail Q(shape, x) is below ~1e-280, by doubling then bisecting.
func gammaSupportHi(shape float64) float64 {
	const tail = 1e-280
	hi := shape + 1
	for upperReg(shape, hi) > tail {
		hi *= 2
	}
	lo := hi / 2
	for i := 0; i < 60 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if upperReg(shape, mid) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// maxIter bounds the series/continued-fraction loops; convergence near
// x ≈ a needs O(√a) terms, so scale with the shape.
func maxIter(a float64) int {
	return 1000 + int(20*math.Sqrt(a))
}

// lowerReg returns the regularized lower incomplete gamma P(a, x).
func lowerReg(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaCF(a, x)
	}
}

// upperReg returns the regularized upper incomplete gamma Q(a, x). For
// x > a+1 the Lentz continued fraction evaluates the tail directly, so
// results stay accurate down to the underflow threshold (~1e-308) rather
// than saturating at 1−CDF's 2⁻⁵³ resolution.
func upperReg(a, x float64) float64 {
	switch {
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaCF(a, x)
	}
}

// gammaSeries evaluates P(a, x) by its power series (convergent and
// numerically preferred for x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter(a); i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a, x) by its continued fraction with the modified
// Lentz method (preferred for x ≥ a+1).
func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter(a); i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-17 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// gammaRand draws Γ(shape, 1) with the Marsaglia–Tsang method; shapes
// below 1 use the Γ(shape+1)·U^{1/shape} boost.
func gammaRand(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaRand(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

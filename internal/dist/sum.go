package dist

import (
	"math"
	"math/rand/v2"
	"time"
)

// DefaultSumNodes is NewSum's quadrature resolution, matching the
// timeout optimizer's default ConvolutionNodes.
const DefaultSumNodes = 1500

// glPoints is the per-panel order of the composite Gauss-Legendre rule.
const glPoints = 16

// Sum is the distribution of A + B for independent delays — the
// round-trip time dᵢ + d_min of Eqs. 27/34. One operand is discretized
// into a probability-weighted point set (Gauss-Legendre against its
// density); CDF and Tail then evaluate the other operand's exact
// CDF/Tail at every point, so the far upper tail inherits the leaf
// models' relative precision instead of a grid's absolute resolution.
// Sums involving a Deterministic operand reduce to an exact shift.
type Sum struct {
	a, b Delay

	// Shift mode (one operand deterministic): base delayed by shift.
	base  Delay
	shift time.Duration

	// Quadrature mode: Σ wts[k]·other.CDF(x − pts[k]).
	pts   []time.Duration
	wts   []float64
	other Delay
}

// NewSum returns the distribution of a + b at DefaultSumNodes
// resolution.
func NewSum(a, b Delay) *Sum { return NewSumNodes(a, b, DefaultSumNodes) }

// NewSumNodes returns the distribution of a + b using the given total
// quadrature node count (≤ 0 selects DefaultSumNodes).
func NewSumNodes(a, b Delay, nodes int) *Sum {
	if nodes <= 0 {
		nodes = DefaultSumNodes
	}
	s := &Sum{a: a, b: b}
	if d, ok := a.(Deterministic); ok {
		s.base, s.shift = b, d.D
		return s
	}
	if d, ok := b.(Deterministic); ok {
		s.base, s.shift = a, d.D
		return s
	}
	if q, ok := a.(quadDist); ok {
		s.discretize(q, b, nodes)
		return s
	}
	if q, ok := b.(quadDist); ok {
		s.discretize(q, a, nodes)
		return s
	}
	s.discretizeCDF(a, b, nodes)
	return s
}

// discretize builds the point set for a density-bearing operand q via
// composite Gauss-Legendre over its support, with panel boundaries
// quadratically graded toward the lower end (where gamma-like densities
// concentrate) while still reaching the far tail cutoff.
func (s *Sum) discretize(q quadDist, other Delay, nodes int) {
	lo, hi := q.support()
	if !(hi > lo) {
		s.base, s.shift = other, time.Duration(lo*float64(time.Second))
		return
	}
	panels := nodes / glPoints
	if panels < 1 {
		panels = 1
	}
	gx, gw := gauleg(glPoints)
	pts := make([]time.Duration, 0, panels*glPoints)
	wts := make([]float64, 0, panels*glPoints)
	total := 0.0
	for p := 0; p < panels; p++ {
		frac0 := float64(p) / float64(panels)
		frac1 := float64(p+1) / float64(panels)
		x0 := lo + (hi-lo)*frac0*frac0
		x1 := lo + (hi-lo)*frac1*frac1
		mid, half := (x0+x1)/2, (x1-x0)/2
		for k := 0; k < glPoints; k++ {
			x := mid + half*gx[k]
			w := half * gw[k] * q.pdf(x)
			if w <= 0 {
				continue
			}
			pts = append(pts, time.Duration(x*float64(time.Second)))
			wts = append(wts, w)
			total += w
		}
	}
	if total <= 0 {
		s.base, s.shift = other, q.(Delay).Mean()
		return
	}
	// Normalize to exact unit mass so CDF + Tail ≡ 1 by construction.
	for i := range wts {
		wts[i] /= total
	}
	s.pts, s.wts, s.other = pts, wts, other
}

// discretizeCDF is the fallback for operands without a density (e.g. a
// nested *Sum): midpoint Stieltjes masses from CDF differences over a
// bracketed quantile range. Far-tail resolution is limited by the
// bracketing epsilon; prefer leaf models as Sum operands where tail
// precision matters.
func (s *Sum) discretizeCDF(a, b Delay, nodes int) {
	const eps = 1e-12
	lo := quantileByBisect(a, eps)
	hi := quantileByBisect(a, 1-eps)
	if hi <= lo {
		s.base, s.shift = b, lo
		return
	}
	pts := make([]time.Duration, 0, nodes+2)
	wts := make([]float64, 0, nodes+2)
	prev := a.CDF(lo)
	if prev > 0 { // mass at or below the bracket start
		pts = append(pts, lo)
		wts = append(wts, prev)
	}
	step := (hi - lo) / time.Duration(nodes)
	if step <= 0 {
		step = 1
	}
	for x := lo + step; x < hi; x += step {
		c := a.CDF(x)
		if m := c - prev; m > 0 {
			pts = append(pts, x-step/2)
			wts = append(wts, m)
		}
		prev = c
	}
	if m := 1 - prev; m > 0 { // remaining mass up to and beyond hi
		pts = append(pts, hi)
		wts = append(wts, m)
	}
	s.pts, s.wts, s.other = pts, wts, b
}

// quantileByBisect inverts a nonnegative delay CDF by doubling then
// bisection.
func quantileByBisect(d Delay, p float64) time.Duration {
	const maxDur = time.Duration(math.MaxInt64 / 4)
	hi := time.Second
	for d.CDF(hi) < p && hi < maxDur {
		hi *= 2
	}
	lo := time.Duration(0)
	for i := 0; i < 80 && hi-lo > time.Nanosecond; i++ {
		mid := lo + (hi-lo)/2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Mean returns E[A] + E[B].
func (s *Sum) Mean() time.Duration { return s.a.Mean() + s.b.Mean() }

// CDF returns P(A + B ≤ x).
func (s *Sum) CDF(x time.Duration) float64 {
	if s.base != nil {
		return s.base.CDF(x - s.shift)
	}
	acc := 0.0
	for k, pt := range s.pts {
		acc += s.wts[k] * s.other.CDF(x-pt)
	}
	return acc
}

// Tail returns P(A + B > x), evaluated as the weighted sum of the exact
// operand tails so tiny probabilities keep relative precision.
func (s *Sum) Tail(x time.Duration) float64 {
	if s.base != nil {
		return s.base.Tail(x - s.shift)
	}
	acc := 0.0
	for k, pt := range s.pts {
		acc += s.wts[k] * s.other.Tail(x-pt)
	}
	return acc
}

// Sample draws one delay from each operand and adds them.
func (s *Sum) Sample(rng *rand.Rand) time.Duration {
	return s.a.Sample(rng) + s.b.Sample(rng)
}

// gauleg returns the nodes and weights of the n-point Gauss-Legendre
// rule on [−1, 1] (Newton iteration on the Legendre recurrence).
func gauleg(n int) (x, w []float64) {
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for it := 0; it < 100; it++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p1, p2 = ((2*float64(j)+1)*z*p1-float64(j)*p2)/(float64(j)+1), p1
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		x[i], x[n-1-i] = -z, z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}

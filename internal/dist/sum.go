package dist

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSumNodes is NewSum's quadrature resolution, matching the
// timeout optimizer's default ConvolutionNodes.
const DefaultSumNodes = 1500

// glPoints is the per-panel order of the composite Gauss-Legendre rule.
const glPoints = 16

// Sum is the distribution of A + B for independent delays — the
// round-trip time dᵢ + d_min of Eqs. 27/34. One operand is discretized
// into a probability-weighted point set (Gauss-Legendre against its
// density); CDF and Tail then evaluate the other operand's exact
// CDF/Tail at every point, so the far upper tail inherits the leaf
// models' relative precision instead of a grid's absolute resolution.
// Sums involving a Deterministic operand reduce to an exact shift.
type Sum struct {
	a, b Delay

	// Shift mode (one operand deterministic): base delayed by shift.
	base  Delay
	shift time.Duration

	// Quadrature mode: Σ wts[k]·other.CDF(x − pts[k]).
	pts   []time.Duration
	wts   []float64
	other Delay

	// Active-window acceleration: pts is ascending, so for a given x the
	// atoms with x − pts[k] below other's support contribute an exact
	// CDF 0 / Tail 1, and those with x − pts[k] beyond other's upper
	// support cutoff contribute ~1 / ~0 (≤1e-280, other.support's mass
	// cutoff). suffW[k] = Σ_{j≥k} wts[j] lets both groups be summed in
	// O(log n), leaving only the atoms whose argument lands inside
	// other's support for real evaluation.
	suffW        []float64 // len(pts)+1, suffW[len(pts)] = 0
	otherLo      time.Duration
	otherHi      time.Duration
	otherBounded bool

	// Lazily built interpolated view (see tailtable.go): after
	// tableThreshold direct evaluations, CDF/Tail switch from the full
	// convolution pass to O(log n) monotone-cubic table lookups.
	evals   atomic.Int64
	tblOnce sync.Once
	tbl     atomic.Pointer[sumTable]
}

// NewSum returns the distribution of a + b at DefaultSumNodes
// resolution.
func NewSum(a, b Delay) *Sum { return NewSumNodes(a, b, DefaultSumNodes) }

// NewSumNodes returns the distribution of a + b using the given total
// quadrature node count (≤ 0 selects DefaultSumNodes).
func NewSumNodes(a, b Delay, nodes int) *Sum {
	if nodes <= 0 {
		nodes = DefaultSumNodes
	}
	s := &Sum{a: a, b: b}
	if d, ok := a.(Deterministic); ok {
		s.base, s.shift = b, d.D
		return s
	}
	if d, ok := b.(Deterministic); ok {
		s.base, s.shift = a, d.D
		return s
	}
	if q, ok := a.(quadDist); ok {
		s.discretize(q, b, nodes)
		return s
	}
	if q, ok := b.(quadDist); ok {
		s.discretize(q, a, nodes)
		return s
	}
	s.discretizeCDF(a, b, nodes)
	return s
}

// discretize builds the point set for a density-bearing operand q via
// composite Gauss-Legendre over its support, with panel boundaries
// quadratically graded toward the lower end (where gamma-like densities
// concentrate) while still reaching the far tail cutoff.
func (s *Sum) discretize(q quadDist, other Delay, nodes int) {
	lo, hi := q.support()
	if !(hi > lo) {
		s.base, s.shift = other, time.Duration(lo*float64(time.Second))
		return
	}
	panels := nodes / glPoints
	if panels < 1 {
		panels = 1
	}
	gx, gw := gaulegDefault()
	pts := make([]time.Duration, 0, panels*glPoints)
	wts := make([]float64, 0, panels*glPoints)
	total := 0.0
	for p := 0; p < panels; p++ {
		frac0 := float64(p) / float64(panels)
		frac1 := float64(p+1) / float64(panels)
		x0 := lo + (hi-lo)*frac0*frac0
		x1 := lo + (hi-lo)*frac1*frac1
		mid, half := (x0+x1)/2, (x1-x0)/2
		for k := 0; k < glPoints; k++ {
			x := mid + half*gx[k]
			w := half * gw[k] * q.pdf(x)
			if w <= 0 {
				continue
			}
			pts = append(pts, time.Duration(x*float64(time.Second)))
			wts = append(wts, w)
			total += w
		}
	}
	if total <= 0 {
		s.base, s.shift = other, q.(Delay).Mean()
		return
	}
	// Normalize to exact unit mass so CDF + Tail ≡ 1 by construction.
	for i := range wts {
		wts[i] /= total
	}
	s.pts, s.wts, s.other = pts, wts, other
	s.finishQuadrature()
}

// finishQuadrature precomputes the suffix weight sums and the other
// operand's support bounds for the active-window fast path.
func (s *Sum) finishQuadrature() {
	s.suffW = make([]float64, len(s.pts)+1)
	for k := len(s.pts) - 1; k >= 0; k-- {
		s.suffW[k] = s.suffW[k+1] + s.wts[k]
	}
	switch v := s.other.(type) {
	case quadDist:
		lo, hi := v.support()
		if hi > lo {
			s.otherLo = time.Duration(lo * float64(time.Second))
			s.otherHi = time.Duration(hi * float64(time.Second))
			s.otherBounded = true
		}
	case Deterministic:
		s.otherLo, s.otherHi = v.D, v.D
		s.otherBounded = true
	}
}

// activeWindow returns the atom index range [j0, j1) whose argument
// x − pts[k] lands strictly inside other's support, plus the weight mass
// of the atoms at or above the support's lower edge (argument ≤ lo:
// CDF 0, Tail 1) and below its upper cutoff (argument ≥ hi: CDF ~1,
// Tail ≤ 1e-280, other.support's mass floor).
func (s *Sum) activeWindow(x time.Duration) (j0, j1 int, wBelow, wAbove float64) {
	// First atom with pts[k] > x − hi: atoms before it have arg ≥ hi.
	j0 = sort.Search(len(s.pts), func(k int) bool { return s.pts[k] > x-s.otherHi })
	// First atom with pts[k] ≥ x − lo: atoms from it on have arg ≤ lo.
	j1 = j0 + sort.Search(len(s.pts)-j0, func(k int) bool { return s.pts[j0+k] >= x-s.otherLo })
	return j0, j1, s.suffW[j1], s.suffW[0] - s.suffW[j0]
}

// discretizeCDF is the fallback for operands without a density (e.g. a
// nested *Sum): midpoint Stieltjes masses from CDF differences over a
// bracketed quantile range. Far-tail resolution is limited by the
// bracketing epsilon; prefer leaf models as Sum operands where tail
// precision matters.
func (s *Sum) discretizeCDF(a, b Delay, nodes int) {
	const eps = 1e-12
	lo := quantileByBisect(a, eps)
	hi := quantileByBisect(a, 1-eps)
	if hi <= lo {
		s.base, s.shift = b, lo
		return
	}
	pts := make([]time.Duration, 0, nodes+2)
	wts := make([]float64, 0, nodes+2)
	prev := a.CDF(lo)
	if prev > 0 { // mass at or below the bracket start
		pts = append(pts, lo)
		wts = append(wts, prev)
	}
	step := (hi - lo) / time.Duration(nodes)
	if step <= 0 {
		step = 1
	}
	for x := lo + step; x < hi; x += step {
		c := a.CDF(x)
		if m := c - prev; m > 0 {
			pts = append(pts, x-step/2)
			wts = append(wts, m)
		}
		prev = c
	}
	if m := 1 - prev; m > 0 { // remaining mass up to and beyond hi
		pts = append(pts, hi)
		wts = append(wts, m)
	}
	s.pts, s.wts, s.other = pts, wts, b
}

// quantileByBisect inverts a nonnegative delay CDF by doubling then
// bisection.
func quantileByBisect(d Delay, p float64) time.Duration {
	const maxDur = time.Duration(math.MaxInt64 / 4)
	hi := time.Second
	for d.CDF(hi) < p && hi < maxDur {
		hi *= 2
	}
	lo := time.Duration(0)
	for i := 0; i < 80 && hi-lo > time.Nanosecond; i++ {
		mid := lo + (hi-lo)/2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Mean returns E[A] + E[B].
func (s *Sum) Mean() time.Duration { return s.a.Mean() + s.b.Mean() }

// CDF returns P(A + B ≤ x). Repeatedly probed Sums (the Eq. 34 timeout
// search) answer from the interpolated table; see tailtable.go.
func (s *Sum) CDF(x time.Duration) float64 {
	if s.base != nil {
		return s.base.CDF(x - s.shift)
	}
	if t := s.table(); t != nil {
		return t.cdfAt(durToSec(x), s)
	}
	return s.directCDF(x)
}

// directCDF evaluates the discretized convolution, skipping atoms whose
// argument falls outside other's support (exact 0 below; 1 up to
// other.support's ~1e-280 mass cutoff above).
func (s *Sum) directCDF(x time.Duration) float64 {
	if !s.otherBounded {
		acc := 0.0
		for k, pt := range s.pts {
			acc += s.wts[k] * s.other.CDF(x-pt)
		}
		return acc
	}
	j0, j1, _, wAbove := s.activeWindow(x)
	acc := wAbove
	// Arguments shrink with k, so the leaf CDFs decrease: once the
	// current CDF times the remaining mass is ulp-level relative to the
	// accumulated sum, the rest cannot move the result.
	for k := j0; k < j1; k++ {
		c := s.other.CDF(x - s.pts[k])
		acc += s.wts[k] * c
		if c*s.suffW[k+1] < acc*1e-16 {
			break
		}
	}
	return clampProb(acc)
}

// clampProb trims the ulp-level overshoot of reordered weight sums.
func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// Tail returns P(A + B > x), evaluated as the weighted sum of the exact
// operand tails so tiny probabilities keep relative precision. Repeatedly
// probed Sums answer from the interpolated table; see tailtable.go.
func (s *Sum) Tail(x time.Duration) float64 {
	if s.base != nil {
		return s.base.Tail(x - s.shift)
	}
	if t := s.table(); t != nil {
		return t.tailAt(durToSec(x), s)
	}
	return s.directTail(x)
}

// directTail evaluates the discretized convolution, skipping atoms whose
// argument falls outside other's support (exact 1 below; ≤1e-280,
// dropped, above — still far below any tail the tables resolve).
func (s *Sum) directTail(x time.Duration) float64 {
	if !s.otherBounded {
		acc := 0.0
		for k, pt := range s.pts {
			acc += s.wts[k] * s.other.Tail(x-pt)
		}
		return acc
	}
	j0, j1, wBelow, _ := s.activeWindow(x)
	acc := wBelow
	// Arguments grow as k decreases, so the leaf tails decrease: once the
	// current tail times the remaining mass is ulp-level relative to the
	// accumulated sum, the rest cannot move the result.
	for k := j1 - 1; k >= j0; k-- {
		tl := s.other.Tail(x - s.pts[k])
		acc += s.wts[k] * tl
		if tl*(s.suffW[j0]-s.suffW[k]) < acc*1e-16 {
			break
		}
	}
	return clampProb(acc)
}

// Sample draws one delay from each operand and adds them.
func (s *Sum) Sample(rng *rand.Rand) time.Duration {
	return s.a.Sample(rng) + s.b.Sample(rng)
}

// gaulegDefault memoizes the glPoints-order rule: every Sum
// discretization uses the same per-panel order, so the Newton iteration
// runs once per process instead of once per Sum.
var gaulegDefault = sync.OnceValues(func() (x, w []float64) {
	return gauleg(glPoints)
})

// gauleg returns the nodes and weights of the n-point Gauss-Legendre
// rule on [−1, 1] (Newton iteration on the Legendre recurrence).
func gauleg(n int) (x, w []float64) {
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for it := 0; it < 100; it++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p1, p2 = ((2*float64(j)+1)*z*p1-float64(j)*p2)/(float64(j)+1), p1
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		x[i], x[n-1-i] = -z, z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}

package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// All concrete models satisfy Delay (and Sum composes them).
var (
	_ Delay = Deterministic{}
	_ Delay = Uniform{}
	_ Delay = ShiftedGamma{}
	_ Delay = (*Sum)(nil)
)

// checkDelayInvariants verifies the interface contract on a probe grid:
// CDF in [0,1] and non-decreasing, Tail in [0,1] and non-increasing, and
// Tail(x) = 1 − CDF(x) wherever both are well-conditioned.
func checkDelayInvariants(t *testing.T, d Delay, lo, hi time.Duration) {
	t.Helper()
	const probes = 400
	prevCDF, prevTail := -1.0, 2.0
	for i := 0; i <= probes; i++ {
		x := lo + time.Duration(int64(i)*int64(hi-lo)/probes)
		cdf, tail := d.CDF(x), d.Tail(x)
		if cdf < 0 || cdf > 1 || math.IsNaN(cdf) {
			t.Fatalf("CDF(%v) = %v outside [0,1]", x, cdf)
		}
		if tail < 0 || tail > 1 || math.IsNaN(tail) {
			t.Fatalf("Tail(%v) = %v outside [0,1]", x, tail)
		}
		if cdf < prevCDF-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v after %v", x, cdf, prevCDF)
		}
		if tail > prevTail+1e-12 {
			t.Fatalf("Tail not monotone at %v: %v after %v", x, tail, prevTail)
		}
		// Well-conditioned regime: neither end is collapsing to the
		// float64 resolution of the other.
		if cdf > 1e-6 && tail > 1e-6 {
			if diff := math.Abs(tail - (1 - cdf)); diff > 1e-9 {
				t.Fatalf("Tail(%v) = %v but 1−CDF = %v (diff %v)", x, tail, 1-cdf, diff)
			}
		}
		prevCDF, prevTail = cdf, tail
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{D: 100 * time.Millisecond}
	checkDelayInvariants(t, d, 0, 300*time.Millisecond)
	if d.Mean() != 100*time.Millisecond {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.CDF(99*time.Millisecond) != 0 || d.CDF(100*time.Millisecond) != 1 {
		t.Error("CDF step misplaced")
	}
	if d.Tail(100*time.Millisecond) != 0 || d.Tail(99*time.Millisecond) != 1 {
		t.Error("Tail step misplaced")
	}
	if got := d.Sample(nil); got != 100*time.Millisecond {
		t.Errorf("Sample = %v", got)
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 10 * time.Millisecond, Hi: 30 * time.Millisecond}
	checkDelayInvariants(t, u, 0, 50*time.Millisecond)
	if u.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", u.Mean())
	}
	if got := u.CDF(15 * time.Millisecond); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDF(15ms) = %v, want 0.25", got)
	}
	if got := u.Tail(25 * time.Millisecond); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Tail(25ms) = %v, want 0.25", got)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		s := u.Sample(rng)
		if s < u.Lo || s >= u.Hi {
			t.Fatalf("sample %v outside [%v, %v)", s, u.Lo, u.Hi)
		}
		sum += s
	}
	if mean := sum / n; (mean - u.Mean()).Abs() > 200*time.Microsecond {
		t.Errorf("sample mean %v, want ≈%v", mean, u.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	u := Uniform{Lo: 5 * time.Millisecond, Hi: 5 * time.Millisecond}
	if u.Mean() != 5*time.Millisecond || u.CDF(5*time.Millisecond) != 1 || u.Tail(5*time.Millisecond) != 0 {
		t.Error("degenerate Uniform should be a point mass at Lo")
	}
	if u.Sample(nil) != 5*time.Millisecond {
		t.Error("degenerate Sample")
	}
}

package dist

import (
	"math"
	"time"
)

// Interpolated tail evaluation for Sum.
//
// A quadrature-mode Sum evaluates CDF/Tail as a full pass over its
// discretization (Σ wts·other.CDF(x−pts), ~DefaultSumNodes leaf
// evaluations, ~30µs). The Eq. 34 timeout search probes the same Sum
// hundreds of times across a grid, so after tableThreshold direct
// evaluations the Sum builds two adaptively refined monotone-cubic
// tables — ln CDF over the lower half of the support (in ln(x−lo)
// coordinates, where the power-law rise of the left edge is nearly
// linear) and ln Tail over the upper half (in plain x, where the
// exponential-family decay is nearly linear) — and subsequent probes cost
// one binary search plus a Hermite evaluation. Working in log space
// preserves the relative precision of the directly computed tails (the
// regime of Experiment 2, where optima balance tails of magnitude 1e-17
// against 1e-60); monotone (Fritsch–Butland limited) derivatives
// guarantee the interpolant never oscillates, so CDF and Tail stay
// monotone and inside [0, 1]. Probes outside the tabulated range fall
// back to the exact direct evaluation.

const (
	// tableThreshold is how many direct quadrature evaluations a Sum
	// serves before amortizing a table build: few-shot users (one LP
	// coefficient pass) never pay for a table, grid searches do once.
	tableThreshold = 12
	// tableRelTol and tableAbsTol bound the accepted midpoint error e in
	// log-probability as e ≤ min(tableRelTol, tableAbsTol·e⁻ᵛ): near
	// probability 1 the interpolated CDF/Tail stays within ~tableAbsTol
	// absolutely, while further down only relative precision is required,
	// so node spacing stays coarse and the build stays cheap.
	tableRelTol = 2e-4
	tableAbsTol = 5e-7
	// tableMaxNodes caps each side's node count (backstop for
	// near-discontinuous log-probability curves).
	tableMaxNodes = 700
	// tableFloor is the smallest probability either table resolves. A
	// probe below 1e-60 (the deepest magnitude the paper's Eq. 34 optima
	// balance) has already lost every comparison it participates in by
	// hundreds of log-units, so only its order of magnitude matters:
	// beyond the tabulated range the tail side extrapolates the last
	// segment log-linearly and the CDF side falls back to direct
	// evaluation (its sub-floor region spans only microseconds of x).
	tableFloor = 1e-60
	// tableDeepTol is the relative log-probability tolerance below
	// tableDeepEdge (probability 1e-9), where no consumer needs more than
	// the order of magnitude but the curve — a finite quadrature mixture,
	// not the smooth true convolution — picks up expensive-to-track
	// wiggles at the atom spacing.
	tableDeepTol  = 2e-3
	tableDeepEdge = -20.7 // ln(1e-9)
)

// logTable is a monotone cubic Hermite interpolant of a log-probability
// curve over [xs[0], xs[len-1]] (the abscissa may be a transformed
// coordinate; callers transform before evaluating).
type logTable struct {
	xs, vs, ds []float64
}

func (t *logTable) covers(x float64) bool {
	return len(t.xs) >= 2 && x >= t.xs[0] && x <= t.xs[len(t.xs)-1]
}

// eval interpolates the log-probability at x, which must be covered.
func (t *logTable) eval(x float64) float64 {
	// Binary search for the interval with xs[i] ≤ x < xs[i+1].
	lo, hi := 0, len(t.xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return t.evalAt(lo, x)
}

// evalAt evaluates the cubic Hermite piece on interval i at x.
func (t *logTable) evalAt(i int, x float64) float64 {
	x0, x1 := t.xs[i], t.xs[i+1]
	h := x1 - x0
	if h <= 0 {
		return t.vs[i]
	}
	u := (x - x0) / h
	u2 := u * u
	u3 := u2 * u
	h00 := 2*u3 - 3*u2 + 1
	h10 := u3 - 2*u2 + u
	h01 := -2*u3 + 3*u2
	h11 := u3 - u2
	return h00*t.vs[i] + h10*h*t.ds[i] + h01*t.vs[i+1] + h11*h*t.ds[i+1]
}

// finishTable computes node derivatives as the weighted parabolic
// estimate (high-order accurate on smooth data) clamped by the
// Fritsch–Carlson monotonicity bound — zero at slope sign changes, at
// most 3× the smaller neighboring secant — yielding a monotone cubic
// Hermite interpolant that keeps near-4th-order accuracy wherever the
// data is smooth and strictly monotone (our log-probability curves).
func finishTable(xs, vs []float64) logTable {
	n := len(xs)
	ds := make([]float64, n)
	if n < 2 {
		return logTable{xs: xs, vs: vs, ds: ds}
	}
	slope := func(i int) float64 { return (vs[i+1] - vs[i]) / (xs[i+1] - xs[i]) }
	clamp := func(d, d0, d1 float64) float64 {
		if d0*d1 <= 0 {
			return 0
		}
		lim := 3 * math.Min(math.Abs(d0), math.Abs(d1))
		if math.Abs(d) > lim {
			d = math.Copysign(lim, d0)
		}
		if d*d0 < 0 {
			d = 0
		}
		return d
	}
	if n == 2 {
		ds[0], ds[1] = slope(0), slope(0)
		return logTable{xs: xs, vs: vs, ds: ds}
	}
	for i := 1; i < n-1; i++ {
		h0 := xs[i] - xs[i-1]
		h1 := xs[i+1] - xs[i]
		d0, d1 := slope(i-1), slope(i)
		ds[i] = clamp((d0*h1+d1*h0)/(h0+h1), d0, d1)
	}
	// One-sided parabolic endpoint derivatives, clamped against the edge
	// secant so the boundary pieces stay monotone too.
	h0, h1 := xs[1]-xs[0], xs[2]-xs[1]
	d0, d1 := slope(0), slope(1)
	ds[0] = clamp(d0+(d0-d1)*h0/(h0+h1), d0, d0)
	h0, h1 = xs[n-1]-xs[n-2], xs[n-2]-xs[n-3]
	d0, d1 = slope(n-2), slope(n-3)
	ds[n-1] = clamp(d0+(d0-d1)*h0/(h0+h1), d0, d0)
	return logTable{xs: xs, vs: vs, ds: ds}
}

// tableTol is the accepted log-probability interpolation error at a
// point whose true log-probability is v.
func tableTol(v float64) float64 {
	if v < tableDeepEdge {
		return tableDeepTol
	}
	if t := tableAbsTol * math.Exp(-v); t < tableRelTol {
		return t
	}
	return tableRelTol
}

// buildLogTable adaptively samples f over [a, b]. Each interval's
// midpoint is evaluated once (and cached); every pass rebuilds the
// monotone-cubic interpolant and re-checks the cached midpoints of
// intervals that are not yet validated, splitting the ones that miss
// tableTol. Splitting interval i changes the limited derivatives at its
// endpoint nodes, which changes the interpolant on the two adjacent
// intervals, so their validations are revoked — but intervals further
// away keep their (still exact) verdicts, so the loop ends with every
// interval checked against an interpolant identical, on its piece, to
// the final one. Total f evaluations ≈ final node count plus a small
// neighbor-recheck overhead, with no naive full re-verification sweeps.
func buildLogTable(f func(float64) float64, tol func(float64) float64, a, va, b, vb float64) logTable {
	type ivl struct {
		x0, v0, x1, v1 float64
		vm             float64 // cached midpoint sample (NaN = not yet evaluated)
		ok             bool    // validated against the current interpolant
	}
	const initial = 6 // intervals in the seed grid
	ivls := make([]ivl, 0, 4*initial)
	px, pv := a, va
	for i := 1; i <= initial; i++ {
		x := a + (b-a)*float64(i)/initial
		v := vb
		if i < initial {
			v = f(x)
			if !isFiniteLog(v) {
				// Probability underflowed inside the bracket (possible
				// right at a support edge); skip the bad point.
				continue
			}
		}
		ivls = append(ivls, ivl{x0: px, v0: pv, x1: x, v1: v, vm: math.NaN()})
		px, pv = x, v
	}
	nodes := func() ([]float64, []float64) {
		xs := make([]float64, 0, len(ivls)+1)
		vs := make([]float64, 0, len(ivls)+1)
		xs = append(xs, ivls[0].x0)
		vs = append(vs, ivls[0].v0)
		for _, iv := range ivls {
			xs = append(xs, iv.x1)
			vs = append(vs, iv.v1)
		}
		return xs, vs
	}
	for pass := 0; pass < 40 && len(ivls) < tableMaxNodes; pass++ {
		xs, vs := nodes()
		t := finishTable(xs, vs)
		next := make([]ivl, 0, len(ivls)+8)
		invalidateNext := false
		done := true
		for i := range ivls {
			iv := ivls[i]
			if invalidateNext {
				iv.ok = false
				invalidateNext = false
			}
			if iv.ok {
				next = append(next, iv)
				continue
			}
			xm := (iv.x0 + iv.x1) / 2
			if math.IsNaN(iv.vm) && xm > iv.x0 && xm < iv.x1 {
				iv.vm = f(xm)
				if !isFiniteLog(iv.vm) {
					iv.vm = math.Inf(0) // freeze: leave the piece to the interpolant
				}
			}
			if math.IsNaN(iv.vm) || math.IsInf(iv.vm, 0) ||
				math.Abs(t.evalAt(i, xm)-iv.vm) <= tol(iv.vm) {
				iv.ok = true
				next = append(next, iv)
				continue
			}
			// Split: the evaluated midpoint becomes a node, and the
			// derivative shift revokes both neighbors' validations.
			done = false
			if n := len(next); n > 0 {
				next[n-1].ok = false
			}
			invalidateNext = true
			next = append(next,
				ivl{x0: iv.x0, v0: iv.v0, x1: xm, v1: iv.vm, vm: math.NaN()},
				ivl{x0: xm, v0: iv.vm, x1: iv.x1, v1: iv.v1, vm: math.NaN()})
		}
		ivls = next
		if done {
			break
		}
	}
	return finishTable(nodes())
}

func isFiniteLog(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// sumTable is the full interpolated view of one quadrature-mode Sum. The
// cdf table's abscissa is w = ln(x − lo); the tail table's is plain x.
type sumTable struct {
	lo   float64  // exact support start (seconds): below, CDF = 0 and Tail = 1
	cdf  logTable // ln CDF against ln(x − lo)
	tail logTable // ln Tail against x
}

func durToSec(d time.Duration) float64 { return float64(d) / float64(time.Second) }
func secToDur(x float64) time.Duration { return time.Duration(x * float64(time.Second)) }

// cdfAt evaluates the interpolated CDF at x seconds, or falls back to the
// direct convolution outside the tabulated range.
func (t *sumTable) cdfAt(x float64, s *Sum) float64 {
	if x <= t.lo {
		return 0
	}
	if w := math.Log(x - t.lo); t.cdf.covers(w) {
		return math.Exp(t.cdf.eval(w))
	}
	if t.tail.covers(x) {
		return 1 - math.Exp(t.tail.eval(x))
	}
	if v, ok := t.tail.extrapolate(x); ok {
		return 1 - math.Exp(v)
	}
	return s.directCDF(secToDur(x))
}

// tailAt evaluates the interpolated Tail at x seconds, or falls back to
// the direct convolution outside the tabulated range.
func (t *sumTable) tailAt(x float64, s *Sum) float64 {
	if x <= t.lo {
		return 1
	}
	if t.tail.covers(x) {
		return math.Exp(t.tail.eval(x))
	}
	if v, ok := t.tail.extrapolate(x); ok {
		return math.Exp(v)
	}
	if w := math.Log(x - t.lo); t.cdf.covers(w) {
		return 1 - math.Exp(t.cdf.eval(w))
	}
	return s.directTail(secToDur(x))
}

// extrapolate extends the last segment log-linearly beyond the tabulated
// range — the sub-tableFloor regime where only the order of magnitude
// matters. Reports false below the table's range.
func (t *logTable) extrapolate(x float64) (float64, bool) {
	n := len(t.xs)
	if n < 2 || x <= t.xs[n-1] {
		return 0, false
	}
	d := t.ds[n-1]
	if d > 0 {
		d = 0 // tail tables decrease; never extrapolate upward
	}
	return t.vs[n-1] + d*(x-t.xs[n-1]), true
}

// supportLoSec returns the lower edge of a delay's support in seconds.
func supportLoSec(d Delay) float64 {
	switch v := d.(type) {
	case quadDist:
		lo, _ := v.support()
		return lo
	case Deterministic:
		return durToSec(v.D)
	default:
		return durToSec(quantileByBisect(d, 1e-12))
	}
}

// buildTable constructs the interpolated view of a quadrature-mode Sum.
// Returns a table with empty sides (pure direct fallback) when the
// distribution is too degenerate to bracket.
func (s *Sum) buildTable() *sumTable {
	t := &sumTable{lo: durToSec(s.pts[0]) + supportLoSec(s.other)}
	mid := durToSec(s.Mean())
	logCDF := func(x float64) float64 { return math.Log(s.directCDF(secToDur(x))) }
	logTail := func(x float64) float64 { return math.Log(s.directTail(secToDur(x))) }
	logFloor := math.Log(tableFloor)

	vMidC := logCDF(mid)
	vMidT := logTail(mid)
	if !isFiniteLog(vMidC) || !isFiniteLog(vMidT) || mid <= t.lo {
		return t
	}

	// Lower edge: march geometrically up from the support start until the
	// CDF clears the floor, then tabulate ln CDF against w = ln(x − lo).
	for frac := 1.0 / 1024; frac <= 1.0/2; frac *= 2 {
		x0 := t.lo + (mid-t.lo)*frac
		if v0 := logCDF(x0); isFiniteLog(v0) && v0 >= logFloor {
			t.cdf = buildLogTable(func(w float64) float64 {
				return logCDF(t.lo + math.Exp(w))
			}, tableTol, math.Log(x0-t.lo), v0, math.Log(mid-t.lo), vMidC)
			break
		}
	}

	// Upper edge: double outward until the tail dips under the floor,
	// then bisect the bracket to a point just above it and tabulate
	// ln Tail over [mid, x1].
	x1, v1 := mid, vMidT
	step := mid - t.lo
	for i := 0; i < 60; i++ {
		x := x1 + step
		v := logTail(x)
		if !isFiniteLog(v) || v < logFloor {
			// Bracket [x1, x]: tighten toward the floor.
			hi := x
			for k := 0; k < 12; k++ {
				m := (x1 + hi) / 2
				if vm := logTail(m); isFiniteLog(vm) && vm >= logFloor {
					x1, v1 = m, vm
				} else {
					hi = m
				}
			}
			break
		}
		x1, v1 = x, v
		step *= 2
	}
	if x1 > mid {
		t.tail = buildLogTable(logTail, tableTol, mid, vMidT, x1, v1)
	}
	return t
}

// table returns the interpolated view, building it after tableThreshold
// direct evaluations; nil while still in the direct regime. Safe for
// concurrent use.
func (s *Sum) table() *sumTable {
	if t := s.tbl.Load(); t != nil {
		return t
	}
	if s.evals.Add(1) <= tableThreshold {
		return nil
	}
	s.tblOnce.Do(func() { s.tbl.Store(s.buildTable()) })
	return s.tbl.Load()
}

// Package dist implements the delay distributions of the §VI-B
// random-delay model (Eqs. 26–34): a common Delay interface plus the
// concrete models the paper uses — fixed delays, uniform jitter, and the
// shifted gamma of Eq. 31 that the paper proposes for Internet paths —
// and the numeric convolution Sum that yields round-trip distributions
// dᵢ + d_min for the timeout optimization of Eq. 34.
//
// Tail is a first-class operation, not sugar for 1−CDF: the Eq. 34
// objective multiplies probabilities that sit within machine epsilon of 1
// (Experiment 2 balances tails of magnitude 1e-17 against 1e-26), so
// every model evaluates its upper tail directly with full relative
// precision down to the smallest positive float64.
package dist

import (
	"math/rand/v2"
	"time"
)

// Delay models a path's one-way delay distribution D.
type Delay interface {
	// Mean returns E[D].
	Mean() time.Duration
	// CDF returns P(D ≤ x).
	CDF(x time.Duration) float64
	// Tail returns P(D > x), evaluated directly so that tiny tail
	// probabilities keep full relative precision (1−CDF would round to 0
	// as soon as the CDF reaches 1−2⁻⁵³).
	Tail(x time.Duration) float64
	// Sample draws one delay from the given random stream.
	Sample(rng *rand.Rand) time.Duration
}

// quadDist is implemented by the continuous models; it exposes the
// density so Sum can discretize one operand with Gauss-Legendre
// quadrature.
type quadDist interface {
	// support returns [lo, hi] in seconds covering all probability mass
	// above roughly 1e-280.
	support() (lo, hi float64)
	// pdf returns the density at x seconds, in 1/seconds.
	pdf(x float64) float64
}

// Deterministic is a point mass: the delay is exactly D (the paper's
// fixed-delay base model of §IV–V).
type Deterministic struct {
	// D is the delay.
	D time.Duration
}

// Mean returns D.
func (d Deterministic) Mean() time.Duration { return d.D }

// CDF returns 1 for x ≥ D, 0 below.
func (d Deterministic) CDF(x time.Duration) float64 {
	if x >= d.D {
		return 1
	}
	return 0
}

// Tail returns 0 for x ≥ D, 1 below.
func (d Deterministic) Tail(x time.Duration) float64 {
	if x >= d.D {
		return 0
	}
	return 1
}

// Sample returns D.
func (d Deterministic) Sample(*rand.Rand) time.Duration { return d.D }

// Uniform is uniform jitter on [Lo, Hi]. A degenerate interval
// (Hi ≤ Lo) is a point mass at Lo.
type Uniform struct {
	// Lo is the smallest possible delay.
	Lo time.Duration
	// Hi is the largest possible delay.
	Hi time.Duration
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + (u.Hi-u.Lo)/2
}

// CDF returns P(D ≤ x).
func (u Uniform) CDF(x time.Duration) float64 {
	if u.Hi <= u.Lo {
		return Deterministic{D: u.Lo}.CDF(x)
	}
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	}
	return float64(x-u.Lo) / float64(u.Hi-u.Lo)
}

// Tail returns P(D > x).
func (u Uniform) Tail(x time.Duration) float64 {
	if u.Hi <= u.Lo {
		return Deterministic{D: u.Lo}.Tail(x)
	}
	switch {
	case x <= u.Lo:
		return 1
	case x >= u.Hi:
		return 0
	}
	return float64(u.Hi-x) / float64(u.Hi-u.Lo)
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Float64()*float64(u.Hi-u.Lo))
}

func (u Uniform) support() (lo, hi float64) { return u.Lo.Seconds(), u.Hi.Seconds() }

func (u Uniform) pdf(x float64) float64 {
	lo, hi := u.support()
	if x < lo || x > hi || hi <= lo {
		return 0
	}
	return 1 / (hi - lo)
}

package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// tableVPath1 is Experiment 2's path-1 delay model (Table V).
var tableVPath1 = ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}

func TestShiftedGammaInvariants(t *testing.T) {
	for _, g := range []ShiftedGamma{
		tableVPath1,
		{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond},
		{Shape: 0.5, Scale: 10 * time.Millisecond},
		{Loc: time.Millisecond, Shape: 1, Scale: time.Millisecond},
		{Loc: 449 * time.Millisecond, Shape: 100, Scale: 10 * time.Microsecond},
	} {
		checkDelayInvariants(t, g, 0, g.Mean()+20*time.Duration(math.Sqrt(g.Var())*float64(time.Second)))
	}
}

func TestShiftedGammaMoments(t *testing.T) {
	g := tableVPath1
	if want := 440 * time.Millisecond; g.Mean() != want {
		t.Errorf("Mean = %v, want %v", g.Mean(), want)
	}
	if want := 10 * 0.004 * 0.004; math.Abs(g.Var()-want) > 1e-15 {
		t.Errorf("Var = %v, want %v", g.Var(), want)
	}
}

// TestShiftedGammaExponential checks shape 1 against the closed-form
// exponential: CDF = 1 − e^{−z}, Tail = e^{−z}, down to tails of 1e-250.
func TestShiftedGammaExponential(t *testing.T) {
	g := ShiftedGamma{Loc: 50 * time.Millisecond, Shape: 1, Scale: 10 * time.Millisecond}
	for _, z := range []float64{0.1, 0.5, 1, 2, 5, 20, 100, 575} {
		x := g.Loc + time.Duration(z*float64(g.Scale))
		wantTail := math.Exp(-z)
		if got := g.Tail(x); math.Abs(got-wantTail)/wantTail > 1e-10 {
			t.Errorf("Tail(z=%v) = %v, want %v", z, got, wantTail)
		}
		if got, want := g.CDF(x), -math.Expm1(-z); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(z=%v) = %v, want %v", z, got, want)
		}
	}
	// Median of the exponential: Loc + ln2·Scale (tolerance covers the
	// nanosecond quantization of the probe point).
	median := g.Loc + time.Duration(math.Ln2*float64(g.Scale))
	if got := g.CDF(median); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("CDF(median) = %v, want 0.5", got)
	}
}

// TestShiftedGammaErlang checks shape 3 against the closed-form Erlang
// tail e^{−z}(1 + z + z²/2).
func TestShiftedGammaErlang(t *testing.T) {
	g := ShiftedGamma{Shape: 3, Scale: 8 * time.Millisecond}
	for _, z := range []float64{0.25, 1, 3, 10, 50, 200, 600} {
		x := time.Duration(z * float64(g.Scale))
		want := math.Exp(-z) * (1 + z + z*z/2)
		if got := g.Tail(x); math.Abs(got-want)/want > 1e-10 {
			t.Errorf("Tail(z=%v) = %v, want %v", z, got, want)
		}
	}
}

// TestShiftedGammaDeepTail pins the Experiment-2 regime: the Table V
// path-1 tail at the δ = 750 ms deadline is e⁻⁶⁰ ≈ 1e-26 and must be
// resolved with relative precision (1−CDF would return exactly 0 there).
func TestShiftedGammaDeepTail(t *testing.T) {
	tail := tableVPath1.Tail(750 * time.Millisecond)
	if tail <= 0 {
		t.Fatal("deep tail underflowed to 0")
	}
	// ln Q(10, 87.5) = −87.5 + 9·ln 87.5 − lnΓ(10) ≈ −60.06.
	if lg := math.Log(tail); lg < -60.5 || lg > -59.5 {
		t.Errorf("ln Tail(750ms) = %v, want ≈ -60.06", lg)
	}
	if cdf := tableVPath1.CDF(750 * time.Millisecond); cdf != 1 {
		t.Errorf("CDF(750ms) = %v, want exactly 1 at float64 resolution", cdf)
	}
	// Monotone decay continues far beyond: no NaN/negative underflow.
	prev := tail
	for x := 800 * time.Millisecond; x <= 3*time.Second; x += 100 * time.Millisecond {
		cur := tableVPath1.Tail(x)
		if cur < 0 || math.IsNaN(cur) || cur > prev {
			t.Fatalf("tail misbehaves at %v: %v (prev %v)", x, cur, prev)
		}
		prev = cur
	}
}

func TestShiftedGammaDegenerate(t *testing.T) {
	g := ShiftedGamma{Loc: 30 * time.Millisecond}
	if g.Mean() != 30*time.Millisecond || g.Var() != 0 {
		t.Error("degenerate moments")
	}
	if g.CDF(30*time.Millisecond) != 1 || g.Tail(29*time.Millisecond) != 1 {
		t.Error("degenerate CDF/Tail should step at Loc")
	}
	if g.Sample(nil) != 30*time.Millisecond {
		t.Error("degenerate Sample")
	}
}

// TestShiftedGammaSampleMoments: Marsaglia–Tsang samples match the
// analytic mean and variance, including the shape<1 boost path.
func TestShiftedGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, g := range []ShiftedGamma{
		tableVPath1,
		{Loc: 10 * time.Millisecond, Shape: 0.7, Scale: 20 * time.Millisecond},
	} {
		const n = 200000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			s := g.Sample(rng)
			if s < g.Loc {
				t.Fatalf("sample %v below Loc %v", s, g.Loc)
			}
			x := (s - g.Loc).Seconds()
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		wantMean := g.Shape * g.Scale.Seconds()
		if math.Abs(mean-wantMean)/wantMean > 0.02 {
			t.Errorf("shape %v: sample mean %v, want %v", g.Shape, mean, wantMean)
		}
		variance := sum2/n - mean*mean
		if math.Abs(variance-g.Var())/g.Var() > 0.05 {
			t.Errorf("shape %v: sample var %v, want %v", g.Shape, variance, g.Var())
		}
	}
}

// TestRegularizedGammaIdentity: P + Q = 1 across shapes spanning the
// GammaFit clamp range, on both sides of the series/fraction split.
func TestRegularizedGammaIdentity(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 100, 1e4, 1e6} {
		for _, r := range []float64{0.2, 0.9, 1, 1.1, 2, 5} {
			x := a * r
			p, q := lowerReg(a, x), upperReg(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P(%v,%v)+Q = %v, want 1", a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("P(%v,%v)=%v Q=%v outside [0,1]", a, x, p, q)
			}
		}
	}
}

package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// TestSumDeterministicExact: the convolution of two point masses is the
// exact point mass at the sum — no quadrature error at all.
func TestSumDeterministicExact(t *testing.T) {
	s := NewSum(Deterministic{D: 150 * time.Millisecond}, Deterministic{D: 100 * time.Millisecond})
	if s.Mean() != 250*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.CDF(249999999*time.Nanosecond) != 0 || s.CDF(250*time.Millisecond) != 1 {
		t.Error("CDF step not exactly at 250ms")
	}
	if s.Tail(250*time.Millisecond) != 0 || s.Tail(249*time.Millisecond) != 1 {
		t.Error("Tail step not exactly at 250ms")
	}
	if s.Sample(nil) != 250*time.Millisecond {
		t.Error("Sample")
	}
}

// TestSumDeterministicShift: adding a point mass to a gamma is an exact
// shift of the gamma, in either operand order.
func TestSumDeterministicShift(t *testing.T) {
	g := ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}
	d := Deterministic{D: 40 * time.Millisecond}
	for _, s := range []*Sum{NewSum(g, d), NewSum(d, g)} {
		for _, x := range []time.Duration{100, 140, 150, 160, 200} {
			x *= time.Millisecond
			if got, want := s.CDF(x), g.CDF(x-40*time.Millisecond); got != want {
				t.Errorf("CDF(%v) = %v, want %v", x, got, want)
			}
			if got, want := s.Tail(x), g.Tail(x-40*time.Millisecond); got != want {
				t.Errorf("Tail(%v) = %v, want %v", x, got, want)
			}
		}
	}
}

// TestSumMatchesAnalyticGammaSum: Γ(k₁,θ) + Γ(k₂,θ) with a common scale
// is exactly Γ(k₁+k₂,θ), shifts adding. The quadrature must match the
// closed form in the bulk and keep relative accuracy deep into the tail.
func TestSumMatchesAnalyticGammaSum(t *testing.T) {
	a := ShiftedGamma{Loc: 10 * time.Millisecond, Shape: 3, Scale: 4 * time.Millisecond}
	b := ShiftedGamma{Loc: 20 * time.Millisecond, Shape: 2, Scale: 4 * time.Millisecond}
	want := ShiftedGamma{Loc: 30 * time.Millisecond, Shape: 5, Scale: 4 * time.Millisecond}
	s := NewSum(a, b)
	if s.Mean() != want.Mean() {
		t.Errorf("Mean = %v, want %v", s.Mean(), want.Mean())
	}
	for x := 31 * time.Millisecond; x <= 140*time.Millisecond; x += time.Millisecond {
		cdf, wantCDF := s.CDF(x), want.CDF(x)
		if math.Abs(cdf-wantCDF) > 5e-6 {
			t.Errorf("CDF(%v) = %v, want %v", x, cdf, wantCDF)
		}
		tail, wantTail := s.Tail(x), want.Tail(x)
		if wantTail > 1e-100 && math.Abs(tail-wantTail)/wantTail > 1e-3 {
			t.Errorf("Tail(%v) = %v, want %v (rel err %v)", x, tail, wantTail,
				math.Abs(tail-wantTail)/wantTail)
		}
	}
	// At 140 ms the analytic tail is below 1e-7; confirm the sum tracked
	// it into genuinely small territory.
	if wt := want.Tail(140 * time.Millisecond); wt > 1e-7 {
		t.Fatalf("test premise broken: analytic tail %v not small", wt)
	}
}

// TestSumExperiment2RTT covers the exact Sum the timeout optimizer
// builds for Experiment 2 (path delay + ack-path delay) and the tail
// magnitude the paper's t₂,₂ optimum balances (~1e-17 at 323 ms).
func TestSumExperiment2RTT(t *testing.T) {
	d2 := ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}
	rtt := NewSumNodes(d2, d2, 1500)
	checkDelayInvariants(t, rtt, 200*time.Millisecond, 400*time.Millisecond)
	tail := rtt.Tail(323 * time.Millisecond)
	if tail <= 0 {
		t.Fatal("RTT tail underflowed")
	}
	if lg := math.Log10(tail); lg < -21 || lg > -13 {
		t.Errorf("log10 Tail(323ms) = %v, want ≈ -17", lg)
	}
	if mean, want := rtt.Mean(), 220*time.Millisecond; mean != want {
		t.Errorf("Mean = %v, want %v", mean, want)
	}
}

// TestSumUniformOperands: Uniform+Uniform has the closed-form triangular
// CDF; also exercises the Uniform quadrature path.
func TestSumUniformOperands(t *testing.T) {
	u := Uniform{Lo: 0, Hi: 10 * time.Millisecond}
	s := NewSum(u, u)
	checkDelayInvariants(t, s, 0, 25*time.Millisecond)
	// P(U1+U2 ≤ 10ms) = 1/2 by symmetry; P(≤ 5ms) = 1/8.
	if got := s.CDF(10 * time.Millisecond); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("CDF(10ms) = %v, want 0.5", got)
	}
	if got := s.CDF(5 * time.Millisecond); math.Abs(got-0.125) > 1e-6 {
		t.Errorf("CDF(5ms) = %v, want 0.125", got)
	}
}

// TestSumFallbackNested: a Sum of Sums has no density and takes the
// CDF-discretization fallback; bulk accuracy must survive. Node counts
// are kept small — nested evaluation is O(nodes²) per probe.
func TestSumFallbackNested(t *testing.T) {
	g := ShiftedGamma{Loc: 10 * time.Millisecond, Shape: 4, Scale: 3 * time.Millisecond}
	inner := NewSumNodes(g, g, 200)
	outer := NewSumNodes(inner, inner, 200)
	if got, want := outer.Mean(), 4*g.Mean(); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Γ summing: the outer sum is Loc 40ms + Γ(16, 3ms) exactly.
	want := ShiftedGamma{Loc: 40 * time.Millisecond, Shape: 16, Scale: 3 * time.Millisecond}
	prev := -1.0
	for x := 50 * time.Millisecond; x <= 150*time.Millisecond; x += 5 * time.Millisecond {
		got := outer.CDF(x)
		if math.Abs(got-want.CDF(x)) > 1e-3 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want.CDF(x))
		}
		if got < prev {
			t.Errorf("CDF not monotone at %v", x)
		}
		if tail := outer.Tail(x); got > 1e-6 && tail > 1e-6 && math.Abs(tail-(1-got)) > 1e-9 {
			t.Errorf("Tail(%v) inconsistent with CDF", x)
		}
		prev = got
	}
}

// TestSumSampleAgreesWithCDF: empirical CDF of Sum.Sample matches
// Sum.CDF (Kolmogorov-style max deviation bound).
func TestSumSampleAgreesWithCDF(t *testing.T) {
	g1 := ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}
	g2 := ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}
	s := NewSum(g1, g2)
	rng := rand.New(rand.NewPCG(3, 9))
	const n = 50000
	for _, x := range []time.Duration{540, 555, 570, 600} {
		x *= time.Millisecond
		hits := 0
		for i := 0; i < n; i++ {
			if s.Sample(rng) <= x {
				hits++
			}
		}
		// Reseed per probe for independence of the comparison.
		rng = rand.New(rand.NewPCG(3, uint64(x)))
		emp := float64(hits) / n
		if want := s.CDF(x); math.Abs(emp-want) > 0.01 {
			t.Errorf("empirical CDF(%v) = %v, model %v", x, emp, want)
		}
	}
}

// TestNewSumNodesDefaults: non-positive node counts select the default.
func TestNewSumNodesDefaults(t *testing.T) {
	g := ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}
	s := NewSumNodes(g, g, 0)
	if len(s.pts) == 0 {
		t.Fatal("no quadrature points built")
	}
	if got, want := len(s.pts), (DefaultSumNodes/glPoints)*glPoints; got > want {
		t.Errorf("node count %v exceeds requested %v", got, want)
	}
	var mass float64
	for _, w := range s.wts {
		mass += w
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("quadrature mass = %v, want 1", mass)
	}
}

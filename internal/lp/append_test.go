package lp

import (
	"math"
	"math/rand"
	"testing"
)

// cgShapedProblem draws a bounded random LP shaped like the paper's
// restricted masters: a handful of ≤ resource rows plus one = 1
// convexity row over nVars columns.
func cgShapedProblem(rng *rand.Rand, nVars, nCons int) *Problem {
	p := NewProblem(Maximize, randVec(rng, nVars, 0.1, 1))
	for c := 0; c < nCons; c++ {
		// RHS ≥ 5 ≥ every coefficient: any convex mix satisfies the row,
		// so the instance is feasible by construction.
		p.AddConstraint(randVec(rng, nVars, 0.1, 5), LE, 5+rng.Float64()*10)
	}
	ones := make([]float64, nVars)
	for j := range ones {
		ones[j] = 1
	}
	p.AddConstraint(ones, EQ, 1)
	return p
}

// extendProblem returns p with k fresh columns appended to every row
// and the objective — the incremental step of a column-generation loop.
func extendProblem(rng *rand.Rand, p *Problem, k int) *Problem {
	nVars := p.NumVars()
	out := NewProblem(p.Sense, append(append([]float64(nil), p.Objective...), randVec(rng, k, 0.1, 1)...))
	for _, con := range p.Constraints {
		coeffs := append(append([]float64(nil), con.Coeffs...), randVec(rng, k, 0.1, 5)...)
		if con.Rel == EQ { // keep the convexity row all-ones
			for j := nVars; j < nVars+k; j++ {
				coeffs[j] = 1
			}
		}
		out.AddConstraint(coeffs, con.Rel, con.RHS)
	}
	return out
}

// TestAppendSolveMatchesCold: appending columns onto a hot tableau must
// reach the same optimum as a cold solve of the extended problem, over
// randomized instances and multi-step append chains.
func TestAppendSolveMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa99e))
	chains := 0
	for trial := 0; trial < 150; trial++ {
		solver := NewSolver()
		p := cgShapedProblem(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		sol, err := solver.SolveWith(p, Options{CaptureBasis: true})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("trial %d: base solve: %v / %+v", trial, err, sol)
		}
		// Chain several appends on the same hot tableau.
		steps := 1 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			oldN := p.NumVars()
			p = extendProblem(rng, p, 1+rng.Intn(5))
			got, err := solver.AppendSolve(p, oldN, Options{})
			if err != nil {
				t.Fatalf("trial %d step %d: append solve: %v", trial, step, err)
			}
			ref, err := NewSolver().Solve(p)
			if err != nil || ref.Status != Optimal {
				t.Fatalf("trial %d step %d: cold solve: %v", trial, step, err)
			}
			scale := 1 + math.Abs(ref.Objective)
			if math.Abs(got.Objective-ref.Objective) > 1e-7*scale {
				t.Fatalf("trial %d step %d: append objective %v vs cold %v",
					trial, step, got.Objective, ref.Objective)
			}
			if v := Verify(p, got.X, 1e-7); len(v) != 0 {
				t.Fatalf("trial %d step %d: append solution infeasible: %v", trial, step, v)
			}
			for i := range ref.Dual {
				if math.Abs(got.Dual[i]-ref.Dual[i]) > 1e-6*(1+math.Abs(ref.Dual[i])) {
					t.Fatalf("trial %d step %d: dual[%d] %v vs cold %v",
						trial, step, i, got.Dual[i], ref.Dual[i])
				}
			}
			chains++
		}
	}
	if chains == 0 {
		t.Fatal("no append chain ever ran")
	}
}

// TestAppendSolveMinimize covers the Minimize sense (the min-cost
// master): appended columns must carry the sign-adjusted objective.
func TestAppendSolveMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(0x317))
	for trial := 0; trial < 60; trial++ {
		solver := NewSolver()
		nVars := 2 + rng.Intn(5)
		p := NewProblem(Minimize, randVec(rng, nVars, 0.1, 2))
		p.AddConstraint(randVec(rng, nVars, 0.2, 2), GE, 0.5+rng.Float64())
		ones := make([]float64, nVars)
		for j := range ones {
			ones[j] = 1
		}
		p.AddConstraint(ones, EQ, 1)
		sol, err := solver.SolveWith(p, Options{CaptureBasis: true})
		if err != nil || sol.Status != Optimal {
			continue // a too-tight GE row can be infeasible; skip
		}
		oldN := p.NumVars()
		ext := NewProblem(Minimize, append(append([]float64(nil), p.Objective...), randVec(rng, 2, 0.1, 2)...))
		for _, con := range p.Constraints {
			coeffs := append(append([]float64(nil), con.Coeffs...), randVec(rng, 2, 0.2, 2)...)
			if con.Rel == EQ {
				coeffs[oldN], coeffs[oldN+1] = 1, 1
			}
			ext.AddConstraint(coeffs, con.Rel, con.RHS)
		}
		got, err := solver.AppendSolve(ext, oldN, Options{})
		if err != nil {
			t.Fatalf("trial %d: append: %v", trial, err)
		}
		ref := mustSolve(t, ext)
		if math.Abs(got.Objective-ref.Objective) > 1e-7*(1+math.Abs(ref.Objective)) {
			t.Fatalf("trial %d: append min %v vs cold %v", trial, got.Objective, ref.Objective)
		}
	}
}

// TestAppendSolveGuards: a cold solver, a shrunk column set, and a
// changed row structure must all be refused (the caller then solves
// cold) instead of producing answers for a problem that was never
// loaded.
func TestAppendSolveGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := cgShapedProblem(rng, 4, 2)

	if _, err := NewSolver().AppendSolve(p, 4, Options{}); err == nil {
		t.Error("append on a cold solver accepted")
	}

	solver := NewSolver()
	if _, err := solver.SolveWith(p, Options{}); err != nil {
		t.Fatal(err)
	}
	ext := extendProblem(rng, p, 2)
	if _, err := solver.AppendSolve(ext, 3, Options{}); err == nil {
		t.Error("wrong oldN accepted")
	}
	if _, err := solver.AppendSolve(p, 6, Options{}); err == nil {
		t.Error("shrunk column set accepted")
	}
	bad := extendProblem(rng, p, 1)
	bad.Constraints[0].Rel = GE
	if _, err := solver.AppendSolve(bad, p.NumVars(), Options{}); err == nil {
		t.Error("changed row relation accepted")
	}
}

// TestAppendSolveAfterWarmStart: the append path must compose with a
// warm-started first solve (the resolve regime: install basis, then
// keep appending CG columns onto the hot tableau).
func TestAppendSolveAfterWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	solver := NewSolver()
	p := cgShapedProblem(rng, 5, 3)
	first, err := solver.SolveWith(p, Options{CaptureBasis: true})
	if err != nil || first.Status != Optimal {
		t.Fatal(err)
	}
	warm, err := solver.SolveWith(p, Options{WarmBasis: first.Basis})
	if err != nil || !warm.WarmStarted {
		t.Fatalf("warm restart failed: %v %+v", err, warm)
	}
	oldN := p.NumVars()
	p = extendProblem(rng, p, 3)
	got, err := solver.AppendSolve(p, oldN, Options{})
	if err != nil {
		t.Fatalf("append after warm start: %v", err)
	}
	ref := mustSolve(t, p)
	if math.Abs(got.Objective-ref.Objective) > 1e-7*(1+math.Abs(ref.Objective)) {
		t.Fatalf("append %v vs cold %v", got.Objective, ref.Objective)
	}
}

// TestDualSimplexRepair: shrinking only the right-hand sides leaves the
// old optimal basis dual feasible but primal infeasible — exactly the
// dual-simplex regime. The warm solve must engage it (DualPivots > 0
// on at least some trials), skip Phase I, and still match cold solves.
func TestDualSimplexRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd0a1))
	solver := NewSolver()
	dualRepaired := 0
	for trial := 0; trial < 200; trial++ {
		nVars := 2 + rng.Intn(5)
		p := NewProblem(Maximize, randVec(rng, nVars, 1, 10))
		for c := 0; c < 1+rng.Intn(3); c++ {
			p.AddConstraint(randVec(rng, nVars, 0.5, 5), LE, 5+rng.Float64()*20)
		}
		cold, err := solver.SolveWith(p, Options{CaptureBasis: true})
		if err != nil || cold.Status != Optimal {
			continue
		}
		pert := NewProblem(p.Sense, p.Objective)
		for _, con := range p.Constraints {
			pert.AddConstraint(con.Coeffs, con.Rel, con.RHS*(0.2+rng.Float64()*0.5))
		}
		warm, err := solver.SolveWith(pert, Options{WarmBasis: cold.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		ref, err := NewSolver().Solve(pert)
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != ref.Status {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, ref.Status)
		}
		if warm.Status == Optimal {
			if math.Abs(warm.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Objective, ref.Objective)
			}
		}
		if warm.DualPivots > 0 {
			dualRepaired++
		}
	}
	if dualRepaired == 0 {
		t.Fatal("no trial ever used dual-simplex repair; the path is dead")
	}
}

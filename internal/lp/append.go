package lp

import (
	"fmt"
	"math"

	"dmc/internal/fault"
)

// fpAppend fires at the top of AppendSolve; every caller already falls
// back to a full SolveWith on error.
var fpAppend = fault.Register("lp.append")

// AppendSolve re-optimizes the problem last solved on this Solver after
// new structural columns were appended to it — the true incremental
// simplex step behind column generation. The solver's tableau is still
// hot from the previous solve: instead of reloading the whole problem
// and re-installing the basis pivot by pivot, each appended raw column
// is transformed into the current basis representation (multiplying by
// the implicit B⁻¹ carried by the unit-origin auxiliary columns) and
// written into the widened tableau in place. The current basis stays
// primal feasible — appended columns enter at zero — so Phase I is
// skipped and Phase II resumes directly.
//
// p must be the previously solved problem extended by trailing columns
// only: the first oldN objective coefficients, every constraint's first
// oldN coefficients, all relations, and all right-hand sides must be
// unchanged (this is a contract, not something AppendSolve can verify
// cheaply). Violating it produces results for a problem that was never
// posed. AppendSolve returns an error — and the caller must fall back
// to a full SolveWith — when the solver is not hot (no prior optimal
// solve, or an intervening load), the row structure changed, or the
// re-optimized point fails a feasibility audit against p's raw data
// (the audit bounds the numerical drift a long append chain can
// accumulate: a solution the raw problem rejects is never returned).
func (s *Solver) AppendSolve(p *Problem, oldN int, opts Options) (*Solution, error) {
	if err := fpAppend.Hit(); err != nil {
		return nil, err
	}
	if !s.hot {
		return nil, fmt.Errorf("lp: AppendSolve without a hot optimal tableau")
	}
	if oldN != s.n {
		return nil, fmt.Errorf("lp: AppendSolve oldN %d, solver holds %d structural columns", oldN, s.n)
	}
	newN := p.NumVars()
	if newN < oldN {
		return nil, fmt.Errorf("lp: AppendSolve shrank the column set (%d -> %d)", oldN, newN)
	}
	// Row structure must be byte-identical to the loaded problem.
	kept := 0
	for _, c := range p.Constraints {
		if math.IsInf(c.RHS, 0) {
			continue
		}
		if kept >= s.m {
			return nil, fmt.Errorf("lp: AppendSolve row count grew")
		}
		rel := c.Rel
		if c.RHS < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel != s.rel[kept] {
			return nil, fmt.Errorf("lp: AppendSolve row %d relation changed", kept)
		}
		kept++
	}
	if kept != s.m {
		return nil, fmt.Errorf("lp: AppendSolve kept-row count %d, want %d", kept, s.m)
	}

	// Preserve the previous options' tolerances; honor the new capture
	// request. A WarmBasis is meaningless here (the hot basis IS the
	// warm start) and is ignored.
	capture := s.opts.CaptureBasis || opts.CaptureBasis
	s.opts.CaptureBasis = capture

	if k := newN - oldN; k > 0 {
		s.widen(k)
		if err := s.appendColumns(p, oldN); err != nil {
			s.hot = false
			return nil, err
		}
	}

	s.degenerate, s.dualPivots = 0, 0
	sol, err := s.run(p, warmFeasible)
	if err != nil {
		s.hot = false
		return nil, err
	}
	if sol.Status != Optimal {
		// Masters only grow, so a previously feasible master cannot go
		// infeasible and the objectives this solver serves are bounded;
		// any non-optimal verdict off an append chain is numerical —
		// hand the problem back for an authoritative cold solve.
		s.hot = false
		return nil, fmt.Errorf("lp: append re-solve unexpectedly %v", sol.Status)
	}
	// Audit the claimed optimum against the raw problem data: the append
	// chain never refactorizes, so accumulated roundoff must be caught
	// here rather than trusted.
	if !Feasible(p, sol.X, 1e2*s.opts.Tol) {
		s.hot = false
		return nil, fmt.Errorf("lp: append re-solve drifted infeasible")
	}
	return sol, nil
}

// widen grows the tableau by k structural columns in place: every row's
// auxiliary block (slacks, artificials, repair columns) shifts right by
// k, the per-column bookkeeping follows, and the k new slots are left
// for appendColumns to fill.
func (s *Solver) widen(k int) {
	oldTotal := s.total
	newTotal := oldTotal + k

	if cap(s.a) >= s.m*newTotal {
		a := s.a[:s.m*newTotal]
		// Rows move right; walking them back to front keeps every
		// source read ahead of its destination write (copy is
		// memmove-safe for the in-row overlaps).
		for i := s.m - 1; i >= 0; i-- {
			copy(a[i*newTotal+s.n+k:i*newTotal+newTotal], a[i*oldTotal+s.n:i*oldTotal+oldTotal])
			if i > 0 {
				copy(a[i*newTotal:i*newTotal+s.n], a[i*oldTotal:i*oldTotal+s.n])
			}
		}
		s.a = a
	} else {
		// Allocate with headroom so an append-heavy column-generation
		// loop widens O(log n) times, not every iteration.
		a := make([]float64, s.m*newTotal, s.m*newTotal+s.m*newTotal/2)
		for i := 0; i < s.m; i++ {
			copy(a[i*newTotal:i*newTotal+s.n], s.a[i*oldTotal:i*oldTotal+s.n])
			copy(a[i*newTotal+s.n+k:i*newTotal+newTotal], s.a[i*oldTotal+s.n:i*oldTotal+oldTotal])
		}
		s.a = a
	}

	growShift := func(buf []float64) []float64 {
		if cap(buf) >= newTotal {
			buf = buf[:newTotal]
			copy(buf[s.n+k:newTotal], buf[s.n:oldTotal])
			return buf
		}
		nb := make([]float64, newTotal, newTotal+newTotal/2)
		copy(nb[:s.n], buf[:s.n])
		copy(nb[s.n+k:], buf[s.n:oldTotal])
		return nb
	}
	s.obj = growShift(s.obj)
	s.z = growShift(s.z)
	if cap(s.work) >= newTotal {
		s.work = s.work[:newTotal]
	} else {
		s.work = make([]float64, newTotal, newTotal+newTotal/2)
	}

	for i := 0; i < s.m; i++ {
		if s.basis[i] >= s.n {
			s.basis[i] += k
		}
		s.unit[i] += k
	}
	s.artCol += k
	s.total = newTotal
	s.n += k
}

// appendColumns writes the transformed coefficients and objective of
// columns [s.n-k, s.n) — already widened into the tableau — from p's
// raw data. Each raw column is row-scaled exactly as load would have
// and multiplied by the implicit B⁻¹ read off the unit-origin auxiliary
// columns, so the new entries land in the same basis representation the
// rest of the tableau is in.
func (s *Solver) appendColumns(p *Problem, oldN int) error {
	raw := s.work[:s.m] // scratch: scaled raw coefficients per kept row
	for j := oldN; j < s.n; j++ {
		c := p.Objective[j]
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: appended objective coefficient %d is %v", j, c)
		}
		s.obj[j] = s.sign * c

		nz := 0
		for i := 0; i < s.m; i++ {
			a := p.Constraints[s.orig[i]].Coeffs[j]
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("lp: appended coefficient (%d,%d) is %v", s.orig[i], j, a)
			}
			v := a * s.flip[i] / s.scale[i]
			raw[i] = v
			if v != 0 {
				nz++
			}
		}
		// ā = B⁻¹·raw, column q of B⁻¹ being the current values of row
		// q's unit-origin auxiliary column. The paper's columns touch a
		// handful of rows each, so the inner loop skips zero raws.
		for r := 0; r < s.m; r++ {
			var v float64
			if nz > 0 {
				row := s.a[r*s.total : (r+1)*s.total]
				for q := 0; q < s.m; q++ {
					if raw[q] != 0 {
						v += row[s.unit[q]] * raw[q]
					}
				}
			}
			s.a[r*s.total+j] = v
		}
	}
	return nil
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

// warmProblem is a small LP whose optimal basis stays optimal under
// modest coefficient drift.
func warmProblem(scale float64) *Problem {
	p := NewProblem(Maximize, []float64{3 * scale, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12*scale)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	return p
}

func TestWarmStartSkipsPhase1(t *testing.T) {
	s := NewSolver()
	cold, err := s.SolveWith(warmProblem(1), Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Basis == nil {
		t.Fatal("optimal solution carries no basis")
	}
	if cold.WarmStarted {
		t.Fatal("cold solve reported warm start")
	}

	perturbed := warmProblem(1.05)
	warm, err := s.SolveWith(perturbed, Options{WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("compatible basis was not reused")
	}
	ref, err := NewSolver().Solve(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(warm.Objective, ref.Objective, tol) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, ref.Objective)
	}
	if v := Verify(perturbed, warm.X, tol); len(v) != 0 {
		t.Fatalf("warm solution infeasible: %v", v)
	}
	if warm.Iterations > ref.Iterations+cold.Basis.NumRows() {
		t.Errorf("warm solve used %d pivots, cold %d: warm start saved nothing",
			warm.Iterations, ref.Iterations)
	}
}

func TestWarmStartIncompatibleBasisSolvesCold(t *testing.T) {
	cold, err := SolveWith(warmProblem(1), Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	// Different row structure: extra constraint.
	p := warmProblem(1)
	p.AddConstraint([]float64{1, 1}, LE, 100)
	sol, err := SolveWith(p, Options{WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol.WarmStarted {
		t.Fatal("incompatible basis reported as warm start")
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 36, tol) {
		t.Fatalf("cold fallback wrong: %v obj %v", sol.Status, sol.Objective)
	}
}

func TestWarmStartInfeasibleBasisFallsBack(t *testing.T) {
	// Equality-constrained LP: max x+y s.t. x+y = 10, x ≤ 8.
	build := func(rhs float64) *Problem {
		p := NewProblem(Maximize, []float64{1, 1})
		p.AddConstraint([]float64{1, 1}, EQ, rhs)
		p.AddConstraint([]float64{1, 0}, LE, 8)
		return p
	}
	cold, err := SolveWith(build(10), Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	// With the basis of rhs=10 (x and slack basic, say), shrinking the
	// equality to 3 keeps it factorizable; growing the LE bound past the
	// equality flips which rows bind. Either way the result must match a
	// cold solve exactly, warm-started or not.
	for _, rhs := range []float64{3, 10, 25} {
		p := build(rhs)
		warm, err := SolveWith(p, Options{WarmBasis: cold.Basis})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Solve(build(rhs))
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != ref.Status || !almostEq(warm.Objective, ref.Objective, tol) {
			t.Fatalf("rhs=%v: warm %v obj %v, cold %v obj %v",
				rhs, warm.Status, warm.Objective, ref.Status, ref.Objective)
		}
	}
}

func TestWarmStartRejectsNegativeRHSBasis(t *testing.T) {
	// A basis that is primal infeasible for the perturbed RHS must be
	// detected and the solve must fall back to the cold path, not return
	// a negative "solution".
	p := NewProblem(Maximize, []float64{1})
	p.AddConstraint([]float64{1}, LE, 5)
	p.AddConstraint([]float64{1}, GE, 1)
	cold, err := SolveWith(p, Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	q := NewProblem(Maximize, []float64{1})
	q.AddConstraint([]float64{1}, LE, 5)
	q.AddConstraint([]float64{1}, GE, 6) // infeasible overall
	sol, err := SolveWith(q, Options{WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestBasisRemapAppendedColumns(t *testing.T) {
	p := warmProblem(1)
	cold, err := SolveWith(p, Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	// Append a (useless) third column to the same rows.
	q := NewProblem(Maximize, []float64{3, 5, 0.1})
	q.AddConstraint([]float64{1, 0, 1}, LE, 4)
	q.AddConstraint([]float64{0, 2, 1}, LE, 12)
	q.AddConstraint([]float64{3, 2, 5}, LE, 18)
	remapped := cold.Basis.Remap(3, nil)
	if remapped == nil {
		t.Fatal("identity remap onto a superset failed")
	}
	warm, err := SolveWith(q, Options{WarmBasis: remapped})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("remapped basis was not reused")
	}
	ref, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(warm.Objective, ref.Objective, tol) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, ref.Objective)
	}
}

func TestBasisRemapDroppedColumn(t *testing.T) {
	p := warmProblem(1)
	cold, err := SolveWith(p, Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	structural := cold.Basis.StructuralCols()
	var basic int = -1
	for _, c := range structural {
		if c >= 0 {
			basic = c
			break
		}
	}
	if basic < 0 {
		t.Fatal("no structural column basic at the optimum")
	}
	perm := []int{0, 1}
	perm[basic] = -1 // drop a basic column: remap must refuse
	if got := cold.Basis.Remap(2, perm); got != nil {
		t.Fatal("remap with a dropped basic column did not return nil")
	}
}

// TestWarmStartRandomDifferential perturbs random feasible LPs and
// checks warm-started solves agree with cold solves everywhere.
func TestWarmStartRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	warmUsed := 0
	solver := NewSolver()
	for trial := 0; trial < 200; trial++ {
		nVars := 2 + rng.Intn(5)
		nCons := 1 + rng.Intn(4)
		base := NewProblem(Maximize, randVec(rng, nVars, 1, 10))
		for c := 0; c < nCons; c++ {
			base.AddConstraint(randVec(rng, nVars, 0, 5), LE, 5+rng.Float64()*20)
		}
		cold, err := solver.SolveWith(base, Options{CaptureBasis: true})
		if err != nil || cold.Status != Optimal {
			continue
		}
		// Drift every coefficient by up to ±10%.
		drift := func(v float64) float64 { return v * (1 + (rng.Float64()-0.5)*0.2) }
		pert := NewProblem(base.Sense, base.Objective)
		for j := range pert.Objective {
			pert.Objective[j] = drift(pert.Objective[j])
		}
		for _, con := range base.Constraints {
			coeffs := make([]float64, len(con.Coeffs))
			for j, a := range con.Coeffs {
				coeffs[j] = drift(a)
			}
			pert.AddConstraint(coeffs, con.Rel, drift(con.RHS))
		}
		warm, err := solver.SolveWith(pert, Options{WarmBasis: cold.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		ref, err := NewSolver().Solve(pert)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		if warm.Status != ref.Status {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, ref.Status)
		}
		if warm.Status == Optimal {
			scale := 1 + math.Abs(ref.Objective)
			if math.Abs(warm.Objective-ref.Objective) > 1e-6*scale {
				t.Fatalf("trial %d: warm objective %v != cold %v", trial, warm.Objective, ref.Objective)
			}
			if v := Verify(pert, warm.X, 1e-6); len(v) != 0 {
				t.Fatalf("trial %d: warm solution infeasible: %v", trial, v)
			}
		}
		if warm.WarmStarted {
			warmUsed++
		}
	}
	if warmUsed == 0 {
		t.Fatal("no trial ever warm-started; the warm path is dead")
	}
}

func randVec(rng *rand.Rand, n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

// TestWarmRepairPreservesDuals pins the repaired-basis dual convention:
// a warm solve whose basis needed repair (row flips) must return the
// same constraint multipliers as a cold solve — row scaling is an
// elementary operation and must not leak into Solution.Dual.
func TestWarmRepairPreservesDuals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solver := NewSolver()
	checked := 0
	for trial := 0; trial < 300 && checked < 50; trial++ {
		nVars := 2 + rng.Intn(4)
		base := NewProblem(Maximize, randVec(rng, nVars, 1, 10))
		for c := 0; c < 1+rng.Intn(3); c++ {
			base.AddConstraint(randVec(rng, nVars, 0, 5), LE, 5+rng.Float64()*20)
		}
		base.AddConstraint(randVec(rng, nVars, 0.5, 2), EQ, 3+rng.Float64()*5)
		cold, err := solver.SolveWith(base, Options{CaptureBasis: true})
		if err != nil || cold.Status != Optimal {
			continue
		}
		// Violent RHS shrink: the old basis goes primal infeasible and
		// the repair path engages.
		pert := NewProblem(base.Sense, base.Objective)
		for _, con := range base.Constraints {
			pert.AddConstraint(con.Coeffs, con.Rel, con.RHS*(0.2+rng.Float64()*0.3))
		}
		warm, err := solver.SolveWith(pert, Options{WarmBasis: cold.Basis})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := NewSolver().Solve(pert)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if warm.Status != Optimal || ref.Status != Optimal {
			continue
		}
		checked++
		for i := range ref.Dual {
			if math.Abs(warm.Dual[i]-ref.Dual[i]) > 1e-6*(1+math.Abs(ref.Dual[i])) {
				t.Fatalf("trial %d: dual[%d] = %v warm vs %v cold (warmStarted=%v)",
					trial, i, warm.Dual[i], ref.Dual[i], warm.WarmStarted)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d trials reached the dual comparison", checked)
	}
}

package lp

import (
	"math"
	"testing"
)

// FuzzSolveSmallLP throws arbitrary 2-variable, 2-constraint problems at
// the solver: it must never panic, and any Optimal answer must verify
// feasible.
func FuzzSolveSmallLP(f *testing.F) {
	f.Add(1.0, 2.0, 1.0, 1.0, 3.0, 1.0, -1.0, 1.0, true, false)
	f.Add(-5.0, 0.5, 2.0, 0.0, -1.0, 0.0, 1.0, 10.0, false, true)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, true, true)
	f.Fuzz(func(t *testing.T, c1, c2, a11, a12, b1, a21, a22, b2 float64, max bool, eq bool) {
		for _, v := range []float64{c1, c2, a11, a12, b1, a21, a22, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return // validated inputs rejected elsewhere; fuzz the solver core
			}
		}
		sense := Minimize
		if max {
			sense = Maximize
		}
		p := NewProblem(sense, []float64{c1, c2})
		p.AddConstraint([]float64{a11, a12}, LE, b1)
		rel := GE
		if eq {
			rel = EQ
		}
		p.AddConstraint([]float64{a21, a22}, rel, b2)
		// Box to keep everything bounded.
		p.AddConstraint([]float64{1, 0}, LE, 1e6)
		p.AddConstraint([]float64{0, 1}, LE, 1e6)

		sol, err := Solve(p)
		if err != nil {
			return // iteration-limit style errors are acceptable
		}
		if sol.Status == Optimal {
			if v := Verify(p, sol.X, 1e-5); len(v) != 0 {
				t.Fatalf("optimal but infeasible: %v\nproblem:\n%v", v, p)
			}
		}
	})
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-7

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve(%v): %v", p, err)
	}
	return sol
}

func requireOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal\nproblem:\n%v", sol.Status, p)
	}
	if v := Verify(p, sol.X, tol); len(v) != 0 {
		t.Fatalf("optimal solution infeasible: %v\nx = %v", v, sol.X)
	}
	return sol
}

func TestSolveBasicMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18 — classic; opt 36 at (2,6).
	p := NewProblem(Maximize, []float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 36, tol) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almostEq(sol.X[0], 2, tol) || !almostEq(sol.X[1], 6, tol) {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestSolveBasicMin(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3. Opt at (7,3): 23.
	p := NewProblem(Minimize, []float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	p.AddConstraint([]float64{0, 1}, GE, 3)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 23, tol) {
		t.Errorf("objective = %v, want 23", sol.Objective)
	}
}

func TestSolveEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 1 → opt 2 at (0,1).
	p := NewProblem(Maximize, []float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 1)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 2, tol) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
	if !almostEq(sol.X[1], 1, tol) {
		t.Errorf("x = %v, want [0 1]", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(Maximize, []float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveInfeasibleEquality(t *testing.T) {
	// x + y = 5 with x,y ≥ 0 and x + y ≤ 3.
	p := NewProblem(Maximize, []float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 1}, LE, 3)
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(Maximize, []float64{1, 1})
	p.AddConstraint([]float64{1, -1}, LE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveUnboundedMin(t *testing.T) {
	// min -x is unbounded with only x ≥ 0.
	p := NewProblem(Minimize, []float64{-1})
	p.AddConstraint([]float64{0}, LE, 1) // vacuous numeric row
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// max x s.t. -x ≤ -2 (i.e. x ≥ 2), x ≤ 7.
	p := NewProblem(Maximize, []float64{1})
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 7)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 7, tol) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
}

func TestSolveNegativeRHSGE(t *testing.T) {
	// max -x s.t. -x ≥ -4 (x ≤ 4) and x ≥ 1 → opt -1 at x=1.
	p := NewProblem(Maximize, []float64{-1})
	p.AddConstraint([]float64{-1}, GE, -4)
	p.AddConstraint([]float64{1}, GE, 1)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, -1, tol) {
		t.Errorf("objective = %v, want -1", sol.Objective)
	}
}

func TestSolveVacuousInfinityRHS(t *testing.T) {
	// A ≤ +Inf row (blackhole bandwidth) must be ignored.
	p := NewProblem(Maximize, []float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, math.Inf(1))
	p.AddConstraint([]float64{1, 1}, LE, 5)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 5, tol) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
	if len(sol.Dual) != 2 {
		t.Fatalf("len(Dual) = %d, want 2", len(sol.Dual))
	}
	if sol.Dual[0] != 0 {
		t.Errorf("dual of vacuous row = %v, want 0", sol.Dual[0])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP (multiple bases for the same vertex).
	p := NewProblem(Maximize, []float64{2, 3})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 2}, LE, 6)
	p.AddConstraint([]float64{2, 3}, LE, 10) // redundant through (2,2)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 10, tol) {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

func TestSolveBealeCycling(t *testing.T) {
	// Beale's classic cycling example; must terminate via Bland's rule.
	p := NewProblem(Maximize, []float64{0.75, -150, 0.02, -6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 0.05, 1e-6) {
		t.Errorf("objective = %v, want 0.05", sol.Objective)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the
	// solver must still succeed.
	p := NewProblem(Maximize, []float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 1)
	p.AddConstraint([]float64{1, 1}, EQ, 1)
	p.AddConstraint([]float64{2, 2}, EQ, 2)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 1, tol) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestSolveZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := NewProblem(Maximize, []float64{0, 0})
	p.AddConstraint([]float64{1, 1}, EQ, 1)
	sol := requireOptimal(t, p)
	if !almostEq(sol.Objective, 0, tol) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

func TestSolveSingleVariableBounds(t *testing.T) {
	p := NewProblem(Minimize, []float64{5})
	p.AddConstraint([]float64{1}, GE, 3)
	p.AddConstraint([]float64{1}, LE, 9)
	sol := requireOptimal(t, p)
	if !almostEq(sol.X[0], 3, tol) {
		t.Errorf("x = %v, want [3]", sol.X)
	}
}

func TestDualsKnownLP(t *testing.T) {
	// max 3x+5y with slack duals known: y* = (0, 1.5, 1).
	p := NewProblem(Maximize, []float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol := requireOptimal(t, p)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if !almostEq(sol.Dual[i], w, 1e-6) {
			t.Errorf("Dual[%d] = %v, want %v", i, sol.Dual[i], w)
		}
	}
	// Strong duality: b·y == objective.
	var by float64
	for i, c := range p.Constraints {
		by += c.RHS * sol.Dual[i]
	}
	if !almostEq(by, sol.Objective, 1e-6) {
		t.Errorf("b·y = %v, want %v (strong duality)", by, sol.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Problem
	}{
		{"no vars", NewProblem(Maximize, nil)},
		{"bad sense", &Problem{Sense: 0, Objective: []float64{1}}},
		{"nan objective", NewProblem(Maximize, []float64{math.NaN()})},
		{"inf objective", NewProblem(Minimize, []float64{math.Inf(1)})},
		{"dim mismatch", func() *Problem {
			p := NewProblem(Maximize, []float64{1, 2})
			p.AddConstraint([]float64{1}, LE, 1)
			return p
		}()},
		{"nan rhs", func() *Problem {
			p := NewProblem(Maximize, []float64{1})
			p.AddConstraint([]float64{1}, LE, math.NaN())
			return p
		}()},
		{"bad relation", func() *Problem {
			p := NewProblem(Maximize, []float64{1})
			p.Constraints = append(p.Constraints, Constraint{Coeffs: []float64{1}, Rel: 0, RHS: 1})
			return p
		}()},
		{"neg inf LE rhs", func() *Problem {
			p := NewProblem(Maximize, []float64{1})
			p.AddConstraint([]float64{1}, LE, math.Inf(-1))
			return p
		}()},
		{"name count", &Problem{Sense: Maximize, Objective: []float64{1, 2}, VarNames: []string{"a"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.p); err == nil {
				t.Errorf("Solve accepted invalid problem %v", tc.p)
			}
		})
	}
}

func TestVerifyReportsViolations(t *testing.T) {
	p := NewProblem(Maximize, []float64{1, 1})
	p.AddNamedConstraint("cap", []float64{1, 1}, LE, 1)
	p.AddConstraint([]float64{1, 0}, GE, 0.5)
	p.AddConstraint([]float64{0, 1}, EQ, 0.25)

	if v := Verify(p, []float64{0.75, 0.25}, 1e-9); len(v) != 0 {
		t.Errorf("feasible point flagged: %v", v)
	}
	// x = [2,-1]: cap holds (lhs 1 ≤ 1), GE holds (2 ≥ 0.5); violations are
	// the sign of x[1] and the equality row.
	if v := Verify(p, []float64{2, -1}, 1e-9); len(v) != 2 {
		t.Errorf("got %d violations (%v), want 2", len(v), v)
	}
	if v := Verify(p, []float64{1}, 1e-9); len(v) != 1 || !math.IsInf(v[0].Amount, 1) {
		t.Errorf("dimension mismatch not flagged: %v", v)
	}
}

// TestRandomFeasibleLPs generates LPs with a known feasible point and checks
// the simplex result is feasible and at least as good as that point.
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		// Known feasible point.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.NormFloat64()
		}
		p := NewProblem(Maximize, obj)
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			var lhs float64
			for j := range coeffs {
				coeffs[j] = rng.NormFloat64()
				lhs += coeffs[j] * x0[j]
			}
			// Choose RHS so x0 is feasible.
			switch rng.Intn(3) {
			case 0:
				p.AddConstraint(coeffs, LE, lhs+rng.Float64())
			case 1:
				p.AddConstraint(coeffs, GE, lhs-rng.Float64())
			case 2:
				p.AddConstraint(coeffs, EQ, lhs)
			}
		}
		// Add a box to guarantee boundedness.
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, 100)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, p)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible bounded LP\n%v\nx0=%v", trial, sol.Status, p, x0)
		}
		if viol := Verify(p, sol.X, 1e-6); len(viol) != 0 {
			t.Fatalf("trial %d: infeasible optimum: %v", trial, viol)
		}
		if sol.Objective < p.Value(x0)-1e-6 {
			t.Fatalf("trial %d: objective %v worse than feasible point %v", trial, sol.Objective, p.Value(x0))
		}
	}
}

// TestQuickTransportLP uses testing/quick to generate random bounded
// transportation-style LPs (simplex-friendly structure mirroring the
// paper's: one equality plus capacity rows) and checks optimality basics.
func TestQuickTransportLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64() // delivery probability in [0,1)
		}
		p := NewProblem(Maximize, obj)
		ones := make([]float64, n)
		for j := range ones {
			ones[j] = 1
		}
		p.AddConstraint(ones, EQ, 1)
		for i := 0; i < n/2; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			p.AddConstraint(row, LE, 0.5+rng.Float64())
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		if sol.Status == Unbounded {
			return false // impossible: simplex over a subset of the unit simplex
		}
		if sol.Status == Infeasible {
			// Possible if capacity rows exclude the whole simplex; accept.
			return true
		}
		if !Feasible(p, sol.X, 1e-6) {
			return false
		}
		// Objective within [min obj, max obj] since x sums to 1.
		lo, hi := obj[0], obj[0]
		for _, c := range obj {
			lo = math.Min(lo, c)
			hi = math.Max(hi, c)
		}
		return sol.Objective >= lo-1e-6 && sol.Objective <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDualityGap checks strong duality b·y = c·x on random bounded
// feasible max/≤ LPs.
func TestQuickDualityGap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()
		}
		p := NewProblem(Maximize, obj)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()
			}
			p.AddConstraint(row, LE, 1+rng.Float64())
		}
		// Box to bound (rows above may have near-zero coefficients).
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 50)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		var by float64
		for i, c := range p.Constraints {
			if sol.Dual[i] < -1e-7 {
				return false // max/≤ duals must be nonnegative
			}
			by += c.RHS * sol.Dual[i]
		}
		return almostEq(by, sol.Objective, 1e-5*(1+math.Abs(by)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLargeAspectRatio(t *testing.T) {
	// Many variables, few rows — the shape of the paper's LPs (n^m vars,
	// n+2 rows). 1331 variables, 12 rows.
	rng := rand.New(rand.NewSource(7))
	n := 1331
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = rng.Float64()
	}
	p := NewProblem(Maximize, obj)
	ones := make([]float64, n)
	for j := range ones {
		ones[j] = 1
	}
	p.AddConstraint(ones, EQ, 1)
	for i := 0; i < 11; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.AddConstraint(row, LE, 0.8)
	}
	sol := requireOptimal(t, p)
	if sol.Objective <= 0 || sol.Objective > 1 {
		t.Errorf("objective = %v, want in (0,1]", sol.Objective)
	}
}

// TestMixedScaleInfeasibility is a regression test: a unit-scale
// infeasible row must be detected even next to rows with 1e8-scale
// coefficients (bandwidth in bits/s). Without row equilibration the
// phase-1 tolerance was swamped by the large rows.
func TestMixedScaleInfeasibility(t *testing.T) {
	p := NewProblem(Minimize, []float64{1, 1})
	p.AddConstraint([]float64{8e7, 9e7}, LE, 1e8) // bandwidth-scale row
	p.AddConstraint([]float64{1, 1}, EQ, 1)       // conservation
	p.AddConstraint([]float64{0.999, 0.999}, GE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible (max attainable 0.999 < 1)", sol.Status)
	}
	// The boundary case must stay feasible.
	p2 := NewProblem(Minimize, []float64{1, 1})
	p2.AddConstraint([]float64{8e7, 9e7}, LE, 1e8)
	p2.AddConstraint([]float64{1, 1}, EQ, 1)
	p2.AddConstraint([]float64{0.999, 0.999}, GE, 0.999)
	if sol2 := mustSolve(t, p2); sol2.Status != Optimal {
		t.Errorf("boundary case status = %v, want optimal", sol2.Status)
	}
}

func TestOptionsIterationLimit(t *testing.T) {
	p := NewProblem(Maximize, []float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	if _, err := SolveWith(p, Options{MaxIter: 1}); err == nil {
		t.Error("want iteration-limit error with MaxIter=1")
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(99).String() == "" || Sense(9).String() == "" || Relation(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if Maximize.String() != "maximize" || Minimize.String() != "minimize" {
		t.Error("sense strings wrong")
	}
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Error("relation strings wrong")
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem(Maximize, []float64{1})
	p.AddNamedConstraint("cap", []float64{1}, LE, 2)
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}

// Package lp implements a dense two-phase primal simplex solver for linear
// programs over float64, supporting maximization and minimization with
// less-than, equality, and greater-than constraints and non-negative
// variables.
//
// The paper solves its packet-to-path-combination assignment problem
// (Eq. 10) with an off-the-shelf LP library (CGAL). Go's ecosystem has no
// comparable standard solver, so this package provides one from scratch. It
// is deliberately dense: the paper's problems have n^m variables (paths ×
// transmissions) but only n+2 rows, for which a dense tableau is both simple
// and fast. The companion package ratlp solves the same problems exactly
// over rationals, mirroring CGAL's exact arithmetic.
package lp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Sense selects the optimization direction of a Problem.
type Sense int

const (
	// Maximize maximizes the objective.
	Maximize Sense = iota + 1
	// Minimize minimizes the objective.
	Minimize
)

// String returns "maximize" or "minimize".
func (s Sense) String() string {
	switch s {
	case Maximize:
		return "maximize"
	case Minimize:
		return "minimize"
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Relation is the comparison operator of a constraint row.
type Relation int

const (
	// LE constrains a·x ≤ b.
	LE Relation = iota + 1
	// EQ constrains a·x = b.
	EQ
	// GE constrains a·x ≥ b.
	GE
)

// String returns the operator symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is a single linear constraint Coeffs·x Rel RHS.
//
// A LE constraint with RHS == +Inf is treated as vacuous and skipped; this
// lets callers express "unbounded bandwidth" (the blackhole path) without
// special-casing.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
	// Name optionally labels the constraint for diagnostics.
	Name string
}

// Problem is a linear program over non-negative variables.
//
// All constraints must have len(Coeffs) == NumVars. The zero value is not
// usable; construct with NewProblem.
type Problem struct {
	Sense       Sense
	Objective   []float64
	Constraints []Constraint

	// VarNames optionally labels variables for diagnostics. If non-nil it
	// must have length NumVars.
	VarNames []string
}

// NewProblem returns a Problem with the given sense and objective vector and
// no constraints. The objective slice is copied.
func NewProblem(sense Sense, objective []float64) *Problem {
	obj := make([]float64, len(objective))
	copy(obj, objective)
	return &Problem{Sense: sense, Objective: obj}
}

// NumVars reports the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends the constraint coeffs·x rel rhs. The coefficient
// slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	p.AddNamedConstraint("", coeffs, rel, rhs)
}

// AddNamedConstraint appends a labeled constraint. The coefficient slice is
// copied.
func (p *Problem) AddNamedConstraint(name string, coeffs []float64, rel Relation, rhs float64) {
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: c, Rel: rel, RHS: rhs, Name: name})
}

// validate reports structural problems: dimension mismatches, NaNs, or
// infinities where they are not allowed.
func (p *Problem) validate() error {
	if p.Sense != Maximize && p.Sense != Minimize {
		return fmt.Errorf("lp: invalid sense %d", int(p.Sense))
	}
	if len(p.Objective) == 0 {
		return errors.New("lp: problem has no variables")
	}
	for j, c := range p.Objective {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: objective coefficient %d is %v", j, c)
		}
	}
	if p.VarNames != nil && len(p.VarNames) != len(p.Objective) {
		return fmt.Errorf("lp: %d variable names for %d variables", len(p.VarNames), len(p.Objective))
	}
	for i, con := range p.Constraints {
		if len(con.Coeffs) != len(p.Objective) {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(con.Coeffs), len(p.Objective))
		}
		if con.Rel != LE && con.Rel != EQ && con.Rel != GE {
			return fmt.Errorf("lp: constraint %d has invalid relation %d", i, int(con.Rel))
		}
		for j, a := range con.Coeffs {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d is %v", i, j, a)
			}
		}
		if math.IsNaN(con.RHS) {
			return fmt.Errorf("lp: constraint %d RHS is NaN", i)
		}
		if math.IsInf(con.RHS, 0) && !(con.Rel == LE && con.RHS > 0) && !(con.Rel == GE && con.RHS < 0) {
			return fmt.Errorf("lp: constraint %d has non-vacuous infinite RHS", i)
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible region.
	Unbounded
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X is the primal solution (valid only when Status == Optimal).
	X []float64
	// Objective is the optimal objective value in the problem's own sense.
	Objective float64
	// Dual holds one multiplier per constraint row (valid when Optimal).
	// Sign convention: for a maximization with ≤ rows the duals are ≥ 0.
	Dual []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Basis is the optimal basis, captured when Options.CaptureBasis or
	// Options.WarmBasis was set (nil otherwise, and on non-Optimal
	// results). Pass it as Options.WarmBasis to warm-start a later solve
	// of a structurally identical problem with drifted coefficients.
	Basis *Basis
	// WarmStarted reports that the solve re-installed Options.WarmBasis
	// (either outright feasible, or repaired by a short Phase I).
	WarmStarted bool
	// PhaseISkipped reports Phase I was skipped entirely: the
	// re-installed basis was primal feasible for the perturbed
	// coefficients, or dual-simplex pivots restored its feasibility
	// (DualPivots > 0 distinguishes the latter).
	PhaseISkipped bool
	// DualPivots counts dual-simplex repair pivots: a warm basis that
	// drifted primal infeasible but stayed dual feasible is restored by
	// dual pivots instead of Phase I. Zero when the repair never ran.
	DualPivots int
}

// Value returns the objective value of x under the problem's objective,
// regardless of feasibility.
func (p *Problem) Value(x []float64) float64 {
	var v float64
	for j, c := range p.Objective {
		v += c * x[j]
	}
	return v
}

// String renders the problem in a compact human-readable form, useful in
// test failures.
func (p *Problem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v\n", p.Sense, p.Objective)
	for _, c := range p.Constraints {
		name := c.Name
		if name != "" {
			name += ": "
		}
		fmt.Fprintf(&b, "  %s%v %s %g\n", name, c.Coeffs, c.Rel, c.RHS)
	}
	b.WriteString("  x >= 0")
	return b.String()
}

package lp

import (
	"fmt"
	"math"
)

// Options tunes the simplex solver. The zero value selects sensible
// defaults; use DefaultOptions to inspect them.
type Options struct {
	// Tol is the feasibility/optimality tolerance. Zero means 1e-9.
	Tol float64
	// MaxIter caps total pivots across both phases. Zero means
	// 200*(rows+cols), which is far beyond what non-degenerate problems
	// need and serves only as a cycling backstop behind Bland's rule.
	MaxIter int
	// BlandAfter switches pivoting from Dantzig's rule to Bland's rule
	// after this many consecutive degenerate pivots. Zero means 20.
	BlandAfter int
}

// DefaultOptions returns the defaults applied for zero Options fields.
func DefaultOptions() Options {
	return Options{Tol: 1e-9, MaxIter: 0, BlandAfter: 20}
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.BlandAfter <= 0 {
		o.BlandAfter = 20
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200 * (rows + cols + 1)
	}
	return o
}

// Solve solves the problem with default options.
func Solve(p *Problem) (*Solution, error) { return SolveWith(p, Options{}) }

// SolveWith solves the problem with explicit options.
//
// The solver is a textbook two-phase dense tableau simplex: phase 1
// minimizes the sum of artificial variables to find a basic feasible
// solution (detecting infeasibility), phase 2 optimizes the real objective
// (detecting unboundedness). Dantzig pricing is used until degeneracy is
// detected, then Bland's rule guarantees termination.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}

	// Drop vacuous rows (e.g. ≤ +Inf used for the blackhole path's
	// unlimited bandwidth).
	rows := make([]Constraint, 0, len(p.Constraints))
	vacuous := 0
	for _, c := range p.Constraints {
		if math.IsInf(c.RHS, 0) {
			vacuous++
			continue
		}
		rows = append(rows, c)
	}

	n := p.NumVars()
	m := len(rows)
	opts = opts.withDefaults(m, n)

	t := newTableau(p, rows, opts)
	sol, err := t.solve()
	if err != nil {
		return nil, err
	}
	if sol.Status == Optimal && vacuous > 0 {
		// Re-expand duals to original constraint indexing.
		full := make([]float64, len(p.Constraints))
		k := 0
		for i, c := range p.Constraints {
			if math.IsInf(c.RHS, 0) {
				full[i] = 0
				continue
			}
			full[i] = sol.Dual[k]
			k++
		}
		sol.Dual = full
	}
	return sol, nil
}

// tableau is the dense simplex working state.
//
// Column layout: [0,n) structural variables, [n, n+nSlack) slack/surplus,
// [n+nSlack, n+nSlack+nArt) artificial. The RHS is stored separately.
type tableau struct {
	p    *Problem
	opts Options

	m, n   int // constraint rows, structural variables
	nSlack int
	nArt   int

	a     [][]float64 // m rows × totalCols
	b     []float64   // RHS, kept ≥ 0
	scale []float64   // row equilibration factors (original row = scale[i] × stored row)
	basis []int       // basis[i] = column basic in row i

	obj    []float64 // phase-2 objective over all columns (maximization form)
	sign   float64   // +1 if original sense is Maximize, -1 if Minimize
	artCol int       // first artificial column

	iters      int
	degenerate int // consecutive degenerate pivots
}

func newTableau(p *Problem, rows []Constraint, opts Options) *tableau {
	n := p.NumVars()
	m := len(rows)
	t := &tableau{p: p, opts: opts, m: m, n: n}

	// Count slack and artificial columns. Sign-flip rows with negative RHS
	// first so b ≥ 0 throughout.
	type rowPlan struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	plans := make([]rowPlan, m)
	t.scale = make([]float64, m)
	for i, c := range rows {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		// Row equilibration: divide each row by its largest coefficient
		// magnitude so rows in wildly different units (bits/s bandwidth
		// next to unit-scale probabilities) carry comparable weight in
		// the feasibility test and pivoting.
		sc := 0.0
		for _, a := range coeffs {
			if abs := math.Abs(a); abs > sc {
				sc = abs
			}
		}
		if abs := math.Abs(rhs); abs > sc {
			sc = abs
		}
		if sc == 0 {
			sc = 1
		}
		inv := 1 / sc
		for j := range coeffs {
			coeffs[j] *= inv
		}
		rhs *= inv
		t.scale[i] = sc
		plans[i] = rowPlan{coeffs, rhs, rel}
		switch rel {
		case LE, GE:
			t.nSlack++
		}
	}
	// Artificials: one per GE and EQ row. LE rows start with their slack
	// basic, which is feasible because b ≥ 0.
	for _, pl := range plans {
		if pl.rel != LE {
			t.nArt++
		}
	}

	total := n + t.nSlack + t.nArt
	t.artCol = n + t.nSlack
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)

	slack := n
	art := t.artCol
	for i, pl := range plans {
		row := make([]float64, total)
		copy(row, pl.coeffs)
		t.b[i] = pl.rhs
		switch pl.rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}

	t.sign = 1
	if p.Sense == Minimize {
		t.sign = -1
	}
	t.obj = make([]float64, total)
	for j := 0; j < n; j++ {
		t.obj[j] = t.sign * p.Objective[j]
	}
	return t
}

func (t *tableau) solve() (*Solution, error) {
	tol := t.opts.Tol

	if t.nArt > 0 {
		// Phase 1: maximize -(sum of artificials).
		phase1 := make([]float64, len(t.obj))
		for j := t.artCol; j < len(t.obj); j++ {
			phase1[j] = -1
		}
		status, err := t.optimize(phase1, true)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Cannot happen: phase-1 objective is bounded above by 0.
			return nil, fmt.Errorf("lp: internal error: phase 1 unbounded")
		}
		var artSum float64
		for i, col := range t.basis {
			if col >= t.artCol {
				artSum += t.b[i]
			}
		}
		if artSum > tol*(1+norm1(t.b)) {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		t.driveOutArtificials()
	}

	status, err := t.optimize(t.obj, false)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.iters}, nil
	}

	x := make([]float64, t.n)
	for i, col := range t.basis {
		if col < t.n {
			x[col] = t.b[i]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -tol {
			x[j] = 0
		}
	}

	sol := &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  t.p.Value(x),
		Dual:       t.extractDuals(),
		Iterations: t.iters,
	}
	return sol, nil
}

// optimize runs simplex pivots until the reduced costs certify optimality
// for the given maximization objective, or unboundedness is detected.
// phase1 restricts leaving-variable preference to kick artificials out.
func (t *tableau) optimize(obj []float64, phase1 bool) (Status, error) {
	tol := t.opts.Tol
	// z holds the current reduced-cost row: obj - cB·B⁻¹A, maintained by
	// eliminating basic columns.
	z := make([]float64, len(obj))
	copy(z, obj)
	zval := 0.0
	for i, col := range t.basis {
		if z[col] != 0 {
			c := z[col]
			row := t.a[i]
			for j := range z {
				z[j] -= c * row[j]
			}
			zval += c * t.b[i]
		}
	}

	limit := len(obj)
	if !phase1 {
		// Never let artificials re-enter in phase 2.
		limit = t.artCol
	}

	for {
		if t.iters >= t.opts.MaxIter {
			return 0, fmt.Errorf("lp: iteration limit %d exceeded (cycling?)", t.opts.MaxIter)
		}

		useBland := t.degenerate >= t.opts.BlandAfter
		enter := -1
		if useBland {
			for j := 0; j < limit; j++ {
				if z[j] > tol {
					enter = j
					break
				}
			}
		} else {
			best := tol
			for j := 0; j < limit; j++ {
				if z[j] > best {
					best = z[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		// Ratio test.
		leave := -1
		var minRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= tol {
				continue
			}
			ratio := t.b[i] / aij
			if leave < 0 || ratio < minRatio-tol ||
				(math.Abs(ratio-minRatio) <= tol && t.betterLeave(i, leave, useBland)) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if minRatio <= tol {
			t.degenerate++
		} else {
			t.degenerate = 0
		}

		t.pivot(leave, enter, z)
		t.iters++
	}
}

// betterLeave breaks ratio-test ties. Under Bland's rule the smaller basis
// column wins (required for the anti-cycling guarantee); otherwise prefer
// kicking out artificial columns, then the larger pivot element for
// numerical stability.
func (t *tableau) betterLeave(cand, cur int, bland bool) bool {
	if bland {
		return t.basis[cand] < t.basis[cur]
	}
	candArt := t.basis[cand] >= t.artCol
	curArt := t.basis[cur] >= t.artCol
	if candArt != curArt {
		return candArt
	}
	return false
}

// pivot performs a Gauss–Jordan pivot on (leave, enter) and updates the
// reduced-cost row z in place.
func (t *tableau) pivot(leave, enter int, z []float64) {
	prow := t.a[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	t.b[leave] *= inv
	prow[enter] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -t.opts.Tol {
			t.b[i] = 0
		}
	}
	f := z[enter]
	if f != 0 {
		for j := range z {
			z[j] -= f * prow[j]
		}
		z[enter] = 0
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots basic artificial variables (necessarily at
// value 0 after a feasible phase 1) out of the basis where a non-artificial
// column with a nonzero entry exists; rows with no such column are
// redundant and are left with the artificial basic at zero, pinned by
// excluding artificials from phase-2 entering columns.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artCol {
			continue
		}
		enter := -1
		for j := 0; j < t.artCol; j++ {
			if math.Abs(t.a[i][j]) > t.opts.Tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			continue
		}
		dummy := make([]float64, len(t.a[i]))
		t.pivot(i, enter, dummy)
		t.iters++
	}
}

// extractDuals recovers constraint multipliers from the final reduced
// costs. For row i with slack column s(i): y_i = sign * (c_s - z_s) where
// c_s = 0, i.e. y_i = -sign*z_s with z recomputed for the phase-2
// objective; for equality rows (no slack) the dual comes from the
// artificial column. Duals are reported in the problem's original sense.
func (t *tableau) extractDuals() []float64 {
	z := make([]float64, len(t.obj))
	copy(z, t.obj)
	for i, col := range t.basis {
		if z[col] != 0 {
			c := z[col]
			row := t.a[i]
			for j := range z {
				z[j] -= c * row[j]
			}
		}
	}
	// Attribute auxiliary columns to original rows by replaying the column
	// assignment order of newTableau; negative-RHS sign flips are undone
	// via the per-row flip factor, and row equilibration via scale.
	duals := make([]float64, t.m)
	slack := t.n
	art := t.artCol
	for i, c := range t.constraintsPlanned() {
		switch c.rel {
		case LE:
			duals[i] = -t.sign * z[slack] * c.flip / t.scale[i]
			slack++
		case GE:
			duals[i] = t.sign * z[slack] * c.flip / t.scale[i]
			slack++
			art++
		case EQ:
			duals[i] = -t.sign * z[art] * c.flip / t.scale[i]
			art++
		}
	}
	return duals
}

type plannedRow struct {
	rel  Relation
	flip float64 // -1 if the row was sign-flipped for negative RHS
}

// constraintsPlanned replays the row normalization done in newTableau so
// dual extraction can attribute auxiliary columns to original rows.
func (t *tableau) constraintsPlanned() []plannedRow {
	out := make([]plannedRow, 0, t.m)
	for _, c := range t.p.Constraints {
		if math.IsInf(c.RHS, 0) {
			continue
		}
		pr := plannedRow{rel: c.Rel, flip: 1}
		if c.RHS < 0 {
			pr.flip = -1
			switch c.Rel {
			case LE:
				pr.rel = GE
			case GE:
				pr.rel = LE
			default:
				pr.rel = EQ
			}
		}
		out = append(out, pr)
	}
	return out
}

func norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

package lp

import (
	"fmt"
	"math"
	"sync"
)

// Options tunes the simplex solver. The zero value selects sensible
// defaults; use DefaultOptions to inspect them.
type Options struct {
	// Tol is the feasibility/optimality tolerance. Zero means 1e-9.
	Tol float64
	// MaxIter caps total pivots across both phases. Zero means
	// 200*(rows+cols), which is far beyond what non-degenerate problems
	// need and serves only as a cycling backstop behind Bland's rule.
	MaxIter int
	// BlandAfter switches pivoting from Dantzig's rule to Bland's rule
	// after this many consecutive degenerate pivots. Zero means 20.
	BlandAfter int
	// AssumeValid skips the structural validation pass (dimension and
	// NaN/Inf checks over every coefficient, O(rows·cols) per solve).
	// Only for callers that construct problems programmatically and
	// guarantee well-formedness; a malformed problem then produces
	// undefined results instead of an error.
	AssumeValid bool
	// WarmBasis, when non-nil, warm-starts the solve from a prior
	// optimal basis (Solution.Basis of an earlier solve of a
	// structurally identical problem). If the basis re-installs as a
	// basic feasible solution for the new coefficients, Phase I is
	// skipped entirely and Phase II starts at (usually) a near-optimal
	// vertex; a basis that no longer factorizes or is primal infeasible
	// falls back to the cold two-phase path automatically. The result is
	// identical to a cold solve either way (Solution.WarmStarted reports
	// which path ran). Setting WarmBasis implies CaptureBasis.
	WarmBasis *Basis
	// CaptureBasis snapshots the optimal basis onto Solution.Basis for
	// reuse as a later WarmBasis. Off by default: one-shot solves then
	// skip the (small) snapshot allocations on the hot path.
	CaptureBasis bool
}

// DefaultOptions returns the defaults applied for zero Options fields.
func DefaultOptions() Options {
	return Options{Tol: 1e-9, MaxIter: 0, BlandAfter: 20}
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.BlandAfter <= 0 {
		o.BlandAfter = 20
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200 * (rows + cols + 1)
	}
	return o
}

// solverPool backs the package-level Solve/SolveWith wrappers so that
// one-shot callers still reuse tableau memory across solves.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// Solve solves the problem with default options, drawing a reusable
// Solver from an internal pool.
func Solve(p *Problem) (*Solution, error) { return SolveWith(p, Options{}) }

// SolveWith solves the problem with explicit options, drawing a reusable
// Solver from an internal pool.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveWith(p, opts)
	solverPool.Put(s)
	return sol, err
}

// Solver is a reusable two-phase dense simplex solver. It owns the
// tableau, basis, and reduced-cost workspaces and reuses them across
// solves, so repeated solves of same-shaped problems allocate only the
// returned Solution. The zero value is ready to use; a Solver must not
// be used concurrently from multiple goroutines (use one per worker, or
// the pooled package-level Solve).
//
// The algorithm is a textbook two-phase dense tableau simplex: phase 1
// minimizes the sum of artificial variables to find a basic feasible
// solution (detecting infeasibility), phase 2 optimizes the real
// objective (detecting unboundedness). Dantzig pricing is used until
// degeneracy is detected, then Bland's rule guarantees termination. The
// tableau is stored flat in row-major order so pivot loops run over
// contiguous memory.
type Solver struct {
	opts Options

	m, n    int // constraint rows (kept), structural variables
	nSlack  int
	nArt    int
	nRepair int // warm-start repair columns (0 on cold solves)
	total   int // columns: n + nSlack + nArt + nRepair
	artCol  int // first artificial column (repair columns live past nArt)
	sign    float64

	a     []float64 // m × total, flat row-major
	b     []float64 // RHS, kept ≥ 0
	scale []float64 // row equilibration factors
	flip  []float64 // -1 where the row was sign-flipped for negative RHS
	rel   []Relation
	orig  []int // kept row → original constraint index
	basis []int // basis[i] = column basic in row i
	// unit[i] is the auxiliary column that entered the tableau as +eᵢ
	// (the slack of a ≤ row, the artificial of a ≥/= row). Its current
	// values are therefore the i-th column of the accumulated row
	// transform — the implicit B⁻¹ the incremental column append
	// (AppendSolve) multiplies new raw columns by.
	unit []int

	obj  []float64 // phase-2 objective over all columns (maximization form)
	z    []float64 // reduced-cost row workspace
	work []float64 // phase-1 objective / scratch reduced-cost row

	rowTaken []bool // warm-start refactorization scratch

	iters      int
	degenerate int // consecutive degenerate pivots
	dualPivots int // dual-simplex repair pivots this solve

	// hot marks the tableau as holding an optimal basis for the problem
	// of the last SolveWith/AppendSolve on this Solver — the state
	// AppendSolve continues from. Any load (and any non-optimal outcome)
	// clears it.
	hot bool
}

// NewSolver returns a reusable Solver with default options.
func NewSolver() *Solver { return &Solver{} }

// grow resizes a workspace buffer to n entries, reusing capacity.
// Contents are unspecified; callers overwrite every entry they read.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Solve solves the problem with the solver's default options.
func (s *Solver) Solve(p *Problem) (*Solution, error) { return s.SolveWith(p, Options{}) }

// SolveWith solves the problem, reusing the solver's workspaces.
func (s *Solver) SolveWith(p *Problem, opts Options) (*Solution, error) {
	if !opts.AssumeValid {
		if err := p.validate(); err != nil {
			return nil, err
		}
	}
	s.load(p, opts)
	if opts.WarmBasis != nil && s.basisCompatible(opts.WarmBasis) {
		var sol *Solution
		switch s.installBasis(opts.WarmBasis) {
		case installFeasible:
			sol, _ = s.run(p, warmFeasible)
		case installDual:
			sol, _ = s.run(p, warmDual)
		case installRepaired:
			sol, _ = s.run(p, warmRepaired)
		case installFailed:
			sol = nil
		}
		if sol != nil && sol.Status == Optimal {
			return sol, nil
		}
		// A warm start must never change the outcome: a non-Optimal
		// status — or an error such as the iteration limit — off a
		// re-installed basis is either a genuine property of the problem
		// (the cold path will reproduce it) or numerical corruption from
		// a marginal refactorization. Either way — including a failed
		// install, which leaves the tableau dirty — rebuild and solve
		// cold. A reload is one O(rows·cols) copy pass, far cheaper than
		// the Phase I it precedes.
		s.load(p, opts)
	}
	return s.run(p, coldStart)
}

// start describes how run begins: cold (all-slack basis, full Phase I),
// warm with a feasible re-installed basis (Phase I skipped), warm with a
// basis made feasible again by dual-simplex pivots (Phase I skipped),
// or warm with a repaired basis (short Phase I from the near-feasible
// point).
type start int

const (
	coldStart start = iota
	warmFeasible
	warmDual
	warmRepaired
)

// load normalizes the problem into the solver's flat tableau: vacuous
// rows (≤ +Inf) dropped, negative RHS sign-flipped so b ≥ 0, rows
// equilibrated by their largest coefficient magnitude, slack/surplus and
// artificial columns appended, and the initial basis chosen.
func (s *Solver) load(p *Problem, opts Options) {
	n := p.NumVars()

	// First pass: count kept rows and auxiliary columns.
	m, nSlack, nArt := 0, 0, 0
	for _, c := range p.Constraints {
		if math.IsInf(c.RHS, 0) {
			continue
		}
		m++
		rel := c.Rel
		if c.RHS < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel == LE || rel == GE {
			nSlack++
		}
		if rel != LE {
			nArt++
		}
	}

	s.m, s.n, s.nSlack, s.nArt = m, n, nSlack, nArt
	// A warm-start attempt reserves one repair column per row: when the
	// re-installed basis is primal infeasible, violated rows are flipped
	// onto these artificial-like columns and a short Phase I repairs the
	// basis instead of restarting from the all-slack basis. They sit past
	// the regular artificials, so the existing Phase I objective,
	// drive-out, and Phase II entering-column exclusion cover them with
	// no further changes.
	s.nRepair = 0
	if opts.WarmBasis != nil {
		s.nRepair = m
	}
	s.total = n + nSlack + nArt + s.nRepair
	s.artCol = n + nSlack
	s.opts = opts.withDefaults(m, n)
	s.iters, s.degenerate, s.dualPivots = 0, 0, 0
	s.hot = false

	s.a = grow(s.a, m*s.total)
	s.b = grow(s.b, m)
	s.scale = grow(s.scale, m)
	s.flip = grow(s.flip, m)
	s.rel = grow(s.rel, m)
	s.orig = grow(s.orig, m)
	s.basis = grow(s.basis, m)
	s.obj = grow(s.obj, s.total)
	s.z = grow(s.z, s.total)
	s.work = grow(s.work, s.total)
	s.unit = grow(s.unit, m)

	// Second pass: fill rows.
	slack, art := n, s.artCol
	i := 0
	for ci, c := range p.Constraints {
		if math.IsInf(c.RHS, 0) {
			continue
		}
		row := s.a[i*s.total : (i+1)*s.total]
		clear(row[n:]) // structural columns are overwritten below
		flip := 1.0
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			flip = -1
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		// Row equilibration: divide each row by its largest coefficient
		// magnitude so rows in wildly different units (bits/s bandwidth
		// next to unit-scale probabilities) carry comparable weight in
		// the feasibility test and pivoting.
		sc := math.Abs(rhs)
		for _, a := range c.Coeffs {
			if abs := math.Abs(a); abs > sc {
				sc = abs
			}
		}
		if sc == 0 {
			sc = 1
		}
		inv := flip / sc
		for j, a := range c.Coeffs {
			row[j] = a * inv
		}
		s.b[i] = rhs / sc
		s.scale[i] = sc
		s.flip[i] = flip
		s.rel[i] = rel
		s.orig[i] = ci
		switch rel {
		case LE:
			row[slack] = 1
			s.basis[i] = slack
			s.unit[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			s.basis[i] = art
			s.unit[i] = art
			art++
		case EQ:
			row[art] = 1
			s.basis[i] = art
			s.unit[i] = art
			art++
		}
		i++
	}

	s.sign = 1
	if p.Sense == Minimize {
		s.sign = -1
	}
	clear(s.obj)
	for j := 0; j < n; j++ {
		s.obj[j] = s.sign * p.Objective[j]
	}
}

// run executes both phases and extracts the solution. A warmFeasible
// start skips Phase I (the re-installed basis is already a BFS); a
// warmDual start skips it too (dual-simplex pivots already restored
// primal feasibility); a warmRepaired start runs Phase I, but from the
// repaired basis — a few pivots to clear the violated rows instead of a
// cold restart.
func (s *Solver) run(p *Problem, from start) (*Solution, error) {
	tol := s.opts.Tol

	runPhase1 := s.nArt > 0
	switch from {
	case warmFeasible, warmDual:
		runPhase1 = false
	case warmRepaired:
		runPhase1 = true
	}
	if runPhase1 {
		// Phase 1: maximize -(sum of artificials).
		phase1 := s.work
		clear(phase1)
		for j := s.artCol; j < s.total; j++ {
			phase1[j] = -1
		}
		status, err := s.optimize(phase1, true)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Cannot happen: phase-1 objective is bounded above by 0.
			return nil, fmt.Errorf("lp: internal error: phase 1 unbounded")
		}
		var artSum float64
		for i, col := range s.basis {
			if col >= s.artCol {
				artSum += s.b[i]
			}
		}
		if artSum > tol*(1+norm1(s.b[:s.m])) {
			return &Solution{Status: Infeasible, Iterations: s.iters}, nil
		}
		s.driveOutArtificials()
	}

	status, err := s.optimize(s.obj, false)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded, Iterations: s.iters}, nil
	}

	x := make([]float64, s.n)
	for i, col := range s.basis {
		if col < s.n {
			x[col] = s.b[i]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -tol {
			x[j] = 0
		}
	}

	var basis *Basis
	if s.opts.CaptureBasis || s.opts.WarmBasis != nil {
		basis = s.captureBasis()
	}
	s.hot = true
	return &Solution{
		Status:        Optimal,
		X:             x,
		Objective:     p.Value(x),
		Dual:          s.extractDuals(p),
		Iterations:    s.iters,
		Basis:         basis,
		WarmStarted:   from != coldStart,
		PhaseISkipped: from == warmFeasible || from == warmDual,
		DualPivots:    s.dualPivots,
	}, nil
}

// optimize runs simplex pivots until the reduced costs certify optimality
// for the given maximization objective, or unboundedness is detected.
// phase1 restricts leaving-variable preference to kick artificials out.
func (s *Solver) optimize(obj []float64, phase1 bool) (Status, error) {
	tol := s.opts.Tol
	// z holds the current reduced-cost row: obj - cB·B⁻¹A, maintained by
	// eliminating basic columns.
	z := s.z
	copy(z, obj)
	for i, col := range s.basis {
		if z[col] != 0 {
			c := z[col]
			row := s.a[i*s.total : (i+1)*s.total]
			for j := range z {
				z[j] -= c * row[j]
			}
		}
	}

	limit := s.total
	if !phase1 {
		// Never let artificials re-enter in phase 2.
		limit = s.artCol
	}

	for {
		if s.iters >= s.opts.MaxIter {
			return 0, fmt.Errorf("lp: iteration limit %d exceeded (cycling?)", s.opts.MaxIter)
		}

		useBland := s.degenerate >= s.opts.BlandAfter
		enter := -1
		if useBland {
			for j := 0; j < limit; j++ {
				if z[j] > tol {
					enter = j
					break
				}
			}
		} else {
			best := tol
			for j, zj := range z[:limit] {
				if zj > best {
					best = zj
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		// Ratio test.
		leave := -1
		var minRatio float64
		for i := 0; i < s.m; i++ {
			aij := s.a[i*s.total+enter]
			if aij <= tol {
				continue
			}
			ratio := s.b[i] / aij
			if leave < 0 || ratio < minRatio-tol ||
				(math.Abs(ratio-minRatio) <= tol && s.betterLeave(i, leave, useBland)) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if minRatio <= tol {
			s.degenerate++
		} else {
			s.degenerate = 0
		}

		s.pivot(leave, enter, z)
		s.iters++
	}
}

// betterLeave breaks ratio-test ties. Under Bland's rule the smaller basis
// column wins (required for the anti-cycling guarantee); otherwise prefer
// kicking out artificial columns, then the larger pivot element for
// numerical stability.
func (s *Solver) betterLeave(cand, cur int, bland bool) bool {
	if bland {
		return s.basis[cand] < s.basis[cur]
	}
	candArt := s.basis[cand] >= s.artCol
	curArt := s.basis[cur] >= s.artCol
	if candArt != curArt {
		return candArt
	}
	return false
}

// pivot performs a Gauss–Jordan pivot on (leave, enter) and updates the
// reduced-cost row z in place.
func (s *Solver) pivot(leave, enter int, z []float64) {
	prow := s.a[leave*s.total : (leave+1)*s.total]
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	s.b[leave] *= inv
	prow[enter] = 1 // exact

	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		row := s.a[i*s.total : (i+1)*s.total]
		f := row[enter]
		if f == 0 {
			continue
		}
		for j, pj := range prow {
			row[j] -= f * pj
		}
		row[enter] = 0 // exact
		s.b[i] -= f * s.b[leave]
		if s.b[i] < 0 && s.b[i] > -s.opts.Tol {
			s.b[i] = 0
		}
	}
	f := z[enter]
	if f != 0 {
		for j, pj := range prow {
			z[j] -= f * pj
		}
		z[enter] = 0
	}
	s.basis[leave] = enter
}

// driveOutArtificials pivots basic artificial variables (necessarily at
// value 0 after a feasible phase 1) out of the basis where a non-artificial
// column with a nonzero entry exists; rows with no such column are
// redundant and are left with the artificial basic at zero, pinned by
// excluding artificials from phase-2 entering columns.
func (s *Solver) driveOutArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artCol {
			continue
		}
		enter := -1
		row := s.a[i*s.total : (i+1)*s.total]
		for j := 0; j < s.artCol; j++ {
			if math.Abs(row[j]) > s.opts.Tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			continue
		}
		dummy := s.work
		clear(dummy)
		s.pivot(i, enter, dummy)
		s.iters++
	}
}

// extractDuals recovers constraint multipliers from the final reduced
// costs. For row i with slack column s(i): y_i = sign * (c_s - z_s) where
// c_s = 0, i.e. y_i = -sign*z_s for the phase-2 objective; for equality
// rows (no slack) the dual comes from the artificial column. Duals are
// reported in the problem's original sense and original constraint
// indexing (vacuous rows get 0). s.z still holds the phase-2 reduced
// costs at termination (optimize maintains it through every pivot and
// nothing pivots afterwards), so no re-elimination pass is needed.
func (s *Solver) extractDuals(p *Problem) []float64 {
	z := s.z
	// Attribute auxiliary columns to original rows by replaying the column
	// assignment order of load; negative-RHS sign flips are undone via the
	// per-row flip factor, and row equilibration via scale.
	duals := make([]float64, len(p.Constraints))
	slack, art := s.n, s.artCol
	for i := 0; i < s.m; i++ {
		var y float64
		switch s.rel[i] {
		case LE:
			y = -s.sign * z[slack] * s.flip[i] / s.scale[i]
			slack++
		case GE:
			y = s.sign * z[slack] * s.flip[i] / s.scale[i]
			slack++
			art++
		case EQ:
			y = -s.sign * z[art] * s.flip[i] / s.scale[i]
			art++
		}
		duals[s.orig[i]] = y
	}
	return duals
}

func norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

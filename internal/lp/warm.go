package lp

import (
	"math"

	"dmc/internal/fault"
)

// fpWarmInstall fires at the top of installBasis; an injected error
// reports installFailed (cold fallback), an injected panic unwinds
// through Resolve like a real numerical crash would.
var fpWarmInstall = fault.Register("lp.warm.install")

// Basis is the optimal simplex basis of a solved Problem, captured on
// Solution.Basis and reusable as Options.WarmBasis to warm-start a later
// solve of a structurally identical problem whose coefficients drifted.
//
// A basis is compatible with a problem when the kept constraint rows
// match in count, order, and relation, and the structural variable count
// matches; Remap translates a basis across column-set changes (columns
// appended, or a subset re-indexed) so column-generation masters and
// pruned column pools can reuse it too. The zero value is not useful;
// bases come from Solution.Basis.
type Basis struct {
	cols   []int // basic column per kept row, in solver column indexing
	n      int   // structural variable count at capture
	m      int   // kept constraint rows
	nSlack int
	nArt   int
	rel    []Relation // kept-row relations, in row order
}

// NumRows reports the kept constraint row count of the captured basis.
func (b *Basis) NumRows() int { return b.m }

// NumVars reports the structural variable count the basis was captured
// against.
func (b *Basis) NumVars() int { return b.n }

// StructuralCols returns, per kept row, the basic structural column
// index, or -1 where an auxiliary (slack/artificial) column is basic.
func (b *Basis) StructuralCols() []int {
	out := make([]int, len(b.cols))
	for i, c := range b.cols {
		if c < b.n {
			out[i] = c
		} else {
			out[i] = -1
		}
	}
	return out
}

// Remap translates the basis to a problem with newN structural columns.
// perm maps each old structural index to its new index (a negative entry
// means the column no longer exists); a nil perm is the identity, which
// covers the common warm-start cases of an unchanged column set and of
// columns appended at the end. Auxiliary (slack/artificial) columns shift
// with the structural count. Remap returns nil when a basic structural
// column has no image — the caller must then solve cold.
func (b *Basis) Remap(newN int, perm []int) *Basis {
	if b == nil {
		return nil
	}
	shift := newN - b.n
	cols := make([]int, len(b.cols))
	for i, c := range b.cols {
		if c < b.n {
			nc := c
			if perm != nil {
				if c >= len(perm) {
					return nil
				}
				nc = perm[c]
			}
			if nc < 0 || nc >= newN {
				return nil
			}
			cols[i] = nc
		} else {
			cols[i] = c + shift
		}
	}
	return &Basis{cols: cols, n: newN, m: b.m, nSlack: b.nSlack, nArt: b.nArt, rel: b.rel}
}

// captureBasis snapshots the solver's final basis for Solution.Basis.
func (s *Solver) captureBasis() *Basis {
	return &Basis{
		cols:   append([]int(nil), s.basis[:s.m]...),
		n:      s.n,
		m:      s.m,
		nSlack: s.nSlack,
		nArt:   s.nArt,
		rel:    append([]Relation(nil), s.rel[:s.m]...),
	}
}

// basisCompatible reports whether the warm basis matches the loaded
// problem's row structure and column counts exactly.
func (s *Solver) basisCompatible(b *Basis) bool {
	if b == nil || b.m != s.m || b.n != s.n || b.nSlack != s.nSlack || b.nArt != s.nArt {
		return false
	}
	for i := 0; i < s.m; i++ {
		if b.rel[i] != s.rel[i] {
			return false
		}
	}
	return true
}

// installPivotTol is the minimum pivot magnitude accepted while
// re-installing a warm basis. Rows are equilibrated to unit scale by
// load, so anything far below 1 signals a (near-)singular basis for the
// perturbed coefficients — and each Gauss–Jordan pivot amplifies
// roundoff by 1/|pivot|, so accepting tiny pivots corrupts the whole
// refactorization (observed as false "infeasible" verdicts on problems
// that are feasible by construction). Refusing early keeps the
// refactorization stable and falls back to the cold two-phase path.
const installPivotTol = 1e-5

// installResult is the outcome of re-installing a warm basis.
type installResult int

const (
	// installFailed: the basis is singular (or otherwise unusable) for
	// the perturbed coefficients. The tableau is dirty; reload and solve
	// cold.
	installFailed installResult = iota
	// installFeasible: the basis is a BFS of the perturbed problem.
	// Phase I can be skipped entirely.
	installFeasible
	// installDual: the basis drifted primal infeasible but stayed dual
	// feasible; dual-simplex pivots restored primal feasibility, so
	// Phase I is skipped and Phase II starts at (usually) the optimum.
	installDual
	// installRepaired: the basis went primal infeasible; the violated
	// rows were flipped onto repair columns, leaving a valid BFS of the
	// Phase I problem a few pivots from feasibility.
	installRepaired
)

// dualPivotTol is the minimum magnitude of a dual-simplex pivot element.
// Smaller entries make 1/|pivot| amplification unacceptable; rather than
// accept them, the repair bails out and the solve falls back cold.
const dualPivotTol = 1e-6

// installBasis re-expresses the freshly loaded tableau in terms of a
// prior basis by one Gauss–Jordan pivot per basic column, choosing the
// largest remaining pivot element per column (partial pivoting).
//
// If the resulting basic solution is primal feasible (and any basic
// artificial sits at zero), Phase I is unnecessary: installFeasible.
// Otherwise the basis is REPAIRED rather than discarded: each violated
// row (negative RHS) is sign-flipped and handed a fresh repair column
// (load reserved one per row) that enters the basis at the violation
// magnitude. That is a valid starting BFS for the standard Phase I
// objective — which already penalizes the repair region — so
// feasibility is restored in roughly one pivot per violated row instead
// of a cold restart from the all-slack basis: installRepaired.
func (s *Solver) installBasis(b *Basis) installResult {
	if fpWarmInstall.Hit() != nil {
		return installFailed
	}
	if cap(s.rowTaken) < s.m {
		s.rowTaken = make([]bool, s.m)
	}
	taken := s.rowTaken[:s.m]
	for i := range taken {
		taken[i] = false
	}

	// pivot leaves a zero reduced-cost row untouched (f == 0), so one
	// clear serves every install pivot.
	dummy := s.work
	clear(dummy)
	for _, col := range b.cols {
		best, bestAbs := -1, installPivotTol
		for i := 0; i < s.m; i++ {
			if taken[i] {
				continue
			}
			if abs := math.Abs(s.a[i*s.total+col]); abs > bestAbs {
				best, bestAbs = i, abs
			}
		}
		if best < 0 {
			return installFailed // singular under the perturbed coefficients
		}
		s.pivot(best, col, dummy)
		s.iters++
		taken[best] = true
	}

	ftol := s.opts.Tol * (1 + norm1(s.b[:s.m]))

	// Classify the re-installed point before mutating anything: rows
	// with negative RHS are primal violations; a basic artificial away
	// from zero means a GE/EQ row the old basis no longer satisfies
	// (its own column already carries +1 there and the Phase I
	// objective already penalizes it, so that row needs no flip — just
	// Phase I).
	violated, artAway := false, false
	for i := 0; i < s.m; i++ {
		if s.b[i] < -ftol {
			violated = true
		} else if s.basis[i] >= s.artCol && s.b[i] > ftol {
			artAway = true
		}
	}
	if !violated && !artAway {
		for i := 0; i < s.m; i++ {
			if s.b[i] < 0 {
				s.b[i] = 0
			}
		}
		return installFeasible
	}

	// Dual-simplex repair: when the drift left the basis dual feasible
	// for the new objective (every phase-2 reduced cost ≤ tol), dual
	// pivots walk back to primal feasibility along optimal bases — far
	// fewer pivots than a Phase I restart, and Phase II then usually
	// terminates immediately. Only attempted when no basic artificial
	// sits away from zero (dual pivots cannot drive those out: the
	// entering-column scan excludes artificials).
	if !artAway {
		z := s.z
		copy(z, s.obj)
		for i, col := range s.basis {
			if z[col] != 0 {
				c := z[col]
				row := s.a[i*s.total : (i+1)*s.total]
				for j := range z {
					z[j] -= c * row[j]
				}
			}
		}
		dualFeasible := true
		for j := 0; j < s.artCol; j++ {
			if z[j] > s.opts.Tol {
				dualFeasible = false
				break
			}
		}
		if dualFeasible {
			if s.dualSimplex(z, ftol) {
				// The pivots fixed every negative RHS, but a basic
				// artificial sitting AT zero before them may have been
				// pushed positive (its row's RHS moves with every
				// pivot) — that is a constraint violation Phase II
				// cannot repair (artificials never re-enter). Accept
				// the repair only if no basic artificial drifted.
				for i := 0; i < s.m; i++ {
					if s.basis[i] >= s.artCol && s.b[i] > ftol {
						return installFailed
					}
				}
				return installDual
			}
			// The tableau is dirty after partial dual pivots; reload
			// and solve cold.
			return installFailed
		}
	}

	repairCol := s.artCol + s.nArt
	for i := 0; i < s.m; i++ {
		if s.b[i] >= -ftol {
			if s.b[i] < 0 {
				s.b[i] = 0
			}
			continue
		}
		// Flip the violated row and make its repair column basic at the
		// violation magnitude: a feasible vertex of the Phase I problem.
		// Negating a tableau row is an elementary row operation — it
		// changes nothing about the problem (and in particular NOT the
		// dual sign bookkeeping in s.flip, which tracks the load-time
		// sign of the ORIGINAL row; the slack column's meaning is
		// untouched by row scaling).
		row := s.a[i*s.total : (i+1)*s.total]
		for j := range row {
			row[j] = -row[j]
		}
		s.b[i] = -s.b[i]
		row[repairCol+i] = 1
		s.basis[i] = repairCol + i
	}
	return installRepaired
}

// dualSimplex restores primal feasibility from a dual-feasible basis:
// while some RHS is negative, the most-violated row leaves and the
// column minimizing |z_j/a_ij| over decisively negative a_ij enters,
// which keeps every reduced cost ≤ 0. Returns false — leaving the
// tableau dirty, so the caller must reload and solve cold — when no
// eligible pivot exists (the problem may be infeasible, but that
// verdict is left to the authoritative cold path) or the iteration cap
// is hit.
func (s *Solver) dualSimplex(z []float64, ftol float64) bool {
	for {
		if s.iters >= s.opts.MaxIter {
			return false
		}
		leave, worst := -1, -ftol
		for i := 0; i < s.m; i++ {
			if s.b[i] < worst {
				leave, worst = i, s.b[i]
			}
		}
		if leave < 0 {
			for i := 0; i < s.m; i++ {
				if s.b[i] < 0 {
					s.b[i] = 0
				}
			}
			return true
		}
		row := s.a[leave*s.total : (leave+1)*s.total]
		enter, best := -1, 0.0
		for j := 0; j < s.artCol; j++ {
			aij := row[j]
			if aij >= -dualPivotTol {
				continue
			}
			// z[j] ≤ tol, aij < 0: ratio ≥ ~0 measures how much dual
			// slack the pivot burns; the minimum keeps z ≤ 0 everywhere.
			ratio := z[j] / aij
			if enter < 0 || ratio < best {
				enter, best = j, ratio
			}
		}
		if enter < 0 {
			return false
		}
		s.pivot(leave, enter, z)
		s.iters++
		s.dualPivots++
	}
}

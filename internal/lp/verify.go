package lp

import (
	"fmt"
	"math"
)

// Violation describes one constraint or sign violation found by Verify.
type Violation struct {
	// Row is the constraint index, or -1 for a variable sign violation.
	Row int
	// Var is the variable index for sign violations, or -1.
	Var int
	// Amount is the magnitude of the violation.
	Amount float64
	// Desc is a human-readable description.
	Desc string
}

// Verify checks that x satisfies every constraint of p and x ≥ 0 within
// tol, returning all violations found (empty means feasible).
func Verify(p *Problem, x []float64, tol float64) []Violation {
	var out []Violation
	if len(x) != p.NumVars() {
		return []Violation{{Row: -1, Var: -1, Amount: math.Inf(1),
			Desc: fmt.Sprintf("solution has %d entries, want %d", len(x), p.NumVars())}}
	}
	for j, v := range x {
		if v < -tol {
			out = append(out, Violation{Row: -1, Var: j, Amount: -v,
				Desc: fmt.Sprintf("x[%d] = %g < 0", j, v)})
		}
	}
	for i, c := range p.Constraints {
		var lhs float64
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		// Scale tolerance by row magnitude so large-coefficient rows
		// (e.g. bandwidth in bits/s) are not spuriously flagged.
		scale := 1 + math.Abs(c.RHS)
		for _, a := range c.Coeffs {
			if abs := math.Abs(a); abs > scale {
				scale = abs
			}
		}
		var amt float64
		switch c.Rel {
		case LE:
			amt = lhs - c.RHS
		case GE:
			amt = c.RHS - lhs
		case EQ:
			amt = math.Abs(lhs - c.RHS)
		}
		if amt > tol*scale {
			name := c.Name
			if name == "" {
				name = fmt.Sprintf("constraint %d", i)
			}
			out = append(out, Violation{Row: i, Var: -1, Amount: amt,
				Desc: fmt.Sprintf("%s: %g %s %g violated by %g", name, lhs, c.Rel, c.RHS, amt)})
		}
	}
	return out
}

// Feasible reports whether x satisfies p within tol.
func Feasible(p *Problem, x []float64, tol float64) bool {
	return len(Verify(p, x, tol)) == 0
}

// Package faultpoint checks the fault-injection registration invariant:
// every fault.Register call sites a package-level var with a constant,
// module-unique point name.
//
// The chaos harness replays seeded fault storms by deriving each
// point's decision stream from (plan seed, point name, hit counter), so
// DMC_FAULT_POINTS entries address points by name. A name computed at
// runtime cannot be targeted from a plan; a point registered inside a
// function may not exist yet when Activate runs (registration order
// becomes timing-dependent); and two points sharing one name silently
// share one Point and one decision stream, so a storm aimed at one seam
// fires at both and replay logs stop identifying the seam. Each
// package's registered names are exported as a fact; the suite's Finish
// pass joins them module-wide, catching collisions between packages
// that never import each other.
package faultpoint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dmc/internal/analysis/dmcana"
)

// faultPkg is the import path of the injection framework (fixture stubs
// use the same path).
const faultPkg = "dmc/internal/fault"

// Fact maps each point name registered by a package to the position of
// its Register call, formatted "file:line:col".
type Fact map[string]string

// Analyzer is the faultpoint pass.
var Analyzer = &dmcana.Analyzer{
	Name:     "faultpoint",
	Doc:      "check that fault.Register calls site package-level vars with constant, module-unique point names",
	Run:      run,
	FactType: Fact{},
	Finish:   finish,
}

func run(pass *dmcana.Pass) error {
	fact := Fact{}
	names := map[string]token.Pos{}
	for _, f := range pass.Files {
		// The invariant binds production registration: tests construct
		// ephemeral points inside functions deliberately (vet-driven runs
		// include test compilations).
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// The package-level var initializers, where every Register call
		// must live.
		topLevel := map[ast.Expr]bool{}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				for _, v := range spec.(*ast.ValueSpec).Values {
					topLevel[v] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegister(pass.Info, call) {
				return true
			}
			if !topLevel[call] {
				pass.Reportf(call.Pos(), "fault.Register must directly initialize a package-level var, so the point exists before any plan activates")
			}
			if len(call.Args) != 1 {
				return true
			}
			tv := pass.Info.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(), "fault point name must be a compile-time string constant, or DMC_FAULT_POINTS plans cannot target it")
				return true
			}
			name := constant.StringVal(tv.Value)
			if name == "" {
				pass.Reportf(call.Args[0].Pos(), "fault point name must not be empty")
				return true
			}
			if prev, ok := names[name]; ok {
				pass.Reportf(call.Pos(), "fault point %q already registered at %s; duplicate names share one decision stream and break storm replay", name, pass.Fset.Position(prev))
				return true
			}
			names[name] = call.Pos()
			fact[name] = pass.Fset.Position(call.Pos()).String()
			return true
		})
	}
	if len(fact) > 0 {
		pass.ExportFact(fact)
	}
	return nil
}

// isRegister reports whether the call resolves to fault.Register.
func isRegister(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == "Register" && fn.Pkg() != nil && fn.Pkg().Path() == faultPkg
}

// finish joins every package's registered names and reports
// module-level collisions — including between packages with no import
// relation, which per-package fact flow alone could never see.
func finish(facts *dmcana.FactSet) []dmcana.Diagnostic {
	type site struct{ pkg, pos string }
	byName := map[string][]site{}
	for pkgPath, v := range facts.All("faultpoint") {
		for name, pos := range v.(Fact) {
			byName[name] = append(byName[name], site{pkg: pkgPath, pos: pos})
		}
	}
	var diags []dmcana.Diagnostic
	for name, sites := range byName {
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		var where []string
		for _, s := range sites {
			where = append(where, fmt.Sprintf("%s (%s)", s.pos, s.pkg))
		}
		diags = append(diags, dmcana.Diagnostic{
			Analyzer: "faultpoint",
			Pos:      parsePosition(sites[0].pos),
			Message:  fmt.Sprintf("fault point %q registered in multiple packages: %s", name, strings.Join(where, ", ")),
		})
	}
	return diags
}

// parsePosition reconstructs a token.Position from its "file:line:col"
// string form (fact positions cross the package boundary as strings).
func parsePosition(s string) token.Position {
	var pos token.Position
	if i := strings.LastIndex(s, ":"); i >= 0 {
		fmt.Sscanf(s[i+1:], "%d", &pos.Column)
		s = s[:i]
	}
	if i := strings.LastIndex(s, ":"); i >= 0 {
		fmt.Sscanf(s[i+1:], "%d", &pos.Line)
		s = s[:i]
	}
	pos.Filename = s
	return pos
}

// Package fault is a fixture stub shadowing dmc/internal/fault: just
// enough surface for faultpoint's Register-site checks.
package fault

// Point is one injection point.
type Point struct{ name string }

// Register declares a point.
func Register(name string) *Point { return &Point{name: name} }

package c

import "dmc/internal/fault"

// Same name as package b's point; packages a–c share no import edge, so
// only the module-global Finish join can see the collision (reported at
// the first site, in b).
var collide = fault.Register("shared.point")

var fine = fault.Register("c.fine")

package b

import "dmc/internal/fault"

var collide = fault.Register("shared.point") // want `registered in multiple packages`

package a

import "dmc/internal/fault"

// The sanctioned shape: package-level var, constant unique name.
var good = fault.Register("a.good")

// Grouped declarations are package-level too.
var (
	alsoGood = fault.Register("a.also-good")
)

var dup = fault.Register("a.good") // want `already registered`

var empty = fault.Register("") // want `must not be empty`

func pointName() string { return "a.computed" }

var computed = fault.Register(pointName()) // want `compile-time string constant`

func install() *fault.Point {
	return fault.Register("a.local") // want `package-level var`
}

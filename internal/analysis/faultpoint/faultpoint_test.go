package faultpoint_test

import (
	"testing"

	"dmc/internal/analysis/anatest"
	"dmc/internal/analysis/faultpoint"
)

func TestFaultpoint(t *testing.T) {
	anatest.Run(t, "testdata", faultpoint.Analyzer, "a", "b", "c")
}

package dmclint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dmc/internal/analysis/dmcana"
)

// TestModule runs the whole suite over every package in the module and
// requires a clean report. This is the tier-1 gate: a change that
// breaks a pooling, locking, fault-registration, or atomic-access
// invariant fails `go test ./...` even if no behavioral test notices.
func TestModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)

	m, err := dmcana.LoadModule(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := dmcana.Run(m, All)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	dmcana.SortDiagnostics(diags)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

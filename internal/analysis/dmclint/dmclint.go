// Package dmclint assembles the project's analyzer suite. The four
// passes machine-check invariants that the rest of the repo otherwise
// states only in comments:
//
//   - faultpoint: fault.Register sites are package-level vars with
//     constant, module-unique point names (storm replay addressing);
//   - lockheld: no blocking operation — and at the registry tier, no
//     solve — runs while a pooling/serving mutex is held;
//   - poolescape: warm-pool Solutions never outlive their call frame in
//     consumer packages (solver storage is rebuilt in place);
//   - atomicmix: a variable accessed through sync/atomic anywhere is
//     accessed through sync/atomic everywhere.
//
// cmd/dmclint runs the suite standalone (`make lint`) or as a
// `go vet -vettool`; TestModule in this package runs it over ./... so
// the invariants gate `go test ./...` too.
package dmclint

import (
	"dmc/internal/analysis/atomicmix"
	"dmc/internal/analysis/dmcana"
	"dmc/internal/analysis/faultpoint"
	"dmc/internal/analysis/lockheld"
	"dmc/internal/analysis/poolescape"
)

// All is the suite, in the order diagnostics are grouped when several
// passes flag the same position.
var All = []*dmcana.Analyzer{
	faultpoint.Analyzer,
	lockheld.Analyzer,
	poolescape.Analyzer,
	atomicmix.Analyzer,
}

// Package dmcana is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass, reports Diagnostics, and may
// export a per-package Fact that analyses of dependent packages import.
//
// The repo's invariant checkers (internal/analysis/...) are ordinary
// go/ast + go/types walkers; this package gives them the harness x/tools
// would — package loading (load.go), dependency-ordered execution with
// fact propagation (run.go), and golden-fixture testing
// (internal/analysis/anatest) — without adding a module dependency. The
// build stays hermetic: everything here is standard library plus the go
// command already required by the toolchain.
//
// Deliberate differences from x/tools kept the surface small:
//
//   - Facts are package-level only (no object facts) and are plain
//     gob-encodable values declared via Analyzer.FactType.
//   - Analyzers see only compiled (non-test) files when driven by
//     cmd/dmclint's standalone mode; `go vet -vettool` additionally
//     covers test compilations.
//   - An Analyzer may declare a Finish hook that runs after every
//     package, for module-global checks (e.g. cross-package fault-point
//     name uniqueness) that do not follow import edges.
package dmcana

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files; it must
	// be a valid identifier and unique within a suite.
	Name string
	// Doc is the one-paragraph description `dmclint -help` style output
	// shows: the invariant the analyzer encodes and why it holds.
	Doc string
	// Run inspects one package. Diagnostics go through Pass.Reportf; a
	// non-nil error aborts the whole run (reserved for internal failures,
	// not findings).
	Run func(*Pass) error
	// FactType, when non-nil, declares the concrete type of the fact this
	// analyzer exports per package (e.g. map[string]string{}). It is used
	// as the gob prototype when facts cross process boundaries under
	// `go vet -vettool`.
	FactType any
	// Finish, when non-nil, runs once after every package was analyzed,
	// with the full fact set. It serves module-global invariants that do
	// not follow import edges; only the standalone driver calls it
	// (per-package vet units cannot).
	Finish func(facts *FactSet) []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violated invariant at this site.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	facts *FactSet
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes this package's fact, replacing any previous one.
// The value should be of the analyzer's FactType.
func (p *Pass) ExportFact(v any) {
	p.facts.put(p.Analyzer.Name, p.Pkg.Path(), v)
}

// ImportFact returns the fact the analyzer exported for the package with
// the given path, if any. Facts are only guaranteed present for
// (transitive) dependencies of the package under analysis.
func (p *Pass) ImportFact(pkgPath string) (any, bool) {
	return p.facts.get(p.Analyzer.Name, pkgPath)
}

// FactSet holds every (analyzer, package) fact of a run.
type FactSet struct {
	m map[string]map[string]any // analyzer -> package path -> fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{m: make(map[string]map[string]any)} }

func (fs *FactSet) put(analyzer, pkgPath string, v any) {
	byPkg := fs.m[analyzer]
	if byPkg == nil {
		byPkg = make(map[string]any)
		fs.m[analyzer] = byPkg
	}
	byPkg[pkgPath] = v
}

func (fs *FactSet) get(analyzer, pkgPath string) (any, bool) {
	v, ok := fs.m[analyzer][pkgPath]
	return v, ok
}

// Put records a fact from outside a Pass — the vet-mode driver seeding
// dependency facts it decoded from .vetx files.
func (fs *FactSet) Put(analyzer, pkgPath string, v any) { fs.put(analyzer, pkgPath, v) }

// Get returns one (analyzer, package) fact; the vet-mode driver uses it
// to serialize the analyzed package's facts into its .vetx output.
func (fs *FactSet) Get(analyzer, pkgPath string) (any, bool) { return fs.get(analyzer, pkgPath) }

// All returns the analyzer's facts keyed by package path (nil when it
// exported none anywhere). Finish hooks use this for module-global
// checks.
func (fs *FactSet) All(analyzer string) map[string]any { return fs.m[analyzer] }

package dmcana

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the canonical import path.
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Files is the parsed syntax (comments retained), one entry per
	// compiled Go file.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded set of main-module packages sharing one FileSet,
// in dependency order (every package appears after its in-set
// dependencies), the order Run analyzes them in so facts flow forward.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// LoadModule loads the main-module packages matched by patterns
// (typically "./...") rooted at dir, together with export data for their
// whole dependency graph, and type-checks the module packages from
// source. It shells out to `go list -deps -export -json`, so it needs no
// network and no dependencies beyond the toolchain: dependency packages
// (standard library included) are imported from the build cache's export
// data, exactly as the compiler would.
//
// Test files are not loaded: the analyzers see the same compilations
// `go build` does. Run the suite under `go vet -vettool` to additionally
// cover test compilations.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Imports,Export,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("dmcana: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var mod []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dmcana: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("dmcana: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main && !p.Standard {
			mod = append(mod, p)
		}
	}

	fset := token.NewFileSet()
	// Dependencies resolve through compiled export data; the importer
	// caches, so shared dependencies load once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("dmcana: no export data for %q", path)
		}
		return os.Open(f)
	})

	m := &Module{Fset: fset}
	for _, p := range mod {
		// -deps emits dependencies before dependents, giving the fact
		// propagation order for free.
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// checkPackage parses and type-checks one module package against the
// export-data importer.
func checkPackage(fset *token.FileSet, imp types.Importer, p *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("dmcana: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("dmcana: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		PkgPath: p.ImportPath,
		Dir:     p.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers consume
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

package dmcana

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package of the module, in the
// module's dependency order so that facts a package exports are visible
// to its dependents, then runs the analyzers' Finish hooks over the
// complete fact set. Diagnostics come back sorted by position.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackages(m, analyzers, NewFactSet(), true)
}

// RunPackages is Run with a caller-provided fact set — pre-seeded with
// dependency facts by cmd/dmclint's `go vet -vettool` mode, where each
// process sees one package and facts arrive from files — and optional
// Finish hooks (per-package vet units cannot run module-global checks).
func RunPackages(m *Module, analyzers []*Analyzer, facts *FactSet, finish bool) ([]Diagnostic, error) {
	diags := []Diagnostic{}
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				facts:    facts,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("dmcana: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if finish {
		for _, a := range analyzers {
			if a.Finish != nil {
				diags = append(diags, a.Finish(facts)...)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, and
// analyzer, for stable output and golden comparison.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

package lockheld_test

import (
	"testing"

	"dmc/internal/analysis/anatest"
	"dmc/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	anatest.Run(t, "testdata", lockheld.Analyzer,
		"dmc/internal/core", "dmc/internal/serve", "dmc/internal/fault")
}

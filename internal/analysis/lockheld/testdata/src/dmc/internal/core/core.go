// Package core is a fixture stub shadowing dmc/internal/core: the
// guarded registry (WarmPool.mu/.smu, warmStripe.mu) and slot
// (sessionSlot.mu) mutexes with representative good and bad critical
// sections.
package core

import (
	"sync"
	"time"
)

type sessionSlot struct {
	mu sync.Mutex
}

type warmStripe struct {
	mu sync.Mutex
}

type WarmPool struct {
	mu      sync.Mutex
	smu     sync.RWMutex
	stripes [4]warmStripe
	ch      chan int
	slots   map[string]*sessionSlot
}

// Solve stands in for the solver entry points the registry tier must
// never span.
func (p *WarmPool) Solve() int { return 1 }

func (p *WarmPool) badSend() {
	p.mu.Lock()
	p.ch <- 1 // want `channel send while registry mutex core.WarmPool.mu is held`
	p.mu.Unlock()
}

func (p *WarmPool) badSleep() {
	p.smu.Lock()
	defer p.smu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep call while registry mutex core.WarmPool.smu is held`
}

func (p *WarmPool) badSolve() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.Solve() // want `solver call .* registry locks must never span a solve`
}

func (p *WarmPool) badSelect(done chan struct{}) {
	p.stripes[0].mu.Lock()
	defer p.stripes[0].mu.Unlock()
	select { // want `select without default while registry mutex core.warmStripe.mu is held`
	case <-done:
	case p.ch <- 1:
	}
}

// recvHelper blocks; callers under a guarded lock inherit that through
// the may-block fact.
func (p *WarmPool) recvHelper() int { return <-p.ch }

func (p *WarmPool) badTransitive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.recvHelper() // want `which may block`
}

// WaitOn is exported so dependent fixture packages exercise the
// cross-package may-block fact.
func WaitOn(c chan int) int { return <-c }

// goodNonBlockingSend is the sanctioned bounded-queue idiom: a select
// with a default never blocks.
func (p *WarmPool) goodNonBlockingSend() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
		return true
	default:
		return false
	}
}

// goodAfterUnlock blocks only once the region is closed.
func (p *WarmPool) goodAfterUnlock() {
	p.mu.Lock()
	p.mu.Unlock()
	p.ch <- 1
}

// goodLiteralLater: a literal's body runs outside the region.
func (p *WarmPool) goodLiteralLater() func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	return func() { p.ch <- 1 }
}

// slotSolveOK: holding the slot mutex across a solve is the slot tier's
// purpose.
func (s *sessionSlot) slotSolveOK(p *WarmPool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.Solve()
}

func (s *sessionSlot) slotRecvBad(c chan int) {
	s.mu.Lock()
	<-c // want `channel receive while session-slot mutex core.sessionSlot.mu is held`
	s.mu.Unlock()
}

func (s *sessionSlot) slotRangeBad(c chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range c { // want `range over channel while session-slot mutex core.sessionSlot.mu is held`
	}
}

// Package fault is a fixture stub shadowing dmc/internal/fault's
// registry idiom: the guarded mutex lives in an anonymous-struct
// package-level var, matched by var name rather than type name.
package fault

import "sync"

var registry = struct {
	mu     sync.Mutex
	points map[string]int
}{points: map[string]int{}}

func bad(c chan int) int {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return <-c // want `channel receive while registry mutex fault.registry.mu is held`
}

func good(name string) int {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.points[name]
}

// Package serve is a fixture stub shadowing dmc/internal/serve,
// exercising the cross-package may-block fact: core's WaitOn blocks,
// and serve only learns that from the fact core exported.
package serve

import (
	"net/http"
	"os"
	"sync"

	"dmc/internal/core"
)

type session struct {
	mu sync.Mutex
}

type Server struct {
	smu     sync.RWMutex
	admitMu sync.RWMutex
	queue   chan int
}

func (s *Server) badCrossPackage(c chan int) {
	s.smu.RLock()
	defer s.smu.RUnlock()
	_ = core.WaitOn(c) // want `call to dmc/internal/core.WaitOn, which may block while registry mutex serve.Server.smu is held`
}

func (s *Server) badAdmit() {
	s.admitMu.Lock()
	s.queue <- 1 // want `channel send while registry mutex serve.Server.admitMu is held`
	s.admitMu.Unlock()
}

// badJournalWrite: file IO is blocking — a journal append or fsync
// under the registry mutex stalls every solve on the shard behind the
// disk.
func (s *Server) badJournalWrite(f *os.File) {
	s.smu.Lock()
	defer s.smu.Unlock()
	_, _ = f.Write(nil) // want `\(\*os\.File\)\.Write call while registry mutex serve\.Server\.smu is held`
	_ = f.Sync()        // want `\(\*os\.File\)\.Sync call while registry mutex serve\.Server\.smu is held`
}

// badSlotRename: the slot tier spans solves, never file IO.
func (se *session) badSlotRename() {
	se.mu.Lock()
	defer se.mu.Unlock()
	_ = os.Rename("a", "b") // want `os.Rename call while session-slot mutex serve.session.mu is held`
}

// badReplicateUnderRegistry: replication sends are network IO — a
// chunk streamed to a follower while the registry mutex is held stalls
// every solve on the shard behind the follower's link.
func (s *Server) badReplicateUnderRegistry(c *http.Client, r *http.Request) {
	s.smu.RLock()
	defer s.smu.RUnlock()
	_, _ = c.Do(r) // want `\(\*net/http\.Client\)\.Do call while registry mutex serve\.Server\.smu is held`
}

// badApplyUnderSlot: the follower's apply path folds records under the
// session tier; polling the primary from inside that region would wedge
// the session behind the network.
func (se *session) badApplyUnderSlot(c *http.Client, r *http.Request) {
	se.mu.Lock()
	defer se.mu.Unlock()
	_, _ = c.Do(r) // want `\(\*net/http\.Client\)\.Do call while session-slot mutex serve\.session\.mu is held`
}

// goodCaptureThenSend: the replication sender's required shape — read
// the journal chunk under the lock, hit the network after release.
func (s *Server) goodCaptureThenSend(c *http.Client, r *http.Request) {
	s.smu.RLock()
	n := cap(s.queue)
	s.smu.RUnlock()
	if n > 0 {
		_, _ = c.Do(r)
	}
}

// goodCaptureThenWrite: capture state under the lock, write after
// release — the durability layer's required shape.
func (s *Server) goodCaptureThenWrite(f *os.File) {
	s.smu.RLock()
	n := cap(s.queue)
	s.smu.RUnlock()
	_, _ = f.Write(make([]byte, n))
}

// goodRead: plain map/field work under the registry lock is fine.
func (s *Server) goodRead() int {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return cap(s.queue)
}

// goodSessionSolve: the slot tier spans solver calls by design.
func (se *session) goodSessionSolve(p *core.WarmPool) int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return p.Solve()
}

// Package lockheld checks the serving stack's lock-discipline
// invariant: the registry mutexes that guard shared maps and admission
// (core.WarmPool.mu/.smu, the warm-stripe locks, serve.Server.smu and
// .admitMu, the fault registry lock) must never be held across anything
// that can block or across a solver call, and the per-session slot
// mutexes (core.sessionSlot.mu, serve.session.mu) — which by design ARE
// held across solves to serialize a session — must still never be held
// across channel operations, sleeps, waits, or network I/O.
//
// A registry lock held across a blocking operation turns one slow or
// deadlocked session into a server-wide stall: every solve on the shard
// funnels through those locks. A slot lock held across a channel op can
// deadlock against DropSession/QuarantineSession, which take the same
// lock. The analyzer tracks Lock/RLock..Unlock/RUnlock regions
// intra-procedurally (the `mu.Lock(); defer mu.Unlock()` idiom holds to
// function end) and flags, inside a region: channel sends and receives,
// selects without a default (a select WITH default is the sanctioned
// non-blocking idiom — enqueue's bounded-queue send), ranges over
// channels, time.Sleep, WaitGroup/Cond waits, calls into net and
// net/http, file IO (*os.File methods and the os package's filesystem
// calls — a journal append or fsync under a registry mutex stalls every
// solve on the shard behind the disk), and calls to any function whose
// transitive body can block —
// the may-block call graph, computed per package and exported as a
// fact so it crosses package boundaries. Registry-tier regions
// additionally flag Solve*/Resolve*/Solution calls by name; at the slot
// tier those same calls are exempt from the may-block check, because a
// solve "may block" only through fault injection's latency points and
// holding the slot lock across the (possibly slow) solve is the
// serialization design.
//
// Known soundness limits, chosen to keep false positives at zero:
// calls through function values and interfaces are not resolved, and a
// function literal's body is analyzed as its own function with no locks
// held (it may run later).
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dmc/internal/analysis/dmcana"
)

// Tier classifies how strict a guarded mutex is.
type tier int

const (
	// tierRegistry mutexes guard shared registries: nothing that can
	// block AND no solver calls while held.
	tierRegistry tier = iota
	// tierSlot mutexes serialize one session: solver calls are their
	// purpose, but blocking operations remain forbidden.
	tierSlot
)

func (t tier) String() string {
	if t == tierSlot {
		return "session-slot"
	}
	return "registry"
}

// mutexSpec names one guarded mutex: a field of a named struct, or —
// for the anonymous-struct idiom (fault's registry var) — a field of a
// named package-level var.
type mutexSpec struct {
	pkg   string // declaring package path
	owner string // struct type name, or package-level var name
	field string
	tier  tier
}

// guarded is the project's lock-discipline table. Fixture stubs declare
// the same paths, so the table serves tests unchanged.
var guarded = []mutexSpec{
	{"dmc/internal/core", "WarmPool", "mu", tierRegistry},
	{"dmc/internal/core", "WarmPool", "smu", tierRegistry},
	{"dmc/internal/core", "warmStripe", "mu", tierRegistry},
	{"dmc/internal/core", "sessionSlot", "mu", tierSlot},
	{"dmc/internal/serve", "Server", "smu", tierRegistry},
	{"dmc/internal/serve", "Server", "admitMu", tierRegistry},
	{"dmc/internal/serve", "session", "mu", tierSlot},
	{"dmc/internal/fault", "registry", "mu", tierRegistry},
}

// Fact is the may-block set a package exports: the full names
// (types.Func.FullName) of its functions whose bodies can block,
// transitively.
type Fact map[string]bool

// Analyzer is the lockheld pass.
var Analyzer = &dmcana.Analyzer{
	Name:     "lockheld",
	Doc:      "check that registry mutexes are never held across blocking operations or solver calls, and session-slot mutexes never across blocking operations",
	Run:      run,
	FactType: Fact{},
}

func run(pass *dmcana.Pass) error {
	c := &checker{pass: pass, mayBlock: computeMayBlock(pass)}
	pass.ExportFact(c.mayBlock)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.walkBody(fn.Body)
				}
				return false // walkBody handles nested literals
			case *ast.FuncLit:
				c.walkBody(fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass     *dmcana.Pass
	mayBlock Fact
}

// heldMutex is one live critical section.
type heldMutex struct {
	spec mutexSpec
	pos  token.Pos // the Lock call
}

func (h heldMutex) name() string {
	return h.spec.pkg[strings.LastIndexByte(h.spec.pkg, '/')+1:] + "." + h.spec.owner + "." + h.spec.field
}

// walkBody analyzes one function body, nested literals included (each
// literal starts with nothing held — it may run on another goroutine or
// after the region ends).
func (c *checker) walkBody(body *ast.BlockStmt) {
	c.walkStmts(body.List, map[string]heldMutex{})
	ast.Inspect(body, func(n ast.Node) bool {
		// Collects literals at every nesting depth; walkStmts itself never
		// descends into a literal, so each body is walked exactly once.
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, map[string]heldMutex{})
		}
		return true
	})
}

// walkStmts tracks the held set across a statement sequence. Branch
// bodies are analyzed with a copy: a Lock inside a branch is scoped to
// it, which matches every locking idiom in the tree.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]heldMutex) {
	for _, s := range stmts {
		c.walkStmt(s, held)
	}
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]heldMutex) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, hm, op, ok := c.mutexOp(s.X); ok {
			if op == "Lock" || op == "RLock" {
				held[key] = hm
			} else {
				delete(held, key)
			}
			return
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the region open to function end —
		// that is the point of the idiom — so nothing to do; argument
		// expressions still evaluate now.
		if _, _, _, ok := c.mutexOp(s.Call); ok {
			return
		}
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					c.checkExpr(v, held)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.SendStmt:
		c.blockingOp(s.Arrow, held, "channel send")
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, copyHeld(held))
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if t := c.pass.Info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.blockingOp(s.For, held, "range over channel")
			}
		}
		c.checkExpr(s.X, held)
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			c.walkStmts(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.walkStmts(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		if !hasDefault(s) {
			c.blockingOp(s.Select, held, "select without default")
		}
		for _, cc := range s.Body.List {
			c.walkStmts(cc.(*ast.CommClause).Body, copyHeld(held))
		}
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body was handled as a
		// fresh function by walkBody.
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	}
}

// checkExpr flags blocking expressions (receives, blocking calls)
// reachable from e while locks are held.
func (c *checker) checkExpr(e ast.Expr, held map[string]heldMutex) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately, runs later
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.blockingOp(n.OpPos, held, "channel receive")
			}
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

// checkCall classifies one call made while locks are held.
func (c *checker) checkCall(call *ast.CallExpr, held map[string]heldMutex) {
	fn := calleeFunc(c.pass.Info, call)
	if fn == nil {
		return // function value or interface method: not resolvable
	}
	full := fn.FullName()
	if solveFamily(fn.Name()) {
		// Holding a slot lock across a solve is the slot tier's entire
		// purpose, and solves transitively "may block" only through fault
		// injection's latency points (a time.Sleep that simulates the slow
		// solve itself) — so the solve family is exempt from the may-block
		// check at slot tier, and forbidden outright at registry tier.
		for _, hm := range held {
			if hm.spec.tier == tierRegistry {
				c.pass.Reportf(call.Pos(), "solver call %s while registry mutex %s is held (Lock at %s): registry locks must never span a solve",
					full, hm.name(), c.pass.Fset.Position(hm.pos))
			}
		}
		return
	}
	switch {
	case isBlockingStdCall(fn):
		c.blockingOp(call.Pos(), held, full+" call")
	case c.calleeMayBlock(fn):
		c.blockingOp(call.Pos(), held, "call to "+full+", which may block")
	}
}

// solveFamily matches the solver entry points by name: the
// Solve*/Resolve* families and the warm-solution accessors
// (estimate.Adaptor.Solution re-solves on drift).
func solveFamily(name string) bool {
	return strings.HasPrefix(name, "Solve") || strings.HasPrefix(name, "Resolve") ||
		strings.HasPrefix(name, "solve") || strings.HasPrefix(name, "resolve") ||
		name == "Solution"
}

// blockingOp reports op against every held mutex.
func (c *checker) blockingOp(pos token.Pos, held map[string]heldMutex, op string) {
	for _, hm := range held {
		c.pass.Reportf(pos, "%s while %s mutex %s is held (Lock at %s)",
			op, hm.spec.tier, hm.name(), c.pass.Fset.Position(hm.pos))
	}
}

// mutexOp decodes expr as a Lock/RLock/Unlock/RUnlock call on a guarded
// mutex, returning a key identifying the mutex path (so the Unlock of
// `p.stripes[i].mu` closes the region its Lock opened).
func (c *checker) mutexOp(expr ast.Expr) (key string, hm heldMutex, op string, ok bool) {
	call, okc := expr.(*ast.CallExpr)
	if !okc {
		return "", heldMutex{}, "", false
	}
	sel, oks := call.Fun.(*ast.SelectorExpr)
	if !oks {
		return "", heldMutex{}, "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", heldMutex{}, "", false
	}
	recv, oks := sel.X.(*ast.SelectorExpr)
	if !oks {
		return "", heldMutex{}, "", false
	}
	spec, oks := c.guardedField(recv)
	if !oks {
		return "", heldMutex{}, "", false
	}
	return types.ExprString(sel.X), heldMutex{spec: spec, pos: call.Pos()}, op, true
}

// guardedField matches `x.field` against the guarded-mutex table.
func (c *checker) guardedField(sel *ast.SelectorExpr) (mutexSpec, bool) {
	fieldObj, ok := c.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() {
		return mutexSpec{}, false
	}
	field := fieldObj.Name()
	// Owner by named struct type...
	ownerType := c.pass.Info.Types[sel.X].Type
	for t := ownerType; t != nil; {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				for _, g := range guarded {
					if g.pkg == obj.Pkg().Path() && g.owner == obj.Name() && g.field == field {
						return g, true
					}
				}
			}
		}
		break
	}
	// ...or by package-level var of anonymous struct type (fault's
	// registry idiom).
	if id, ok := sel.X.(*ast.Ident); ok {
		if v, ok := c.pass.Info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			for _, g := range guarded {
				if g.pkg == v.Pkg().Path() && g.owner == v.Name() && g.field == field {
					return g, true
				}
			}
		}
	}
	return mutexSpec{}, false
}

// calleeMayBlock consults the may-block set: the current package's for
// local functions, the exported fact for imported ones.
func (c *checker) calleeMayBlock(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.mayBlock[fn.FullName()]
	}
	if !modulePkg(fn.Pkg().Path()) {
		return false
	}
	if v, ok := c.pass.ImportFact(fn.Pkg().Path()); ok {
		return v.(Fact)[fn.FullName()]
	}
	return false
}

// modulePkg reports whether the path is inside this module. The
// may-block graph deliberately stops at the module boundary: under
// `go vet -vettool` the driver computes facts for the standard library
// too, and a transitive "fmt.Errorf may block" signal is not the class
// of unbounded wait the invariant targets — the primitive stdlib
// blockers are named explicitly in isBlockingStdCall instead.
func modulePkg(path string) bool {
	return path == "dmc" || strings.HasPrefix(path, "dmc/")
}

func copyHeld(held map[string]heldMutex) map[string]heldMutex {
	out := make(map[string]heldMutex, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, nil for function values,
// interface methods, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil // dynamic dispatch: unresolvable
		}
	}
	return fn
}

// isBlockingStdCall reports whether fn is a standard-library call the
// analyzer treats as blocking by definition: time.Sleep, WaitGroup and
// Cond waits, anything in net or net/http (conservative — even a
// non-blocking helper from those packages has no business inside a
// guarded critical section), and file IO — every *os.File method
// (Write, Sync, Read, ...) and the package-level filesystem calls hit
// the disk, so snapshot/journal IO can never run under a registry
// mutex.
func isBlockingStdCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		return fn.Name() == "Sleep" || fn.Name() == "Tick" || fn.Name() == "After"
	case "sync":
		return fn.Name() == "Wait" // (*WaitGroup).Wait, (*Cond).Wait
	case "net", "net/http":
		return true
	case "os":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			return ok && named.Obj().Name() == "File"
		}
		switch fn.Name() {
		case "Create", "CreateTemp", "Open", "OpenFile", "OpenRoot",
			"Rename", "Remove", "RemoveAll", "Link", "Symlink",
			"Mkdir", "MkdirAll", "MkdirTemp", "Truncate",
			"ReadFile", "WriteFile", "ReadDir", "Readlink",
			"Chmod", "Chown", "Chtimes", "Stat", "Lstat":
			return true
		}
		return false
	}
	return false
}

// computeMayBlock finds every function in the package whose body can
// block, transitively: a fixpoint over the package's call graph seeded
// with primitive blocking operations and imported may-block facts.
// Calls through function values and interfaces are (unsoundly, but
// quietly) assumed non-blocking.
func computeMayBlock(pass *dmcana.Pass) Fact {
	type fnInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnInfo{fn: fn, body: fd.Body})
			}
		}
	}
	out := Fact{}
	mayBlock := func(fn *types.Func) bool {
		if fn.Pkg() == pass.Pkg {
			return out[fn.FullName()]
		}
		if !modulePkg(fn.Pkg().Path()) {
			return false
		}
		if v, ok := pass.ImportFact(fn.Pkg().Path()); ok {
			return v.(Fact)[fn.FullName()]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if out[fi.fn.FullName()] {
				continue
			}
			blocks := false
			var scan func(n ast.Node) bool
			scan = func(n ast.Node) bool {
				if blocks {
					return false
				}
				switch n := n.(type) {
				case *ast.FuncLit:
					// A literal's body blocks its *caller* only if invoked;
					// invocation sites resolve to nothing, so skip — the
					// enclosing function is judged by what it runs inline.
					return false
				case *ast.SendStmt:
					blocks = true
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						blocks = true
					}
				case *ast.SelectStmt:
					if !hasDefault(n) {
						blocks = true
						return false
					}
					// A select with a default never blocks in its comm ops
					// (that is the sanctioned non-blocking idiom), but its
					// clause bodies still run inline.
					for _, cc := range n.Body.List {
						for _, s := range cc.(*ast.CommClause).Body {
							ast.Inspect(s, scan)
						}
					}
					return false
				case *ast.RangeStmt:
					if t := pass.Info.Types[n.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							blocks = true
						}
					}
				case *ast.CallExpr:
					if fn := calleeFunc(pass.Info, n); fn != nil {
						if isBlockingStdCall(fn) || (fn.Pkg() != nil && mayBlock(fn)) {
							blocks = true
						}
					}
				}
				return !blocks
			}
			ast.Inspect(fi.body, scan)
			if blocks {
				out[fi.fn.FullName()] = true
				changed = true
			}
		}
	}
	return out
}

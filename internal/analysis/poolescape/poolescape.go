// Package poolescape checks the Solution-lifetime invariant the warm
// serving stack rests on: a Solution obtained from a warm source —
// core.Solver's Resolve*/Solve* methods, core.WarmPool's SolveSession*/
// SolveMany* methods, or estimate.Adaptor.Solution — aliases
// solver-owned storage that the NEXT solve on the same solver rebuilds
// in place (see the WarmPool contract in internal/core/warmpool.go).
// Consumers must extract what they need (scenario.NewSolveResult, or a
// field-by-field copy) before the value can outlive its call frame.
//
// The analyzer runs in consumer packages (the storage owners —
// internal/core, internal/lp, internal/estimate — manage that storage
// and are exempt) and performs per-function taint tracking: values
// returned by warm-source calls, and anything reference-shaped derived
// from them (slice/element/field reads like sol.X, batch elements like
// sols[i]), must not
//
//   - be stored into memory that outlives the frame: package-level
//     vars, or fields/elements reached through a parameter, receiver,
//     or package-level root;
//   - be sent on a channel;
//   - be captured by a `go` statement's function literal;
//   - be returned to the caller.
//
// One-shot entry points (core.SolveQuality, core.SolveMany, dmc.Solve*)
// return freshly allocated storage and are deliberately NOT tainted —
// retaining those results (internal/proto's simulation Config does) is
// fine. Passing a tainted value to a call is also fine: synchronous use
// inside the frame is exactly the sanctioned pattern.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dmc/internal/analysis/dmcana"
)

// Storage-owner packages: they implement the pooling contract and hold
// Solutions in their warm state by design.
var ownerPkgs = map[string]bool{
	"dmc/internal/core":     true,
	"dmc/internal/lp":       true,
	"dmc/internal/estimate": true,
}

// Analyzer is the poolescape pass.
var Analyzer = &dmcana.Analyzer{
	Name: "poolescape",
	Doc:  "check that warm-pool Solutions (solver-owned storage) never outlive their call frame in consumer packages",
	Run:  run,
}

func run(pass *dmcana.Pass) error {
	if ownerPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Type, fn.Recv, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkFunc(pass, fn.Type, nil, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkFunc taints warm-source results within one function and flags
// frame-escaping uses. Nested literals are checked independently (их
// own frames), except that a `go` literal capturing a tainted outer
// variable is itself a sink.
func checkFunc(pass *dmcana.Pass, ftyp *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	// Objects whose memory the caller can reach: parameters and
	// receiver. Stores rooted at them outlive the frame.
	callerOwned := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					callerOwned[obj] = true
				}
			}
		}
	}
	addFields(recv)
	addFields(ftyp.Params)

	t := &tainter{pass: pass, tainted: map[types.Object]token.Pos{}}
	// Seed + propagate to a fixpoint: assignments appear in source order
	// but loops can carry taint backwards.
	for {
		before := len(t.tainted)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != nil {
				return false // separate frame
			}
			if as, ok := n.(*ast.AssignStmt); ok {
				t.propagate(as)
			}
			return true
		})
		if len(t.tainted) == before {
			break
		}
	}
	if len(t.tainted) == 0 {
		return
	}

	// Sink scan.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // tuple assign: RHS is a call, never tainted as a tuple
				}
				if pos, tainted := t.taintedExpr(n.Rhs[i]); tainted && t.persistent(lhs, callerOwned) {
					pass.Reportf(n.Pos(), "pool-backed Solution (from warm solve at %s) stored outside the call frame; it aliases solver storage the next solve rebuilds — extract a copy first (e.g. scenario.NewSolveResult)",
						pass.Fset.Position(pos))
				}
			}
		case *ast.SendStmt:
			if pos, tainted := t.taintedExpr(n.Value); tainted {
				pass.Reportf(n.Pos(), "pool-backed Solution (from warm solve at %s) sent on a channel; the receiver outlives this frame and the next solve rebuilds the storage — send a copy",
					pass.Fset.Position(pos))
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if pos, tainted := t.taintedExpr(res); tainted {
					pass.Reportf(res.Pos(), "pool-backed Solution (from warm solve at %s) returned to the caller; the warm solver can rebuild its storage before the caller reads it — return a copy",
						pass.Fset.Position(pos))
				}
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				t.checkGoCapture(lit, n.Pos())
			}
			for _, arg := range n.Call.Args {
				if pos, tainted := t.taintedExpr(arg); tainted {
					pass.Reportf(arg.Pos(), "pool-backed Solution (from warm solve at %s) passed to a goroutine, which races the session's next solve — pass a copy",
						pass.Fset.Position(pos))
				}
			}
		}
		return true
	})
}

// tainter tracks which local objects hold (or reach) warm solver
// storage within one function.
type tainter struct {
	pass    *dmcana.Pass
	tainted map[types.Object]token.Pos // object -> originating warm call
}

// propagate transfers taint across one assignment.
func (t *tainter) propagate(as *ast.AssignStmt) {
	// Warm-source call: taint every Solution-typed LHS.
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && t.warmSource(call) {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := t.objOf(id); obj != nil && solutionish(obj.Type()) {
						t.taint(obj, call.Pos())
					}
				}
			}
			return
		}
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if pos, tainted := t.taintedExpr(as.Rhs[i]); tainted {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := t.objOf(id); obj != nil {
					t.taint(obj, pos)
				}
			}
		}
	}
}

func (t *tainter) taint(obj types.Object, pos token.Pos) {
	if _, ok := t.tainted[obj]; !ok {
		t.tainted[obj] = pos
	}
}

func (t *tainter) objOf(id *ast.Ident) types.Object {
	if obj := t.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return t.pass.Info.Uses[id]
}

// taintedExpr reports whether e reaches warm solver storage, and the
// originating warm call. Reference-shaped derivations stay tainted
// (sols[i], sol.X, (*sol)); scalar reads (sol.Quality) do not.
func (t *tainter) taintedExpr(e ast.Expr) (token.Pos, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objOf(e); obj != nil {
			if pos, ok := t.tainted[obj]; ok {
				return pos, true
			}
		}
	case *ast.CallExpr:
		if t.warmSource(e) {
			return e.Pos(), true
		}
	case *ast.IndexExpr:
		return t.taintedExpr(e.X)
	case *ast.SelectorExpr:
		if pos, ok := t.taintedExpr(e.X); ok && refShaped(t.pass.Info.Types[e].Type) {
			return pos, true
		}
	case *ast.StarExpr:
		return t.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.taintedExpr(e.X)
		}
	case *ast.SliceExpr:
		return t.taintedExpr(e.X)
	}
	return token.NoPos, false
}

// persistent reports whether storing into lhs outlives the frame: a
// package-level var, or a field/element chain rooted at a parameter,
// receiver, package-level var, or another tainted object (already
// aliasing pool storage).
func (t *tainter) persistent(lhs ast.Expr, callerOwned map[types.Object]bool) bool {
	root := lhs
	depth := 0
	for {
		switch x := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root, depth = x.X, depth+1
			continue
		case *ast.IndexExpr:
			root, depth = x.X, depth+1
			continue
		case *ast.StarExpr:
			root, depth = x.X, depth+1
			continue
		}
		break
	}
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		// Rooted at a call or literal: not locally provable, let it go.
		return false
	}
	obj := t.objOf(id)
	if obj == nil {
		return false
	}
	if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true // package-level var (with or without a selector chain)
	}
	if depth == 0 {
		return false // plain rebind of a local/param variable
	}
	return callerOwned[obj]
}

// checkGoCapture flags tainted free variables captured by a goroutine
// literal.
func (t *tainter) checkGoCapture(lit *ast.FuncLit, goPos token.Pos) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := t.pass.Info.Uses[id]; obj != nil {
			if pos, tainted := t.tainted[obj]; tainted {
				t.pass.Reportf(id.Pos(), "goroutine captures pool-backed Solution %q (from warm solve at %s) and races the session's next solve — capture a copy",
					id.Name, t.pass.Fset.Position(pos))
			}
		}
		return true
	})
}

// warmSource reports whether the call returns solver-owned storage.
func (t *tainter) warmSource(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var fn *types.Func
	if s, ok := t.pass.Info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else {
		fn, _ = t.pass.Info.Uses[sel.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recvName := namedBase(sig.Recv().Type())
	if recvName == "" {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "dmc/internal/core" && recvName == "Solver":
		return strings.HasPrefix(name, "Resolve") || strings.HasPrefix(name, "Solve")
	case pkg == "dmc/internal/core" && recvName == "WarmPool":
		return strings.HasPrefix(name, "Solve")
	case pkg == "dmc/internal/estimate" && recvName == "Adaptor":
		return name == "Solution"
	}
	return false
}

// namedBase returns the receiver's named-type name, through a pointer.
func namedBase(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// solutionish reports whether the type is (or contains, through
// pointers and slices) a solver Solution.
func solutionish(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return solutionish(t.Elem())
	case *types.Slice:
		return solutionish(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil || obj.Name() != "Solution" {
			return false
		}
		p := obj.Pkg().Path()
		return p == "dmc/internal/core" || p == "dmc/internal/lp"
	}
	return false
}

// refShaped reports whether a derived value still aliases the parent's
// storage: pointers, slices, and maps do; scalars and struct copies do
// not.
func refShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

package poolescape_test

import (
	"testing"

	"dmc/internal/analysis/anatest"
	"dmc/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	anatest.Run(t, "testdata", poolescape.Analyzer, "consumer")
}

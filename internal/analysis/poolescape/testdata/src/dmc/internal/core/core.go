// Package core is a fixture stub shadowing dmc/internal/core: the warm
// sources (Solver.Resolve*, WarmPool.Solve*) and a one-shot entry point
// whose results are free to retain.
package core

type Solution struct {
	X       []float64
	Quality float64
}

type Network struct{}

type Solver struct{ sol Solution }

// Resolve returns solver-owned storage, rebuilt by the next call.
func (s *Solver) Resolve(n *Network) (*Solution, error) { return &s.sol, nil }

type WarmPool struct{ s Solver }

// SolveSession returns the session slot's solver-owned storage.
func (p *WarmPool) SolveSession(id string, n *Network) (*Solution, error) {
	return p.s.Resolve(n)
}

// SolveQuality is a one-shot solve: fresh storage every call.
func SolveQuality(n *Network) (*Solution, error) {
	return &Solution{X: []float64{1}}, nil
}

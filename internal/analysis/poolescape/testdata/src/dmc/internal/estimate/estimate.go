// Package estimate is a fixture stub shadowing dmc/internal/estimate.
// It is a storage owner: retaining the warm Solution in the Adaptor is
// the cache design, so the analyzer must stay silent here.
package estimate

import "dmc/internal/core"

type Adaptor struct {
	solver   *core.Solver
	solution *core.Solution
}

// Solution re-solves on drift and caches the result — owner-package
// retention the analyzer exempts.
func (a *Adaptor) Solution(n *core.Network) (*core.Solution, error) {
	sol, err := a.solver.Resolve(n)
	if err != nil {
		return nil, err
	}
	a.solution = sol
	return sol, nil
}

package consumer

import (
	"dmc/internal/core"
	"dmc/internal/estimate"
)

var cache *core.Solution

type holder struct{ sol *core.Solution }

func badGlobal(p *core.WarmPool, n *core.Network) {
	sol, _ := p.SolveSession("s", n)
	cache = sol // want `stored outside the call frame`
}

func badField(p *core.WarmPool, n *core.Network, h *holder) {
	sol, _ := p.SolveSession("s", n)
	h.sol = sol // want `stored outside the call frame`
}

func badReturn(p *core.WarmPool, n *core.Network) *core.Solution {
	sol, _ := p.SolveSession("s", n)
	return sol // want `returned to the caller`
}

func badReturnSlice(p *core.WarmPool, n *core.Network) []float64 {
	sol, _ := p.SolveSession("s", n)
	return sol.X // want `returned to the caller`
}

func badSend(p *core.WarmPool, n *core.Network, ch chan *core.Solution) {
	sol, _ := p.SolveSession("s", n)
	ch <- sol // want `sent on a channel`
}

func badGoroutine(p *core.WarmPool, n *core.Network) {
	sol, _ := p.SolveSession("s", n)
	go func() {
		_ = sol.Quality // want `goroutine captures pool-backed Solution`
	}()
}

func badAdaptor(a *estimate.Adaptor, n *core.Network) {
	sol, _ := a.Solution(n)
	cache = sol // want `stored outside the call frame`
}

func badRebindStillEscapes(p *core.WarmPool, n *core.Network) *core.Solution {
	sol, _ := p.SolveSession("s", n)
	alias := sol
	return alias // want `returned to the caller`
}

// goodScalar extracts a value copy; scalars do not alias pool storage.
func goodScalar(p *core.WarmPool, n *core.Network) float64 {
	sol, _ := p.SolveSession("s", n)
	return sol.Quality
}

// goodCopy extracts into fresh storage before returning.
func goodCopy(p *core.WarmPool, n *core.Network) []float64 {
	sol, _ := p.SolveSession("s", n)
	out := make([]float64, len(sol.X))
	copy(out, sol.X)
	return out
}

// goodOneShot: package-level solves return fresh storage; retaining
// them is fine (internal/proto's simulation Config does exactly this).
func goodOneShot(n *core.Network) *core.Solution {
	sol, _ := core.SolveQuality(n)
	return sol
}

// goodLocalUse: synchronous consumption inside the frame is the
// sanctioned pattern.
func goodLocalUse(p *core.WarmPool, n *core.Network) float64 {
	sol, _ := p.SolveSession("s", n)
	total := 0.0
	for _, x := range sol.X {
		total += x
	}
	return total
}

// Package anatest is a golden-fixture harness for dmcana analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: a testdata/src
// tree acts as a miniature GOPATH of fixture packages, and expectations
// are written next to the offending line as
//
//	var bad = fault.Register(name()) // want `must be a constant`
//
// Each `// want` comment carries one or more double-quoted or
// backquoted regular expressions, matched against the messages of the
// diagnostics reported on that line. Diagnostics without a matching
// want, and wants without a matching diagnostic, fail the test.
//
// Fixture packages may import each other by path (stubs of real module
// packages, e.g. dmc/internal/fault, live in the tree under exactly
// that path) and may import the standard library, which resolves
// through the toolchain's export data.
package anatest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"dmc/internal/analysis/dmcana"
)

// Run loads the fixture packages named by pkgPaths (and, recursively,
// every fixture package they import) from testdata/src, runs the
// analyzer over them in dependency order with facts flowing, and
// compares the diagnostics against the tree's `// want` comments.
func Run(t *testing.T, testdata string, a *dmcana.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*dmcana.Package),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", stdExport)
	var ordered []*dmcana.Package
	l.ordered = &ordered
	for _, path := range pkgPaths {
		if _, err := l.load(path); err != nil {
			t.Fatalf("anatest: %v", err)
		}
	}

	m := &dmcana.Module{Fset: l.fset, Pkgs: ordered}
	diags, err := dmcana.Run(m, []*dmcana.Analyzer{a})
	if err != nil {
		t.Fatalf("anatest: %v", err)
	}
	match(t, l, diags)
}

// loader loads fixture packages from a testdata/src tree, memoized,
// recording finish order (= dependency order).
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*dmcana.Package
	imp     types.Importer
	ordered *[]*dmcana.Package
	loading []string // cycle detection, in recursion order
}

// load returns the fixture package at the given import path, loading it
// (and its fixture dependencies) on first use.
func (l *loader) load(path string) (*dmcana.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q (%s)", path, strings.Join(l.loading, " -> "))
		}
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	l.pkgs[path] = nil // in progress
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	// Fixture dependencies load (and analyze) before their dependents.
	for _, f := range files {
		for _, spec := range f.Imports {
			ipath := strings.Trim(spec.Path.Value, `"`)
			if l.isFixture(ipath) {
				if _, err := l.load(ipath); err != nil {
					return nil, err
				}
			}
		}
	}
	info := dmcana.NewInfo()
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if l.isFixture(ipath) {
			p, err := l.load(ipath)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.imp.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	p := &dmcana.Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	*l.ordered = append(*l.ordered, p)
	return p, nil
}

// isFixture reports whether the import path exists in the fixture tree
// (fixture stubs shadow real packages of the same path).
func (l *loader) isFixture(path string) bool {
	fi, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExport resolves non-fixture imports (standard library) to compiled
// export data via `go list -export`, memoized process-wide.
var stdExport = func() func(path string) (io.ReadCloser, error) {
	var mu sync.Mutex
	cache := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		mu.Lock()
		f, ok := cache[path]
		mu.Unlock()
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("anatest: go list -export %s: %v", path, err)
			}
			f = strings.TrimSpace(string(out))
			if f == "" {
				return nil, fmt.Errorf("anatest: no export data for %q", path)
			}
			mu.Lock()
			cache[path] = f
			mu.Unlock()
		}
		return os.Open(f)
	}
}()

// want is one expectation parsed from a `// want` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// match compares diagnostics against the fixture tree's want comments.
func match(t *testing.T, l *loader, diags []dmcana.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, p := range *l.ordered {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := l.fset.Position(c.Pos())
					ws, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					for _, re := range ws {
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the regexes from a comment's `// want` clause, nil
// when the comment has none.
func parseWant(text string) ([]*regexp.Regexp, error) {
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(text[i+len("// want "):])
	var res []*regexp.Regexp
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want clause: expected quoted regexp, got %q", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("want clause: unterminated %c-quote", quote)
		}
		re, err := regexp.Compile(rest[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("want clause: %v", err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want clause with no regexps")
	}
	return res, nil
}

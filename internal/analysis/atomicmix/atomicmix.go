// Package atomicmix checks the memory-access invariant behind every
// counter on the serving hot path: a struct field or package-level var
// that is accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere.
//
// A single plain load of a field that other goroutines update with
// atomic.AddUint64 is a data race the race detector only catches when a
// test happens to interleave it; mixed access also licenses the
// compiler to tear or cache the plain access. The analyzer records
// every address that is passed into a sync/atomic function
// (&x.field or &pkgVar) and flags every other read or write of the same
// variable that is not itself part of an atomic call. Fields touched
// atomically are exported as a fact, so a dependent package reading the
// field plainly is caught too.
//
// Locals and parameters are exempt (a stack-local atomic that later
// reverts to plain access after a WaitGroup join is a common, safe test
// idiom), and composite-literal keys are exempt (zero-initialization
// before the value is shared is not an access). Fields typed
// atomic.Int64 & co. need no checking here: their plain value is
// unreachable, and `go vet`'s copylocks already rejects copying them.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"dmc/internal/analysis/dmcana"
)

// Fact lists a package's atomically-accessed variables, keyed by
// qualified name ("Struct.field" or "pkgVar") with the position of one
// atomic access as the value.
type Fact map[string]string

// Analyzer is the atomicmix pass.
var Analyzer = &dmcana.Analyzer{
	Name:     "atomicmix",
	Doc:      "check that variables accessed via sync/atomic are never also accessed plainly",
	Run:      run,
	FactType: Fact{},
}

func run(pass *dmcana.Pass) error {
	// Pass 1: every &target handed to a sync/atomic function. sanctioned
	// marks the idents consumed by those calls so pass 2 can skip them.
	atomicObjs := map[types.Object]ast.Expr{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, id := targetVar(pass.Info, un.X)
				if obj == nil || !trackable(obj) {
					continue
				}
				atomicObjs[obj] = un.X
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 && !hasImportedFacts(pass) {
		return nil
	}

	// Merge this package's atomic set with every dependency's fact, so
	// plain access to an upstream package's atomic field is caught here.
	imported := map[string]string{}
	for _, dep := range pass.Pkg.Imports() {
		if v, ok := pass.ImportFact(dep.Path()); ok {
			for k, pos := range v.(Fact) {
				imported[dep.Path()+"."+k] = pos
			}
		}
	}

	fact := Fact{}
	for obj := range atomicObjs {
		fact[qualName(obj)] = pass.Fset.Position(atomicObjs[obj].Pos()).String()
	}
	if len(fact) > 0 {
		pass.ExportFact(fact)
	}

	// Pass 2: any other use of those variables is a mixed access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				// Composite-literal initialization (S{hits: 0}) happens
				// before the value can be shared.
				if id, ok := n.Key.(*ast.Ident); ok {
					sanctioned[id] = true
				}
			case *ast.Ident:
				obj := pass.Info.Uses[n]
				if obj == nil || sanctioned[n] {
					return true
				}
				if at, ok := atomicObjs[obj]; ok {
					pass.Reportf(n.Pos(), "plain access of %s, which is accessed atomically at %s: mixed atomic/plain access races",
						qualName(obj), pass.Fset.Position(at.Pos()))
					return true
				}
				if v, ok := obj.(*types.Var); ok && v.IsField() && v.Pkg() != nil && v.Pkg() != pass.Pkg {
					if pos, ok := imported[v.Pkg().Path()+"."+qualName(obj)]; ok {
						pass.Reportf(n.Pos(), "plain access of %s.%s, which %s accesses atomically at %s: mixed atomic/plain access races",
							v.Pkg().Path(), qualName(obj), v.Pkg().Path(), pos)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call is a top-level sync/atomic
// function (AddUint64, LoadInt32, CompareAndSwapPointer, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// targetVar resolves the expression under an & to the variable object
// it addresses: `x.field` to the field, `pkgVar` to the var. The
// returned ident is the one naming the variable, for sanctioning.
func targetVar(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v, e.Sel
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v, e
		}
	case *ast.IndexExpr:
		// &arr[i]: per-element atomics (latency buckets) — track the
		// backing field/var, all elements treated as one.
		return targetVar(info, e.X)
	}
	return nil, nil
}

// trackable limits checking to struct fields and package-level vars;
// locals and parameters stay exempt.
func trackable(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// qualName names a variable for facts and messages: "Struct.field" for
// fields (via the field's declaring struct when named), bare name for
// package vars.
func qualName(obj types.Object) string {
	v := obj.(*types.Var)
	if !v.IsField() {
		return v.Name()
	}
	// Find the named struct declaring the field, for a stable key.
	if v.Pkg() != nil {
		scope := v.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return fmt.Sprintf("%s.%s", name, v.Name())
				}
			}
		}
	}
	return v.Name()
}

// hasImportedFacts reports whether any dependency exported an atomicmix
// fact (pass 2 must still run to catch cross-package plain access even
// when this package has no atomic calls of its own).
func hasImportedFacts(pass *dmcana.Pass) bool {
	for _, dep := range pass.Pkg.Imports() {
		if _, ok := pass.ImportFact(dep.Path()); ok {
			return true
		}
	}
	return false
}

// Package b reads package a's fields; a's atomic accesses arrive only
// through the exported fact.
package b

import "a"

func Bad(s *a.Stats) uint64 {
	return s.Total // want `plain access of a.Stats.Total`
}

func Good(s *a.Stats) {
	s.Add()
}

package a

import "sync/atomic"

type Counter struct {
	hits uint64
	name string
}

// Stats is exported so package b exercises the cross-package fact.
type Stats struct {
	Total uint64
}

var global uint64

func (c *Counter) Incr() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counter) Read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *Counter) Bad() uint64 {
	return c.hits // want `plain access of Counter.hits`
}

func (c *Counter) BadWrite() {
	c.hits = 0 // want `plain access of Counter.hits`
}

// GoodName: untouched-by-atomics fields stay unrestricted.
func (c *Counter) GoodName() string {
	return c.name
}

// GoodLiteral: composite-literal zeroing happens before sharing.
func GoodLiteral() *Counter {
	return &Counter{hits: 0, name: "fresh"}
}

func (s *Stats) Add() {
	atomic.AddUint64(&s.Total, 1)
}

func BumpGlobal() {
	atomic.AddUint64(&global, 1)
}

func BadGlobal() uint64 {
	return global // want `plain access of global`
}

// GoodLocal: stack-locals are exempt; reading after the concurrent
// phase ends is a common, safe test idiom.
func GoodLocal() uint64 {
	var local uint64
	atomic.AddUint64(&local, 1)
	return local
}

type buckets struct {
	counts [8]uint64
}

func (b *buckets) Observe(i int) {
	atomic.AddUint64(&b.counts[i], 1)
}

func (b *buckets) Bad(i int) uint64 {
	return b.counts[i] // want `plain access of buckets.counts`
}

package atomicmix_test

import (
	"testing"

	"dmc/internal/analysis/anatest"
	"dmc/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	anatest.Run(t, "testdata", atomicmix.Analyzer, "a", "b")
}

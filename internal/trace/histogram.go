// Package trace provides a compact streaming latency histogram used by
// the transport to report delivery-latency percentiles without retaining
// per-message samples.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates durations into geometrically spaced buckets
// (HDR-style): ~3.9 % relative resolution over [1µs, ~7min] in a few KB.
// The zero value is ready to use.
type Histogram struct {
	counts [bucketCount]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	bucketCount = 512
	// bucketBase is the smallest tracked duration.
	bucketBase = time.Microsecond
	// bucketGrowth is the geometric spacing between bucket boundaries:
	// 1.039^511 · 1µs ≈ 7 minutes of range at ≈3.9 % resolution.
	bucketGrowth = 1.039
)

var bucketBounds = func() [bucketCount]time.Duration {
	var b [bucketCount]time.Duration
	v := float64(bucketBase)
	for i := range b {
		b[i] = time.Duration(v)
		v *= bucketGrowth
	}
	return b
}()

// bucketFor returns the index of the first bucket whose bound is ≥ d;
// durations beyond the range land in the last bucket.
func bucketFor(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	idx := int(math.Log(float64(d)/float64(bucketBase)) / math.Log(bucketGrowth))
	if idx < 0 {
		idx = 0
	}
	if idx >= bucketCount {
		return bucketCount - 1
	}
	for idx < bucketCount-1 && bucketBounds[idx] < d {
		idx++
	}
	return idx
}

// Observe adds one duration (negatives clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.total++
	h.sum += d
	h.counts[bucketFor(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact average of all observations.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min and Max return the exact extremes.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the approximate q-quantile (q in [0,1]); resolution is
// the bucket width (±2.4 %). Out-of-range q values are clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == bucketCount-1 {
				// The overflow bucket's bound understates; report the
				// exact maximum.
				return h.max
			}
			// Clamp bucket bound by the exact extremes for tight tails.
			v := bucketBounds[i]
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantiles formats the classic latency line (p50/p90/p99/max).
func (h *Histogram) Quantiles() string {
	if h.total == 0 {
		return "no samples"
	}
	var b strings.Builder
	for _, q := range []struct {
		label string
		q     float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		fmt.Fprintf(&b, "%s=%v ", q.label, h.Quantile(q.q).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "max=%v n=%d", h.max.Round(time.Microsecond), h.total)
	return b.String()
}

// Buckets returns the non-empty (upper bound, count) pairs, for export.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{UpperBound: bucketBounds[i], Count: c})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].UpperBound < out[b].UpperBound })
	return out
}

// Bucket is one exported histogram cell.
type Bucket struct {
	UpperBound time.Duration
	Count      uint64
}

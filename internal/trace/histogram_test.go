package trace

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram not empty")
	}
	if h.Quantiles() != "no samples" {
		t.Errorf("Quantiles = %q", h.Quantiles())
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; (got - want).Abs() > time.Microsecond {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Median within bucket resolution (±2.5%).
	med := h.Quantile(0.5)
	if med < 48*time.Millisecond || med > 53*time.Millisecond {
		t.Errorf("p50 = %v, want ≈50ms", med)
	}
	if h.Quantile(1.0) != 100*time.Millisecond {
		t.Errorf("p100 = %v", h.Quantile(1.0))
	}
	if !strings.Contains(h.Quantiles(), "p99") {
		t.Errorf("Quantiles = %q", h.Quantiles())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewPCG(1, 2))
	var exact []time.Duration
	for i := 0; i < 50000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(20*time.Millisecond))
		h.Observe(d)
		exact = append(exact, d)
	}
	sortDurations(exact)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := exact[int(q*float64(len(exact)-1))]
		rel := float64(got-want) / float64(want)
		if rel < -0.08 || rel > 0.08 { // bucket resolution is ≈3.9 %
			t.Errorf("q=%v: got %v, want ≈%v (rel %v)", q, got, want, rel)
		}
	}
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to 0
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(24 * time.Hour) // beyond last bucket: clamped to top cell
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Quantile(1.0) != 24*time.Hour {
		t.Errorf("p100 = %v (exact max clamp)", h.Quantile(1.0))
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("negative q should clamp")
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10 * time.Millisecond)
		b.Observe(30 * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged count %d", a.Count())
	}
	if got, want := a.Mean(), 20*time.Millisecond; (got - want).Abs() > time.Microsecond {
		t.Errorf("merged mean %v", got)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Error("empty merge changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 200 || empty.Min() != 10*time.Millisecond {
		t.Error("merge into empty wrong")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	buckets := h.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	if buckets[0].Count != 2 || buckets[1].Count != 1 {
		t.Errorf("bucket counts wrong: %v", buckets)
	}
	if buckets[0].UpperBound >= buckets[1].UpperBound {
		t.Error("buckets unsorted")
	}
}

// TestQuickQuantileMonotone: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.IntN(int(time.Second))))
	}
	f := func(qa, qb float64) bool {
		qa = clamp01f(qa)
		qb = clamp01f(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp01f(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/lp"
)

// Fig4Point is one Figure 4 position: the mean wall-clock time to solve a
// randomly characterized multipath problem of the given size.
type Fig4Point struct {
	Paths         int
	Transmissions int
	MeanSolve     time.Duration
	Variables     int
}

// Figure4Config sizes the solver-timing sweep.
type Figure4Config struct {
	// Runs per point; 0 means the paper's 100.
	Runs int
	Seed uint64
	// MaxPaths bounds the sweep; 0 means the paper's 10.
	MaxPaths int
	// Parallel fans the grid points across GOMAXPROCS workers. Off by
	// default: Figure 4's artifact IS the per-solve wall time, and
	// concurrent neighbors inflate it (memory bandwidth, clock-down) on
	// loaded multi-core hosts. Turn it on when only the relative n/m
	// scaling shape matters and wall-clock budget does.
	Parallel bool
}

func (c Figure4Config) runs() int {
	if c.Runs <= 0 {
		return 100
	}
	return c.Runs
}

func (c Figure4Config) maxPaths() int {
	if c.MaxPaths <= 0 {
		return 10
	}
	return c.MaxPaths
}

// RandomNetwork draws a random but valid deterministic network with the
// given path count, mirroring Figure 4's "problems of different sizes".
func RandomNetwork(rng *rand.Rand, paths, transmissions int) *core.Network {
	ps := make([]core.Path, paths)
	var total float64
	for i := range ps {
		bw := (10 + rng.Float64()*90) * core.Mbps
		total += bw
		ps[i] = core.Path{
			Bandwidth: bw,
			Delay:     time.Duration(50+rng.IntN(450)) * time.Millisecond,
			Loss:      rng.Float64() * 0.3,
			Cost:      rng.Float64(),
		}
	}
	n := core.NewNetwork(0.8*total, time.Second, ps...)
	n.Transmissions = transmissions
	n.CostBound = total // loose but finite: keeps the cost row in the LP
	return n
}

// Figure4 measures mean solve times for n ∈ {2…MaxPaths} paths and
// m ∈ {2,3} transmissions (the paper's axes; blackhole excluded from the
// path count). Each run draws a fresh random instance with a reusable
// per-point solver. Timing stays sequential unless cfg.Parallel asks
// for the GOMAXPROCS fan-out (see Figure4Config.Parallel).
func Figure4(cfg Figure4Config) ([]Fig4Point, error) {
	sizes := cfg.maxPaths() - 1
	out := make([]Fig4Point, 2*sizes)
	forEach := func(n int, fn func(i int) error) error {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if cfg.Parallel {
		forEach = conc.ForEach
	}
	err := forEach(len(out), func(i int) error {
		m := 2 + i/sizes
		n := 2 + i%sizes
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n*100+m)))
		solver := core.NewSolver()
		var total time.Duration
		vars := 0
		for run := 0; run < cfg.runs(); run++ {
			net := RandomNetwork(rng, n, m)
			start := time.Now()
			sol, err := solver.SolveQuality(net)
			if err != nil {
				return fmt.Errorf("experiments: figure 4 n=%d m=%d: %w", n, m, err)
			}
			total += time.Since(start)
			vars = len(sol.X)
		}
		out[i] = Fig4Point{
			Paths:         n,
			Transmissions: m,
			MeanSolve:     total / time.Duration(cfg.runs()),
			Variables:     vars,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFigure4 renders the timing sweep.
func RenderFigure4(points []Fig4Point) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprint(p.Paths),
			fmt.Sprint(p.Transmissions),
			fmt.Sprint(p.Variables),
			fmt.Sprint(p.MeanSolve),
		})
	}
	return RenderTable([]string{"paths", "transmissions", "variables", "mean solve"}, rows)
}

// SolverAblationRow compares the float and exact solvers on one instance
// size.
type SolverAblationRow struct {
	Paths      int
	FloatTime  time.Duration
	ExactTime  time.Duration
	MaxQualGap float64
}

// SolverAblation times the float simplex against the exact rational
// simplex (the CGAL stand-in) on random instances, verifying agreement.
func SolverAblation(maxPaths, runs int, seed uint64) ([]SolverAblationRow, error) {
	if maxPaths <= 0 {
		maxPaths = 5
	}
	if runs <= 0 {
		runs = 10
	}
	var out []SolverAblationRow
	solver := core.NewSolver()
	for n := 2; n <= maxPaths; n++ {
		rng := rand.New(rand.NewPCG(seed, uint64(n)))
		row := SolverAblationRow{Paths: n}
		for run := 0; run < runs; run++ {
			net := RandomNetwork(rng, n, 2)
			start := time.Now()
			fsol, err := solver.SolveQuality(net)
			if err != nil {
				return nil, err
			}
			row.FloatTime += time.Since(start)

			enet, err := core.ExactFromFloat(net)
			if err != nil {
				return nil, err
			}
			start = time.Now()
			esol, err := core.SolveQualityExact(enet)
			if err != nil {
				return nil, err
			}
			row.ExactTime += time.Since(start)

			eq, _ := esol.Quality.Float64()
			if gap := abs(fsol.Quality - eq); gap > row.MaxQualGap {
				row.MaxQualGap = gap
			}
		}
		row.FloatTime /= time.Duration(runs)
		row.ExactTime /= time.Duration(runs)
		out = append(out, row)
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderSolverAblation renders the comparison.
func RenderSolverAblation(rows []SolverAblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Paths),
			fmt.Sprint(r.FloatTime),
			fmt.Sprint(r.ExactTime),
			fmt.Sprintf("%.2e", r.MaxQualGap),
		})
	}
	return RenderTable([]string{"paths", "float simplex", "exact simplex", "max quality gap"}, out)
}

// LPBuildOnly builds (without solving) the Figure 4 LP, for isolating
// construction cost in benchmarks.
func LPBuildOnly(rng *rand.Rand, paths, transmissions int) (*lp.Problem, error) {
	return core.BuildLP(RandomNetwork(rng, paths, transmissions))
}

// ExactTableIVInstance exposes a canonical exact instance for benchmarks.
func ExactTableIVInstance() *core.ExactNetwork {
	return TableIIIExact(90, 800*time.Millisecond)
}

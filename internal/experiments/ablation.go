package experiments

import (
	"fmt"
	"time"

	"dmc/internal/core"
	"dmc/internal/netsim"
	"dmc/internal/proto"
	"dmc/internal/sched"
)

// SchedulerAblationRow reports one selector's outcome on the Experiment 1
// scenario (λ = 90 Mbps, δ = 800 ms, theory Q = 14/15 ≈ 93.33 %).
type SchedulerAblationRow struct {
	Selector string
	Quality  float64
	// Duplicates and Retransmissions expose secondary effects of bursty
	// schedules.
	Duplicates      int
	Retransmissions int
}

// SchedulerAblation compares Algorithm 1 against the weighted-random and
// round-robin baselines under identical network randomness.
func SchedulerAblation(messages int, seed uint64) ([]SchedulerAblationRow, error) {
	if messages <= 0 {
		messages = FullMessageCount
	}
	n := TableIIINetwork(90, 800*time.Millisecond)
	solver := borrowSolver()
	sol, err := solver.SolveQuality(n)
	returnSolver(solver)
	if err != nil {
		return nil, err
	}
	to, err := TrueTimeouts()
	if err != nil {
		return nil, err
	}

	type mkSel func(sim *netsim.Simulator) (sched.Selector, error)
	cases := []struct {
		name string
		mk   mkSel
	}{
		{"deficit (Algorithm 1)", func(*netsim.Simulator) (sched.Selector, error) {
			return sched.NewDeficit(sol.X)
		}},
		{"weighted-random", func(sim *netsim.Simulator) (sched.Selector, error) {
			return sched.NewWeightedRandom(sol.X, sim.RNG("ablation/selector"))
		}},
		{"round-robin", func(*netsim.Simulator) (sched.Selector, error) {
			return sched.NewRoundRobin(sol.X, 0)
		}},
	}

	var out []SchedulerAblationRow
	for _, tc := range cases {
		sim := netsim.NewSimulator(seed)
		sel, err := tc.mk(sim)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler ablation %s: %w", tc.name, err)
		}
		res, err := proto.Run(sim, proto.Config{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    TrueLinks(),
			Selector:     sel,
			MessageCount: messages,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler ablation %s: %w", tc.name, err)
		}
		out = append(out, SchedulerAblationRow{
			Selector:        tc.name,
			Quality:         res.Quality(),
			Duplicates:      res.Duplicates,
			Retransmissions: res.Retransmissions,
		})
	}
	return out, nil
}

// RenderSchedulerAblation renders the comparison.
func RenderSchedulerAblation(rows []SchedulerAblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Selector,
			fmt.Sprintf("%.2f%%", r.Quality*100),
			fmt.Sprint(r.Retransmissions),
			fmt.Sprint(r.Duplicates),
		})
	}
	return RenderTable([]string{"selector", "quality", "retransmissions", "duplicates"}, out)
}

// AckAblationRow reports the §VIII-C acknowledgment-scheme comparison
// under a lossy acknowledgment channel.
type AckAblationRow struct {
	Scheme     string
	Quality    float64
	Duplicates int
}

// AckAblation runs the single-lossy-path scenario with plain per-packet
// acks vs vector acks over an acknowledgment channel with the given loss.
func AckAblation(messages int, ackLoss float64, seed uint64) ([]AckAblationRow, error) {
	if messages <= 0 {
		messages = 20_000
	}
	n := core.NewNetwork(2*core.Mbps, 500*time.Millisecond,
		core.Path{Name: "a", Bandwidth: 10 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0.2})
	solver := borrowSolver()
	sol, err := solver.SolveQuality(n)
	returnSolver(solver)
	if err != nil {
		return nil, err
	}
	to, err := core.DeterministicTimeouts(n, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	ack := proto.LinksFromNetwork(n, QueueLimit)[0]
	ack.Name = "ack"
	ack.Loss = ackLoss

	var out []AckAblationRow
	for _, tc := range []struct {
		name   string
		window int
	}{
		{"plain acks", 0},
		{"vector acks (64)", 64},
	} {
		sim := netsim.NewSimulator(seed)
		res, err := proto.Run(sim, proto.Config{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    proto.LinksFromNetwork(n, QueueLimit),
			AckLink:      &ack,
			AckWindow:    tc.window,
			MessageCount: messages,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ack ablation %s: %w", tc.name, err)
		}
		out = append(out, AckAblationRow{Scheme: tc.name, Quality: res.Quality(), Duplicates: res.Duplicates})
	}
	return out, nil
}

// RenderAckAblation renders the acknowledgment-scheme comparison.
func RenderAckAblation(rows []AckAblationRow, ackLoss float64) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme,
			fmt.Sprintf("%.2f%%", r.Quality*100),
			fmt.Sprint(r.Duplicates),
		})
	}
	return fmt.Sprintf("ack loss %.0f%%\n%s", ackLoss*100, RenderTable([]string{"scheme", "quality", "duplicates"}, out))
}

package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Fig2CSV renders a Figure 2 series as CSV (one row per x position).
func Fig2CSV(points []Fig2Point, xLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,multipath_sim,multipath_theory,path1_theory,path2_theory\n", csvField(xLabel))
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%.6f,%.6f,%.6f,%.6f\n",
			p.X, p.MultipathSim, p.MultipathTheory, p.Path1Theory, p.Path2Theory)
	}
	return b.String()
}

// Fig3CSV renders a Figure 3 sensitivity sweep as CSV.
func Fig3CSV(param Fig3Param, points []Fig3Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s_error,quality_path1_err,quality_path2_err\n", param)
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f,%.6f,%.6f\n", p.Error, p.QualityPath1, p.QualityPath2)
	}
	return b.String()
}

// Fig4CSV renders the solver-timing sweep as CSV (times in microseconds).
func Fig4CSV(points []Fig4Point) string {
	var b strings.Builder
	b.WriteString("paths,transmissions,variables,mean_solve_us\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%d,%d,%.3f\n",
			p.Paths, p.Transmissions, p.Variables, float64(p.MeanSolve.Nanoseconds())/1e3)
	}
	return b.String()
}

// ScalabilityCSV renders the scalability sweep as CSV (times in
// microseconds; combinations -1 means beyond the dense limit).
func ScalabilityCSV(points []ScalPoint) string {
	var b strings.Builder
	b.WriteString("paths,transmissions,combinations,dispatch,columns,cg_iterations,mean_solve_us\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%d,%d,%s,%d,%d,%.3f\n",
			p.Paths, p.Transmissions, p.Combinations, p.Dispatch, p.Columns,
			p.CGIterations, float64(p.MeanSolve.Nanoseconds())/1e3)
	}
	return b.String()
}

// ResolveCSV renders the incremental re-solve drift sweep as CSV (times
// in microseconds).
func ResolveCSV(points []ResolvePoint) string {
	var b strings.Builder
	b.WriteString("step,dispatch,warm_solve_us,cold_solve_us,speedup,phase1_skipped,pool_hits,cg_iterations,quality_gap\n")
	for _, p := range points {
		speedup := 0.0
		if p.WarmSolve > 0 {
			speedup = float64(p.ColdSolve) / float64(p.WarmSolve)
		}
		fmt.Fprintf(&b, "%d,%s,%.3f,%.3f,%.2f,%t,%d,%d,%.3e\n",
			p.Step, p.Dispatch,
			float64(p.WarmSolve.Nanoseconds())/1e3, float64(p.ColdSolve.Nanoseconds())/1e3,
			speedup, p.PhaseISkipped, p.PoolHits, p.CGIterations, p.QualityGap)
	}
	return b.String()
}

// Table4CSV renders Table IV rows as CSV with exact fractions.
func Table4CSV(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("scenario,quality_exact,quality_pct,strategy\n")
	for _, r := range rows {
		label := fmt.Sprintf("lambda=%dMbps", r.RateMbps)
		if r.RateMbps == 0 {
			label = fmt.Sprintf("delta=%s", r.Lifetime)
		}
		var strat []string
		for _, s := range r.Shares {
			strat = append(strat, fmt.Sprintf("%s=%s", s.Combo, s.Fraction.RatString()))
		}
		fmt.Fprintf(&b, "%s,%s,%.4f,%s\n",
			label, r.Quality.RatString(), r.QualityPercent(), csvField(strings.Join(strat, " ")))
	}
	return b.String()
}

// csvField quotes a field when needed.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSVFile writes content into dir/name, creating dir if needed.
func WriteCSVFile(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	return nil
}

package experiments

import (
	"fmt"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/proto"
)

// Fig3Param selects which estimated characteristic the sensitivity sweep
// perturbs.
type Fig3Param int

const (
	// Fig3Bandwidth sweeps relative bandwidth estimation error (top plot).
	Fig3Bandwidth Fig3Param = iota + 1
	// Fig3Delay sweeps relative delay estimation error (middle plot).
	Fig3Delay
	// Fig3Loss sweeps absolute loss estimation error (bottom plot).
	Fig3Loss
)

// String names the parameter.
func (p Fig3Param) String() string {
	switch p {
	case Fig3Bandwidth:
		return "bandwidth"
	case Fig3Delay:
		return "delay"
	case Fig3Loss:
		return "loss"
	default:
		return fmt.Sprintf("Fig3Param(%d)", int(p))
	}
}

// Fig3Point is one error position with the measured quality when the
// error afflicts path 1 and when it afflicts path 2.
type Fig3Point struct {
	// Error is relative (−0.5…+0.5) for bandwidth/delay, absolute
	// (−0.2…+1.0) for loss.
	Error        float64
	QualityPath1 float64
	QualityPath2 float64
}

// Figure3Config sizes the sensitivity sweep. The scenario is Experiment
// 3's: Table III network, λ = 90 Mbps, δ = 800 ms.
type Figure3Config struct {
	// Messages per simulated point; 0 means FullMessageCount.
	Messages int
	Seed     uint64
}

func (c Figure3Config) messages() int {
	if c.Messages <= 0 {
		return FullMessageCount
	}
	return c.Messages
}

// Figure3 sweeps estimation error for one parameter across both paths:
// the LP solves on the erroneous estimate while the simulation runs on
// the truth, reproducing the corresponding Figure 3 plot.
func Figure3(param Fig3Param, cfg Figure3Config) ([]Fig3Point, error) {
	var errs []float64
	switch param {
	case Fig3Bandwidth, Fig3Delay:
		for e := -0.5; e <= 0.501; e += 0.1 {
			errs = append(errs, e)
		}
	case Fig3Loss:
		for e := -0.2; e <= 1.001; e += 0.1 {
			errs = append(errs, e)
		}
	default:
		return nil, fmt.Errorf("experiments: unknown sensitivity parameter %v", param)
	}

	// One task per (error position, afflicted path): seeds are derived
	// per point, so the sweep fans across GOMAXPROCS workers. Error is
	// filled up front — the two tasks of a pair share the slot and must
	// each write only their own field.
	out := make([]Fig3Point, len(errs))
	for i, e := range errs {
		out[i].Error = e
	}
	err := conc.ForEach(2*len(errs), func(i int) error {
		e := errs[i/2]
		path := i % 2
		solver := borrowSolver()
		q, err := figure3Point(solver, param, path, e, cfg)
		returnSolver(solver)
		if err != nil {
			return fmt.Errorf("experiments: figure 3 %v path %d err %v: %w", param, path+1, e, err)
		}
		if path == 0 {
			out[i/2].QualityPath1 = q
		} else {
			out[i/2].QualityPath2 = q
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// figure3Point builds the erroneous estimate, solves on the caller's
// reusable solver, and simulates against the truth.
func figure3Point(solver *core.Solver, param Fig3Param, path int, e float64, cfg Figure3Config) (float64, error) {
	est := TableIIINetwork(90, 800*time.Millisecond)
	switch param {
	case Fig3Bandwidth:
		est.Paths[path].Bandwidth *= 1 + e
	case Fig3Delay:
		est.Paths[path].Delay = time.Duration(float64(est.Paths[path].Delay) * (1 + e))
	case Fig3Loss:
		loss := est.Paths[path].Loss + e
		if loss < 0 {
			loss = 0
		}
		if loss > 1 {
			loss = 1
		}
		est.Paths[path].Loss = loss
	}
	sol, err := solver.SolveQuality(est)
	if err != nil {
		return 0, err
	}
	to, err := TrueTimeouts()
	if err != nil {
		return 0, err
	}
	seed := cfg.Seed + uint64(param)*1000003 + uint64(path)*10007 + uint64((e+2)*100)
	return simulateQuality(proto.Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    TrueLinks(),
		MessageCount: cfg.messages(),
	}, seed)
}

// RenderFigure3 renders one sensitivity plot as a table.
func RenderFigure3(param Fig3Param, points []Fig3Point) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%+.1f", p.Error),
			fmt.Sprintf("%.2f%%", p.QualityPath1*100),
			fmt.Sprintf("%.2f%%", p.QualityPath2*100),
		})
	}
	return RenderTable([]string{param.String() + " error", "quality (path1 err)", "quality (path2 err)"}, rows)
}

package experiments

import (
	"fmt"
	"math/big"
	"sort"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
)

// Table4Row is one row of the Table IV reproduction: the scenario
// parameter, the exact optimal strategy, and the exact quality.
type Table4Row struct {
	// RateMbps is λ for the top table (0 for lifetime rows).
	RateMbps int64
	// Lifetime is δ for the bottom table (0 for rate rows).
	Lifetime time.Duration
	// Shares are the nonzero x entries, descending.
	Shares []core.ExactComboShare
	// Quality is the exact optimal Q.
	Quality *big.Rat
}

// QualityPercent renders the quality as a percentage.
func (r Table4Row) QualityPercent() float64 {
	f, _ := new(big.Rat).Mul(r.Quality, big.NewRat(100, 1)).Float64()
	return f
}

// Table4Top reproduces the top half of Table IV: δ = 800 ms, λ from 10 to
// 150 Mbps in 10 Mbps steps, solved exactly, one row per worker slot.
func Table4Top() ([]Table4Row, error) {
	rows := make([]Table4Row, 15)
	err := conc.ForEach(len(rows), func(i int) error {
		rate := int64(10 + 10*i)
		sol, err := core.SolveQualityExact(TableIIIExact(rate, 800*time.Millisecond))
		if err != nil {
			return fmt.Errorf("experiments: table 4 λ=%d: %w", rate, err)
		}
		rows[i] = Table4Row{RateMbps: rate, Shares: sol.ActiveCombos(), Quality: sol.Quality}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table4Bottom reproduces the bottom half of Table IV: λ = 90 Mbps, δ from
// 150 ms to 1200 ms in 50 ms steps, solved exactly in parallel.
func Table4Bottom() ([]Table4Row, error) {
	rows := make([]Table4Row, 22)
	err := conc.ForEach(len(rows), func(i int) error {
		δ := time.Duration(150+50*i) * time.Millisecond
		sol, err := core.SolveQualityExact(TableIIIExact(90, δ))
		if err != nil {
			return fmt.Errorf("experiments: table 4 δ=%v: %w", δ, err)
		}
		rows[i] = Table4Row{Lifetime: δ, Shares: sol.ActiveCombos(), Quality: sol.Quality}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 renders rows in the paper's layout: one column per
// combination that appears anywhere, plus the quality.
func RenderTable4(rows []Table4Row) string {
	// Collect the union of combinations.
	comboKey := func(c core.Combo) string { return c.String() }
	seen := map[string]core.Combo{}
	for _, r := range rows {
		for _, s := range r.Shares {
			seen[comboKey(s.Combo)] = s.Combo
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	headers := []string{"scenario"}
	headers = append(headers, keys...)
	headers = append(headers, "quality Q")

	var out [][]string
	for _, r := range rows {
		label := ""
		if r.RateMbps > 0 {
			label = fmt.Sprintf("λ=%d Mbps", r.RateMbps)
		} else {
			label = fmt.Sprintf("δ=%v", r.Lifetime)
		}
		row := []string{label}
		byKey := map[string]*big.Rat{}
		for _, s := range r.Shares {
			byKey[comboKey(s.Combo)] = s.Fraction
		}
		for _, k := range keys {
			if f, ok := byKey[k]; ok {
				row = append(row, f.RatString())
			} else {
				row = append(row, "0")
			}
		}
		row = append(row, fmt.Sprintf("%s (%.1f%%)", r.Quality.RatString(), r.QualityPercent()))
		out = append(out, row)
	}
	return RenderTable(headers, out)
}

package experiments

import (
	"strings"
	"testing"

	"dmc/internal/core"
)

// TestScalabilitySweep runs a reduced grid spanning all three dispatch
// paths and checks the CG results agree with dense enumeration where
// dense is tractable.
func TestScalabilitySweep(t *testing.T) {
	pts, err := Scalability(ScalabilityConfig{
		Paths:         []int{10, 25},
		Transmissions: []int{3, 5},
		Runs:          2,
		Seed:          7,
		VerifyDense:   true,
		Parallel:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	sawCG := false
	for _, p := range pts {
		if p.Quality <= 0 || p.Quality > 1 {
			t.Errorf("n=%d m=%d: quality %v outside (0,1]", p.Paths, p.Transmissions, p.Quality)
		}
		if p.Dispatch == core.DispatchCG {
			sawCG = true
			if p.CGIterations <= 0 || p.Columns <= 0 {
				t.Errorf("n=%d m=%d: CG ran with %d iterations, %d columns",
					p.Paths, p.Transmissions, p.CGIterations, p.Columns)
			}
		}
		if p.DenseAgrees > 1e-6 {
			t.Errorf("n=%d m=%d: scalable solve differs from dense by %v",
				p.Paths, p.Transmissions, p.DenseAgrees)
		}
	}
	if !sawCG {
		t.Error("no grid point dispatched to column generation")
	}

	text := RenderScalability(pts)
	for _, want := range []string{"dispatch", "cg", "> 2^22"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

// TestScalabilitySweepMinCost runs the §VI-A variant of the sweep on a
// reduced grid: every point must meet the quality floor, dispatch
// through CG where dense cannot reach, and agree with dense min-cost
// solves (relative cost gap) where they are tractable.
func TestScalabilitySweepMinCost(t *testing.T) {
	pts, err := Scalability(ScalabilityConfig{
		Paths:         []int{10, 25},
		Transmissions: []int{3, 5},
		Runs:          2,
		Seed:          7,
		VerifyDense:   true,
		Parallel:      true,
		MinCost:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawCG := false
	for _, p := range pts {
		if p.Quality < 0.5-1e-6 {
			t.Errorf("n=%d m=%d: quality %v below the 0.5 floor", p.Paths, p.Transmissions, p.Quality)
		}
		if p.Dispatch == core.DispatchCG {
			sawCG = true
		}
		if p.DenseAgrees > 1e-6 {
			t.Errorf("n=%d m=%d: min-cost solve differs from dense by %v (relative)",
				p.Paths, p.Transmissions, p.DenseAgrees)
		}
	}
	if !sawCG {
		t.Error("no min-cost grid point dispatched to column generation")
	}
}

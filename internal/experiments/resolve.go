package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dmc/internal/core"
)

// ResolvePoint is one step of the incremental re-solve drift sweep: the
// same network shape with λ/µ/loss/delay drifted, solved warm
// (core.Solver.Resolve, persistent state) and cold (a fresh solve of the
// same instance), with the agreement gap between the two optima.
type ResolvePoint struct {
	Step int
	// WarmSolve and ColdSolve are the wall-clock times of the
	// incremental and from-scratch solves of the identical instance.
	WarmSolve time.Duration
	ColdSolve time.Duration
	// QualityGap is |Q_warm − Q_cold| (must sit within solver tolerance).
	QualityGap float64
	Dispatch   core.Dispatch
	// PhaseISkipped reports the warm solve re-installed the previous LP
	// basis; PoolHits counts repriced CG pool columns.
	PhaseISkipped bool
	PoolHits      int
	CGIterations  int
}

// ResolveConfig sizes the drift sweep. The default shape is the
// ROADMAP's CG-scale target: 40 paths × 4 transmissions, a 2.8M-column
// combination space.
type ResolveConfig struct {
	// Paths and Transmissions fix the network shape; zero means 40 × 4.
	Paths         int
	Transmissions int
	// Steps is the trajectory length; zero means 20.
	Steps int
	// Drift is the maximum relative per-step drift of every estimated
	// characteristic (λ, µ, loss, delay, bandwidth, cost); zero means
	// 0.1 — the §VIII-A "solve only when estimates vary significantly"
	// threshold.
	Drift float64
	Seed  uint64
}

func (c ResolveConfig) paths() int {
	if c.Paths <= 0 {
		return 40
	}
	return c.Paths
}

func (c ResolveConfig) transmissions() int {
	if c.Transmissions <= 0 {
		return 4
	}
	return c.Transmissions
}

func (c ResolveConfig) steps() int {
	if c.Steps <= 0 {
		return 20
	}
	return c.Steps
}

func (c ResolveConfig) drift() float64 {
	if c.Drift <= 0 {
		return 0.1
	}
	return c.Drift
}

// DriftNetwork returns a copy of n with every estimated characteristic
// perturbed by up to ±maxRel relative (losses clamped to [0, 1]); the
// shape is unchanged, which is exactly the regime the incremental
// re-solve engine targets.
func DriftNetwork(rng *rand.Rand, n *core.Network, maxRel float64) *core.Network {
	rel := func() float64 { return 1 + (rng.Float64()*2-1)*maxRel }
	cp := *n
	cp.Paths = append([]core.Path(nil), n.Paths...)
	cp.Rate *= rel()
	if cp.CostBound > 0 && cp.CostBound < 1e308 {
		cp.CostBound *= rel()
	}
	for i := range cp.Paths {
		p := &cp.Paths[i]
		p.Bandwidth *= rel()
		p.Delay = time.Duration(float64(p.Delay) * rel())
		p.Loss *= rel()
		if p.Loss > 1 {
			p.Loss = 1
		}
		p.Cost *= rel()
	}
	return &cp
}

// ResolveSweep replays one drift trajectory through a warm solver and a
// cold solver side by side, timing both on every step. The warm solver
// is primed on the base instance (not reported — both solvers start
// cold there); each subsequent step drifts the coefficients and solves
// the identical instance twice.
func ResolveSweep(cfg ResolveConfig) ([]ResolvePoint, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(cfg.paths()*100+cfg.transmissions())))
	base := RandomNetwork(rng, cfg.paths(), cfg.transmissions())

	warm := core.NewSolver()
	cold := core.NewSolver()
	if _, err := warm.Resolve(base); err != nil {
		return nil, fmt.Errorf("experiments: resolve sweep prime: %w", err)
	}

	out := make([]ResolvePoint, cfg.steps())
	net := base
	for step := range out {
		net = DriftNetwork(rng, net, cfg.drift())

		start := time.Now()
		wsol, err := warm.Resolve(net)
		warmTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: resolve sweep step %d (warm): %w", step, err)
		}

		start = time.Now()
		csol, err := cold.SolveQuality(net)
		coldTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: resolve sweep step %d (cold): %w", step, err)
		}

		gap := wsol.Quality - csol.Quality
		if gap < 0 {
			gap = -gap
		}
		out[step] = ResolvePoint{
			Step:          step + 1,
			WarmSolve:     warmTime,
			ColdSolve:     coldTime,
			QualityGap:    gap,
			Dispatch:      wsol.Stats.Dispatch,
			PhaseISkipped: wsol.Stats.PhaseISkipped,
			PoolHits:      wsol.Stats.PoolHits,
			CGIterations:  wsol.Stats.CGIterations,
		}
	}
	return out, nil
}

// RenderResolve renders the drift sweep with a mean-speedup footer.
func RenderResolve(points []ResolvePoint) string {
	rows := make([][]string, 0, len(points))
	var warmTotal, coldTotal time.Duration
	for _, p := range points {
		warmTotal += p.WarmSolve
		coldTotal += p.ColdSolve
		rows = append(rows, []string{
			fmt.Sprint(p.Step),
			string(p.Dispatch),
			fmt.Sprint(p.WarmSolve),
			fmt.Sprint(p.ColdSolve),
			fmt.Sprintf("%.1f×", float64(p.ColdSolve)/float64(max64(p.WarmSolve, 1))),
			fmt.Sprint(p.PhaseISkipped),
			fmt.Sprint(p.PoolHits),
			fmt.Sprintf("%.1e", p.QualityGap),
		})
	}
	table := RenderTable(
		[]string{"step", "dispatch", "warm solve", "cold solve", "speedup", "phase1 skipped", "pool hits", "quality gap"},
		rows)
	if warmTotal > 0 {
		table += fmt.Sprintf("mean speedup: %.1f× (warm total %v, cold total %v)\n",
			float64(coldTotal)/float64(warmTotal), warmTotal.Round(time.Microsecond), coldTotal.Round(time.Microsecond))
	}
	return table
}

func max64(d time.Duration, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}

package experiments

import (
	"fmt"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/proto"
)

// Fig2Point is one x-position of Figure 2 with its four curves:
// simulated multipath, theoretical multipath, and the two single-path
// theoretical baselines.
type Fig2Point struct {
	// X is λ in Mbps (top plot) or δ in milliseconds (bottom plot).
	X float64
	// MultipathSim is the measured quality of the full protocol.
	MultipathSim float64
	// MultipathTheory is the LP optimum.
	MultipathTheory float64
	// Path1Theory and Path2Theory are the single-path LP optima.
	Path1Theory float64
	Path2Theory float64
}

// Figure2Config sizes the simulations.
type Figure2Config struct {
	// Messages per simulated point; 0 means FullMessageCount.
	Messages int
	// Seed drives all randomness.
	Seed uint64
}

func (c Figure2Config) messages() int {
	if c.Messages <= 0 {
		return FullMessageCount
	}
	return c.Messages
}

// figure2Point computes all four curves for one scenario, running every
// LP through the caller's reusable solver (one per sweep point, reused
// across the multipath and single-path solves — the figure4.go pattern).
func figure2Point(solver *core.Solver, n *core.Network, x float64, cfg Figure2Config) (Fig2Point, error) {
	pt := Fig2Point{X: x}

	sol, err := solver.SolveQuality(n)
	if err != nil {
		return pt, err
	}
	pt.MultipathTheory = sol.Quality

	for i := 0; i < 2; i++ {
		si, err := solver.SolveQuality(n.SinglePath(i))
		if err != nil {
			return pt, err
		}
		if i == 0 {
			pt.Path1Theory = si.Quality
		} else {
			pt.Path2Theory = si.Quality
		}
	}

	to, err := TrueTimeouts()
	if err != nil {
		return pt, err
	}
	q, err := simulateQuality(proto.Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    TrueLinks(),
		MessageCount: cfg.messages(),
	}, cfg.Seed+uint64(x*1000))
	if err != nil {
		return pt, err
	}
	pt.MultipathSim = q
	return pt, nil
}

// Figure2Top regenerates the top plot: quality vs λ ∈ {10…150} Mbps at
// δ = 800 ms. Points are independent (per-point seeds), so the sweep
// fans across GOMAXPROCS workers.
func Figure2Top(cfg Figure2Config) ([]Fig2Point, error) {
	out := make([]Fig2Point, 15)
	err := conc.ForEach(len(out), func(i int) error {
		rate := 10.0 + 10*float64(i)
		n := TableIIINetwork(rate, 800*time.Millisecond)
		solver := borrowSolver()
		pt, err := figure2Point(solver, n, rate, cfg)
		returnSolver(solver)
		if err != nil {
			return fmt.Errorf("experiments: figure 2 top λ=%v: %w", rate, err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure2Bottom regenerates the bottom plot: quality vs δ ∈ {100…1150} ms
// at λ = 90 Mbps, fanned across GOMAXPROCS workers.
func Figure2Bottom(cfg Figure2Config) ([]Fig2Point, error) {
	out := make([]Fig2Point, 22)
	err := conc.ForEach(len(out), func(i int) error {
		ms := 100 + 50*i
		δ := time.Duration(ms) * time.Millisecond
		n := TableIIINetwork(90, δ)
		solver := borrowSolver()
		pt, err := figure2Point(solver, n, float64(ms), cfg)
		returnSolver(solver)
		if err != nil {
			return fmt.Errorf("experiments: figure 2 bottom δ=%v: %w", δ, err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFigure2 renders the series as an aligned table (one row per x).
func RenderFigure2(points []Fig2Point, xLabel string) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.2f%%", p.MultipathSim*100),
			fmt.Sprintf("%.2f%%", p.MultipathTheory*100),
			fmt.Sprintf("%.2f%%", p.Path1Theory*100),
			fmt.Sprintf("%.2f%%", p.Path2Theory*100),
		})
	}
	return RenderTable([]string{xLabel, "multipath(sim)", "multipath(theory)", "path1(theory)", "path2(theory)"}, rows)
}

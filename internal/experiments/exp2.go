package experiments

import (
	"fmt"
	"time"

	"dmc/internal/core"
	"dmc/internal/netsim"
	"dmc/internal/proto"
)

// Exp2Result is the Experiment 2 (random delays) reproduction: optimized
// timeouts, the model's predicted quality, and the simulated delivery
// count. Paper reference values: t₁,₂ = 615 ms, t₂,₁ = 252 ms, t₂,₂ =
// 323 ms (on a broad optimum plateau), t₁,₁ undefined; expected quality
// 93.3 %, simulated 93,332 / 100,000.
type Exp2Result struct {
	Timeouts     *core.Timeouts
	ModelQuality float64
	Generated    int
	InTime       int
}

// SimQuality is the measured in-time ratio.
func (r *Exp2Result) SimQuality() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.InTime) / float64(r.Generated)
}

// Experiment2 optimizes the Eq. 34 timeouts for the Table V network,
// solves the §VI-B random-delay model, and validates by simulation.
// messages ≤ 0 selects the paper's 100,000.
func Experiment2(messages int, seed uint64) (*Exp2Result, error) {
	if messages <= 0 {
		messages = FullMessageCount
	}
	n := TableVNetwork()
	to, err := core.OptimalTimeouts(n, core.TimeoutOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: experiment 2 timeouts: %w", err)
	}
	sol, err := core.SolveQualityRandom(n, to)
	if err != nil {
		return nil, fmt.Errorf("experiments: experiment 2 model: %w", err)
	}
	sim := netsim.NewSimulator(seed)
	res, err := proto.Run(sim, proto.Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    TableVTrueLinks(),
		MessageCount: messages,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: experiment 2 simulation: %w", err)
	}
	return &Exp2Result{
		Timeouts:     to,
		ModelQuality: sol.Quality,
		Generated:    res.Generated,
		InTime:       res.DeliveredInTime,
	}, nil
}

// RenderExperiment2 summarizes against the paper's reference values.
func RenderExperiment2(r *Exp2Result) string {
	fmtTimeout := func(i, j int) string {
		if t, ok := r.Timeouts.Get(i, j); ok {
			return fmt.Sprint(t.Round(time.Millisecond))
		}
		return "undefined"
	}
	rows := [][]string{
		{"t_{1,1}", "undefined", fmtTimeout(0, 0)},
		{"t_{1,2}", "615ms", fmtTimeout(0, 1)},
		{"t_{2,1}", "252ms", fmtTimeout(1, 0)},
		{"t_{2,2}", "323ms (plateau)", fmtTimeout(1, 1)},
		{"model quality", "93.3%", fmt.Sprintf("%.2f%%", r.ModelQuality*100)},
		{"simulated", "93332/100000 (93.33%)", fmt.Sprintf("%d/%d (%.2f%%)", r.InTime, r.Generated, r.SimQuality()*100)},
	}
	return RenderTable([]string{"quantity", "paper", "this repo"}, rows)
}

package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
)

// ScalPoint is one position of the scalability sweep: how the solver
// handles a combination space of the given size, and through which
// dispatch path.
type ScalPoint struct {
	Paths         int
	Transmissions int
	// Combinations is the full (n+1)^m space the dense solver would
	// have to materialize (-1 when it exceeds core.DenseLimit).
	Combinations int
	// Dispatch is which solve core ran (dense, dense-pruned, cg).
	Dispatch core.Dispatch
	// Columns is how many columns the master problem actually held.
	Columns int
	// CGIterations counts restricted-master solves (0 for dense paths).
	CGIterations int
	MeanSolve    time.Duration
	Quality      float64
	// DenseAgrees reports |Q_cg − Q_dense| where a verification dense
	// solve was tractable; -1 when it was skipped.
	DenseAgrees float64
}

// ScalabilityConfig sizes the sweep past the paper's Figure 4 axes:
// paths 10→40 and transmissions 3→5, the regime where dense n^m
// enumeration stops being an option.
type ScalabilityConfig struct {
	// Paths lists the path counts; nil means {10, 20, 30, 40}.
	Paths []int
	// Transmissions lists m values; nil means {3, 4, 5}.
	Transmissions []int
	// Runs per point; 0 means 10.
	Runs int
	Seed uint64
	// VerifyDense cross-checks the scalable solve against unpruned dense
	// enumeration wherever the space fits core.DenseLimit.
	VerifyDense bool
	// Parallel fans grid points across GOMAXPROCS workers (off by
	// default: the artifact is the per-solve wall time).
	Parallel bool
	// MinCost switches the sweep to the §VI-A objective: each instance
	// solves SolveMinCost at the MinQuality floor instead of
	// SolveQuality, exercising the min-cost column-generation dispatch
	// at the same scales. The dense cross-check then compares optimal
	// costs (relative gap) rather than qualities.
	MinCost bool
	// MinQuality is the §VI-A quality floor; zero means 0.5.
	MinQuality float64
}

func (c ScalabilityConfig) minQuality() float64 {
	if c.MinQuality <= 0 {
		return 0.5
	}
	return c.MinQuality
}

func (c ScalabilityConfig) paths() []int {
	if len(c.Paths) == 0 {
		return []int{10, 20, 30, 40}
	}
	return c.Paths
}

func (c ScalabilityConfig) transmissions() []int {
	if len(c.Transmissions) == 0 {
		return []int{3, 4, 5}
	}
	return c.Transmissions
}

func (c ScalabilityConfig) runs() int {
	if c.Runs <= 0 {
		return 10
	}
	return c.Runs
}

// Scalability measures mean solve times across the configured grid with
// the automatic dense/pruned/CG dispatch, optionally verifying the
// scalable result against dense enumeration where that is tractable.
func Scalability(cfg ScalabilityConfig) ([]ScalPoint, error) {
	paths, trans := cfg.paths(), cfg.transmissions()
	out := make([]ScalPoint, len(paths)*len(trans))
	forEach := func(n int, fn func(i int) error) error {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if cfg.Parallel {
		forEach = conc.ForEach
	}
	err := forEach(len(out), func(i int) error {
		nPaths := paths[i/len(trans)]
		m := trans[i%len(trans)]
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(nPaths*100+m)))
		solver := core.NewSolver()
		pt := ScalPoint{Paths: nPaths, Transmissions: m, DenseAgrees: -1}
		var total time.Duration
		for run := 0; run < cfg.runs(); run++ {
			net := RandomNetwork(rng, nPaths, m)
			start := time.Now()
			var sol *core.Solution
			var err error
			if cfg.MinCost {
				sol, err = solver.SolveMinCost(net, cfg.minQuality())
			} else {
				sol, err = solver.SolveQuality(net)
			}
			if err != nil {
				return fmt.Errorf("experiments: scalability n=%d m=%d: %w", nPaths, m, err)
			}
			total += time.Since(start)
			pt.Dispatch = sol.Stats.Dispatch
			pt.Columns = sol.Stats.Columns
			pt.CGIterations = sol.Stats.CGIterations
			pt.Quality = sol.Quality

			if cfg.VerifyDense && run == 0 {
				gap, ok, err := verifyAgainstDense(cfg, net, sol)
				if err != nil {
					return fmt.Errorf("experiments: scalability n=%d m=%d dense verification: %w", nPaths, m, err)
				}
				if ok {
					pt.DenseAgrees = gap
				}
			}
		}
		pt.MeanSolve = total / time.Duration(cfg.runs())
		pt.Combinations = denseSpace(nPaths, m)
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// denseSpace returns (n+1)^m, or -1 when it exceeds core.DenseLimit.
func denseSpace(paths, m int) int {
	space := 1
	for i := 0; i < m; i++ {
		if space > core.DenseLimit/(paths+1) {
			return -1
		}
		space *= paths + 1
	}
	return space
}

// verifyDenseLimit caps the combination spaces the sweep cross-checks
// against unpruned dense enumeration: beyond it a dense verification
// solve costs orders of magnitude more than the measurement itself (the
// core differential tests cover agreement exhaustively at small sizes).
const verifyDenseLimit = 1 << 16

// verifyAgainstDense re-solves with unpruned dense enumeration and
// returns the gap to the scalable solve — quality gap for the quality
// sweep, relative cost gap for the min-cost sweep; ok = false when the
// space is too large to check. A dense-solve failure is an error, not a
// silent skip — the sweep's verification column must never mask a
// broken solve as "not checked".
func verifyAgainstDense(cfg ScalabilityConfig, net *core.Network, sol *core.Solution) (float64, bool, error) {
	if space := denseSpace(len(net.Paths), net.Transmissions); space < 0 || space > verifyDenseLimit {
		return 0, false, nil
	}
	dense := core.NewSolver()
	dense.DenseThreshold = core.DenseLimit
	dense.PruneThreshold = -1
	var gap float64
	if cfg.MinCost {
		dsol, err := dense.SolveMinCost(net, cfg.minQuality())
		if err != nil {
			return 0, false, err
		}
		gap = (sol.Cost() - dsol.Cost()) / (1 + dsol.Cost())
	} else {
		dsol, err := dense.SolveQuality(net)
		if err != nil {
			return 0, false, err
		}
		gap = sol.Quality - dsol.Quality
	}
	if gap < 0 {
		gap = -gap
	}
	return gap, true, nil
}

// RenderScalability renders the sweep.
func RenderScalability(points []ScalPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		space := fmt.Sprint(p.Combinations)
		if p.Combinations < 0 {
			space = "> 2^22"
		}
		agrees := "—"
		if p.DenseAgrees >= 0 {
			agrees = fmt.Sprintf("%.1e", p.DenseAgrees)
		}
		rows = append(rows, []string{
			fmt.Sprint(p.Paths),
			fmt.Sprint(p.Transmissions),
			space,
			string(p.Dispatch),
			fmt.Sprint(p.Columns),
			fmt.Sprint(p.CGIterations),
			fmt.Sprint(p.MeanSolve),
			agrees,
		})
	}
	return RenderTable(
		[]string{"paths", "transmissions", "combinations", "dispatch", "columns", "cg iters", "mean solve", "dense gap"},
		rows)
}

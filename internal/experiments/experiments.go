// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) plus the ablations called out in DESIGN.md. Each
// experiment returns structured results; Render* helpers produce
// paper-style text tables. cmd/reproduce drives everything; the root
// bench_test.go exposes one benchmark per table/figure.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/netsim"
	"dmc/internal/proto"
	"dmc/internal/ratlp"
)

// Paper workload constants (§VII-A).
const (
	// FullMessageCount is the paper's 100,000 messages per run.
	FullMessageCount = 100_000
	// QueueLimit is the drop-tail buffer for simulated links (packets).
	QueueLimit = 100
)

// solvers pools reusable core.Solvers for the parallel sweeps: each
// sweep point borrows one for all of its LP solves, so tableau and
// enumeration memory is reused across points (and sweep invocations)
// instead of reallocated per point.
var solvers = sync.Pool{New: func() any { return core.NewSolver() }}

// borrowSolver draws a pooled solver; return it with returnSolver.
func borrowSolver() *core.Solver { return solvers.Get().(*core.Solver) }

func returnSolver(s *core.Solver) { solvers.Put(s) }

// TableIIINetwork returns the two-path Experiment 1/3 network with the
// §VII conservative model delays (450/150 ms).
func TableIIINetwork(rateMbps float64, lifetime time.Duration) *core.Network {
	return core.NewNetwork(rateMbps*core.Mbps, lifetime,
		core.Path{Name: "path1", Bandwidth: 80 * core.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		core.Path{Name: "path2", Bandwidth: 20 * core.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
}

// TableIIIExact is TableIIINetwork with exact rational characteristics
// (loss 1/5 exactly), for CGAL-faithful Table IV solutions.
func TableIIIExact(rateMbps int64, lifetime time.Duration) *core.ExactNetwork {
	return &core.ExactNetwork{
		Rate:     ratlp.Int(rateMbps * 1_000_000),
		Lifetime: lifetime,
		Paths: []core.ExactPath{
			{Name: "path1", Bandwidth: ratlp.Int(80_000_000), Delay: 450 * time.Millisecond, Loss: ratlp.Rat(1, 5)},
			{Name: "path2", Bandwidth: ratlp.Int(20_000_000), Delay: 150 * time.Millisecond, Loss: ratlp.Int(0)},
		},
	}
}

// TrueLinks returns the Experiment 1 ground-truth links: raw propagation
// delays 400/100 ms (the model's 450/150 ms include the queueing
// allowance measured in §VII).
func TrueLinks() []netsim.LinkConfig {
	return []netsim.LinkConfig{
		{Name: "path1", Bandwidth: 80 * core.Mbps, Delay: dist.Deterministic{D: 400 * time.Millisecond}, Loss: 0.2, QueueLimit: QueueLimit},
		{Name: "path2", Bandwidth: 20 * core.Mbps, Delay: dist.Deterministic{D: 100 * time.Millisecond}, Loss: 0, QueueLimit: QueueLimit},
	}
}

// TrueTimeouts returns the Experiment 1 retransmission timeouts: 100 ms
// beyond the true acknowledgment return time (tᵢ = dᵢ + d_min + 100 ms on
// raw delays, §VII).
func TrueTimeouts() (*core.Timeouts, error) {
	trueNet := core.NewNetwork(90*core.Mbps, 800*time.Millisecond,
		core.Path{Bandwidth: 80 * core.Mbps, Delay: 400 * time.Millisecond, Loss: 0.2},
		core.Path{Bandwidth: 20 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0},
	)
	return core.DeterministicTimeouts(trueNet, 100*time.Millisecond)
}

// TableVNetwork returns the Experiment 2 random-delay network (Table V):
// shifted-gamma delays, λ = 90 Mbps, δ = 750 ms.
func TableVNetwork() *core.Network {
	return core.NewNetwork(90*core.Mbps, 750*time.Millisecond,
		core.Path{Name: "path1", Bandwidth: 80 * core.Mbps, Loss: 0.2,
			RandDelay: dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}},
		core.Path{Name: "path2", Bandwidth: 20 * core.Mbps, Loss: 0,
			RandDelay: dist.ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}},
	)
}

// TableVTrueLinks returns Experiment 2's ground-truth links. The paper
// over-provisions raw bandwidth so that only the model's allowance is
// used and queueing stays negligible, isolating the delay distribution.
func TableVTrueLinks() []netsim.LinkConfig {
	n := TableVNetwork()
	links := proto.LinksFromNetwork(n, QueueLimit)
	for i := range links {
		links[i].Bandwidth *= 4
	}
	return links
}

// simulateQuality solves nothing: it runs cfg and returns measured
// quality.
func simulateQuality(cfg proto.Config, seed uint64) (float64, error) {
	sim := netsim.NewSimulator(seed)
	res, err := proto.Run(sim, cfg)
	if err != nil {
		return 0, err
	}
	return res.Quality(), nil
}

// RenderTable renders a fixed-width text table.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

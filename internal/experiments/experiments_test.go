package experiments

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"time"

	"dmc/internal/ratlp"
)

func TestTable4TopMatchesPaper(t *testing.T) {
	rows, err := Table4Top()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d rows", len(rows))
	}
	want := map[int64]*big.Rat{
		10: big.NewRat(1, 1), 20: big.NewRat(1, 1), 40: big.NewRat(1, 1),
		60: big.NewRat(1, 1), 80: big.NewRat(1, 1),
		100: ratlp.Rat(21, 25), 120: ratlp.Rat(7, 10), 140: ratlp.Rat(3, 5),
	}
	for _, r := range rows {
		w, ok := want[r.RateMbps]
		if !ok {
			continue
		}
		if r.Quality.Cmp(w) != 0 {
			t.Errorf("λ=%d: quality %s, want %s", r.RateMbps, r.Quality.RatString(), w.RatString())
		}
	}
	text := RenderTable4(rows)
	if !strings.Contains(text, "λ=100 Mbps") || !strings.Contains(text, "21/25") {
		t.Errorf("render missing expected content:\n%s", text)
	}
}

func TestTable4BottomMatchesPaper(t *testing.T) {
	rows, err := Table4Bottom()
	if err != nil {
		t.Fatal(err)
	}
	want := map[time.Duration]*big.Rat{
		150 * time.Millisecond:  ratlp.Rat(2, 9),
		400 * time.Millisecond:  ratlp.Rat(2, 9),
		450 * time.Millisecond:  ratlp.Rat(38, 45),
		700 * time.Millisecond:  ratlp.Rat(38, 45),
		750 * time.Millisecond:  ratlp.Rat(14, 15),
		1000 * time.Millisecond: ratlp.Rat(14, 15),
		1050 * time.Millisecond: ratlp.Rat(14, 15),
		1200 * time.Millisecond: ratlp.Rat(14, 15),
	}
	for _, r := range rows {
		w, ok := want[r.Lifetime]
		if !ok {
			continue
		}
		if r.Quality.Cmp(w) != 0 {
			t.Errorf("δ=%v: quality %s, want %s", r.Lifetime, r.Quality.RatString(), w.RatString())
		}
	}
}

func TestFigure2TopShape(t *testing.T) {
	pts, err := Figure2Top(Figure2Config{Messages: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 15 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		// Simulation within a few points of theory.
		if diff := math.Abs(p.MultipathSim - p.MultipathTheory); diff > 0.03 {
			t.Errorf("λ=%v: sim %v vs theory %v", p.X, p.MultipathSim, p.MultipathTheory)
		}
		// Multipath dominates both single paths.
		if p.MultipathTheory < p.Path1Theory-1e-9 || p.MultipathTheory < p.Path2Theory-1e-9 {
			t.Errorf("λ=%v: multipath %v below single-path (%v, %v)", p.X, p.MultipathTheory, p.Path1Theory, p.Path2Theory)
		}
	}
	// Known anchors: Q=1 at λ≤80, 84% at λ=100.
	if math.Abs(pts[7].MultipathTheory-1) > 1e-9 { // λ=80
		t.Errorf("λ=80 theory = %v, want 1", pts[7].MultipathTheory)
	}
	if math.Abs(pts[9].MultipathTheory-0.84) > 1e-9 { // λ=100
		t.Errorf("λ=100 theory = %v, want 0.84", pts[9].MultipathTheory)
	}
	// Path 2 alone: 20/λ beyond 20 Mbps.
	if math.Abs(pts[9].Path2Theory-0.2) > 1e-9 {
		t.Errorf("λ=100 path2 = %v, want 0.2", pts[9].Path2Theory)
	}
	if s := RenderFigure2(pts, "lambda (Mbps)"); !strings.Contains(s, "multipath(sim)") {
		t.Error("render missing header")
	}
}

func TestFigure2BottomShape(t *testing.T) {
	pts, err := Figure2Bottom(Figure2Config{Messages: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Quality steps: 0 below 150 ms, 2/9 to 450, 38/45 to 750, 14/15 after.
	for _, p := range pts {
		var want float64
		switch {
		case p.X < 150:
			want = 0
		case p.X < 450:
			want = 2.0 / 9
		case p.X < 750:
			want = 38.0 / 45
		default:
			want = 14.0 / 15
		}
		if math.Abs(p.MultipathTheory-want) > 1e-9 {
			t.Errorf("δ=%vms: theory %v, want %v", p.X, p.MultipathTheory, want)
		}
		if diff := math.Abs(p.MultipathSim - p.MultipathTheory); diff > 0.04 {
			t.Errorf("δ=%vms: sim %v vs theory %v", p.X, p.MultipathSim, p.MultipathTheory)
		}
	}
}

func TestExperiment2Reproduction(t *testing.T) {
	r, err := Experiment2(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelQuality < 0.93 || r.ModelQuality > 0.934 {
		t.Errorf("model quality %v, want ≈0.933", r.ModelQuality)
	}
	if math.Abs(r.SimQuality()-r.ModelQuality) > 0.01 {
		t.Errorf("sim quality %v vs model %v", r.SimQuality(), r.ModelQuality)
	}
	if _, ok := r.Timeouts.Get(0, 0); ok {
		t.Error("t11 should be undefined")
	}
	if s := RenderExperiment2(r); !strings.Contains(s, "615ms") {
		t.Error("render missing paper reference")
	}
}

func TestFigure3LossShape(t *testing.T) {
	pts, err := Figure3(Fig3Loss, Figure3Config{Messages: 2500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 13 {
		t.Fatalf("got %d points", len(pts))
	}
	// Zero error is (near) optimal.
	var zero Fig3Point
	for _, p := range pts {
		if math.Abs(p.Error) < 1e-9 {
			zero = p
		}
	}
	if zero.QualityPath1 < 0.9 || zero.QualityPath2 < 0.9 {
		t.Errorf("zero-error quality low: %+v", zero)
	}
	// Grossly overestimating path1 loss (e=+1 → τ=1) must hurt: the model
	// stops trusting path 1 entirely.
	last := pts[len(pts)-1]
	if last.QualityPath1 > zero.QualityPath1-0.2 {
		t.Errorf("τ1=1 estimate should collapse quality: %+v vs %+v", last, zero)
	}
	if s := RenderFigure3(Fig3Loss, pts); !strings.Contains(s, "loss error") {
		t.Error("render missing header")
	}
}

func TestFigure3BandwidthShape(t *testing.T) {
	pts, err := Figure3(Fig3Bandwidth, Figure3Config{Messages: 2500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, mid := pts[0], pts[5]
	if math.Abs(first.Error+0.5) > 1e-9 || math.Abs(mid.Error) > 1e-9 {
		t.Fatalf("unexpected error grid: %v, %v", first.Error, mid.Error)
	}
	// Underestimating path1 bandwidth by 50% forces drops → quality loss.
	if first.QualityPath1 > mid.QualityPath1-0.1 {
		t.Errorf("bandwidth underestimation should cost quality: %+v vs %+v", first, mid)
	}
}

func TestFigure3UnknownParam(t *testing.T) {
	if _, err := Figure3(Fig3Param(99), Figure3Config{Messages: 10}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if Fig3Param(99).String() == "" || Fig3Bandwidth.String() != "bandwidth" {
		t.Error("param names wrong")
	}
}

func TestFigure4Scaling(t *testing.T) {
	pts, err := Figure4(Figure4Config{Runs: 3, Seed: 6, MaxPaths: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 { // n ∈ {2..5} × m ∈ {2,3}
		t.Fatalf("got %d points", len(pts))
	}
	byKey := map[[2]int]Fig4Point{}
	for _, p := range pts {
		byKey[[2]int{p.Paths, p.Transmissions}] = p
		if p.MeanSolve <= 0 {
			t.Errorf("n=%d m=%d: non-positive solve time", p.Paths, p.Transmissions)
		}
	}
	// Variable counts are (n+1)^m.
	if byKey[[2]int{4, 2}].Variables != 25 || byKey[[2]int{4, 3}].Variables != 125 {
		t.Errorf("variable counts wrong: %+v", byKey)
	}
	if s := RenderFigure4(pts); !strings.Contains(s, "mean solve") {
		t.Error("render missing header")
	}
}

func TestSchedulerAblation(t *testing.T) {
	rows, err := SchedulerAblation(6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Quality < 0.85 {
			t.Errorf("%s quality %v suspiciously low", r.Selector, r.Quality)
		}
	}
	if rows[0].Selector != "deficit (Algorithm 1)" {
		t.Errorf("row order: %v", rows[0].Selector)
	}
	if s := RenderSchedulerAblation(rows); !strings.Contains(s, "deficit") {
		t.Error("render missing selector")
	}
}

func TestSolverAblation(t *testing.T) {
	rows, err := SolverAblation(3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxQualGap > 1e-6 {
			t.Errorf("n=%d: float and exact disagree by %v", r.Paths, r.MaxQualGap)
		}
		if r.ExactTime < r.FloatTime {
			t.Logf("note: exact faster than float at n=%d (%v vs %v)", r.Paths, r.ExactTime, r.FloatTime)
		}
	}
	if s := RenderSolverAblation(rows); !strings.Contains(s, "exact simplex") {
		t.Error("render missing header")
	}
}

func TestAckAblation(t *testing.T) {
	rows, err := AckAblation(5000, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Duplicates >= rows[0].Duplicates {
		t.Errorf("vector acks should cut duplicates: %+v", rows)
	}
	if s := RenderAckAblation(rows, 0.3); !strings.Contains(s, "vector acks") {
		t.Error("render missing scheme")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	s := RenderTable([]string{"a", "long-header"}, [][]string{{"xxxxxxx", "1"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator misaligned:\n%s", s)
	}
}

// TestResolveSweepAgreesAndWarms runs a small drift trajectory through
// the incremental re-solve sweep: every step must agree with the cold
// solve to 1e-6 and the warm path must actually engage (CG dispatch with
// pool hits after the prime).
func TestResolveSweepAgreesAndWarms(t *testing.T) {
	pts, err := ResolveSweep(ResolveConfig{Paths: 12, Transmissions: 4, Steps: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if p.QualityGap > 1e-6 {
			t.Errorf("step %d: quality gap %v exceeds 1e-6", p.Step, p.QualityGap)
		}
		if p.Dispatch != "cg" {
			t.Errorf("step %d: dispatch %v, want cg at 12 paths × 4 transmissions", p.Step, p.Dispatch)
		}
		if p.PoolHits == 0 {
			t.Errorf("step %d: warm solve reported no pool hits", p.Step)
		}
		if p.WarmSolve <= 0 || p.ColdSolve <= 0 {
			t.Errorf("step %d: unmeasured solve times %v / %v", p.Step, p.WarmSolve, p.ColdSolve)
		}
	}
	if csv := ResolveCSV(pts); len(csv) == 0 {
		t.Error("empty CSV")
	}
}

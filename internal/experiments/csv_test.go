package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFig2CSV(t *testing.T) {
	pts := []Fig2Point{{X: 10, MultipathSim: 0.99, MultipathTheory: 1, Path1Theory: 0.8, Path2Theory: 1}}
	csv := Fig2CSV(pts, "lambda_mbps")
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "lambda_mbps,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,0.99") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFig3CSVAndFig4CSV(t *testing.T) {
	f3 := Fig3CSV(Fig3Loss, []Fig3Point{{Error: -0.2, QualityPath1: 0.8, QualityPath2: 0.9}})
	if !strings.Contains(f3, "loss_error") || !strings.Contains(f3, "-0.200") {
		t.Errorf("fig3 csv: %q", f3)
	}
	f4 := Fig4CSV([]Fig4Point{{Paths: 2, Transmissions: 3, Variables: 27, MeanSolve: 24 * time.Microsecond}})
	if !strings.Contains(f4, "2,3,27,24.000") {
		t.Errorf("fig4 csv: %q", f4)
	}
}

func TestTable4CSV(t *testing.T) {
	rows, err := Table4Top()
	if err != nil {
		t.Fatal(err)
	}
	content := Table4CSV(rows[:3])
	if !strings.Contains(content, "lambda=10Mbps,1,100.0000") {
		t.Errorf("csv: %q", content)
	}
	// Combo names contain commas ("x1,2"), so strategy fields must be
	// quoted: a conforming CSV parser sees exactly 4 columns per record.
	records, err := csv.NewReader(strings.NewReader(content)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	for i, rec := range records {
		if len(rec) != 4 {
			t.Errorf("record %d has %d fields: %q", i, len(rec), rec)
		}
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	if csvField("plain") != "plain" {
		t.Error("plain field quoted")
	}
	if csvField(`a,b`) != `"a,b"` {
		t.Error("comma field not quoted")
	}
	if csvField(`say "hi"`) != `"say ""hi"""` {
		t.Error("quote escaping wrong")
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := WriteCSVFile(dir, "x.csv", "a,b\n1,2\n"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("content = %q", data)
	}
}

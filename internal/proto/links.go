package proto

import (
	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/netsim"
)

// DefaultQueueLimit is the drop-tail buffer used by LinksFromNetwork, in
// packets. It is sized like a small router buffer: deep enough to absorb
// scheduler burstiness, shallow enough that sustained over-subscription
// (Experiment 3's bandwidth overestimation) turns into loss rather than
// unbounded delay.
const DefaultQueueLimit = 100

// LinksFromNetwork derives the true forward-link configurations from a
// network description: each path's bandwidth, loss, and delay (the
// RandDelay distribution when present, else the fixed delay) become a
// point-to-point link with a finite drop-tail queue.
func LinksFromNetwork(n *core.Network, queueLimit int) []netsim.LinkConfig {
	if queueLimit == 0 {
		queueLimit = DefaultQueueLimit
	}
	if queueLimit < 0 {
		queueLimit = 0 // explicit "unlimited"
	}
	out := make([]netsim.LinkConfig, len(n.Paths))
	for i, p := range n.Paths {
		var d dist.Delay = dist.Deterministic{D: p.Delay}
		if p.RandDelay != nil {
			d = p.RandDelay
		}
		name := p.Name
		if name == "" {
			name = "path"
		}
		out[i] = netsim.LinkConfig{
			Name:       name,
			Bandwidth:  p.Bandwidth,
			Delay:      d,
			Loss:       p.Loss,
			QueueLimit: queueLimit,
		}
	}
	return out
}

// Run is the one-shot convenience wrapper: build a session and run it.
func Run(sim *netsim.Simulator, cfg Config) (*Result, error) {
	s, err := NewSession(sim, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

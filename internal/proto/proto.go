// Package proto implements the deadline-aware multipath transport the
// paper's evaluation runs over ns-3 (§VII-A), here over internal/netsim.
//
// A Session wires a client and a server across one simulated link per path
// plus a reverse acknowledgment link. The client generates fixed-size
// messages at a constant rate, assigns each to a path combination with
// Algorithm 1 (or a baseline selector), transmits, and retransmits on
// timeout along the combination's next path; messages assigned to the
// blackhole are dropped immediately. The server deduplicates, checks each
// message's creation timestamp against the lifetime, and acknowledges
// along the lowest-delay path. Extensions: fast retransmit on per-path
// reordering evidence (§VIII-D) and SACK-style acknowledgment vectors
// (§VIII-C).
package proto

import (
	"errors"
	"fmt"
	"time"

	"dmc/internal/core"
	"dmc/internal/netsim"
	"dmc/internal/sched"
	"dmc/internal/trace"
)

// Defaults mirror the paper's workload (§VII-A).
const (
	// DefaultMessageCount is the paper's 100,000 generated messages.
	DefaultMessageCount = 100_000
	// DefaultMessageBytes is the paper's 1024-byte messages (header
	// included).
	DefaultMessageBytes = 1024
	// DefaultAckBytes sizes the sequence-number acknowledgment packet.
	DefaultAckBytes = 64
)

// Config describes one simulation session.
type Config struct {
	// Solution is the sending strategy (required): its X/Combos drive the
	// per-packet assignment, its Network carries λ, δ, and path count.
	Solution *core.Solution
	// Timeouts are the pairwise retransmission timeouts in real path
	// indexing (required when the strategy retransmits).
	Timeouts *core.Timeouts
	// TruePaths configures the actual forward links, one per path. These
	// may differ from Solution.Network's characteristics — that gap is
	// exactly what the sensitivity experiment (Fig. 3) measures.
	TruePaths []netsim.LinkConfig
	// AckLink optionally overrides the reverse (acknowledgment) link
	// configuration; by default the ack path's TruePaths entry is
	// mirrored.
	AckLink *netsim.LinkConfig
	// AckPathOverride optionally forces the acknowledgment path (real
	// index). Nil selects the lowest-mean-delay path (Eq. 25).
	AckPathOverride *int
	// Selector overrides Algorithm 1 for the scheduler ablation.
	Selector sched.Selector

	// MessageCount, MessageBytes, AckBytes default to the paper's
	// workload constants.
	MessageCount int
	MessageBytes int
	AckBytes     int

	// FastRetransmitDups enables §VIII-D fast retransmit: a pending
	// transmission is retransmitted early once this many later-sent
	// packets on the same path have been acknowledged. 0 disables.
	FastRetransmitDups int
	// AckWindow enables §VIII-C vector acknowledgments carrying the
	// receipt bitmap of the last AckWindow sequence numbers, making the
	// session robust to acknowledgment loss. 0 sends plain per-packet
	// acks.
	AckWindow int
}

// Result aggregates a finished session.
type Result struct {
	// Generated counts messages produced by the application.
	Generated int
	// Blackholed counts messages deliberately dropped at the sender.
	Blackholed int
	// Transmissions counts data packets offered to links (first attempts
	// and retransmissions).
	Transmissions int
	// Retransmissions counts attempts after the first.
	Retransmissions int
	// FastRetransmits counts retransmissions triggered by duplicate-ack
	// evidence rather than timeout.
	FastRetransmits int
	// Expired counts retransmissions skipped because the deadline had
	// already passed at the sender.
	Expired int
	// DeliveredInTime counts unique messages arriving within Lifetime.
	DeliveredInTime int
	// DeliveredLate counts unique messages arriving after their deadline.
	DeliveredLate int
	// Duplicates counts redundant receptions of already-delivered
	// messages.
	Duplicates int
	// AcksSent and AcksReceived count acknowledgment traffic.
	AcksSent     int
	AcksReceived int
	// PathStats snapshots each forward link, AckStats the reverse link.
	PathStats []netsim.LinkStats
	AckStats  netsim.LinkStats
	// Latency is the delivery-latency distribution (generation to first
	// arrival) over unique deliveries, in-time or not.
	Latency trace.Histogram
}

// Quality is the measured communication quality: in-time deliveries over
// generated messages (the simulation counterpart of Eq. 6).
func (r *Result) Quality() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.DeliveredInTime) / float64(r.Generated)
}

// String summarizes the session.
func (r *Result) String() string {
	return fmt.Sprintf("generated=%d in-time=%d (%.2f%%) late=%d dup=%d retx=%d (fast=%d) blackholed=%d",
		r.Generated, r.DeliveredInTime, r.Quality()*100, r.DeliveredLate,
		r.Duplicates, r.Retransmissions, r.FastRetransmits, r.Blackholed)
}

// dataMsg is the application header: "a timestamp and a sequence number"
// (§VII-A), plus transmission bookkeeping.
type dataMsg struct {
	seq     uint64
	created time.Duration
	attempt int
	path    int    // real path index
	txSeq   uint64 // per-path send order, for fast retransmit
}

// ackMsg acknowledges receipt: "the sequence number of the received
// message" (§VII-A), echoing the arrival path and send order for RTT and
// reordering inference, plus an optional receipt bitmap (§VIII-C).
type ackMsg struct {
	seq    uint64
	path   int
	txSeq  uint64
	base   uint64 // first seq covered by bits
	bits   []bool // receipt bitmap for [base, base+len(bits))
	hasWin bool
}

// Session is a wired client/server pair ready to Run.
type Session struct {
	sim *netsim.Simulator
	cfg Config

	forward []*netsim.Link
	ackLink *netsim.Link

	selector sched.Selector
	combos   []core.Combo
	lifetime time.Duration
	interval float64 // ns between messages

	// client state
	pending   map[uint64]*msgState
	perPathTx []uint64         // next per-path txSeq
	inflight  [][]*flightEntry // per path, send-ordered outstanding
	onDeliver func(seq uint64, inTime bool)

	// server state
	received   map[uint64]struct{}
	highestSeq uint64
	haveAny    bool

	ran bool
	res Result
}

type msgState struct {
	combo   core.Combo
	attempt int
	created time.Duration
	timer   *netsim.Timer
	dups    int
}

type flightEntry struct {
	txSeq   uint64
	seq     uint64
	attempt int
	st      *msgState
}

// NewSession validates the configuration and builds the links.
func NewSession(sim *netsim.Simulator, cfg Config) (*Session, error) {
	if sim == nil {
		return nil, errors.New("proto: nil simulator")
	}
	if cfg.Solution == nil {
		return nil, errors.New("proto: nil solution")
	}
	n := cfg.Solution.Network
	if len(cfg.TruePaths) != len(n.Paths) {
		return nil, fmt.Errorf("proto: %d true path configs for %d paths", len(cfg.TruePaths), len(n.Paths))
	}
	if cfg.MessageCount == 0 {
		cfg.MessageCount = DefaultMessageCount
	}
	if cfg.MessageCount < 0 {
		return nil, fmt.Errorf("proto: negative message count %d", cfg.MessageCount)
	}
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = DefaultMessageBytes
	}
	if cfg.AckBytes <= 0 {
		cfg.AckBytes = DefaultAckBytes
	}
	ackPath := n.AckPathIndex()
	if cfg.AckPathOverride != nil {
		ackPath = *cfg.AckPathOverride
		if ackPath < 0 || ackPath >= len(n.Paths) {
			return nil, fmt.Errorf("proto: ack path %d out of range", ackPath)
		}
	}
	if cfg.FastRetransmitDups < 0 || cfg.AckWindow < 0 {
		return nil, errors.New("proto: negative extension parameters")
	}
	needsTimeouts := false
	for l, x := range cfg.Solution.X {
		if x <= 0 {
			continue
		}
		c := cfg.Solution.Combos()[l]
		for k := 0; k+1 < len(c); k++ {
			if c[k] != 0 && c[k+1] != 0 {
				needsTimeouts = true
			}
		}
	}
	if needsTimeouts && (cfg.Timeouts == nil || len(cfg.Timeouts.T) != len(n.Paths)) {
		return nil, errors.New("proto: strategy retransmits but timeouts are missing or mis-sized")
	}

	s := &Session{
		sim:       sim,
		cfg:       cfg,
		combos:    cfg.Solution.Combos(),
		lifetime:  n.Lifetime,
		interval:  float64(cfg.MessageBytes*8) / n.Rate * 1e9,
		pending:   make(map[uint64]*msgState),
		perPathTx: make([]uint64, len(n.Paths)),
		inflight:  make([][]*flightEntry, len(n.Paths)),
		received:  make(map[uint64]struct{}, cfg.MessageCount),
	}

	if cfg.Selector != nil {
		s.selector = cfg.Selector
	} else {
		sel, err := sched.NewDeficit(cfg.Solution.X)
		if err != nil {
			return nil, fmt.Errorf("proto: building Algorithm 1 selector: %w", err)
		}
		s.selector = sel
	}

	for i, lc := range cfg.TruePaths {
		if lc.Name == "" {
			lc.Name = fmt.Sprintf("path%d", i+1)
		}
		link, err := netsim.NewLink(sim, lc, s.onData)
		if err != nil {
			return nil, fmt.Errorf("proto: forward link %d: %w", i, err)
		}
		s.forward = append(s.forward, link)
	}
	ackCfg := cfg.TruePaths[ackPath]
	ackCfg.Name = "ack"
	if cfg.AckLink != nil {
		ackCfg = *cfg.AckLink
		if ackCfg.Name == "" {
			ackCfg.Name = "ack"
		}
	}
	ack, err := netsim.NewLink(sim, ackCfg, s.onAck)
	if err != nil {
		return nil, fmt.Errorf("proto: ack link: %w", err)
	}
	s.ackLink = ack
	return s, nil
}

// OnDeliver registers a hook invoked at the server for each unique
// delivery (estimators use this in the adaptive example).
func (s *Session) OnDeliver(fn func(seq uint64, inTime bool)) { s.onDeliver = fn }

// Run schedules the workload, drives the simulation to completion, and
// returns the aggregated result. A session runs once.
func (s *Session) Run() (*Result, error) {
	if s.ran {
		return nil, errors.New("proto: session already ran")
	}
	s.ran = true
	for i := 0; i < s.cfg.MessageCount; i++ {
		seq := uint64(i)
		at := time.Duration(float64(i) * s.interval)
		s.sim.Schedule(at, func() { s.generate(seq) })
	}
	s.sim.Run()
	for _, l := range s.forward {
		s.res.PathStats = append(s.res.PathStats, l.Stats())
	}
	s.res.AckStats = s.ackLink.Stats()
	res := s.res
	return &res, nil
}

// generate creates message seq and launches its first attempt.
func (s *Session) generate(seq uint64) {
	s.res.Generated++
	comboIdx := s.selector.Select()
	st := &msgState{
		combo:   s.combos[comboIdx],
		created: s.sim.Now(),
	}
	s.pending[seq] = st
	s.attempt(seq, st)
}

// attempt transmits the current attempt of st and arms the retransmission
// timer.
func (s *Session) attempt(seq uint64, st *msgState) {
	k := st.attempt
	pathModel := st.combo[k]
	if pathModel == 0 {
		// Blackhole: deliberate drop.
		if k == 0 {
			s.res.Blackholed++
		}
		delete(s.pending, seq)
		return
	}
	path := pathModel - 1

	s.res.Transmissions++
	if k > 0 {
		s.res.Retransmissions++
	}
	tx := s.perPathTx[path]
	s.perPathTx[path]++
	msg := dataMsg{seq: seq, created: st.created, attempt: k, path: path, txSeq: tx}
	s.forward[path].Send(netsim.Packet{Bytes: s.cfg.MessageBytes, Payload: msg})
	if s.cfg.FastRetransmitDups > 0 {
		s.inflight[path] = append(s.inflight[path], &flightEntry{txSeq: tx, seq: seq, attempt: k, st: st})
	}

	// Arm the timer for the next attempt, if any is useful.
	if k+1 >= len(st.combo) {
		return
	}
	next := st.combo[k+1]
	if next == 0 {
		// Next "path" is the blackhole: drop after this attempt; no timer.
		return
	}
	t, ok := s.cfg.Timeouts.Get(path, next-1)
	if !ok {
		// No timeout makes the retransmission useful (undefined t_{i,j}).
		return
	}
	st.timer = s.sim.Schedule(t, func() { s.onTimeout(seq, st) })
}

// onTimeout moves st to its next attempt unless the message already
// expired at the sender.
func (s *Session) onTimeout(seq uint64, st *msgState) {
	if _, live := s.pending[seq]; !live {
		return
	}
	st.timer = nil
	st.attempt++
	st.dups = 0
	if s.sim.Now() > st.created+s.lifetime {
		// Past the deadline: the data is obsolete (§I) — do not waste
		// bandwidth on it.
		s.res.Expired++
		delete(s.pending, seq)
		return
	}
	s.attempt(seq, st)
}

// onData is the server's receive path.
func (s *Session) onData(pkt netsim.Packet) {
	msg := pkt.Payload.(dataMsg)
	if _, dup := s.received[msg.seq]; dup {
		s.res.Duplicates++
	} else {
		s.received[msg.seq] = struct{}{}
		inTime := s.sim.Now() <= msg.created+s.lifetime
		if inTime {
			s.res.DeliveredInTime++
		} else {
			s.res.DeliveredLate++
		}
		s.res.Latency.Observe(s.sim.Now() - msg.created)
		if s.onDeliver != nil {
			s.onDeliver(msg.seq, inTime)
		}
	}
	if !s.haveAny || msg.seq > s.highestSeq {
		s.highestSeq = msg.seq
		s.haveAny = true
	}

	ack := ackMsg{seq: msg.seq, path: msg.path, txSeq: msg.txSeq}
	if w := s.cfg.AckWindow; w > 0 {
		base := uint64(0)
		if s.highestSeq+1 > uint64(w) {
			base = s.highestSeq + 1 - uint64(w)
		}
		bits := make([]bool, 0, w)
		for q := base; q <= s.highestSeq; q++ {
			_, got := s.received[q]
			bits = append(bits, got)
		}
		ack.base = base
		ack.bits = bits
		ack.hasWin = true
	}
	s.res.AcksSent++
	s.ackLink.Send(netsim.Packet{Bytes: s.cfg.AckBytes, Payload: ack})
}

// onAck is the client's acknowledgment path.
func (s *Session) onAck(pkt netsim.Packet) {
	ack := pkt.Payload.(ackMsg)
	s.res.AcksReceived++
	s.settle(ack.seq)
	if ack.hasWin {
		for off, got := range ack.bits {
			if got {
				s.settle(ack.base + uint64(off))
			}
		}
	}
	if s.cfg.FastRetransmitDups > 0 {
		s.noteDelivered(ack.path, ack.txSeq)
	}
}

// settle marks a message delivered and cancels its pending work.
func (s *Session) settle(seq uint64) {
	st, live := s.pending[seq]
	if !live {
		return
	}
	if st.timer != nil {
		st.timer.Cancel()
		st.timer = nil
	}
	delete(s.pending, seq)
}

// noteDelivered implements §VIII-D: acknowledgment of a packet sent later
// on the same path is evidence that earlier packets on that path were
// lost (per-path order is mostly preserved). After FastRetransmitDups
// such signals, retransmit early.
func (s *Session) noteDelivered(path int, txSeq uint64) {
	if path < 0 || path >= len(s.inflight) {
		return
	}
	flight := s.inflight[path]
	keep := flight[:0]
	var fire []*flightEntry
	for _, fe := range flight {
		_, live := s.pending[fe.seq]
		if !live || fe.st.timer == nil || fe.st.attempt != fe.attempt {
			continue // settled, superseded, or not awaiting retransmission
		}
		if fe.txSeq >= txSeq {
			keep = append(keep, fe)
			continue
		}
		fe.st.dups++
		if fe.st.dups >= s.cfg.FastRetransmitDups {
			fire = append(fire, fe)
		} else {
			keep = append(keep, fe)
		}
	}
	s.inflight[path] = keep
	for _, fe := range fire {
		if fe.st.timer != nil {
			fe.st.timer.Cancel()
			fe.st.timer = nil
		}
		s.res.FastRetransmits++
		s.onTimeout(fe.seq, fe.st)
	}
}

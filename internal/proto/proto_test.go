package proto

import (
	"math"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/netsim"
	"dmc/internal/sched"
)

// experiment1Network returns the Table III network with the conservative
// model delays the paper solves against (450/150 ms).
func experiment1Network(rateMbps float64, lifetime time.Duration) *core.Network {
	return core.NewNetwork(rateMbps*core.Mbps, lifetime,
		core.Path{Name: "path1", Bandwidth: 80 * core.Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		core.Path{Name: "path2", Bandwidth: 20 * core.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
}

// experiment1TrueLinks returns the true simulated links: raw propagation
// delays 400/100 ms (the model's 450/150 include the queueing allowance).
func experiment1TrueLinks() []netsim.LinkConfig {
	return []netsim.LinkConfig{
		{Name: "path1", Bandwidth: 80 * core.Mbps, Delay: dist.Deterministic{D: 400 * time.Millisecond}, Loss: 0.2, QueueLimit: DefaultQueueLimit},
		{Name: "path2", Bandwidth: 20 * core.Mbps, Delay: dist.Deterministic{D: 100 * time.Millisecond}, Loss: 0, QueueLimit: DefaultQueueLimit},
	}
}

// trueTimeouts mirrors §VII Experiment 1: timeouts 100 ms beyond the true
// ack return time, i.e. tᵢ = dᵢ_true + d_min_true + 100 ms.
func trueTimeouts(t *testing.T) *core.Timeouts {
	t.Helper()
	trueNet := core.NewNetwork(90*core.Mbps, 800*time.Millisecond,
		core.Path{Bandwidth: 80 * core.Mbps, Delay: 400 * time.Millisecond, Loss: 0.2},
		core.Path{Bandwidth: 20 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0},
	)
	to, err := core.DeterministicTimeouts(trueNet, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return to
}

func solve(t *testing.T, n *core.Network) *core.Solution {
	t.Helper()
	s, err := core.SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runSession(t *testing.T, cfg Config, seed uint64) *Result {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	res, err := Run(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExperiment1SimulationMatchesTheory is the core §VII validation: the
// simulated quality closely approximates the LP bound. Reduced message
// count keeps the test fast; the full 100k run lives in cmd/reproduce.
func TestExperiment1SimulationMatchesTheory(t *testing.T) {
	for _, tc := range []struct {
		rateMbps float64
		wantQ    float64
	}{
		{40, 1.0},
		{90, 14.0 / 15},
		{120, 0.7},
	} {
		n := experiment1Network(tc.rateMbps, 800*time.Millisecond)
		sol := solve(t, n)
		if math.Abs(sol.Quality-tc.wantQ) > 1e-9 {
			t.Fatalf("λ=%v: LP quality %v, want %v", tc.rateMbps, sol.Quality, tc.wantQ)
		}
		res := runSession(t, Config{
			Solution:     sol,
			Timeouts:     trueTimeouts(t),
			TruePaths:    experiment1TrueLinks(),
			MessageCount: 20000,
		}, 42)
		if diff := math.Abs(res.Quality() - tc.wantQ); diff > 0.01 {
			t.Errorf("λ=%v: simulated quality %v vs theory %v (diff %v)\n%v",
				tc.rateMbps, res.Quality(), tc.wantQ, diff, res)
		}
	}
}

// TestLosslessPathDelivers100 is the trivial sanity case.
func TestLosslessPathDelivers100(t *testing.T) {
	n := core.NewNetwork(5*core.Mbps, time.Second,
		core.Path{Name: "clean", Bandwidth: 10 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0})
	sol := solve(t, n)
	res := runSession(t, Config{
		Solution:     sol,
		TruePaths:    []netsim.LinkConfig{{Bandwidth: 10 * core.Mbps, Delay: dist.Deterministic{D: 100 * time.Millisecond}}},
		MessageCount: 2000,
	}, 7)
	if res.Quality() != 1 {
		t.Errorf("quality = %v, want 1\n%v", res.Quality(), res)
	}
	if res.Retransmissions != 0 {
		t.Errorf("unexpected retransmissions: %d", res.Retransmissions)
	}
	if res.DeliveredInTime != 2000 || res.Generated != 2000 {
		t.Errorf("counts wrong: %v", res)
	}
}

// TestBlackholedShareMatchesSolution: overload forces deliberate drops in
// the solved proportion.
func TestBlackholedShareMatchesSolution(t *testing.T) {
	n := core.NewNetwork(20*core.Mbps, time.Second,
		core.Path{Name: "only", Bandwidth: 10 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0})
	sol := solve(t, n)
	if math.Abs(sol.Quality-0.5) > 1e-9 {
		t.Fatalf("LP quality %v, want 0.5", sol.Quality)
	}
	res := runSession(t, Config{
		Solution:     sol,
		TruePaths:    []netsim.LinkConfig{{Bandwidth: 10 * core.Mbps, Delay: dist.Deterministic{D: 100 * time.Millisecond}}},
		MessageCount: 10000,
	}, 9)
	if got := float64(res.Blackholed) / float64(res.Generated); math.Abs(got-0.5) > 0.01 {
		t.Errorf("blackholed share %v, want ≈0.5", got)
	}
	if diff := math.Abs(res.Quality() - 0.5); diff > 0.01 {
		t.Errorf("quality %v, want ≈0.5", res.Quality())
	}
}

// TestRetransmissionRecoversLoss: a lossy free path with a clean but
// costly backup must deliver everything via retransmissions — the cost
// budget covers retransmitting the lost 30 % but not sending everything
// clean directly, so the LP picks the Figure 1 pattern with real
// bandwidth slack (no link runs at exactly 100 %).
func TestRetransmissionRecoversLoss(t *testing.T) {
	n := core.NewNetwork(4*core.Mbps, time.Second,
		core.Path{Name: "lossy", Bandwidth: 10 * core.Mbps, Delay: 150 * time.Millisecond, Loss: 0.3},
		core.Path{Name: "clean", Bandwidth: 2.5 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0, Cost: 1},
	)
	n.CostBound = 1.4 * core.Mbps // enough for retransmissions only
	sol := solve(t, n)
	if sol.Quality < 1-1e-9 {
		t.Fatalf("LP quality %v, want 1", sol.Quality)
	}
	if f := sol.Fraction(core.Combo{1, 2}); f < 0.9 {
		t.Fatalf("x_{1,2} = %v, want ≈1 (cost budget forces the retransmission pattern)", f)
	}
	to, err := core.DeterministicTimeouts(n, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res := runSession(t, Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    LinksFromNetwork(n, 0),
		MessageCount: 8000,
	}, 11)
	if res.Quality() < 0.995 {
		t.Errorf("quality = %v, want ≈1\n%v", res.Quality(), res)
	}
	if res.Retransmissions == 0 {
		t.Error("expected retransmissions on a 30% lossy path")
	}
}

// singleLossyNetwork forces same-path retransmission: one 20%-lossy path,
// lifetime admits exactly one retry (combo (1,1), Q = 0.96).
func singleLossyNetwork() *core.Network {
	return core.NewNetwork(2*core.Mbps, 500*time.Millisecond,
		core.Path{Name: "a", Bandwidth: 10 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0.2})
}

// TestDuplicatesFromConservativeTimeout: a timeout shorter than the RTT
// causes spurious retransmissions that the server counts as duplicates,
// but quality must not suffer.
func TestDuplicatesFromConservativeTimeout(t *testing.T) {
	n := singleLossyNetwork()
	sol := solve(t, n)
	if math.Abs(sol.Quality-0.96) > 1e-9 {
		t.Fatalf("LP quality %v, want 0.96 (combo (1,1))", sol.Quality)
	}
	// Timeout below the 200 ms ack return: every unacked packet
	// retransmits prematurely.
	to := core.NewTimeouts(1)
	to.Set(0, 0, 150*time.Millisecond)
	res := runSession(t, Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    LinksFromNetwork(n, 0),
		MessageCount: 5000,
	}, 13)
	if res.Duplicates == 0 {
		t.Error("expected duplicates from premature timeouts")
	}
	if res.Quality() < 0.95 {
		t.Errorf("quality = %v, want ≈0.96 despite duplicates", res.Quality())
	}
}

// TestAckVectorRobustToAckLoss: losing acks triggers spurious
// retransmissions; §VIII-C vector acks recover most of them.
func TestAckVectorRobustToAckLoss(t *testing.T) {
	n := singleLossyNetwork()
	sol := solve(t, n)
	to, err := core.DeterministicTimeouts(n, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lossyAck := netsim.LinkConfig{Name: "ack", Bandwidth: 10 * core.Mbps,
		Delay: dist.Deterministic{D: 100 * time.Millisecond}, Loss: 0.3}

	run := func(window int, seed uint64) *Result {
		return runSession(t, Config{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    LinksFromNetwork(n, 0),
			AckLink:      &lossyAck,
			AckWindow:    window,
			MessageCount: 6000,
		}, seed)
	}
	plain := run(0, 17)
	sack := run(64, 17)
	if plain.Duplicates == 0 {
		t.Error("expected duplicates under 30% ack loss")
	}
	if sack.Duplicates >= plain.Duplicates/2 {
		t.Errorf("SACK did not substantially reduce duplicates: %d vs %d", sack.Duplicates, plain.Duplicates)
	}
	if sack.Quality() < 0.95 || plain.Quality() < 0.95 {
		t.Errorf("quality degraded: plain %v sack %v", plain.Quality(), sack.Quality())
	}
}

// TestFastRetransmitBeatsBadTimeout: with a wildly overestimated timeout,
// §VIII-D's duplicate-ack trigger recovers losses the timer would miss.
func TestFastRetransmitBeatsBadTimeout(t *testing.T) {
	n := core.NewNetwork(4*core.Mbps, 900*time.Millisecond,
		core.Path{Name: "lossy", Bandwidth: 10 * core.Mbps, Delay: 150 * time.Millisecond, Loss: 0.3},
		core.Path{Name: "clean", Bandwidth: 5 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0, Cost: 1},
	)
	n.CostBound = 1.4 * core.Mbps // retransmissions affordable, direct sending not
	sol := solve(t, n)
	if f := sol.Fraction(core.Combo{1, 2}); f < 0.9 {
		t.Fatalf("x_{1,2} = %v, want ≈1", f)
	}
	// Broken timeout: 2 s, far beyond the 900 ms lifetime.
	to := core.NewTimeouts(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			to.Set(i, j, 2*time.Second)
		}
	}
	run := func(dups int, seed uint64) *Result {
		return runSession(t, Config{
			Solution:           sol,
			Timeouts:           to,
			TruePaths:          LinksFromNetwork(n, 0),
			FastRetransmitDups: dups,
			MessageCount:       6000,
		}, seed)
	}
	slow := run(0, 23)
	fast := run(3, 23)
	if fast.FastRetransmits == 0 {
		t.Fatal("fast retransmit never fired")
	}
	if fast.Quality() <= slow.Quality()+0.02 {
		t.Errorf("fast retransmit did not help: %v vs %v", fast.Quality(), slow.Quality())
	}
}

// TestSchedulerAblationQuality: Algorithm 1 must do at least as well as
// the weighted-random baseline on a tight scenario.
func TestSchedulerAblationQuality(t *testing.T) {
	n := experiment1Network(90, 800*time.Millisecond)
	sol := solve(t, n)
	to := trueTimeouts(t)

	mk := func(sel sched.Selector, seed uint64) *Result {
		return runSession(t, Config{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    experiment1TrueLinks(),
			Selector:     sel,
			MessageCount: 15000,
		}, seed)
	}
	deficit := mk(nil, 31)
	sim2 := netsim.NewSimulator(31)
	wr, err := sched.NewWeightedRandom(sol.X, sim2.RNG("ablation"))
	if err != nil {
		t.Fatal(err)
	}
	random := mk(wr, 31)
	if deficit.Quality()+0.005 < random.Quality() {
		t.Errorf("Algorithm 1 (%v) clearly worse than weighted random (%v)", deficit.Quality(), random.Quality())
	}
}

func TestSessionConfigErrors(t *testing.T) {
	n := experiment1Network(90, 800*time.Millisecond)
	sol := solve(t, n)
	links := experiment1TrueLinks()
	to := trueTimeouts(t)
	sim := netsim.NewSimulator(1)

	if _, err := NewSession(nil, Config{Solution: sol, Timeouts: to, TruePaths: links}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewSession(sim, Config{Timeouts: to, TruePaths: links}); err == nil {
		t.Error("nil solution accepted")
	}
	if _, err := NewSession(sim, Config{Solution: sol, Timeouts: to, TruePaths: links[:1]}); err == nil {
		t.Error("mis-sized links accepted")
	}
	if _, err := NewSession(sim, Config{Solution: sol, TruePaths: links}); err == nil {
		t.Error("missing timeouts accepted for retransmitting strategy")
	}
	bad := 7
	if _, err := NewSession(sim, Config{Solution: sol, Timeouts: to, TruePaths: links, AckPathOverride: &bad}); err == nil {
		t.Error("out-of-range ack path accepted")
	}
	if _, err := NewSession(sim, Config{Solution: sol, Timeouts: to, TruePaths: links, MessageCount: -1}); err == nil {
		t.Error("negative message count accepted")
	}
	if _, err := NewSession(sim, Config{Solution: sol, Timeouts: to, TruePaths: links, FastRetransmitDups: -1}); err == nil {
		t.Error("negative fast-retransmit threshold accepted")
	}

	s, err := NewSession(sim, Config{Solution: sol, Timeouts: to, TruePaths: links, MessageCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

// TestLatencyHistogram: delivery latency of a fixed-delay path clusters
// at the propagation delay, with retransmitted messages one timeout
// later.
func TestLatencyHistogram(t *testing.T) {
	n := singleLossyNetwork()
	sol := solve(t, n)
	to := core.NewTimeouts(1)
	to.Set(0, 0, 250*time.Millisecond)
	res := runSession(t, Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    LinksFromNetwork(n, 0),
		MessageCount: 5000,
	}, 41)
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// p50 ≈ 100 ms (direct arrival, ±bucket resolution + serialization).
	p50 := res.Latency.Quantile(0.5)
	if p50 < 95*time.Millisecond || p50 > 112*time.Millisecond {
		t.Errorf("p50 = %v, want ≈100ms", p50)
	}
	// The lossy 20% tail needs a retransmission: ≈ 250+100 ms.
	p95 := res.Latency.Quantile(0.95)
	if p95 < 330*time.Millisecond || p95 > 380*time.Millisecond {
		t.Errorf("p95 = %v, want ≈350ms", p95)
	}
	if int(res.Latency.Count()) != res.DeliveredInTime+res.DeliveredLate {
		t.Errorf("latency count %d vs deliveries %d", res.Latency.Count(), res.DeliveredInTime+res.DeliveredLate)
	}
}

// TestThreeTransmissionSession: combos of length 3 drive two chained
// retransmissions end to end.
func TestThreeTransmissionSession(t *testing.T) {
	n := core.NewNetwork(2*core.Mbps, 2*time.Second,
		core.Path{Name: "a", Bandwidth: 10 * core.Mbps, Delay: 100 * time.Millisecond, Loss: 0.4})
	n.Transmissions = 3
	sol := solve(t, n)
	// LP: (1,1,1) delivers 1−0.4³ = 0.936.
	if math.Abs(sol.Quality-(1-0.4*0.4*0.4)) > 1e-9 {
		t.Fatalf("LP quality %v", sol.Quality)
	}
	to, err := core.DeterministicTimeouts(n, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Clean ack channel (the paper's §VIII-C assumption): otherwise the
	// 40% ack loss would add spurious retransmissions on top.
	ack := LinksFromNetwork(n, 0)[0]
	ack.Name = "ack"
	ack.Loss = 0
	res := runSession(t, Config{
		Solution:     sol,
		Timeouts:     to,
		TruePaths:    LinksFromNetwork(n, 0),
		AckLink:      &ack,
		MessageCount: 8000,
	}, 43)
	if math.Abs(res.Quality()-sol.Quality) > 0.01 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
	// Retransmissions must include second retries: more than the count of
	// first-loss events alone can explain is hard to assert exactly, but
	// the ratio should be near 0.4 + 0.16 = 0.56 of generated.
	ratio := float64(res.Retransmissions) / float64(res.Generated)
	if ratio < 0.5 || ratio > 0.62 {
		t.Errorf("retransmission ratio %v, want ≈0.56", ratio)
	}
}

func TestResultStringAndQualityZero(t *testing.T) {
	var r Result
	if r.Quality() != 0 {
		t.Error("zero-value quality should be 0")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestLinksFromNetwork(t *testing.T) {
	n := core.NewNetwork(10*core.Mbps, time.Second,
		core.Path{Name: "g", Bandwidth: 5 * core.Mbps, Loss: 0.1,
			RandDelay: dist.ShiftedGamma{Loc: 50 * time.Millisecond, Shape: 4, Scale: 2 * time.Millisecond}},
		core.Path{Bandwidth: 2 * core.Mbps, Delay: 30 * time.Millisecond},
	)
	links := LinksFromNetwork(n, 0)
	if len(links) != 2 {
		t.Fatal("wrong link count")
	}
	if links[0].QueueLimit != DefaultQueueLimit {
		t.Errorf("default queue limit not applied: %d", links[0].QueueLimit)
	}
	if _, ok := links[0].Delay.(dist.ShiftedGamma); !ok {
		t.Error("RandDelay not propagated")
	}
	if d, ok := links[1].Delay.(dist.Deterministic); !ok || d.D != 30*time.Millisecond {
		t.Error("fixed delay not propagated")
	}
	unlimited := LinksFromNetwork(n, -1)
	if unlimited[0].QueueLimit != 0 {
		t.Error("negative queueLimit should mean unlimited")
	}
}

// TestDeterministicReplay: same seed, same result — byte for byte.
func TestDeterministicReplay(t *testing.T) {
	n := experiment1Network(90, 800*time.Millisecond)
	sol := solve(t, n)
	to := trueTimeouts(t)
	mk := func() *Result {
		return runSession(t, Config{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    experiment1TrueLinks(),
			MessageCount: 5000,
		}, 99)
	}
	a, b := mk(), mk()
	if *aStats(a) != *aStats(b) {
		t.Errorf("replays diverged: %v vs %v", a, b)
	}
}

// aStats projects the comparable scalar fields.
func aStats(r *Result) *[10]int {
	return &[10]int{r.Generated, r.Blackholed, r.Transmissions, r.Retransmissions,
		r.FastRetransmits, r.Expired, r.DeliveredInTime, r.DeliveredLate,
		r.Duplicates, r.AcksReceived}
}

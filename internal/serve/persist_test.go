package serve

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// stateRecord builds a minimal valid session record for persister
// tests.
func stateRecord(t *testing.T, seq uint64, id string, wire scenario.Network) *scenario.SnapshotRecord {
	t.Helper()
	rec := &scenario.SnapshotRecord{
		Version: scenario.SnapshotVersion,
		Seq:     seq,
		Kind:    scenario.RecordSession,
		Session: &scenario.SessionState{ID: id, Solve: scenario.Solve{Network: wire}},
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("test record invalid: %v", err)
	}
	return rec
}

func dropRecord(seq uint64, id string) *scenario.SnapshotRecord {
	return &scenario.SnapshotRecord{
		Version:   scenario.SnapshotVersion,
		Seq:       seq,
		Kind:      scenario.RecordDrop,
		SessionID: id,
	}
}

// TestPersisterRoundTrip pins the core journal contract: appended
// records come back at replay, highest Seq per session wins, drops
// delete, and maxSeq seeds past everything replayed.
func TestPersisterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(1, 1))
	wireA, wireB := testNetwork(rng, 2), testNetwork(rng, 3)

	p, state, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 0 {
		t.Fatalf("fresh dir restored %d sessions", len(state))
	}
	for _, rec := range []*scenario.SnapshotRecord{
		stateRecord(t, 1, "a", wireA),
		stateRecord(t, 2, "b", wireA),
		stateRecord(t, 3, "a", wireB), // supersedes seq 1
		dropRecord(4, "b"),
	} {
		if _, err := p.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	p.close()

	p2, state, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.close()
	if len(state) != 1 || state["a"] == nil {
		t.Fatalf("restored %v, want only session a", state)
	}
	if got := len(state["a"].Solve.Network.Paths); got != len(wireB.Paths) {
		t.Errorf("session a replayed the stale record: %d paths, want %d", got, len(wireB.Paths))
	}
	if p2.maxSeq.Load() != 4 {
		t.Errorf("maxSeq = %d, want 4", p2.maxSeq.Load())
	}
}

// TestPersisterTornSuffixTruncates is the crash-mid-append contract: a
// journal ending in garbage boots, keeps every intact record, truncates
// the tear, and accepts new appends afterwards.
func TestPersisterTornSuffixTruncates(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(2, 2))
	wire := testNetwork(rng, 2)

	p, _, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.append(stateRecord(t, 1, "a", wire)); err != nil {
		t.Fatal(err)
	}
	p.close()

	tears := [][]byte{
		{0xff, 0xff, 0xff},                             // torn frame header
		{0x20, 0x00, 0x00, 0x00, 1, 2, 3, 4, 'x'},      // torn payload
		{0x02, 0x00, 0x00, 0x00, 0, 0, 0, 0, 'h', 'i'}, // checksum mismatch
		{0x00, 0x00, 0x00, 0x00, 0, 0, 0, 0},           // zero-length record
	}
	for i, tear := range tears {
		jf, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.Write(tear); err != nil {
			t.Fatal(err)
		}
		jf.Close()

		p, state, _, err := openPersister(dir, 0, false)
		if err != nil {
			t.Fatalf("tear %d: boot failed: %v", i, err)
		}
		if len(state) != 1 || state["a"] == nil {
			t.Fatalf("tear %d: intact prefix lost: %v", i, state)
		}
		if p.truncatedBytes.Load() != int64(len(tear)) {
			t.Errorf("tear %d: truncated %d bytes, want %d", i, p.truncatedBytes.Load(), len(tear))
		}
		// The journal stays usable: append a fresh record on top.
		if _, err := p.append(stateRecord(t, uint64(10+i), "a", wire)); err != nil {
			t.Fatalf("tear %d: append after truncation: %v", i, err)
		}
		p.close()
	}
}

// TestPersisterSnapshotCompacts: writeSnapshot atomically replaces the
// snapshot, resets the journal, and replay prefers the higher-Seq
// journal records over a stale snapshot.
func TestPersisterSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(3, 3))
	wireA, wireB := testNetwork(rng, 2), testNetwork(rng, 3)

	p, _, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if _, err := p.append(stateRecord(t, i, "a", wireA)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.writeSnapshot([]*scenario.SnapshotRecord{stateRecord(t, 4, "a", wireA)}); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	if p.journalBytes.Load() != 0 {
		t.Errorf("journal not reset after snapshot: %d bytes", p.journalBytes.Load())
	}
	if p.snapshots.Load() != 1 {
		t.Errorf("snapshots = %d, want 1", p.snapshots.Load())
	}
	// Post-snapshot journal record must win over the snapshot at replay.
	if _, err := p.append(stateRecord(t, 5, "a", wireB)); err != nil {
		t.Fatal(err)
	}
	p.close()

	p2, state, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.close()
	if got := len(state["a"].Solve.Network.Paths); got != len(wireB.Paths) {
		t.Errorf("journal record lost to stale snapshot: %d paths, want %d", got, len(wireB.Paths))
	}
}

// TestPersisterFutureVersionRefusesBoot: an intact record from a newer
// schema is a hard boot error naming the version — truncating it would
// silently discard durable state; guessing at its layout is worse.
func TestPersisterFutureVersionRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(4, 4))

	p, _, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	future := stateRecord(t, 1, "a", testNetwork(rng, 2))
	future.Version = scenario.SnapshotVersion + 1
	if _, err := p.append(future); err != nil {
		t.Fatal(err)
	}
	p.close()

	_, _, _, err = openPersister(dir, 0, false)
	if err == nil {
		t.Fatal("future-version journal record booted")
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Errorf("error %q does not explain the version problem", err)
	}
}

// TestPersisterCorruptSnapshotRefusesBoot: the snapshot was written
// atomically, so damage there is not a torn append — boot must refuse
// rather than silently truncate compacted history.
func TestPersisterCorruptSnapshotRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := openPersister(dir, 0, false)
	if err == nil {
		t.Fatal("corrupt snapshot booted")
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("error %q does not name the snapshot", err)
	}
}

// TestPersisterFaultPoints exercises the injection seams: a write fault
// fails the append (so the caller fails the request — acknowledged
// always implies journaled), a fsync fault likewise, and a replay fault
// truncates the journal like any other unreadable suffix.
func TestPersisterFaultPoints(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(5, 5))
	wire := testNetwork(rng, 2)

	p, _, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.append(stateRecord(t, 1, "a", wire)); err != nil {
		t.Fatal(err)
	}

	fault.Activate(&fault.Plan{Seed: 11, Points: map[string][]fault.Spec{
		"persist.write": {{Kind: fault.Error, Prob: 1}},
	}})
	if _, err := p.append(stateRecord(t, 2, "a", wire)); err == nil {
		t.Error("append succeeded through a write fault")
	}
	fault.Activate(&fault.Plan{Seed: 12, Points: map[string][]fault.Spec{
		"persist.fsync": {{Kind: fault.Error, Prob: 1}},
	}})
	if _, err := p.append(stateRecord(t, 3, "a", wire)); err == nil {
		t.Error("append succeeded through a fsync fault")
	}
	fault.Deactivate()
	if p.journalErrors.Load() != 2 {
		t.Errorf("journalErrors = %d, want 2", p.journalErrors.Load())
	}
	p.close()

	fault.Activate(&fault.Plan{Seed: 13, Points: map[string][]fault.Spec{
		"persist.replay": {{Kind: fault.Error, Prob: 1}},
	}})
	defer fault.Deactivate()
	p2, state, _, err := openPersister(dir, 0, false)
	if err != nil {
		t.Fatalf("replay fault must degrade to truncation, not fail boot: %v", err)
	}
	defer p2.close()
	if len(state) != 0 {
		t.Errorf("replay fault at the first record should restore nothing, got %v", state)
	}
}

// TestRetryAfterJitter pins the backoff hint's two properties: bounded
// ([1,30] whole seconds, spread across callers instead of one
// synchronized value) and deterministic (a fresh shard replays the
// identical sequence).
func TestRetryAfterJitter(t *testing.T) {
	mkShard := func() *shard {
		sh := &shard{reqs: make(chan *task, 256)}
		for i := 0; i < 200; i++ {
			sh.reqs <- &task{}
			sh.met.observe(80*time.Millisecond, true, false)
		}
		return sh
	}
	s := &Server{}
	sh := mkShard()
	seen := map[int]bool{}
	seq := make([]int, 64)
	for i := range seq {
		v := s.retryAfter(sh)
		if v < 1 || v > 30 {
			t.Fatalf("retryAfter = %d outside [1,30]", v)
		}
		seen[v] = true
		seq[i] = v
	}
	if len(seen) < 2 {
		t.Errorf("no jitter: every hint was %v", seq[0])
	}
	sh2 := mkShard()
	for i := range seq {
		if v := s.retryAfter(sh2); v != seq[i] {
			t.Fatalf("hint %d: %d != %d — jitter must be deterministic", i, v, seq[i])
		}
	}
}

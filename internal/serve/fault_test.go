package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"math/rand/v2"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// always builds a single-point plan that fires kind on every hit.
func always(point string, kind fault.Kind, latency time.Duration) *fault.Plan {
	return &fault.Plan{Seed: 1, Points: map[string][]fault.Spec{
		point: {{Kind: kind, Prob: 1, Latency: latency}},
	}}
}

// metricsFor fetches and decodes /metrics.
func metricsFor(t *testing.T, base string) Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return m
}

func sumShards(m Metrics, f func(ShardMetrics) uint64) uint64 {
	var total uint64
	for _, sm := range m.Shards {
		total += f(sm)
	}
	return total
}

// TestSolverPanicIsolatedAndQuarantined: an injected panic mid-warm-
// resolve must answer 500 (typed solver panic), leave the shard worker
// alive, quarantine the session's solver (next solve cold but correct),
// and let the session warm back up afterwards.
func TestSolverPanicIsolatedAndQuarantined(t *testing.T) {
	defer fault.Deactivate()
	srv, base := newTestServer(t, Config{Shards: 1, BatchWindow: -1})
	rng := rand.New(rand.NewPCG(0xfa01, 1))
	wire := testNetwork(rng, 3)

	// Prime the session warm.
	solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s1"})
	wire = driftWire(rng, wire, 0.05)
	if got := solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s1"}); !got.Result.Warm {
		t.Fatal("session did not warm up before the fault")
	}

	fault.Activate(always("core.resolve.warm", fault.Panic, 0))
	wire = driftWire(rng, wire, 0.05)
	status, body := postJSON(t, base+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s1"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking solve status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "solver panic") {
		t.Fatalf("500 body does not name the panic: %s", body)
	}
	fault.Deactivate()

	// The shard worker survived and the poisoned warm state is gone:
	// next solve runs cold and matches a fresh library solve.
	got := solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s1"})
	if got.Result.Warm {
		t.Fatal("post-panic solve reported warm; quarantine did not discard the poisoned solver")
	}
	ref, err := core.SolveQuality(toCore(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if gap := ref.Quality - got.Result.Quality; gap > 1e-6 || gap < -1e-6 {
		t.Fatalf("post-panic quality %v vs reference %v", got.Result.Quality, ref.Quality)
	}

	wire = driftWire(rng, wire, 0.05)
	if got := solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s1"}); !got.Result.Warm {
		t.Fatal("session did not re-warm after quarantine")
	}

	if m := srv.Metrics(); sumShards(m, func(sm ShardMetrics) uint64 { return sm.Panics }) == 0 {
		t.Error("panics metric did not count the recovered panic")
	}
}

// TestBudgetExpiredShed: tasks whose budget_ms runs out while queued
// behind a slow wave are shed with 504 + Retry-After, before solver
// work, and counted in shed_expired.
func TestBudgetExpiredShed(t *testing.T) {
	defer fault.Deactivate()
	srv, base := newTestServer(t, Config{Shards: 1, BatchWindow: -1, MaxBatch: 1})
	rng := rand.New(rand.NewPCG(0xfa02, 1))
	wire := testNetwork(rng, 2)

	fault.Activate(always("serve.exec", fault.Latency, 300*time.Millisecond))
	const n = 4
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := scenario.SolveRequest{Solve: scenario.Solve{Network: wire}}
			req.SessionID = "budget"
			req.BudgetMs = 50
			statuses[i], _ = postJSON(t, base+"/v1/solve", req)
		}(i)
		// Stagger so the first request occupies the (MaxBatch=1) wave
		// and the rest age in the queue past their budgets.
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	fault.Deactivate()

	var ok, expired int
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusGatewayTimeout:
			expired++
		default:
			t.Fatalf("unexpected status %d (want 200 or 504)", st)
		}
	}
	if ok == 0 || expired == 0 {
		t.Fatalf("want a mix of served and shed tasks, got %d ok / %d expired", ok, expired)
	}
	if m := srv.Metrics(); sumShards(m, func(sm ShardMetrics) uint64 { return sm.ShedExpired }) != uint64(expired) {
		t.Errorf("shed_expired metric %d, want %d", sumShards(m, func(sm ShardMetrics) uint64 { return sm.ShedExpired }), expired)
	}
}

// TestBreakerTripsAndRecovers walks a shard breaker through its whole
// cycle: consecutive 500s trip it open (fast 503 + Retry-After, healthz
// unhealthy), the cooldown admits a half-open probe, and a clean probe
// closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	defer fault.Deactivate()
	srv, base := newTestServer(t, Config{
		Shards: 1, BatchWindow: -1,
		BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond,
	})
	rng := rand.New(rand.NewPCG(0xfa03, 1))
	wire := testNetwork(rng, 2)
	req := scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "brk"}

	fault.Activate(always("serve.exec", fault.Error, 0))
	for i := 0; i < 3; i++ {
		if st, body := postJSON(t, base+"/v1/solve", req); st != http.StatusInternalServerError {
			t.Fatalf("fault %d: status %d (%s), want 500", i, st, body)
		}
	}

	// Tripped: fail fast with Retry-After, no queue occupancy.
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 has no Retry-After")
	}
	m := srv.Metrics()
	if m.Shards[0].BreakerState != "open" || m.Shards[0].BreakerOpenTotal != 1 {
		t.Fatalf("breaker metrics %+v, want open/1", m.Shards[0])
	}
	if hr, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz with every breaker open: %d, want 503", hr.StatusCode)
		}
	}

	// Heal the solver, wait out the cooldown: the half-open probe
	// succeeds and closes the breaker.
	fault.Deactivate()
	time.Sleep(150 * time.Millisecond)
	solveOK(t, base, req)
	if m := srv.Metrics(); m.Shards[0].BreakerState != "closed" {
		t.Fatalf("breaker state %q after a clean probe, want closed", m.Shards[0].BreakerState)
	}
	if hr, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz after recovery: %d, want 200", hr.StatusCode)
		}
	}
}

// TestBreakerServesDegraded: with ServeDegraded on, an open breaker
// answers a known session from its last good strategy, marked
// "degraded", instead of a 503 — and still 503s sessions with no
// history.
func TestBreakerServesDegraded(t *testing.T) {
	defer fault.Deactivate()
	srv, base := newTestServer(t, Config{
		Shards: 1, BatchWindow: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Hour, // stays open for the whole test
		ServeDegraded: true,
	})
	rng := rand.New(rand.NewPCG(0xfa04, 1))
	wire := testNetwork(rng, 3)
	req := scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "deg"}

	good := solveOK(t, base, req)

	fault.Activate(always("serve.exec", fault.Error, 0))
	for i := 0; i < 2; i++ {
		if st, _ := postJSON(t, base+"/v1/solve", req); st != http.StatusInternalServerError {
			t.Fatalf("fault %d did not 500", i)
		}
	}
	fault.Deactivate()

	status, body := postJSON(t, base+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("degraded solve status %d: %s", status, body)
	}
	var resp scenario.SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Resolved || resp.Result == nil {
		t.Fatalf("want a degraded unsolved response, got %s", body)
	}
	if resp.Result.Quality != good.Result.Quality {
		t.Errorf("degraded quality %v, want the last good %v", resp.Result.Quality, good.Result.Quality)
	}

	// A session with no history still gets the honest 503.
	fresh := scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "nohistory"}
	if st, _ := postJSON(t, base+"/v1/solve", fresh); st != http.StatusServiceUnavailable {
		t.Fatalf("no-history session under open breaker: status %d, want 503", st)
	}

	if m := srv.Metrics(); m.Shards[0].DegradedServed != 1 {
		t.Errorf("degraded_served %d, want 1", m.Shards[0].DegradedServed)
	}
}

// TestAbandonedTasksShed: a client that disconnects while its task
// queues must not cost a solve; the wave sheds it and counts abandoned.
func TestAbandonedTasksShed(t *testing.T) {
	defer fault.Deactivate()
	srv, base := newTestServer(t, Config{Shards: 1, BatchWindow: -1, MaxBatch: 1})
	rng := rand.New(rand.NewPCG(0xfa05, 1))
	wire := testNetwork(rng, 2)

	fault.Activate(always("serve.exec", fault.Latency, 300*time.Millisecond))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, base+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "slow"})
	}()
	time.Sleep(30 * time.Millisecond) // the slow task is now mid-exec

	// This request queues behind it, then its client walks away.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/solve",
		strings.NewReader(mustJSON(t, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "gone"})))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if _, err := http.DefaultClient.Do(hreq); err == nil {
		t.Fatal("abandoned request unexpectedly completed")
	}
	wg.Wait()
	fault.Deactivate()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := sumShards(srv.Metrics(), func(sm ShardMetrics) uint64 { return sm.Abandoned }); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned task was never shed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBudgetValidation rejects malformed budget_ms values up front.
func TestBudgetValidation(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 1})
	rng := rand.New(rand.NewPCG(0xfa06, 1))
	wire := testNetwork(rng, 2)
	req := scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, BudgetMs: -5}
	if st, body := postJSON(t, base+"/v1/solve", req); st != http.StatusBadRequest {
		t.Fatalf("budget_ms=-5 status %d (%s), want 400", st, body)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

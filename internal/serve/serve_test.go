package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/estimate"
	"dmc/internal/scenario"
)

// testNetwork builds a deterministic-delay wire network with the given
// path count.
func testNetwork(rng *rand.Rand, paths int) scenario.Network {
	n := scenario.Network{
		LifetimeMs:    150,
		Transmissions: 2,
	}
	var total float64
	for i := 0; i < paths; i++ {
		bw := 1 + 2*rng.Float64()
		total += bw
		n.Paths = append(n.Paths, scenario.Path{
			Name:          fmt.Sprintf("p%d", i),
			BandwidthMbps: bw,
			DelayMs:       20 + 60*rng.Float64(),
			Loss:          0.01 + 0.09*rng.Float64(),
			Cost:          0.5 + rng.Float64(),
		})
	}
	n.RateMbps = 0.6 * total
	return n
}

// driftWire perturbs loss and bandwidth by up to ±maxRel, keeping the
// same shape so session solvers stay warm.
func driftWire(rng *rand.Rand, n scenario.Network, maxRel float64) scenario.Network {
	out := n
	out.Paths = append([]scenario.Path(nil), n.Paths...)
	rel := func() float64 { return 1 + maxRel*(2*rng.Float64()-1) }
	for i := range out.Paths {
		out.Paths[i].Loss = math.Min(0.5, out.Paths[i].Loss*rel())
		out.Paths[i].BandwidthMbps *= rel()
	}
	return out
}

func toCore(t *testing.T, n scenario.Network) *core.Network {
	t.Helper()
	cn, err := n.ToNetwork()
	if err != nil {
		t.Fatalf("ToNetwork: %v", err)
	}
	return cn
}

// postJSON posts body to url and returns the status plus decoded body.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func solveOK(t *testing.T, base string, req scenario.SolveRequest) scenario.SolveResponse {
	t.Helper()
	status, body := postJSON(t, base+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("/v1/solve status %d: %s", status, body)
	}
	var resp scenario.SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.Result == nil {
		t.Fatalf("solve response has no result: %s", body)
	}
	return resp
}

func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts.URL
}

// TestServeFleetDrift drives a 64-session fleet over HTTP through
// solve → drift → re-solve rounds with concurrent requests (so waves
// coalesce), asserting every optimum matches a per-session library
// Resolve trajectory to 1e-6 and that every re-solve after the first
// round is served warm from the session's keyed solver.
func TestServeFleetDrift(t *testing.T) {
	srv, base := newTestServer(t, Config{Shards: 4, BatchWindow: time.Millisecond})
	rng := rand.New(rand.NewPCG(7, 1))

	const fleet = 64
	nets := make([]scenario.Network, fleet)
	refs := make([]*core.Solver, fleet)
	for i := range nets {
		nets[i] = testNetwork(rng, 2+i%3)
		refs[i] = core.NewSolver()
	}

	for round := 0; round < 4; round++ {
		want := make([]float64, fleet)
		for i := range nets {
			if round > 0 {
				nets[i] = driftWire(rng, nets[i], 0.25)
			}
			sol, err := refs[i].Resolve(toCore(t, nets[i]))
			if err != nil {
				t.Fatalf("round %d session %d reference: %v", round, i, err)
			}
			want[i] = sol.Quality
		}

		got := make([]scenario.SolveResponse, fleet)
		errs := make([]error, fleet)
		var wg sync.WaitGroup
		for i := 0; i < fleet; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				status, body := postJSON(t, base+"/v1/solve", scenario.SolveRequest{
					Solve:     scenario.Solve{Network: nets[i]},
					SessionID: fmt.Sprintf("fleet-%03d", i),
				})
				if status != http.StatusOK {
					errs[i] = fmt.Errorf("status %d: %s", status, body)
					return
				}
				errs[i] = json.Unmarshal(body, &got[i])
			}(i)
		}
		wg.Wait()

		for i := 0; i < fleet; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d session %d: %v", round, i, errs[i])
			}
			r := got[i].Result
			if math.Abs(r.Quality-want[i]) > 1e-6 {
				t.Errorf("round %d session %d quality %.9f, library Resolve %.9f", round, i, r.Quality, want[i])
			}
			if round > 0 && !r.Warm {
				t.Errorf("round %d session %d re-solve was not warm", round, i)
			}
		}
	}

	if n := srv.Sessions(); n != fleet {
		t.Errorf("Sessions() = %d, want %d", n, fleet)
	}
	m := srv.Metrics()
	var waves, solves uint64
	for _, sm := range m.Shards {
		waves += sm.Waves
		solves += sm.Solves
	}
	if solves != 4*fleet {
		t.Errorf("metrics count %d solves, want %d", solves, 4*fleet)
	}
	if waves >= solves {
		t.Errorf("no coalescing: %d waves for %d solves", waves, solves)
	}
	if m.Sessions != fleet {
		t.Errorf("metrics report %d sessions, want %d", m.Sessions, fleet)
	}
}

// TestServeObjectives checks all three objectives round-trip over HTTP
// with results matching the library entry points.
func TestServeObjectives(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 1})
	rng := rand.New(rand.NewPCG(11, 2))
	wire := testNetwork(rng, 3)
	net := toCore(t, wire)

	t.Run("quality one-shot", func(t *testing.T) {
		want, err := core.SolveQuality(net)
		if err != nil {
			t.Fatal(err)
		}
		resp := solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}})
		if math.Abs(resp.Result.Quality-want.Quality) > 1e-6 {
			t.Errorf("quality %.9f, library %.9f", resp.Result.Quality, want.Quality)
		}
		if !resp.Resolved || resp.SessionID != "" {
			t.Errorf("one-shot response: resolved=%v session=%q", resp.Resolved, resp.SessionID)
		}
	})

	t.Run("mincost session", func(t *testing.T) {
		floor := 0.9 * mustQuality(t, net)
		want, err := core.SolveMinCost(net, floor)
		if err != nil {
			t.Fatal(err)
		}
		resp := solveOK(t, base, scenario.SolveRequest{
			Solve:     scenario.Solve{Network: wire, Objective: scenario.ObjectiveMinCost, MinQuality: floor},
			SessionID: "obj-mincost",
		})
		if math.Abs(resp.Result.CostPerSecond-want.Cost()) > 1e-6*math.Max(1, want.Cost()) {
			t.Errorf("cost %.9f, library %.9f", resp.Result.CostPerSecond, want.Cost())
		}
		if resp.Result.Quality < floor-1e-9 {
			t.Errorf("served quality %.9f below floor %.9f", resp.Result.Quality, floor)
		}
	})

	t.Run("random session", func(t *testing.T) {
		gwire := wire
		gwire.Paths = append([]scenario.Path(nil), wire.Paths...)
		for i := range gwire.Paths {
			gwire.Paths[i].DelayMs = 0
			gwire.Paths[i].DelayGamma = &scenario.Gamma{LocMs: 10 + 5*float64(i), Shape: 2, ScaleMs: 6}
		}
		gnet := toCore(t, gwire)
		spec := scenario.TimeoutSpec{GridStepMs: 5, RefineLevels: 2, ConvolutionNodes: 200}
		to, err := core.OptimalTimeouts(gnet, spec.Options())
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.SolveQualityRandom(gnet, to)
		if err != nil {
			t.Fatal(err)
		}
		resp := solveOK(t, base, scenario.SolveRequest{
			Solve:     scenario.Solve{Network: gwire, Objective: scenario.ObjectiveRandom, Timeout: &spec},
			SessionID: "obj-random",
		})
		if math.Abs(resp.Result.Quality-want.Quality) > 1e-6 {
			t.Errorf("quality %.9f, library %.9f", resp.Result.Quality, want.Quality)
		}
		if len(resp.Result.TimeoutsMs) == 0 {
			t.Error("random objective response carries no timeout table")
		}
	})
}

func mustQuality(t *testing.T, n *core.Network) float64 {
	t.Helper()
	sol, err := core.SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	return sol.Quality
}

// TestServeEstimator drives a session estimator feed over HTTP and
// checks it against a reference estimate.Adaptor fed identically.
func TestServeEstimator(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 1})
	rng := rand.New(rand.NewPCG(3, 9))
	wire := testNetwork(rng, 3)

	ref, err := estimate.NewAdaptor(toCore(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	refSol, _, err := ref.Solution()
	if err != nil {
		t.Fatal(err)
	}

	resp := solveOK(t, base, scenario.SolveRequest{
		Solve:     scenario.Solve{Network: wire},
		SessionID: "est-1",
		Estimator: true,
	})
	if math.Abs(resp.Result.Quality-refSol.Quality) > 1e-6 {
		t.Errorf("estimator bootstrap quality %.9f, reference %.9f", resp.Result.Quality, refSol.Quality)
	}

	observe := func(obs []scenario.PathObservation) scenario.SolveResponse {
		t.Helper()
		status, body := postJSON(t, base+"/v1/observe", scenario.ObserveRequest{SessionID: "est-1", Paths: obs})
		if status != http.StatusOK {
			t.Fatalf("/v1/observe status %d: %s", status, body)
		}
		var out scenario.SolveResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	feedRef := func(obs []scenario.PathObservation) (*core.Solution, bool) {
		t.Helper()
		for _, p := range obs {
			for i := 0; i < p.Sent; i++ {
				ref.ObserveSend(p.Path)
			}
			for i := 0; i < p.Lost; i++ {
				ref.ObserveLoss(p.Path)
			}
			for _, ms := range p.RTTMs {
				ref.ObserveRTT(p.Path, time.Duration(ms*float64(time.Millisecond)))
			}
		}
		sol, resolved, err := ref.Solution()
		if err != nil {
			t.Fatal(err)
		}
		return sol, resolved
	}

	// Heavy loss on path 0 must drift the estimate and trigger a warm
	// re-solve; a tiny follow-up batch must not.
	for step, obs := range [][]scenario.PathObservation{
		{{Path: 0, Sent: 400, Lost: 120, RTTMs: []float64{40, 44, 39}}, {Path: 1, Sent: 400, Lost: 8}},
		{{Path: 1, Sent: 2, Lost: 0}},
	} {
		got := observe(obs)
		wantSol, wantResolved := feedRef(obs)
		if got.Resolved != wantResolved {
			t.Errorf("step %d resolved=%v, reference %v", step, got.Resolved, wantResolved)
		}
		if math.Abs(got.Result.Quality-wantSol.Quality) > 1e-6 {
			t.Errorf("step %d quality %.9f, reference %.9f", step, got.Result.Quality, wantSol.Quality)
		}
	}

	// Estimator preconditions.
	status, _ := postJSON(t, base+"/v1/solve", scenario.SolveRequest{
		Solve: scenario.Solve{Network: wire}, Estimator: true,
	})
	if status != http.StatusBadRequest {
		t.Errorf("estimator without session: status %d, want 400", status)
	}
	status, _ = postJSON(t, base+"/v1/solve", scenario.SolveRequest{
		Solve:     scenario.Solve{Network: wire, Objective: scenario.ObjectiveMinCost},
		SessionID: "est-2", Estimator: true,
	})
	if status != http.StatusBadRequest {
		t.Errorf("estimator with mincost: status %d, want 400", status)
	}
	status, _ = postJSON(t, base+"/v1/observe", scenario.ObserveRequest{
		SessionID: "nobody", Paths: []scenario.PathObservation{{Path: 0, Sent: 1}},
	})
	if status != http.StatusNotFound {
		t.Errorf("observe unknown session: status %d, want 404", status)
	}
	status, _ = postJSON(t, base+"/v1/observe", scenario.ObserveRequest{
		SessionID: "est-1", Paths: []scenario.PathObservation{{Path: 99, Sent: 1}},
	})
	if status != http.StatusBadRequest {
		t.Errorf("observe out-of-range path: status %d, want 400", status)
	}

	// A plain solve supersedes the feed: observe now reports 409.
	solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "est-1"})
	status, _ = postJSON(t, base+"/v1/observe", scenario.ObserveRequest{
		SessionID: "est-1", Paths: []scenario.PathObservation{{Path: 0, Sent: 1}},
	})
	if status != http.StatusConflict {
		t.Errorf("observe after plain solve: status %d, want 409", status)
	}
}

// TestServeObserveHugeCounts checks observation counts fold in O(1):
// an unauthenticated body with astronomically large sent/lost counts
// must answer immediately (not spin a core under the session mutex)
// and feed the estimator exactly as the equivalent count-based calls.
func TestServeObserveHugeCounts(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 1})
	rng := rand.New(rand.NewPCG(19, 6))
	wire := testNetwork(rng, 2)

	ref, err := estimate.NewAdaptor(toCore(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.Solution(); err != nil {
		t.Fatal(err)
	}

	solveOK(t, base, scenario.SolveRequest{
		Solve:     scenario.Solve{Network: wire},
		SessionID: "huge",
		Estimator: true,
	})

	const sent, lost = 1 << 60, 1 << 58
	start := time.Now()
	status, body := postJSON(t, base+"/v1/observe", scenario.ObserveRequest{
		SessionID: "huge",
		Paths:     []scenario.PathObservation{{Path: 0, Sent: sent, Lost: lost}},
	})
	if status != http.StatusOK {
		t.Fatalf("huge-count observe: status %d: %s", status, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("huge-count observe took %v; counts must not buy per-unit work", elapsed)
	}
	var got scenario.SolveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	ref.ObserveSends(0, sent)
	ref.ObserveLosses(0, lost)
	refSol, refResolved, err := ref.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if got.Resolved != refResolved {
		t.Errorf("resolved=%v, reference %v", got.Resolved, refResolved)
	}
	if math.Abs(got.Result.Quality-refSol.Quality) > 1e-6 {
		t.Errorf("quality %.9f, reference %.9f", got.Result.Quality, refSol.Quality)
	}
}

// TestSolveStatus pins the error→status mapping: client-caused verdicts
// are 4xx, unrecognized (server-side) failures are 500.
func TestSolveStatus(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrapped: %w", core.ErrInfeasible), http.StatusUnprocessableEntity},
		{core.ErrRandomNeedsTwoTransmissions, http.StatusUnprocessableEntity},
		{errDropped, http.StatusGone},
		{errClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("core: solving LP: numerical breakdown"), http.StatusInternalServerError},
	} {
		if got := solveStatus(tc.err); got != tc.want {
			t.Errorf("solveStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestEnqueueAfterClose checks the admission gate: an enqueue racing
// past a handler's closed check still fails with errClosed once Close
// has run, rather than parking a task no worker will ever execute.
func TestEnqueueAfterClose(t *testing.T) {
	srv, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Close()
	tk := &task{done: make(chan taskResult, 1)}
	if err := srv.enqueue(srv.shards[0], tk); err != errClosed {
		t.Fatalf("enqueue after Close: err=%v, want errClosed", err)
	}
}

// TestServeGracefulShutdown checks Close drains in-flight waves: every
// request admitted before Close still gets its solution, and requests
// after Close get 503.
func TestServeGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Shards: 1, BatchWindow: 200 * time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewPCG(5, 5))
	wire := testNetwork(rng, 3)

	const n = 8
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{
				Solve:     scenario.Solve{Network: wire},
				SessionID: fmt.Sprintf("drain-%d", i),
			})
		}(i)
	}
	// Give the requests time to be admitted into the (still-collecting)
	// wave, then shut down: the wave must cut its window short and
	// drain, not abandon the admitted tasks.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the waves drained")
	}

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("request %d admitted before Close got status %d: %s", i, st, bodies[i])
		}
	}

	status, _ := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}})
	if status != http.StatusServiceUnavailable {
		t.Errorf("solve after Close: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close: status %d, want 503", resp.StatusCode)
	}
	srv.Close() // idempotent
}

// TestServeAdmission saturates a 1-deep queue with slow cold solves and
// checks backpressure: 429s with a Retry-After header, a rejected
// counter on /metrics, and no hung or dropped requests.
func TestServeAdmission(t *testing.T) {
	srv, base := newTestServer(t, Config{Shards: 1, MaxQueue: 1, MaxBatch: 1, BatchWindow: -1})
	rng := rand.New(rand.NewPCG(13, 4))
	wire := testNetwork(rng, 7)
	wire.Transmissions = 3

	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	var retryAfter string
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(scenario.SolveRequest{
				Solve:     scenario.Solve{Network: wire},
				SessionID: fmt.Sprintf("sat-%d", i),
			})
			resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter = resp.Header.Get("Retry-After")
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != n {
		t.Fatalf("unexpected status mix: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Skip("queue never saturated on this machine; admission path not exercised")
	}
	if retryAfter == "" {
		t.Error("429 response missing Retry-After header")
	}
	m := srv.Metrics()
	if m.Shards[0].Rejected == 0 {
		t.Error("metrics report zero rejected despite 429 responses")
	}
	if int(m.Shards[0].Solves) != counts[http.StatusOK] {
		t.Errorf("metrics count %d solves, want %d", m.Shards[0].Solves, counts[http.StatusOK])
	}
}

// TestServeHTTPErrors covers the remaining error mappings.
func TestServeHTTPErrors(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 1})
	rng := rand.New(rand.NewPCG(17, 8))
	wire := testNetwork(rng, 2)

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := post(`{not json`); st != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", st)
	}
	if st := post(`{"network": {}, "objective": "maximize-vibes"}`); st != http.StatusBadRequest {
		t.Errorf("unknown objective: status %d, want 400", st)
	}
	if st := post(`{"network": {"rate_mbps": -1}}`); st != http.StatusBadRequest {
		t.Errorf("invalid network: status %d, want 400", st)
	}

	// Unattainable quality floor: the solver's infeasibility verdict
	// surfaces as 422.
	status, body := postJSON(t, base+"/v1/solve", scenario.SolveRequest{
		Solve: scenario.Solve{Network: wire, Objective: scenario.ObjectiveMinCost, MinQuality: 1},
	})
	if status != http.StatusUnprocessableEntity {
		t.Errorf("infeasible floor: status %d, want 422 (%s)", status, body)
	}
	var eresp scenario.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error == "" {
		t.Errorf("422 body is not an error document: %s", body)
	}

	// Session drop: 204, and the session is gone from the registry.
	solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "gone"})
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/session/gone", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE session: status %d, want 204", resp.StatusCode)
	}
	status, _ = postJSON(t, base+"/v1/observe", scenario.ObserveRequest{
		SessionID: "gone", Paths: []scenario.PathObservation{{Path: 0, Sent: 1}},
	})
	if status != http.StatusNotFound {
		t.Errorf("observe dropped session: status %d, want 404", status)
	}
	// A dropped session can be re-created by its next solve.
	solveOK(t, base, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "gone"})

	// Metrics endpoint round-trips.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if len(m.Shards) != 1 || m.Shards[0].Solves == 0 || m.UptimeSec <= 0 {
		t.Errorf("implausible metrics: %+v", m)
	}
}

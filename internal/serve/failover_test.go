package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dmc/internal/estimate"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// failoverIters is how many kill-9/promote cycles TestFailoverFleet
// runs: 2 by default (tier-1 keeps this test cheap), raised via
// DMC_FAILOVER_ITERS by `make chaos-failover`.
func failoverIters(t *testing.T) int {
	if s := os.Getenv("DMC_FAILOVER_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("DMC_FAILOVER_ITERS=%q is not a positive integer", s)
		}
		return n
	}
	return 2
}

// failoverStorm arms the replication seams alongside PR 9's durability
// and solver seams: failed sends stall polls (the follower retries),
// failed applies drop chunks before they touch the follower's journal
// (the retry re-requests the same chunk), and the primary keeps
// serving — or failing honestly — through all of it.
func failoverStorm(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Points: map[string][]fault.Spec{
			"persist.write": {{Kind: fault.Error, Prob: 0.10}},
			"repl.send":     {{Kind: fault.Error, Prob: 0.15}},
			"repl.apply":    {{Kind: fault.Error, Prob: 0.15}},
			"serve.exec": {
				{Kind: fault.Error, Prob: 0.10},
				{Kind: fault.Latency, Prob: 0.10, Latency: time.Millisecond},
			},
			"core.resolve.warm": {{Kind: fault.Error, Prob: 0.15}},
		},
	}
}

// newTestFollower attaches a follower to a primary's test server with
// timings tuned for tests (fast retries, short polls).
func newTestFollower(t *testing.T, primaryURL, dir string) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerConfig{
		Primary:       primaryURL,
		StateDir:      dir,
		ID:            filepath.Base(dir),
		PollWait:      500 * time.Millisecond,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	return f
}

// waitSynced blocks until the follower's cursor reaches the primary's
// journal tail (it has durably applied everything the primary holds).
func waitSynced(t *testing.T, srv *Server, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cur := srv.persist.cursor()
		f.cm.Lock()
		got := f.cursor
		f.cm.Unlock()
		if got.atOrPast(cur) {
			return
		}
		if err := f.Err(); err != nil && f.Fenced() {
			t.Fatalf("follower fenced while syncing: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to the primary (follower err: %v)", f.Err())
}

// TestFailoverFleet is the replication tentpole: a primary in sync-ack
// mode streams to a hot standby while estimator and plain sessions run
// under load; the primary is hard-killed mid-fault-storm, the standby
// is promoted, and the promoted server must
//
//   - hold every estimator session's counters EXACTLY equal to an
//     uninterrupted reference adaptor fed the acknowledged
//     observations — across the node loss,
//   - hold every plain session's binding at exactly the last
//     acknowledged solve (zero acked-write loss: in sync mode a 2xx
//     means a follower held the record durably before the client heard
//     about it),
//   - not resurrect a session whose drop was acknowledged,
//   - fence the dead primary's stale incarnation when it comes back
//     (higher-epoch polls answer 409), and
//   - fold that stale node back in as a follower via a reset transfer
//     that discards its divergent unacknowledged suffix,
//
// then repeat, promoting the rejoined node back in the next cycle.
func TestFailoverFleet(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	cfg := Config{
		Shards:      2,
		BatchWindow: time.Millisecond,
		// Small threshold so compactions — and the follower reset
		// transfers they force — happen for real during the test.
		SnapshotBytes:  16 << 10,
		ReplAck:        ReplAckSync,
		ReplAckTimeout: 10 * time.Second,
	}
	rng := rand.New(rand.NewPCG(42, 107))

	const nEst, nPlain = 6, 6
	ests := make([]*estSession, nEst)
	for i := range ests {
		wire := testNetwork(rng, 3)
		ref, err := estimate.NewAdaptor(toCore(t, wire))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = &estSession{id: fmt.Sprintf("est-%d", i), wire: wire, ref: ref}
	}
	plainID := func(i int) string { return fmt.Sprintf("plain-%d", i) }
	// lastAcked tracks, per plain session, the network of its last 200;
	// unacked the wires sent since that were answered 5xx. Zero
	// acked-write loss means the promoted server's binding is the last
	// acknowledged solve OR a later unacknowledged one — a failed write
	// may still survive (its record can be locally journaled, or a
	// compaction can capture the in-memory state it left, before the
	// crash), but the binding must never roll back past an ack. Only the
	// (single-goroutine) storm driver touches tracked sessions, so both
	// sets are well-defined.
	lastAcked := make(map[string]scenario.Network)
	unacked := make(map[string][]scenario.Network)

	primaryCfg := cfg
	primaryCfg.StateDir = dirA
	srv, err := New(primaryCfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	fol := newTestFollower(t, ts.URL, dirB)
	folDir := dirB

	for _, e := range ests {
		solveOK(t, ts.URL, scenario.SolveRequest{
			Solve: scenario.Solve{Network: e.wire}, SessionID: e.id, Estimator: true,
		})
	}
	for i := 0; i < nPlain; i++ {
		w := testNetwork(rng, 3)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: w}, SessionID: plainID(i)})
		lastAcked[plainID(i)] = w
	}

	for cycle := 0; cycle < failoverIters(t); cycle++ {
		// Estimator traffic runs fault-free (same reasoning as
		// TestCrashRestartFleet: handleObserve folds counters in before
		// the poll is journaled, so the references mirror acknowledged
		// observations only when every observe is acknowledged). Sync
		// mode makes each 200 mean "the follower holds this durably".
		for round := 0; round < 3; round++ {
			for _, e := range ests {
				obs := randomObs(rng, len(e.wire.Paths))
				status, body := postJSON(t, ts.URL+"/v1/observe", scenario.ObserveRequest{SessionID: e.id, Paths: obs})
				if status != http.StatusOK {
					t.Fatalf("cycle %d observe %s: status %d: %s", cycle, e.id, status, body)
				}
				mirrorObs(e.ref, obs)
			}
		}

		// An acknowledged drop must be as durable as an acknowledged
		// solve: the promoted server must not resurrect the victim.
		victim := fmt.Sprintf("victim-%d", cycle)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: lastAcked[plainID(0)]}, SessionID: victim})
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+victim, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s: status %d", victim, resp.StatusCode)
		}

		// Fault storm over tracked plain sessions: solves that 200 are
		// recorded as acknowledged; 5xx (including sync-ack failures
		// injected via repl.send/repl.apply) are not.
		fault.Activate(failoverStorm(2000 + uint64(cycle)))
		for i := 0; i < 30; i++ {
			pi := rng.IntN(nPlain)
			w := driftWire(rng, lastAcked[plainID(pi)], 0.05)
			status, body := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{
				Solve: scenario.Solve{Network: w}, SessionID: plainID(pi),
			})
			switch {
			case status == http.StatusOK:
				lastAcked[plainID(pi)] = w
				unacked[plainID(pi)] = nil
			case status >= 500:
				unacked[plainID(pi)] = append(unacked[plainID(pi)], w)
			default:
				t.Fatalf("cycle %d storm solve: unexpected status %d: %s", cycle, status, body)
			}
		}

		// kill -9 mid-storm, with untracked concurrent load racing the
		// crash (their sessions are asserted by nobody; they exist to
		// make the crash land mid-wave).
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				body, _ := json.Marshal(scenario.SolveRequest{
					Solve:     scenario.Solve{Network: ests[0].wire},
					SessionID: fmt.Sprintf("load-%d", g),
				})
				for j := 0; j < 10; j++ {
					resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}(g)
		}
		time.Sleep(2 * time.Millisecond)
		srv.crash()
		wg.Wait()
		ts.Close()
		fault.Deactivate()
		staleEpoch := srv.Epoch()
		staleDir := primaryCfg.StateDir

		// Promote the standby. The new primary replays everything the
		// follower durably applied and stamps epoch+1 into a snapshot
		// before serving.
		promoteCfg := cfg
		newSrv, err := fol.Promote(promoteCfg)
		if err != nil {
			t.Fatalf("cycle %d promote: %v", cycle, err)
		}
		if newSrv.Epoch() <= staleEpoch {
			t.Fatalf("cycle %d: promoted epoch %d did not pass the stale primary's %d", cycle, newSrv.Epoch(), staleEpoch)
		}
		newTS := httptest.NewServer(newSrv.Handler())

		// The dead node comes back with its old state dir — including
		// any unacknowledged records it journaled after the last
		// replication poll. As a primary it must be fenced: a poll
		// carrying the new epoch answers 409, never journal bytes.
		stale, err := New(Config{Shards: 1, BatchWindow: -1, StateDir: staleDir})
		if err != nil {
			t.Fatalf("cycle %d: stale primary reboot: %v", cycle, err)
		}
		staleTS := httptest.NewServer(stale.Handler())
		fenceURL := fmt.Sprintf("%s/v1/replicate?gen=0&off=0&epoch=%d&id=fence-probe", staleTS.URL, newSrv.Epoch())
		fresp, err := http.Get(fenceURL)
		if err != nil {
			t.Fatal(err)
		}
		fbody, _ := readAllBody(fresp)
		if fresp.StatusCode != http.StatusConflict {
			t.Fatalf("cycle %d: stale primary answered a newer-epoch poll with %d (want 409): %s", cycle, fresp.StatusCode, fbody)
		}
		if stale.Metrics().Replication.FencedPolls == 0 {
			t.Errorf("cycle %d: stale primary counted no fenced polls", cycle)
		}
		stale.crash()
		staleTS.Close()

		// Rejoin the stale node as a follower of the new primary: its
		// first poll takes a reset transfer that discards the divergent
		// suffix and replaces it with the new primary's history.
		fol = newTestFollower(t, newTS.URL, staleDir)
		waitSynced(t, newSrv, fol)
		if fol.Metrics().Resets == 0 {
			t.Errorf("cycle %d: rejoined stale primary took no reset transfer", cycle)
		}

		// Zero acked-write loss: every estimator session's counters are
		// bit-exact against the uninterrupted reference, every plain
		// session's binding is exactly the last acknowledged solve, and
		// the acknowledged drop stayed dropped.
		for _, e := range ests {
			se := newSrv.lookupSession(e.id)
			if se == nil || se.adaptor == nil {
				t.Fatalf("cycle %d: estimator session %s not on the promoted primary", cycle, e.id)
			}
			got, want := se.adaptor.State(), e.ref.State()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cycle %d: session %s estimates diverged across failover\n got %+v\nwant %+v", cycle, e.id, got, want)
			}
		}
		for id, w := range lastAcked {
			se := newSrv.lookupSession(id)
			if se == nil {
				t.Fatalf("cycle %d: plain session %s lost across failover", cycle, id)
			}
			se.mu.Lock()
			got, err := json.Marshal(se.binding.Network)
			se.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			match := bytes.Equal(got, want)
			for _, c := range unacked[id] {
				if match {
					break
				}
				cw, err := json.Marshal(c)
				if err != nil {
					t.Fatal(err)
				}
				match = bytes.Equal(got, cw)
			}
			if !match {
				t.Errorf("cycle %d: session %s binding rolled back past the last acknowledged solve\n got %s\nlast acked %s", cycle, id, got, want)
			}
		}
		if newSrv.lookupSession(victim) != nil {
			t.Errorf("cycle %d: acknowledged drop %s resurrected across failover", cycle, victim)
		}

		// The rejoined follower's replicated state must match too: its
		// reset transfer replaced the divergent suffix with exactly the
		// promoted primary's history.
		for _, e := range ests {
			fol.smu.RLock()
			st := fol.state[e.id]
			fol.smu.RUnlock()
			if st == nil {
				t.Fatalf("cycle %d: rejoined follower missing session %s", cycle, e.id)
			}
			if got, want := st.Estimates, estimatesToWire(e.ref.State()); !reflect.DeepEqual(got, want) {
				t.Fatalf("cycle %d: rejoined follower estimates for %s diverged\n got %+v\nwant %+v", cycle, e.id, got, want)
			}
		}

		// Sync acks flow through the new pair: a poll on the promoted
		// primary must 200, which in sync mode means the rejoined
		// follower acked its record.
		status, body := postJSON(t, newTS.URL+"/v1/observe", scenario.ObserveRequest{SessionID: ests[0].id})
		if status != http.StatusOK {
			t.Fatalf("cycle %d: sync-acked poll on promoted primary: status %d: %s", cycle, status, body)
		}

		// Roles swap for the next cycle.
		srv, ts = newSrv, newTS
		primaryCfg.StateDir, folDir = folDir, staleDir
		_ = folDir
	}

	fol.Close()
	ts.Close()
	srv.Close()
}

func readAllBody(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

// TestSyncAckRequiresFollower: sync mode with no follower connected
// must fail writes (the record is locally durable, but "acknowledged
// means replicated" cannot be honored) and report the condition on
// /healthz — while async mode under the same topology acknowledges
// normally.
func TestSyncAckRequiresFollower(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		Shards: 1, BatchWindow: -1, StateDir: dir,
		ReplAck: ReplAckSync, ReplAckTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	rng := rand.New(rand.NewPCG(5, 5))
	wire := testNetwork(rng, 2)
	status, body := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{
		Solve: scenario.Solve{Network: wire}, SessionID: "s",
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("sync-mode solve with no follower: status %d (want 500): %s", status, body)
	}
	if !strings.Contains(string(body), "no follower acknowledged") {
		t.Errorf("sync-ack failure should say why: %s", body)
	}
	if n := srv.Metrics().Replication.SyncTimeouts; n == 0 {
		t.Error("sync-ack timeout not counted")
	}

	hstatus, hbody := getJSON(t, ts.URL+"/healthz")
	if hstatus != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", hstatus, hbody)
	}
	if !strings.Contains(string(hbody), "no follower connected") {
		t.Errorf("/healthz should report sync replication without followers: %s", hbody)
	}

	// The failed write is nonetheless locally durable: the record hit
	// the journal before the ack wait began, so a restart restores the
	// session. The 500 reported replication, not persistence.
	ts.Close()
	srv.crash()
	srv2, err := New(Config{Shards: 1, BatchWindow: -1, StateDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	if srv2.lookupSession("s") == nil {
		t.Error("sync-ack-failed write was not locally durable")
	}
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAllBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, []byte(body)
}

// TestFollowerFencesStalePrimary: a follower that has seen epoch E
// stops following any primary announcing less. The fence must trip
// before anything touches the follower's journal.
func TestFollowerFencesStalePrimary(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 3))
	wire := testNetwork(rng, 2)

	// A primary with one session, and a follower that syncs from it.
	dirA := t.TempDir()
	srvA, err := New(Config{Shards: 1, BatchWindow: -1, StateDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	solveOK(t, tsA.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})

	dirF := t.TempDir()
	fol := newTestFollower(t, tsA.URL, dirF)
	waitSynced(t, srvA, fol)

	// Promotion bumps the epoch and stamps it into the follower's state
	// dir; the old primary keeps running, stale.
	srvB, err := fol.Promote(Config{Shards: 1, BatchWindow: -1})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if srvB.Epoch() != srvA.Epoch()+1 {
		t.Fatalf("promoted epoch %d, want %d", srvB.Epoch(), srvA.Epoch()+1)
	}
	srvB.crash()

	// A follower booted from the promoted state dir knows the new
	// epoch. Pointed at the stale primary, it must fence — the stale
	// primary 409s its poll — and stop, journaling nothing.
	preBytes := journalSize(t, dirF)
	fol2 := newTestFollower(t, tsA.URL, dirF)
	deadline := time.Now().Add(10 * time.Second)
	for !fol2.Fenced() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !fol2.Fenced() {
		t.Fatalf("follower did not fence the stale primary (err: %v)", fol2.Err())
	}
	if got := journalSize(t, dirF); got != preBytes {
		t.Errorf("fenced follower's journal changed: %d -> %d bytes", preBytes, got)
	}
	if srvA.Metrics().Replication.FencedPolls == 0 {
		t.Error("stale primary counted no fenced polls")
	}

	// The fenced state is visible on the follower's health endpoint.
	ftsURL := httptest.NewServer(fol2.Handler())
	hstatus, hbody := getJSON(t, ftsURL.URL+"/healthz")
	if hstatus != http.StatusOK || !strings.Contains(string(hbody), "fenced") {
		t.Errorf("fenced follower /healthz = %d %s; want 200 mentioning fenced", hstatus, hbody)
	}
	ftsURL.Close()

	fol2.Close()
	tsA.Close()
	srvA.Close()
}

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	return fi.Size()
}

// TestFollowerServesDegraded: a healthy follower answers solve
// requests for replicated sessions from their last-good results,
// marked degraded, and refuses writes.
func TestFollowerServesDegraded(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	wire := testNetwork(rng, 2)

	srv, err := New(Config{Shards: 1, BatchWindow: -1, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	want := solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})

	fol := newTestFollower(t, ts.URL, t.TempDir())
	waitSynced(t, srv, fol)
	fts := httptest.NewServer(fol.Handler())

	status, body := postJSON(t, fts.URL+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})
	if status != http.StatusOK {
		t.Fatalf("follower solve: status %d: %s", status, body)
	}
	var resp scenario.SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Resolved || resp.Result == nil {
		t.Fatalf("follower answer should be degraded+unresolved with a result: %s", body)
	}
	if resp.Result.Quality != want.Result.Quality {
		t.Errorf("follower served quality %v, primary acknowledged %v", resp.Result.Quality, want.Result.Quality)
	}

	status, body = postJSON(t, fts.URL+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "unknown"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("follower solve for unreplicated session: status %d (want 503): %s", status, body)
	}
	status, body = postJSON(t, fts.URL+"/v1/observe", scenario.ObserveRequest{SessionID: "s"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("follower observe: status %d (want 503): %s", status, body)
	}

	fts.Close()
	fol.Close()
	ts.Close()
	srv.Close()
}

// TestCompactionFsyncFaultKeepsJournal (satellite): a fault-injected
// fsync failure during threshold-triggered background compaction must
// abandon the snapshot cleanly — no snapshot file appears, no tmp file
// survives, the journal is NOT truncated (it stays the authoritative
// record), serving continues, and a later fault-free compaction
// succeeds. JournalNoSync keeps append-path fsyncs out of the picture,
// so the armed persist.fsync seam fires only inside the snapshot path.
func TestCompactionFsyncFaultKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 1, BatchWindow: -1, StateDir: dir,
		SnapshotBytes: 4 << 10, JournalNoSync: true,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	fault.Activate(&fault.Plan{Seed: 1, Points: map[string][]fault.Spec{
		"persist.fsync": {{Kind: fault.Error, Prob: 1}},
	}})

	rng := rand.New(rand.NewPCG(13, 2))
	wire := testNetwork(rng, 3)
	// Drive appends well past the threshold; each crossing spawns a
	// background compaction that must fail at its first fsync and leave
	// the journal alone.
	for i := 0; srv.persist.journalBytes.Load() < 3*cfg.SnapshotBytes; i++ {
		wire = driftWire(rng, wire, 0.05)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})
		if i > 10_000 {
			t.Fatal("journal never crossed the compaction threshold")
		}
	}
	// Wait out any in-flight compaction attempt, then check nothing
	// snapshot-shaped happened.
	for deadline := time.Now().Add(5 * time.Second); srv.persist.snapshotting.Load() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if n := srv.persist.snapshots.Load(); n != 0 {
		t.Fatalf("%d snapshots succeeded with fsync faulted", n)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Errorf("snapshot file exists after abandoned compaction (stat err: %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Errorf("snapshot tmp file leaked by abandoned compaction (stat err: %v)", err)
	}
	if got := srv.persist.journalBytes.Load(); got < 3*cfg.SnapshotBytes {
		t.Errorf("journal was truncated (%d bytes) despite the abandoned snapshot", got)
	}
	// Serving continued throughout (the solves above all 200'd); the
	// journal is still authoritative: a crash right now restores the
	// last acknowledged binding.
	lastWire := wire

	// Fault cleared: the next threshold crossing compacts for real.
	fault.Deactivate()
	wire = driftWire(rng, wire, 0.05)
	solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})
	lastWire = wire
	for deadline := time.Now().Add(5 * time.Second); srv.persist.snapshots.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if srv.persist.snapshots.Load() == 0 {
		t.Fatal("no compaction succeeded after the fsync fault cleared")
	}

	ts.Close()
	srv.crash()
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	se := srv2.lookupSession("s")
	if se == nil {
		t.Fatal("session not restored")
	}
	se.mu.Lock()
	got, err := json.Marshal(se.binding.Network)
	se.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(lastWire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restored binding is not the last acknowledged solve\n got %s\nwant %s", got, want)
	}
}

// TestHealthzDegradesOnDurabilityTrouble (satellite): /healthz must
// surface journal errors and replication lag past the threshold — 200
// (the node still serves) with a status that says what is wrong.
func TestHealthzDegradesOnDurabilityTrouble(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{Shards: 1, BatchWindow: -1, StateDir: dir, ReplLagWarn: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	rng := rand.New(rand.NewPCG(21, 2))
	wire := testNetwork(rng, 2)
	solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})

	// A connected follower that stops polling: its lag grows past the
	// threshold as new writes land.
	fol := newTestFollower(t, ts.URL, t.TempDir())
	waitSynced(t, srv, fol)
	fol.Close()
	for i := 0; i < 6; i++ {
		wire = driftWire(rng, wire, 0.05)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})
	}
	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "replication lag") {
		t.Errorf("/healthz should report replication lag over threshold: %s", body)
	}

	// Journal errors degrade too.
	fault.Activate(&fault.Plan{Seed: 1, Points: map[string][]fault.Spec{
		"persist.write": {{Kind: fault.Error, Prob: 1}},
	}})
	if st, _ := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{
		Solve: scenario.Solve{Network: driftWire(rng, wire, 0.05)}, SessionID: "s",
	}); st != http.StatusInternalServerError {
		t.Fatalf("solve with faulted journal: status %d, want 500", st)
	}
	fault.Deactivate()
	status, body = getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), "journal errors") {
		t.Errorf("/healthz should report journal errors: %d %s", status, body)
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dmc/internal/core"
	"dmc/internal/scenario"
)

// maxBodyBytes bounds request bodies; a network description is a few KB
// even at fleet scale.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/solve        solve (one-shot, session-keyed, or estimator)
//	POST   /v1/observe      feed estimator measurements, re-solve on drift
//	DELETE /v1/session/{id} drop a session
//	GET    /v1/replicate    follower journal stream (persistence only)
//	GET    /metrics         per-shard metrics snapshot
//	GET    /healthz         liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleDrop)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.persist != nil {
		mux.HandleFunc("GET /v1/replicate", s.handleReplicate)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, scenario.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses a request body into dst (unknown fields rejected),
// writing a 400 itself on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := scenario.Load(http.MaxBytesReader(w, r.Body, maxBodyBytes), dst); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

// submit admits the task (or replies 429) and waits for its result (or
// the client's departure). A nil result means the response is already
// written.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, sh *shard, t *task) *taskResult {
	t.done = make(chan taskResult, 1)
	t.enq = time.Now()
	switch err := s.enqueue(sh, t); {
	case err == nil:
	case errors.Is(err, errClosed):
		writeErr(w, http.StatusServiceUnavailable, "serve: shutting down")
		return nil
	case errors.Is(err, errBreakerOpen):
		// Hand the breaker verdict back as a result so the handler can
		// choose between 503 + Retry-After and a degraded last-good
		// answer.
		return &taskResult{err: errBreakerOpen}
	default:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(sh)))
		writeErr(w, http.StatusTooManyRequests, "serve: shard %d queue full", sh.idx)
		return nil
	}
	select {
	case res := <-t.done:
		return &res
	case <-r.Context().Done():
		// The client is gone: mark the task so the wave sheds it without
		// solver work. The buffered done send cannot block either way.
		t.abandoned.Store(true)
		return nil
	}
}

// solveStatus maps a solve error to its HTTP status. Only verdicts the
// client caused (an unattainable request on the network it supplied)
// are 4xx; anything unrecognized is a server fault and must say so, or
// client retry logic backs off a request that could never succeed — and
// retries one that might.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInfeasible),
		errors.Is(err, core.ErrRandomNeedsTwoTransmissions):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errDropped):
		return http.StatusGone
	case errors.Is(err, errClosed), errors.Is(err, errBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, errExpired):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// isServerFault reports whether err should count against the shard's
// circuit breaker: only genuine solver-side 500s do. Client-caused
// verdicts (4xx), shed/abandoned tasks, and shutdown are not evidence
// the solver is unhealthy.
func isServerFault(err error) bool {
	if err == nil {
		return false
	}
	return solveStatus(err) == http.StatusInternalServerError
}

// writeSolveErr writes a solve error with its mapped status, attaching
// Retry-After to the verdicts that carry one (breaker open, expired
// budget).
func (s *Server) writeSolveErr(w http.ResponseWriter, sh *shard, err error) {
	status := solveStatus(err)
	switch {
	case errors.Is(err, errBreakerOpen):
		secs := int(s.cfg.BreakerCooldown / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, errExpired):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(sh)))
	}
	writeErr(w, status, "%v", err)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "serve: shutting down")
		return
	}
	var req scenario.SolveRequest
	if !decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj, _ := req.ObjectiveKind()
	if req.Estimator {
		if req.SessionID == "" {
			writeErr(w, http.StatusBadRequest, "serve: estimator requires a session_id")
			return
		}
		if obj != scenario.ObjectiveQuality {
			writeErr(w, http.StatusBadRequest, "serve: estimator supports only the quality objective, not %q", obj)
			return
		}
	}
	net, err := req.Network.ToNetwork()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	t := &task{
		kind:       taskSolve,
		estimator:  req.Estimator,
		net:        net,
		objective:  obj,
		minQuality: req.MinQuality,
		deadline:   s.deadlineFor(req.BudgetMs),
		wire:       &req.Solve,
	}
	if req.Timeout != nil {
		t.toOpts = req.Timeout.Options()
	}
	var sh *shard
	if req.SessionID != "" {
		t.sess = s.sessionFor(req.SessionID)
		sh = t.sess.sh
	} else {
		sh = s.shards[s.oneShotRR.Add(1)%uint64(len(s.shards))]
	}
	res := s.submit(w, r, sh, t)
	if res == nil {
		return
	}
	if errors.Is(res.err, errBreakerOpen) && s.cfg.ServeDegraded && t.sess != nil {
		// The breaker protects capacity, not correctness: a stale
		// strategy for a drifting network usually beats no strategy, so
		// opt-in degraded mode answers from the session's last good
		// solve while the shard recovers.
		if lg := t.sess.lastGoodResult(); lg != nil {
			sh.met.degraded.Add(1)
			writeJSON(w, http.StatusOK, scenario.SolveResponse{
				SessionID: req.SessionID,
				Resolved:  false,
				Result:    lg,
				Degraded:  true,
			})
			return
		}
	}
	if res.err != nil {
		s.writeSolveErr(w, sh, res.err)
		return
	}
	writeJSON(w, http.StatusOK, scenario.SolveResponse{
		SessionID: req.SessionID,
		Resolved:  res.resolved,
		Result:    &res.res,
	})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "serve: shutting down")
		return
	}
	var req scenario.ObserveRequest
	if !decode(w, r, &req) {
		return
	}
	if req.SessionID == "" {
		writeErr(w, http.StatusBadRequest, "serve: observe requires a session_id")
		return
	}
	se := s.lookupSession(req.SessionID)
	if se == nil {
		writeErr(w, http.StatusNotFound, "serve: unknown session %q", req.SessionID)
		return
	}

	// Feed the observations before enqueuing the poll, so the poll's
	// drift check sees them no matter how waves interleave.
	se.mu.Lock()
	ad := se.adaptor
	if ad == nil || se.dropped {
		se.mu.Unlock()
		writeErr(w, http.StatusConflict, "serve: session %q has no estimator feed (solve with \"estimator\": true first)", req.SessionID)
		return
	}
	nPaths := len(ad.EstimatedNetwork().Paths)
	for _, p := range req.Paths {
		if p.Path < 0 || p.Path >= nPaths {
			se.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "serve: path index %d outside the session's %d paths", p.Path, nPaths)
			return
		}
		if p.Sent < 0 || p.Lost < 0 || p.Lost > p.Sent {
			se.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "serve: path %d needs 0 <= lost <= sent, got sent=%d lost=%d", p.Path, p.Sent, p.Lost)
			return
		}
		// Counts fold in O(1): client-supplied magnitudes must never
		// buy per-unit work while se.mu is held.
		ad.ObserveSends(p.Path, p.Sent)
		ad.ObserveLosses(p.Path, p.Lost)
		for _, ms := range p.RTTMs {
			ad.ObserveRTT(p.Path, time.Duration(ms*float64(time.Millisecond)))
		}
	}
	se.mu.Unlock()

	res := s.submit(w, r, se.sh, &task{kind: taskPoll, sess: se, deadline: s.deadlineFor(0)})
	if res == nil {
		return
	}
	if res.err != nil {
		s.writeSolveErr(w, se.sh, res.err)
		return
	}
	writeJSON(w, http.StatusOK, scenario.SolveResponse{
		SessionID: req.SessionID,
		Resolved:  res.resolved,
		Result:    &res.res,
	})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	// Durability before acknowledgement, same as solves: a drop whose
	// journal append failed answers 500 (the breaker fault is counted in
	// DropSession), and the client retries until the 204 means it.
	if err := s.DropSession(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "serve: shutting down")
		return
	}
	// A single open breaker degrades one shard; every breaker open means
	// no request can be served at all — that is a liveness failure.
	breakers := make([]string, len(s.shards))
	allOpen := len(s.shards) > 0
	for i, sh := range s.shards {
		st := sh.brk.snapshot()
		breakers[i] = st.String()
		if st != breakerOpen {
			allOpen = false
		}
	}
	body := map[string]any{"status": "ok", "breakers": breakers}
	if allOpen {
		body["status"] = "unhealthy: every shard breaker open"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	// Durability trouble degrades (200, but the status says so — load
	// balancers keep routing, operators get paged): failed journal
	// appends mean writes are being refused, and replication lag past
	// the threshold means a failover now would lose that much
	// acknowledged state in async mode.
	var trouble []string
	if p := s.persist; p != nil {
		if n := p.journalErrors.Load(); n > 0 {
			trouble = append(trouble, fmt.Sprintf("%d journal errors", n))
		}
		trouble = append(trouble, s.repl.replHealth()...)
	}
	if len(trouble) > 0 {
		body["status"] = "degraded: " + strings.Join(trouble, "; ")
	}
	writeJSON(w, http.StatusOK, body)
}

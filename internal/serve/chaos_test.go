package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"math/rand/v2"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// postJSONClient is postJSON on a caller-supplied client (the chaos
// test uses a hard client timeout so a hung request fails loudly
// instead of stalling the test).
func postJSONClient(t *testing.T, c *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// chaosIters returns the fault-storm iteration count: a few by default
// (tier-1 keeps this test cheap), raised via DMC_CHAOS_ITERS by `make
// chaos-smoke`.
func chaosIters(t *testing.T) int {
	if s := os.Getenv("DMC_CHAOS_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("DMC_CHAOS_ITERS=%q is not a positive integer", s)
		}
		return n
	}
	return 3
}

// stormPlan arms every registered injection seam at once: errors at the
// warm-path fallback seams, panics at the resolve and exec seams, and
// latency in exec — seeded per iteration so each storm differs but
// every run of the test replays the same storms.
func stormPlan(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Points: map[string][]fault.Spec{
			"lp.warm.install":   {{Kind: fault.Error, Prob: 0.3}},
			"lp.append":         {{Kind: fault.Error, Prob: 0.3}},
			"core.cg.reprice":   {{Kind: fault.Error, Prob: 0.25}},
			"core.resolve.warm": {{Kind: fault.Panic, Prob: 0.08}, {Kind: fault.Error, Prob: 0.25}},
			"serve.exec": {
				{Kind: fault.Panic, Prob: 0.04},
				{Kind: fault.Error, Prob: 0.12},
				{Kind: fault.Latency, Prob: 0.15, Latency: time.Millisecond},
			},
		},
	}
}

// TestChaosFleetSurvivesFaultStorms is the tentpole invariant test: a
// 64-session drifting fleet served through repeated randomized fault
// storms (panics, errors, latency at every registered seam), asserting
// after every storm that
//
//   - the process and every shard worker survive (requests keep
//     completing),
//   - no request hangs (every HTTP call returns within its client
//     timeout),
//   - every 200 is optimal to 1e-6 against an independent cold solve,
//     and every failure is an honest 4xx/5xx,
//   - the fleet returns to warm serving once the storm passes, and
//   - Close still drains cleanly with no goroutine leak.
func TestChaosFleetSurvivesFaultStorms(t *testing.T) {
	defer fault.Deactivate()
	iters := chaosIters(t)

	srv, err := New(Config{
		Shards: 2, BatchWindow: time.Millisecond,
		BreakerThreshold: 6, BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{Timeout: 30 * time.Second}
	base := ts.URL

	const fleet = 64
	rng := rand.New(rand.NewPCG(0xc4a05, 7))
	wires := make([]scenario.Network, fleet)
	for i := range wires {
		wires[i] = testNetwork(rng, 2+i%3)
	}
	sessionID := func(i int) string { return "chaos-" + strconv.Itoa(i) }
	post := func(i int) (int, scenario.SolveResponse) {
		t.Helper()
		req := scenario.SolveRequest{Solve: scenario.Solve{Network: wires[i]}, SessionID: sessionID(i)}
		req.BudgetMs = 20_000
		status, body := postJSONClient(t, client, base+"/v1/solve", req)
		var resp scenario.SolveResponse
		if status == http.StatusOK {
			mustUnmarshal(t, body, &resp)
		}
		return status, resp
	}

	// Round 0, faults off: establish every session.
	for i := 0; i < fleet; i++ {
		if status, _ := post(i); status != http.StatusOK {
			t.Fatalf("session %d failed to establish: %d", i, status)
		}
	}

	for iter := 1; iter <= iters; iter++ {
		for i := range wires {
			wires[i] = driftWire(rng, wires[i], 0.06)
		}

		// The storm: every seam armed, fleet re-solved concurrently.
		fault.Activate(stormPlan(uint64(iter)))
		type outcome struct {
			status  int
			quality float64
		}
		outcomes := make([]outcome, fleet)
		done := make(chan int, fleet)
		for i := 0; i < fleet; i++ {
			go func(i int) {
				defer func() { done <- i }()
				status, resp := post(i)
				outcomes[i] = outcome{status: status}
				if status == http.StatusOK {
					outcomes[i].quality = resp.Result.Quality
				}
			}(i)
		}
		for i := 0; i < fleet; i++ {
			<-done
		}
		fault.Deactivate()

		// Every response honest: a 200 must be optimal to 1e-6 against
		// an independent cold solve of the same drifted network; every
		// failure must be a deliberate verdict, never a mangled result.
		for i, oc := range outcomes {
			switch oc.status {
			case http.StatusOK:
				ref, err := core.SolveQuality(toCore(t, wires[i]))
				if err != nil {
					t.Fatal(err)
				}
				if gap := ref.Quality - oc.quality; gap > 1e-6 || gap < -1e-6 {
					t.Fatalf("iter %d session %d: served %v under faults, reference %v", iter, i, oc.quality, ref.Quality)
				}
			case http.StatusInternalServerError, http.StatusServiceUnavailable,
				http.StatusGatewayTimeout, http.StatusTooManyRequests:
				// Honest failure.
			default:
				t.Fatalf("iter %d session %d: dishonest status %d", iter, i, oc.status)
			}
		}

		// Recovery: with faults off every session must serve again
		// (breakers close after their cooldown probes).
		deadline := time.Now().Add(10 * time.Second)
		for i := 0; i < fleet; i++ {
			for {
				status, _ := post(i)
				if status == http.StatusOK {
					break
				}
				if status != http.StatusServiceUnavailable || time.Now().After(deadline) {
					t.Fatalf("iter %d session %d: stuck at %d after the storm", iter, i, status)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}

		// Warm recovery: one clean drift round after the storm, the
		// majority of the fleet must be back on warm state despite any
		// quarantines the storm caused.
		for i := range wires {
			wires[i] = driftWire(rng, wires[i], 0.06)
		}
		warm := 0
		for i := 0; i < fleet; i++ {
			status, resp := post(i)
			if status != http.StatusOK {
				t.Fatalf("iter %d session %d: clean round failed with %d", iter, i, status)
			}
			if resp.Result.Warm {
				warm++
			}
		}
		if warm < fleet/2 {
			t.Fatalf("iter %d: only %d/%d warm after the storm; warm-hit rate did not recover", iter, warm, fleet)
		}
	}

	// Close drains and leaks nothing.
	client.CloseIdleConnections()
	before := runtime.NumGoroutine()
	ts.Close()
	srv.Close()
	for i := 0; i < 200 && runtime.NumGoroutine() >= before; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after >= before {
		t.Errorf("goroutines %d -> %d across Close; shard workers leaked", before, after)
	}
}

// Replication: streaming the durability journal to hot-standby
// followers, so an acknowledged session state survives not just a
// process crash (PR 9's journal) but the loss of the node.
//
// Topology: pull-based. A follower long-polls the primary's
// GET /v1/replicate from its durable journal position (gen, off); the
// primary answers with a chunk of whole CRC32 frames, a 204 when the
// follower is caught up, or — when the position is not addressable in
// the current journal incarnation (the follower is new, diverged, or
// the primary compacted) — a full snapshot+journal reset transfer. The
// poll position doubles as the acknowledgement: a follower only
// advances its cursor after the chunk is fsync'd into its own journal,
// so the primary reading "poll at (g, o)" knows everything before
// (g, o) is durable on that follower.
//
// Ack modes: async (default) acknowledges writes once locally
// journaled; sync withholds the 2xx until at least one follower's
// cursor passes the record — "acknowledged means replicated". A
// sync-mode timeout fails the request even though the record is
// locally durable: the operator asked for replicated durability, and
// reporting less would be a lie.
//
// Fencing: every record carries its writing primary's epoch
// (scenario.SnapshotRecord.Epoch, schema v2). Promotion bumps the
// epoch and durably stamps it (a full snapshot at the new epoch), so
// after a partition heals, a stale primary's stream is identifiable:
// a follower that saw epoch E rejects any primary announcing less
// (ErrFenced), and a primary 409s any poll carrying more — the stale
// side must rejoin as a follower, taking a reset transfer that
// discards its divergent suffix instead of merging it.
//
// Lock discipline: replication network IO never runs under Server.smu
// or a session mutex. The sender reads journal bytes under the
// persister's own mutex (that mutex exists to serialize file IO) and
// writes to the network after release; the follower parses and
// validates a chunk before touching its own journal.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// Replication acknowledgement modes (Config.ReplAck).
const (
	ReplAckAsync = "async"
	ReplAckSync  = "sync"
)

// The replication layer's injection seams: the primary's send path
// (chunk and reset-transfer responses), the follower's apply path
// (between receiving a chunk and persisting it), and promotion's
// epoch-stamping snapshot.
var (
	fpReplSend    = fault.Register("repl.send")
	fpReplApply   = fault.Register("repl.apply")
	fpReplPromote = fault.Register("repl.promote")
)

// ErrFenced reports a fenced replication stream: the primary announced
// an epoch older than one this follower has already seen, so the
// primary is a stale pre-failover survivor and must not be followed.
var ErrFenced = errors.New("serve: replication stream fenced: primary epoch is stale")

const (
	// maxReplWait caps a replication long-poll, whatever the follower
	// asked for.
	maxReplWait = 30 * time.Second
	// staleFollowerAfter is how long a silent follower stays in the
	// primary's follower table (and its lag in /healthz) before it is
	// presumed gone and pruned.
	staleFollowerAfter = 60 * time.Second
	// maxReplBody bounds a follower's read of one replication response.
	// A chunk is at most maxReplChunk; a reset transfer carries a full
	// snapshot, which at millions of sessions is large but nowhere near
	// this.
	maxReplBody = 1 << 30
)

// Replication response headers. The gen/off pair is the follower's
// next poll position once it has durably applied the body.
const (
	hdrGen     = "X-Dmc-Gen"
	hdrOff     = "X-Dmc-Off"
	hdrRecs    = "X-Dmc-Recs"
	hdrEpoch   = "X-Dmc-Epoch"
	hdrReset   = "X-Dmc-Reset"
	hdrSnapLen = "X-Dmc-Snapshot-Len"
)

// followerInfo is the primary's view of one follower: its durable
// position (the last poll's cursor), applied record count, fencing
// epoch, and when it was last heard from.
type followerInfo struct {
	id       string
	pos      replPos
	recs     int64
	epoch    uint64
	lastSeen time.Time
}

// ackWaiter parks one sync-mode append until a follower's cursor
// passes pos.
type ackWaiter struct {
	pos replPos
	ch  chan struct{}
}

// replState is the primary's replication bookkeeping: the follower
// table and the sync-ack high-water mark with its waiters.
type replState struct {
	s *Server

	mu        sync.Mutex
	followers map[string]*followerInfo
	// acked is the replicated high-water mark: the maximum position any
	// follower has durably reached. Any-replica acknowledgement — sync
	// mode promises one surviving copy, not a quorum (see ROADMAP
	// follow-ons).
	acked   replPos
	waiters map[*ackWaiter]struct{}

	stopped  chan struct{}
	stopOnce sync.Once

	chunksServed atomic.Uint64
	resetsServed atomic.Uint64
	syncTimeouts atomic.Uint64
	fencedPolls  atomic.Uint64
}

func newReplState(s *Server) *replState {
	return &replState{
		s:         s,
		followers: make(map[string]*followerInfo),
		waiters:   make(map[*ackWaiter]struct{}),
		stopped:   make(chan struct{}),
	}
}

// shutdown releases every sync-ack waiter and future waits; their
// records are locally durable, only the replication confirmation is
// abandoned.
func (r *replState) shutdown() {
	r.stopOnce.Do(func() { close(r.stopped) })
}

// observeFollower folds one poll into the follower table and advances
// the acked high-water mark, waking satisfied sync waiters. No IO runs
// under r.mu.
func (r *replState) observeFollower(id string, pos replPos, recs int64, epoch uint64) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.followers[id]
	if f == nil {
		f = &followerInfo{id: id}
		r.followers[id] = f
	}
	f.pos, f.recs, f.epoch, f.lastSeen = pos, recs, epoch, now
	if pos.atOrPast(r.acked) {
		r.acked = pos
	}
	for w := range r.waiters {
		if r.acked.atOrPast(w.pos) {
			close(w.ch)
			delete(r.waiters, w)
		}
	}
}

// waitAcked blocks a sync-mode append until a follower durably holds
// pos, the ack timeout passes, or the server stops. In async mode it
// returns immediately. A non-nil error means the caller must fail its
// request: the record is journaled locally, but "acknowledged means
// replicated" could not be honored.
func (r *replState) waitAcked(pos replPos) error {
	if r.s.cfg.ReplAck != ReplAckSync {
		return nil
	}
	r.mu.Lock()
	if r.acked.atOrPast(pos) {
		r.mu.Unlock()
		return nil
	}
	w := &ackWaiter{pos: pos, ch: make(chan struct{})}
	r.waiters[w] = struct{}{}
	r.mu.Unlock()

	t := time.NewTimer(r.s.cfg.ReplAckTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-r.stopped:
		r.drop(w)
		return fmt.Errorf("serve: shutting down before a follower acknowledged the write (locally durable, replication unconfirmed)")
	case <-t.C:
		r.syncTimeouts.Add(1)
		r.drop(w)
		return fmt.Errorf("serve: no follower acknowledged the write within %v (locally durable, replication unconfirmed)", r.s.cfg.ReplAckTimeout)
	}
}

func (r *replState) drop(w *ackWaiter) {
	r.mu.Lock()
	delete(r.waiters, w)
	r.mu.Unlock()
}

// appendDurable is the write path's single durability call: journal the
// record locally (fsync per Config), then — in sync mode — hold the
// acknowledgement until a follower has it too. A compaction between the
// append and the ack satisfies the wait naturally: it bumps the journal
// gen, the follower takes a reset transfer whose snapshot contains the
// record's state, and the follower's new-gen cursor passes the old-gen
// position by definition (atOrPast).
func (s *Server) appendDurable(rec *scenario.SnapshotRecord) error {
	pos, err := s.persist.append(rec)
	if err != nil {
		return err
	}
	if s.repl != nil {
		return s.repl.waitAcked(pos)
	}
	return nil
}

// lagSnapshot computes per-follower replication lag against the current
// journal tail, pruning followers silent past staleFollowerAfter. The
// persister cursor is read before taking r.mu — the two locks never
// nest.
func (r *replState) lagSnapshot() []ReplFollowerMetrics {
	cur := r.s.persist.cursor()
	curRecs := r.s.persist.recordsInGen()
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReplFollowerMetrics, 0, len(r.followers))
	for id, f := range r.followers {
		if now.Sub(f.lastSeen) > staleFollowerAfter {
			delete(r.followers, id)
			continue
		}
		m := ReplFollowerMetrics{
			ID:         f.id,
			Epoch:      f.epoch,
			LastSeenMs: float64(now.Sub(f.lastSeen)) / float64(time.Millisecond),
		}
		if f.pos.gen == cur.gen {
			m.LagBytes = cur.off - f.pos.off
			m.LagRecords = curRecs - f.recs
		} else {
			// A cursor from another incarnation: the next poll takes a
			// reset transfer, so the whole current journal is outstanding.
			m.Resync = true
			m.LagBytes = cur.off
			m.LagRecords = curRecs
		}
		out = append(out, m)
	}
	return out
}

// replHealth reports replication trouble for /healthz: the worst
// follower lag over Config.ReplLagWarn, or — in sync mode — no
// followers connected at all (every write is failing its ack wait).
func (r *replState) replHealth() []string {
	var out []string
	lags := r.lagSnapshot()
	if len(lags) == 0 {
		if r.s.cfg.ReplAck == ReplAckSync {
			out = append(out, "sync replication with no follower connected")
		}
		return out
	}
	if warn := r.s.cfg.ReplLagWarn; warn > 0 {
		for _, f := range lags {
			if f.LagBytes > warn {
				out = append(out, fmt.Sprintf("follower %q replication lag %d bytes (threshold %d)", f.ID, f.LagBytes, warn))
			}
		}
	}
	return out
}

// handleReplicate is the primary's side of the stream: one long-poll
// from one follower. Registered only when persistence is on.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "serve: shutting down")
		return
	}
	q := r.URL.Query()
	gen, _ := strconv.ParseUint(q.Get("gen"), 10, 64)
	off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
	recs, _ := strconv.ParseInt(q.Get("recs"), 10, 64)
	fepoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
	waitMs, _ := strconv.Atoi(q.Get("wait_ms"))
	id := q.Get("id")
	if id == "" {
		id = r.RemoteAddr
	}
	if fepoch > s.epoch {
		// The poller has seen a newer primary than us: we are the stale
		// survivor of a failover. Refuse to serve — feeding our divergent
		// journal to the fleet is exactly what fencing exists to prevent.
		s.repl.fencedPolls.Add(1)
		writeErr(w, http.StatusConflict,
			"serve: replication poll carries epoch %d, newer than this primary's %d; this primary is fenced and must rejoin as a follower", fepoch, s.epoch)
		return
	}
	if err := fpReplSend.Hit(); err != nil {
		writeErr(w, http.StatusInternalServerError, "serve: replication send: %v", err)
		return
	}
	pos := replPos{gen: gen, off: off}
	// The poll position is the follower's durable acknowledgement.
	s.repl.observeFollower(id, pos, recs, fepoch)

	// Long-polls legitimately outlive the enclosing http.Server's read
	// and write timeouts (cmd/dmcd sets them against slowloris clients);
	// lift both for this response only. The read deadline matters too:
	// the server's background connection read (its client-abort
	// detector) would otherwise trip mid-park and cancel the poll.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})

	wait := time.Duration(waitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxReplWait {
		wait = maxReplWait
	}
	deadline := time.Now().Add(wait)
	h := w.Header()
	for {
		// Grab the change channel before reading: an append landing
		// between the read and the wait must wake us.
		ch := s.persist.waitCh()
		data, next, n, reset, err := s.persist.readJournal(pos)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if reset {
			snap, jour, tail, jrecs, err := s.persist.readForReset()
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "%v", err)
				return
			}
			s.repl.resetsServed.Add(1)
			h.Set(hdrReset, "1")
			h.Set(hdrSnapLen, strconv.Itoa(len(snap)))
			h.Set(hdrGen, strconv.FormatUint(tail.gen, 10))
			h.Set(hdrOff, strconv.FormatInt(tail.off, 10))
			h.Set(hdrRecs, strconv.FormatInt(jrecs, 10))
			h.Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
			h.Set("Content-Type", "application/octet-stream")
			w.Write(snap)
			w.Write(jour)
			return
		}
		if len(data) > 0 {
			s.repl.chunksServed.Add(1)
			h.Set(hdrGen, strconv.FormatUint(next.gen, 10))
			h.Set(hdrOff, strconv.FormatInt(next.off, 10))
			h.Set(hdrRecs, strconv.Itoa(n))
			h.Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
			h.Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
		// Caught up: park until the journal changes or the poll expires.
		left := time.Until(deadline)
		if left <= 0 {
			h.Set(hdrGen, strconv.FormatUint(pos.gen, 10))
			h.Set(hdrOff, strconv.FormatInt(pos.off, 10))
			h.Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(left)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		case <-s.repl.stopped:
			t.Stop()
			h.Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// parseFrames decodes and validates a replication body's frames. Every
// frame must be whole and checksum-clean — the body came over TCP from
// data the primary read back from its own journal, so any damage means
// a bug, not line noise — and every record must parse and validate,
// because the follower is about to make them durable.
func parseFrames(data []byte) ([]*scenario.SnapshotRecord, error) {
	var out []*scenario.SnapshotRecord
	off := 0
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			return nil, fmt.Errorf("serve: replication body torn at offset %d", off)
		}
		size := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if size == 0 || size > maxRecordBytes {
			return nil, fmt.Errorf("serve: replication body offset %d: implausible record length %d", off, size)
		}
		if off+frameHeaderLen+int(size) > len(data) {
			return nil, fmt.Errorf("serve: replication body torn at offset %d", off)
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(size)]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("serve: replication body offset %d: checksum mismatch", off)
		}
		v, err := scenario.SnapshotRecordVersion(payload)
		if err != nil {
			return nil, fmt.Errorf("serve: replication body offset %d: %w", off, err)
		}
		if err := scenario.CheckSnapshotVersion(v); err != nil {
			return nil, fmt.Errorf("serve: replication body offset %d: %w", off, err)
		}
		rec := new(scenario.SnapshotRecord)
		if err := json.Unmarshal(payload, rec); err != nil {
			return nil, fmt.Errorf("serve: replication body offset %d: %w", off, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("serve: replication body offset %d: %w", off, err)
		}
		out = append(out, rec)
		off += frameHeaderLen + int(size)
	}
	return out, nil
}

// FollowerConfig configures a hot-standby Follower.
type FollowerConfig struct {
	// Primary is the primary's base URL (e.g. http://10.0.0.1:8080).
	Primary string
	// StateDir is the follower's own state dir; the replicated stream is
	// journaled here with the same format and guarantees as the
	// primary's, so promotion is just booting a Server from it.
	StateDir string
	// ID names this follower in the primary's follower table and
	// metrics. Empty defaults to "follower".
	ID string
	// PollWait is the long-poll wait the follower requests (capped
	// server-side at 30s). Zero means 10s.
	PollWait time.Duration
	// RetryInterval is the backoff after a failed poll. Zero means 500ms.
	RetryInterval time.Duration
	// Client overrides the HTTP client (tests). Nil means a dedicated
	// client with no overall timeout — the long poll IS the timeout.
	Client *http.Client
	// OnPromote, when set, is invoked by the follower's POST /v1/promote
	// admin endpoint. The callback owns the actual promotion (typically
	// Follower.Promote plus swapping HTTP handlers) so the process
	// embedding the follower controls the order.
	OnPromote func() error
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.ID == "" {
		c.ID = "follower"
	}
	if c.PollWait == 0 {
		c.PollWait = 10 * time.Second
	}
	if c.RetryInterval == 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Follower is a hot standby: it pulls the primary's journal stream into
// its own state dir (same durability guarantees) and serves degraded
// read-only answers from the replicated last-good results. Promote
// turns it into a full Server with a bumped fencing epoch.
type Follower struct {
	cfg     FollowerConfig
	persist *persister

	// smu guards the applied in-memory state (the degraded serving
	// source) and the replay shadow.
	smu    sync.RWMutex
	state  map[string]*scenario.SessionState
	shadow seqShadow

	// cm guards the replication cursor — the primary-coordinate
	// position of the next poll, advanced only after the bytes before
	// it are fsync'd locally.
	cm     sync.Mutex
	cursor replPos

	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	fenced  atomic.Bool
	em      sync.Mutex
	lastErr error

	records    atomic.Uint64
	chunks     atomic.Uint64
	resets     atomic.Uint64
	pollErrors atomic.Uint64
}

// NewFollower opens the follower's state dir (replaying whatever a
// previous incarnation already replicated) and starts the pull loop.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" || cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: follower requires a primary URL and a state dir")
	}
	p, state, shadow, err := openPersister(cfg.StateDir, 0, false)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:     cfg,
		persist: p,
		state:   state,
		shadow:  shadow,
		ctx:     ctx,
		cancel:  cancel,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// The cursor deliberately starts at zero, not at the local journal
	// tail: local offsets are this incarnation's coordinates, not the
	// primary's. The first poll therefore takes a reset transfer — which
	// is also what safely discards a divergent suffix when a fenced
	// ex-primary rejoins as a follower on its old state dir.
	go f.run()
	return f, nil
}

// run is the pull loop: poll, apply, repeat; back off on errors; stop
// for good when fenced.
func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.pollOnce()
		if err == nil {
			continue
		}
		f.setErr(err)
		if errors.Is(err, ErrFenced) {
			// A fenced stream never becomes followable again; keep serving
			// degraded answers and wait for an operator (or promotion).
			f.fenced.Store(true)
			return
		}
		f.pollErrors.Add(1)
		select {
		case <-f.stop:
			return
		case <-time.After(f.cfg.RetryInterval):
		}
	}
}

func (f *Follower) setErr(err error) {
	f.em.Lock()
	f.lastErr = err
	f.em.Unlock()
}

// Err returns the most recent replication error (nil while healthy); a
// successful poll clears it.
func (f *Follower) Err() error {
	f.em.Lock()
	defer f.em.Unlock()
	return f.lastErr
}

// Fenced reports whether the stream was fenced (the primary is a stale
// failover survivor) and the pull loop has stopped.
func (f *Follower) Fenced() bool { return f.fenced.Load() }

// pollOnce runs one poll: request from the cursor, then apply whatever
// came back (chunk, reset transfer, or nothing).
func (f *Follower) pollOnce() error {
	f.cm.Lock()
	pos := f.cursor
	f.cm.Unlock()
	u := fmt.Sprintf("%s/v1/replicate?gen=%d&off=%d&recs=%d&epoch=%d&id=%s&wait_ms=%d",
		strings.TrimRight(f.cfg.Primary, "/"), pos.gen, pos.off, f.persist.recordsInGen(),
		f.persist.maxEpoch.Load(), url.QueryEscape(f.cfg.ID), f.cfg.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("serve: replication poll: %w", err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		f.setErr(nil)
		return nil
	case http.StatusConflict:
		// The primary saw our epoch and called itself fenced — the
		// mirror-image of the check below (we'd only carry a higher epoch
		// if we had already seen a newer primary).
		return ErrFenced
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve: replication poll: primary answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	repoch, err := strconv.ParseUint(resp.Header.Get(hdrEpoch), 10, 64)
	if err != nil {
		return fmt.Errorf("serve: replication response missing %s: %w", hdrEpoch, err)
	}
	if known := f.persist.maxEpoch.Load(); repoch < known {
		return fmt.Errorf("%w (primary epoch %d, known epoch %d)", ErrFenced, repoch, known)
	}
	gen, err := strconv.ParseUint(resp.Header.Get(hdrGen), 10, 64)
	if err != nil {
		return fmt.Errorf("serve: replication response missing %s: %w", hdrGen, err)
	}
	off, err := strconv.ParseInt(resp.Header.Get(hdrOff), 10, 64)
	if err != nil {
		return fmt.Errorf("serve: replication response missing %s: %w", hdrOff, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxReplBody))
	if err != nil {
		return fmt.Errorf("serve: replication body: %w", err)
	}
	if err := fpReplApply.Hit(); err != nil {
		return fmt.Errorf("serve: replication apply: %w", err)
	}

	next := replPos{gen: gen, off: off}
	if resp.Header.Get(hdrReset) != "" {
		return f.applyReset(resp.Header, body, next, repoch)
	}
	return f.applyChunk(body, next, repoch)
}

// applyChunk validates, persists, then folds one journal chunk. That
// order is the ack invariant: the cursor (and so the position the next
// poll acknowledges) only moves after appendRaw's fsync returned.
func (f *Follower) applyChunk(body []byte, next replPos, repoch uint64) error {
	recs, err := parseFrames(body)
	if err != nil {
		return err
	}
	if err := f.persist.appendRaw(body, len(recs)); err != nil {
		// appendRaw truncated back; the retry re-requests the same chunk.
		return err
	}
	f.fold(recs, repoch)
	f.advance(next)
	f.chunks.Add(1)
	f.records.Add(uint64(len(recs)))
	f.setErr(nil)
	return nil
}

// applyReset replaces the follower's entire state with a transferred
// snapshot + journal.
func (f *Follower) applyReset(h http.Header, body []byte, next replPos, repoch uint64) error {
	snapLen, err := strconv.Atoi(h.Get(hdrSnapLen))
	if err != nil || snapLen < 0 || snapLen > len(body) {
		return fmt.Errorf("serve: reset transfer with bad %s %q (body %d bytes)", hdrSnapLen, h.Get(hdrSnapLen), len(body))
	}
	snap, jour := body[:snapLen], body[snapLen:]
	snapRecs, err := parseFrames(snap)
	if err != nil {
		return fmt.Errorf("serve: reset transfer snapshot: %w", err)
	}
	jourRecs, err := parseFrames(jour)
	if err != nil {
		return fmt.Errorf("serve: reset transfer journal: %w", err)
	}
	if err := f.persist.resetTo(snap, jour, int64(len(jourRecs))); err != nil {
		return err
	}
	// Rebuild the in-memory state from scratch: a reset discards any
	// divergent records the old state was built from.
	state := make(map[string]*scenario.SessionState)
	shadow := make(seqShadow)
	maxEpoch := repoch
	for _, rec := range append(snapRecs, jourRecs...) {
		applyRecord(state, shadow, rec)
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
		if rec.Seq > f.persist.maxSeq.Load() {
			f.persist.maxSeq.Store(rec.Seq)
		}
	}
	f.smu.Lock()
	f.state, f.shadow = state, shadow
	f.smu.Unlock()
	if maxEpoch > f.persist.maxEpoch.Load() {
		f.persist.maxEpoch.Store(maxEpoch)
	}
	f.advance(next)
	f.resets.Add(1)
	f.records.Add(uint64(len(snapRecs) + len(jourRecs)))
	f.setErr(nil)
	return nil
}

// fold applies persisted records to the in-memory state.
func (f *Follower) fold(recs []*scenario.SnapshotRecord, repoch uint64) {
	maxEpoch := repoch
	f.smu.Lock()
	for _, rec := range recs {
		applyRecord(f.state, f.shadow, rec)
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
		if rec.Seq > f.persist.maxSeq.Load() {
			f.persist.maxSeq.Store(rec.Seq)
		}
	}
	f.smu.Unlock()
	if maxEpoch > f.persist.maxEpoch.Load() {
		f.persist.maxEpoch.Store(maxEpoch)
	}
}

func (f *Follower) advance(next replPos) {
	f.cm.Lock()
	f.cursor = next
	f.cm.Unlock()
}

// Sessions returns the replicated live session count.
func (f *Follower) Sessions() int {
	f.smu.RLock()
	defer f.smu.RUnlock()
	return len(f.state)
}

// Epoch returns the highest fencing epoch this follower has seen.
func (f *Follower) Epoch() uint64 { return f.persist.maxEpoch.Load() }

// halt stops the pull loop and closes the state dir. Idempotent.
func (f *Follower) halt() {
	f.once.Do(func() {
		close(f.stop)
		f.cancel()
	})
	<-f.done
	f.persist.close()
}

// Close stops the follower. The replicated state dir stays on disk,
// ready for a later NewFollower or promotion via New.
func (f *Follower) Close() { f.halt() }

// Promote turns the standby into the primary: the pull loop stops, the
// state dir closes, and a full Server boots from it with Config.Promote
// set — replaying everything replicated, bumping the fencing epoch past
// every epoch in the stream, and durably stamping the bump before
// serving. cfg's replication and durability fields apply to the new
// primary; StateDir and Promote are overridden. On error the follower
// is already stopped — failover must be retried, not resumed.
func (f *Follower) Promote(cfg Config) (*Server, error) {
	f.halt()
	cfg.StateDir = f.cfg.StateDir
	cfg.Promote = true
	return New(cfg)
}

// FollowerMetrics is the follower's /metrics document.
type FollowerMetrics struct {
	Primary  string `json:"primary"`
	Sessions int    `json:"sessions"`
	// Epoch is the highest fencing epoch seen; Fenced reports that the
	// stream was rejected because the primary's epoch fell behind it.
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced"`
	// RecordsApplied counts records made durable locally (chunks and
	// reset transfers both); Resets counts full snapshot transfers.
	RecordsApplied uint64 `json:"records_applied"`
	ChunksApplied  uint64 `json:"chunks_applied"`
	Resets         uint64 `json:"resets"`
	PollErrors     uint64 `json:"poll_errors"`
	JournalBytes   int64  `json:"journal_bytes"`
	LastError      string `json:"last_error,omitempty"`
}

// Metrics snapshots the follower's counters.
func (f *Follower) Metrics() FollowerMetrics {
	m := FollowerMetrics{
		Primary:        f.cfg.Primary,
		Sessions:       f.Sessions(),
		Epoch:          f.Epoch(),
		Fenced:         f.fenced.Load(),
		RecordsApplied: f.records.Load(),
		ChunksApplied:  f.chunks.Load(),
		Resets:         f.resets.Load(),
		PollErrors:     f.pollErrors.Load(),
		JournalBytes:   f.persist.journalBytes.Load(),
	}
	if err := f.Err(); err != nil {
		m.LastError = err.Error()
	}
	return m
}

// Handler returns the follower's read-only HTTP API: degraded solve
// answers from replicated last-good results, metrics, health, and the
// promotion admin endpoint. Mutating endpoints answer 503 — a standby
// accepting writes would fork the fleet's state.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", f.handleSolve)
	mux.HandleFunc("POST /v1/observe", f.handleReadOnly)
	mux.HandleFunc("DELETE /v1/session/{id}", f.handleReadOnly)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Metrics())
	})
	mux.HandleFunc("GET /healthz", f.handleHealth)
	mux.HandleFunc("POST /v1/promote", f.handlePromote)
	return mux
}

func (f *Follower) handleReadOnly(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusServiceUnavailable, "serve: read-only follower; write to the primary")
}

// handleSolve serves the degraded path only: a known session's
// replicated last-good strategy, marked degraded. A follower has no
// solver fleet — anything it cannot answer from replicated state is the
// primary's job.
func (f *Follower) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req scenario.SolveRequest
	if !decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.SessionID == "" {
		writeErr(w, http.StatusServiceUnavailable, "serve: read-only follower cannot run one-shot solves; write to the primary")
		return
	}
	f.smu.RLock()
	st := f.state[req.SessionID]
	f.smu.RUnlock()
	if st == nil || st.LastGood == nil {
		writeErr(w, http.StatusServiceUnavailable, "serve: follower has no replicated answer for session %q", req.SessionID)
		return
	}
	writeJSON(w, http.StatusOK, scenario.SolveResponse{
		SessionID: req.SessionID,
		Resolved:  false,
		Result:    st.LastGood,
		Degraded:  true,
	})
}

func (f *Follower) handleHealth(w http.ResponseWriter, r *http.Request) {
	var trouble []string
	if f.fenced.Load() {
		trouble = append(trouble, "replication fenced: primary is a stale failover survivor")
	} else if err := f.Err(); err != nil {
		trouble = append(trouble, fmt.Sprintf("replication stalled: %v", err))
	}
	body := map[string]any{"status": "ok", "role": "follower", "epoch": f.Epoch(), "sessions": f.Sessions()}
	if len(trouble) > 0 {
		body["status"] = "degraded: " + strings.Join(trouble, "; ")
	}
	writeJSON(w, http.StatusOK, body)
}

// handlePromote is the failover admin endpoint. The embedding process
// (cmd/dmcd) supplies OnPromote, which runs Follower.Promote and swaps
// the HTTP handlers; without one the endpoint reports the follower
// cannot self-promote.
func (f *Follower) handlePromote(w http.ResponseWriter, r *http.Request) {
	if f.cfg.OnPromote == nil {
		writeErr(w, http.StatusNotImplemented, "serve: this follower has no promotion hook; restart it with -promote instead")
		return
	}
	if err := f.cfg.OnPromote(); err != nil {
		writeErr(w, http.StatusInternalServerError, "serve: promotion failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "promoted"})
}

package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is a shard circuit breaker's position.
type breakerState int32

const (
	// breakerClosed admits everything (normal operation).
	breakerClosed breakerState = iota
	// breakerOpen rejects everything until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen admits one probe; its outcome decides the state.
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker over solver faults (HTTP 5xx
// verdicts — client-caused 4xx outcomes never count). threshold
// consecutive faults trip it open: requests fail fast with 503 +
// Retry-After instead of queueing behind a solver that keeps dying.
// After cooldown one probe request is admitted (half-open); a probe
// success closes the breaker, a probe fault re-opens it for another
// cooldown. A threshold <= 0 disables the breaker entirely.
//
// Allow's fast path while closed is one atomic load; the mutex guards
// only state transitions and the open/half-open trickle.
type breaker struct {
	threshold int
	cooldown  time.Duration

	state atomic.Int32 // breakerState

	mu       sync.Mutex
	consec   int       // consecutive faults while closed
	openedAt time.Time // when the breaker last tripped
	probes   int       // probes in flight while half-open

	openTotal atomic.Uint64 // closed->open transitions, for /metrics
}

// allow reports whether a request may proceed. While open it admits
// nothing until cooldown has elapsed, then flips to half-open and
// admits a single probe.
func (b *breaker) allow() bool {
	if b.threshold <= 0 || breakerState(b.state.Load()) == breakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch breakerState(b.state.Load()) {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state.Store(int32(breakerHalfOpen))
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= 1 {
			return false
		}
		b.probes++
		return true
	}
}

// onSuccess records a non-fault outcome (success or a client-caused
// 4xx): it resets the fault run and closes a half-open breaker.
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if breakerState(b.state.Load()) == breakerHalfOpen {
		b.state.Store(int32(breakerClosed))
	}
}

// onFault records a solver fault. While closed it trips the breaker at
// threshold consecutive faults; while half-open the failed probe
// re-opens immediately.
func (b *breaker) onFault() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch breakerState(b.state.Load()) {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.trip()
		}
	}
}

// onSkip returns an admitted-but-unjudged slot (the task was shed as
// expired or abandoned before solving), so a half-open breaker's probe
// budget is not consumed by work that never reached the solver.
func (b *breaker) onSkip() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if breakerState(b.state.Load()) == breakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip() {
	b.state.Store(int32(breakerOpen))
	b.openedAt = time.Now()
	b.consec = 0
	b.probes = 0
	b.openTotal.Add(1)
}

// snapshot returns the current state without taking the transition
// mutex (metrics read).
func (b *breaker) snapshot() breakerState {
	if b.threshold <= 0 {
		return breakerClosed
	}
	return breakerState(b.state.Load())
}

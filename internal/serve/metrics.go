package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Latency histogram geometry: log-spaced buckets from latFirst upward,
// each latGrowth× wider than the last. 48 buckets cover 20µs → ~1900s;
// anything beyond lands in the last bucket. Quantiles read off the
// cumulative counts are accurate to one bucket width (~28%), which is
// plenty for a saturation dashboard — the alternative (recording raw
// samples) costs allocation on the solve hot path.
const (
	latBuckets = 48
	latFirst   = 20 * time.Microsecond
	latGrowth  = 1.5
)

var latBounds = func() [latBuckets]time.Duration {
	var b [latBuckets]time.Duration
	f := float64(latFirst)
	for i := range b {
		b[i] = time.Duration(f)
		f *= latGrowth
	}
	return b
}()

// rateWindow counts events over a sliding window of one-second slots,
// for a solves/sec gauge that reacts within seconds instead of
// averaging over the daemon's whole uptime.
type rateWindow struct {
	mu    sync.Mutex
	slots [rateSlots]uint64
	secs  [rateSlots]int64
}

const rateSlots = 10

func (r *rateWindow) observe(now time.Time) {
	sec := now.Unix()
	i := int(sec % rateSlots)
	r.mu.Lock()
	if r.secs[i] != sec {
		r.secs[i] = sec
		r.slots[i] = 0
	}
	r.slots[i]++
	r.mu.Unlock()
}

// perSec returns events/sec averaged over the filled portion of the
// window, excluding the current (incomplete) second when older full
// seconds exist.
func (r *rateWindow) perSec(now time.Time) float64 {
	sec := now.Unix()
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	var span int
	for i := 0; i < rateSlots; i++ {
		age := sec - r.secs[i]
		if age >= 1 && age < rateSlots {
			total += r.slots[i]
			span++
		}
	}
	if span == 0 {
		// Nothing but the current second: report it as-is.
		return float64(r.slots[int(sec%rateSlots)])
	}
	return float64(total) / float64(span)
}

// shardMetrics is one shard's counters. All hot-path updates are
// atomic; snapshots are racy-but-consistent-enough reads, the usual
// metrics contract.
type shardMetrics struct {
	solves   atomic.Uint64
	warm     atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
	waves    atomic.Uint64
	buckets  [latBuckets]atomic.Uint64
	rate     rateWindow

	// Failure-containment counters (the tentpole's ledger): recovered
	// solver panics, tasks shed for an expired deadline budget, tasks
	// dropped because the client disconnected while queued, and degraded
	// (stale-but-served) responses while the breaker was open.
	panics         atomic.Uint64
	shedExpired    atomic.Uint64
	abandonedTasks atomic.Uint64
	degraded       atomic.Uint64

	// retrySeq drives the deterministic Retry-After jitter: each hint
	// consumes one tick of a counter-keyed hash stream.
	retrySeq atomic.Uint64
}

// observe records one completed task.
func (m *shardMetrics) observe(lat time.Duration, warm bool, failed bool) {
	m.solves.Add(1)
	if warm {
		m.warm.Add(1)
	}
	if failed {
		m.errors.Add(1)
	}
	i := 0
	for i < latBuckets-1 && lat > latBounds[i] {
		i++
	}
	m.buckets[i].Add(1)
	m.rate.observe(time.Now())
}

// quantile returns the latency at quantile q ∈ (0,1] from the bucket
// counts (upper bound of the containing bucket), or 0 with no samples.
func (m *shardMetrics) quantile(q float64) time.Duration {
	var counts [latBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = m.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return latBounds[i]
		}
	}
	return latBounds[latBuckets-1]
}

// ShardMetrics is one shard's snapshot on the /metrics wire.
type ShardMetrics struct {
	Shard    int `json:"shard"`
	Sessions int `json:"sessions"`
	// QueueDepth is the number of admitted tasks waiting for a wave.
	QueueDepth int `json:"queue_depth"`
	// Solves counts completed tasks (including failed ones); Waves
	// counts the batches they were coalesced into.
	Solves uint64 `json:"solves"`
	Waves  uint64 `json:"waves"`
	// WarmSolves counts tasks served from session warm state;
	// WarmHitRate is WarmSolves/Solves.
	WarmSolves  uint64  `json:"warm_solves"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	Errors      uint64  `json:"errors"`
	// Rejected counts tasks turned away by admission control (HTTP 429).
	Rejected uint64 `json:"rejected"`
	// Panics counts recovered solver panics (each one a 500 + a
	// quarantined session solver); the shard worker survived them all.
	Panics uint64 `json:"panics"`
	// ShedExpired counts tasks shed because their deadline budget ran
	// out while queued (HTTP 504); Abandoned counts tasks dropped
	// because their client disconnected before a wave reached them.
	ShedExpired uint64 `json:"shed_expired"`
	Abandoned   uint64 `json:"abandoned"`
	// BreakerState is the shard circuit breaker's current position
	// (closed, open, half-open); BreakerOpenTotal counts how many times
	// it tripped. DegradedServed counts stale last-good responses served
	// while open.
	BreakerState     string `json:"breaker_state"`
	BreakerOpenTotal uint64 `json:"breaker_open_total"`
	DegradedServed   uint64 `json:"degraded_served"`
	// SolvesPerSec is the completion rate over a sliding 10 s window.
	SolvesPerSec float64 `json:"solves_per_sec"`
	// P50Ms/P99Ms are enqueue-to-completion latency quantiles (ms).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// DurabilityMetrics is the state-dir section of /metrics (present only
// with persistence enabled).
type DurabilityMetrics struct {
	// RestoredSessions is how many sessions this process rebuilt from
	// the state dir at boot.
	RestoredSessions int `json:"restored_sessions"`
	// Snapshots counts compacting full snapshots written (periodic and
	// final); JournalBytes/JournalRecords describe the live journal
	// since the last one.
	Snapshots      uint64 `json:"snapshots"`
	JournalBytes   int64  `json:"journal_bytes"`
	JournalRecords uint64 `json:"journal_records"`
	// JournalErrors counts appends that failed (each one failed its
	// request: acknowledged always implies journaled).
	JournalErrors uint64 `json:"journal_errors"`
	// TruncatedBytes is how much torn/corrupt journal suffix boot
	// recovery has cut back to the last valid record.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// ReplFollowerMetrics is one follower's row in the primary's
// replication section.
type ReplFollowerMetrics struct {
	ID string `json:"id"`
	// LagBytes/LagRecords is how far behind the journal tail the
	// follower's durable cursor is. With Resync set the cursor is from
	// an older journal incarnation (its next poll takes a snapshot reset
	// transfer) and the whole current journal counts as lag.
	LagBytes   int64 `json:"lag_bytes"`
	LagRecords int64 `json:"lag_records"`
	Resync     bool  `json:"resync,omitempty"`
	// Epoch is the fencing epoch the follower last announced.
	Epoch uint64 `json:"epoch"`
	// LastSeenMs is how long ago the follower last polled.
	LastSeenMs float64 `json:"last_seen_ms"`
}

// ReplicationMetrics is the primary's replication section of /metrics.
type ReplicationMetrics struct {
	// Mode is the acknowledgement mode ("async" or "sync"); Epoch this
	// primary's fencing term.
	Mode      string                `json:"mode"`
	Epoch     uint64                `json:"epoch"`
	Followers []ReplFollowerMetrics `json:"followers"`
	// ChunksServed/ResetsServed count replication responses by kind;
	// SyncTimeouts counts sync-mode writes failed for want of a follower
	// ack; FencedPolls counts polls rejected for carrying a newer epoch
	// than this primary's (evidence this primary is a stale survivor).
	ChunksServed uint64 `json:"chunks_served"`
	ResetsServed uint64 `json:"resets_served"`
	SyncTimeouts uint64 `json:"sync_timeouts"`
	FencedPolls  uint64 `json:"fenced_polls"`
}

// Metrics is the full /metrics document.
type Metrics struct {
	UptimeSec float64 `json:"uptime_sec"`
	// Sessions is the total live session count across shards.
	Sessions    int                 `json:"sessions"`
	Shards      []ShardMetrics      `json:"shards"`
	Durability  *DurabilityMetrics  `json:"durability,omitempty"`
	Replication *ReplicationMetrics `json:"replication,omitempty"`
}

// Metrics snapshots every shard's counters.
func (s *Server) Metrics() Metrics {
	now := time.Now()
	out := Metrics{
		UptimeSec: now.Sub(s.start).Seconds(),
		Shards:    make([]ShardMetrics, len(s.shards)),
	}
	for i, sh := range s.shards {
		m := &sh.met
		solves := m.solves.Load()
		sm := ShardMetrics{
			Shard:            i,
			Sessions:         sh.pool.Sessions(),
			QueueDepth:       len(sh.reqs),
			Solves:           solves,
			Waves:            m.waves.Load(),
			WarmSolves:       m.warm.Load(),
			Errors:           m.errors.Load(),
			Rejected:         m.rejected.Load(),
			Panics:           m.panics.Load(),
			ShedExpired:      m.shedExpired.Load(),
			Abandoned:        m.abandonedTasks.Load(),
			BreakerState:     sh.brk.snapshot().String(),
			BreakerOpenTotal: sh.brk.openTotal.Load(),
			DegradedServed:   m.degraded.Load(),
			SolvesPerSec:     m.rate.perSec(now),
			P50Ms:            float64(m.quantile(0.50)) / float64(time.Millisecond),
			P99Ms:            float64(m.quantile(0.99)) / float64(time.Millisecond),
		}
		if solves > 0 {
			sm.WarmHitRate = float64(sm.WarmSolves) / float64(solves)
		}
		out.Sessions += sm.Sessions
		out.Shards[i] = sm
	}
	if p := s.persist; p != nil {
		out.Durability = &DurabilityMetrics{
			RestoredSessions: s.restored,
			Snapshots:        p.snapshots.Load(),
			JournalBytes:     p.journalBytes.Load(),
			JournalRecords:   p.journalRecords.Load(),
			JournalErrors:    p.journalErrors.Load(),
			TruncatedBytes:   p.truncatedBytes.Load(),
		}
		out.Replication = &ReplicationMetrics{
			Mode:         s.cfg.ReplAck,
			Epoch:        s.epoch,
			Followers:    s.repl.lagSnapshot(),
			ChunksServed: s.repl.chunksServed.Load(),
			ResetsServed: s.repl.resetsServed.Load(),
			SyncTimeouts: s.repl.syncTimeouts.Load(),
			FencedPolls:  s.repl.fencedPolls.Load(),
		}
	}
	return out
}

// Durability layer: a versioned snapshot + append-only journal of
// session state, so a dmcd restart — deploy, OOM-kill, crash — does not
// silently discard every session's §VIII-A estimator counters,
// objective binding, and last good strategy.
//
// On-disk layout under the state dir:
//
//	snapshot    full state at the last compaction (atomic: written to
//	            snapshot.tmp, fsync'd, renamed over, dir fsync'd)
//	journal     records appended since that snapshot, each fsync'd
//	            before the request that produced it is acknowledged
//	            (unless Config.JournalNoSync)
//
// Both files are streams of framed scenario.SnapshotRecord values:
// a 4-byte little-endian payload length, a 4-byte CRC32 (IEEE) of the
// payload, then the JSON payload. Replay applies snapshot then journal,
// keeping the highest-Seq record per session, so a crash between the
// snapshot rename and the journal reset re-applies stale records
// harmlessly. A torn or corrupt journal suffix truncates to the last
// valid record instead of failing boot; a record from a newer schema
// version refuses boot with a clear error — losing state silently and
// guessing at a future layout are the two failure modes this file
// exists to rule out.
//
// Lock discipline: all file IO runs under the persister's own mutex,
// never under Server.smu or a session mutex — the lockheld analyzer
// treats file writes and fsync as blocking operations, so holding a
// guarded lock across journal IO is machine-checked away. State is
// captured in memory under the session lock, appended after release.
// Compaction additionally holds mu from before the first session
// capture through the journal truncate (snapshotNow): appends serialize
// on the same mutex, so every record the truncate discards was appended
// — and its session mutated — before the captures began, and the
// snapshot therefore holds that state or newer. Without that barrier an
// append could land (fsync'd, acknowledged) between its session's
// capture and the truncate, and a crash would restore the stale
// capture.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// The durability layer's injection seams: record writes (torn-write
// class failures surface here), fsync (the acknowledged-but-not-durable
// window), and replay reads (short reads and IO errors at boot).
var (
	fpPersistWrite  = fault.Register("persist.write")
	fpPersistFsync  = fault.Register("persist.fsync")
	fpPersistReplay = fault.Register("persist.replay")
)

const (
	snapshotFile = "snapshot"
	journalFile  = "journal"

	// frameHeaderLen is the per-record framing overhead: payload length
	// plus CRC32, both little-endian uint32.
	frameHeaderLen = 8

	// maxRecordBytes bounds a single record at replay, so a garbage
	// length field cannot demand an absurd allocation. Session records
	// are a few KB even with large strategies.
	maxRecordBytes = 16 << 20

	// defaultSnapshotBytes is the journal size that triggers a
	// compacting snapshot when Config.SnapshotBytes is zero.
	defaultSnapshotBytes = 4 << 20

	// maxReplChunk caps one replication read, so a follower far behind
	// catches up in bounded responses instead of one unbounded body.
	maxReplChunk = 1 << 20
)

// replPos addresses a point in the replicated journal stream: the
// journal incarnation (gen changes whenever the journal is reset — a
// compaction, a reset transfer, or a fresh boot) and the byte offset
// within it. Offsets are only comparable within a gen; gens are
// strictly increasing across resets and boots, so "newer" is
// well-defined: (g2, o2) is at or past (g1, o1) iff g2 > g1, or
// g2 == g1 and o2 >= o1 — a higher gen's journal starts from a snapshot
// that already compacts everything any lower gen held.
type replPos struct {
	gen uint64
	off int64
}

// atOrPast reports whether p has durably reached q.
func (p replPos) atOrPast(q replPos) bool {
	return p.gen > q.gen || (p.gen == q.gen && p.off >= q.off)
}

// persister owns the state dir: the open journal, the append path, and
// snapshot compaction. Safe for concurrent use; all IO serializes on mu.
type persister struct {
	dir           string
	snapshotBytes int64
	noSync        bool

	mu      sync.Mutex
	journal *os.File
	// jread is a read-only handle on the same journal inode, for
	// replication reads (the journal is truncated in place, never
	// renamed, so the handle stays valid across compactions).
	jread  *os.File
	closed bool
	// gen is the journal incarnation (see replPos): seeded from the
	// clock at open and bumped monotonically on every journal reset, so
	// a replication cursor from an older incarnation — or an older boot
	// — can never alias a valid offset in the current one.
	gen uint64
	// genRecords counts records in the current journal incarnation (the
	// record-granularity twin of journalBytes, for lag metrics).
	genRecords int64
	// notify is closed (and cleared) whenever the journal changes —
	// an append or a reset — waking replication long-polls. Lazily
	// re-created by waitCh.
	notify chan struct{}
	// replayedJournalRecords counts journal records seen at boot replay
	// (openPersister folds it into genRecords once).
	replayedJournalRecords int64

	// Metrics, readable without mu.
	journalBytes   atomic.Int64
	journalRecords atomic.Uint64
	journalErrors  atomic.Uint64
	snapshots      atomic.Uint64
	truncatedBytes atomic.Int64
	snapshotting   atomic.Bool
	maxSeq         atomic.Uint64
	// maxEpoch is the highest fencing epoch seen across replayed and
	// appended records; promotion boots at maxEpoch+1.
	maxEpoch atomic.Uint64
}

// openPersister opens (creating if needed) the state dir, replays
// snapshot + journal, and returns the persister plus the restored
// session records keyed by session ID (drop records already applied)
// and the winning-Seq shadow map (streaming followers keep folding
// records into both).
func openPersister(dir string, snapshotBytes int64, noSync bool) (*persister, map[string]*scenario.SessionState, seqShadow, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("serve: state dir: %w", err)
	}
	if snapshotBytes == 0 {
		snapshotBytes = defaultSnapshotBytes
	}
	p := &persister{dir: dir, snapshotBytes: snapshotBytes, noSync: noSync}
	// The boot gen must exceed every gen this state dir ever announced
	// to a follower; wall-clock nanoseconds dominate any plausible
	// bump count (resetLocked also takes max(gen+1, now)).
	p.gen = uint64(time.Now().UnixNano())

	state := make(map[string]*scenario.SessionState)
	shadow := make(seqShadow)
	// Snapshot first: it is the compacted prefix of the journal's
	// history. It was written atomically, so corruption here is bitrot
	// or an operator mistake — refuse boot rather than serve a silently
	// truncated fleet.
	if err := p.replayFile(filepath.Join(dir, snapshotFile), state, shadow, false); err != nil {
		return nil, nil, nil, err
	}
	// Then the journal, tolerating (and truncating) a torn suffix: the
	// process can die mid-append, and everything before the tear was
	// acknowledged durable.
	if err := p.replayFile(filepath.Join(dir, journalFile), state, shadow, true); err != nil {
		return nil, nil, nil, err
	}

	j, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	if fi, err := j.Stat(); err == nil {
		p.journalBytes.Store(fi.Size())
	}
	p.genRecords = p.replayedJournalRecords
	p.journal = j
	r, err := os.Open(filepath.Join(dir, journalFile))
	if err != nil {
		j.Close()
		return nil, nil, nil, fmt.Errorf("serve: opening journal for replication reads: %w", err)
	}
	p.jread = r
	return p, state, shadow, nil
}

// replayFile folds one record file into state. With truncateOnCorrupt,
// a torn/corrupt/short-read suffix is cut back to the last valid record
// (journal semantics); without it any damage is a hard error (snapshot
// semantics). Future-version and structurally invalid records are hard
// errors either way — they were written intact, so ignoring them would
// silently drop durable state.
func (p *persister) replayFile(path string, state map[string]*scenario.SessionState, shadow seqShadow, truncateOnCorrupt bool) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: opening %s: %w", filepath.Base(path), err)
	}
	defer f.Close()

	var off int64
	var hdr [frameHeaderLen]byte
	buf := make([]byte, 0, 4096)
	corrupt := func(reason string) error {
		if !truncateOnCorrupt {
			return fmt.Errorf("serve: %s corrupt at offset %d (%s); refusing to boot from a damaged snapshot", filepath.Base(path), off, reason)
		}
		fi, err := f.Stat()
		if err != nil {
			return fmt.Errorf("serve: %s: %w", filepath.Base(path), err)
		}
		dropped := fi.Size() - off
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("serve: truncating %s to last valid record: %w", filepath.Base(path), err)
		}
		p.truncatedBytes.Add(dropped)
		log.Printf("serve: %s: %s at offset %d; truncated %d byte suffix to the last valid record", filepath.Base(path), reason, off, dropped)
		return nil
	}

	for {
		if err := fpPersistReplay.Hit(); err != nil {
			return corrupt(fmt.Sprintf("injected replay fault: %v", err))
		}
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return corrupt(fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeaderLen))
			}
			return corrupt(fmt.Sprintf("reading frame header: %v", err))
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > maxRecordBytes {
			return corrupt(fmt.Sprintf("implausible record length %d", size))
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if n, err := io.ReadFull(f, buf); err != nil {
			return corrupt(fmt.Sprintf("torn record payload (%d of %d bytes)", n, size))
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return corrupt("record checksum mismatch")
		}

		// The frame is intact: from here every problem is semantic, and
		// semantic problems are hard errors — an unreadable-but-durable
		// record means state this build must not silently discard.
		v, err := scenario.SnapshotRecordVersion(buf)
		if err != nil {
			return fmt.Errorf("serve: %s offset %d: %w", filepath.Base(path), off, err)
		}
		if err := scenario.CheckSnapshotVersion(v); err != nil {
			return fmt.Errorf("serve: %s offset %d: %w", filepath.Base(path), off, err)
		}
		var rec scenario.SnapshotRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			return fmt.Errorf("serve: %s offset %d: parsing record: %w", filepath.Base(path), off, err)
		}
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("serve: %s offset %d: %w", filepath.Base(path), off, err)
		}
		applyRecord(state, shadow, &rec)
		if rec.Seq > p.maxSeq.Load() {
			p.maxSeq.Store(rec.Seq)
		}
		if rec.Epoch > p.maxEpoch.Load() {
			p.maxEpoch.Store(rec.Epoch)
		}
		if truncateOnCorrupt {
			p.replayedJournalRecords++
		}
		off += frameHeaderLen + int64(size)
	}
}

// seqShadow tracks the winning Seq per session during replay.
type seqShadow = map[string]uint64

// applyRecord folds one record into the replay state, newest Seq wins:
// replay order within a file is append order, but a crash between a
// snapshot rename and the journal reset leaves stale lower-Seq journal
// records behind, and two same-session records can land in the journal
// slightly out of capture order when their waves raced — Seq, assigned
// under the session lock, is the authority.
func applyRecord(state map[string]*scenario.SessionState, shadow seqShadow, rec *scenario.SnapshotRecord) {
	switch rec.Kind {
	case scenario.RecordSession:
		id := rec.Session.ID
		if rec.Seq < shadow[id] {
			return
		}
		shadow[id] = rec.Seq
		state[id] = rec.Session
	case scenario.RecordDrop:
		id := rec.SessionID
		if rec.Seq < shadow[id] {
			return
		}
		shadow[id] = rec.Seq
		delete(state, id)
	}
}

// frame encodes one record with its length + CRC32 header.
func frame(rec *scenario.SnapshotRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding snapshot record: %w", err)
	}
	out := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderLen:], payload)
	return out, nil
}

// append journals one record durably: framed write, then fsync (unless
// configured off), before the caller acknowledges the request the
// record describes. An error means the record may not survive a crash —
// the caller must fail the request rather than acknowledge state the
// journal does not hold. On success it returns the stream position just
// past the record, the address a replication follower must durably
// reach before a sync-mode acknowledgement.
func (p *persister) append(rec *scenario.SnapshotRecord) (replPos, error) {
	data, err := frame(rec)
	if err != nil {
		return replPos{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return replPos{}, fmt.Errorf("serve: journal closed")
	}
	if err := fpPersistWrite.Hit(); err != nil {
		p.journalErrors.Add(1)
		return replPos{}, fmt.Errorf("serve: journal write: %w", err)
	}
	if _, err := p.journal.Write(data); err != nil {
		p.journalErrors.Add(1)
		return replPos{}, fmt.Errorf("serve: journal write: %w", err)
	}
	if !p.noSync {
		if err := p.fsyncJournalLocked(); err != nil {
			p.journalErrors.Add(1)
			return replPos{}, err
		}
	}
	end := p.journalBytes.Add(int64(len(data)))
	p.journalRecords.Add(1)
	p.genRecords++
	if rec.Epoch > p.maxEpoch.Load() {
		p.maxEpoch.Store(rec.Epoch)
	}
	p.notifyLocked()
	return replPos{gen: p.gen, off: end}, nil
}

// notifyLocked wakes every replication long-poll waiting for journal
// change; the caller holds p.mu.
func (p *persister) notifyLocked() {
	if p.notify != nil {
		close(p.notify)
		p.notify = nil
	}
}

// waitCh returns a channel that closes on the next journal change
// (append, reset, or close). Grab it BEFORE checking the cursor you
// intend to wait past, or the change can slip between check and wait.
func (p *persister) waitCh() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		// Already closed: hand back a closed channel so waiters never
		// hang on a journal that will not change again.
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if p.notify == nil {
		p.notify = make(chan struct{})
	}
	return p.notify
}

// cursor returns the journal stream's current tail position.
func (p *persister) cursor() replPos {
	p.mu.Lock()
	defer p.mu.Unlock()
	return replPos{gen: p.gen, off: p.journalBytes.Load()}
}

// alignFrames walks data from the start and returns the prefix length
// covering only whole frames, plus the frame count. Replication chunks
// must never split a frame: the follower appends chunks verbatim to its
// own journal, and a split frame there is indistinguishable from a torn
// write.
func alignFrames(data []byte) (n int, recs int) {
	for n+frameHeaderLen <= len(data) {
		size := int(binary.LittleEndian.Uint32(data[n : n+4]))
		if n+frameHeaderLen+size > len(data) {
			break
		}
		n += frameHeaderLen + size
		recs++
	}
	return n, recs
}

// readJournal reads replication data from pos: a chunk of whole frames
// starting at pos.off in the current journal. reset=true means pos is
// not addressable in the current incarnation (older gen, or an offset
// past the tail — a diverged or corrupted follower) and the follower
// needs a full snapshot transfer instead. An empty chunk with
// reset=false means the follower is caught up. File IO runs under p.mu
// — the persister's own mutex, whose purpose is serializing exactly
// this — so a compaction can never truncate the journal mid-read.
func (p *persister) readJournal(pos replPos) (data []byte, next replPos, recs int, reset bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, replPos{}, 0, false, fmt.Errorf("serve: journal closed")
	}
	size := p.journalBytes.Load()
	if pos.gen != p.gen || pos.off < 0 || pos.off > size {
		return nil, replPos{}, 0, true, nil
	}
	span := size - pos.off
	if span == 0 {
		return nil, pos, 0, false, nil
	}
	if span > maxReplChunk {
		span = maxReplChunk
	}
	buf := make([]byte, span)
	if _, err := p.jread.ReadAt(buf, pos.off); err != nil {
		return nil, replPos{}, 0, false, fmt.Errorf("serve: replication read: %w", err)
	}
	n, recs := alignFrames(buf)
	if n == 0 {
		// A chunk boundary inside the first frame: the frame is larger
		// than the chunk cap. Session records are KBs; a frame beyond
		// maxReplChunk means local corruption, not load.
		return nil, replPos{}, 0, false, fmt.Errorf("serve: replication read at %d: frame exceeds %d byte chunk cap", pos.off, maxReplChunk)
	}
	return buf[:n], replPos{gen: p.gen, off: pos.off + int64(n)}, recs, false, nil
}

// readForReset reads the full snapshot + journal for a follower reset
// transfer, atomically with respect to appends and compactions (p.mu).
// recs is the journal's record count, the follower's starting
// genRecords after applying the transfer.
func (p *persister) readForReset() (snap, jour []byte, pos replPos, recs int64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, nil, replPos{}, 0, fmt.Errorf("serve: journal closed")
	}
	snap, err = os.ReadFile(filepath.Join(p.dir, snapshotFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, replPos{}, 0, fmt.Errorf("serve: reading snapshot for transfer: %w", err)
	}
	size := p.journalBytes.Load()
	jour = make([]byte, size)
	if size > 0 {
		if _, err := p.jread.ReadAt(jour, 0); err != nil {
			return nil, nil, replPos{}, 0, fmt.Errorf("serve: reading journal for transfer: %w", err)
		}
	}
	return snap, jour, replPos{gen: p.gen, off: size}, p.genRecords, nil
}

// recordsInGen returns the record count of the current journal
// incarnation.
func (p *persister) recordsInGen() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.genRecords
}

// appendRaw appends pre-framed replication chunks to the journal and
// fsyncs — the follower's apply path. Unlike append, it always syncs
// regardless of noSync: a follower's poll cursor is its replication
// acknowledgement, and acking state its disk does not hold would let a
// sync-mode primary acknowledge a write that a double failure then
// loses. On a partial-write error the journal is truncated back to the
// pre-call size so a retry of the same chunk cannot duplicate frames;
// if even that fails the journal is declared broken.
func (p *persister) appendRaw(data []byte, recs int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("serve: journal closed")
	}
	pre := p.journalBytes.Load()
	fail := func(err error) error {
		p.journalErrors.Add(1)
		if terr := p.journal.Truncate(pre); terr != nil {
			return fmt.Errorf("serve: replication apply: %w (and truncating back failed: %v; journal needs a reset transfer)", err, terr)
		}
		return fmt.Errorf("serve: replication apply: %w", err)
	}
	if err := fpPersistWrite.Hit(); err != nil {
		return fail(err)
	}
	if _, err := p.journal.Write(data); err != nil {
		return fail(err)
	}
	if err := p.fsyncJournalLocked(); err != nil {
		return fail(err)
	}
	p.journalBytes.Store(pre + int64(len(data)))
	p.journalRecords.Add(uint64(recs))
	p.genRecords += int64(recs)
	p.notifyLocked()
	return nil
}

// resetTo replaces the follower's on-disk state with a transferred
// snapshot + journal, with the same crash ordering as writeSnapshot:
// temp snapshot, fsync, rename, dir fsync, then the journal rewrite.
// A crash between rename and journal rewrite replays the new snapshot
// plus the old journal — whose stale lower-Seq records lose at replay,
// exactly the writeSnapshot argument.
func (p *persister) resetTo(snap, jour []byte, recs int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("serve: journal closed")
	}
	tmpPath := filepath.Join(p.dir, snapshotFile+".tmp")
	werr := func(err error) error {
		p.journalErrors.Add(1)
		return fmt.Errorf("serve: reset transfer: %w", err)
	}
	if err := fpPersistWrite.Hit(); err != nil {
		return werr(err)
	}
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return werr(err)
	}
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(snap); err != nil {
		tmp.Close()
		return werr(err)
	}
	if err := fpPersistFsync.Hit(); err != nil {
		tmp.Close()
		return werr(err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return werr(err)
	}
	if err := tmp.Close(); err != nil {
		return werr(err)
	}
	if err := os.Rename(tmpPath, filepath.Join(p.dir, snapshotFile)); err != nil {
		return werr(err)
	}
	if err := p.fsyncDir(); err != nil {
		p.journalErrors.Add(1)
		return err
	}
	if err := p.journal.Truncate(0); err != nil {
		return werr(err)
	}
	if _, err := p.journal.Seek(0, io.SeekStart); err != nil {
		return werr(err)
	}
	if _, err := p.journal.Write(jour); err != nil {
		return werr(err)
	}
	if err := p.fsyncJournalLocked(); err != nil {
		p.journalErrors.Add(1)
		return err
	}
	p.journalBytes.Store(int64(len(jour)))
	p.genRecords = recs
	p.resetGenLocked()
	p.notifyLocked()
	return nil
}

// resetGenLocked advances the journal incarnation; the caller holds
// p.mu and has just reset the journal.
func (p *persister) resetGenLocked() {
	now := uint64(time.Now().UnixNano())
	if now > p.gen {
		p.gen = now
	} else {
		p.gen++
	}
}

func (p *persister) fsyncJournalLocked() error {
	if err := fpPersistFsync.Hit(); err != nil {
		return fmt.Errorf("serve: journal fsync: %w", err)
	}
	if err := p.journal.Sync(); err != nil {
		return fmt.Errorf("serve: journal fsync: %w", err)
	}
	return nil
}

// shouldSnapshot reports whether the journal has outgrown its
// compaction threshold.
func (p *persister) shouldSnapshot() bool {
	return p.snapshotBytes > 0 && p.journalBytes.Load() >= p.snapshotBytes
}

// writeSnapshot atomically replaces the snapshot with recs and resets
// the journal. Crash-ordering: the temp snapshot is fully written and
// fsync'd, renamed over the old one, the directory fsync'd — only then
// is the journal truncated. A crash anywhere in between replays the old
// snapshot + full journal, or the new snapshot + a stale journal whose
// lower-Seq records lose at replay. Either way, no acknowledged state
// is lost.
//
// Callers that captured recs from live sessions must use
// writeSnapshotLocked with mu already held across the capture (see the
// package comment's compaction barrier); this entry is for callers
// whose recs cannot be raced by concurrent appends (tests, offline
// tooling).
func (p *persister) writeSnapshot(recs []*scenario.SnapshotRecord) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeSnapshotLocked(recs)
}

// writeSnapshotLocked is writeSnapshot's body; the caller holds p.mu.
func (p *persister) writeSnapshotLocked(recs []*scenario.SnapshotRecord) error {
	if p.closed {
		return fmt.Errorf("serve: journal closed")
	}
	tmpPath := filepath.Join(p.dir, snapshotFile+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename
	for _, rec := range recs {
		data, err := frame(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if err := fpPersistWrite.Hit(); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: snapshot write: %w", err)
		}
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: snapshot write: %w", err)
		}
	}
	if err := fpPersistFsync.Hit(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: snapshot fsync: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: snapshot close: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(p.dir, snapshotFile)); err != nil {
		return fmt.Errorf("serve: snapshot rename: %w", err)
	}
	if err := p.fsyncDir(); err != nil {
		return err
	}

	// The snapshot is durable; the journal's records are now redundant
	// (their Seqs are baked into the snapshot). Reset it in place.
	if err := p.journal.Truncate(0); err != nil {
		return fmt.Errorf("serve: journal reset: %w", err)
	}
	if _, err := p.journal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("serve: journal reset: %w", err)
	}
	p.journalBytes.Store(0)
	p.genRecords = 0
	// The journal reset starts a new incarnation: replication cursors
	// into the old journal are invalid (the bytes are gone), and the gen
	// bump is what tells a polling follower to take a reset transfer. It
	// also satisfies sync-ack waiters parked on old-gen positions — the
	// snapshot the new gen starts from compacts everything they awaited.
	p.resetGenLocked()
	p.snapshots.Add(1)
	p.notifyLocked()
	return nil
}

// fsyncDir makes the snapshot rename itself durable.
func (p *persister) fsyncDir() error {
	if err := fpPersistFsync.Hit(); err != nil {
		return fmt.Errorf("serve: state dir fsync: %w", err)
	}
	d, err := os.Open(p.dir)
	if err != nil {
		return fmt.Errorf("serve: state dir fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("serve: state dir fsync: %w", err)
	}
	return nil
}

// close releases the journal handle. Pending data is already on disk
// (append fsyncs per record unless JournalNoSync); with JournalNoSync a
// final fsync narrows the loss window.
func (p *persister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.noSync {
		_ = p.journal.Sync()
	}
	_ = p.journal.Close()
	if p.jread != nil {
		_ = p.jread.Close()
	}
	// Wake replication long-polls and sync-ack waiters; they re-check
	// and see closed.
	p.notifyLocked()
}

// Package serve implements the dmcd online solver service: N sharded
// core.WarmPools serving session-keyed solve/re-solve requests, with
// concurrent requests coalesced into batched solve waves per shard,
// per-session §VIII-A estimator feeds (estimate.Adaptor) driving warm
// re-solves on drift, admission control with backpressure, and
// per-shard metrics. The HTTP/JSON wire schema lives in
// internal/scenario; cmd/dmcd wraps this package in a binary.
//
// Request flow: a session ID hashes onto a shard, whose bounded queue
// either admits the task or rejects it (HTTP 429 + Retry-After). The
// shard's worker collects admitted tasks into a wave — up to MaxBatch
// tasks within BatchWindow — and fans the wave across the worker pool,
// each task re-solving on the session's warm solver (basis and column
// affinity survive fleet churn because the pool is keyed, not
// positional). Estimator sessions route through their Adaptor instead,
// which re-solves only when the fed estimates drift.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/estimate"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// fpExec fires in exec just before the solve, the serving stack's own
// injection seam: errors surface as 500s (and count against the shard
// breaker), panics exercise the full containment path, latency widens
// waves.
var fpExec = fault.Register("serve.exec")

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Shards is the number of independent WarmPool shards (sessions
	// hash onto one by ID). Zero means GOMAXPROCS.
	Shards int
	// BatchWindow is how long a wave waits to coalesce more requests
	// after its first. Zero means 500µs; negative disables waiting
	// (a wave takes only what is already queued).
	BatchWindow time.Duration
	// MaxBatch caps tasks per wave. Zero means 256.
	MaxBatch int
	// MaxQueue bounds each shard's admitted-task queue; a full queue
	// rejects with 429 + Retry-After. Zero means 1024.
	MaxQueue int
	// EstimatorRelTol overrides the estimator feeds' re-solve drift
	// tolerance (estimate.Adaptor.RelTol). Zero keeps the adaptor
	// default (10%).
	EstimatorRelTol float64
	// MaxBudget caps per-request deadline budgets and is the default
	// for requests that set none: a task still queued past its deadline
	// is shed with 504 instead of burning solver capacity. Zero means
	// 30s; negative disables the default (only explicit budget_ms
	// requests get deadlines, uncapped).
	MaxBudget time.Duration
	// BreakerThreshold is the consecutive-solver-fault count that trips
	// a shard's circuit breaker open (fast 503s, no queue occupancy).
	// Zero means 8; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting a half-open probe. Zero means 2s.
	BreakerCooldown time.Duration
	// ServeDegraded serves a session's last good strategy (marked
	// "degraded": true) instead of a 503 while its shard's breaker is
	// open.
	ServeDegraded bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	return c
}

// errClosed rejects tasks arriving in the instant the server shut down.
var errClosed = errors.New("serve: server closed")

// errSaturated rejects tasks when a shard's admission queue is full.
var errSaturated = errors.New("serve: queue full")

// errDropped rejects tasks whose session was dropped while they queued.
var errDropped = errors.New("serve: session dropped")

// errExpired sheds tasks whose deadline budget ran out while queued
// (HTTP 504 + Retry-After); the solver never sees them.
var errExpired = errors.New("serve: deadline budget expired in queue")

// errBreakerOpen fails requests fast while the shard's circuit breaker
// is open (HTTP 503 + Retry-After); they never occupy the queue.
var errBreakerOpen = errors.New("serve: shard circuit breaker open")

// errAbandoned marks tasks whose client disconnected while they queued;
// nobody reads the result, the error only keeps the ledger honest.
var errAbandoned = errors.New("serve: request abandoned by client")

// SolverPanic is the typed error a recovered solver panic becomes: the
// client sees a 500 with the panic value, the stack goes to the log
// (first occurrence) and the panics metric, and the session's warm
// solver is quarantined.
type SolverPanic struct {
	// Session is the poisoned session's ID ("" for one-shot solves).
	Session string
	// Value is the original panic value; Stack the panicking stack.
	Value any
	Stack []byte
}

func (e *SolverPanic) Error() string {
	return fmt.Sprintf("serve: solver panic: %v", e.Value)
}

type taskKind uint8

const (
	// taskSolve solves the task's network explicitly.
	taskSolve taskKind = iota
	// taskPoll polls a session's estimator feed: re-solve iff drifted.
	taskPoll
)

// task is one admitted unit of work waiting for (or inside) a wave.
type task struct {
	kind      taskKind
	sess      *session // nil for stateless one-shot solves
	estimator bool     // (re)bind an estimator feed on this solve

	net        *core.Network
	objective  string
	minQuality float64
	toOpts     core.TimeoutOptions

	done chan taskResult // buffered(1): exec never blocks on a gone client
	enq  time.Time

	// deadline is when the task's budget expires (zero = none): a wave
	// reaching it after expiry sheds the task without solver work.
	deadline time.Time
	// abandoned is set by submit when the client disconnects, so the
	// wave drops the task cheaply instead of solving for nobody.
	abandoned atomic.Bool
	// delivered guards done so the normal path and the wave-panic sweep
	// can both try to deliver without double-sending.
	delivered atomic.Bool
}

// deliver sends the task's result exactly once; later deliveries are
// dropped on the floor.
func (t *task) deliver(r taskResult) {
	if t.delivered.CompareAndSwap(false, true) {
		t.done <- r
	}
}

type taskResult struct {
	res      scenario.SolveResult
	resolved bool
	err      error
}

// session is the serve-level state of one session ID: its shard, and —
// for estimator sessions — the §VIII-A adaptor feed. The mutex
// serializes everything per session: solves (so result extraction can
// never race a same-session re-solve clobbering solver storage),
// estimator observations, and drop.
type session struct {
	id string
	sh *shard

	mu      sync.Mutex
	adaptor *estimate.Adaptor
	dropped bool
	// lastGood is the session's most recent successful wire result, the
	// stale answer ServeDegraded falls back to while the shard's
	// breaker is open. It is a self-contained copy (NewSolveResult
	// extracts), so serving it never races solver storage.
	lastGood *scenario.SolveResult
}

// lastGoodResult returns the session's last good result, or nil.
func (se *session) lastGoodResult() *scenario.SolveResult {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.dropped {
		return nil
	}
	return se.lastGood
}

// shard is one WarmPool plus its admission queue, worker, and circuit
// breaker.
type shard struct {
	idx   int
	pool  *core.WarmPool
	reqs  chan *task
	stop  chan struct{}
	batch []*task // wave scratch, touched only by the shard worker
	met   shardMetrics
	brk   breaker
}

// Server is the online solver service. Create with New, serve HTTP via
// Handler, stop with Close. Safe for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard
	tcache *core.TimeoutCache
	start  time.Time

	smu      sync.RWMutex
	sessions map[string]*session

	oneShotRR atomic.Uint64 // round-robin shard pick for session-less solves
	closed    atomic.Bool
	admitMu   sync.RWMutex // held shared across enqueue's closed-check + send; exclusively by Close's barrier
	wg        sync.WaitGroup

	// panicLog rate-limits panic stacks to one full log line per server;
	// every later panic only bumps the shard's panics counter.
	panicLog sync.Once
}

// logPanic logs the first solver panic's full stack; the rest are
// counted silently (the panics metric carries the rate).
func (s *Server) logPanic(sp *SolverPanic) {
	s.panicLog.Do(func() {
		log.Printf("serve: solver panic (session %q): %v\n%s", sp.Session, sp.Value, sp.Stack)
	})
}

// New starts a Server: cfg.Shards WarmPool shards, each with a running
// wave worker.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		tcache:   core.NewTimeoutCache(),
		start:    time.Now(),
		sessions: make(map[string]*session),
	}
	for i := range s.shards {
		sh := &shard{
			idx:  i,
			pool: core.NewWarmPool(),
			reqs: make(chan *task, cfg.MaxQueue),
			stop: make(chan struct{}),
			brk:  breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.runShard(sh)
	}
	return s
}

// shardFor hashes a session ID onto its shard. Stable by construction:
// the same ID always lands on the same shard (and so the same WarmPool
// session solver) for the server's lifetime.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// sessionFor returns the session for id, creating it if needed.
func (s *Server) sessionFor(id string) *session {
	s.smu.RLock()
	se := s.sessions[id]
	s.smu.RUnlock()
	if se != nil {
		return se
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if se = s.sessions[id]; se == nil {
		se = &session{id: id, sh: s.shardFor(id)}
		s.sessions[id] = se
	}
	return se
}

// lookupSession returns the session for id, or nil.
func (s *Server) lookupSession(id string) *session {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return s.sessions[id]
}

// DropSession removes a session: its registry entry, its estimator
// feed, and its warm solver (retired to the shard pool's shape stripes,
// where a future same-shaped session picks the structural state back
// up). Unknown IDs are a no-op. Tasks the session still has queued fail
// with a "session dropped" error.
func (s *Server) DropSession(id string) {
	s.smu.Lock()
	se := s.sessions[id]
	delete(s.sessions, id)
	s.smu.Unlock()
	if se == nil {
		return
	}
	se.mu.Lock()
	se.dropped = true
	se.adaptor = nil
	se.mu.Unlock()
	se.sh.pool.DropSession(id)
}

// Sessions returns the live session count.
func (s *Server) Sessions() int {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return len(s.sessions)
}

// enqueue admits a task onto the shard's bounded queue. errSaturated
// means the caller should reply 429 with retryAfter; errClosed means
// the server is (or began) shutting down. Holding admitMu shared across
// the closed check and the send guarantees no task slips in after
// Close's drain: Close flips the flag and then takes admitMu
// exclusively, so every task that passed the check here is already in
// the queue — where the stop-drain loop still executes it — before the
// workers are told to stop.
func (s *Server) enqueue(sh *shard, t *task) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return errClosed
	}
	if !sh.brk.allow() {
		return errBreakerOpen
	}
	select {
	case sh.reqs <- t:
		return nil
	default:
		// A half-open probe slot granted by allow must be returned, or a
		// saturated queue would wedge the breaker half-open forever.
		sh.brk.onSkip()
		sh.met.rejected.Add(1)
		return errSaturated
	}
}

// deadlineFor turns a request's budget_ms into an absolute deadline:
// the client's budget capped by MaxBudget, MaxBudget itself when the
// request sets none, and no deadline at all (zero time) when deadlines
// are disabled (negative MaxBudget) and the request asked for nothing.
func (s *Server) deadlineFor(budgetMs float64) time.Time {
	budget := s.cfg.MaxBudget
	if d := time.Duration(budgetMs * float64(time.Millisecond)); budgetMs > 0 && (d < budget || budget < 0) {
		budget = d
	}
	if budget < 0 {
		return time.Time{}
	}
	return time.Now().Add(budget)
}

// retryAfter estimates how long a rejected caller should back off:
// the queue's expected drain time at the shard's median latency,
// clamped to [1s, 30s] whole seconds.
func (s *Server) retryAfter(sh *shard) int {
	p50 := sh.met.quantile(0.50)
	if p50 <= 0 {
		return 1
	}
	secs := int((time.Duration(len(sh.reqs))*p50 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Close stops the server gracefully: every already-admitted task is
// still solved (in-flight waves drain), then the shard workers exit.
// Requests arriving after Close begin fail with 503. Close is
// idempotent and safe to call concurrently.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	// Admission barrier: wait out every enqueue that passed the closed
	// check before the flag flipped (each holds admitMu shared until its
	// task is in the queue). After this, nothing new can enter a shard
	// queue, so the workers' stop-drain loops see every admitted task
	// and no caller is ever left waiting on an unexecuted one.
	s.admitMu.Lock()
	s.admitMu.Unlock()
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.wg.Wait()
}

// runShard is the shard worker: block for a first task, coalesce a
// wave around it, execute, repeat. On stop it drains everything already
// admitted before exiting — graceful shutdown never abandons an
// admitted task.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case t := <-sh.reqs:
			s.safeWave(sh, t)
		case <-sh.stop:
			for {
				select {
				case t := <-sh.reqs:
					s.safeWave(sh, t)
				default:
					return
				}
			}
		}
	}
}

// safeWave is the shard worker's last line of defense: exec recovers
// panics per task, so nothing should escape a wave — but if something
// does (a panic in wave assembly itself), the worker must not die with
// callers parked on t.done. Every undelivered task in the wave gets the
// panic as its error, and the worker loop continues.
func (s *Server) safeWave(sh *shard, first *task) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		sp := &SolverPanic{Value: p, Stack: debug.Stack()}
		if pe, ok := p.(*conc.PanicError); ok {
			sp = &SolverPanic{Value: pe.Value, Stack: pe.Stack}
		}
		sh.met.panics.Add(1)
		s.logPanic(sp)
		first.deliver(taskResult{err: sp})
		for _, t := range sh.batch {
			// Tasks from an already-completed wave are skipped by the
			// delivered guard.
			t.deliver(taskResult{err: sp})
		}
	}()
	s.wave(sh, first)
}

// wave coalesces up to MaxBatch tasks — waiting at most BatchWindow for
// stragglers, but firing early once arrivals go quiet for a quarter
// window (callers blocked on this wave's results cannot send more, so
// idling out the full window would only add latency) — and solves them
// as one batch across the worker pool. Per-session warm affinity comes
// from the keyed pool, so which wave a task lands in never affects its
// result, only its latency.
func (s *Server) wave(sh *shard, first *task) {
	batch := append(sh.batch[:0], first)
	if s.cfg.BatchWindow > 0 {
		gapD := s.cfg.BatchWindow / 4
		if gapD <= 0 {
			gapD = s.cfg.BatchWindow
		}
		total := time.NewTimer(s.cfg.BatchWindow)
		gap := time.NewTimer(gapD)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
				if !gap.Stop() {
					<-gap.C
				}
				gap.Reset(gapD)
			case <-gap.C:
				break collect
			case <-total.C:
				break collect
			case <-sh.stop:
				// Shutdown cuts the window short; the queue's remainder
				// drains in runShard's stop loop.
				break collect
			}
		}
		total.Stop()
		gap.Stop()
	} else {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
			default:
				goto full
			}
		}
	full:
	}
	sh.batch = batch
	sh.met.waves.Add(1)
	conc.ForEach(len(batch), func(i int) error {
		s.exec(sh, batch[i])
		return nil
	})
}

// exec runs one task and delivers its result. Shedding happens here,
// after queueing and before solver work: abandoned tasks (client gone)
// and expired budgets cost nothing but the check. Any panic below —
// injected or real — is contained to this task: the session path
// quarantines its solver in solveTask's recover, everything else is
// caught by the outer recover, and either way the caller gets a typed
// 500 and the wave rolls on.
func (s *Server) exec(sh *shard, t *task) {
	if t.abandoned.Load() {
		sh.met.abandonedTasks.Add(1)
		sh.brk.onSkip()
		t.deliver(taskResult{err: errAbandoned})
		return
	}
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		sh.met.shedExpired.Add(1)
		sh.brk.onSkip()
		t.deliver(taskResult{err: errExpired})
		return
	}
	var r taskResult
	func() {
		defer func() {
			if p := recover(); p != nil {
				if sp, ok := p.(*SolverPanic); ok {
					r = taskResult{err: sp}
					return
				}
				r = taskResult{err: &SolverPanic{Value: p, Stack: debug.Stack()}}
			}
		}()
		if err := fpExec.Hit(); err != nil {
			r.err = fmt.Errorf("serve: exec: %w", err)
			return
		}
		r.res, r.resolved, r.err = s.solveTask(sh, t)
	}()
	var sp *SolverPanic
	if errors.As(r.err, &sp) {
		sh.met.panics.Add(1)
		s.logPanic(sp)
	}
	if isServerFault(r.err) {
		sh.brk.onFault()
	} else {
		sh.brk.onSuccess()
	}
	sh.met.observe(time.Since(t.enq), r.res.Warm, r.err != nil)
	t.deliver(r)
}

// solveTask executes a task against its session's warm solver (or the
// package-level pooled solvers for one-shots). The wire result is
// extracted while the session lock is held, so a same-session re-solve
// can never rebuild the solver storage under the extraction.
func (s *Server) solveTask(sh *shard, t *task) (res scenario.SolveResult, resolved bool, err error) {
	var to *core.Timeouts
	if t.kind == taskSolve && t.objective == scenario.ObjectiveRandom {
		to, err = s.tcache.OptimalTimeouts(t.net, t.toOpts)
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
	}
	if t.sess == nil {
		return oneShot(t, to)
	}
	se := t.sess
	se.mu.Lock()
	defer se.mu.Unlock()
	// Registered after the unlock defer, so this recover runs FIRST
	// (LIFO) — while se.mu is still held. A panic anywhere in the
	// session solve leaves the warm solver in an unknown state:
	// quarantine it (next solve re-primes cold on a fresh solver) and
	// detach any estimator feed whose adaptor shared the lineage. The
	// slot mutex inside QuarantineSession is free by now — the panic
	// already unwound solveSession's critical section.
	defer func() {
		if p := recover(); p != nil {
			se.sh.pool.QuarantineSession(se.id)
			se.adaptor = nil
			res, resolved = scenario.SolveResult{}, false
			err = &SolverPanic{Session: se.id, Value: p, Stack: debug.Stack()}
		}
	}()
	if se.dropped {
		return scenario.SolveResult{}, false, errDropped
	}

	if t.kind == taskPoll {
		if se.adaptor == nil {
			return scenario.SolveResult{}, false, fmt.Errorf("serve: session %q has no estimator feed", se.id)
		}
		sol, resolved, err := se.adaptor.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		res := scenario.NewSolveResult(sol, nil)
		se.lastGood = &res
		return res, resolved, nil
	}

	if t.estimator {
		// (Re)bind the estimator feed to this network and solve through
		// it: the adaptor owns the session's warm solver lineage from
		// here, and /v1/observe drives it. Estimator state starts fresh
		// per the §VIII-A bootstrap (0% loss until observations arrive).
		ad, err := estimate.NewAdaptor(t.net)
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		if s.cfg.EstimatorRelTol > 0 {
			ad.RelTol = s.cfg.EstimatorRelTol
		}
		sol, _, err := ad.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		se.adaptor = ad
		res := scenario.NewSolveResult(sol, nil)
		se.lastGood = &res
		return res, true, nil
	}
	// An explicit plain solve supersedes any estimator feed: the client
	// has switched to driving re-solves itself.
	se.adaptor = nil

	var sol *core.Solution
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = se.sh.pool.SolveSessionMinCost(se.id, t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = se.sh.pool.SolveSessionRandom(se.id, t.net, to)
	default:
		sol, err = se.sh.pool.SolveSession(se.id, t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, err
	}
	out := scenario.NewSolveResult(sol, to)
	se.lastGood = &out
	return out, true, nil
}

// oneShot solves a session-less task on the package-level pooled
// solvers.
func oneShot(t *task, to *core.Timeouts) (scenario.SolveResult, bool, error) {
	var sol *core.Solution
	var err error
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = core.SolveMinCost(t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = core.SolveQualityRandom(t.net, to)
	default:
		sol, err = core.SolveQuality(t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, err
	}
	return scenario.NewSolveResult(sol, to), true, nil
}

// Package serve implements the dmcd online solver service: N sharded
// core.WarmPools serving session-keyed solve/re-solve requests, with
// concurrent requests coalesced into batched solve waves per shard,
// per-session §VIII-A estimator feeds (estimate.Adaptor) driving warm
// re-solves on drift, admission control with backpressure, and
// per-shard metrics. The HTTP/JSON wire schema lives in
// internal/scenario; cmd/dmcd wraps this package in a binary.
//
// Request flow: a session ID hashes onto a shard, whose bounded queue
// either admits the task or rejects it (HTTP 429 + Retry-After). The
// shard's worker collects admitted tasks into a wave — up to MaxBatch
// tasks within BatchWindow — and fans the wave across the worker pool,
// each task re-solving on the session's warm solver (basis and column
// affinity survive fleet churn because the pool is keyed, not
// positional). Estimator sessions route through their Adaptor instead,
// which re-solves only when the fed estimates drift.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/estimate"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// fpExec fires in exec just before the solve, the serving stack's own
// injection seam: errors surface as 500s (and count against the shard
// breaker), panics exercise the full containment path, latency widens
// waves.
var fpExec = fault.Register("serve.exec")

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Shards is the number of independent WarmPool shards (sessions
	// hash onto one by ID). Zero means GOMAXPROCS.
	Shards int
	// BatchWindow is how long a wave waits to coalesce more requests
	// after its first. Zero means 500µs; negative disables waiting
	// (a wave takes only what is already queued).
	BatchWindow time.Duration
	// MaxBatch caps tasks per wave. Zero means 256.
	MaxBatch int
	// MaxQueue bounds each shard's admitted-task queue; a full queue
	// rejects with 429 + Retry-After. Zero means 1024.
	MaxQueue int
	// EstimatorRelTol overrides the estimator feeds' re-solve drift
	// tolerance (estimate.Adaptor.RelTol). Zero keeps the adaptor
	// default (10%).
	EstimatorRelTol float64
	// MaxBudget caps per-request deadline budgets and is the default
	// for requests that set none: a task still queued past its deadline
	// is shed with 504 instead of burning solver capacity. Zero means
	// 30s; negative disables the default (only explicit budget_ms
	// requests get deadlines, uncapped).
	MaxBudget time.Duration
	// BreakerThreshold is the consecutive-solver-fault count that trips
	// a shard's circuit breaker open (fast 503s, no queue occupancy).
	// Zero means 8; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting a half-open probe. Zero means 2s.
	BreakerCooldown time.Duration
	// ServeDegraded serves a session's last good strategy (marked
	// "degraded": true) instead of a 503 while its shard's breaker is
	// open.
	ServeDegraded bool
	// StateDir enables crash-safe durability: every session's
	// scenario/objective binding, §VIII-A estimator counters, and last
	// good strategy are journaled to this directory (snapshot +
	// append-only journal) and restored on the next New. Empty disables
	// persistence. See persist.go for the on-disk format.
	StateDir string
	// SnapshotBytes is the journal size that triggers a compacting full
	// snapshot. Zero means 4 MB; negative disables size-triggered
	// compaction (the final snapshot on Close still runs).
	SnapshotBytes int64
	// JournalNoSync skips the per-record fsync on journal appends,
	// trading the crash-durability guarantee (acknowledged implies
	// journaled) for append throughput. Snapshots still fsync.
	JournalNoSync bool
	// ReplAck selects the replication acknowledgement mode: "async"
	// (default — a 2xx means journaled locally; followers catch up via
	// the stream) or "sync" (a 2xx additionally means at least one
	// follower has the record durably — "acknowledged means
	// replicated"). Sync mode with zero connected followers fails
	// writes after ReplAckTimeout by design: the operator asked for
	// replicated durability, so unreplicated writes must not be
	// acknowledged. Requires StateDir.
	ReplAck string
	// ReplAckTimeout bounds how long a sync-mode write waits for a
	// follower acknowledgement before failing the request (the record
	// IS locally durable at that point; the 500 reports only that
	// replication is unconfirmed). Zero means 5s.
	ReplAckTimeout time.Duration
	// ReplLagWarn is the replication lag, in journal bytes, past which
	// /healthz reports degraded. Zero means SnapshotBytes (one full
	// compaction interval behind); negative disables lag health checks.
	ReplLagWarn int64
	// Promote boots this server as the new primary after a failover:
	// the fencing epoch becomes one past the highest epoch in the
	// replayed state, and the bump is made durable immediately (a full
	// compacting snapshot at the new epoch) so a crash cannot un-bump
	// it. A rejoining stale primary's stream is then rejected by every
	// replica that saw the new epoch. Requires StateDir.
	Promote bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ReplAck == "" {
		c.ReplAck = ReplAckAsync
	}
	if c.ReplAckTimeout == 0 {
		c.ReplAckTimeout = 5 * time.Second
	}
	if c.ReplLagWarn == 0 {
		c.ReplLagWarn = c.SnapshotBytes
		if c.ReplLagWarn == 0 {
			c.ReplLagWarn = defaultSnapshotBytes
		}
	}
	return c
}

// errClosed rejects tasks arriving in the instant the server shut down.
var errClosed = errors.New("serve: server closed")

// errSaturated rejects tasks when a shard's admission queue is full.
var errSaturated = errors.New("serve: queue full")

// errDropped rejects tasks whose session was dropped while they queued.
var errDropped = errors.New("serve: session dropped")

// errExpired sheds tasks whose deadline budget ran out while queued
// (HTTP 504 + Retry-After); the solver never sees them.
var errExpired = errors.New("serve: deadline budget expired in queue")

// errBreakerOpen fails requests fast while the shard's circuit breaker
// is open (HTTP 503 + Retry-After); they never occupy the queue.
var errBreakerOpen = errors.New("serve: shard circuit breaker open")

// errAbandoned marks tasks whose client disconnected while they queued;
// nobody reads the result, the error only keeps the ledger honest.
var errAbandoned = errors.New("serve: request abandoned by client")

// SolverPanic is the typed error a recovered solver panic becomes: the
// client sees a 500 with the panic value, the stack goes to the log
// (first occurrence) and the panics metric, and the session's warm
// solver is quarantined.
type SolverPanic struct {
	// Session is the poisoned session's ID ("" for one-shot solves).
	Session string
	// Value is the original panic value; Stack the panicking stack.
	Value any
	Stack []byte
}

func (e *SolverPanic) Error() string {
	return fmt.Sprintf("serve: solver panic: %v", e.Value)
}

type taskKind uint8

const (
	// taskSolve solves the task's network explicitly.
	taskSolve taskKind = iota
	// taskPoll polls a session's estimator feed: re-solve iff drifted.
	taskPoll
)

// task is one admitted unit of work waiting for (or inside) a wave.
type task struct {
	kind      taskKind
	sess      *session // nil for stateless one-shot solves
	estimator bool     // (re)bind an estimator feed on this solve

	net        *core.Network
	objective  string
	minQuality float64
	toOpts     core.TimeoutOptions
	// wire is the request's original Solve body, kept so a successful
	// session solve can record its binding in the durability journal
	// without re-deriving the wire form from the model network.
	wire *scenario.Solve

	done chan taskResult // buffered(1): exec never blocks on a gone client
	enq  time.Time

	// deadline is when the task's budget expires (zero = none): a wave
	// reaching it after expiry sheds the task without solver work.
	deadline time.Time
	// abandoned is set by submit when the client disconnects, so the
	// wave drops the task cheaply instead of solving for nobody.
	abandoned atomic.Bool
	// delivered guards done so the normal path and the wave-panic sweep
	// can both try to deliver without double-sending.
	delivered atomic.Bool
}

// deliver sends the task's result exactly once; later deliveries are
// dropped on the floor.
func (t *task) deliver(r taskResult) {
	if t.delivered.CompareAndSwap(false, true) {
		t.done <- r
	}
}

type taskResult struct {
	res      scenario.SolveResult
	resolved bool
	err      error
}

// session is the serve-level state of one session ID: its shard, and —
// for estimator sessions — the §VIII-A adaptor feed. The mutex
// serializes everything per session: solves (so result extraction can
// never race a same-session re-solve clobbering solver storage),
// estimator observations, and drop.
type session struct {
	id string
	sh *shard

	mu      sync.Mutex
	adaptor *estimate.Adaptor
	dropped bool
	// lastGood is the session's most recent successful wire result, the
	// stale answer ServeDegraded falls back to while the shard's
	// breaker is open. It is a self-contained copy (NewSolveResult
	// extracts), so serving it never races solver storage.
	lastGood *scenario.SolveResult
	// binding is the wire form of the session's current solve request
	// (network + objective), the scenario half of its durable state.
	// Nil until the first successful solve. The pointed-to Solve is
	// never mutated, so snapshot captures may share it.
	binding *scenario.Solve
	// dropRec is the session's drop record, built under mu when the
	// session is dropped and appended after release. It stays set so a
	// retry of a drop whose append failed re-appends the same record
	// (same Seq — still the session's highest, since a dropped session
	// is never captured again) instead of no-op'ing into a false 204.
	dropRec *scenario.SnapshotRecord
}

// lastGoodResult returns the session's last good result, or nil.
func (se *session) lastGoodResult() *scenario.SolveResult {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.dropped {
		return nil
	}
	return se.lastGood
}

// shard is one WarmPool plus its admission queue, worker, and circuit
// breaker.
type shard struct {
	idx   int
	pool  *core.WarmPool
	reqs  chan *task
	stop  chan struct{}
	batch []*task // wave scratch, touched only by the shard worker
	met   shardMetrics
	brk   breaker
}

// Server is the online solver service. Create with New, serve HTTP via
// Handler, stop with Close. Safe for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard
	tcache *core.TimeoutCache
	start  time.Time

	smu      sync.RWMutex
	sessions map[string]*session

	oneShotRR atomic.Uint64 // round-robin shard pick for session-less solves
	closed    atomic.Bool
	admitMu   sync.RWMutex // held shared across enqueue's closed-check + send; exclusively by Close's barrier
	wg        sync.WaitGroup

	// persist is the durability layer (nil without Config.StateDir);
	// stateSeq orders its records (seeded past the replayed maximum so
	// new records always outrank restored ones), restored counts the
	// sessions reconstructed at boot.
	persist  *persister
	stateSeq atomic.Uint64
	restored int

	// epoch is this primary's fencing term (see scenario.SnapshotRecord
	// .Epoch): the highest epoch replayed from the state dir, plus one
	// when Config.Promote booted this server as a failover's winner.
	// Immutable after New — promotion always boots a new Server — so
	// reads need no lock.
	epoch uint64
	// repl tracks replication followers and sync-mode acknowledgement
	// waiters (nil without persistence).
	repl *replState

	// panicLog rate-limits panic stacks to one full log line per server;
	// every later panic only bumps the shard's panics counter.
	panicLog sync.Once
}

// logPanic logs the first solver panic's full stack; the rest are
// counted silently (the panics metric carries the rate).
func (s *Server) logPanic(sp *SolverPanic) {
	s.panicLog.Do(func() {
		log.Printf("serve: solver panic (session %q): %v\n%s", sp.Session, sp.Value, sp.Stack)
	})
}

// New starts a Server: cfg.Shards WarmPool shards, each with a running
// wave worker. With Config.StateDir set it first replays the state
// dir's snapshot + journal and re-registers every durable session —
// estimator feeds resume from their restored counters, degraded serving
// resumes from the restored last-good strategies, and the first solve
// per session re-primes its warm solver (solver warmth is deliberately
// not persisted; it returns after one solve). New fails when the state
// dir is unusable or holds records from a newer schema version.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		tcache:   core.NewTimeoutCache(),
		start:    time.Now(),
		sessions: make(map[string]*session),
	}
	for i := range s.shards {
		sh := &shard{
			idx:  i,
			pool: core.NewWarmPool(),
			reqs: make(chan *task, cfg.MaxQueue),
			stop: make(chan struct{}),
			brk:  breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		}
		s.shards[i] = sh
	}
	if cfg.ReplAck != ReplAckAsync && cfg.ReplAck != ReplAckSync {
		return nil, fmt.Errorf("serve: unknown replication ack mode %q (want %q or %q)", cfg.ReplAck, ReplAckAsync, ReplAckSync)
	}
	if cfg.StateDir == "" && (cfg.ReplAck == ReplAckSync || cfg.Promote) {
		return nil, fmt.Errorf("serve: replication requires a state dir")
	}
	if cfg.StateDir != "" {
		p, state, _, err := openPersister(cfg.StateDir, cfg.SnapshotBytes, cfg.JournalNoSync)
		if err != nil {
			return nil, err
		}
		s.persist = p
		s.stateSeq.Store(p.maxSeq.Load())
		s.epoch = p.maxEpoch.Load()
		if cfg.Promote {
			s.epoch++
		}
		s.repl = newReplState(s)
		for _, st := range state {
			if err := s.restoreSession(st); err != nil {
				// A record that validated at replay but cannot rebuild its
				// session (e.g. an estimator network that no longer converts)
				// is a bug worth failing loudly on: silently dropping it is
				// exactly the state loss this layer exists to prevent.
				p.close()
				return nil, fmt.Errorf("serve: restoring session %q: %w", st.ID, err)
			}
		}
		s.restored = len(state)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
	if cfg.Promote {
		// Make the epoch bump durable before the first request: the
		// snapshot rewrites every session record at the new epoch, so a
		// crash right after promotion still reboots fenced. Failing the
		// promotion is better than serving with an epoch a crash forgets.
		if err := fpReplPromote.Hit(); err != nil {
			s.crash()
			return nil, fmt.Errorf("serve: promotion: %w", err)
		}
		if err := s.snapshotNow(); err != nil {
			s.crash()
			return nil, fmt.Errorf("serve: promotion epoch snapshot: %w", err)
		}
	}
	return s, nil
}

// Epoch returns the server's fencing epoch (0 without persistence or
// before any promotion).
func (s *Server) Epoch() uint64 { return s.epoch }

// Restored returns how many sessions were rebuilt from the state dir.
func (s *Server) Restored() int { return s.restored }

// restoreSession re-registers one session from its durable record. The
// registration is cheap — no solver work happens until the session's
// first request, whose solve re-primes the warm pool from the restored
// estimates.
func (s *Server) restoreSession(st *scenario.SessionState) error {
	binding := st.Solve
	se := &session{
		id:       st.ID,
		sh:       s.shardFor(st.ID),
		binding:  &binding,
		lastGood: st.LastGood,
	}
	if st.Estimator {
		net, err := binding.Network.ToNetwork()
		if err != nil {
			return err
		}
		ad, err := estimate.NewAdaptor(net)
		if err != nil {
			return err
		}
		if s.cfg.EstimatorRelTol > 0 {
			ad.RelTol = s.cfg.EstimatorRelTol
		}
		if err := ad.Restore(estimatesFromWire(st.Estimates)); err != nil {
			return err
		}
		se.adaptor = ad
	}
	s.sessions[st.ID] = se
	return nil
}

// estimatesToWire copies adaptor counters into the snapshot schema.
func estimatesToWire(st []estimate.PathState) []scenario.PathEstimate {
	out := make([]scenario.PathEstimate, len(st))
	for i, e := range st {
		out[i] = scenario.PathEstimate{
			Sent:       e.Sent,
			Lost:       e.Lost,
			SRTTSec:    e.SRTT,
			RTTVarSec:  e.RTTVar,
			RTTSamples: e.RTTSamples,
		}
	}
	return out
}

// estimatesFromWire is the inverse of estimatesToWire. Both sides keep
// the RTT terms in seconds, so restore is bit-exact.
func estimatesFromWire(w []scenario.PathEstimate) []estimate.PathState {
	out := make([]estimate.PathState, len(w))
	for i, e := range w {
		out[i] = estimate.PathState{
			Sent:       e.Sent,
			Lost:       e.Lost,
			SRTT:       e.SRTTSec,
			RTTVar:     e.RTTVarSec,
			RTTSamples: e.RTTSamples,
		}
	}
	return out
}

// captureLocked snapshots one session's durable state into a journal
// record; the caller holds se.mu. Nil when persistence is off or the
// session has no binding yet (nothing durable to say). Only the capture
// happens under the lock: the record shares the session's binding and
// lastGood pointers — both immutable once published — and the estimator
// counters are copied out by State, so framing and file IO run after
// release (lockheld: file writes block).
func (s *Server) captureLocked(se *session) *scenario.SnapshotRecord {
	if s.persist == nil || se.binding == nil {
		return nil
	}
	st := &scenario.SessionState{
		ID:       se.id,
		Solve:    *se.binding,
		LastGood: se.lastGood,
	}
	if se.adaptor != nil {
		st.Estimator = true
		st.Estimates = estimatesToWire(se.adaptor.State())
	}
	return &scenario.SnapshotRecord{
		Version: scenario.SnapshotVersion,
		Seq:     s.stateSeq.Add(1),
		Epoch:   s.epoch,
		Kind:    scenario.RecordSession,
		Session: st,
	}
}

// snapshotNow captures every live session and writes a full compacting
// snapshot. Registry and session locks are released before any file IO,
// but the persister mutex is held from before the first capture through
// the journal truncate: appends serialize on the same mutex, so any
// record the truncate discards was appended — and its session mutated —
// strictly before the captures began, which means the snapshot observes
// that state (or newer, with a higher Seq) and nothing acknowledged is
// lost. Without the barrier a solve on another shard could journal and
// acknowledge newer state between its session's capture and the
// truncate, and a crash would restore the stale capture. Appends (and
// so acknowledgements) queue behind the snapshot for its duration;
// that latency is the price of the guarantee. No deadlock: appenders
// never hold a session or registry lock while taking the persister
// mutex.
func (s *Server) snapshotNow() error {
	if s.persist == nil {
		return nil
	}
	p := s.persist
	p.mu.Lock()
	defer p.mu.Unlock()
	s.smu.RLock()
	ses := make([]*session, 0, len(s.sessions))
	for _, se := range s.sessions {
		ses = append(ses, se)
	}
	s.smu.RUnlock()
	recs := make([]*scenario.SnapshotRecord, 0, len(ses))
	for _, se := range ses {
		se.mu.Lock()
		var rec *scenario.SnapshotRecord
		if !se.dropped {
			rec = s.captureLocked(se)
		}
		se.mu.Unlock()
		if rec != nil {
			recs = append(recs, rec)
		}
	}
	return p.writeSnapshotLocked(recs)
}

// compact runs one snapshot compaction on its own goroutine, so the
// request whose append crossed the journal threshold is acknowledged as
// soon as its own record is durable instead of bearing the whole
// fleet's capture + snapshot IO inside its deadline budget. Singleflight:
// waves on every shard can cross the threshold at once, one spawn wins
// and the rest skip. The goroutine rides s.wg, so Close/crash wait it
// out before the final snapshot and the journal close; once closed is
// set it stands down — Close's own snapshotNow compacts. Failure is
// logged, not fatal — the journal simply keeps growing until a later
// compaction succeeds.
func (s *Server) compact() {
	if !s.persist.snapshotting.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.persist.snapshotting.Store(false)
		if s.closed.Load() {
			return
		}
		if err := s.snapshotNow(); err != nil {
			log.Printf("serve: snapshot compaction failed (journal keeps growing): %v", err)
		}
	}()
}

// shardFor hashes a session ID onto its shard. Stable by construction:
// the same ID always lands on the same shard (and so the same WarmPool
// session solver) for the server's lifetime.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// sessionFor returns the session for id, creating it if needed.
func (s *Server) sessionFor(id string) *session {
	s.smu.RLock()
	se := s.sessions[id]
	s.smu.RUnlock()
	if se != nil {
		return se
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if se = s.sessions[id]; se == nil {
		se = &session{id: id, sh: s.shardFor(id)}
		s.sessions[id] = se
	}
	return se
}

// lookupSession returns the session for id, or nil.
func (s *Server) lookupSession(id string) *session {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return s.sessions[id]
}

// DropSession removes a session: its registry entry, its estimator
// feed, and its warm solver (retired to the shard pool's shape stripes,
// where a future same-shaped session picks the structural state back
// up). Unknown IDs are a no-op. Tasks the session still has queued fail
// with a "session dropped" error.
//
// With persistence on, a drop follows the same durability-before-
// acknowledgement rule as a solve: the drop record must be journaled
// before DropSession returns nil. On append failure the error comes
// back (handleDrop answers 500, counting against the shard breaker) and
// the session — already dropped in memory, its queued and future tasks
// failing with errDropped — stays in the registry carrying its pending
// record, so a client retry re-appends that record instead of falling
// through the unknown-ID no-op into a false 204. The registry entry
// goes only once the record is durable (a compaction that ran in
// between also suffices: it skips dropped sessions, so the truncated
// journal plus the new snapshot already encode the drop, and the
// retried append is a harmless stale record).
func (s *Server) DropSession(id string) error {
	se := s.lookupSession(id)
	if se == nil {
		return nil
	}
	se.mu.Lock()
	if !se.dropped {
		se.dropped = true
		se.adaptor = nil
		if s.persist != nil && se.binding != nil {
			// Seq is assigned inside the critical section so the drop orders
			// after any in-flight capture of this session; the append itself
			// waits for the locks to go.
			se.dropRec = &scenario.SnapshotRecord{
				Version:   scenario.SnapshotVersion,
				Seq:       s.stateSeq.Add(1),
				Epoch:     s.epoch,
				Kind:      scenario.RecordDrop,
				SessionID: id,
			}
		}
	}
	rec := se.dropRec
	se.mu.Unlock()
	se.sh.pool.DropSession(id)
	if rec != nil {
		if err := s.appendDurable(rec); err != nil {
			se.sh.brk.onFault()
			return fmt.Errorf("serve: session drop not durable: %w", err)
		}
	}
	s.smu.Lock()
	if s.sessions[id] == se {
		delete(s.sessions, id)
	}
	s.smu.Unlock()
	return nil
}

// Sessions returns the live session count.
func (s *Server) Sessions() int {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return len(s.sessions)
}

// enqueue admits a task onto the shard's bounded queue. errSaturated
// means the caller should reply 429 with retryAfter; errClosed means
// the server is (or began) shutting down. Holding admitMu shared across
// the closed check and the send guarantees no task slips in after
// Close's drain: Close flips the flag and then takes admitMu
// exclusively, so every task that passed the check here is already in
// the queue — where the stop-drain loop still executes it — before the
// workers are told to stop.
func (s *Server) enqueue(sh *shard, t *task) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return errClosed
	}
	if !sh.brk.allow() {
		return errBreakerOpen
	}
	select {
	case sh.reqs <- t:
		return nil
	default:
		// A half-open probe slot granted by allow must be returned, or a
		// saturated queue would wedge the breaker half-open forever.
		sh.brk.onSkip()
		sh.met.rejected.Add(1)
		return errSaturated
	}
}

// deadlineFor turns a request's budget_ms into an absolute deadline:
// the client's budget capped by MaxBudget, MaxBudget itself when the
// request sets none, and no deadline at all (zero time) when deadlines
// are disabled (negative MaxBudget) and the request asked for nothing.
func (s *Server) deadlineFor(budgetMs float64) time.Time {
	budget := s.cfg.MaxBudget
	if d := time.Duration(budgetMs * float64(time.Millisecond)); budgetMs > 0 && (d < budget || budget < 0) {
		budget = d
	}
	if budget < 0 {
		return time.Time{}
	}
	return time.Now().Add(budget)
}

// retryAfter estimates how long a rejected caller should back off: the
// queue's expected drain time at the shard's median latency, plus
// bounded jitter — every client shed from the same wave sees the same
// queue depth and p50, and identical hints would march them back as one
// synchronized retry storm. The jitter is deterministic (a counter-keyed
// hash stream, not a clock or RNG), so the nth rejection on a shard
// always backs off the same amount and chaos runs replay exactly.
// Clamped to [1s, 30s] whole seconds.
func (s *Server) retryAfter(sh *shard) int {
	var base time.Duration
	if p50 := sh.met.quantile(0.50); p50 > 0 {
		base = time.Duration(len(sh.reqs)) * p50
	}
	// Jitter spans [0, base/2 + 1s): proportional spread under load, at
	// least a second of spread when the queue is empty.
	span := base/2 + time.Second
	jitter := time.Duration(splitmix64(sh.met.retrySeq.Add(1)) % uint64(span))
	secs := int((base + jitter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// splitmix64 mixes a counter into a well-distributed 64-bit value
// (Steele et al.'s SplitMix64 finalizer), the jitter's hash stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Close stops the server gracefully: every already-admitted task is
// still solved (in-flight waves drain), then the shard workers exit.
// With persistence on, the drain ends with a final full snapshot so a
// graceful restart is lossless by construction. Requests arriving after
// Close begin fail with 503. Close is idempotent and safe to call
// concurrently.
func (s *Server) Close() {
	if !s.stop() {
		return
	}
	if s.persist != nil {
		if err := s.snapshotNow(); err != nil {
			// Not fatal for durability: everything acknowledged is already
			// fsync'd in the journal; only the compaction is lost.
			log.Printf("serve: final snapshot: %v", err)
		}
		s.persist.close()
	}
}

// QuiesceReplication wakes parked replication long-polls and pending
// sync-ack waits without stopping the server: parked GET /v1/replicate
// polls answer 204 and sync-mode writes stop waiting for follower acks
// (their records are already locally durable). cmd/dmcd calls it as the
// first step of graceful shutdown, before draining its http.Server —
// otherwise a standby parked in a long poll stalls the HTTP drain for
// the poll's full wait.
func (s *Server) QuiesceReplication() {
	if s.repl != nil {
		s.repl.shutdown()
	}
}

// crash is the hard-stop half of Close that durability tests use to
// simulate kill -9: workers still stop and drain (the goroutine-leak
// detector must stay clean), but no final snapshot runs and nothing is
// flushed beyond what append already made durable — recovery must work
// from exactly the acknowledged journal.
func (s *Server) crash() {
	if !s.stop() {
		return
	}
	if s.persist != nil {
		s.persist.close()
	}
}

// stop flips closed, waits out in-flight admissions, and drains the
// shard workers. Reports false if the server was already stopped.
func (s *Server) stop() bool {
	if !s.closed.CompareAndSwap(false, true) {
		return false
	}
	// Admission barrier: wait out every enqueue that passed the closed
	// check before the flag flipped (each holds admitMu shared until its
	// task is in the queue). After this, nothing new can enter a shard
	// queue, so the workers' stop-drain loops see every admitted task
	// and no caller is ever left waiting on an unexecuted one.
	s.admitMu.Lock()
	s.admitMu.Unlock()
	// Release sync-mode acknowledgement waiters before draining: a
	// drained task parked on a follower ack that will never come (the
	// follower may be what we are shutting down for) must fail fast, not
	// serve out its full ack timeout. Its record is already durable
	// locally either way.
	if s.repl != nil {
		s.repl.shutdown()
	}
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.wg.Wait()
	return true
}

// runShard is the shard worker: block for a first task, coalesce a
// wave around it, execute, repeat. On stop it drains everything already
// admitted before exiting — graceful shutdown never abandons an
// admitted task.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case t := <-sh.reqs:
			s.safeWave(sh, t)
		case <-sh.stop:
			for {
				select {
				case t := <-sh.reqs:
					s.safeWave(sh, t)
				default:
					return
				}
			}
		}
	}
}

// safeWave is the shard worker's last line of defense: exec recovers
// panics per task, so nothing should escape a wave — but if something
// does (a panic in wave assembly itself), the worker must not die with
// callers parked on t.done. Every undelivered task in the wave gets the
// panic as its error, and the worker loop continues.
func (s *Server) safeWave(sh *shard, first *task) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		sp := &SolverPanic{Value: p, Stack: debug.Stack()}
		if pe, ok := p.(*conc.PanicError); ok {
			sp = &SolverPanic{Value: pe.Value, Stack: pe.Stack}
		}
		sh.met.panics.Add(1)
		s.logPanic(sp)
		first.deliver(taskResult{err: sp})
		for _, t := range sh.batch {
			// Tasks from an already-completed wave are skipped by the
			// delivered guard.
			t.deliver(taskResult{err: sp})
		}
	}()
	s.wave(sh, first)
}

// wave coalesces up to MaxBatch tasks — waiting at most BatchWindow for
// stragglers, but firing early once arrivals go quiet for a quarter
// window (callers blocked on this wave's results cannot send more, so
// idling out the full window would only add latency) — and solves them
// as one batch across the worker pool. Per-session warm affinity comes
// from the keyed pool, so which wave a task lands in never affects its
// result, only its latency.
func (s *Server) wave(sh *shard, first *task) {
	batch := append(sh.batch[:0], first)
	if s.cfg.BatchWindow > 0 {
		gapD := s.cfg.BatchWindow / 4
		if gapD <= 0 {
			gapD = s.cfg.BatchWindow
		}
		total := time.NewTimer(s.cfg.BatchWindow)
		gap := time.NewTimer(gapD)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
				if !gap.Stop() {
					<-gap.C
				}
				gap.Reset(gapD)
			case <-gap.C:
				break collect
			case <-total.C:
				break collect
			case <-sh.stop:
				// Shutdown cuts the window short; the queue's remainder
				// drains in runShard's stop loop.
				break collect
			}
		}
		total.Stop()
		gap.Stop()
	} else {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
			default:
				goto full
			}
		}
	full:
	}
	sh.batch = batch
	sh.met.waves.Add(1)
	conc.ForEach(len(batch), func(i int) error {
		s.exec(sh, batch[i])
		return nil
	})
}

// exec runs one task and delivers its result. Shedding happens here,
// after queueing and before solver work: abandoned tasks (client gone)
// and expired budgets cost nothing but the check. Any panic below —
// injected or real — is contained to this task: the session path
// quarantines its solver in solveTask's recover, everything else is
// caught by the outer recover, and either way the caller gets a typed
// 500 and the wave rolls on.
func (s *Server) exec(sh *shard, t *task) {
	if t.abandoned.Load() {
		sh.met.abandonedTasks.Add(1)
		sh.brk.onSkip()
		t.deliver(taskResult{err: errAbandoned})
		return
	}
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		sh.met.shedExpired.Add(1)
		sh.brk.onSkip()
		t.deliver(taskResult{err: errExpired})
		return
	}
	var r taskResult
	var rec *scenario.SnapshotRecord
	func() {
		defer func() {
			if p := recover(); p != nil {
				if sp, ok := p.(*SolverPanic); ok {
					r = taskResult{err: sp}
					return
				}
				r = taskResult{err: &SolverPanic{Value: p, Stack: debug.Stack()}}
			}
		}()
		if err := fpExec.Hit(); err != nil {
			r.err = fmt.Errorf("serve: exec: %w", err)
			return
		}
		r.res, r.resolved, rec, r.err = s.solveTask(sh, t)
	}()
	if r.err == nil && rec != nil {
		// Durability before acknowledgement: a solve whose state capture
		// cannot be journaled fails — answering 200 and then forgetting
		// the session on the next crash would be a silent lie. The error
		// counts against the shard breaker like any other server fault.
		if err := s.appendDurable(rec); err != nil {
			r = taskResult{err: fmt.Errorf("serve: session state not durable: %w", err)}
		} else if s.persist.shouldSnapshot() {
			s.compact()
		}
	}
	var sp *SolverPanic
	if errors.As(r.err, &sp) {
		sh.met.panics.Add(1)
		s.logPanic(sp)
	}
	if isServerFault(r.err) {
		sh.brk.onFault()
	} else {
		sh.brk.onSuccess()
	}
	sh.met.observe(time.Since(t.enq), r.res.Warm, r.err != nil)
	t.deliver(r)
}

// solveTask executes a task against its session's warm solver (or the
// package-level pooled solvers for one-shots). The wire result is
// extracted while the session lock is held, so a same-session re-solve
// can never rebuild the solver storage under the extraction. Successful
// session solves also return the session's durable-state capture (nil
// with persistence off); the caller journals it after the lock is gone.
func (s *Server) solveTask(sh *shard, t *task) (res scenario.SolveResult, resolved bool, rec *scenario.SnapshotRecord, err error) {
	var to *core.Timeouts
	if t.kind == taskSolve && t.objective == scenario.ObjectiveRandom {
		to, err = s.tcache.OptimalTimeouts(t.net, t.toOpts)
		if err != nil {
			return scenario.SolveResult{}, false, nil, err
		}
	}
	if t.sess == nil {
		res, resolved, err = oneShot(t, to)
		return res, resolved, nil, err
	}
	se := t.sess
	se.mu.Lock()
	defer se.mu.Unlock()
	// Registered after the unlock defer, so this recover runs FIRST
	// (LIFO) — while se.mu is still held. A panic anywhere in the
	// session solve leaves the warm solver in an unknown state:
	// quarantine it (next solve re-primes cold on a fresh solver) and
	// detach any estimator feed whose adaptor shared the lineage. The
	// slot mutex inside QuarantineSession is free by now — the panic
	// already unwound solveSession's critical section.
	defer func() {
		if p := recover(); p != nil {
			se.sh.pool.QuarantineSession(se.id)
			se.adaptor = nil
			res, resolved, rec = scenario.SolveResult{}, false, nil
			err = &SolverPanic{Session: se.id, Value: p, Stack: debug.Stack()}
		}
	}()
	if se.dropped {
		return scenario.SolveResult{}, false, nil, errDropped
	}

	if t.kind == taskPoll {
		if se.adaptor == nil {
			return scenario.SolveResult{}, false, nil, fmt.Errorf("serve: session %q has no estimator feed", se.id)
		}
		sol, resolved, err := se.adaptor.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, nil, err
		}
		res := scenario.NewSolveResult(sol, nil)
		se.lastGood = &res
		return res, resolved, s.captureLocked(se), nil
	}

	if t.estimator {
		// (Re)bind the estimator feed to this network and solve through
		// it: the adaptor owns the session's warm solver lineage from
		// here, and /v1/observe drives it. Estimator state starts fresh
		// per the §VIII-A bootstrap (0% loss until observations arrive).
		ad, err := estimate.NewAdaptor(t.net)
		if err != nil {
			return scenario.SolveResult{}, false, nil, err
		}
		if s.cfg.EstimatorRelTol > 0 {
			ad.RelTol = s.cfg.EstimatorRelTol
		}
		sol, _, err := ad.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, nil, err
		}
		se.adaptor = ad
		res := scenario.NewSolveResult(sol, nil)
		se.lastGood = &res
		if t.wire != nil {
			se.binding = t.wire
		}
		return res, true, s.captureLocked(se), nil
	}
	// An explicit plain solve supersedes any estimator feed: the client
	// has switched to driving re-solves itself.
	se.adaptor = nil

	var sol *core.Solution
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = se.sh.pool.SolveSessionMinCost(se.id, t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = se.sh.pool.SolveSessionRandom(se.id, t.net, to)
	default:
		sol, err = se.sh.pool.SolveSession(se.id, t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, nil, err
	}
	out := scenario.NewSolveResult(sol, to)
	se.lastGood = &out
	if t.wire != nil {
		se.binding = t.wire
	}
	return out, true, s.captureLocked(se), nil
}

// oneShot solves a session-less task on the package-level pooled
// solvers.
func oneShot(t *task, to *core.Timeouts) (scenario.SolveResult, bool, error) {
	var sol *core.Solution
	var err error
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = core.SolveMinCost(t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = core.SolveQualityRandom(t.net, to)
	default:
		sol, err = core.SolveQuality(t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, err
	}
	return scenario.NewSolveResult(sol, to), true, nil
}

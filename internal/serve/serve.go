// Package serve implements the dmcd online solver service: N sharded
// core.WarmPools serving session-keyed solve/re-solve requests, with
// concurrent requests coalesced into batched solve waves per shard,
// per-session §VIII-A estimator feeds (estimate.Adaptor) driving warm
// re-solves on drift, admission control with backpressure, and
// per-shard metrics. The HTTP/JSON wire schema lives in
// internal/scenario; cmd/dmcd wraps this package in a binary.
//
// Request flow: a session ID hashes onto a shard, whose bounded queue
// either admits the task or rejects it (HTTP 429 + Retry-After). The
// shard's worker collects admitted tasks into a wave — up to MaxBatch
// tasks within BatchWindow — and fans the wave across the worker pool,
// each task re-solving on the session's warm solver (basis and column
// affinity survive fleet churn because the pool is keyed, not
// positional). Estimator sessions route through their Adaptor instead,
// which re-solves only when the fed estimates drift.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmc/internal/conc"
	"dmc/internal/core"
	"dmc/internal/estimate"
	"dmc/internal/scenario"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Shards is the number of independent WarmPool shards (sessions
	// hash onto one by ID). Zero means GOMAXPROCS.
	Shards int
	// BatchWindow is how long a wave waits to coalesce more requests
	// after its first. Zero means 500µs; negative disables waiting
	// (a wave takes only what is already queued).
	BatchWindow time.Duration
	// MaxBatch caps tasks per wave. Zero means 256.
	MaxBatch int
	// MaxQueue bounds each shard's admitted-task queue; a full queue
	// rejects with 429 + Retry-After. Zero means 1024.
	MaxQueue int
	// EstimatorRelTol overrides the estimator feeds' re-solve drift
	// tolerance (estimate.Adaptor.RelTol). Zero keeps the adaptor
	// default (10%).
	EstimatorRelTol float64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	return c
}

// errClosed rejects tasks arriving in the instant the server shut down.
var errClosed = errors.New("serve: server closed")

// errSaturated rejects tasks when a shard's admission queue is full.
var errSaturated = errors.New("serve: queue full")

// errDropped rejects tasks whose session was dropped while they queued.
var errDropped = errors.New("serve: session dropped")

type taskKind uint8

const (
	// taskSolve solves the task's network explicitly.
	taskSolve taskKind = iota
	// taskPoll polls a session's estimator feed: re-solve iff drifted.
	taskPoll
)

// task is one admitted unit of work waiting for (or inside) a wave.
type task struct {
	kind      taskKind
	sess      *session // nil for stateless one-shot solves
	estimator bool     // (re)bind an estimator feed on this solve

	net        *core.Network
	objective  string
	minQuality float64
	toOpts     core.TimeoutOptions

	done chan taskResult // buffered(1): exec never blocks on a gone client
	enq  time.Time
}

type taskResult struct {
	res      scenario.SolveResult
	resolved bool
	err      error
}

// session is the serve-level state of one session ID: its shard, and —
// for estimator sessions — the §VIII-A adaptor feed. The mutex
// serializes everything per session: solves (so result extraction can
// never race a same-session re-solve clobbering solver storage),
// estimator observations, and drop.
type session struct {
	id string
	sh *shard

	mu      sync.Mutex
	adaptor *estimate.Adaptor
	dropped bool
}

// shard is one WarmPool plus its admission queue and worker.
type shard struct {
	idx   int
	pool  *core.WarmPool
	reqs  chan *task
	stop  chan struct{}
	batch []*task // wave scratch, touched only by the shard worker
	met   shardMetrics
}

// Server is the online solver service. Create with New, serve HTTP via
// Handler, stop with Close. Safe for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard
	tcache *core.TimeoutCache
	start  time.Time

	smu      sync.RWMutex
	sessions map[string]*session

	oneShotRR atomic.Uint64 // round-robin shard pick for session-less solves
	closed    atomic.Bool
	admitMu   sync.RWMutex // held shared across enqueue's closed-check + send; exclusively by Close's barrier
	wg        sync.WaitGroup
}

// New starts a Server: cfg.Shards WarmPool shards, each with a running
// wave worker.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		tcache:   core.NewTimeoutCache(),
		start:    time.Now(),
		sessions: make(map[string]*session),
	}
	for i := range s.shards {
		sh := &shard{
			idx:  i,
			pool: core.NewWarmPool(),
			reqs: make(chan *task, cfg.MaxQueue),
			stop: make(chan struct{}),
		}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.runShard(sh)
	}
	return s
}

// shardFor hashes a session ID onto its shard. Stable by construction:
// the same ID always lands on the same shard (and so the same WarmPool
// session solver) for the server's lifetime.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// sessionFor returns the session for id, creating it if needed.
func (s *Server) sessionFor(id string) *session {
	s.smu.RLock()
	se := s.sessions[id]
	s.smu.RUnlock()
	if se != nil {
		return se
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if se = s.sessions[id]; se == nil {
		se = &session{id: id, sh: s.shardFor(id)}
		s.sessions[id] = se
	}
	return se
}

// lookupSession returns the session for id, or nil.
func (s *Server) lookupSession(id string) *session {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return s.sessions[id]
}

// DropSession removes a session: its registry entry, its estimator
// feed, and its warm solver (retired to the shard pool's shape stripes,
// where a future same-shaped session picks the structural state back
// up). Unknown IDs are a no-op. Tasks the session still has queued fail
// with a "session dropped" error.
func (s *Server) DropSession(id string) {
	s.smu.Lock()
	se := s.sessions[id]
	delete(s.sessions, id)
	s.smu.Unlock()
	if se == nil {
		return
	}
	se.mu.Lock()
	se.dropped = true
	se.adaptor = nil
	se.mu.Unlock()
	se.sh.pool.DropSession(id)
}

// Sessions returns the live session count.
func (s *Server) Sessions() int {
	s.smu.RLock()
	defer s.smu.RUnlock()
	return len(s.sessions)
}

// enqueue admits a task onto the shard's bounded queue. errSaturated
// means the caller should reply 429 with retryAfter; errClosed means
// the server is (or began) shutting down. Holding admitMu shared across
// the closed check and the send guarantees no task slips in after
// Close's drain: Close flips the flag and then takes admitMu
// exclusively, so every task that passed the check here is already in
// the queue — where the stop-drain loop still executes it — before the
// workers are told to stop.
func (s *Server) enqueue(sh *shard, t *task) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return errClosed
	}
	select {
	case sh.reqs <- t:
		return nil
	default:
		sh.met.rejected.Add(1)
		return errSaturated
	}
}

// retryAfter estimates how long a rejected caller should back off:
// the queue's expected drain time at the shard's median latency,
// clamped to [1s, 30s] whole seconds.
func (s *Server) retryAfter(sh *shard) int {
	p50 := sh.met.quantile(0.50)
	if p50 <= 0 {
		return 1
	}
	secs := int((time.Duration(len(sh.reqs))*p50 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Close stops the server gracefully: every already-admitted task is
// still solved (in-flight waves drain), then the shard workers exit.
// Requests arriving after Close begin fail with 503. Close is
// idempotent and safe to call concurrently.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	// Admission barrier: wait out every enqueue that passed the closed
	// check before the flag flipped (each holds admitMu shared until its
	// task is in the queue). After this, nothing new can enter a shard
	// queue, so the workers' stop-drain loops see every admitted task
	// and no caller is ever left waiting on an unexecuted one.
	s.admitMu.Lock()
	s.admitMu.Unlock()
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.wg.Wait()
}

// runShard is the shard worker: block for a first task, coalesce a
// wave around it, execute, repeat. On stop it drains everything already
// admitted before exiting — graceful shutdown never abandons an
// admitted task.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case t := <-sh.reqs:
			s.wave(sh, t)
		case <-sh.stop:
			for {
				select {
				case t := <-sh.reqs:
					s.wave(sh, t)
				default:
					return
				}
			}
		}
	}
}

// wave coalesces up to MaxBatch tasks — waiting at most BatchWindow for
// stragglers, but firing early once arrivals go quiet for a quarter
// window (callers blocked on this wave's results cannot send more, so
// idling out the full window would only add latency) — and solves them
// as one batch across the worker pool. Per-session warm affinity comes
// from the keyed pool, so which wave a task lands in never affects its
// result, only its latency.
func (s *Server) wave(sh *shard, first *task) {
	batch := append(sh.batch[:0], first)
	if s.cfg.BatchWindow > 0 {
		gapD := s.cfg.BatchWindow / 4
		if gapD <= 0 {
			gapD = s.cfg.BatchWindow
		}
		total := time.NewTimer(s.cfg.BatchWindow)
		gap := time.NewTimer(gapD)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
				if !gap.Stop() {
					<-gap.C
				}
				gap.Reset(gapD)
			case <-gap.C:
				break collect
			case <-total.C:
				break collect
			case <-sh.stop:
				// Shutdown cuts the window short; the queue's remainder
				// drains in runShard's stop loop.
				break collect
			}
		}
		total.Stop()
		gap.Stop()
	} else {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-sh.reqs:
				batch = append(batch, t)
			default:
				goto full
			}
		}
	full:
	}
	sh.batch = batch
	sh.met.waves.Add(1)
	conc.ForEach(len(batch), func(i int) error {
		s.exec(sh, batch[i])
		return nil
	})
}

// exec runs one task and delivers its result.
func (s *Server) exec(sh *shard, t *task) {
	var r taskResult
	r.res, r.resolved, r.err = s.solveTask(sh, t)
	sh.met.observe(time.Since(t.enq), r.res.Warm, r.err != nil)
	t.done <- r
}

// solveTask executes a task against its session's warm solver (or the
// package-level pooled solvers for one-shots). The wire result is
// extracted while the session lock is held, so a same-session re-solve
// can never rebuild the solver storage under the extraction.
func (s *Server) solveTask(sh *shard, t *task) (scenario.SolveResult, bool, error) {
	var to *core.Timeouts
	if t.kind == taskSolve && t.objective == scenario.ObjectiveRandom {
		var err error
		to, err = s.tcache.OptimalTimeouts(t.net, t.toOpts)
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
	}
	if t.sess == nil {
		return oneShot(t, to)
	}
	se := t.sess
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.dropped {
		return scenario.SolveResult{}, false, errDropped
	}

	if t.kind == taskPoll {
		if se.adaptor == nil {
			return scenario.SolveResult{}, false, fmt.Errorf("serve: session %q has no estimator feed", se.id)
		}
		sol, resolved, err := se.adaptor.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		return scenario.NewSolveResult(sol, nil), resolved, nil
	}

	if t.estimator {
		// (Re)bind the estimator feed to this network and solve through
		// it: the adaptor owns the session's warm solver lineage from
		// here, and /v1/observe drives it. Estimator state starts fresh
		// per the §VIII-A bootstrap (0% loss until observations arrive).
		ad, err := estimate.NewAdaptor(t.net)
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		if s.cfg.EstimatorRelTol > 0 {
			ad.RelTol = s.cfg.EstimatorRelTol
		}
		sol, _, err := ad.Solution()
		if err != nil {
			return scenario.SolveResult{}, false, err
		}
		se.adaptor = ad
		return scenario.NewSolveResult(sol, nil), true, nil
	}
	// An explicit plain solve supersedes any estimator feed: the client
	// has switched to driving re-solves itself.
	se.adaptor = nil

	var sol *core.Solution
	var err error
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = se.sh.pool.SolveSessionMinCost(se.id, t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = se.sh.pool.SolveSessionRandom(se.id, t.net, to)
	default:
		sol, err = se.sh.pool.SolveSession(se.id, t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, err
	}
	return scenario.NewSolveResult(sol, to), true, nil
}

// oneShot solves a session-less task on the package-level pooled
// solvers.
func oneShot(t *task, to *core.Timeouts) (scenario.SolveResult, bool, error) {
	var sol *core.Solution
	var err error
	switch t.objective {
	case scenario.ObjectiveMinCost:
		sol, err = core.SolveMinCost(t.net, t.minQuality)
	case scenario.ObjectiveRandom:
		sol, err = core.SolveQualityRandom(t.net, to)
	default:
		sol, err = core.SolveQuality(t.net)
	}
	if err != nil {
		return scenario.SolveResult{}, false, err
	}
	return scenario.NewSolveResult(sol, to), true, nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmc/internal/estimate"
	"dmc/internal/fault"
	"dmc/internal/scenario"
)

// restartIters is how many kill-9/restart cycles TestCrashRestartFleet
// runs: 2 by default (tier-1 keeps this test cheap), raised via
// DMC_RESTART_ITERS by `make chaos-restart`.
func restartIters(t *testing.T) int {
	if s := os.Getenv("DMC_RESTART_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("DMC_RESTART_ITERS=%q is not a positive integer", s)
		}
		return n
	}
	return 2
}

// estSession pairs a server-side estimator session with its
// uninterrupted reference adaptor: the reference sees exactly the
// observations the server acknowledged, across every crash, so the
// restored server state must match it bit-for-bit.
type estSession struct {
	id   string
	wire scenario.Network
	ref  *estimate.Adaptor
}

// randomObs builds one observation batch; the mirror into the reference
// adaptor applies the identical conversion handleObserve does.
func randomObs(rng *rand.Rand, paths int) []scenario.PathObservation {
	obs := make([]scenario.PathObservation, 0, paths)
	for p := 0; p < paths; p++ {
		sent := 20 + rng.IntN(80)
		obs = append(obs, scenario.PathObservation{
			Path: p,
			Sent: sent,
			Lost: rng.IntN(sent / 5),
			RTTMs: []float64{
				40 + 200*rng.Float64(),
				40 + 200*rng.Float64(),
			},
		})
	}
	return obs
}

func mirrorObs(ref *estimate.Adaptor, obs []scenario.PathObservation) {
	for _, p := range obs {
		ref.ObserveSends(p.Path, p.Sent)
		ref.ObserveLosses(p.Path, p.Lost)
		for _, ms := range p.RTTMs {
			ref.ObserveRTT(p.Path, time.Duration(ms*float64(time.Millisecond)))
		}
	}
}

// restartStorm arms the persistence seams alongside the solver seams —
// failed appends must fail their requests (never acknowledge state the
// journal does not hold), and the daemon must keep serving through all
// of it.
func restartStorm(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Points: map[string][]fault.Spec{
			"persist.write": {{Kind: fault.Error, Prob: 0.15}},
			"persist.fsync": {{Kind: fault.Error, Prob: 0.10}},
			"serve.exec": {
				{Kind: fault.Error, Prob: 0.10},
				{Kind: fault.Latency, Prob: 0.10, Latency: time.Millisecond},
			},
			"core.resolve.warm": {{Kind: fault.Error, Prob: 0.15}},
		},
	}
}

// TestCrashRestartFleet is the durability tentpole: a loaded fleet is
// hard-stopped (simulated kill -9: no final snapshot, nothing beyond
// acknowledged journal records survives) mid-activity, its journal gets
// a torn garbage suffix, and the restarted server must
//
//   - boot (truncating the tear to the last valid record),
//   - restore every live session and not the dropped one,
//   - answer every estimator session with counters EXACTLY equal to an
//     uninterrupted reference adaptor fed the same acknowledged
//     observations, and solve to the same quality,
//   - recover warm serving for the plain sessions after one re-priming
//     solve, and
//   - keep the guarantee across repeated cycles, fault storms included.
func TestCrashRestartFleet(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:      2,
		BatchWindow: time.Millisecond,
		StateDir:    dir,
		// Small threshold so compaction runs for real during the test.
		SnapshotBytes: 16 << 10,
	}
	rng := rand.New(rand.NewPCG(42, 7))

	const nEst, nPlain = 8, 8
	ests := make([]*estSession, nEst)
	for i := range ests {
		wire := testNetwork(rng, 3)
		ref, err := estimate.NewAdaptor(toCore(t, wire))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = &estSession{id: fmt.Sprintf("est-%d", i), wire: wire, ref: ref}
	}
	plainWires := make([]scenario.Network, nPlain)
	for i := range plainWires {
		plainWires[i] = testNetwork(rng, 3)
	}
	plainID := func(i int) string { return fmt.Sprintf("plain-%d", i) }

	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	// Initial binds: estimator feeds and plain session solves.
	for _, e := range ests {
		solveOK(t, ts.URL, scenario.SolveRequest{
			Solve: scenario.Solve{Network: e.wire}, SessionID: e.id, Estimator: true,
		})
	}
	for i, w := range plainWires {
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: w}, SessionID: plainID(i)})
	}

	for cycle := 0; cycle < restartIters(t); cycle++ {
		// Estimator traffic runs fault-free: handleObserve applies
		// counters before the poll is journaled, so a failed poll would
		// leave server and reference disagreeing about observations the
		// client was never acknowledged for. The durability contract is
		// about acknowledged state; the references mirror exactly that.
		for round := 0; round < 3; round++ {
			for _, e := range ests {
				obs := randomObs(rng, len(e.wire.Paths))
				status, body := postJSON(t, ts.URL+"/v1/observe", scenario.ObserveRequest{SessionID: e.id, Paths: obs})
				if status != http.StatusOK {
					t.Fatalf("cycle %d observe %s: status %d: %s", cycle, e.id, status, body)
				}
				mirrorObs(e.ref, obs)
			}
		}

		// A victim session is created, acknowledged, then dropped: the
		// drop must be durable too (restoring a deleted session is a
		// privacy bug, not just a correctness one).
		victim := fmt.Sprintf("victim-%d", cycle)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: plainWires[0]}, SessionID: victim})
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+victim, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s: status %d", victim, resp.StatusCode)
		}

		// Fault storm over plain traffic: torn writes and failed fsyncs
		// fail their requests; the fleet keeps serving.
		fault.Activate(restartStorm(1000 + uint64(cycle)))
		for i := 0; i < 40; i++ {
			pi := rng.IntN(nPlain)
			status, body := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{
				Solve:     scenario.Solve{Network: driftWire(rng, plainWires[pi], 0.05)},
				SessionID: plainID(pi),
			})
			if status != http.StatusOK && status < 500 {
				t.Fatalf("cycle %d storm solve: unexpected status %d: %s", cycle, status, body)
			}
		}
		fault.Deactivate()

		// Settle fault-free so every plain session's binding is
		// journaled, then verify compaction ran this cycle. Compaction is
		// asynchronous — the request that crosses the threshold does not
		// wait for it — so give the goroutine a beat to land.
		for i := range plainWires {
			solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: plainWires[i]}, SessionID: plainID(i)})
		}
		for deadline := time.Now().Add(5 * time.Second); srv.persist.snapshots.Load() == 0 && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		if srv.persist.snapshots.Load() == 0 {
			t.Errorf("cycle %d: no compacting snapshot ran (journal %d bytes, threshold %d)",
				cycle, srv.persist.journalBytes.Load(), cfg.SnapshotBytes)
		}

		// kill -9 under concurrent load: requests racing the crash get
		// honest errors; everything acknowledged must survive.
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					body, _ := json.Marshal(scenario.SolveRequest{
						Solve:     scenario.Solve{Network: plainWires[g%nPlain]},
						SessionID: plainID(g % nPlain),
					})
					resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}(g)
		}
		time.Sleep(2 * time.Millisecond)
		srv.crash()
		wg.Wait()
		ts.Close()

		// Tear the journal: a crash mid-append leaves a garbage suffix.
		jf, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
			t.Fatal(err)
		}
		jf.Close()

		// Restart from the state dir.
		srv, err = New(cfg)
		if err != nil {
			t.Fatalf("cycle %d restart: %v", cycle, err)
		}
		ts = httptest.NewServer(srv.Handler())

		m := srv.Metrics()
		if m.Durability == nil {
			t.Fatal("no durability metrics with StateDir set")
		}
		if m.Durability.RestoredSessions != nEst+nPlain {
			t.Fatalf("cycle %d: restored %d sessions, want %d", cycle, m.Durability.RestoredSessions, nEst+nPlain)
		}
		if m.Durability.TruncatedBytes == 0 {
			t.Errorf("cycle %d: torn journal suffix was not truncated", cycle)
		}
		if srv.lookupSession(victim) != nil {
			t.Errorf("cycle %d: dropped session %s was resurrected", cycle, victim)
		}

		// Estimator sessions: restored counters must equal the reference
		// adaptor's exactly, and a poll must solve to the same quality a
		// fresh adaptor restored from the reference would.
		for _, e := range ests {
			se := srv.lookupSession(e.id)
			if se == nil || se.adaptor == nil {
				t.Fatalf("cycle %d: estimator session %s not restored", cycle, e.id)
			}
			got, want := se.adaptor.State(), e.ref.State()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cycle %d: session %s restored estimates diverged\n got %+v\nwant %+v", cycle, e.id, got, want)
			}
			status, body := postJSON(t, ts.URL+"/v1/observe", scenario.ObserveRequest{SessionID: e.id})
			if status != http.StatusOK {
				t.Fatalf("cycle %d: poll %s after restart: status %d: %s", cycle, e.id, status, body)
			}
			var pr scenario.SolveResponse
			if err := json.Unmarshal(body, &pr); err != nil || pr.Result == nil {
				t.Fatalf("cycle %d: poll %s: bad body %s", cycle, e.id, body)
			}
			fresh, err := estimate.NewAdaptor(toCore(t, e.wire))
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(e.ref.State()); err != nil {
				t.Fatal(err)
			}
			refSol, _, err := fresh.Solution()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pr.Result.Quality-refSol.Quality) > 1e-9 {
				t.Errorf("cycle %d: session %s quality %.12f, reference %.12f",
					cycle, e.id, pr.Result.Quality, refSol.Quality)
			}
		}

		// Plain sessions: the first solve re-primes the warm solver from
		// the restored binding; the re-solve after drift must be warm
		// again (warmth is rebuilt, not persisted).
		for i, w := range plainWires {
			solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: w}, SessionID: plainID(i)})
			r := solveOK(t, ts.URL, scenario.SolveRequest{
				Solve: scenario.Solve{Network: driftWire(rng, w, 0.03)}, SessionID: plainID(i),
			})
			if !r.Result.Warm {
				t.Errorf("cycle %d: session %s re-solve after restart was not warm", cycle, plainID(i))
			}
		}
	}

	// Graceful path: Close writes a final snapshot, and a restart from
	// it alone restores the whole fleet.
	ts.Close()
	srv.Close()
	if srv.persist.snapshots.Load() == 0 {
		t.Error("graceful Close wrote no final snapshot")
	}
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after graceful Close: %v", err)
	}
	defer srv2.Close()
	if got := srv2.Metrics().Durability.RestoredSessions; got != nEst+nPlain {
		t.Errorf("after graceful restart: restored %d sessions, want %d", got, nEst+nPlain)
	}
	for _, e := range ests {
		se := srv2.lookupSession(e.id)
		if se == nil || se.adaptor == nil {
			t.Fatalf("graceful restart lost estimator session %s", e.id)
		}
		if got, want := se.adaptor.State(), e.ref.State(); !reflect.DeepEqual(got, want) {
			t.Fatalf("graceful restart diverged for %s\n got %+v\nwant %+v", e.id, got, want)
		}
	}
}

// TestDropDurability: a drop whose journal append fails must answer 500
// — never a 204 the disk cannot back — keep failing honestly on retry
// while the fault persists (the session must not fall through the
// unknown-ID no-op into a false 204), and become durable once a retry
// succeeds: after a crash the session stays gone.
func TestDropDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, BatchWindow: -1, StateDir: dir}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewPCG(3, 9))
	wire := testNetwork(rng, 3)
	solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "doomed"})

	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/doomed", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	fault.Activate(&fault.Plan{Seed: 1, Points: map[string][]fault.Spec{
		"persist.write": {{Kind: fault.Error, Prob: 1}},
	}})
	if status := del(); status != http.StatusInternalServerError {
		t.Fatalf("drop with failing journal: status %d, want 500", status)
	}
	// The drop took effect in memory — solves answer 410 Gone — but the
	// acknowledgement is withheld until the record is on disk.
	status, _ := postJSON(t, ts.URL+"/v1/solve", scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "doomed"})
	if status != http.StatusGone {
		t.Fatalf("solve on pending-drop session: status %d, want 410", status)
	}
	if status := del(); status != http.StatusInternalServerError {
		t.Fatalf("retried drop with failing journal: status %d, want 500", status)
	}
	fault.Deactivate()
	if status := del(); status != http.StatusNoContent {
		t.Fatalf("retried drop after fault cleared: status %d, want 204", status)
	}

	srv.crash()
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	if srv2.lookupSession("doomed") != nil {
		t.Error("acknowledged drop did not survive the crash")
	}
}

// TestSnapshotCompactionKeepsAckedState: compaction must never erase an
// acknowledged journal record it did not capture. A session is solved
// sequentially with drifting networks — every 200 means the binding is
// journaled before the response — while a second goroutine hammers full
// compacting snapshots; after a hard stop, the restored binding must be
// the last acknowledged one. Without the persister-mutex barrier around
// capture+truncate, a snapshot could capture the session, lose the race
// to a newer acknowledged append, and then truncate that record away.
func TestSnapshotCompactionKeepsAckedState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, BatchWindow: -1, StateDir: dir}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := srv.snapshotNow(); err != nil {
				t.Errorf("snapshotNow: %v", err)
				return
			}
		}
	}()

	rng := rand.New(rand.NewPCG(11, 4))
	wire := testNetwork(rng, 3)
	for i := 0; i < 40; i++ {
		wire = driftWire(rng, wire, 0.05)
		solveOK(t, ts.URL, scenario.SolveRequest{Solve: scenario.Solve{Network: wire}, SessionID: "s"})
	}
	stop.Store(true)
	wg.Wait()
	srv.crash()
	ts.Close()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	se := srv2.lookupSession("s")
	if se == nil {
		t.Fatal("session not restored")
	}
	se.mu.Lock()
	got, err := json.Marshal(se.binding.Network)
	se.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restored binding is not the last acknowledged solve\n got %s\nwant %s", got, want)
	}
}

package serve

import (
	"testing"

	"dmc/internal/leak"
)

// TestMain fails the package when a test leaks server goroutines (wave
// workers, session queues, handler connections): forgetting Close here
// contaminates every later test's timing.
func TestMain(m *testing.M) {
	leak.VerifyTestMain(m)
}

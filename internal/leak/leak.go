// Package leak verifies at the end of a test binary that no goroutines
// outlived the tests — the stdlib-only equivalent of go.uber.org/goleak.
//
// The serving stack spawns goroutines aggressively (wave workers,
// session queues, HTTP handlers, chaos storms); a test that forgets to
// Close a server or drain a session leaks workers that the next test's
// timing then depends on. Wiring VerifyTestMain into a package's
// TestMain turns that silent cross-test contamination into a hard
// failure naming the leaked stacks.
//
// Goroutines are snapshotted via runtime.Stack after the tests finish.
// Benign stacks are filtered: the test framework's own goroutines,
// signal handling, and net/http's keepalive connection loops, which
// park briefly on idle connections after a client round-trip and drain
// on their own. Because legitimate shutdown is asynchronous (Close
// returns before workers observe it), the check retries with backoff
// for a grace period before declaring a leak.
package leak

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// maxWait is the grace period for goroutines that are already shutting
// down when the check starts.
const maxWait = 5 * time.Second

// testMain is the subset of *testing.M the verifier needs (an interface
// so the package itself stays testable without a nested test binary).
type testMain interface{ Run() int }

// VerifyTestMain runs the package's tests and exits nonzero when
// goroutines leak:
//
//	func TestMain(m *testing.M) { leak.VerifyTestMain(m) }
func VerifyTestMain(m testMain) {
	code := m.Run()
	if code == 0 {
		if err := Check(); err != nil {
			fmt.Fprintf(os.Stderr, "leak: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check waits out the grace period and returns an error describing any
// goroutines that remain beyond the benign set.
func Check() error {
	var leaked []string
	delay := 1 * time.Millisecond
	for deadline := time.Now().Add(maxWait); ; {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return fmt.Errorf("%d goroutine(s) outlived the tests:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}

// leakedGoroutines snapshots all goroutine stacks and drops the benign
// ones.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g = strings.TrimSpace(g); g != "" && !benign(g) {
			out = append(out, g)
		}
	}
	return out
}

// benignMarkers appear in stacks that are expected to exist after a
// test binary's tests complete. runtime.Stack already excludes system
// goroutines (GC workers, the scavenger), so only user-visible
// infrastructure needs listing.
var benignMarkers = []string{
	// The goroutine running this check, and the testing framework's own
	// machinery (parked parent tests, the main test goroutine).
	"dmc/internal/leak.Check",
	"testing.(*T).Run",
	"testing.(*M).Run",
	"testing.runTests",
	"testing.(*F).Fuzz",
	// os/signal installs a watcher on first use (httptest does).
	"os/signal.signal_recv",
	"os/signal.loop",
	// net/http keepalive loops: after a client round-trip the pooled
	// connection's reader/writer park until the idle timeout; they drain
	// on their own and hold no test state.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.setRequestCancel",
}

func benign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}

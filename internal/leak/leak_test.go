package leak

import (
	"strings"
	"testing"
	"time"
)

func TestCheckCleanAfterTransientGoroutine(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	// The goroutine is alive when Check starts; the grace period must
	// absorb it.
	if err := Check(); err != nil {
		t.Fatalf("transient goroutine reported as leak: %v", err)
	}
	<-done
}

func TestLeakedGoroutinesFindsBlockedGoroutine(t *testing.T) {
	block := make(chan struct{})
	go leakyWait(block)
	defer close(block)

	// Wait for the goroutine to park so the stack dump names it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaked := leakedGoroutines()
		if containsStack(leaked, "leakyWait") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocked goroutine not reported; got %d stacks", len(leaked))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

//go:noinline
func leakyWait(c chan struct{}) { <-c }

func containsStack(stacks []string, marker string) bool {
	for _, s := range stacks {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

func TestBenignFiltersFramework(t *testing.T) {
	if !benign("goroutine 7 [chan receive]:\ntesting.(*T).Run(...)") {
		t.Error("testing.(*T).Run stack not filtered")
	}
	if !benign("goroutine 9 [IO wait]:\nnet/http.(*persistConn).readLoop(...)") {
		t.Error("persistConn keepalive stack not filtered")
	}
	if benign("goroutine 11 [chan receive]:\ndmc/internal/serve.(*Server).wave(...)") {
		t.Error("server worker stack wrongly filtered")
	}
}

package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// validSessionState builds a minimal valid estimator session state over
// the Table III network.
func validSessionState(t *testing.T) *SessionState {
	t.Helper()
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	return &SessionState{
		ID:        "sess-1",
		Solve:     Solve{Network: n},
		Estimator: true,
		Estimates: []PathEstimate{
			{Sent: 100, Lost: 5, SRTTSec: 0.45, RTTVarSec: 0.02, RTTSamples: 40},
			{Sent: 80, Lost: 0, SRTTSec: 0.15, RTTVarSec: 0.01, RTTSamples: 40},
		},
	}
}

func validRecord(t *testing.T) *SnapshotRecord {
	t.Helper()
	return &SnapshotRecord{
		Version: SnapshotVersion,
		Seq:     7,
		Kind:    RecordSession,
		Session: validSessionState(t),
	}
}

func TestSnapshotRecordValidateOK(t *testing.T) {
	if err := validRecord(t).Validate(); err != nil {
		t.Fatalf("valid session record rejected: %v", err)
	}
	drop := &SnapshotRecord{Version: SnapshotVersion, Seq: 8, Kind: RecordDrop, SessionID: "sess-1"}
	if err := drop.Validate(); err != nil {
		t.Fatalf("valid drop record rejected: %v", err)
	}
}

// TestSnapshotRecordValidateErrors walks every structural error path of
// the record schema: each mutation must be rejected, and the error must
// say something useful (non-empty, mentions scenario).
func TestSnapshotRecordValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *SnapshotRecord)
	}{
		{"missing version", func(r *SnapshotRecord) { r.Version = 0 }},
		{"negative version", func(r *SnapshotRecord) { r.Version = -3 }},
		{"unknown kind", func(r *SnapshotRecord) { r.Kind = "checkpoint" }},
		{"empty kind", func(r *SnapshotRecord) { r.Kind = "" }},
		{"session record without payload", func(r *SnapshotRecord) { r.Session = nil }},
		{"session record with stray session_id", func(r *SnapshotRecord) { r.SessionID = "stray" }},
		{"drop record without session_id", func(r *SnapshotRecord) {
			r.Kind = RecordDrop
			r.Session = nil
			r.SessionID = ""
		}},
		{"drop record with stray session payload", func(r *SnapshotRecord) {
			r.Kind = RecordDrop
			r.SessionID = "sess-1"
		}},
		{"session without id", func(r *SnapshotRecord) { r.Session.ID = "" }},
		{"invalid binding network", func(r *SnapshotRecord) { r.Session.Solve.Network.RateMbps = -1 }},
		{"invalid binding objective", func(r *SnapshotRecord) { r.Session.Solve.Objective = "fastest" }},
		{"estimates without estimator flag", func(r *SnapshotRecord) { r.Session.Estimator = false }},
		{"estimator on non-quality objective", func(r *SnapshotRecord) {
			r.Session.Solve.Objective = ObjectiveMinCost
			r.Session.Solve.MinQuality = 0.9
		}},
		{"estimate count != path count", func(r *SnapshotRecord) {
			r.Session.Estimates = r.Session.Estimates[:1]
		}},
		{"lost over sent", func(r *SnapshotRecord) { r.Session.Estimates[0] = PathEstimate{Sent: 1, Lost: 2} }},
		{"negative sent", func(r *SnapshotRecord) { r.Session.Estimates[0].Sent = -1 }},
		{"negative rtt samples", func(r *SnapshotRecord) { r.Session.Estimates[1].RTTSamples = -1 }},
		{"NaN srtt", func(r *SnapshotRecord) { r.Session.Estimates[0].SRTTSec = math.NaN() }},
		{"infinite rttvar", func(r *SnapshotRecord) { r.Session.Estimates[0].RTTVarSec = math.Inf(1) }},
		{"negative srtt", func(r *SnapshotRecord) { r.Session.Estimates[0].SRTTSec = -0.1 }},
	}
	for _, tc := range cases {
		r := validRecord(t)
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "scenario") {
			t.Errorf("%s: error %q does not identify its source", tc.name, err)
		}
	}
}

// TestSnapshotFutureVersionRejected is the schema-evolution contract: a
// record from a newer build — carrying fields this build has never
// heard of — must be rejected BY VERSION with a clear error, never
// mis-parsed into the old shape or bounced with a confusing
// unknown-field error.
func TestSnapshotFutureVersionRejected(t *testing.T) {
	future := `{"v": 3, "seq": 9, "kind": "session", "shard_affinity": "warm-7",
		"session": {"id": "s", "quorum": 4}}`
	v, err := SnapshotRecordVersion([]byte(future))
	if err != nil {
		t.Fatalf("version peek must tolerate unknown fields: %v", err)
	}
	if v != 3 {
		t.Fatalf("peeked version %d, want 3", v)
	}
	err = CheckSnapshotVersion(v)
	if err == nil {
		t.Fatal("future version accepted")
	}
	for _, want := range []string{"v3", "newer"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rejection %q should mention %q", err, want)
		}
	}
	// Versions this build writes stay accepted; the probe also rejects
	// garbage that is not JSON at all.
	if err := CheckSnapshotVersion(SnapshotVersion); err != nil {
		t.Errorf("own version rejected: %v", err)
	}
	if _, err := SnapshotRecordVersion([]byte("\x00\x01garbage")); err == nil {
		t.Error("non-JSON record accepted by version peek")
	}
}

// TestSnapshotV1RecordStillLoads is the backward half of the schema
// contract: v1 records (written before the replication epoch existed)
// must keep loading — parsing to epoch 0 and validating clean — because
// an in-place upgrade replays the previous build's journal.
func TestSnapshotV1RecordStillLoads(t *testing.T) {
	if err := CheckSnapshotVersion(1); err != nil {
		t.Fatalf("v1 rejected by version check: %v", err)
	}
	r := validRecord(t)
	r.Version = 1
	r.Epoch = 0
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "epoch") {
		t.Errorf("epoch 0 must marshal away (omitempty), so v1-compatible records stay byte-stable: %s", data)
	}
	var back SnapshotRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("v1 record did not parse: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("v1 record did not validate: %v", err)
	}
	if back.Epoch != 0 {
		t.Errorf("v1 record loaded with epoch %d, want 0", back.Epoch)
	}
}

// TestSnapshotEpochRoundTrip: the v2 fencing term must survive the wire
// exactly — a promotion's epoch bump is only as durable as this field.
func TestSnapshotEpochRoundTrip(t *testing.T) {
	r := validRecord(t)
	r.Epoch = 7
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back SnapshotRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("epoch-carrying record did not validate: %v", err)
	}
	if back.Epoch != 7 {
		t.Errorf("epoch %d after round trip, want 7", back.Epoch)
	}
	drop := &SnapshotRecord{Version: SnapshotVersion, Seq: 9, Epoch: 7, Kind: RecordDrop, SessionID: "sess-1"}
	if err := drop.Validate(); err != nil {
		t.Fatalf("epoch-carrying drop record rejected: %v", err)
	}
}

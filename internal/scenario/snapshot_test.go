package scenario

import (
	"math"
	"strings"
	"testing"
)

// validSessionState builds a minimal valid estimator session state over
// the Table III network.
func validSessionState(t *testing.T) *SessionState {
	t.Helper()
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	return &SessionState{
		ID:        "sess-1",
		Solve:     Solve{Network: n},
		Estimator: true,
		Estimates: []PathEstimate{
			{Sent: 100, Lost: 5, SRTTSec: 0.45, RTTVarSec: 0.02, RTTSamples: 40},
			{Sent: 80, Lost: 0, SRTTSec: 0.15, RTTVarSec: 0.01, RTTSamples: 40},
		},
	}
}

func validRecord(t *testing.T) *SnapshotRecord {
	t.Helper()
	return &SnapshotRecord{
		Version: SnapshotVersion,
		Seq:     7,
		Kind:    RecordSession,
		Session: validSessionState(t),
	}
}

func TestSnapshotRecordValidateOK(t *testing.T) {
	if err := validRecord(t).Validate(); err != nil {
		t.Fatalf("valid session record rejected: %v", err)
	}
	drop := &SnapshotRecord{Version: SnapshotVersion, Seq: 8, Kind: RecordDrop, SessionID: "sess-1"}
	if err := drop.Validate(); err != nil {
		t.Fatalf("valid drop record rejected: %v", err)
	}
}

// TestSnapshotRecordValidateErrors walks every structural error path of
// the record schema: each mutation must be rejected, and the error must
// say something useful (non-empty, mentions scenario).
func TestSnapshotRecordValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *SnapshotRecord)
	}{
		{"missing version", func(r *SnapshotRecord) { r.Version = 0 }},
		{"negative version", func(r *SnapshotRecord) { r.Version = -3 }},
		{"unknown kind", func(r *SnapshotRecord) { r.Kind = "checkpoint" }},
		{"empty kind", func(r *SnapshotRecord) { r.Kind = "" }},
		{"session record without payload", func(r *SnapshotRecord) { r.Session = nil }},
		{"session record with stray session_id", func(r *SnapshotRecord) { r.SessionID = "stray" }},
		{"drop record without session_id", func(r *SnapshotRecord) {
			r.Kind = RecordDrop
			r.Session = nil
			r.SessionID = ""
		}},
		{"drop record with stray session payload", func(r *SnapshotRecord) {
			r.Kind = RecordDrop
			r.SessionID = "sess-1"
		}},
		{"session without id", func(r *SnapshotRecord) { r.Session.ID = "" }},
		{"invalid binding network", func(r *SnapshotRecord) { r.Session.Solve.Network.RateMbps = -1 }},
		{"invalid binding objective", func(r *SnapshotRecord) { r.Session.Solve.Objective = "fastest" }},
		{"estimates without estimator flag", func(r *SnapshotRecord) { r.Session.Estimator = false }},
		{"estimator on non-quality objective", func(r *SnapshotRecord) {
			r.Session.Solve.Objective = ObjectiveMinCost
			r.Session.Solve.MinQuality = 0.9
		}},
		{"estimate count != path count", func(r *SnapshotRecord) {
			r.Session.Estimates = r.Session.Estimates[:1]
		}},
		{"lost over sent", func(r *SnapshotRecord) { r.Session.Estimates[0] = PathEstimate{Sent: 1, Lost: 2} }},
		{"negative sent", func(r *SnapshotRecord) { r.Session.Estimates[0].Sent = -1 }},
		{"negative rtt samples", func(r *SnapshotRecord) { r.Session.Estimates[1].RTTSamples = -1 }},
		{"NaN srtt", func(r *SnapshotRecord) { r.Session.Estimates[0].SRTTSec = math.NaN() }},
		{"infinite rttvar", func(r *SnapshotRecord) { r.Session.Estimates[0].RTTVarSec = math.Inf(1) }},
		{"negative srtt", func(r *SnapshotRecord) { r.Session.Estimates[0].SRTTSec = -0.1 }},
	}
	for _, tc := range cases {
		r := validRecord(t)
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "scenario") {
			t.Errorf("%s: error %q does not identify its source", tc.name, err)
		}
	}
}

// TestSnapshotFutureVersionRejected is the schema-evolution contract: a
// record from a newer build — carrying fields this build has never
// heard of — must be rejected BY VERSION with a clear error, never
// mis-parsed into the old shape or bounced with a confusing
// unknown-field error.
func TestSnapshotFutureVersionRejected(t *testing.T) {
	future := `{"v": 2, "seq": 9, "kind": "session", "shard_affinity": "warm-7",
		"session": {"id": "s", "epoch": 4}}`
	v, err := SnapshotRecordVersion([]byte(future))
	if err != nil {
		t.Fatalf("version peek must tolerate unknown fields: %v", err)
	}
	if v != 2 {
		t.Fatalf("peeked version %d, want 2", v)
	}
	err = CheckSnapshotVersion(v)
	if err == nil {
		t.Fatal("future version accepted")
	}
	for _, want := range []string{"v2", "newer"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rejection %q should mention %q", err, want)
		}
	}
	// Versions this build writes stay accepted; the probe also rejects
	// garbage that is not JSON at all.
	if err := CheckSnapshotVersion(SnapshotVersion); err != nil {
		t.Errorf("own version rejected: %v", err)
	}
	if _, err := SnapshotRecordVersion([]byte("\x00\x01garbage")); err == nil {
		t.Error("non-JSON record accepted by version peek")
	}
}

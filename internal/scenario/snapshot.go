// Snapshot wire schema: the versioned records cmd/dmcd's durability
// layer (internal/serve's snapshot + journal) writes so session state —
// the scenario/objective binding, the §VIII-A estimator counters, and
// the last good strategy — survives a process restart. The schema lives
// here, next to the HTTP wire schema it embeds, so the same validation
// and fuzz coverage applies to both.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
)

// SnapshotVersion is the snapshot/journal record schema version this
// build reads and writes. Records from a newer schema are rejected with
// a clear error at replay — never mis-parsed into an older shape.
//
// v2 added Epoch, the replicated-failover fencing term: every record
// carries the epoch of the primary that wrote it, and a promotion bumps
// the epoch so a partitioned stale primary's stream is rejected instead
// of silently merged. v1 records load as epoch 0.
const SnapshotVersion = 2

// Snapshot record kinds.
const (
	// RecordSession carries one session's full durable state; the
	// highest-Seq record per session wins at replay.
	RecordSession = "session"
	// RecordDrop marks a session dropped; a later RecordSession with a
	// higher Seq resurrects it.
	RecordDrop = "drop"
)

// PathEstimate is one path's §VIII-A estimator counters on the wire.
// The RTT terms stay in seconds — the estimator's native float unit —
// so a restore reproduces the estimates bit-for-bit instead of rounding
// through a milliseconds conversion.
type PathEstimate struct {
	Sent int64 `json:"sent,omitempty"`
	Lost int64 `json:"lost,omitempty"`
	// SRTTSec and RTTVarSec are the RFC 6298 smoothed RTT terms.
	SRTTSec   float64 `json:"srtt_sec,omitempty"`
	RTTVarSec float64 `json:"rttvar_sec,omitempty"`
	// RTTSamples is how many RTT observations were folded in.
	RTTSamples int64 `json:"rtt_samples,omitempty"`
}

// SessionState is one session's durable state: everything the daemon
// needs to answer the session correctly after a restart. The warm
// solver itself (LP basis, CG column pool) is deliberately absent —
// correctness lives in the estimates and the binding; warmth returns
// after one solve.
type SessionState struct {
	ID string `json:"id"`
	// Solve is the session's scenario/objective binding: the network and
	// objective of its most recent successful solve.
	Solve Solve `json:"solve"`
	// Estimator marks a session with a §VIII-A estimator feed; Estimates
	// then carries the feed's per-path counters (one entry per path of
	// the bound network).
	Estimator bool           `json:"estimator,omitempty"`
	Estimates []PathEstimate `json:"estimates,omitempty"`
	// LastGood is the session's most recent successful wire result, kept
	// so degraded serving works immediately after a restart.
	LastGood *SolveResult `json:"last_good,omitempty"`
}

// SnapshotRecord is one framed record of the snapshot/journal stream.
type SnapshotRecord struct {
	// Version is the schema version (SnapshotVersion when written by
	// this build). Every record carries it so a journal can safely mix
	// records across in-place upgrades.
	Version int `json:"v"`
	// Seq orders records globally: replay keeps the highest-Seq record
	// per session, which makes re-applying a journal after a partially
	// compacted snapshot idempotent.
	Seq uint64 `json:"seq"`
	// Epoch (v2) is the fencing term of replicated failover: the writing
	// primary's election epoch. A follower promotion bumps the epoch, so
	// a stale primary's post-partition records are identifiable — and
	// rejectable — by every replica that saw the newer epoch. v1 records
	// (and single-node deployments) carry epoch 0.
	Epoch uint64 `json:"epoch,omitempty"`
	Kind  string `json:"kind"`
	// Session is the payload of a RecordSession record.
	Session *SessionState `json:"session,omitempty"`
	// SessionID is the payload of a RecordDrop record.
	SessionID string `json:"session_id,omitempty"`
}

// snapshotVersionProbe reads only the version field, tolerating unknown
// fields: a future-version record may carry fields this build has never
// heard of, and the version check must happen before strict parsing
// would trip over them.
type snapshotVersionProbe struct {
	Version int `json:"v"`
}

// SnapshotRecordVersion peeks at a raw record's schema version without
// strict parsing. Use it before Load: a record from a newer schema must
// be rejected by version, not mangled by an unknown-field error.
func SnapshotRecordVersion(data []byte) (int, error) {
	var p snapshotVersionProbe
	if err := json.Unmarshal(data, &p); err != nil {
		return 0, fmt.Errorf("scenario: snapshot record is not JSON: %w", err)
	}
	return p.Version, nil
}

// CheckSnapshotVersion rejects versions this build cannot read.
func CheckSnapshotVersion(v int) error {
	if v <= 0 {
		return fmt.Errorf("scenario: snapshot record missing schema version (v=%d)", v)
	}
	if v > SnapshotVersion {
		return fmt.Errorf("scenario: snapshot record schema v%d is newer than this build reads (<= v%d); refusing to guess at its layout", v, SnapshotVersion)
	}
	return nil
}

// Validate checks a snapshot record's structure: version, kind, payload
// presence, the embedded solve binding, and the estimator counters.
func (r *SnapshotRecord) Validate() error {
	if err := CheckSnapshotVersion(r.Version); err != nil {
		return err
	}
	switch r.Kind {
	case RecordSession:
		if r.SessionID != "" {
			return fmt.Errorf("scenario: session record carries a stray session_id %q", r.SessionID)
		}
		if r.Session == nil {
			return fmt.Errorf("scenario: session record has no session payload")
		}
		return r.Session.Validate()
	case RecordDrop:
		if r.Session != nil {
			return fmt.Errorf("scenario: drop record carries a stray session payload")
		}
		if r.SessionID == "" {
			return fmt.Errorf("scenario: drop record has no session_id")
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown snapshot record kind %q", r.Kind)
	}
}

// Validate checks a session state's internal consistency.
func (s *SessionState) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("scenario: session state has no id")
	}
	if err := s.Solve.Validate(); err != nil {
		return fmt.Errorf("scenario: session %q binding: %w", s.ID, err)
	}
	// Solve.Validate leaves the network to ToNetwork (requests convert
	// immediately anyway); a durable record must carry a convertible
	// network or the restore it exists for can never succeed.
	if _, err := s.Solve.Network.ToNetwork(); err != nil {
		return fmt.Errorf("scenario: session %q binding: %w", s.ID, err)
	}
	if !s.Estimator && len(s.Estimates) > 0 {
		return fmt.Errorf("scenario: session %q has estimator counters but no estimator feed", s.ID)
	}
	if s.Estimator {
		obj, _ := s.Solve.ObjectiveKind()
		if obj != ObjectiveQuality {
			return fmt.Errorf("scenario: estimator session %q bound to objective %q; estimator feeds support only %q", s.ID, obj, ObjectiveQuality)
		}
		if len(s.Estimates) != len(s.Solve.Network.Paths) {
			return fmt.Errorf("scenario: estimator session %q has %d path estimates for a %d-path network", s.ID, len(s.Estimates), len(s.Solve.Network.Paths))
		}
	}
	for i, e := range s.Estimates {
		if e.Sent < 0 || e.Lost < 0 || e.Lost > e.Sent {
			return fmt.Errorf("scenario: session %q path %d needs 0 <= lost <= sent, got sent=%d lost=%d", s.ID, i, e.Sent, e.Lost)
		}
		if e.RTTSamples < 0 {
			return fmt.Errorf("scenario: session %q path %d has negative rtt_samples %d", s.ID, i, e.RTTSamples)
		}
		if bad(e.SRTTSec) || bad(e.RTTVarSec) {
			return fmt.Errorf("scenario: session %q path %d has malformed RTT terms srtt=%v rttvar=%v", s.ID, i, e.SRTTSec, e.RTTVarSec)
		}
	}
	return nil
}

// bad reports a float that can never be a valid estimator term.
func bad(f float64) bool {
	return math.IsNaN(f) || math.IsInf(f, 0) || f < 0
}

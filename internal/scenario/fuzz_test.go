package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzLoadNetwork ensures arbitrary JSON never panics the loader or the
// model conversion — errors are the only acceptable failure mode.
func FuzzLoadNetwork(f *testing.F) {
	f.Add(tableIIIJSON)
	f.Add(`{"rate_mbps": 1, "lifetime_ms": 1, "paths": [{"bandwidth_mbps": 1}]}`)
	f.Add(`{"rate_mbps": -5}`)
	f.Add(`{"paths": [{"delay_gamma": {"loc_ms": -1, "shape": 0, "scale_ms": 0}}]}`)
	f.Add(`[]`)
	f.Add(`{"rate_mbps": 1e308, "lifetime_ms": 1e308, "paths": [{"bandwidth_mbps": 1e308, "delay_ms": 1e308}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var n Network
		if err := Load(strings.NewReader(input), &n); err != nil {
			return
		}
		net, err := n.ToNetwork()
		if err != nil {
			return
		}
		// A successfully converted network must pass its own validation.
		if err := net.Validate(); err != nil {
			t.Fatalf("ToNetwork returned invalid network: %v\ninput: %s", err, input)
		}
	})
}

// FuzzSolveRoundTrip checks that every parse-able, valid solve request —
// objective selector, quality floor, timeout options, session routing —
// survives a JSON round trip losslessly: marshal(load(x)) must be a
// fixed point. A field the marshaller drops or renames breaks daemon
// clients silently, which is exactly what this target exists to catch.
func FuzzSolveRoundTrip(f *testing.F) {
	f.Add(`{"network": ` + tableIIIJSON + `}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "objective": "mincost", "min_quality": 0.95}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "objective": "random",
		"timeout": {"grid_step_ms": 2, "refine_levels": 3, "convolution_nodes": 500}}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "session_id": "sess-1", "estimator": true}`)
	f.Add(`{"network": {"rate_mbps": 1, "lifetime_ms": 1, "cost_bound": 3, "transmissions": 3,
		"paths": [{"bandwidth_mbps": 1, "delay_gamma": {"loc_ms": 5, "shape": 2, "scale_ms": 1}}]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var req SolveRequest
		if err := Load(strings.NewReader(input), &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		first, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal of loaded request failed: %v\ninput: %s", err, input)
		}
		var again SolveRequest
		if err := Load(bytes.NewReader(first), &again); err != nil {
			t.Fatalf("re-load of marshalled request failed: %v\njson: %s", err, first)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not a fixed point:\nfirst:  %s\nsecond: %s", first, second)
		}
		if _, err := again.ObjectiveKind(); err != nil {
			t.Fatalf("validated request lost its objective: %v", err)
		}
	})
}

// FuzzLoadSimulation exercises the full simulation config parser the same
// way (without running simulations — only parse + convert).
func FuzzLoadSimulation(f *testing.F) {
	f.Add(`{"model": ` + tableIIIJSON + `, "messages": 10}`)
	f.Add(`{"model": {}, "true": {}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var s Simulation
		if err := Load(strings.NewReader(input), &s); err != nil {
			return
		}
		if _, err := s.Model.ToNetwork(); err != nil {
			return
		}
		if s.True != nil {
			_, _ = s.True.ToNetwork()
		}
	})
}

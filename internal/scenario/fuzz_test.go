package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzLoadNetwork ensures arbitrary JSON never panics the loader or the
// model conversion — errors are the only acceptable failure mode.
func FuzzLoadNetwork(f *testing.F) {
	f.Add(tableIIIJSON)
	f.Add(`{"rate_mbps": 1, "lifetime_ms": 1, "paths": [{"bandwidth_mbps": 1}]}`)
	f.Add(`{"rate_mbps": -5}`)
	f.Add(`{"paths": [{"delay_gamma": {"loc_ms": -1, "shape": 0, "scale_ms": 0}}]}`)
	f.Add(`[]`)
	f.Add(`{"rate_mbps": 1e308, "lifetime_ms": 1e308, "paths": [{"bandwidth_mbps": 1e308, "delay_ms": 1e308}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var n Network
		if err := Load(strings.NewReader(input), &n); err != nil {
			return
		}
		net, err := n.ToNetwork()
		if err != nil {
			return
		}
		// A successfully converted network must pass its own validation.
		if err := net.Validate(); err != nil {
			t.Fatalf("ToNetwork returned invalid network: %v\ninput: %s", err, input)
		}
	})
}

// FuzzSolveRoundTrip checks that every parse-able, valid solve request —
// objective selector, quality floor, timeout options, session routing —
// survives a JSON round trip losslessly: marshal(load(x)) must be a
// fixed point. A field the marshaller drops or renames breaks daemon
// clients silently, which is exactly what this target exists to catch.
func FuzzSolveRoundTrip(f *testing.F) {
	f.Add(`{"network": ` + tableIIIJSON + `}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "objective": "mincost", "min_quality": 0.95}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "objective": "random",
		"timeout": {"grid_step_ms": 2, "refine_levels": 3, "convolution_nodes": 500}}`)
	f.Add(`{"network": ` + tableIIIJSON + `, "session_id": "sess-1", "estimator": true}`)
	f.Add(`{"network": {"rate_mbps": 1, "lifetime_ms": 1, "cost_bound": 3, "transmissions": 3,
		"paths": [{"bandwidth_mbps": 1, "delay_gamma": {"loc_ms": 5, "shape": 2, "scale_ms": 1}}]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var req SolveRequest
		if err := Load(strings.NewReader(input), &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		first, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal of loaded request failed: %v\ninput: %s", err, input)
		}
		var again SolveRequest
		if err := Load(bytes.NewReader(first), &again); err != nil {
			t.Fatalf("re-load of marshalled request failed: %v\njson: %s", err, first)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not a fixed point:\nfirst:  %s\nsecond: %s", first, second)
		}
		if _, err := again.ObjectiveKind(); err != nil {
			t.Fatalf("validated request lost its objective: %v", err)
		}
	})
}

// FuzzLoadSimulation exercises the full simulation config parser the same
// way (without running simulations — only parse + convert).
func FuzzLoadSimulation(f *testing.F) {
	f.Add(`{"model": ` + tableIIIJSON + `, "messages": 10}`)
	f.Add(`{"model": {}, "true": {}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var s Simulation
		if err := Load(strings.NewReader(input), &s); err != nil {
			return
		}
		if _, err := s.Model.ToNetwork(); err != nil {
			return
		}
		if s.True != nil {
			_, _ = s.True.ToNetwork()
		}
	})
}

// FuzzSnapshotRoundTrip hammers the durability schema with hostile
// bytes: any record that parses and validates must survive a JSON round
// trip as a fixed point (marshal∘load = id), and the version peek must
// never panic. A field the marshaller drops breaks restart recovery
// silently — the worst possible failure mode for a durability layer.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(`{"v": 1, "seq": 3, "kind": "session", "session": {"id": "s1",
		"solve": {"network": ` + tableIIIJSON + `}}}`)
	f.Add(`{"v": 1, "seq": 4, "kind": "session", "session": {"id": "s2",
		"solve": {"network": ` + tableIIIJSON + `}, "estimator": true,
		"estimates": [{"sent": 100, "lost": 3, "srtt_sec": 0.45, "rttvar_sec": 0.02, "rtt_samples": 40},
		              {"sent": 90, "srtt_sec": 0.15, "rttvar_sec": 0.01, "rtt_samples": 40}]}}`)
	f.Add(`{"v": 1, "seq": 9, "kind": "drop", "session_id": "s1"}`)
	f.Add(`{"v": 2, "kind": "session", "future_field": true}`)
	f.Add(`{"v": -1}`)
	f.Add(`{"v": 1, "seq": 5, "kind": "session", "session": {"id": "s3",
		"solve": {"network": ` + tableIIIJSON + `}, "estimates": [{"sent": -1}]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		if v, err := SnapshotRecordVersion([]byte(input)); err == nil {
			// The peek is lenient by design; only the strict check decides.
			_ = CheckSnapshotVersion(v)
		}
		var rec SnapshotRecord
		if err := Load(strings.NewReader(input), &rec); err != nil {
			return
		}
		if err := rec.Validate(); err != nil {
			return
		}
		first, err := json.Marshal(&rec)
		if err != nil {
			t.Fatalf("marshal of valid record failed: %v\ninput: %s", err, input)
		}
		var again SnapshotRecord
		if err := Load(bytes.NewReader(first), &again); err != nil {
			t.Fatalf("re-load of marshalled record failed: %v\njson: %s", err, first)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("round-tripped record no longer valid: %v\njson: %s", err, first)
		}
		second, err := json.Marshal(&again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not a fixed point:\nfirst:  %s\nsecond: %s", first, second)
		}
	})
}

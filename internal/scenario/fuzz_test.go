package scenario

import (
	"strings"
	"testing"
)

// FuzzLoadNetwork ensures arbitrary JSON never panics the loader or the
// model conversion — errors are the only acceptable failure mode.
func FuzzLoadNetwork(f *testing.F) {
	f.Add(tableIIIJSON)
	f.Add(`{"rate_mbps": 1, "lifetime_ms": 1, "paths": [{"bandwidth_mbps": 1}]}`)
	f.Add(`{"rate_mbps": -5}`)
	f.Add(`{"paths": [{"delay_gamma": {"loc_ms": -1, "shape": 0, "scale_ms": 0}}]}`)
	f.Add(`[]`)
	f.Add(`{"rate_mbps": 1e308, "lifetime_ms": 1e308, "paths": [{"bandwidth_mbps": 1e308, "delay_ms": 1e308}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var n Network
		if err := Load(strings.NewReader(input), &n); err != nil {
			return
		}
		net, err := n.ToNetwork()
		if err != nil {
			return
		}
		// A successfully converted network must pass its own validation.
		if err := net.Validate(); err != nil {
			t.Fatalf("ToNetwork returned invalid network: %v\ninput: %s", err, input)
		}
	})
}

// FuzzLoadSimulation exercises the full simulation config parser the same
// way (without running simulations — only parse + convert).
func FuzzLoadSimulation(f *testing.F) {
	f.Add(`{"model": ` + tableIIIJSON + `, "messages": 10}`)
	f.Add(`{"model": {}, "true": {}}`)
	f.Fuzz(func(t *testing.T, input string) {
		var s Simulation
		if err := Load(strings.NewReader(input), &s); err != nil {
			return
		}
		if _, err := s.Model.ToNetwork(); err != nil {
			return
		}
		if s.True != nil {
			_, _ = s.True.ToNetwork()
		}
	})
}

// Package scenario defines the JSON schema shared by the CLI tools
// (cmd/mpopt, cmd/mpsim) and the solver daemon (cmd/dmcd): network
// descriptions, solve objectives and their wire requests/responses, and
// simulation workloads, with conversions to the core model types.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/netsim"
	"dmc/internal/proto"
)

// Gamma is a shifted-gamma delay specification (Eq. 31).
type Gamma struct {
	LocMs   float64 `json:"loc_ms"`
	Shape   float64 `json:"shape"`
	ScaleMs float64 `json:"scale_ms"`
}

// Path describes one path in JSON.
type Path struct {
	Name          string  `json:"name,omitempty"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	DelayMs       float64 `json:"delay_ms,omitempty"`
	Loss          float64 `json:"loss,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
	// DelayGamma, when present, overrides DelayMs with a distribution.
	DelayGamma *Gamma `json:"delay_gamma,omitempty"`
}

// Network describes a scenario in JSON.
type Network struct {
	RateMbps   float64 `json:"rate_mbps"`
	LifetimeMs float64 `json:"lifetime_ms"`
	// CostBound is µ per second; omitted means unlimited.
	CostBound     *float64 `json:"cost_bound,omitempty"`
	Transmissions int      `json:"transmissions,omitempty"`
	Paths         []Path   `json:"paths"`
}

// ToNetwork converts to the model type.
func (n Network) ToNetwork() (*core.Network, error) {
	out := core.NewNetwork(n.RateMbps*core.Mbps, msToDur(n.LifetimeMs))
	if n.CostBound != nil {
		out.CostBound = *n.CostBound
	}
	out.Transmissions = n.Transmissions
	for _, p := range n.Paths {
		cp := core.Path{
			Name:      p.Name,
			Bandwidth: p.BandwidthMbps * core.Mbps,
			Delay:     msToDur(p.DelayMs),
			Loss:      p.Loss,
			Cost:      p.Cost,
		}
		if g := p.DelayGamma; g != nil {
			if g.Shape <= 0 || g.ScaleMs <= 0 {
				return nil, fmt.Errorf("scenario: path %q gamma needs positive shape and scale", p.Name)
			}
			cp.RandDelay = dist.ShiftedGamma{
				Loc:   msToDur(g.LocMs),
				Shape: g.Shape,
				Scale: msToDur(g.ScaleMs),
			}
			cp.Delay = cp.RandDelay.Mean()
		}
		out.Paths = append(out.Paths, cp)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// FromNetwork converts a model network back to its JSON form.
func FromNetwork(n *core.Network) Network {
	out := Network{
		RateMbps:      n.Rate / core.Mbps,
		LifetimeMs:    durToMs(n.Lifetime),
		Transmissions: n.Transmissions,
	}
	if !math.IsInf(n.CostBound, 1) {
		cb := n.CostBound
		out.CostBound = &cb
	}
	for _, p := range n.Paths {
		jp := Path{
			Name:          p.Name,
			BandwidthMbps: p.Bandwidth / core.Mbps,
			DelayMs:       durToMs(p.Delay),
			Loss:          p.Loss,
			Cost:          p.Cost,
		}
		if g, ok := p.RandDelay.(dist.ShiftedGamma); ok {
			jp.DelayGamma = &Gamma{LocMs: durToMs(g.Loc), Shape: g.Shape, ScaleMs: durToMs(g.Scale)}
		}
		out.Paths = append(out.Paths, jp)
	}
	return out
}

// Solve objective selector values.
const (
	ObjectiveQuality = "quality"
	ObjectiveMinCost = "mincost"
	ObjectiveRandom  = "random"
)

// TimeoutSpec tunes the Eq. 34 timeout search of the random-delay
// objective. Zero fields select the core defaults.
type TimeoutSpec struct {
	// GridStepMs is the coarse search resolution over (0, δ].
	GridStepMs float64 `json:"grid_step_ms,omitempty"`
	// RefineLevels is how many 10× grid refinements follow the coarse
	// pass.
	RefineLevels int `json:"refine_levels,omitempty"`
	// ConvolutionNodes is the quadrature resolution for P(dᵢ+d_min ≤ t).
	ConvolutionNodes int `json:"convolution_nodes,omitempty"`
}

// Options converts to the core search options.
func (t TimeoutSpec) Options() core.TimeoutOptions {
	return core.TimeoutOptions{
		GridStep:         msToDur(t.GridStepMs),
		RefineLevels:     t.RefineLevels,
		ConvolutionNodes: t.ConvolutionNodes,
	}
}

// Solve describes one optimization request (cmd/mpopt, and the body of
// cmd/dmcd's /v1/solve inside a SolveRequest).
type Solve struct {
	Network Network `json:"network"`
	// Objective is "quality" (default), "mincost", or "random" (random-
	// delay model with optimized timeouts).
	Objective string `json:"objective,omitempty"`
	// MinQuality is the quality floor of the mincost objective.
	MinQuality float64 `json:"min_quality,omitempty"`
	// Timeout tunes the random objective's Eq. 34 timeout search.
	Timeout *TimeoutSpec `json:"timeout,omitempty"`
}

// ObjectiveKind normalizes the objective selector ("" means quality)
// and rejects unknown values.
func (s Solve) ObjectiveKind() (string, error) {
	switch s.Objective {
	case "", ObjectiveQuality:
		return ObjectiveQuality, nil
	case ObjectiveMinCost, ObjectiveRandom:
		return s.Objective, nil
	default:
		return "", fmt.Errorf("scenario: unknown objective %q", s.Objective)
	}
}

// Validate checks the request fields that the network conversion does
// not cover: the objective selector, the quality floor's range, and the
// timeout search options.
func (s Solve) Validate() error {
	if _, err := s.ObjectiveKind(); err != nil {
		return err
	}
	if math.IsNaN(s.MinQuality) || s.MinQuality < 0 || s.MinQuality > 1 {
		return fmt.Errorf("scenario: min_quality %v outside [0,1]", s.MinQuality)
	}
	if t := s.Timeout; t != nil {
		if math.IsNaN(t.GridStepMs) || math.IsInf(t.GridStepMs, 0) || t.GridStepMs < 0 {
			return fmt.Errorf("scenario: timeout grid_step_ms %v must be a finite non-negative number", t.GridStepMs)
		}
		if t.RefineLevels < 0 {
			return fmt.Errorf("scenario: timeout refine_levels %d must be non-negative", t.RefineLevels)
		}
		if t.ConvolutionNodes < 0 {
			return fmt.Errorf("scenario: timeout convolution_nodes %d must be non-negative", t.ConvolutionNodes)
		}
	}
	return nil
}

// SolveRequest is the cmd/dmcd /v1/solve wire request: a Solve plus
// session routing. A SessionID pins the request to a session-keyed warm
// solver (basis affinity across re-solves); without one the solve is
// stateless. Estimator additionally attaches a §VIII-A estimator feed
// (quality objective only) that /v1/observe observations drive.
type SolveRequest struct {
	Solve
	SessionID string `json:"session_id,omitempty"`
	Estimator bool   `json:"estimator,omitempty"`
	// BudgetMs is the client's deadline budget for this request in
	// milliseconds: a solve still queued when the budget expires is shed
	// with 504 instead of burning solver capacity on an answer the
	// client can no longer use. Zero (or absent) means the server's
	// maximum budget applies; the server caps explicit budgets at that
	// maximum too.
	BudgetMs float64 `json:"budget_ms,omitempty"`
}

// Validate extends Solve.Validate with the request-level fields.
func (r SolveRequest) Validate() error {
	if err := r.Solve.Validate(); err != nil {
		return err
	}
	if math.IsNaN(r.BudgetMs) || math.IsInf(r.BudgetMs, 0) || r.BudgetMs < 0 {
		return fmt.Errorf("scenario: budget_ms %v must be a finite non-negative number", r.BudgetMs)
	}
	return nil
}

// Share is one path combination's traffic share on the wire.
type Share struct {
	// Combo is the path combination in model indexing (0 = blackhole,
	// k = Paths[k-1]); the first entry is the initial transmission.
	Combo []int `json:"combo"`
	// Fraction is the share of application traffic assigned to it.
	Fraction float64 `json:"fraction"`
	// DeliveryProb is p_l, its in-time delivery probability.
	DeliveryProb float64 `json:"delivery_prob"`
}

// SolveResult is a solved strategy on the wire. It copies everything it
// reports out of the core Solution, so it stays valid after the warm
// solver that produced the Solution moves on.
type SolveResult struct {
	// Quality is the delivered-in-time fraction Q (Eq. 10).
	Quality float64 `json:"quality"`
	// CostPerSecond is the expected total cost per second (Eq. 21).
	CostPerSecond float64 `json:"cost_per_second,omitempty"`
	// Shares lists the combinations carrying at least 1e-9 of the
	// traffic, sorted by decreasing share.
	Shares []Share `json:"shares"`
	// PathRatesMbps is the expected sent rate per path (Eq. 2).
	PathRatesMbps []float64 `json:"path_rates_mbps"`
	// DropRateMbps is the traffic assigned to the blackhole.
	DropRateMbps float64 `json:"drop_rate_mbps,omitempty"`
	// TimeoutsMs is the t_{i,j} table used by the random objective
	// (negative = undefined pair); nil for the deterministic objectives.
	TimeoutsMs [][]float64 `json:"timeouts_ms,omitempty"`
	// Dispatch names the solve core that ran (dense, dense-pruned, cg).
	Dispatch string `json:"dispatch,omitempty"`
	// Warm reports the solve ran incrementally from session warm state.
	Warm bool `json:"warm,omitempty"`
}

// NewSolveResult extracts a wire result from a solved strategy. to is
// the random objective's timeout table (nil otherwise).
func NewSolveResult(sol *core.Solution, to *core.Timeouts) SolveResult {
	out := SolveResult{
		Quality:  sol.Quality,
		Shares:   []Share{},
		Dispatch: string(sol.Stats.Dispatch),
		Warm:     sol.Stats.Warm,
	}
	for _, cs := range sol.ActiveCombos(1e-9) {
		out.Shares = append(out.Shares, Share{
			Combo:        append([]int(nil), cs.Combo...),
			Fraction:     cs.Fraction,
			DeliveryProb: cs.DeliveryProb,
		})
	}
	out.PathRatesMbps = make([]float64, len(sol.Network.Paths))
	for i := range sol.Network.Paths {
		out.PathRatesMbps[i] = sol.SentRate(i) / core.Mbps
	}
	if drop := sol.DropRate(); drop > 0 {
		out.DropRateMbps = drop / core.Mbps
	}
	if c := sol.Cost(); c > 0 {
		out.CostPerSecond = c
	}
	if to != nil {
		out.TimeoutsMs = make([][]float64, len(to.T))
		for i, row := range to.T {
			out.TimeoutsMs[i] = make([]float64, len(row))
			for j, d := range row {
				if d < 0 {
					out.TimeoutsMs[i][j] = -1
				} else {
					out.TimeoutsMs[i][j] = durToMs(d)
				}
			}
		}
	}
	return out
}

// SolveResponse is the cmd/dmcd wire response for /v1/solve and
// /v1/observe.
type SolveResponse struct {
	SessionID string `json:"session_id,omitempty"`
	// Resolved reports whether this request ran a solve: always true for
	// /v1/solve, and only on estimator drift for /v1/observe.
	Resolved bool `json:"resolved"`
	// Result is the current strategy (nil from /v1/observe before the
	// first solve).
	Result *SolveResult `json:"result,omitempty"`
	// Degraded marks a stale answer: the session's shard breaker was
	// open and the server replied with the session's last good strategy
	// instead of solving. Degraded responses are never Resolved.
	Degraded bool `json:"degraded,omitempty"`
}

// PathObservation carries one path's §VIII-A measurements for a session
// estimator feed.
type PathObservation struct {
	// Path is the 0-based index into the session network's paths.
	Path int `json:"path"`
	// Sent and Lost are transmission/loss counts since the last report.
	Sent int `json:"sent,omitempty"`
	Lost int `json:"lost,omitempty"`
	// RTTMs lists acknowledged round-trip samples in milliseconds.
	RTTMs []float64 `json:"rtt_ms,omitempty"`
}

// ObserveRequest is the cmd/dmcd /v1/observe wire request: measurements
// feeding a session's estimator, which re-solves (warm) when the
// estimates drift beyond the adaptor's tolerance.
type ObserveRequest struct {
	SessionID string            `json:"session_id"`
	Paths     []PathObservation `json:"paths"`
}

// ErrorResponse is the JSON error body every cmd/dmcd endpoint returns
// on failure.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Simulation describes a cmd/mpsim request: a model (what the sender
// believes) and optionally different ground truth.
type Simulation struct {
	Model Network `json:"model"`
	// True overrides the actual network; nil means the model is accurate.
	True *Network `json:"true,omitempty"`
	// Messages, MessageBytes, AckBytes default to the paper's workload.
	Messages     int    `json:"messages,omitempty"`
	MessageBytes int    `json:"message_bytes,omitempty"`
	AckBytes     int    `json:"ack_bytes,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	// TimeoutMarginMs pads deterministic timeouts (default 100 ms, §VII).
	TimeoutMarginMs    *float64 `json:"timeout_margin_ms,omitempty"`
	QueueLimit         int      `json:"queue_limit,omitempty"`
	FastRetransmitDups int      `json:"fast_retransmit_dups,omitempty"`
	AckWindow          int      `json:"ack_window,omitempty"`
}

// Load parses a JSON document into dst, rejecting unknown fields.
func Load(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("scenario: parsing JSON: %w", err)
	}
	return nil
}

// Run executes the simulation: solve on the model, run on the truth.
func (s Simulation) Run() (*proto.Result, *core.Solution, error) {
	model, err := s.Model.ToNetwork()
	if err != nil {
		return nil, nil, err
	}
	truth := model
	if s.True != nil {
		truth, err = s.True.ToNetwork()
		if err != nil {
			return nil, nil, err
		}
		if len(truth.Paths) != len(model.Paths) {
			return nil, nil, errors.New("scenario: true network must have the same path count as the model")
		}
	}

	usesRandom := false
	for _, p := range model.Paths {
		if p.RandDelay != nil {
			usesRandom = true
		}
	}

	var sol *core.Solution
	var to *core.Timeouts
	if usesRandom {
		to, err = core.OptimalTimeouts(model, core.TimeoutOptions{})
		if err != nil {
			return nil, nil, err
		}
		sol, err = core.SolveQualityRandom(model, to)
	} else {
		margin := 100 * time.Millisecond
		if s.TimeoutMarginMs != nil {
			margin = msToDur(*s.TimeoutMarginMs)
		}
		to, err = core.DeterministicTimeouts(truth, margin)
		if err != nil {
			return nil, nil, err
		}
		sol, err = core.SolveQuality(model)
	}
	if err != nil {
		return nil, nil, err
	}

	sim := netsim.NewSimulator(s.Seed)
	res, err := proto.Run(sim, proto.Config{
		Solution:           sol,
		Timeouts:           to,
		TruePaths:          proto.LinksFromNetwork(truth, s.QueueLimit),
		MessageCount:       s.Messages,
		MessageBytes:       s.MessageBytes,
		AckBytes:           s.AckBytes,
		FastRetransmitDups: s.FastRetransmitDups,
		AckWindow:          s.AckWindow,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sol, nil
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func durToMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

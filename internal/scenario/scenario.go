// Package scenario defines the JSON schema shared by the CLI tools
// (cmd/mpopt, cmd/mpsim): network descriptions, solve objectives, and
// simulation workloads, with conversions to the core model types.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/netsim"
	"dmc/internal/proto"
)

// Gamma is a shifted-gamma delay specification (Eq. 31).
type Gamma struct {
	LocMs   float64 `json:"loc_ms"`
	Shape   float64 `json:"shape"`
	ScaleMs float64 `json:"scale_ms"`
}

// Path describes one path in JSON.
type Path struct {
	Name          string  `json:"name,omitempty"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	DelayMs       float64 `json:"delay_ms,omitempty"`
	Loss          float64 `json:"loss,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
	// DelayGamma, when present, overrides DelayMs with a distribution.
	DelayGamma *Gamma `json:"delay_gamma,omitempty"`
}

// Network describes a scenario in JSON.
type Network struct {
	RateMbps   float64 `json:"rate_mbps"`
	LifetimeMs float64 `json:"lifetime_ms"`
	// CostBound is µ per second; omitted means unlimited.
	CostBound     *float64 `json:"cost_bound,omitempty"`
	Transmissions int      `json:"transmissions,omitempty"`
	Paths         []Path   `json:"paths"`
}

// ToNetwork converts to the model type.
func (n Network) ToNetwork() (*core.Network, error) {
	out := core.NewNetwork(n.RateMbps*core.Mbps, msToDur(n.LifetimeMs))
	if n.CostBound != nil {
		out.CostBound = *n.CostBound
	}
	out.Transmissions = n.Transmissions
	for _, p := range n.Paths {
		cp := core.Path{
			Name:      p.Name,
			Bandwidth: p.BandwidthMbps * core.Mbps,
			Delay:     msToDur(p.DelayMs),
			Loss:      p.Loss,
			Cost:      p.Cost,
		}
		if g := p.DelayGamma; g != nil {
			if g.Shape <= 0 || g.ScaleMs <= 0 {
				return nil, fmt.Errorf("scenario: path %q gamma needs positive shape and scale", p.Name)
			}
			cp.RandDelay = dist.ShiftedGamma{
				Loc:   msToDur(g.LocMs),
				Shape: g.Shape,
				Scale: msToDur(g.ScaleMs),
			}
			cp.Delay = cp.RandDelay.Mean()
		}
		out.Paths = append(out.Paths, cp)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// FromNetwork converts a model network back to its JSON form.
func FromNetwork(n *core.Network) Network {
	out := Network{
		RateMbps:      n.Rate / core.Mbps,
		LifetimeMs:    durToMs(n.Lifetime),
		Transmissions: n.Transmissions,
	}
	if !math.IsInf(n.CostBound, 1) {
		cb := n.CostBound
		out.CostBound = &cb
	}
	for _, p := range n.Paths {
		jp := Path{
			Name:          p.Name,
			BandwidthMbps: p.Bandwidth / core.Mbps,
			DelayMs:       durToMs(p.Delay),
			Loss:          p.Loss,
			Cost:          p.Cost,
		}
		if g, ok := p.RandDelay.(dist.ShiftedGamma); ok {
			jp.DelayGamma = &Gamma{LocMs: durToMs(g.Loc), Shape: g.Shape, ScaleMs: durToMs(g.Scale)}
		}
		out.Paths = append(out.Paths, jp)
	}
	return out
}

// Solve describes a cmd/mpopt request.
type Solve struct {
	Network Network `json:"network"`
	// Objective is "quality" (default), "mincost", or "random" (random-
	// delay model with optimized timeouts).
	Objective string `json:"objective,omitempty"`
	// MinQuality applies to the mincost objective.
	MinQuality float64 `json:"min_quality,omitempty"`
}

// Simulation describes a cmd/mpsim request: a model (what the sender
// believes) and optionally different ground truth.
type Simulation struct {
	Model Network `json:"model"`
	// True overrides the actual network; nil means the model is accurate.
	True *Network `json:"true,omitempty"`
	// Messages, MessageBytes, AckBytes default to the paper's workload.
	Messages     int    `json:"messages,omitempty"`
	MessageBytes int    `json:"message_bytes,omitempty"`
	AckBytes     int    `json:"ack_bytes,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	// TimeoutMarginMs pads deterministic timeouts (default 100 ms, §VII).
	TimeoutMarginMs    *float64 `json:"timeout_margin_ms,omitempty"`
	QueueLimit         int      `json:"queue_limit,omitempty"`
	FastRetransmitDups int      `json:"fast_retransmit_dups,omitempty"`
	AckWindow          int      `json:"ack_window,omitempty"`
}

// Load parses a JSON document into dst, rejecting unknown fields.
func Load(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("scenario: parsing JSON: %w", err)
	}
	return nil
}

// Run executes the simulation: solve on the model, run on the truth.
func (s Simulation) Run() (*proto.Result, *core.Solution, error) {
	model, err := s.Model.ToNetwork()
	if err != nil {
		return nil, nil, err
	}
	truth := model
	if s.True != nil {
		truth, err = s.True.ToNetwork()
		if err != nil {
			return nil, nil, err
		}
		if len(truth.Paths) != len(model.Paths) {
			return nil, nil, errors.New("scenario: true network must have the same path count as the model")
		}
	}

	usesRandom := false
	for _, p := range model.Paths {
		if p.RandDelay != nil {
			usesRandom = true
		}
	}

	var sol *core.Solution
	var to *core.Timeouts
	if usesRandom {
		to, err = core.OptimalTimeouts(model, core.TimeoutOptions{})
		if err != nil {
			return nil, nil, err
		}
		sol, err = core.SolveQualityRandom(model, to)
	} else {
		margin := 100 * time.Millisecond
		if s.TimeoutMarginMs != nil {
			margin = msToDur(*s.TimeoutMarginMs)
		}
		to, err = core.DeterministicTimeouts(truth, margin)
		if err != nil {
			return nil, nil, err
		}
		sol, err = core.SolveQuality(model)
	}
	if err != nil {
		return nil, nil, err
	}

	sim := netsim.NewSimulator(s.Seed)
	res, err := proto.Run(sim, proto.Config{
		Solution:           sol,
		Timeouts:           to,
		TruePaths:          proto.LinksFromNetwork(truth, s.QueueLimit),
		MessageCount:       s.Messages,
		MessageBytes:       s.MessageBytes,
		AckBytes:           s.AckBytes,
		FastRetransmitDups: s.FastRetransmitDups,
		AckWindow:          s.AckWindow,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sol, nil
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func durToMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

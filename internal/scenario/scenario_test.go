package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"dmc/internal/dist"
)

const tableIIIJSON = `{
	"rate_mbps": 90,
	"lifetime_ms": 800,
	"paths": [
		{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
		{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
	]
}`

func TestLoadAndConvert(t *testing.T) {
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.Rate != 90e6 || net.Lifetime != 800*time.Millisecond {
		t.Errorf("rate %v lifetime %v", net.Rate, net.Lifetime)
	}
	if len(net.Paths) != 2 || net.Paths[0].Loss != 0.2 || net.Paths[1].Delay != 150*time.Millisecond {
		t.Errorf("paths wrong: %+v", net.Paths)
	}
	if !math.IsInf(net.CostBound, 1) {
		t.Errorf("default cost bound should be unlimited, got %v", net.CostBound)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	var n Network
	err := Load(strings.NewReader(`{"rate_mbps": 1, "lifetime_ms": 1, "bogus": 2, "paths": []}`), &n)
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestGammaDelayPath(t *testing.T) {
	var n Network
	err := Load(strings.NewReader(`{
		"rate_mbps": 90, "lifetime_ms": 750,
		"paths": [
			{"name": "p1", "bandwidth_mbps": 80, "loss": 0.2,
			 "delay_gamma": {"loc_ms": 400, "shape": 10, "scale_ms": 4}},
			{"name": "p2", "bandwidth_mbps": 20, "delay_ms": 100}
		]
	}`), &n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	g, ok := net.Paths[0].RandDelay.(dist.ShiftedGamma)
	if !ok {
		t.Fatal("gamma delay not built")
	}
	if g.Shape != 10 || g.Loc != 400*time.Millisecond {
		t.Errorf("gamma params wrong: %+v", g)
	}
	// Delay field mirrors the mean for estimation paths.
	if (net.Paths[0].Delay - 440*time.Millisecond).Abs() > time.Millisecond {
		t.Errorf("delay = %v, want mean 440ms", net.Paths[0].Delay)
	}
}

func TestGammaValidation(t *testing.T) {
	n := Network{RateMbps: 1, LifetimeMs: 100, Paths: []Path{
		{BandwidthMbps: 1, DelayGamma: &Gamma{LocMs: 10, Shape: 0, ScaleMs: 1}},
	}}
	if _, err := n.ToNetwork(); err == nil {
		t.Error("zero gamma shape accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	back := FromNetwork(net)
	if back.RateMbps != 90 || back.LifetimeMs != 800 || len(back.Paths) != 2 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Paths[0].BandwidthMbps != 80 || back.Paths[0].Loss != 0.2 {
		t.Errorf("path fields lost: %+v", back.Paths[0])
	}
	if back.CostBound != nil {
		t.Error("unlimited cost bound should stay omitted")
	}
	cb := 5.0
	n.CostBound = &cb
	net2, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	back2 := FromNetwork(net2)
	if back2.CostBound == nil || *back2.CostBound != 5 {
		t.Error("cost bound lost")
	}
	// Gamma round trip.
	gnet := Network{RateMbps: 1, LifetimeMs: 500, Paths: []Path{
		{BandwidthMbps: 10, DelayGamma: &Gamma{LocMs: 100, Shape: 5, ScaleMs: 2}},
	}}
	gn, err := gnet.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	gback := FromNetwork(gn)
	if gback.Paths[0].DelayGamma == nil || gback.Paths[0].DelayGamma.Shape != 5 {
		t.Error("gamma lost in round trip")
	}
}

func TestSimulationRunAccurateModel(t *testing.T) {
	var sim Simulation
	// Unsaturated scenario (λ = 15 < b₂ = 20 Mbps) so "model == truth" is
	// benign: at the LP's usual 100 % utilization, queueing delay makes
	// an exact model marginal by construction (that regime is what the
	// paper's padded delays and Experiment 3 address).
	err := Load(strings.NewReader(`{
		"model": {
			"rate_mbps": 15, "lifetime_ms": 800,
			"paths": [
				{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
				{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
			]
		},
		"messages": 3000,
		"timeout_margin_ms": 0,
		"seed": 4
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Quality-1) > 1e-9 {
		t.Errorf("model quality %v, want 1", sol.Quality)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.02 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationRunWithDivergentTruth(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": `+tableIIIJSON+`,
		"true": {
			"rate_mbps": 90, "lifetime_ms": 800,
			"paths": [
				{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 400, "loss": 0.2},
				{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 100}
			]
		},
		"messages": 3000,
		"seed": 9
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.02 {
		t.Errorf("Experiment 1 setup: sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationRunRandomDelays(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": {
			"rate_mbps": 90, "lifetime_ms": 750,
			"paths": [
				{"name": "p1", "bandwidth_mbps": 80, "loss": 0.2,
				 "delay_gamma": {"loc_ms": 400, "shape": 10, "scale_ms": 4}},
				{"name": "p2", "bandwidth_mbps": 20,
				 "delay_gamma": {"loc_ms": 100, "shape": 5, "scale_ms": 2}}
			]
		},
		"messages": 4000,
		"seed": 2
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality < 0.90 {
		t.Errorf("model quality %v", sol.Quality)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.04 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationPathCountMismatch(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": `+tableIIIJSON+`,
		"true": {"rate_mbps": 90, "lifetime_ms": 800,
			"paths": [{"bandwidth_mbps": 80, "delay_ms": 400}]},
		"messages": 10
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run(); err == nil {
		t.Error("mismatched path count accepted")
	}
}

func TestInvalidNetworkPropagates(t *testing.T) {
	n := Network{RateMbps: -1, LifetimeMs: 100, Paths: []Path{{BandwidthMbps: 1}}}
	if _, err := n.ToNetwork(); err == nil {
		t.Error("negative rate accepted")
	}
}

package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
)

const tableIIIJSON = `{
	"rate_mbps": 90,
	"lifetime_ms": 800,
	"paths": [
		{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
		{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
	]
}`

func TestLoadAndConvert(t *testing.T) {
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.Rate != 90e6 || net.Lifetime != 800*time.Millisecond {
		t.Errorf("rate %v lifetime %v", net.Rate, net.Lifetime)
	}
	if len(net.Paths) != 2 || net.Paths[0].Loss != 0.2 || net.Paths[1].Delay != 150*time.Millisecond {
		t.Errorf("paths wrong: %+v", net.Paths)
	}
	if !math.IsInf(net.CostBound, 1) {
		t.Errorf("default cost bound should be unlimited, got %v", net.CostBound)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	var n Network
	err := Load(strings.NewReader(`{"rate_mbps": 1, "lifetime_ms": 1, "bogus": 2, "paths": []}`), &n)
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestGammaDelayPath(t *testing.T) {
	var n Network
	err := Load(strings.NewReader(`{
		"rate_mbps": 90, "lifetime_ms": 750,
		"paths": [
			{"name": "p1", "bandwidth_mbps": 80, "loss": 0.2,
			 "delay_gamma": {"loc_ms": 400, "shape": 10, "scale_ms": 4}},
			{"name": "p2", "bandwidth_mbps": 20, "delay_ms": 100}
		]
	}`), &n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	g, ok := net.Paths[0].RandDelay.(dist.ShiftedGamma)
	if !ok {
		t.Fatal("gamma delay not built")
	}
	if g.Shape != 10 || g.Loc != 400*time.Millisecond {
		t.Errorf("gamma params wrong: %+v", g)
	}
	// Delay field mirrors the mean for estimation paths.
	if (net.Paths[0].Delay - 440*time.Millisecond).Abs() > time.Millisecond {
		t.Errorf("delay = %v, want mean 440ms", net.Paths[0].Delay)
	}
}

func TestGammaValidation(t *testing.T) {
	n := Network{RateMbps: 1, LifetimeMs: 100, Paths: []Path{
		{BandwidthMbps: 1, DelayGamma: &Gamma{LocMs: 10, Shape: 0, ScaleMs: 1}},
	}}
	if _, err := n.ToNetwork(); err == nil {
		t.Error("zero gamma shape accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	var n Network
	if err := Load(strings.NewReader(tableIIIJSON), &n); err != nil {
		t.Fatal(err)
	}
	net, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	back := FromNetwork(net)
	if back.RateMbps != 90 || back.LifetimeMs != 800 || len(back.Paths) != 2 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Paths[0].BandwidthMbps != 80 || back.Paths[0].Loss != 0.2 {
		t.Errorf("path fields lost: %+v", back.Paths[0])
	}
	if back.CostBound != nil {
		t.Error("unlimited cost bound should stay omitted")
	}
	cb := 5.0
	n.CostBound = &cb
	net2, err := n.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	back2 := FromNetwork(net2)
	if back2.CostBound == nil || *back2.CostBound != 5 {
		t.Error("cost bound lost")
	}
	// Gamma round trip.
	gnet := Network{RateMbps: 1, LifetimeMs: 500, Paths: []Path{
		{BandwidthMbps: 10, DelayGamma: &Gamma{LocMs: 100, Shape: 5, ScaleMs: 2}},
	}}
	gn, err := gnet.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	gback := FromNetwork(gn)
	if gback.Paths[0].DelayGamma == nil || gback.Paths[0].DelayGamma.Shape != 5 {
		t.Error("gamma lost in round trip")
	}
}

func TestSimulationRunAccurateModel(t *testing.T) {
	var sim Simulation
	// Unsaturated scenario (λ = 15 < b₂ = 20 Mbps) so "model == truth" is
	// benign: at the LP's usual 100 % utilization, queueing delay makes
	// an exact model marginal by construction (that regime is what the
	// paper's padded delays and Experiment 3 address).
	err := Load(strings.NewReader(`{
		"model": {
			"rate_mbps": 15, "lifetime_ms": 800,
			"paths": [
				{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
				{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
			]
		},
		"messages": 3000,
		"timeout_margin_ms": 0,
		"seed": 4
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Quality-1) > 1e-9 {
		t.Errorf("model quality %v, want 1", sol.Quality)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.02 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationRunWithDivergentTruth(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": `+tableIIIJSON+`,
		"true": {
			"rate_mbps": 90, "lifetime_ms": 800,
			"paths": [
				{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 400, "loss": 0.2},
				{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 100}
			]
		},
		"messages": 3000,
		"seed": 9
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.02 {
		t.Errorf("Experiment 1 setup: sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationRunRandomDelays(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": {
			"rate_mbps": 90, "lifetime_ms": 750,
			"paths": [
				{"name": "p1", "bandwidth_mbps": 80, "loss": 0.2,
				 "delay_gamma": {"loc_ms": 400, "shape": 10, "scale_ms": 4}},
				{"name": "p2", "bandwidth_mbps": 20,
				 "delay_gamma": {"loc_ms": 100, "shape": 5, "scale_ms": 2}}
			]
		},
		"messages": 4000,
		"seed": 2
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	res, sol, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality < 0.90 {
		t.Errorf("model quality %v", sol.Quality)
	}
	if math.Abs(res.Quality()-sol.Quality) > 0.04 {
		t.Errorf("sim %v vs model %v", res.Quality(), sol.Quality)
	}
}

func TestSimulationPathCountMismatch(t *testing.T) {
	var sim Simulation
	err := Load(strings.NewReader(`{
		"model": `+tableIIIJSON+`,
		"true": {"rate_mbps": 90, "lifetime_ms": 800,
			"paths": [{"bandwidth_mbps": 80, "delay_ms": 400}]},
		"messages": 10
	}`), &sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run(); err == nil {
		t.Error("mismatched path count accepted")
	}
}

func TestInvalidNetworkPropagates(t *testing.T) {
	n := Network{RateMbps: -1, LifetimeMs: 100, Paths: []Path{{BandwidthMbps: 1}}}
	if _, err := n.ToNetwork(); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSolveValidate(t *testing.T) {
	base := Network{RateMbps: 10, LifetimeMs: 500, Paths: []Path{{BandwidthMbps: 10}}}
	cases := []struct {
		name string
		req  Solve
		ok   bool
	}{
		{"default objective", Solve{Network: base}, true},
		{"quality", Solve{Network: base, Objective: "quality"}, true},
		{"mincost", Solve{Network: base, Objective: "mincost", MinQuality: 0.9}, true},
		{"random with timeout spec", Solve{Network: base, Objective: "random",
			Timeout: &TimeoutSpec{GridStepMs: 2, RefineLevels: 1, ConvolutionNodes: 400}}, true},
		{"unknown objective", Solve{Network: base, Objective: "fastest"}, false},
		{"floor above 1", Solve{Network: base, Objective: "mincost", MinQuality: 1.5}, false},
		{"floor below 0", Solve{Network: base, MinQuality: -0.1}, false},
		{"floor NaN", Solve{Network: base, MinQuality: math.NaN()}, false},
		{"negative grid step", Solve{Network: base, Timeout: &TimeoutSpec{GridStepMs: -1}}, false},
		{"negative refine levels", Solve{Network: base, Timeout: &TimeoutSpec{RefineLevels: -1}}, false},
		{"negative nodes", Solve{Network: base, Timeout: &TimeoutSpec{ConvolutionNodes: -1}}, false},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestTimeoutSpecOptions(t *testing.T) {
	opts := TimeoutSpec{GridStepMs: 2.5, RefineLevels: 3, ConvolutionNodes: 700}.Options()
	if opts.GridStep != 2500*time.Microsecond || opts.RefineLevels != 3 || opts.ConvolutionNodes != 700 {
		t.Fatalf("Options() = %+v", opts)
	}
}

// TestSolveRequestRoundTrip pins the wire field names: a request built
// from Go values must marshal to the documented JSON and back.
func TestSolveRequestRoundTrip(t *testing.T) {
	in := `{"network":{"rate_mbps":90,"lifetime_ms":800,"paths":[{"bandwidth_mbps":80,"delay_ms":450,"loss":0.2}]},` +
		`"objective":"mincost","min_quality":0.9,"timeout":{"grid_step_ms":2},"session_id":"s1","estimator":true}`
	var req SolveRequest
	if err := Load(strings.NewReader(in), &req); err != nil {
		t.Fatal(err)
	}
	if req.SessionID != "s1" || !req.Estimator || req.Objective != "mincost" ||
		req.MinQuality != 0.9 || req.Timeout == nil || req.Timeout.GridStepMs != 2 {
		t.Fatalf("parsed request wrong: %+v", req)
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != in {
		t.Fatalf("round trip drifted:\n in: %s\nout: %s", in, out)
	}
}

// TestNewSolveResult extracts a wire result from a real solve and
// checks it against the Solution it came from.
func TestNewSolveResult(t *testing.T) {
	var jn Network
	if err := Load(strings.NewReader(tableIIIJSON), &jn); err != nil {
		t.Fatal(err)
	}
	net, err := jn.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveQuality(net)
	if err != nil {
		t.Fatal(err)
	}
	res := NewSolveResult(sol, nil)
	if res.Quality != sol.Quality {
		t.Fatalf("quality %v vs %v", res.Quality, sol.Quality)
	}
	var total float64
	for _, sh := range res.Shares {
		total += sh.Fraction
		if len(sh.Combo) != 2 {
			t.Fatalf("combo length %d, want transmissions=2", len(sh.Combo))
		}
	}
	if math.Abs(total+res.DropRateMbps*1e6/net.Rate-1) > 1e-6 {
		t.Fatalf("shares %v + drop %v Mbps do not conserve traffic", total, res.DropRateMbps)
	}
	if len(res.PathRatesMbps) != 2 {
		t.Fatalf("path rates %v", res.PathRatesMbps)
	}
	if res.Dispatch != string(core.DispatchDense) {
		t.Fatalf("dispatch %q", res.Dispatch)
	}

	// Random objective: the timeout table must survive, undefined pairs
	// as -1.
	to := core.NewTimeouts(2)
	to.Set(0, 1, 120*time.Millisecond)
	rres := NewSolveResult(sol, to)
	if rres.TimeoutsMs[0][1] != 120 || rres.TimeoutsMs[0][0] != -1 {
		t.Fatalf("timeout table %v", rres.TimeoutsMs)
	}
}

// Package estimate implements the §VIII-A online estimation techniques:
// loss counters that refine from an initial 0 %, RFC 6298-style smoothed
// RTT with a variance term, shifted-gamma fitting from delay samples by
// the method of moments, a windowed rate meter for bandwidth, and an
// Adaptor that re-solves the sending strategy when estimates drift
// significantly (§VIII-B: "solve only when the estimations of network
// characteristics vary significantly").
package estimate

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
)

// Loss estimates a path's erasure probability by counting. The paper's
// §VIII-A bootstrap applies: with no observations the estimate is 0 and
// refines as losses are recorded.
type Loss struct {
	sent, lost int64
}

// RecordSent notes n transmissions on the path.
func (l *Loss) RecordSent(n int) { l.sent = satAdd(l.sent, int64(n)) }

// RecordLost notes n known losses (timeout-inferred or nack'd).
func (l *Loss) RecordLost(n int) { l.lost = satAdd(l.lost, int64(n)) }

// satAdd adds counters saturating at MaxInt64: counts this large carry
// no more information, and wrapping negative would zero the estimate.
func satAdd(a, b int64) int64 {
	if s := a + b; (s > a) == (b > 0) {
		return s
	}
	return math.MaxInt64
}

// Rate returns lost/sent, or 0 before any data.
func (l *Loss) Rate() float64 {
	if l.sent <= 0 {
		return 0
	}
	r := float64(l.lost) / float64(l.sent)
	if r > 1 {
		return 1
	}
	return r
}

// Sent returns the transmission count.
func (l *Loss) Sent() int64 { return l.sent }

// Scale applies exponential forgetting: both counters shrink by factor
// f ∈ [0, 1]. Periodic scaling makes the estimator track non-stationary
// loss (a path whose quality changes mid-stream) instead of averaging
// over all history. Factors outside [0, 1] are clamped.
func (l *Loss) Scale(f float64) {
	if math.IsNaN(f) || f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	l.sent = int64(float64(l.sent) * f)
	l.lost = int64(float64(l.lost) * f)
	if l.lost > l.sent {
		l.lost = l.sent
	}
}

// RTT is the RFC 6298 smoothed round-trip estimator (SRTT/RTTVAR), the
// natural implementation of the paper's "as soon as an acknowledgment is
// received, an RTT value can be computed".
type RTT struct {
	srtt   float64 // seconds
	rttvar float64
	n      int64
}

// standard RFC 6298 gains.
const (
	rttAlpha = 1.0 / 8
	rttBeta  = 1.0 / 4
)

// Observe folds one RTT sample in.
func (r *RTT) Observe(sample time.Duration) {
	s := sample.Seconds()
	if s < 0 {
		s = 0
	}
	if r.n == 0 {
		r.srtt = s
		r.rttvar = s / 2
	} else {
		err := s - r.srtt
		r.rttvar = (1-rttBeta)*r.rttvar + rttBeta*math.Abs(err)
		r.srtt += rttAlpha * err
	}
	r.n++
}

// Smoothed returns the current SRTT (zero before any sample).
func (r *RTT) Smoothed() time.Duration {
	return time.Duration(r.srtt * float64(time.Second))
}

// RTO returns SRTT + 4·RTTVAR, the classic conservative timeout.
func (r *RTT) RTO() time.Duration {
	return time.Duration((r.srtt + 4*r.rttvar) * float64(time.Second))
}

// Samples returns the number of observations folded in.
func (r *RTT) Samples() int64 { return r.n }

// GammaFit fits a shifted gamma delay distribution from one-way delay
// samples by the method of moments, using the third central moment for
// the shape (skewness of Gamma(α) is 2/√α) — the discretized alternative
// the paper sketches in §VIII-A.
type GammaFit struct {
	n              int64
	mean, m2, m3   float64 // running central moments (Welford-style)
	min            float64
	initialized    bool
	MinSamples     int64 // fit refuses below this; default 100
	minSampleFloor int64
}

// Observe folds one delay sample in.
func (g *GammaFit) Observe(d time.Duration) {
	x := d.Seconds()
	if !g.initialized || x < g.min {
		g.min = x
		g.initialized = true
	}
	g.n++
	n := float64(g.n)
	delta := x - g.mean
	deltaN := delta / n
	term1 := delta * deltaN * (n - 1)
	g.m3 += term1*deltaN*(n-2) - 3*deltaN*g.m2
	g.m2 += term1
	g.mean += deltaN
}

// N returns the sample count.
func (g *GammaFit) N() int64 { return g.n }

// Fit returns the method-of-moments shifted gamma. It fails below
// MinSamples (default 100) or with degenerate variance/skewness.
func (g *GammaFit) Fit() (dist.ShiftedGamma, error) {
	min := g.MinSamples
	if min <= 0 {
		min = 100
	}
	if g.n < min {
		return dist.ShiftedGamma{}, fmt.Errorf("estimate: %d delay samples, need ≥ %d", g.n, min)
	}
	n := float64(g.n)
	variance := g.m2 / n
	if variance <= 0 {
		return dist.ShiftedGamma{}, errors.New("estimate: zero delay variance; use a deterministic delay model")
	}
	skew := (g.m3 / n) / math.Pow(variance, 1.5)
	if skew <= 1e-3 {
		// Symmetric or left-skewed samples cannot be a gamma; fall back to
		// a moderately concentrated shape.
		skew = 1e-3
	}
	shape := 4 / (skew * skew)
	// Cap the shape: beyond ~1e6 the distribution is numerically a point
	// mass and loc would go far below the sample minimum.
	if shape > 1e6 {
		shape = 1e6
	}
	scale := math.Sqrt(variance / shape)
	loc := g.mean - shape*scale
	if loc < 0 {
		// Delays cannot be negative; renormalize against loc = 0 by
		// stretching the scale to preserve the mean.
		loc = 0
		scale = g.mean / shape
	}
	return dist.ShiftedGamma{
		Loc:   time.Duration(loc * float64(time.Second)),
		Shape: shape,
		Scale: time.Duration(scale * float64(time.Second)),
	}, nil
}

// RateMeter measures achieved throughput over a sliding window — a stand-
// in for the congestion-control-provided bandwidth of §VIII-A.
type RateMeter struct {
	// Window is the averaging horizon; zero defaults to 1 s.
	Window time.Duration
	events []rateEvent
	bits   float64
}

type rateEvent struct {
	at   time.Duration
	bits float64
}

// Observe records bytes transferred at virtual time now.
func (m *RateMeter) Observe(now time.Duration, bytes int) {
	b := float64(bytes * 8)
	m.events = append(m.events, rateEvent{at: now, bits: b})
	m.bits += b
	m.expire(now)
}

func (m *RateMeter) window() time.Duration {
	if m.Window <= 0 {
		return time.Second
	}
	return m.Window
}

func (m *RateMeter) expire(now time.Duration) {
	cut := now - m.window()
	i := 0
	for i < len(m.events) && m.events[i].at < cut {
		m.bits -= m.events[i].bits
		i++
	}
	if i > 0 {
		m.events = append(m.events[:0], m.events[i:]...)
	}
}

// Rate returns the windowed average in bits per second as of now.
func (m *RateMeter) Rate(now time.Duration) float64 {
	m.expire(now)
	w := m.window().Seconds()
	if w <= 0 {
		return 0
	}
	return m.bits / w
}

// Adaptor maintains per-path estimates over a base network and re-solves
// the LP when they drift beyond a relative tolerance. Re-solves run on a
// private core.Solver's incremental path (Solver.Resolve): the network
// shape never changes between polls — only the estimated coefficients —
// so every re-solve after the first reuses the previous column tables,
// pooled CG columns, and LP basis. An Adaptor is not safe for concurrent
// use.
type Adaptor struct {
	base *core.Network
	// RelTol is the relative drift that triggers a re-solve; zero means
	// 0.1 (10 %).
	RelTol float64

	loss []Loss
	rtt  []RTT

	solver   *core.Solver
	estPaths []core.Path  // scratch reused by EstimatedNetwork
	estNet   core.Network // scratch header reused by EstimatedNetwork

	solvedOn *core.Network
	solution *core.Solution
	resolves int
}

// NewAdaptor wraps a base network (bandwidths, costs, and the lifetime
// come from it; loss and delay are replaced by live estimates).
func NewAdaptor(base *core.Network) (*Adaptor, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &Adaptor{
		base:   base,
		loss:   make([]Loss, len(base.Paths)),
		rtt:    make([]RTT, len(base.Paths)),
		solver: core.NewSolver(),
	}, nil
}

// ObserveSend counts a transmission on path i.
func (a *Adaptor) ObserveSend(i int) { a.loss[i].RecordSent(1) }

// ObserveSends counts n transmissions on path i in one O(1) update.
func (a *Adaptor) ObserveSends(i, n int) { a.loss[i].RecordSent(n) }

// ObserveLoss counts an inferred loss on path i.
func (a *Adaptor) ObserveLoss(i int) { a.loss[i].RecordLost(1) }

// ObserveLosses counts n inferred losses on path i in one O(1) update.
func (a *Adaptor) ObserveLosses(i, n int) { a.loss[i].RecordLost(n) }

// ObserveRTT folds an acknowledgment RTT for path i.
func (a *Adaptor) ObserveRTT(i int, rtt time.Duration) { a.rtt[i].Observe(rtt) }

// Forget applies exponential forgetting (factor f per call) to the loss
// counters of every path, so estimates track changing conditions. Call it
// once per epoch/interval; f = 0.5 roughly halves the memory horizon.
func (a *Adaptor) Forget(f float64) {
	for i := range a.loss {
		a.loss[i].Scale(f)
	}
}

// EstimatedNetwork returns the base network with live loss and delay
// estimates substituted. One-way delays derive from RTTs per the paper's
// scheme: RTT_i = dᵢ + d_min, and the ack path's own RTT = 2·d_min.
//
// The returned Network reuses a scratch buffer owned by the Adaptor
// (this runs on the estimator poll hot path and must not allocate): it
// is valid until the next EstimatedNetwork or Solution call. Copy it —
// including the Paths slice — to keep a snapshot.
func (a *Adaptor) EstimatedNetwork() *core.Network {
	if a.estPaths == nil {
		a.estPaths = make([]core.Path, len(a.base.Paths))
	}
	n := &a.estNet
	*n = *a.base
	n.Paths = a.estPaths
	copy(n.Paths, a.base.Paths)
	ackIdx := a.base.AckPathIndex()
	dmin := a.rtt[ackIdx].Smoothed() / 2
	for i := range n.Paths {
		if a.rtt[i].Samples() > 0 {
			d := a.rtt[i].Smoothed() - dmin
			if d < 0 {
				d = 0
			}
			n.Paths[i].Delay = d
			n.Paths[i].RandDelay = nil
		}
		n.Paths[i].Loss = a.loss[i].Rate()
	}
	return n
}

// Solution returns the current strategy, solving on first use or when
// estimates drifted beyond RelTol since the last solve. The bool reports
// whether a re-solve happened.
//
// Re-solves run incrementally (core.Solver.Resolve), so the returned
// Solution shares storage with the Adaptor's solver: it is valid until
// the next re-solve — i.e. until Solution next returns true. Callers
// holding strategies across drift events must extract what they need
// (X, Quality, per-path rates) before polling again.
func (a *Adaptor) Solution() (*core.Solution, bool, error) {
	cur := a.EstimatedNetwork()
	if a.solution != nil && !a.drifted(cur) {
		return a.solution, false, nil
	}
	// Snapshot the estimate before solving: cur aliases the Adaptor's
	// scratch buffer, and drifted() must later compare against the
	// estimates as they were at solve time, not a mutated buffer.
	snap := *cur
	snap.Paths = append([]core.Path(nil), cur.Paths...)
	sol, err := a.solver.Resolve(&snap)
	if err != nil {
		return nil, false, fmt.Errorf("estimate: adaptive re-solve: %w", err)
	}
	a.solution = sol
	a.solvedOn = &snap
	a.resolves++
	return sol, true, nil
}

// Resolves counts how many times the LP was solved.
func (a *Adaptor) Resolves() int { return a.resolves }

// PathState is the exportable state of one path's §VIII-A estimators:
// the loss counters and the RFC 6298 RTT terms, exactly the fields a
// Restore needs to continue the estimate stream bit-for-bit. Durations
// stay in seconds (the estimators' native unit) so State∘Restore is an
// identity even across a serialization boundary.
type PathState struct {
	// Sent and Lost are the loss estimator's counters.
	Sent, Lost int64
	// SRTT and RTTVar are the smoothed RTT terms in seconds.
	SRTT, RTTVar float64
	// RTTSamples is how many RTT observations were folded in.
	RTTSamples int64
}

// State exports the adaptor's per-path estimator counters. The snapshot
// is self-contained: Restore on a fresh Adaptor over the same base
// network reproduces identical estimates (and therefore identical
// EstimatedNetwork output and drift decisions).
func (a *Adaptor) State() []PathState {
	out := make([]PathState, len(a.loss))
	for i := range out {
		out[i] = PathState{
			Sent:       a.loss[i].sent,
			Lost:       a.loss[i].lost,
			SRTT:       a.rtt[i].srtt,
			RTTVar:     a.rtt[i].rttvar,
			RTTSamples: a.rtt[i].n,
		}
	}
	return out
}

// Restore overwrites the estimator counters from a State export and
// discards any cached solution, so the next Solution call re-solves
// from the restored estimates. It rejects a snapshot whose path count
// does not match the base network or whose counters are malformed.
func (a *Adaptor) Restore(st []PathState) error {
	if len(st) != len(a.loss) {
		return fmt.Errorf("estimate: restoring %d path states onto a %d-path network", len(st), len(a.loss))
	}
	for i, ps := range st {
		if ps.Sent < 0 || ps.Lost < 0 || ps.Lost > ps.Sent {
			return fmt.Errorf("estimate: path %d needs 0 <= lost <= sent, got sent=%d lost=%d", i, ps.Sent, ps.Lost)
		}
		if ps.RTTSamples < 0 {
			return fmt.Errorf("estimate: path %d has negative RTT sample count %d", i, ps.RTTSamples)
		}
		if math.IsNaN(ps.SRTT) || math.IsInf(ps.SRTT, 0) || ps.SRTT < 0 ||
			math.IsNaN(ps.RTTVar) || math.IsInf(ps.RTTVar, 0) || ps.RTTVar < 0 {
			return fmt.Errorf("estimate: path %d has malformed RTT terms srtt=%v rttvar=%v", i, ps.SRTT, ps.RTTVar)
		}
	}
	for i, ps := range st {
		a.loss[i] = Loss{sent: ps.Sent, lost: ps.Lost}
		a.rtt[i] = RTT{srtt: ps.SRTT, rttvar: ps.RTTVar, n: ps.RTTSamples}
	}
	a.solution = nil
	a.solvedOn = nil
	return nil
}

func (a *Adaptor) relTol() float64 {
	if a.RelTol <= 0 {
		return 0.1
	}
	return a.RelTol
}

// drifted reports whether any estimated characteristic moved beyond the
// relative tolerance since the last solve (absolute floor: 1 ms delay,
// 0.01 loss).
func (a *Adaptor) drifted(cur *core.Network) bool {
	tol := a.relTol()
	for i := range cur.Paths {
		prev, now := a.solvedOn.Paths[i], cur.Paths[i]
		if relDiff(prev.Delay.Seconds(), now.Delay.Seconds()) > tol &&
			absDiff(prev.Delay, now.Delay) > time.Millisecond {
			return true
		}
		if math.Abs(prev.Loss-now.Loss) > math.Max(0.01, tol*prev.Loss) {
			return true
		}
		if relDiff(prev.Bandwidth, now.Bandwidth) > tol {
			return true
		}
	}
	return false
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

func absDiff(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}

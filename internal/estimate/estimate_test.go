package estimate

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/dist"
)

func TestLossCounter(t *testing.T) {
	var l Loss
	if l.Rate() != 0 {
		t.Error("initial rate must be 0 (paper bootstrap)")
	}
	l.RecordSent(80)
	l.RecordLost(20)
	l.RecordSent(20)
	if got := l.Rate(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("rate = %v, want 0.2", got)
	}
	if l.Sent() != 100 {
		t.Errorf("sent = %d", l.Sent())
	}
	// Overcount clamps at 1.
	var l2 Loss
	l2.RecordSent(1)
	l2.RecordLost(5)
	if l2.Rate() != 1 {
		t.Errorf("rate = %v, want clamp 1", l2.Rate())
	}
}

func TestRTTSmoothing(t *testing.T) {
	var r RTT
	if r.Smoothed() != 0 || r.RTO() != 0 {
		t.Error("zero-value RTT should be 0")
	}
	r.Observe(100 * time.Millisecond)
	if r.Smoothed() != 100*time.Millisecond {
		t.Errorf("first sample: %v", r.Smoothed())
	}
	if r.RTO() != 300*time.Millisecond { // srtt + 4·(srtt/2)
		t.Errorf("RTO = %v, want 300ms", r.RTO())
	}
	for i := 0; i < 500; i++ {
		r.Observe(200 * time.Millisecond)
	}
	if got := r.Smoothed(); (got - 200*time.Millisecond).Abs() > 2*time.Millisecond {
		t.Errorf("converged SRTT = %v, want ≈200ms", got)
	}
	if r.Samples() != 501 {
		t.Errorf("samples = %d", r.Samples())
	}
	// Negative samples clamp rather than corrupting state.
	r.Observe(-time.Second)
	if r.Smoothed() < 0 {
		t.Error("negative SRTT")
	}
}

func TestGammaFitRecoversParameters(t *testing.T) {
	// Table V path 1: loc 400 ms, shape 10, scale 4 ms.
	truth := dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}
	rng := rand.New(rand.NewPCG(5, 6))
	var g GammaFit
	for i := 0; i < 200000; i++ {
		g.Observe(truth.Sample(rng))
	}
	fit, err := g.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if (fit.Mean() - truth.Mean()).Abs() > time.Millisecond {
		t.Errorf("fit mean %v, want %v", fit.Mean(), truth.Mean())
	}
	if rel := math.Abs(fit.Var()-truth.Var()) / truth.Var(); rel > 0.05 {
		t.Errorf("fit var off by %v%%", rel*100)
	}
	// Shape recovery from the third moment is noisier: 25 % is fine for
	// timeout computation purposes.
	if rel := math.Abs(fit.Shape-truth.Shape) / truth.Shape; rel > 0.25 {
		t.Errorf("fit shape %v, want ≈%v", fit.Shape, truth.Shape)
	}
}

func TestGammaFitErrors(t *testing.T) {
	var g GammaFit
	if _, err := g.Fit(); err == nil {
		t.Error("fit with no samples accepted")
	}
	for i := 0; i < 200; i++ {
		g.Observe(100 * time.Millisecond) // constant → zero variance
	}
	if _, err := g.Fit(); err == nil {
		t.Error("zero-variance fit accepted")
	}
	if g.N() != 200 {
		t.Errorf("N = %d", g.N())
	}
}

func TestGammaFitNegativeLocClamp(t *testing.T) {
	// Nearly symmetric small-mean samples drive loc negative; the fit must
	// clamp to zero and preserve the mean.
	rng := rand.New(rand.NewPCG(9, 9))
	var g GammaFit
	for i := 0; i < 5000; i++ {
		// Uniform 0..10ms: skew ≈ 0 → huge shape → loc clamp path.
		g.Observe(time.Duration(rng.Int64N(int64(10 * time.Millisecond))))
	}
	fit, err := g.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if fit.Loc < 0 {
		t.Errorf("loc = %v, want ≥ 0", fit.Loc)
	}
	if (fit.Mean() - 5*time.Millisecond).Abs() > time.Millisecond {
		t.Errorf("mean %v, want ≈5ms", fit.Mean())
	}
}

func TestRateMeter(t *testing.T) {
	var m RateMeter // default 1 s window
	for i := 0; i < 10; i++ {
		m.Observe(time.Duration(i)*100*time.Millisecond, 12500) // 100 kbit every 100 ms
	}
	// At t=900ms: all 10 events in window: 1 Mbit over 1 s.
	if got := m.Rate(900 * time.Millisecond); math.Abs(got-1e6) > 1 {
		t.Errorf("rate = %v, want 1e6", got)
	}
	// At t=1.55s, events before 0.55s expired: 600..900 ms remain (4).
	if got := m.Rate(1550 * time.Millisecond); math.Abs(got-4e5) > 1 {
		t.Errorf("rate = %v, want 4e5", got)
	}
	if got := m.Rate(time.Hour); got != 0 {
		t.Errorf("rate after quiet hour = %v, want 0", got)
	}
	custom := RateMeter{Window: 100 * time.Millisecond}
	custom.Observe(0, 1250) // 10 kbit
	if got := custom.Rate(0); math.Abs(got-1e5) > 1 {
		t.Errorf("custom window rate = %v, want 1e5", got)
	}
}

func baseNetwork() *core.Network {
	return core.NewNetwork(90*core.Mbps, 800*time.Millisecond,
		core.Path{Name: "p1", Bandwidth: 80 * core.Mbps, Delay: 450 * time.Millisecond, Loss: 0},
		core.Path{Name: "p2", Bandwidth: 20 * core.Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
}

func TestAdaptorBootstrapAndResolve(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	sol, solved, err := a.Solution()
	if err != nil || !solved || sol == nil {
		t.Fatalf("first Solution: sol=%v solved=%v err=%v", sol, solved, err)
	}
	// No observations: second call must reuse.
	_, solved, err = a.Solution()
	if err != nil || solved {
		t.Fatalf("unchanged estimates should not re-solve (solved=%v err=%v)", solved, err)
	}
	if a.Resolves() != 1 {
		t.Errorf("resolves = %d", a.Resolves())
	}

	// Record a 20% loss on path 1 → drift → re-solve with lower quality.
	for i := 0; i < 100; i++ {
		a.ObserveSend(0)
		if i%5 == 0 {
			a.ObserveLoss(0)
		}
	}
	sol2, solved, err := a.Solution()
	if err != nil || !solved {
		t.Fatalf("loss drift should re-solve (solved=%v err=%v)", solved, err)
	}
	if sol2.Quality >= sol.Quality {
		t.Errorf("quality should drop with observed loss: %v → %v", sol.Quality, sol2.Quality)
	}
}

func TestAdaptorRTTDerivedDelays(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	// RTTs: path1 600 ms, path2 (ack path) 300 ms → d_min = 150 ms,
	// d1 = 450 ms, d2 = 150 ms.
	for i := 0; i < 50; i++ {
		a.ObserveRTT(0, 600*time.Millisecond)
		a.ObserveRTT(1, 300*time.Millisecond)
	}
	n := a.EstimatedNetwork()
	if d := n.Paths[0].Delay; (d - 450*time.Millisecond).Abs() > time.Millisecond {
		t.Errorf("d1 = %v, want 450ms", d)
	}
	if d := n.Paths[1].Delay; (d - 150*time.Millisecond).Abs() > time.Millisecond {
		t.Errorf("d2 = %v, want 150ms", d)
	}
}

func TestAdaptorValidation(t *testing.T) {
	if _, err := NewAdaptor(&core.Network{}); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestAdaptorDriftThresholds(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Solution(); err != nil {
		t.Fatal(err)
	}
	// Sub-threshold loss (0.5%) must not trigger a re-solve.
	for i := 0; i < 1000; i++ {
		a.ObserveSend(0)
		if i%200 == 0 {
			a.ObserveLoss(0)
		}
	}
	if _, solved, _ := a.Solution(); solved {
		t.Error("0.5% loss drift should stay under the 1% floor")
	}
}

// TestAdaptorIncrementalResolve verifies drift re-solves run on the
// solver's warm incremental path: the network shape never changes
// between polls, so every re-solve after the first must reuse the
// persistent state.
func TestAdaptorIncrementalResolve(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := a.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("first solve reported warm")
	}
	// Successive loss drifts, each past the 1% floor.
	for round := 1; round <= 3; round++ {
		for i := 0; i < 100; i++ {
			a.ObserveSend(0)
			if i < 10*round {
				a.ObserveLoss(0)
			}
		}
		sol, solved, err := a.Solution()
		if err != nil || !solved {
			t.Fatalf("round %d: solved=%v err=%v", round, solved, err)
		}
		if !sol.Stats.Warm {
			t.Fatalf("round %d: re-solve did not use the incremental path", round)
		}
	}
	if a.Resolves() != 4 {
		t.Errorf("resolves = %d, want 4", a.Resolves())
	}
}

// TestAdaptorEstimatedNetworkReusesScratch pins the hot-path contract:
// after the first call, EstimatedNetwork allocates nothing and returns
// the same backing storage.
func TestAdaptorEstimatedNetworkReusesScratch(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	n1 := a.EstimatedNetwork()
	n2 := a.EstimatedNetwork()
	if n1 != n2 || &n1.Paths[0] != &n2.Paths[0] {
		t.Fatal("EstimatedNetwork reallocated its scratch")
	}
	if allocs := testing.AllocsPerRun(100, func() { a.EstimatedNetwork() }); allocs != 0 {
		t.Errorf("EstimatedNetwork allocates %v per call, want 0", allocs)
	}
}

// TestAdaptorStateRestoreRoundTrip pins the durability contract: a
// fresh adaptor restored from another's State reproduces its estimates
// bit-for-bit — identical estimated network, identical solution, and
// identical drift behavior afterwards.
func TestAdaptorStateRestoreRoundTrip(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 400; i++ {
		p := rng.IntN(2)
		a.ObserveSend(p)
		if rng.Float64() < 0.07 {
			a.ObserveLoss(p)
		}
		a.ObserveRTT(p, time.Duration(100+rng.IntN(400))*time.Millisecond)
	}
	solA, _, err := a.Solution()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(a.State()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	na, nb := a.EstimatedNetwork(), b.EstimatedNetwork()
	for i := range na.Paths {
		if na.Paths[i].Loss != nb.Paths[i].Loss || na.Paths[i].Delay != nb.Paths[i].Delay {
			t.Fatalf("path %d estimate diverged: %+v vs %+v", i, na.Paths[i], nb.Paths[i])
		}
	}
	solB, solved, err := b.Solution()
	if err != nil || !solved {
		t.Fatalf("restored Solution: solved=%v err=%v", solved, err)
	}
	if solA.Quality != solB.Quality {
		t.Errorf("restored quality %v != original %v", solB.Quality, solA.Quality)
	}
	// Same further observations → same drift verdicts.
	for _, ad := range []*Adaptor{a, b} {
		ad.ObserveSends(0, 50)
		ad.ObserveLosses(0, 25)
	}
	_, drA, err := a.Solution()
	if err != nil {
		t.Fatal(err)
	}
	_, drB, err := b.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if drA != drB {
		t.Errorf("drift verdicts diverged: original=%v restored=%v", drA, drB)
	}
}

// TestAdaptorRestoreRejectsMalformed pins Restore's validation: wrong
// path count and corrupt counters must not silently poison the
// estimators.
func TestAdaptorRestoreRejectsMalformed(t *testing.T) {
	a, err := NewAdaptor(baseNetwork())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		st   []PathState
	}{
		{"wrong path count", []PathState{{}}},
		{"lost over sent", []PathState{{Sent: 1, Lost: 2}, {}}},
		{"negative sent", []PathState{{Sent: -1}, {}}},
		{"negative rtt samples", []PathState{{RTTSamples: -1}, {}}},
		{"NaN srtt", []PathState{{SRTT: math.NaN()}, {}}},
		{"negative rttvar", []PathState{{RTTVar: -1}, {}}},
	} {
		if err := a.Restore(tc.st); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// And the failed restores left the adaptor usable.
	if _, _, err := a.Solution(); err != nil {
		t.Errorf("adaptor unusable after rejected restores: %v", err)
	}
}

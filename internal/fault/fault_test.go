package fault

import (
	"errors"
	"testing"
	"time"
)

// firePattern records which of the first n hits inject, for a fresh
// counter sequence under the given plan.
func firePattern(t *testing.T, pt *Point, p *Plan, n int) []bool {
	t.Helper()
	Activate(p)
	defer Deactivate()
	out := make([]bool, n)
	for i := range out {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*PanicValue); !ok {
						t.Fatalf("panic value %T, want *PanicValue", r)
					}
					out[i] = true
				}
			}()
			if err := pt.Hit(); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("Hit error %v, want ErrInjected", err)
				}
				out[i] = true
			}
		}()
	}
	return out
}

func TestDeterministicDecisions(t *testing.T) {
	pt := Register("test.determinism")
	plan := &Plan{Seed: 42, Points: map[string][]Spec{
		"test.determinism": {{Kind: Error, Prob: 0.3}, {Kind: Panic, Prob: 0.2}},
	}}
	a := firePattern(t, pt, plan, 200)
	b := firePattern(t, pt, plan, 200)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical plans: %v vs %v", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	// Combined firing probability is 1-(0.7*0.8) = 44%; 200 draws should
	// land far from 0 and far from 200.
	if fired < 40 || fired > 160 {
		t.Errorf("fired %d/200 times under a 44%% plan", fired)
	}
	c := firePattern(t, pt, &Plan{Seed: 43, Points: plan.Points}, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("changing the seed did not change the decision sequence")
	}
}

func TestDisabledIsNoop(t *testing.T) {
	pt := Register("test.disabled")
	Deactivate()
	for i := 0; i < 100; i++ {
		if err := pt.Hit(); err != nil {
			t.Fatalf("Hit with no plan: %v", err)
		}
	}
	if st := Stats()["test.disabled"]; st.Hits != 0 || st.Fired != 0 {
		t.Errorf("disabled point counted hits: %+v", st)
	}
}

func TestKinds(t *testing.T) {
	pt := Register("test.kinds")
	always := func(k Kind, lat time.Duration) *Plan {
		return &Plan{Seed: 7, Points: map[string][]Spec{
			"test.kinds": {{Kind: k, Prob: 1, Latency: lat}},
		}}
	}

	Activate(always(Error, 0))
	if err := pt.Hit(); !errors.Is(err, ErrInjected) {
		t.Errorf("Error kind: err=%v, want ErrInjected", err)
	}

	Activate(always(Panic, 0))
	func() {
		defer func() {
			pv, ok := recover().(*PanicValue)
			if !ok || pv.Point != "test.kinds" {
				t.Errorf("Panic kind recovered %v", pv)
			}
		}()
		pt.Hit()
		t.Error("Panic kind did not panic")
	}()

	Activate(always(Latency, 30*time.Millisecond))
	start := time.Now()
	if err := pt.Hit(); err != nil {
		t.Errorf("Latency kind returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Latency kind slept %v, want ~30ms", d)
	}
	Deactivate()

	if st := Stats()["test.kinds"]; st.Hits != 3 || st.Fired != 3 {
		// Counters reset on each Activate; the latency plan saw 1 hit.
		if st.Fired != 0 {
			t.Logf("stats after deactivate: %+v", st)
		}
	}
}

func TestDefaultAppliesToUnlistedPoints(t *testing.T) {
	pt := Register("test.default")
	Activate(&Plan{Seed: 3, Default: []Spec{{Kind: Error, Prob: 1}}})
	defer Deactivate()
	if err := pt.Hit(); !errors.Is(err, ErrInjected) {
		t.Errorf("default spec did not apply: %v", err)
	}
	if st := Stats()["test.default"]; st.Hits != 1 || st.Fired != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 fired", st)
	}
}

func TestRegisterAfterActivate(t *testing.T) {
	Activate(&Plan{Seed: 9, Default: []Spec{{Kind: Error, Prob: 1}}})
	defer Deactivate()
	pt := Register("test.late-registration")
	if err := pt.Hit(); !errors.Is(err, ErrInjected) {
		t.Errorf("late-registered point missed the active plan: %v", err)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvPoints, "")
	if p, err := FromEnv(); p != nil || err != nil {
		t.Errorf("empty env: plan=%v err=%v", p, err)
	}

	t.Setenv(EnvPoints, "lp.warm.install:error:0.01,serve.exec:panic:0.001,*:latency:0.05:2ms")
	t.Setenv(EnvSeed, "42")
	p, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed %d, want 42", p.Seed)
	}
	if got := p.Points["lp.warm.install"]; len(got) != 1 || got[0].Kind != Error || got[0].Prob != 0.01 {
		t.Errorf("lp.warm.install specs %+v", got)
	}
	if got := p.Points["serve.exec"]; len(got) != 1 || got[0].Kind != Panic || got[0].Prob != 0.001 {
		t.Errorf("serve.exec specs %+v", got)
	}
	if len(p.Default) != 1 || p.Default[0].Kind != Latency || p.Default[0].Latency != 2*time.Millisecond {
		t.Errorf("default specs %+v", p.Default)
	}

	for _, bad := range []string{
		"nameonly",
		"x:explode:0.5",
		"x:error:1.5",
		"x:error:nan",
		"x:error:0.5:10ms",
		"x:latency:0.5:-3ms",
		":error:0.5",
		"x:error:0.5,x:panic:0.1",
		"*:error:0.5,*:latency:0.1",
	} {
		t.Setenv(EnvPoints, bad)
		if _, err := FromEnv(); err == nil {
			t.Errorf("FromEnv(%q) accepted a malformed spec", bad)
		}
	}

	// A malformed seed must fail even when the point list is valid.
	t.Setenv(EnvPoints, "x:error:0.5")
	for _, badSeed := range []string{"forty-two", "-1", "1.5"} {
		t.Setenv(EnvSeed, badSeed)
		if _, err := FromEnv(); err == nil {
			t.Errorf("FromEnv with %s=%q accepted a malformed seed", EnvSeed, badSeed)
		}
	}
}

func TestPointsSorted(t *testing.T) {
	Register("test.z")
	Register("test.a")
	names := Points()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Points() not sorted/deduped: %v", names)
		}
	}
}

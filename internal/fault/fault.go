// Package fault is a deterministic fault-injection framework for the
// serving stack's chaos tests. Code under test declares named injection
// points at its failure seams (Register, typically in a package-level
// var); production code then calls Point.Hit on the hot path, which is
// a single atomic pointer load returning nil while no plan is active.
// Tests (or cmd/dmcd via FromEnv) Activate a Plan that makes points
// fire errors, panics, or added latency with per-point probabilities.
//
// Decisions are seed-keyed and counter-based: the k-th hit of a point
// draws from a PRNG stream derived from (plan seed, point name, k), so
// a given plan produces the same decision sequence per point on every
// run regardless of wall-clock timing. Under concurrency the
// interleaving of which goroutine receives which decision is scheduler
// dependent, but the multiset of decisions is not — which is what the
// chaos invariants need to be reproducible.
package fault

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the failure mode an injection point fires.
type Kind uint8

const (
	// Error makes Hit return ErrInjected.
	Error Kind = iota + 1
	// Panic makes Hit panic with a *PanicValue.
	Panic
	// Latency makes Hit sleep for Spec.Latency and then return nil.
	Latency
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the error an Error-kind injection returns. Callers
// treat it like any other failure of the seam; tests detect injected
// faults with errors.Is.
var ErrInjected = fmt.Errorf("fault: injected error")

// PanicValue is the value a Panic-kind injection panics with, so
// recovery layers (and tests) can tell an injected panic from a real
// one.
type PanicValue struct {
	// Point is the name of the injection point that fired.
	Point string
}

func (p *PanicValue) String() string { return "fault: injected panic at " + p.Point }

// Spec is one failure mode with its firing probability. A point
// evaluates its specs in order and fires the first whose draw lands
// under Prob, so earlier specs shadow later ones only on the hits they
// consume.
type Spec struct {
	Kind Kind
	// Prob is the per-hit firing probability in [0, 1].
	Prob float64
	// Latency is the injected delay (Latency kind only).
	Latency time.Duration
}

// Plan describes which points fire and how. Activate installs it
// globally; the zero value (no specs) injects nothing.
type Plan struct {
	// Seed keys every point's decision stream.
	Seed uint64
	// Default applies to every registered point without a Points entry.
	Default []Spec
	// Points maps a point name to its specs, overriding Default.
	Points map[string][]Spec
}

// specsFor returns the plan's specs for a point name.
func (p *Plan) specsFor(name string) []Spec {
	if s, ok := p.Points[name]; ok {
		return s
	}
	return p.Default
}

// active is the compiled state a point consults per hit: nil means
// injection is off and Hit returns immediately.
type active struct {
	seed  uint64
	specs []Spec
}

// Point is one named injection seam. Obtain with Register; call Hit at
// the seam.
type Point struct {
	name string
	key  uint64 // FNV-1a of name, folded into the decision stream

	act   atomic.Pointer[active]
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Name returns the point's registered name.
func (pt *Point) Name() string { return pt.name }

// Hit consults the active plan: it returns nil with no (or no firing)
// injection, returns ErrInjected for an Error spec, panics with a
// *PanicValue for a Panic spec, and sleeps then returns nil for a
// Latency spec. The disabled fast path is one atomic load and a nil
// check.
func (pt *Point) Hit() error {
	a := pt.act.Load()
	if a == nil {
		return nil
	}
	n := pt.hits.Add(1) - 1
	// One PRNG stream per (seed, point, hit): mix and advance with
	// splitmix64, one step per spec.
	x := splitmix64(a.seed ^ pt.key ^ (n * 0x9e3779b97f4a7c15))
	for _, sp := range a.specs {
		x = splitmix64(x)
		if unit(x) >= sp.Prob {
			continue
		}
		pt.fired.Add(1)
		switch sp.Kind {
		case Panic:
			panic(&PanicValue{Point: pt.name})
		case Latency:
			time.Sleep(sp.Latency)
			return nil
		default:
			return fmt.Errorf("%w at %s", ErrInjected, pt.name)
		}
	}
	return nil
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a 64-bit draw to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// registry holds every Register'd point. Registration happens in
// package-level var initializers; Activate then distributes the plan.
var registry struct {
	mu     sync.Mutex
	points map[string]*Point
}

// Register declares (or returns the existing) injection point with the
// given name. Call from a package-level var so the point exists before
// any plan activates:
//
//	var fpInstall = fault.Register("lp.warm.install")
//
// The siting rules — package-level var, constant name, module-unique —
// are machine-checked by the faultpoint analyzer
// (internal/analysis/faultpoint, run via `make lint`).
func Register(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.points == nil {
		registry.points = make(map[string]*Point)
	}
	if pt, ok := registry.points[name]; ok {
		return pt
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	pt := &Point{name: name, key: h.Sum64()}
	if pl := plan.Load(); pl != nil {
		if specs := pl.specsFor(name); len(specs) > 0 {
			pt.act.Store(&active{seed: pl.Seed, specs: specs})
		}
	}
	registry.points[name] = pt
	return pt
}

// Points returns the sorted names of every registered injection point.
func Points() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.points))
	for name := range registry.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// plan is the currently active plan (for points registered after
// Activate, e.g. a package first touched mid-test).
var plan atomic.Pointer[Plan]

// Activate installs the plan on every registered point and resets the
// hit counters, replacing any previous plan. A nil plan deactivates
// (same as Deactivate).
func Activate(p *Plan) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	plan.Store(p)
	for name, pt := range registry.points {
		pt.hits.Store(0)
		pt.fired.Store(0)
		if p == nil {
			pt.act.Store(nil)
			continue
		}
		if specs := p.specsFor(name); len(specs) > 0 {
			pt.act.Store(&active{seed: p.Seed, specs: specs})
		} else {
			pt.act.Store(nil)
		}
	}
}

// Deactivate turns every injection point back into a no-op.
func Deactivate() { Activate(nil) }

// PointStats counts one point's traffic under the current plan (since
// the last Activate).
type PointStats struct {
	// Hits counts Hit calls; Fired counts the ones that injected a
	// fault (including latency).
	Hits, Fired uint64
}

// Stats snapshots every registered point's counters.
func Stats() map[string]PointStats {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]PointStats, len(registry.points))
	for name, pt := range registry.points {
		out[name] = PointStats{Hits: pt.hits.Load(), Fired: pt.fired.Load()}
	}
	return out
}

// Environment variables FromEnv reads.
const (
	// EnvPoints holds the injection spec list (see FromEnv).
	EnvPoints = "DMC_FAULT_POINTS"
	// EnvSeed holds the decision-stream seed (decimal; default 1).
	EnvSeed = "DMC_FAULT_SEED"
)

// FromEnv builds a Plan from the process environment, for cmd/dmcd:
//
//	DMC_FAULT_POINTS="lp.warm.install:error:0.01,serve.exec:panic:0.001,*:latency:0.05:2ms"
//	DMC_FAULT_SEED=42
//
// Each comma-separated entry is point:kind:prob[:latency]; the point
// "*" sets the default for every registered point. Returns (nil, nil)
// when EnvPoints is unset or empty — injection stays off.
func FromEnv() (*Plan, error) {
	raw := strings.TrimSpace(os.Getenv(EnvPoints))
	if raw == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1, Points: make(map[string][]Spec)}
	if s := strings.TrimSpace(os.Getenv(EnvSeed)); s != "" {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: parsing %s: %w", EnvSeed, err)
		}
		p.Seed = seed
	}
	for _, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("fault: %s entry %q is not point:kind:prob[:latency]", EnvPoints, entry)
		}
		if parts[0] == "" {
			return nil, fmt.Errorf("fault: %s entry %q has an empty point name", EnvPoints, entry)
		}
		// One entry per point: a repeated name is almost always a typo'd
		// storm (the second entry silently stacking onto the first would
		// double the injection rate). Multi-spec points remain available
		// through the Plan API.
		if parts[0] == "*" {
			if len(p.Default) > 0 {
				return nil, fmt.Errorf("fault: %s names point %q twice", EnvPoints, parts[0])
			}
		} else if _, dup := p.Points[parts[0]]; dup {
			return nil, fmt.Errorf("fault: %s names point %q twice", EnvPoints, parts[0])
		}
		var sp Spec
		switch parts[1] {
		case "error":
			sp.Kind = Error
		case "panic":
			sp.Kind = Panic
		case "latency":
			sp.Kind = Latency
		default:
			return nil, fmt.Errorf("fault: %s entry %q has unknown kind %q", EnvPoints, entry, parts[1])
		}
		prob, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || math.IsNaN(prob) || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: %s entry %q probability must be in [0,1]", EnvPoints, entry)
		}
		sp.Prob = prob
		if len(parts) >= 4 {
			if sp.Kind != Latency {
				return nil, fmt.Errorf("fault: %s entry %q: only latency takes a duration", EnvPoints, entry)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: %s entry %q has a bad duration", EnvPoints, entry)
			}
			sp.Latency = d
		} else if sp.Kind == Latency {
			sp.Latency = time.Millisecond
		}
		if parts[0] == "*" {
			p.Default = append(p.Default, sp)
		} else {
			p.Points[parts[0]] = append(p.Points[parts[0]], sp)
		}
	}
	return p, nil
}

package ratlp

import (
	"math/big"
	"math/rand"
	"testing"

	"dmc/internal/lp"
)

func rats(vals ...int64) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		out[i] = Int(v)
	}
	return out
}

func TestSolveBasicMax(t *testing.T) {
	// max 3x+5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18 → exact optimum 36 at (2,6).
	p := NewProblem(lp.Maximize, rats(3, 5))
	p.AddConstraint(rats(1, 0), lp.LE, Int(4))
	p.AddConstraint(rats(0, 2), lp.LE, Int(12))
	p.AddConstraint(rats(3, 2), lp.LE, Int(18))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.Cmp(Int(36)) != 0 {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if sol.X[0].Cmp(Int(2)) != 0 || sol.X[1].Cmp(Int(6)) != 0 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestSolveExactFractions(t *testing.T) {
	// max x+y s.t. 3x+y ≤ 1, x+3y ≤ 1 → x=y=1/4, objective 1/2. The point
	// of ratlp: these come out as exact fractions, not 0.24999….
	p := NewProblem(lp.Maximize, rats(1, 1))
	p.AddConstraint(rats(3, 1), lp.LE, Int(1))
	p.AddConstraint(rats(1, 3), lp.LE, Int(1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0].Cmp(Rat(1, 4)) != 0 || sol.X[1].Cmp(Rat(1, 4)) != 0 {
		t.Errorf("x = %v, want [1/4 1/4]", sol.X)
	}
	if sol.Objective.Cmp(Rat(1, 2)) != 0 {
		t.Errorf("objective = %v, want 1/2", sol.Objective)
	}
}

func TestSolveMinEquality(t *testing.T) {
	// min 2x+3y s.t. x+y = 1 → exact 2 at (1,0).
	p := NewProblem(lp.Minimize, rats(2, 3))
	p.AddConstraint(rats(1, 1), lp.EQ, Int(1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || sol.Objective.Cmp(Int(2)) != 0 {
		t.Fatalf("got %v obj %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(lp.Maximize, rats(1))
	p.AddConstraint(rats(1), lp.GE, Int(5))
	p.AddConstraint(rats(1), lp.LE, Int(3))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(lp.Maximize, rats(1, 1))
	p.AddConstraint(rats(1, -1), lp.LE, Int(1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestVacuousNilRHS(t *testing.T) {
	p := NewProblem(lp.Maximize, rats(1, 1))
	p.AddConstraint(rats(1, 0), lp.LE, nil) // blackhole-style unlimited row
	p.AddConstraint(rats(1, 1), lp.LE, Int(5))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(Int(5)) != 0 {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// max x s.t. -x ≤ -2 and x ≤ 7 → 7; x ≥ 2 enforced via flip.
	p := NewProblem(lp.Maximize, rats(1))
	p.AddConstraint(rats(-1), lp.LE, Int(-2))
	p.AddConstraint(rats(1), lp.LE, Int(7))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(Int(7)) != 0 {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	// And minimize to hit the flipped GE bound exactly.
	p2 := NewProblem(lp.Minimize, rats(1))
	p2.AddConstraint(rats(-1), lp.LE, Int(-2))
	sol2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Objective.Cmp(Int(2)) != 0 {
		t.Errorf("objective = %v, want 2", sol2.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Problem{
		NewProblem(lp.Maximize, nil),
		{Sense: 0, Objective: rats(1)},
		func() *Problem {
			p := NewProblem(lp.Maximize, rats(1, 2))
			p.AddConstraint(rats(1), lp.LE, Int(1))
			return p
		}(),
		func() *Problem {
			p := NewProblem(lp.Maximize, rats(1))
			p.AddConstraint(rats(1), lp.GE, nil) // nil RHS on GE
			return p
		}(),
		func() *Problem {
			p := NewProblem(lp.Maximize, rats(1))
			p.Constraints = append(p.Constraints, Constraint{Coeffs: []*big.Rat{nil}, Rel: lp.LE, RHS: Int(1)})
			return p
		}(),
		{Sense: lp.Maximize, Objective: []*big.Rat{nil}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted invalid problem", i)
		}
	}
}

// TestAgreesWithFloatSolver cross-checks the exact solver against the float
// simplex on random bounded feasible LPs with small integer data.
func TestAgreesWithFloatSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		objI := make([]int64, n)
		fobj := make([]float64, n)
		robj := make([]*big.Rat, n)
		for j := range objI {
			objI[j] = int64(rng.Intn(11) - 5)
			fobj[j] = float64(objI[j])
			robj[j] = Int(objI[j])
		}
		fp := lp.NewProblem(lp.Maximize, fobj)
		rp := NewProblem(lp.Maximize, robj)
		for i := 0; i < m; i++ {
			fi := make([]float64, n)
			ri := make([]*big.Rat, n)
			for j := range fi {
				v := int64(rng.Intn(7) - 2)
				fi[j] = float64(v)
				ri[j] = Int(v)
			}
			rhs := int64(rng.Intn(20))
			fp.AddConstraint(fi, lp.LE, float64(rhs))
			rp.AddConstraint(ri, lp.LE, Int(rhs))
		}
		// Bounding box so both report Optimal.
		for j := 0; j < n; j++ {
			fi := make([]float64, n)
			ri := make([]*big.Rat, n)
			for k := range ri {
				ri[k] = Int(0)
			}
			fi[j] = 1
			ri[j] = Int(1)
			fp.AddConstraint(fi, lp.LE, 25)
			rp.AddConstraint(ri, lp.LE, Int(25))
		}
		fsol, err := lp.Solve(fp)
		if err != nil {
			t.Fatal(err)
		}
		rsol, err := Solve(rp)
		if err != nil {
			t.Fatal(err)
		}
		if fsol.Status != rsol.Status {
			t.Fatalf("trial %d: float %v vs exact %v", trial, fsol.Status, rsol.Status)
		}
		if rsol.Status != lp.Optimal {
			continue
		}
		exact, _ := rsol.Objective.Float64()
		if diff := fsol.Objective - exact; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: float obj %v vs exact %v", trial, fsol.Objective, exact)
		}
	}
}

func TestDegenerateTermination(t *testing.T) {
	// Beale's cycling example in exact arithmetic: Bland must terminate.
	p := NewProblem(lp.Maximize, []*big.Rat{Rat(3, 4), Int(-150), Rat(1, 50), Int(-6)})
	p.AddConstraint([]*big.Rat{Rat(1, 4), Int(-60), Rat(-1, 25), Int(9)}, lp.LE, Int(0))
	p.AddConstraint([]*big.Rat{Rat(1, 2), Int(-90), Rat(-1, 50), Int(3)}, lp.LE, Int(0))
	p.AddConstraint(rats(0, 0, 1, 0), lp.LE, Int(1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || sol.Objective.Cmp(Rat(1, 20)) != 0 {
		t.Fatalf("got %v obj %v, want optimal 1/20", sol.Status, sol.Objective)
	}
}

func TestValueHelper(t *testing.T) {
	p := NewProblem(lp.Maximize, rats(2, 3))
	v := p.Value([]*big.Rat{Rat(1, 2), Rat(1, 3)})
	if v.Cmp(Int(2)) != 0 {
		t.Errorf("Value = %v, want 2", v)
	}
}

func TestRedundantEqualities(t *testing.T) {
	p := NewProblem(lp.Maximize, rats(1, 1))
	p.AddConstraint(rats(1, 1), lp.EQ, Int(1))
	p.AddConstraint(rats(2, 2), lp.EQ, Int(2))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || sol.Objective.Cmp(Int(1)) != 0 {
		t.Fatalf("got %v obj %v, want optimal 1", sol.Status, sol.Objective)
	}
}

// Package ratlp implements an exact simplex solver over math/big rationals.
//
// The paper solves its linear programs with CGAL, whose LP solver uses
// exact multi-precision arithmetic: the solutions in Table IV are exact
// fractions (5/8, 15/16, 20/27, …). This package reproduces that behaviour:
// a two-phase primal simplex with Bland's rule (always safe here — exact
// arithmetic has no tolerance issues, and Bland guarantees termination).
//
// It is orders of magnitude slower than the float solver in package lp and
// is intended for verification and table generation, not hot paths; the
// solver-ablation benchmark quantifies the gap.
package ratlp

import (
	"errors"
	"fmt"
	"math/big"

	"dmc/internal/lp"
)

// Rat is a convenience constructor for an exact rational num/den.
func Rat(num, den int64) *big.Rat { return big.NewRat(num, den) }

// Int is a convenience constructor for an exact integer rational.
func Int(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

// Constraint is a single exact linear constraint Coeffs·x Rel RHS.
// A nil RHS marks a vacuous row (the float solver's ≤ +Inf), which is
// skipped; this encodes the blackhole path's unlimited bandwidth.
type Constraint struct {
	Coeffs []*big.Rat
	Rel    lp.Relation
	RHS    *big.Rat
	Name   string
}

// Problem is an exact linear program over non-negative variables.
type Problem struct {
	Sense       lp.Sense
	Objective   []*big.Rat
	Constraints []Constraint
}

// NewProblem returns an exact problem with the given sense and objective.
// The objective slice is copied (shallow: the *big.Rat values are shared
// and must not be mutated by the caller afterwards).
func NewProblem(sense lp.Sense, objective []*big.Rat) *Problem {
	obj := make([]*big.Rat, len(objective))
	copy(obj, objective)
	return &Problem{Sense: sense, Objective: obj}
}

// NumVars reports the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends coeffs·x rel rhs. Pass rhs == nil for a vacuous
// (unbounded) row.
func (p *Problem) AddConstraint(coeffs []*big.Rat, rel lp.Relation, rhs *big.Rat) {
	c := make([]*big.Rat, len(coeffs))
	copy(c, coeffs)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: c, Rel: rel, RHS: rhs})
}

// Solution is the exact result of solving a Problem.
type Solution struct {
	Status lp.Status
	// X is the exact primal solution (valid only when Status == Optimal).
	X []*big.Rat
	// Objective is the exact optimal value in the problem's own sense.
	Objective *big.Rat
	// Iterations counts pivots across both phases.
	Iterations int
}

// Value returns the exact objective value at x.
func (p *Problem) Value(x []*big.Rat) *big.Rat {
	v := new(big.Rat)
	term := new(big.Rat)
	for j, c := range p.Objective {
		v.Add(v, term.Mul(c, x[j]))
	}
	return v
}

func (p *Problem) validate() error {
	if p.Sense != lp.Maximize && p.Sense != lp.Minimize {
		return fmt.Errorf("ratlp: invalid sense %d", int(p.Sense))
	}
	if len(p.Objective) == 0 {
		return errors.New("ratlp: problem has no variables")
	}
	for j, c := range p.Objective {
		if c == nil {
			return fmt.Errorf("ratlp: objective coefficient %d is nil", j)
		}
	}
	for i, con := range p.Constraints {
		if len(con.Coeffs) != len(p.Objective) {
			return fmt.Errorf("ratlp: constraint %d has %d coefficients, want %d", i, len(con.Coeffs), len(p.Objective))
		}
		for j, a := range con.Coeffs {
			if a == nil {
				return fmt.Errorf("ratlp: constraint %d coefficient %d is nil", i, j)
			}
		}
		if con.Rel != lp.LE && con.Rel != lp.EQ && con.Rel != lp.GE {
			return fmt.Errorf("ratlp: constraint %d has invalid relation %d", i, int(con.Rel))
		}
		if con.RHS == nil && con.Rel != lp.LE {
			return fmt.Errorf("ratlp: constraint %d: nil (infinite) RHS only valid for <= rows", i)
		}
	}
	return nil
}

// Solve solves the exact LP. Unlike the float solver there are no options:
// Bland's rule is always used and exactness removes every tolerance.
func Solve(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rows := make([]Constraint, 0, len(p.Constraints))
	for _, c := range p.Constraints {
		if c.RHS == nil {
			continue
		}
		rows = append(rows, c)
	}
	t := newTableau(p, rows)
	return t.solve()
}

type tableau struct {
	p      *Problem
	m, n   int
	nSlack int
	nArt   int
	artCol int

	a     [][]*big.Rat
	b     []*big.Rat
	basis []int

	obj   []*big.Rat // maximization objective over all columns
	neg   bool       // true if original sense was Minimize
	iters int
}

func newTableau(p *Problem, rows []Constraint) *tableau {
	n := p.NumVars()
	m := len(rows)
	t := &tableau{p: p, m: m, n: n}

	type rowPlan struct {
		coeffs []*big.Rat
		rhs    *big.Rat
		rel    lp.Relation
	}
	plans := make([]rowPlan, m)
	zero := new(big.Rat)
	for i, c := range rows {
		coeffs := make([]*big.Rat, n)
		for j, a := range c.Coeffs {
			coeffs[j] = new(big.Rat).Set(a)
		}
		rhs := new(big.Rat).Set(c.RHS)
		rel := c.Rel
		if rhs.Cmp(zero) < 0 {
			for j := range coeffs {
				coeffs[j].Neg(coeffs[j])
			}
			rhs.Neg(rhs)
			switch rel {
			case lp.LE:
				rel = lp.GE
			case lp.GE:
				rel = lp.LE
			}
		}
		plans[i] = rowPlan{coeffs, rhs, rel}
		if rel == lp.LE || rel == lp.GE {
			t.nSlack++
		}
		if rel != lp.LE {
			t.nArt++
		}
	}

	total := n + t.nSlack + t.nArt
	t.artCol = n + t.nSlack
	t.a = make([][]*big.Rat, m)
	t.b = make([]*big.Rat, m)
	t.basis = make([]int, m)

	slack := n
	art := t.artCol
	for i, pl := range plans {
		row := make([]*big.Rat, total)
		for j := 0; j < n; j++ {
			row[j] = pl.coeffs[j]
		}
		for j := n; j < total; j++ {
			row[j] = new(big.Rat)
		}
		t.b[i] = pl.rhs
		switch pl.rel {
		case lp.LE:
			row[slack].SetInt64(1)
			t.basis[i] = slack
			slack++
		case lp.GE:
			row[slack].SetInt64(-1)
			slack++
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		case lp.EQ:
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}

	t.neg = p.Sense == lp.Minimize
	t.obj = make([]*big.Rat, total)
	for j := range t.obj {
		t.obj[j] = new(big.Rat)
	}
	for j := 0; j < n; j++ {
		t.obj[j].Set(p.Objective[j])
		if t.neg {
			t.obj[j].Neg(t.obj[j])
		}
	}
	return t
}

func (t *tableau) solve() (*Solution, error) {
	zero := new(big.Rat)
	if t.nArt > 0 {
		phase1 := make([]*big.Rat, len(t.obj))
		for j := range phase1 {
			phase1[j] = new(big.Rat)
			if j >= t.artCol {
				phase1[j].SetInt64(-1)
			}
		}
		status, err := t.optimize(phase1, true)
		if err != nil {
			return nil, err
		}
		if status != lp.Optimal {
			return nil, errors.New("ratlp: internal error: phase 1 not optimal")
		}
		for i, col := range t.basis {
			if col >= t.artCol && t.b[i].Cmp(zero) != 0 {
				return &Solution{Status: lp.Infeasible, Iterations: t.iters}, nil
			}
		}
		t.driveOutArtificials()
	}

	status, err := t.optimize(t.obj, false)
	if err != nil {
		return nil, err
	}
	if status == lp.Unbounded {
		return &Solution{Status: lp.Unbounded, Iterations: t.iters}, nil
	}

	x := make([]*big.Rat, t.n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i, col := range t.basis {
		if col < t.n {
			x[col].Set(t.b[i])
		}
	}
	return &Solution{
		Status:     lp.Optimal,
		X:          x,
		Objective:  t.p.Value(x),
		Iterations: t.iters,
	}, nil
}

func (t *tableau) optimize(obj []*big.Rat, phase1 bool) (lp.Status, error) {
	zero := new(big.Rat)
	tmp := new(big.Rat)

	z := make([]*big.Rat, len(obj))
	for j := range z {
		z[j] = new(big.Rat).Set(obj[j])
	}
	for i, col := range t.basis {
		if z[col].Cmp(zero) != 0 {
			c := new(big.Rat).Set(z[col])
			row := t.a[i]
			for j := range z {
				z[j].Sub(z[j], tmp.Mul(c, row[j]))
			}
		}
	}

	limit := len(obj)
	if !phase1 {
		limit = t.artCol
	}
	// Exact arithmetic + Bland's rule: termination is guaranteed, but keep
	// a generous backstop against implementation bugs.
	maxIter := 2000 * (t.m + len(obj) + 1)

	ratio := new(big.Rat)
	best := new(big.Rat)
	for {
		if t.iters >= maxIter {
			return 0, fmt.Errorf("ratlp: iteration limit %d exceeded", maxIter)
		}
		// Bland: first improving column.
		enter := -1
		for j := 0; j < limit; j++ {
			if z[j].Cmp(zero) > 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return lp.Optimal, nil
		}
		// Ratio test, ties broken by smallest basis column (Bland).
		leave := -1
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Cmp(zero) <= 0 {
				continue
			}
			ratio.Quo(t.b[i], t.a[i][enter])
			if leave < 0 {
				leave = i
				best.Set(ratio)
				continue
			}
			switch ratio.Cmp(best) {
			case -1:
				leave = i
				best.Set(ratio)
			case 0:
				if t.basis[i] < t.basis[leave] {
					leave = i
				}
			}
		}
		if leave < 0 {
			return lp.Unbounded, nil
		}
		t.pivot(leave, enter, z)
		t.iters++
	}
}

func (t *tableau) pivot(leave, enter int, z []*big.Rat) {
	tmp := new(big.Rat)
	prow := t.a[leave]
	inv := new(big.Rat).Inv(prow[enter])
	for j := range prow {
		prow[j].Mul(prow[j], inv)
	}
	t.b[leave].Mul(t.b[leave], inv)
	prow[enter].SetInt64(1)

	zero := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f.Cmp(zero) == 0 {
			continue
		}
		fc := new(big.Rat).Set(f)
		row := t.a[i]
		for j := range row {
			row[j].Sub(row[j], tmp.Mul(fc, prow[j]))
		}
		row[enter].SetInt64(0)
		t.b[i].Sub(t.b[i], tmp.Mul(fc, t.b[leave]))
	}
	if z[enter].Cmp(zero) != 0 {
		fc := new(big.Rat).Set(z[enter])
		for j := range z {
			z[j].Sub(z[j], tmp.Mul(fc, prow[j]))
		}
		z[enter].SetInt64(0)
	}
	t.basis[leave] = enter
}

func (t *tableau) driveOutArtificials() {
	zero := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artCol {
			continue
		}
		enter := -1
		for j := 0; j < t.artCol; j++ {
			if t.a[i][j].Cmp(zero) != 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			continue
		}
		dummy := make([]*big.Rat, len(t.a[i]))
		for j := range dummy {
			dummy[j] = new(big.Rat)
		}
		t.pivot(i, enter, dummy)
		t.iters++
	}
}

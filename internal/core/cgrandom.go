package core

import (
	"math"
	"time"

	"dmc/internal/dist"
	"dmc/internal/lp"
)

// SolveQualityRandomCG solves the §VI-B random-delay model by column
// generation with a pooled reusable Solver; see
// Solver.SolveQualityRandomCG.
func SolveQualityRandomCG(n *Network, to *Timeouts) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveQualityRandomCG(n, to)
	solverPool.Put(s)
	return sol, err
}

// randomObjective is the §VI-B random-delay quality maximization over
// m = 2 columns. The Eqs. 27–30 coefficients of a pair (i, j) depend on
// the delay distributions and the timeout table but not on the duals,
// so they are tabulated once per solve — P(retransᵢⱼ) and the
// retransmission's in-time delivery per ordered real pair — and both
// column evaluation and pricing read the tables in O(1) per pair. The
// pricing oracle is a plain exact scan of the (n+1)² pair space: no
// branch-and-bound is needed at m = 2, and the scan materializes
// nothing, which is the point — the dense path's nVars×base share
// matrix is what stops fitting past the cap.
type randomObjective struct {
	m *model

	// Per real path i (model index, 1-based): delivery of an in-time
	// first attempt, and the drop-leg retransmission probability
	// 1 − P(dᵢ+d_min ≤ δ)(1−τᵢ) used for blackhole and undefined-timeout
	// retransmissions.
	firstDeliver []float64
	pDrop        []float64
	// Per ordered real pair (i, j) at (i-1)*(base-1)+(j-1): the Eq. 27
	// retransmission probability and the Eq. 28 second-leg delivery
	// P(t+dⱼ ≤ δ)(1−τⱼ); undefined timeouts hold pDrop[i] and 0.
	pRetr    []float64
	pDeliver []float64

	// Current duals (loaded by reprice).
	yBW   []float64
	yCost float64
	y0    float64

	found []pricedCombo
}

// newRandomObjective tabulates the Eqs. 27–30 pair coefficients,
// reusing prev's storage when the shape matches (the warm-resolve
// path; the tables are still re-evaluated — delays and timeouts may
// have drifted).
func newRandomObjective(m *model, to *Timeouts, prev *randomObjective) *randomObjective {
	o := prev
	if o == nil {
		o = &randomObjective{}
	}
	o.m = m
	n := m.net
	δ := n.Lifetime
	real := m.base - 1
	o.firstDeliver = grow(o.firstDeliver, m.base)
	o.pDrop = grow(o.pDrop, m.base)
	o.pRetr = grow(o.pRetr, real*real)
	o.pDeliver = grow(o.pDeliver, real*real)

	ack := n.Paths[n.AckPathIndex()].delayDist()
	for i := 1; i < m.base; i++ {
		pi := n.Paths[i-1]
		di := pi.delayDist()
		o.firstDeliver[i] = di.CDF(δ) * (1 - pi.Loss)
		// rtt is the distribution of dᵢ + d_min (1-based model index i
		// corresponds to Paths[i-1]).
		rtt := dist.NewSum(di, ack)
		o.pDrop[i] = 1 - rtt.CDF(δ)*(1-pi.Loss)
		// One-entry memo: under common timeout tables (deterministic
		// t = dᵢ + d_min + margin) every j shares path i's timeout, so
		// the convolution CDF — the expensive probe — evaluates once per
		// row instead of once per pair.
		lastT, lastCDF := time.Duration(-1), 0.0
		for j := 1; j < m.base; j++ {
			pj := n.Paths[j-1]
			at := (i-1)*real + (j - 1)
			if t, ok := to.Get(i-1, j-1); ok {
				if t != lastT {
					lastT, lastCDF = t, rtt.CDF(t)
				}
				o.pRetr[at] = 1 - lastCDF*(1-pi.Loss)
				o.pDeliver[at] = pj.delayDist().CDF(δ-t) * (1 - pj.Loss)
			} else {
				// No timeout makes the retransmission useful; a sender
				// assigned this combination would wait until the
				// deadline and the retransmission never delivers in
				// time. The column is dominated by (i, blackhole).
				o.pRetr[at] = o.pDrop[i]
				o.pDeliver[at] = 0
			}
		}
	}
	return o
}

// evalColumn reproduces randomColumns' per-pair arithmetic from the
// tables, so CG columns agree bit-for-bit with the dense enumeration.
func (o *randomObjective) evalColumn(combo []int, share []float64) (float64, float64) {
	i, j := combo[0], combo[1]
	if o.m.isBlackhole(i) {
		// Dropped on arrival at the sender: nothing delivered, nothing
		// retransmitted, no cost.
		share[0] = 1
		return 0, 0
	}
	pi := &o.m.paths[i]
	delivery := o.firstDeliver[i]
	share[i] += 1
	cost := pi.Cost
	if o.m.isBlackhole(j) {
		// Drop after first failure; charge the blackhole nominally.
		share[0] += o.pDrop[i]
		return clamp01(delivery), cost
	}
	at := (i-1)*(o.m.base-1) + (j - 1)
	pR := o.pRetr[at]
	share[j] += pR
	cost += pR * o.m.paths[j].Cost
	return clamp01(delivery + pR*o.pDeliver[at]), cost
}

func (o *randomObjective) assembleInto(sc *asmScratch, cs *colSet) *lp.Problem {
	return o.m.assembleProblemInto(sc, lp.Maximize, cs.cols.delivery, &cs.cols, nil, true)
}

// reprice stores the master duals (bandwidth rows, the cost row when
// the budget is finite, the conservation row).
func (o *randomObjective) reprice(duals []float64) {
	o.yBW = duals[:o.m.base-1]
	next := o.m.base - 1
	o.yCost = 0
	if !math.IsInf(o.m.net.CostBound, 1) {
		o.yCost = duals[next]
		next++
	}
	o.y0 = duals[next]
}

// price scans every pair exactly. rc(i,j) decomposes into a first-leg
// term aᵢ = firstDeliverᵢ − λ(yᵢ + y_c·cᵢ) − y₀ plus, for a real
// retransmission leg, pRᵢⱼ·(pDᵢⱼ − λ(yⱼ + y_c·cⱼ)); blackhole shares
// never enter a constraint row.
func (o *randomObjective) price(floor float64) [][]int {
	o.found = o.found[:0]
	λ := o.m.net.Rate
	base := o.m.base
	real := base - 1
	flo := floor

	record := func(i, j int, rc float64) {
		if len(o.found) < cgColumnsPerIter {
			c := []int{i, j}
			o.found = append(o.found, pricedCombo{c, rc})
		} else {
			worstAt, worst := 0, o.found[0].rc
			for k, f := range o.found[1:] {
				if f.rc < worst {
					worstAt, worst = k+1, f.rc
				}
			}
			o.found[worstAt].combo[0], o.found[worstAt].combo[1] = i, j
			o.found[worstAt].rc = rc
		}
		if len(o.found) == cgColumnsPerIter {
			flo = o.found[0].rc
			for _, f := range o.found[1:] {
				if f.rc < flo {
					flo = f.rc
				}
			}
		}
	}

	// All blackhole-first pairs are the identical empty column; only
	// (0,0) is ever considered.
	if rc := -o.y0; rc > flo {
		record(0, 0, rc)
	}
	// price per real path: w_i = λ(yᵢ + y_c·cᵢ). The delivery sum is
	// priced exactly as evalColumn computes it — including the Eq. 28
	// clamp at 1 — or clamped pairs would carry inflated reduced costs,
	// crowd the top-K, and stall the loop on permanent duplicates.
	for i := 1; i < base; i++ {
		wi := λ * (o.yBW[i-1] + o.yCost*o.m.paths[i].Cost)
		if rc := o.firstDeliver[i] - wi - o.y0; rc > flo {
			record(i, 0, rc)
		}
		row := o.pRetr[(i-1)*real : i*real]
		del := o.pDeliver[(i-1)*real : i*real]
		for j := 1; j < base; j++ {
			wj := λ * (o.yBW[j-1] + o.yCost*o.m.paths[j].Cost)
			pR := row[j-1]
			d := o.firstDeliver[i] + pR*del[j-1]
			if d > 1 {
				d = 1
			}
			rc := d - wi - pR*wj - o.y0
			if rc > flo {
				record(i, j, rc)
			}
		}
	}
	out := make([][]int, len(o.found))
	for i, f := range o.found {
		out[i] = f.combo
	}
	return out
}

// seed primes the pool: the empty column, one drop-after-first column
// per real path, and each path's best retransmission partner by
// second-leg delivery mass. The digit scratch is unused — pair combos
// are tiny literals.
func (o *randomObjective) seed(cs *colSet, _ []int) {
	m := o.m
	cs.add(m, o, []int{0, 0})
	real := m.base - 1
	for i := 1; i < m.base; i++ {
		cs.add(m, o, []int{i, 0})
		bestJ, bestGain := 0, 0.0
		row := o.pRetr[(i-1)*real : i*real]
		del := o.pDeliver[(i-1)*real : i*real]
		for j := 1; j < m.base; j++ {
			if g := row[j-1] * del[j-1]; g > bestGain {
				bestJ, bestGain = j, g
			}
		}
		if bestJ != 0 {
			cs.add(m, o, []int{i, bestJ})
		}
	}
}

// SolveQualityRandomCG solves the §VI-B random-delay model without
// materializing the (n+1)² pair space: the Eqs. 27–30 coefficients are
// tabulated per ordered pair, a restricted master grows by
// exact-scan pricing, and freshly priced pairs are appended onto the
// hot simplex tableau. Reaches the same optimum as the dense
// enumeration; most callers want SolveQualityRandom, which dispatches
// here automatically above the dense threshold.
func (s *Solver) SolveQualityRandomCG(n *Network, to *Timeouts) (*Solution, error) {
	m, ro, err := s.randomModel(n, to, nil)
	if err != nil {
		return nil, err
	}
	cs := newColSet()
	ro.seed(cs, s.scratch(m.m))
	prob, lpSol, iters, _, err := s.runCG(nil, m, cs, ro, nil, cgPriceTol, cgPriceTol, nil)
	if err != nil {
		return nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters}
	return sol, nil
}

// randomModel validates the random-delay inputs and builds the sparse
// model plus the tabulated pair objective (reusing prev's storage).
func (s *Solver) randomModel(n *Network, to *Timeouts, prev *randomObjective) (*model, *randomObjective, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, nil, err
	}
	if m.m != 2 {
		return nil, nil, ErrRandomNeedsTwoTransmissions
	}
	if err := validateTimeouts(n, to); err != nil {
		return nil, nil, err
	}
	return m, newRandomObjective(m, to, prev), nil
}

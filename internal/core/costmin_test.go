package core

import (
	"errors"
	"math"
	"testing"
	"time"
)

// costedNetwork: a cheap lossy path and an expensive clean path.
func costedNetwork() *Network {
	return NewNetwork(10*Mbps, 800*time.Millisecond,
		Path{Name: "cheap", Bandwidth: 50 * Mbps, Delay: 200 * time.Millisecond, Loss: 0.3, Cost: 1},
		Path{Name: "pricey", Bandwidth: 50 * Mbps, Delay: 100 * time.Millisecond, Loss: 0, Cost: 10},
	)
}

func TestSolveMinCostBasic(t *testing.T) {
	n := costedNetwork()
	// Quality 0.7 is achievable with the cheap path alone (no
	// retransmission): cost = λ·1 per bit.
	s, err := SolveMinCost(n, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality < 0.7-1e-9 {
		t.Errorf("quality %v below floor 0.7", s.Quality)
	}
	if want := 10 * Mbps * 1.0; math.Abs(s.Cost()-want) > 1 {
		t.Errorf("cost = %v, want %v (cheap path only)", s.Cost(), want)
	}
}

func TestSolveMinCostQualityOne(t *testing.T) {
	n := costedNetwork()
	// Full quality requires covering the cheap path's losses. The cheapest
	// perfect strategy retransmits cheap→pricey: cost λ(1 + 0.3·10) = 4λ,
	// vs pricey-only 10λ; cheap→cheap also works (300+200+200 ≤ 800):
	// cost λ(1+0.3) = 1.3λ but quality 1−0.09 = 0.91 < 1. With a third
	// attempt unavailable (m=2), perfect quality needs cheap→pricey mixes
	// or pricey alone. Expect cost 4λ.
	s, err := SolveMinCost(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality < 1-1e-9 {
		t.Fatalf("quality %v < 1", s.Quality)
	}
	if want := 4.0 * 10 * Mbps; math.Abs(s.Cost()-want) > 1 {
		t.Errorf("cost = %v, want %v", s.Cost(), want)
	}
	if f := s.Fraction(Combo{1, 2}); math.Abs(f-1) > 1e-9 {
		t.Errorf("x_{cheap,pricey} = %v, want 1", f)
	}
}

func TestSolveMinCostZeroQuality(t *testing.T) {
	// Quality floor 0: drop everything; cost 0.
	s, err := SolveMinCost(costedNetwork(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 0 {
		t.Errorf("cost = %v, want 0", s.Cost())
	}
}

func TestSolveMinCostInfeasible(t *testing.T) {
	n := costedNetwork()
	n.Rate = 200 * Mbps // quality 1 impossible: capacity 100 Mbps total
	_, err := SolveMinCost(n, 1)
	if err == nil {
		t.Fatal("expected infeasibility")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
}

func TestSolveMinCostArgErrors(t *testing.T) {
	n := costedNetwork()
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := SolveMinCost(n, q); err == nil {
			t.Errorf("quality %v accepted", q)
		}
	}
	bad := *n
	bad.Rate = 0
	if _, err := SolveMinCost(&bad, 0.5); err == nil {
		t.Error("invalid network accepted")
	}
}

// TestCostQualityDuality: solving max-quality under budget µ and then
// min-cost at that achieved quality must return cost ≤ µ.
func TestCostQualityDuality(t *testing.T) {
	n := costedNetwork()
	for _, budget := range []float64{5 * Mbps, 20 * Mbps, 40 * Mbps} {
		nb := *n
		nb.CostBound = budget
		qs, err := SolveQuality(&nb)
		if err != nil {
			t.Fatal(err)
		}
		if qs.Cost() > budget*(1+1e-9) {
			t.Errorf("budget %v: quality solve spent %v", budget, qs.Cost())
		}
		cs, err := SolveMinCost(n, qs.Quality)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Cost() > budget*(1+1e-6) {
			t.Errorf("budget %v: min-cost %v exceeds budget for quality %v", budget, cs.Cost(), qs.Quality)
		}
		if cs.Quality < qs.Quality-1e-7 {
			t.Errorf("budget %v: min-cost quality %v below target %v", budget, cs.Quality, qs.Quality)
		}
	}
}

// TestCostBoundLimitsQuality: a tighter budget can only reduce quality.
func TestCostBoundLimitsQuality(t *testing.T) {
	n := costedNetwork()
	prev := -1.0
	for _, budget := range []float64{0, 2 * Mbps, 5 * Mbps, 10 * Mbps, 40 * Mbps, math.Inf(1)} {
		nb := *n
		nb.CostBound = budget
		s, err := SolveQuality(&nb)
		if err != nil {
			t.Fatal(err)
		}
		if s.Quality < prev-1e-9 {
			t.Errorf("budget %v: quality %v decreased from %v", budget, s.Quality, prev)
		}
		prev = s.Quality
	}
	// Zero budget: only free paths (none here) → everything dropped.
	nb := *n
	nb.CostBound = 0
	s, err := SolveQuality(&nb)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality != 0 {
		t.Errorf("zero budget quality = %v, want 0", s.Quality)
	}
}

package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// driftFleet returns a fleet of networks plus rounds of drifted copies
// (each round drifts every network of the previous round) — the
// fleet-wide re-solve storm the shared warm pool serves.
func driftFleet(rng *rand.Rand, size, rounds int) [][]*Network {
	out := make([][]*Network, rounds+1)
	out[0] = make([]*Network, size)
	for i := range out[0] {
		// A few distinct shapes so the pool's shape keying is exercised.
		paths := 2 + i%3
		out[0][i] = diffRandomNetwork(rng, paths, 2+i%2)
	}
	for r := 1; r <= rounds; r++ {
		out[r] = make([]*Network, size)
		for i, n := range out[r-1] {
			out[r][i] = driftNetwork(rng, n, 0.08)
		}
	}
	return out
}

// TestWarmPoolMatchesCold: every batch of a drifting fleet must return
// the same optima as independent cold solves, and batches after the
// first must actually run warm.
func TestWarmPoolMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 1))
	rounds := driftFleet(rng, 24, 4)
	pool := NewWarmPool()
	for r, nets := range rounds {
		sols, err := pool.SolveMany(nets)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		warmed := 0
		for i, sol := range sols {
			ref, err := SolveQuality(nets[i])
			if err != nil {
				t.Fatal(err)
			}
			if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
				t.Fatalf("round %d net %d: pooled %v vs cold %v", r, i, sol.Quality, ref.Quality)
			}
			if sol.Stats.Warm {
				warmed++
			}
		}
		if r == 0 && warmed != 0 {
			t.Fatalf("round 0 reported %d warm solves from an empty pool", warmed)
		}
		if r > 0 && warmed < len(nets)/2 {
			t.Fatalf("round %d: only %d/%d solves ran warm; the pool is not being reused", r, warmed, len(nets))
		}
	}
}

// TestWarmPoolConcurrent hammers one WarmPool from several goroutines
// at once — run under -race (the CI test target does) this is the data
// race check for the striped shape-keyed pool.
func TestWarmPoolConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 2))
	rounds := driftFleet(rng, 16, 3)
	pool := NewWarmPool()
	// Prime the pool once so concurrent batches contend for warm state.
	if _, err := pool.SolveMany(rounds[0]); err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(rounds))
	for r, nets := range rounds {
		want[r] = make([]float64, len(nets))
		for i, n := range nets {
			ref, err := SolveQuality(n)
			if err != nil {
				t.Fatal(err)
			}
			want[r][i] = ref.Quality
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r, nets := range rounds {
				sols, err := pool.SolveMany(nets)
				if err != nil {
					t.Errorf("worker %d round %d: %v", g, r, err)
					return
				}
				for i := range sols {
					if gap := abs64(sols[i].Quality - want[r][i]); gap > 1e-6 {
						t.Errorf("worker %d round %d net %d: %v vs %v", g, r, i, sols[i].Quality, want[r][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWarmPoolError: a failing network reports an error, leaves the
// other entries usable, and does not poison the pool.
func TestWarmPoolError(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 3))
	good := diffRandomNetwork(rng, 3, 2)
	pool := NewWarmPool()
	if _, err := pool.SolveMany([]*Network{good, {}}); err == nil {
		t.Fatal("want error for invalid network")
	}
	sols, err := pool.SolveMany([]*Network{good})
	if err != nil || sols[0] == nil {
		t.Fatalf("good-only batch failed after error batch: %v", err)
	}
}

package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"dmc/internal/fault"
)

// driftFleet returns a fleet of networks plus rounds of drifted copies
// (each round drifts every network of the previous round) — the
// fleet-wide re-solve storm the shared warm pool serves.
func driftFleet(rng *rand.Rand, size, rounds int) [][]*Network {
	out := make([][]*Network, rounds+1)
	out[0] = make([]*Network, size)
	for i := range out[0] {
		// A few distinct shapes so the pool's shape keying is exercised.
		paths := 2 + i%3
		out[0][i] = diffRandomNetwork(rng, paths, 2+i%2)
	}
	for r := 1; r <= rounds; r++ {
		out[r] = make([]*Network, size)
		for i, n := range out[r-1] {
			out[r][i] = driftNetwork(rng, n, 0.08)
		}
	}
	return out
}

// TestWarmPoolMatchesCold: every batch of a drifting fleet must return
// the same optima as independent cold solves, and batches after the
// first must actually run warm.
func TestWarmPoolMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 1))
	rounds := driftFleet(rng, 24, 4)
	pool := NewWarmPool()
	for r, nets := range rounds {
		sols, err := pool.SolveMany(nets)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		warmed := 0
		for i, sol := range sols {
			ref, err := SolveQuality(nets[i])
			if err != nil {
				t.Fatal(err)
			}
			if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
				t.Fatalf("round %d net %d: pooled %v vs cold %v", r, i, sol.Quality, ref.Quality)
			}
			if sol.Stats.Warm {
				warmed++
			}
		}
		if r == 0 && warmed != 0 {
			t.Fatalf("round 0 reported %d warm solves from an empty pool", warmed)
		}
		if r > 0 && warmed < len(nets)/2 {
			t.Fatalf("round %d: only %d/%d solves ran warm; the pool is not being reused", r, warmed, len(nets))
		}
	}
}

// TestWarmPoolConcurrent hammers one WarmPool from several goroutines
// at once — run under -race (the CI test target does) this is the data
// race check for the striped shape-keyed pool.
func TestWarmPoolConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 2))
	rounds := driftFleet(rng, 16, 3)
	pool := NewWarmPool()
	// Prime the pool once so concurrent batches contend for warm state.
	if _, err := pool.SolveMany(rounds[0]); err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(rounds))
	for r, nets := range rounds {
		want[r] = make([]float64, len(nets))
		for i, n := range nets {
			ref, err := SolveQuality(n)
			if err != nil {
				t.Fatal(err)
			}
			want[r][i] = ref.Quality
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r, nets := range rounds {
				sols, err := pool.SolveMany(nets)
				if err != nil {
					t.Errorf("worker %d round %d: %v", g, r, err)
					return
				}
				for i := range sols {
					if gap := abs64(sols[i].Quality - want[r][i]); gap > 1e-6 {
						t.Errorf("worker %d round %d net %d: %v vs %v", g, r, i, sols[i].Quality, want[r][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWarmPoolError: a failing network reports an error, leaves the
// other entries usable, and does not poison the pool.
func TestWarmPoolError(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9001, 3))
	good := diffRandomNetwork(rng, 3, 2)
	pool := NewWarmPool()
	if _, err := pool.SolveMany([]*Network{good, {}}); err == nil {
		t.Fatal("want error for invalid network")
	}
	sols, err := pool.SolveMany([]*Network{good})
	if err != nil || sols[0] == nil {
		t.Fatalf("good-only batch failed after error batch: %v", err)
	}
}

// TestWarmPoolMinCostMatchesCold: the min-cost fleet batch must agree
// with independent cold SolveMinCost on both cost and quality across a
// drifting fleet, and batches after the first must run warm.
func TestWarmPoolMinCostMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9002, 1))
	rounds := driftFleet(rng, 16, 3)
	floors := make([]float64, 16)
	pool := NewWarmPool()
	for r, nets := range rounds {
		for i, n := range nets {
			// A floor below the quality optimum keeps every entry feasible;
			// QualityUpperBound ignores bandwidth/cost so scale it down hard.
			ub, err := QualityUpperBound(n)
			if err != nil {
				t.Fatal(err)
			}
			floors[i] = 0.5 * ub
		}
		sols, err := pool.SolveManyMinCost(nets, floors)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		warmed := 0
		for i, sol := range sols {
			ref, err := SolveMinCost(nets[i], floors[i])
			if err != nil {
				t.Fatal(err)
			}
			if gap := abs64(sol.Cost() - ref.Cost()); gap > 1e-6*(1+abs64(ref.Cost())) {
				t.Fatalf("round %d net %d: pooled cost %v vs cold %v", r, i, sol.Cost(), ref.Cost())
			}
			if sol.Quality+1e-9 < floors[i] {
				t.Fatalf("round %d net %d: quality %v below floor %v", r, i, sol.Quality, floors[i])
			}
			if sol.Stats.Warm {
				warmed++
			}
		}
		if r > 0 && warmed < len(nets)/2 {
			t.Fatalf("round %d: only %d/%d min-cost solves ran warm", r, warmed, len(nets))
		}
	}
}

// TestWarmPoolMinCostFloorSlice: a floor slice of the wrong length is
// rejected, not silently broadcast.
func TestWarmPoolMinCostFloorSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9002, 2))
	nets := []*Network{diffRandomNetwork(rng, 3, 2), diffRandomNetwork(rng, 3, 2)}
	if _, err := NewWarmPool().SolveManyMinCost(nets, []float64{0.5}); err == nil {
		t.Fatal("want error for mismatched floor slice")
	}
	if _, err := NewWarmPool().SolveManyRandom(nets, []*Timeouts{nil}); err == nil {
		t.Fatal("want error for mismatched timeout slice")
	}
}

// TestWarmPoolRandomMatchesCold: the random-delay fleet batch must agree
// with independent cold SolveQualityRandom across drifting timeout
// tables, and batches after the first must run warm.
func TestWarmPoolRandomMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9003, 1))
	const size = 12
	nets := make([]*Network, size)
	tos := make([]*Timeouts, size)
	for i := range nets {
		nets[i] = randomDelayNetwork(rng, 2+i%3)
	}
	pool := NewWarmPool()
	for r := 0; r < 4; r++ {
		for i := range nets {
			if r > 0 {
				nets[i] = driftNetwork(rng, nets[i], 0.08)
			}
			tos[i] = randomTimeouts(rng, nets[i])
		}
		sols, err := pool.SolveManyRandom(nets, tos)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		warmed := 0
		for i, sol := range sols {
			ref, err := SolveQualityRandom(nets[i], tos[i])
			if err != nil {
				t.Fatal(err)
			}
			if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
				t.Fatalf("round %d net %d: pooled %v vs cold %v", r, i, sol.Quality, ref.Quality)
			}
			if sol.Stats.Warm {
				warmed++
			}
		}
		if r > 0 && warmed < size/2 {
			t.Fatalf("round %d: only %d/%d random solves ran warm", r, warmed, size)
		}
	}
}

// TestWarmPoolSessionAffinity: session-keyed solves must match a
// per-session reference Resolve trajectory exactly, stay warm under
// drift, and KEEP that warmth when the fleet reorders, grows, and
// shrinks around them — the affinity positional checkout cannot give.
func TestWarmPoolSessionAffinity(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9004, 1))
	pool := NewWarmPool()
	const size = 12
	type sess struct {
		key string
		net *Network
		ref *Solver // private reference solver replaying the trajectory
	}
	fleet := make([]*sess, size)
	for i := range fleet {
		fleet[i] = &sess{
			key: string(rune('a' + i)),
			net: diffRandomNetwork(rng, 2+i%3, 2+i%2),
			ref: NewSolver(),
		}
	}
	solveAll := func(round int, wantWarm bool) {
		t.Helper()
		for _, s := range fleet {
			sol, err := pool.SolveSession(s.key, s.net)
			if err != nil {
				t.Fatalf("round %d key %s: %v", round, s.key, err)
			}
			ref, err := s.ref.Resolve(s.net)
			if err != nil {
				t.Fatal(err)
			}
			if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
				t.Fatalf("round %d key %s: session %v vs reference %v", round, s.key, sol.Quality, ref.Quality)
			}
			if wantWarm && !sol.Stats.Warm {
				t.Fatalf("round %d key %s: session solve ran cold after reorder/churn", round, s.key)
			}
		}
	}
	solveAll(0, false)
	// Round 1: drift + solve in reversed order — keyed affinity must hold.
	for i, j := 0, len(fleet)-1; i < j; i, j = i+1, j-1 {
		fleet[i], fleet[j] = fleet[j], fleet[i]
	}
	for _, s := range fleet {
		s.net = driftNetwork(rng, s.net, 0.08)
	}
	solveAll(1, true)
	// Round 2: drop a third of the fleet, add new sessions, shuffle, and
	// drift — the surviving sessions must still re-solve warm.
	for i := 0; i < size/3; i++ {
		pool.DropSession(fleet[i].key)
	}
	fleet = fleet[size/3:]
	for i := 0; i < 3; i++ {
		fleet = append(fleet, &sess{
			key: "new-" + string(rune('0'+i)),
			net: diffRandomNetwork(rng, 3, 2),
			ref: NewSolver(),
		})
	}
	rng.Shuffle(len(fleet), func(i, j int) { fleet[i], fleet[j] = fleet[j], fleet[i] })
	for _, s := range fleet {
		s.net = driftNetwork(rng, s.net, 0.08)
	}
	for _, s := range fleet {
		sol, err := pool.SolveSession(s.key, s.net)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := s.ref.Resolve(s.net)
		if err != nil {
			t.Fatal(err)
		}
		if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
			t.Fatalf("post-churn key %s: session %v vs reference %v", s.key, sol.Quality, ref.Quality)
		}
		if len(s.key) == 1 && !sol.Stats.Warm {
			t.Fatalf("post-churn key %s: surviving session lost its warm state", s.key)
		}
	}
	if got := pool.Sessions(); got != len(fleet) {
		t.Fatalf("Sessions() = %d, want %d", got, len(fleet))
	}
}

// TestWarmPoolSessionObjectives: the min-cost and random session entry
// points must agree with their cold counterparts.
func TestWarmPoolSessionObjectives(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9004, 2))
	pool := NewWarmPool()
	mc := diffRandomNetwork(rng, 3, 2)
	for r := 0; r < 3; r++ {
		if r > 0 {
			mc = driftNetwork(rng, mc, 0.08)
		}
		ub, err := QualityUpperBound(mc)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := pool.SolveSessionMinCost("mc", mc, 0.5*ub)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SolveMinCost(mc, 0.5*ub)
		if err != nil {
			t.Fatal(err)
		}
		if gap := abs64(sol.Cost() - ref.Cost()); gap > 1e-6*(1+abs64(ref.Cost())) {
			t.Fatalf("round %d: session min-cost %v vs cold %v", r, sol.Cost(), ref.Cost())
		}
	}
	rd := randomDelayNetwork(rng, 3)
	for r := 0; r < 3; r++ {
		if r > 0 {
			rd = driftNetwork(rng, rd, 0.08)
		}
		to := randomTimeouts(rng, rd)
		sol, err := pool.SolveSessionRandom("rd", rd, to)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SolveQualityRandom(rd, to)
		if err != nil {
			t.Fatal(err)
		}
		if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
			t.Fatalf("round %d: session random %v vs cold %v", r, sol.Quality, ref.Quality)
		}
	}
	if got := pool.Sessions(); got != 2 {
		t.Fatalf("Sessions() = %d, want 2", got)
	}
	pool.DropSession("mc")
	pool.DropSession("rd")
	pool.DropSession("never-existed")
	if got := pool.Sessions(); got != 0 {
		t.Fatalf("Sessions() after drops = %d, want 0", got)
	}
}

// TestWarmPoolSessionChurnRace hammers session solves, drops, and
// re-creations on overlapping keys from several goroutines — run under
// -race (the CI test target does) this is the data race check for the
// keyed session map and its drop path.
func TestWarmPoolSessionChurnRace(t *testing.T) {
	pool := NewWarmPool()
	keys := []string{"k0", "k1", "k2", "k3"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(0x9005, uint64(g)))
			net := diffRandomNetwork(rng, 3, 2)
			want, err := SolveQuality(net)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 30; i++ {
				key := keys[rng.IntN(len(keys))]
				switch rng.IntN(3) {
				case 0:
					pool.DropSession(key)
				default:
					sol, err := pool.SolveSession(key, net)
					if err != nil {
						t.Errorf("worker %d: %v", g, err)
						return
					}
					if gap := abs64(sol.Quality - want.Quality); gap > 1e-6 {
						t.Errorf("worker %d: quality %v vs %v", g, sol.Quality, want.Quality)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWarmPoolQuarantineSession: a panic mid-Resolve poisons a
// session's warm solver; after QuarantineSession the next solve must
// run cold, match a fresh solver to 1e-6, and later drift solves must
// warm back up — and the poisoned state must never leak to the stripes.
func TestWarmPoolQuarantineSession(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9005, 1))
	pool := NewWarmPool()
	const key = "quarantine-me"
	net := diffRandomNetwork(rng, 3, 2)

	// Prime the session warm over a couple of drift rounds.
	if _, err := pool.SolveSession(key, net); err != nil {
		t.Fatal(err)
	}
	net = driftNetwork(rng, net, 0.08)
	sol, err := pool.SolveSession(key, net)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Warm {
		t.Fatal("session did not warm up before the fault")
	}

	// Inject a panic at the warm re-solve seam.
	fault.Activate(&fault.Plan{Seed: 1, Points: map[string][]fault.Spec{
		"core.resolve.warm": {{Kind: fault.Panic, Prob: 1}},
	}})
	net = driftNetwork(rng, net, 0.08)
	func() {
		defer fault.Deactivate()
		defer func() {
			pv, ok := recover().(*fault.PanicValue)
			if !ok || pv.Point != "core.resolve.warm" {
				t.Fatalf("recovered %v, want injected panic at core.resolve.warm", pv)
			}
		}()
		pool.SolveSession(key, net)
		t.Fatal("injected panic did not surface from SolveSession")
	}()

	pool.QuarantineSession(key)

	// Next solve: cold, and correct against a fresh solver.
	sol, err = pool.SolveSession(key, net)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("post-quarantine solve reported warm; poisoned state survived")
	}
	ref, err := NewSolver().Resolve(net)
	if err != nil {
		t.Fatal(err)
	}
	if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
		t.Fatalf("post-quarantine quality %v vs fresh solver %v", sol.Quality, ref.Quality)
	}

	// Drift again: the session warms back up on the clean solver.
	net = driftNetwork(rng, net, 0.08)
	sol, err = pool.SolveSession(key, net)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Warm {
		t.Fatal("session did not re-warm after quarantine")
	}
	if err := checkAgainst(NewSolver(), net, sol); err != nil {
		t.Fatal(err)
	}
}

// checkAgainst verifies sol matches a reference solve of net to 1e-6.
func checkAgainst(ref *Solver, net *Network, sol *Solution) error {
	r, err := ref.Resolve(net)
	if err != nil {
		return err
	}
	if gap := abs64(sol.Quality - r.Quality); gap > 1e-6 {
		return fmt.Errorf("quality %v vs reference %v", sol.Quality, r.Quality)
	}
	return nil
}

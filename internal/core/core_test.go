package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dmc/internal/lp"
)

// tableIIINetwork returns the Table III two-path network with the
// conservative model delays (450/150 ms) the paper uses for Table IV and
// Figure 2.
func tableIIINetwork(rateMbps float64, lifetime time.Duration) *Network {
	return NewNetwork(rateMbps*Mbps, lifetime,
		Path{Name: "path1", Bandwidth: 80 * Mbps, Delay: 450 * time.Millisecond, Loss: 0.2},
		Path{Name: "path2", Bandwidth: 20 * Mbps, Delay: 150 * time.Millisecond, Loss: 0},
	)
}

func solveQ(t *testing.T, n *Network) *Solution {
	t.Helper()
	s, err := SolveQuality(n)
	if err != nil {
		t.Fatalf("SolveQuality: %v", err)
	}
	return s
}

func TestFigure1Scenario(t *testing.T) {
	// §II: 10 Mbps/600 ms/10% + 1 Mbps/200 ms/0%, λ=10 Mbps, δ=1 s.
	// Initial transmission on the high-bandwidth path with retransmission
	// on the low-latency path delivers 100%; neither path alone can.
	n := NewNetwork(10*Mbps, time.Second,
		Path{Name: "highbw", Bandwidth: 10 * Mbps, Delay: 600 * time.Millisecond, Loss: 0.10},
		Path{Name: "lowlat", Bandwidth: 1 * Mbps, Delay: 200 * time.Millisecond, Loss: 0},
	)
	s := solveQ(t, n)
	if math.Abs(s.Quality-1) > 1e-9 {
		t.Errorf("multipath quality = %v, want 1", s.Quality)
	}
	if f := s.Fraction(Combo{1, 2}); math.Abs(f-1) > 1e-9 {
		t.Errorf("x_{1,2} = %v, want 1 (all data on highbw with lowlat retransmission)", f)
	}

	// Single-path baselines: path 1 alone loses 10% (no second attempt in
	// time: 600+600+600 > 1000); path 2 alone caps at 1/10 of the rate.
	s1 := solveQ(t, n.SinglePath(0))
	if math.Abs(s1.Quality-0.9) > 1e-9 {
		t.Errorf("path1-only quality = %v, want 0.9", s1.Quality)
	}
	s2 := solveQ(t, n.SinglePath(1))
	if math.Abs(s2.Quality-0.1) > 1e-9 {
		t.Errorf("path2-only quality = %v, want 0.1", s2.Quality)
	}
}

func TestSolutionMetrics(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	// Paper (Table IV bottom, δ=750–1000 row): Q = 14/15.
	if math.Abs(s.Quality-14.0/15) > 1e-9 {
		t.Fatalf("quality = %v, want 14/15", s.Quality)
	}
	// Bandwidth caps respected.
	for i, p := range n.Paths {
		if rate := s.SentRate(i); rate > p.Bandwidth*(1+1e-9) {
			t.Errorf("SentRate(%d) = %v exceeds bandwidth %v", i, rate, p.Bandwidth)
		}
	}
	// Path 2 must be saturated at the optimum (its dual is what limits Q).
	if rate := s.SentRate(1); math.Abs(rate-20*Mbps) > 1 {
		t.Errorf("SentRate(1) = %v, want 20 Mbps (tight)", rate)
	}
	if g := s.Goodput(); math.Abs(g-s.Quality*90*Mbps) > 1 {
		t.Errorf("Goodput = %v, want Quality·λ", g)
	}
	// DropRate is not unique in the Table III scenarios (alternate optima
	// may send excess at p=0.8 instead of dropping), so pin it where it
	// is: a lossless 10 Mbps path fed 20 Mbps must blackhole exactly half.
	overload := NewNetwork(20*Mbps, time.Second,
		Path{Bandwidth: 10 * Mbps, Delay: 100 * time.Millisecond})
	sOver := solveQ(t, overload)
	if math.Abs(sOver.Quality-0.5) > 1e-9 {
		t.Errorf("overload quality = %v, want 0.5", sOver.Quality)
	}
	if d := sOver.DropRate(); math.Abs(d-10*Mbps) > 1 {
		t.Errorf("DropRate(overload) = %v, want 10 Mbps", d)
	}
	// No cost configured: zero.
	if c := s.Cost(); c != 0 {
		t.Errorf("Cost = %v, want 0", c)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	// The LP solution must verify against its own problem.
	if !lp.Feasible(s.Problem(), s.X, 1e-6) {
		t.Error("solution infeasible against its own LP")
	}
}

func TestActiveCombosAndFraction(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	active := s.ActiveCombos(1e-9)
	if len(active) == 0 {
		t.Fatal("no active combos")
	}
	var sum float64
	for _, cs := range active {
		sum += cs.Fraction
		if cs.DeliveryProb < 0 || cs.DeliveryProb > 1 {
			t.Errorf("delivery prob %v outside [0,1]", cs.DeliveryProb)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("active fractions sum to %v, want 1", sum)
	}
	// Sorted by decreasing share.
	for k := 1; k < len(active); k++ {
		if active[k].Fraction > active[k-1].Fraction+1e-12 {
			t.Error("ActiveCombos not sorted")
		}
	}
	// Fraction of a bogus combo is 0.
	if s.Fraction(Combo{9, 9}) != 0 || s.Fraction(Combo{1}) != 0 {
		t.Error("bogus combos should have zero fraction")
	}
}

func TestTimeoutsDeterministic(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	to := s.Timeouts(100 * time.Millisecond)
	// t₁ = d₁ + d_min + margin = 450+150+100 = 700 ms.
	if to[0] != 700*time.Millisecond {
		t.Errorf("timeout[0] = %v, want 700ms", to[0])
	}
	if to[1] != 400*time.Millisecond {
		t.Errorf("timeout[1] = %v, want 400ms", to[1])
	}
}

func TestQualityUpperBound(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	ub, err := QualityUpperBound(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ub-1) > 1e-12 { // combo (1,2) delivers with prob 1
		t.Errorf("upper bound = %v, want 1", ub)
	}
	s := solveQ(t, n)
	if s.Quality > ub+1e-9 {
		t.Error("quality exceeds upper bound")
	}
}

func TestValidation(t *testing.T) {
	base := tableIIINetwork(90, 800*time.Millisecond)
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"no paths", func(n *Network) { n.Paths = nil }},
		{"zero rate", func(n *Network) { n.Rate = 0 }},
		{"inf rate", func(n *Network) { n.Rate = math.Inf(1) }},
		{"zero lifetime", func(n *Network) { n.Lifetime = 0 }},
		{"neg cost bound", func(n *Network) { n.CostBound = -1 }},
		{"nan cost bound", func(n *Network) { n.CostBound = math.NaN() }},
		{"too many transmissions", func(n *Network) { n.Transmissions = MaxTransmissions + 1 }},
		{"neg transmissions", func(n *Network) { n.Transmissions = -1 }},
		{"zero bandwidth", func(n *Network) { n.Paths[0].Bandwidth = 0 }},
		{"loss above one", func(n *Network) { n.Paths[1].Loss = 1.5 }},
		{"nan loss", func(n *Network) { n.Paths[1].Loss = math.NaN() }},
		{"neg delay", func(n *Network) { n.Paths[0].Delay = -time.Second }},
		{"neg path cost", func(n *Network) { n.Paths[0].Cost = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tableIIINetwork(90, 800*time.Millisecond)
			*n = *base
			n.Paths = append([]Path(nil), base.Paths...)
			tc.mutate(n)
			if _, err := SolveQuality(n); err == nil {
				t.Error("SolveQuality accepted invalid network")
			}
		})
	}
}

func TestTooManyVariables(t *testing.T) {
	paths := make([]Path, 50)
	for i := range paths {
		paths[i] = Path{Bandwidth: Mbps, Delay: 100 * time.Millisecond}
	}
	n := NewNetwork(Mbps, time.Second, paths...)
	n.Transmissions = 6

	// Dense-only entry points must refuse the 51^6 ≈ 1.8e10 space...
	if _, err := BuildLP(n); err == nil {
		t.Error("BuildLP accepted a combination space beyond DenseLimit")
	}
	// ...while the solve entry points dispatch to column generation and
	// solve it (SolveMinCost and SolveQualityRandom used to stop dead at
	// the cap; see TestMinCostOverflowDispatchesToCG for the overflow
	// regression).
	sol, err := SolveQuality(n)
	if err != nil {
		t.Fatalf("SolveQuality (CG dispatch): %v", err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Errorf("dispatch = %v, want %v", sol.Stats.Dispatch, DispatchCG)
	}
	if sol.Quality <= 0 || sol.Quality > 1 {
		t.Errorf("CG quality = %v", sol.Quality)
	}
	csol, err := SolveMinCost(n, 0.5)
	if err != nil {
		t.Fatalf("SolveMinCost (CG dispatch): %v", err)
	}
	if csol.Stats.Dispatch != DispatchCG {
		t.Errorf("min-cost dispatch = %v, want %v", csol.Stats.Dispatch, DispatchCG)
	}
	if csol.Quality < 0.5-1e-6 {
		t.Errorf("min-cost quality %v below the 0.5 floor", csol.Quality)
	}
}

func TestComboStringAndEqual(t *testing.T) {
	c := Combo{1, 2}
	if c.String() != "x1,2" {
		t.Errorf("String = %q, want x1,2", c.String())
	}
	if !c.Equal(Combo{1, 2}) || c.Equal(Combo{2, 1}) || c.Equal(Combo{1}) {
		t.Error("Equal wrong")
	}
}

func TestAckPathIndexAndMinDelay(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	if got := n.AckPathIndex(); got != 1 {
		t.Errorf("AckPathIndex = %d, want 1", got)
	}
	if got := n.MinDelay(); got != 150*time.Millisecond {
		t.Errorf("MinDelay = %v, want 150ms", got)
	}
}

func TestSingleTransmission(t *testing.T) {
	// m=1: no retransmissions at all; path1 delivers 80%, capacity split.
	n := tableIIINetwork(90, 800*time.Millisecond)
	n.Transmissions = 1
	s := solveQ(t, n)
	// Best: 20 Mbps on path2 (p=1) + 70 on path1 (p=0.8):
	// Q = (20 + 70·0.8)/90 = 76/90.
	if want := 76.0 / 90; math.Abs(s.Quality-want) > 1e-9 {
		t.Errorf("m=1 quality = %v, want %v", s.Quality, want)
	}
}

func TestThreeTransmissionsImprove(t *testing.T) {
	// With a long lifetime, a third attempt on the lossy path helps.
	n := NewNetwork(50*Mbps, 3*time.Second,
		Path{Bandwidth: 100 * Mbps, Delay: 300 * time.Millisecond, Loss: 0.3},
		Path{Bandwidth: 5 * Mbps, Delay: 100 * time.Millisecond, Loss: 0.1},
	)
	n.Transmissions = 2
	q2 := solveQ(t, n).Quality
	n3 := *n
	n3.Transmissions = 3
	q3 := solveQ(t, &n3).Quality
	if q3 < q2-1e-9 {
		t.Errorf("m=3 quality %v < m=2 quality %v", q3, q2)
	}
	if q3 <= q2+1e-6 {
		t.Errorf("expected strict improvement from third transmission: %v vs %v", q3, q2)
	}
}

// TestQuickQualityBounds: quality always lies in [0,1] and the solution is
// feasible, across random networks.
func TestQuickQualityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		s, err := SolveQuality(n)
		if err != nil {
			return false
		}
		if s.Quality < 0 || s.Quality > 1 {
			return false
		}
		if !lp.Feasible(s.Problem(), s.X, 1e-6) {
			return false
		}
		for i, p := range n.Paths {
			if s.SentRate(i) > p.Bandwidth*(1+1e-6)+1 {
				return false
			}
		}
		var sum float64
		for _, x := range s.X {
			sum += x
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickQualityMonotoneLifetime: more lifetime never hurts.
func TestQuickQualityMonotoneLifetime(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		n.Lifetime = time.Duration(50+rng.Intn(500)) * time.Millisecond
		s1, err := SolveQuality(n)
		if err != nil {
			return false
		}
		n2 := *n
		n2.Lifetime = n.Lifetime + time.Duration(rng.Intn(500))*time.Millisecond
		s2, err := SolveQuality(&n2)
		if err != nil {
			return false
		}
		return s2.Quality >= s1.Quality-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickQualityMonotoneRate: raising λ cannot raise the quality ratio.
func TestQuickQualityMonotoneRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		s1, err := SolveQuality(n)
		if err != nil {
			return false
		}
		n2 := *n
		n2.Rate = n.Rate * (1 + rng.Float64()*3)
		s2, err := SolveQuality(&n2)
		if err != nil {
			return false
		}
		return s2.Quality <= s1.Quality+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickMultipathBeatsSinglePath: the multipath optimum dominates every
// single-path optimum (the paper's headline claim).
func TestQuickMultipathBeatsSinglePath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		s, err := SolveQuality(n)
		if err != nil {
			return false
		}
		for i := range n.Paths {
			si, err := SolveQuality(n.SinglePath(i))
			if err != nil {
				return false
			}
			if s.Quality < si.Quality-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomNetwork builds a small random but valid deterministic network.
func randomNetwork(rng *rand.Rand) *Network {
	numPaths := 1 + rng.Intn(3)
	paths := make([]Path, numPaths)
	for i := range paths {
		paths[i] = Path{
			Bandwidth: (1 + rng.Float64()*99) * Mbps,
			Delay:     time.Duration(10+rng.Intn(600)) * time.Millisecond,
			Loss:      rng.Float64() * 0.5,
		}
	}
	n := NewNetwork((1+rng.Float64()*150)*Mbps, time.Duration(100+rng.Intn(1200))*time.Millisecond, paths...)
	if rng.Intn(2) == 0 {
		n.Transmissions = 1 + rng.Intn(3)
	}
	return n
}

package core

import (
	"fmt"
	"math"
	"time"

	"dmc/internal/dist"
)

// Timeouts holds the retransmission timeouts t_{i,j} of the random-delay
// model (§VI-B): the time to wait after sending on path i before
// retransmitting on path j. Indices are 0-based into Network.Paths.
type Timeouts struct {
	// T[i][j] is t_{i,j}; a negative value means undefined — no waiting
	// time allows a useful retransmission within the lifetime (the paper's
	// t₁,₁ in Experiment 2).
	T [][]time.Duration
}

// Get returns t_{i,j} and whether it is defined.
func (t *Timeouts) Get(i, j int) (time.Duration, bool) {
	if i < 0 || i >= len(t.T) || j < 0 || j >= len(t.T[i]) {
		return -1, false
	}
	if t.T[i][j] < 0 {
		return -1, false
	}
	return t.T[i][j], true
}

// Set assigns t_{i,j} (use a negative duration to mark it undefined).
func (t *Timeouts) Set(i, j int, d time.Duration) { t.T[i][j] = d }

// NewTimeouts returns an n×n timeout table with every entry undefined.
func NewTimeouts(n int) *Timeouts {
	tt := &Timeouts{T: make([][]time.Duration, n)}
	for i := range tt.T {
		tt.T[i] = make([]time.Duration, n)
		for j := range tt.T[i] {
			tt.T[i][j] = -1
		}
	}
	return tt
}

// TimeoutOptions tunes the Eq. 34 optimization.
type TimeoutOptions struct {
	// GridStep is the coarse search resolution over (0, δ]. Zero means
	// 5 ms.
	GridStep time.Duration
	// RefineLevels is how many 10× grid refinements follow the coarse
	// pass. Zero means 2 (final resolution GridStep/100).
	RefineLevels int
	// ConvolutionNodes is the quadrature resolution for P(dᵢ+d_min ≤ t).
	// Zero means 1500.
	ConvolutionNodes int
}

func (o TimeoutOptions) withDefaults() TimeoutOptions {
	if o.GridStep <= 0 {
		o.GridStep = 5 * time.Millisecond
	}
	if o.RefineLevels <= 0 {
		o.RefineLevels = 2
	}
	if o.ConvolutionNodes <= 0 {
		o.ConvolutionNodes = 1500
	}
	return o
}

// OptimalTimeouts computes t_{i,j} for every ordered pair of real paths by
// maximizing Eq. 26/34:
//
//	t_{i,j} = argmax_t P(t + d_j ≤ δ) · P(d_i + d_min ≤ t),
//
// i.e. wait long enough that the acknowledgment had a chance to arrive,
// but retransmit early enough that the retransmission can still meet the
// deadline. The product is maximized in log space through directly
// computed tail probabilities, which resolves the optimum even when both
// factors are within machine epsilon of 1 (the regime of Experiment 2,
// where optima like t₂,₂ = 323 ms balance tails of magnitude 1e-17 and
// 1e-60).
func OptimalTimeouts(n *Network, opts TimeoutOptions) (*Timeouts, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	ack := n.Paths[n.AckPathIndex()].delayDist()

	out := NewTimeouts(len(n.Paths))
	for i := range n.Paths {
		rttDist := dist.NewSumNodes(n.Paths[i].delayDist(), ack, opts.ConvolutionNodes)
		for j := range n.Paths {
			dj := n.Paths[j].delayDist()
			score := func(t time.Duration) float64 {
				return logCDF(dj, n.Lifetime-t) + logCDF(rttDist, t)
			}
			if t, ok := maximizeOverGrid(score, 0, n.Lifetime, opts.GridStep, opts.RefineLevels); ok {
				out.T[i][j] = t
			}
		}
	}
	return out, nil
}

// RetransmitSuccessProb returns P(t_{i,j} + d_j ≤ δ): the probability that
// a retransmission issued at the timeout still meets the deadline (the
// second factor of Eq. 34 and part of Eq. 28).
func RetransmitSuccessProb(n *Network, to *Timeouts, i, j int) float64 {
	t, ok := to.Get(i, j)
	if !ok {
		return 0
	}
	return n.Paths[j].delayDist().CDF(n.Lifetime - t)
}

// logCDF evaluates ln P(D ≤ x) with full relative precision on both ends:
// via the direct tail when the CDF is close to 1, via the CDF itself
// otherwise.
func logCDF(d dist.Delay, x time.Duration) float64 {
	tail := d.Tail(x)
	if tail < 0.5 {
		return math.Log1p(-tail)
	}
	cdf := d.CDF(x)
	if cdf <= 0 {
		return math.Inf(-1)
	}
	return math.Log(cdf)
}

// coarseMinPoints is the minimum coarse-grid resolution of
// maximizeOverGrid: intervals shorter than coarseMinPoints×step are
// subdivided so the scan still sees the interval's interior.
const coarseMinPoints = 8

// maximizeOverGrid scans (lo, hi] at the given step, then refines around
// the best point with `levels` successive 10× finer passes. The step is
// clamped so short intervals (a lifetime below the coarse grid step)
// still evaluate at least coarseMinPoints interior points, and hi itself
// is always probed — otherwise a network with Lifetime < GridStep would
// evaluate zero points and report every timeout undefined even when
// feasible ones exist. Returns ok = false when the objective is -Inf
// everywhere (no feasible t).
func maximizeOverGrid(f func(time.Duration) float64, lo, hi time.Duration, step time.Duration, levels int) (time.Duration, bool) {
	if hi <= lo || step <= 0 {
		return -1, false
	}
	if maxStep := (hi - lo) / coarseMinPoints; step > maxStep {
		step = maxStep
		if step <= 0 {
			step = hi - lo // sub-nanosecond-per-point interval: single probe at hi
		}
	}
	bestT := time.Duration(-1)
	bestV := math.Inf(-1)
	for t := lo + step; t <= hi; t += step {
		if v := f(t); v > bestV {
			bestV = v
			bestT = t
		}
	}
	// The coarse loop reaches hi only when the width divides evenly;
	// probe it explicitly so the interval's endpoint is never skipped.
	if v := f(hi); v > bestV {
		bestV = v
		bestT = hi
	}
	if math.IsInf(bestV, -1) || bestT < 0 {
		return -1, false
	}
	for level := 0; level < levels; level++ {
		fine := step / 10
		if fine <= 0 {
			break
		}
		lo2 := bestT - step
		if lo2 < lo {
			lo2 = lo
		}
		hi2 := bestT + step
		if hi2 > hi {
			hi2 = hi
		}
		for t := lo2 + fine; t <= hi2; t += fine {
			if v := f(t); v > bestV {
				bestV = v
				bestT = t
			}
		}
		step = fine
	}
	return bestT, true
}

// DeterministicTimeouts returns the fixed-delay timeouts tᵢ = dᵢ + d_min
// (Eq. 4) as a full pair table (the wait before retransmitting on any path
// depends only on the initial path under fixed delays), plus a safety
// margin.
func DeterministicTimeouts(n *Network, margin time.Duration) (*Timeouts, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	dmin := n.MinDelay()
	out := NewTimeouts(len(n.Paths))
	for i, p := range n.Paths {
		for j := range n.Paths {
			out.T[i][j] = p.meanDelay() + dmin + margin
		}
	}
	return out, nil
}

// String renders the timeout table.
func (t *Timeouts) String() string {
	s := ""
	for i := range t.T {
		for j := range t.T[i] {
			if d, ok := t.Get(i, j); ok {
				s += fmt.Sprintf("t[%d,%d]=%v ", i+1, j+1, d.Round(time.Millisecond))
			} else {
				s += fmt.Sprintf("t[%d,%d]=undef ", i+1, j+1)
			}
		}
	}
	return s
}

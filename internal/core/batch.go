package core

import (
	"fmt"

	"dmc/internal/conc"
)

// SolveMany solves the quality maximization (Eq. 10) for every network,
// fanning the solves across min(GOMAXPROCS, len(nets)) workers. Each
// solve draws a reusable Solver from the shared pool, so large sweeps
// reuse tableau and enumeration memory instead of reallocating per
// solve. Results are returned in input order. On error the first
// failure (by scheduling order, not necessarily input order) is
// returned together with the partial results; entries that did not
// solve are nil.
//
// SolveMany is safe for concurrent use from multiple goroutines.
func SolveMany(nets []*Network) ([]*Solution, error) {
	sols := make([]*Solution, len(nets))
	err := conc.ForEach(len(nets), func(i int) error {
		sol, err := SolveQuality(nets[i])
		if err != nil {
			return fmt.Errorf("core: batch solve %d: %w", i, err)
		}
		sols[i] = sol
		return nil
	})
	return sols, err
}

package core

import (
	"dmc/internal/lp"
)

// BuildLP constructs the standard-form linear program of Eq. 10 for the
// deterministic-delay model: maximize pᵀx′ subject to bandwidth rows
// (Eqs. 14–15), the cost row (Eq. 16), the conservation row Bx′ = 1
// (Eq. 18), and x′ ≥ 0. Exposed for inspection and for the solver-ablation
// benchmarks; most callers want SolveQuality.
func BuildLP(n *Network) (*lp.Problem, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	cols := m.computeColumns(make([]int, m.m))
	return m.assembleProblem(lp.Maximize, cols.delivery, cols, nil, true), nil
}

// SolveQuality solves the deterministic-delay quality maximization
// (Eq. 10) with a pooled reusable Solver. The problem is always
// feasible — the blackhole path absorbs any excess traffic — so a
// non-optimal status indicates an internal error.
func SolveQuality(n *Network) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveQuality(n)
	solverPool.Put(s)
	return sol, err
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// QualityUpperBound returns the best achievable quality ignoring bandwidth
// and cost limits: the delivery probability of the best feasible single
// combination. Useful as a sanity bound in tests and reports.
func QualityUpperBound(n *Network) (float64, error) {
	m, err := newModel(n)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for l := 0; l < m.nVars; l++ {
		if p := m.deliveryProb(m.combo(l)); p > best {
			best = p
		}
	}
	return best, nil
}

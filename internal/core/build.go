package core

import (
	"fmt"

	"dmc/internal/lp"
)

// BuildLP constructs the standard-form linear program of Eq. 10 for the
// deterministic-delay model: maximize pᵀx′ subject to bandwidth rows
// (Eqs. 14–15), the cost row (Eq. 16), the conservation row Bx′ = 1
// (Eq. 18), and x′ ≥ 0. Exposed for inspection and for the solver-ablation
// benchmarks; most callers want SolveQuality.
func BuildLP(n *Network) (*lp.Problem, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	return m.buildQualityLP(), nil
}

func (m *model) buildQualityLP() *lp.Problem {
	obj := make([]float64, m.nVars)
	shares := make([][]float64, m.nVars)
	costs := make([]float64, m.nVars)
	for l := 0; l < m.nVars; l++ {
		c := m.combo(l)
		obj[l] = m.deliveryProb(c)
		shares[l] = m.sendShare(c)
		costs[l] = m.comboCost(c)
	}

	p := lp.NewProblem(lp.Maximize, obj)
	m.addCommonRowsWith(p, shares, costs)
	return p
}

// SolveQuality solves the deterministic-delay quality maximization
// (Eq. 10) and returns the optimal sending strategy. The problem is always
// feasible — the blackhole path absorbs any excess traffic — so a
// non-optimal status indicates an internal error.
func SolveQuality(n *Network) (*Solution, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	prob := m.buildQualityLP()
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: solving quality LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: quality LP unexpectedly %v", sol.Status)
	}
	return m.newSolution(prob, sol.X, sol.Objective), nil
}

// newSolution assembles the public Solution from a solved x′ vector.
func (m *model) newSolution(prob *lp.Problem, x []float64, quality float64) *Solution {
	s := &Solution{
		Network:  m.net,
		X:        x,
		Quality:  clamp01(quality),
		m:        m,
		problem:  prob,
		combos:   make([]Combo, m.nVars),
		delivery: make([]float64, m.nVars),
		shares:   make([][]float64, m.nVars),
		costs:    make([]float64, m.nVars),
	}
	for l := 0; l < m.nVars; l++ {
		c := m.combo(l)
		s.combos[l] = c
		s.delivery[l] = m.deliveryProb(c)
		s.shares[l] = m.sendShare(c)
		s.costs[l] = m.comboCost(c)
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// QualityUpperBound returns the best achievable quality ignoring bandwidth
// and cost limits: the delivery probability of the best feasible single
// combination. Useful as a sanity bound in tests and reports.
func QualityUpperBound(n *Network) (float64, error) {
	m, err := newModel(n)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for l := 0; l < m.nVars; l++ {
		if p := m.deliveryProb(m.combo(l)); p > best {
			best = p
		}
	}
	return best, nil
}

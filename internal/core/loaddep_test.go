package core

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestLoadAwareZeroModelsMatchesPlainSolve(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	plain := solveQ(t, n)
	sol, loads, err := SolveQualityLoadAware(n, make([]LoadModel, 2), LoadAwareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Quality-plain.Quality) > 1e-12 {
		t.Errorf("zero models changed quality: %v vs %v", sol.Quality, plain.Quality)
	}
	if len(loads) != 2 {
		t.Fatalf("loads = %v", loads)
	}
	for i, l := range loads {
		if l.EffectiveDelay != n.Paths[i].Delay || l.EffectiveLoss != n.Paths[i].Loss {
			t.Errorf("path %d effective characteristics changed: %+v", i, l)
		}
	}
}

func TestLoadAwareQueueingReducesQuality(t *testing.T) {
	// Path 2 develops queueing delay under load: at saturation it adds
	// ≈500 ms, which breaks the (1,2) retransmission combination
	// (needs effective d2 ≤ 200 ms at δ=800) but keeps direct use of
	// path 2 feasible. Expected fixed point: the 450–700 ms strategy with
	// Q = 38/45 instead of 14/15.
	n := tableIIINetwork(90, 800*time.Millisecond)
	plain := solveQ(t, n)
	models := []LoadModel{
		{},
		{QueueFactor: 500 * time.Microsecond},
	}
	sol, loads, err := SolveQualityLoadAware(n, models, LoadAwareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality > plain.Quality+1e-9 {
		t.Errorf("load-aware quality %v above load-blind %v", sol.Quality, plain.Quality)
	}
	if math.Abs(sol.Quality-38.0/45) > 1e-3 {
		t.Errorf("quality %v, want ≈38/45", sol.Quality)
	}
	if loads[1].EffectiveDelay <= n.Paths[1].Delay {
		t.Errorf("path 2 effective delay %v did not grow", loads[1].EffectiveDelay)
	}
	if loads[1].Utilization <= 0 || loads[1].Utilization > 1 {
		t.Errorf("utilization %v", loads[1].Utilization)
	}
}

func TestLoadAwareBistableDiverges(t *testing.T) {
	// A queue factor whose saturation delay dwarfs the lifetime admits no
	// interior fixed point (usable ⇒ saturated ⇒ unusable): the iteration
	// must report divergence rather than return an unstable answer.
	n := tableIIINetwork(90, 800*time.Millisecond)
	models := []LoadModel{
		{},
		{QueueFactor: 40 * time.Millisecond},
	}
	_, _, err := SolveQualityLoadAware(n, models, LoadAwareOptions{})
	if !errors.Is(err, ErrLoadAwareDiverged) {
		t.Fatalf("want ErrLoadAwareDiverged for a bistable config, got %v", err)
	}
	// The §IX-A remedy: cap planned utilization so the modeled queueing
	// delay stays below the cliff; then a stable operating point exists.
	// At u = 0.85, path 2's delay is 150 + 40·0.85/0.15 ≈ 377 ms ≤ 800.
	sol, loads, err := SolveQualityLoadAware(n, models, LoadAwareOptions{UtilizationCap: 0.85})
	if err != nil {
		t.Fatalf("capped solve failed: %v", err)
	}
	if sol.Quality <= 0 {
		t.Errorf("capped quality %v", sol.Quality)
	}
	for i, l := range loads {
		if l.Utilization > 0.85+1e-6 {
			t.Errorf("path %d utilization %v exceeds cap", i, l.Utilization)
		}
	}
}

func TestLoadAwareLossKnee(t *testing.T) {
	// A single path pushed past its loss knee: effective loss grows, and
	// the solution's quality accounts for it.
	n := NewNetwork(9*Mbps, 500*time.Millisecond,
		Path{Bandwidth: 10 * Mbps, Delay: 50 * time.Millisecond, Loss: 0.01})
	n.Transmissions = 1
	models := []LoadModel{{LossKnee: 0.5, LossSlope: 0.2}}
	sol, loads, err := SolveQualityLoadAware(n, models, LoadAwareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Utilization ≈ 0.9 → extra loss ≈ 0.2·(0.9−0.5)/0.5 = 0.16.
	if loads[0].EffectiveLoss < 0.1 {
		t.Errorf("effective loss %v did not pass the knee", loads[0].EffectiveLoss)
	}
	// The returned solution was solved one (converged) step before the
	// final blend, so allow the tolerance-sized slack.
	want := 1 - loads[0].EffectiveLoss
	if math.Abs(sol.Quality-want) > 2e-3 {
		t.Errorf("quality %v, want ≈%v (1 − effective loss)", sol.Quality, want)
	}
}

func TestLoadAwareConverges(t *testing.T) {
	// Aggressive feedback still converges with damping.
	n := tableIIINetwork(120, 800*time.Millisecond)
	models := []LoadModel{
		{QueueFactor: 30 * time.Millisecond, LossKnee: 0.8, LossSlope: 0.1},
		{QueueFactor: 30 * time.Millisecond, LossKnee: 0.8, LossSlope: 0.1},
	}
	sol, loads, err := SolveQualityLoadAware(n, models, LoadAwareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality <= 0 || sol.Quality > 1 {
		t.Errorf("quality %v", sol.Quality)
	}
	// The reported operating point must be internally consistent: the
	// effective characteristics equal the load model applied at the
	// reported utilization. (A stronger re-solve check is wrong here: the
	// LP's load response is discontinuous, and the fixed point may sit
	// exactly on a feasibility threshold.)
	for i := range loads {
		wantD, wantL := models[i].apply(n.Paths[i], loads[i].Utilization)
		if loads[i].EffectiveDelay != wantD || math.Abs(loads[i].EffectiveLoss-wantL) > 1e-12 {
			t.Errorf("path %d: reported load point inconsistent: %+v", i, loads[i])
		}
		if loads[i].Utilization < 0 || loads[i].Utilization > 1 {
			t.Errorf("path %d: utilization %v", i, loads[i].Utilization)
		}
	}
}

func TestLoadAwareValidation(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	if _, _, err := SolveQualityLoadAware(n, make([]LoadModel, 1), LoadAwareOptions{}); err == nil {
		t.Error("model count mismatch accepted")
	}
	bad := []LoadModel{{QueueFactor: -1}, {}}
	if _, _, err := SolveQualityLoadAware(n, bad, LoadAwareOptions{}); err == nil {
		t.Error("negative queue factor accepted")
	}
	bad2 := []LoadModel{{LossKnee: 1.5}, {}}
	if _, _, err := SolveQualityLoadAware(n, bad2, LoadAwareOptions{}); err == nil {
		t.Error("bad knee accepted")
	}
	bad3 := []LoadModel{{LossSlope: -0.1}, {}}
	if _, _, err := SolveQualityLoadAware(n, bad3, LoadAwareOptions{}); err == nil {
		t.Error("negative slope accepted")
	}
	invalid := *n
	invalid.Rate = 0
	if _, _, err := SolveQualityLoadAware(&invalid, make([]LoadModel, 2), LoadAwareOptions{}); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestLoadAwareDivergenceBudget(t *testing.T) {
	// One iteration with full damping on a strongly coupled system
	// should hit the budget error rather than spin.
	n := tableIIINetwork(90, 800*time.Millisecond)
	models := []LoadModel{
		{QueueFactor: 500 * time.Millisecond},
		{QueueFactor: 500 * time.Millisecond},
	}
	_, _, err := SolveQualityLoadAware(n, models, LoadAwareOptions{MaxIterations: 1, Damping: 1})
	if err == nil {
		return // converged in one step: acceptable
	}
	if !errors.Is(err, ErrLoadAwareDiverged) {
		t.Errorf("want ErrLoadAwareDiverged, got %v", err)
	}
}

package core

import (
	"sync"
	"testing"
	"time"

	"dmc/internal/dist"
)

// cacheTestNetwork is a small §VI-B random-delay network for timeout
// cache tests (coarse search options keep each miss cheap).
func cacheTestNetwork() *Network {
	n := NewNetwork(10*Mbps, 500*time.Millisecond,
		Path{Bandwidth: 20 * Mbps, Loss: 0.1,
			RandDelay: dist.ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 4, Scale: 5 * time.Millisecond}},
		Path{Bandwidth: 20 * Mbps, Loss: 0.02,
			RandDelay: dist.Uniform{Lo: 150 * time.Millisecond, Hi: 200 * time.Millisecond}},
	)
	return n
}

func coarseOpts() TimeoutOptions {
	return TimeoutOptions{GridStep: 25 * time.Millisecond, RefineLevels: 1, ConvolutionNodes: 200}
}

// TestTimeoutCacheHitsAcrossRateDrift is the acceptance test: drifting
// only λ and µ (and even loss/bandwidth/cost) between calls must hit the
// cache — the Eq. 34 search depends on delays and lifetime alone.
func TestTimeoutCacheHitsAcrossRateDrift(t *testing.T) {
	c := NewTimeoutCache()
	n := cacheTestNetwork()
	first, err := c.OptimalTimeouts(n, coarseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after first call: hits=%d misses=%d", hits, misses)
	}

	// λ/µ/loss/bandwidth/cost drift: same key.
	drifted := *n
	drifted.Paths = append([]Path(nil), n.Paths...)
	drifted.Rate *= 1.1
	drifted.CostBound = 1e6
	for i := range drifted.Paths {
		drifted.Paths[i].Bandwidth *= 0.9
		drifted.Paths[i].Loss += 0.05
		drifted.Paths[i].Cost += 1
	}
	second, err := c.OptimalTimeouts(&drifted, coarseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("λ/µ drift did not return the cached table")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("after drifted call: hits=%d misses=%d", hits, misses)
	}

	// Matching direct computation.
	direct, err := OptimalTimeouts(n, coarseOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.T {
		for j := range direct.T[i] {
			if direct.T[i][j] != first.T[i][j] {
				t.Fatalf("cached t[%d][%d]=%v, direct %v", i, j, first.T[i][j], direct.T[i][j])
			}
		}
	}
}

// TestTimeoutCacheMissesOnDelayChange verifies a delay-estimate change
// recomputes: new key, new table.
func TestTimeoutCacheMissesOnDelayChange(t *testing.T) {
	c := NewTimeoutCache()
	n := cacheTestNetwork()
	first, err := c.OptimalTimeouts(n, coarseOpts())
	if err != nil {
		t.Fatal(err)
	}
	moved := *n
	moved.Paths = append([]Path(nil), n.Paths...)
	moved.Paths[0].RandDelay = dist.ShiftedGamma{Loc: 150 * time.Millisecond, Shape: 4, Scale: 5 * time.Millisecond}
	second, err := c.OptimalTimeouts(&moved, coarseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("delay change returned the stale cached table")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", hits, misses)
	}
	// Lifetime and search options are part of the key too.
	shorter := *n
	shorter.Lifetime = 400 * time.Millisecond
	if _, err := c.OptimalTimeouts(&shorter, coarseOpts()); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d tables, want 3", c.Len())
	}
}

// unkeyableDelay is a Delay implementation the cache cannot identify.
type unkeyableDelay struct{ dist.Deterministic }

// TestTimeoutCacheBypassesUnknownDistributions: unknown delay models
// must compute every time (counted as misses), never alias distinct
// instances onto one key.
func TestTimeoutCacheBypassesUnknownDistributions(t *testing.T) {
	c := NewTimeoutCache()
	n := NewNetwork(10*Mbps, 500*time.Millisecond,
		Path{Bandwidth: 20 * Mbps, Loss: 0.1,
			RandDelay: unkeyableDelay{dist.Deterministic{D: 100 * time.Millisecond}}},
	)
	for i := 0; i < 2; i++ {
		if _, err := c.OptimalTimeouts(n, coarseOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (bypass)", hits, misses)
	}
	if c.Len() != 0 {
		t.Fatal("unkeyable network was cached")
	}
}

// TestTimeoutCacheConcurrent hammers one cache from many goroutines
// mixing hit and miss keys (for the race detector).
func TestTimeoutCacheConcurrent(t *testing.T) {
	c := NewTimeoutCache()
	n := cacheTestNetwork()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			net := *n
			net.Rate *= 1 + float64(w)/10 // λ drift only: same key
			for i := 0; i < 3; i++ {
				if _, err := c.OptimalTimeouts(&net, coarseOpts()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 24 {
		t.Fatalf("hits=%d misses=%d, want 24 lookups", hits, misses)
	}
	if hits == 0 {
		t.Fatal("no concurrent lookup ever hit")
	}
}

package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// forceCG returns a Solver that dispatches every solve to column
// generation regardless of size.
func forceCG() *Solver {
	s := NewSolver()
	s.DenseThreshold = -1
	return s
}

// forceDense returns a Solver that never prunes and never dispatches to
// CG below the dense hard limit — the pre-PR dense behavior.
func forceDense() *Solver {
	s := NewSolver()
	s.DenseThreshold = DenseLimit
	s.PruneThreshold = -1
	return s
}

// TestCGMatchesDense: column generation must reach the same optimum as
// dense enumeration on every tractable size, including cost-bounded
// instances, m = 1, and lossless paths.
func TestCGMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc6, 0xd3))
	for trial := 0; trial < 150; trial++ {
		paths := 2 + rng.IntN(7)         // 2–8 paths
		transmissions := 1 + rng.IntN(3) // 1–3 transmissions
		n := diffRandomNetwork(rng, paths, transmissions)
		switch trial % 3 {
		case 1:
			n.CostBound = math.Inf(1) // no cost row
		case 2:
			n.Paths[0].Loss = 0 // zero-survival cutoff inside combos
		}

		dsol, err := forceDense().SolveQuality(n)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		csol, err := forceCG().SolveQuality(n)
		if err != nil {
			t.Fatalf("trial %d: cg: %v", trial, err)
		}
		if csol.Stats.Dispatch != DispatchCG {
			t.Fatalf("trial %d: dispatch %v, want cg", trial, csol.Stats.Dispatch)
		}
		if diff := math.Abs(dsol.Quality - csol.Quality); diff > 1e-7 {
			t.Errorf("trial %d (paths=%d m=%d): dense %v vs cg %v (diff %v)",
				trial, paths, transmissions, dsol.Quality, csol.Quality, diff)
		}
		// The CG split must be a distribution over its generated columns.
		var mass float64
		for _, x := range csol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: negative share %v", trial, x)
			}
			mass += x
		}
		if math.Abs(mass-1) > 1e-6 {
			t.Errorf("trial %d: split mass %v, want 1", trial, mass)
		}
	}
}

// TestCGLargeNetwork is the scaling acceptance check: a 40-path,
// 4-transmission network (a 2.8M-combination space, beyond what dense
// enumeration can reasonably materialize) must solve through the
// automatic CG dispatch — and fast. The wall-clock bound is generous to
// absorb -race and loaded CI; the benchmark suite tracks the real time
// (~25ms on a dev machine).
func TestCGLargeNetwork(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 404))
	n := diffRandomNetwork(rng, 40, 4)
	start := time.Now()
	sol, err := NewSolver().SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if sol.Stats.Dispatch != DispatchCG {
		t.Errorf("dispatch = %v, want cg", sol.Stats.Dispatch)
	}
	if sol.Quality <= 0 || sol.Quality > 1 {
		t.Errorf("quality = %v outside (0,1]", sol.Quality)
	}
	if elapsed > 5*time.Second {
		t.Errorf("40-path 4-transmission solve took %v, want well under a second unloaded", elapsed)
	}
	t.Logf("40x4: quality=%.6f iterations=%d columns=%d in %v",
		sol.Quality, sol.Stats.CGIterations, sol.Stats.Columns, elapsed)
}

// TestCGWorstCaseInTimeTree: when every path is fast enough that every
// combination is in time, the pricing tree has no lateness pruning —
// the bound alone must keep the oracle tractable (the 41^5 ≈ 115M
// space must still solve quickly).
func TestCGWorstCaseInTimeTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	ps := make([]Path, 40)
	var total float64
	for i := range ps {
		bw := (10 + rng.Float64()*90) * Mbps
		total += bw
		ps[i] = Path{
			Bandwidth: bw,
			Delay:     time.Duration(1+rng.IntN(5)) * time.Millisecond,
			Loss:      rng.Float64() * 0.3,
			Cost:      rng.Float64(),
		}
	}
	n := NewNetwork(0.9*total, time.Second, ps...)
	n.Transmissions = 5
	n.CostBound = total
	sol, err := SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Errorf("dispatch = %v, want cg", sol.Stats.Dispatch)
	}
	t.Logf("tiny-delay 40x5: quality=%.6f iterations=%d columns=%d",
		sol.Quality, sol.Stats.CGIterations, sol.Stats.Columns)
}

// TestCGSolutionAccessors: sparse solutions must answer Fraction,
// ActiveCombos, SentRate, Cost, and DropRate consistently with the
// dense solve.
func TestCGSolutionAccessors(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	n := diffRandomNetwork(rng, 4, 2)
	dsol, err := forceDense().SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	csol, err := forceCG().SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	var dCost, cCost = dsol.Cost(), csol.Cost()
	if math.Abs(dCost-cCost) > 1e-3*(1+math.Abs(dCost)) {
		t.Errorf("cost: dense %v vs cg %v", dCost, cCost)
	}
	// Every active dense combination must be queryable on the CG
	// solution (possibly at zero if the CG optimum uses different
	// columns of equal quality), and vice versa.
	for _, cs := range csol.ActiveCombos(1e-9) {
		if f := csol.Fraction(cs.Combo); f != cs.Fraction {
			t.Errorf("cg Fraction(%v) = %v, want %v", cs.Combo, f, cs.Fraction)
		}
	}
	if f := csol.Fraction(Combo{0, 0, 0}); f != 0 {
		t.Errorf("wrong-length combo fraction = %v, want 0", f)
	}
	var sent float64
	for i := range n.Paths {
		sent += csol.SentRate(i)
		if csol.SentRate(i) < -1e-9 {
			t.Errorf("negative sent rate on path %d", i)
		}
	}
	if csol.DropRate() < -1e-9 {
		t.Errorf("negative drop rate")
	}
}

// TestCGDeterministic: repeated CG solves of the same network must give
// identical results (the oracle and master are deterministic).
func TestCGDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	n := diffRandomNetwork(rng, 12, 3)
	a, err := forceCG().SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := forceCG().SolveQuality(n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Quality != b.Quality || len(a.X) != len(b.X) {
		t.Fatalf("CG not deterministic: %v/%d vs %v/%d", a.Quality, len(a.X), b.Quality, len(b.X))
	}
	for l := range a.X {
		if a.X[l] != b.X[l] {
			t.Fatalf("X[%d] differs: %v vs %v", l, a.X[l], b.X[l])
		}
	}
}

// TestDispatchThresholds: the automatic dispatch must pick the expected
// solve core per size.
func TestDispatchThresholds(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	cases := []struct {
		paths, m int
		want     Dispatch
	}{
		{4, 2, DispatchDense},   // 125 combos: below the prune threshold
		{10, 3, DispatchDense},  // 1331
		{15, 3, DispatchPruned}, // 4096: pruned dense
		{19, 3, DispatchPruned}, // 8000
		{10, 4, DispatchCG},     // 14641: above the dense threshold
		{40, 4, DispatchCG},     // 2.8M
	}
	for _, tc := range cases {
		n := diffRandomNetwork(rng, tc.paths, tc.m)
		sol, err := SolveQuality(n)
		if err != nil {
			t.Fatalf("paths=%d m=%d: %v", tc.paths, tc.m, err)
		}
		if sol.Stats.Dispatch != tc.want {
			t.Errorf("paths=%d m=%d: dispatch %v, want %v", tc.paths, tc.m, sol.Stats.Dispatch, tc.want)
		}
	}
}

package core

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// minCostTrajectory replays one drift trajectory through ResolveMinCost
// and checks every step against a cold SolveMinCost of the identical
// instance: costs and achieved qualities must agree to 1e-6, and every
// re-solve after the prime must report warm.
func minCostTrajectory(t *testing.T, rng *rand.Rand, warm *Solver, base *Network, floor float64, steps int, wantDispatch Dispatch) (skipped int) {
	t.Helper()
	cold := NewSolver()
	cold.DenseThreshold = warm.DenseThreshold
	cold.PruneThreshold = warm.PruneThreshold

	first, err := warm.ResolveMinCost(base, floor)
	if err != nil {
		t.Fatalf("prime resolve: %v", err)
	}
	if first.Stats.Warm {
		t.Fatal("first resolve reported warm")
	}
	if first.Stats.Dispatch != wantDispatch {
		t.Fatalf("prime dispatch %v, want %v", first.Stats.Dispatch, wantDispatch)
	}

	net := base
	for step := 0; step < steps; step++ {
		net = driftNetwork(rng, net, 0.08)
		wsol, werr := warm.ResolveMinCost(net, floor)
		csol, cerr := cold.SolveMinCost(net, floor)
		if cerr != nil {
			// The drift can push the floor infeasible; the warm path
			// must reach the same verdict.
			if !errors.Is(cerr, ErrInfeasible) {
				t.Fatalf("step %d: cold: %v", step, cerr)
			}
			if !errors.Is(werr, ErrInfeasible) {
				t.Fatalf("step %d: cold infeasible but warm returned %v", step, werr)
			}
			// The state re-primes next call; keep drifting.
			continue
		}
		if werr != nil {
			t.Fatalf("step %d: warm resolve: %v", step, werr)
		}
		if gap := abs64(wsol.Cost() - csol.Cost()); gap > 1e-6*(1+csol.Cost()) {
			t.Fatalf("step %d: warm cost %v vs cold %v (gap %v, dispatch %v)",
				step, wsol.Cost(), csol.Cost(), gap, wsol.Stats.Dispatch)
		}
		if wsol.Quality < floor-1e-6 {
			t.Fatalf("step %d: warm quality %v below floor %v", step, wsol.Quality, floor)
		}
		if wsol.Stats.PhaseISkipped {
			skipped++
		}
	}
	return skipped
}

// TestResolveMinCostDifferentialDense replays min-cost drift
// trajectories through the dense dispatch.
func TestResolveMinCostDifferentialDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x3c05, 1))
	skipped := 0
	for traj := 0; traj < 25; traj++ {
		warm := NewSolver()
		base := diffRandomNetwork(rng, 2+rng.IntN(3), 2)
		skipped += minCostTrajectory(t, rng, warm, base, 0.25, 6, DispatchDense)
	}
	if skipped == 0 {
		t.Fatal("no dense min-cost re-solve ever skipped Phase I; the warm basis path is dead")
	}
}

// TestResolveMinCostDifferentialCG forces column generation and replays
// min-cost drift trajectories through the persistent pool + warm basis
// + incremental append path.
func TestResolveMinCostDifferentialCG(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x3c05, 2))
	warmed := 0
	for traj := 0; traj < 20; traj++ {
		warm := NewSolver()
		warm.DenseThreshold = -1
		base := diffRandomNetwork(rng, 3+rng.IntN(3), 2+rng.IntN(2))
		cold := NewSolver()
		cold.DenseThreshold = -1

		if _, err := warm.ResolveMinCost(base, 0.25); err != nil {
			t.Fatalf("prime: %v", err)
		}
		net := base
		for step := 0; step < 6; step++ {
			net = driftNetwork(rng, net, 0.08)
			wsol, err := warm.ResolveMinCost(net, 0.25)
			if err != nil {
				t.Fatalf("traj %d step %d: %v", traj, step, err)
			}
			csol, err := cold.SolveMinCost(net, 0.25)
			if err != nil {
				t.Fatalf("traj %d step %d cold: %v", traj, step, err)
			}
			if gap := abs64(wsol.Cost() - csol.Cost()); gap > 1e-6*(1+csol.Cost()) {
				t.Fatalf("traj %d step %d: warm cost %v vs cold %v (gap %v)",
					traj, step, wsol.Cost(), csol.Cost(), gap)
			}
			if !wsol.Stats.Warm || wsol.Stats.Dispatch != DispatchCG {
				t.Fatalf("traj %d step %d: stats %+v", traj, step, wsol.Stats)
			}
			if wsol.Stats.PoolHits == 0 {
				t.Fatalf("traj %d step %d: warm CG min-cost reported no pool hits", traj, step)
			}
			warmed++
		}
	}
	if warmed == 0 {
		t.Fatal("no warm CG min-cost step ever ran")
	}
}

// TestResolveMinCostInfeasibleDrift: a floor that drifts infeasible must
// report ErrInfeasible from the warm path (cold-certified), then
// re-prime transparently when it becomes feasible again.
func TestResolveMinCostInfeasibleDrift(t *testing.T) {
	warm := NewSolver()
	n := costedNetwork() // qmax = 1 at base rate
	if _, err := warm.ResolveMinCost(n, 0.99); err != nil {
		t.Fatal(err)
	}
	over := *n
	over.Rate = 200 * Mbps // capacity 100 Mbps: quality 1 impossible, 0.99 too
	if _, err := warm.ResolveMinCost(&over, 0.99); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible after drift, got %v", err)
	}
	sol, err := warm.ResolveMinCost(n, 0.99)
	if err != nil {
		t.Fatalf("re-prime after infeasible: %v", err)
	}
	if sol.Quality < 0.99-1e-9 {
		t.Fatalf("re-primed quality %v", sol.Quality)
	}
}

// randomResolveTimeouts derives a deterministic-delay timeout table for
// the drifted network — timeouts re-derived each step, as an adaptive
// deployment would.
func randomResolveTimeouts(t *testing.T, n *Network) *Timeouts {
	t.Helper()
	to, err := DeterministicTimeouts(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return to
}

// TestResolveQualityRandomDifferential replays random-delay drift
// trajectories through dense and CG dispatch: warm re-solves must match
// cold SolveQualityRandom to 1e-6 while delays, losses, and the timeout
// table drift together.
func TestResolveQualityRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x3c05, 3))
	for _, forceCG := range []bool{false, true} {
		warmed, skipped := 0, 0
		for traj := 0; traj < 15; traj++ {
			warm := NewSolver()
			cold := NewSolver()
			if forceCG {
				warm.DenseThreshold = -1
				cold.DenseThreshold = -1
			}
			base := diffRandomNetwork(rng, 2+rng.IntN(3), 2)
			if _, err := warm.ResolveQualityRandom(base, randomResolveTimeouts(t, base)); err != nil {
				t.Fatalf("prime: %v", err)
			}
			net := base
			for step := 0; step < 6; step++ {
				net = driftNetwork(rng, net, 0.08)
				to := randomResolveTimeouts(t, net)
				wsol, err := warm.ResolveQualityRandom(net, to)
				if err != nil {
					t.Fatalf("cg=%v traj %d step %d: %v", forceCG, traj, step, err)
				}
				csol, err := cold.SolveQualityRandom(net, to)
				if err != nil {
					t.Fatalf("cg=%v traj %d step %d cold: %v", forceCG, traj, step, err)
				}
				if gap := abs64(wsol.Quality - csol.Quality); gap > 1e-6 {
					t.Fatalf("cg=%v traj %d step %d: warm %.12f vs cold %.12f (gap %.3e)",
						forceCG, traj, step, wsol.Quality, csol.Quality, gap)
				}
				if !wsol.Stats.Warm {
					t.Fatalf("cg=%v traj %d step %d: not warm: %+v", forceCG, traj, step, wsol.Stats)
				}
				if forceCG && wsol.Stats.Dispatch != DispatchCG {
					t.Fatalf("traj %d: dispatch %v", traj, wsol.Stats.Dispatch)
				}
				warmed++
				if wsol.Stats.PhaseISkipped {
					skipped++
				}
			}
		}
		if warmed == 0 {
			t.Fatalf("cg=%v: no warm random re-solve ever ran", forceCG)
		}
		if skipped == 0 {
			t.Fatalf("cg=%v: no random re-solve ever warm-started its first master", forceCG)
		}
	}
}

// TestResolveObjectiveSwitchGoesCold: switching objectives on one
// Solver must never reuse the other objective's columns or basis.
func TestResolveObjectiveSwitchGoesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x3c05, 4))
	warm := NewSolver()
	n := diffRandomNetwork(rng, 3, 2)
	if _, err := warm.Resolve(n); err != nil {
		t.Fatal(err)
	}
	sol, err := warm.ResolveMinCost(n, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("objective switch (quality→min-cost) reused warm state")
	}
	rsol, err := warm.ResolveQualityRandom(n, randomResolveTimeouts(t, n))
	if err != nil {
		t.Fatal(err)
	}
	if rsol.Stats.Warm {
		t.Fatal("objective switch (min-cost→random) reused warm state")
	}
	// Same objective again: warm.
	d := driftNetwork(rng, n, 0.05)
	rsol2, err := warm.ResolveQualityRandom(d, randomResolveTimeouts(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if !rsol2.Stats.Warm {
		t.Fatal("same-objective re-solve did not reuse warm state")
	}
	ref, err := SolveQualityRandom(d, randomResolveTimeouts(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if gap := abs64(rsol2.Quality - ref.Quality); gap > 1e-6 {
		t.Fatalf("warm %.12f vs cold %.12f after objective churn", rsol2.Quality, ref.Quality)
	}
}

// TestResolveMinCostFloorDrift: the quality floor itself may drift
// between warm re-solves (it is an RHS, not network shape); results
// must keep matching cold solves.
func TestResolveMinCostFloorDrift(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x3c05, 5))
	warm := NewSolver()
	cold := NewSolver()
	base := diffRandomNetwork(rng, 3, 2)
	if _, err := warm.ResolveMinCost(base, 0.2); err != nil {
		t.Fatal(err)
	}
	floors := []float64{0.25, 0.4, 0.1, 0.55, 0.3}
	net := base
	for step, floor := range floors {
		net = driftNetwork(rng, net, 0.05)
		wsol, err := warm.ResolveMinCost(net, floor)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !wsol.Stats.Warm {
			t.Fatalf("step %d: floor drift lost the warm state", step)
		}
		csol, err := cold.SolveMinCost(net, floor)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if gap := abs64(wsol.Cost() - csol.Cost()); gap > 1e-6*(1+csol.Cost()) {
			t.Fatalf("step %d: warm cost %v vs cold %v", step, wsol.Cost(), csol.Cost())
		}
	}
}

// TestResolveMinCostCGScale runs one realistic CG-scale min-cost
// trajectory (40 paths × 4 transmissions, 2.8M combinations): warm
// re-solves must agree with cold and reuse the pool.
func TestResolveMinCostCGScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CG-scale trajectory is slow under -short")
	}
	rng := rand.New(rand.NewPCG(0x3c05, 6))
	base := diffRandomNetwork(rng, 40, 4)
	warm, cold := NewSolver(), NewSolver()
	if _, err := warm.ResolveMinCost(base, 0.3); err != nil {
		t.Fatal(err)
	}
	net := base
	for step := 0; step < 3; step++ {
		net = driftNetwork(rng, net, 0.05)
		wsol, err := warm.ResolveMinCost(net, 0.3)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		csol, err := cold.SolveMinCost(net, 0.3)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if gap := abs64(wsol.Cost() - csol.Cost()); gap > 1e-6*(1+csol.Cost()) {
			t.Fatalf("step %d: warm %v vs cold %v", step, wsol.Cost(), csol.Cost())
		}
		if wsol.Stats.PoolHits == 0 {
			t.Fatalf("step %d: pool never hit", step)
		}
	}
}

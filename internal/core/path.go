// Package core implements the paper's primary contribution: the linear
// optimization model for deadline-aware multipath communication.
//
// A Network describes end-to-end paths (Table I), an application data rate
// λ, a data lifetime δ, and a cost budget µ. SolveQuality builds the linear
// program of §V (objective Eq. 12, bandwidth constraints Eqs. 14–15, cost
// constraint Eq. 16, conservation Eq. 18, blackhole path Eq. 19) —
// generalized from 2 transmissions to any m ≥ 1 — and maximizes the
// communication quality Q = G/λ. SolveMinCost solves the §VI-A dual
// objective (minimum cost subject to a quality floor); SolveQualityRandom
// implements the §VI-B random-delay extension with retransmission timeouts
// optimized per Eq. 26/34.
//
// Path-combination indexing follows the paper: index 0 is the virtual
// blackhole path, user path k is index k+1, and a combination l unpacks to
// per-transmission path digits little-endian (Eq. 13).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dmc/internal/dist"
)

// Mbps is a convenience unit: 1 Mbps in bits per second.
const Mbps = 1e6

// Kbps is a convenience unit: 1 kbps in bits per second.
const Kbps = 1e3

// Gbps is a convenience unit: 1 Gbps in bits per second.
const Gbps = 1e9

// MaxTransmissions caps the per-packet transmission count m. The variable
// count grows as (n+1)^m; the paper (§V, §VIII-B) envisions m ≤ 3 in
// practice.
const MaxTransmissions = 6

// Path is one end-to-end network path with the Table I characteristics.
type Path struct {
	// Name optionally labels the path in reports.
	Name string
	// Bandwidth is bᵢ in bits per second.
	Bandwidth float64
	// Delay is the deterministic one-way delay dᵢ.
	Delay time.Duration
	// Loss is the bit/packet erasure probability τᵢ in [0, 1].
	Loss float64
	// Cost is cᵢ, the cost of sending one bit along the path.
	Cost float64
	// RandDelay, when non-nil, replaces Delay with a distribution Dᵢ for
	// the §VI-B random-delay model (used by SolveQualityRandom and
	// OptimalTimeouts; the deterministic solvers ignore it).
	RandDelay dist.Delay
}

func (p Path) validate(idx int) error {
	if !(p.Bandwidth > 0) {
		return fmt.Errorf("core: path %d (%s): bandwidth %v must be positive", idx, p.Name, p.Bandwidth)
	}
	if p.Loss < 0 || p.Loss > 1 || math.IsNaN(p.Loss) {
		return fmt.Errorf("core: path %d (%s): loss %v outside [0,1]", idx, p.Name, p.Loss)
	}
	if p.Delay < 0 {
		return fmt.Errorf("core: path %d (%s): negative delay %v", idx, p.Name, p.Delay)
	}
	if p.Cost < 0 || math.IsNaN(p.Cost) || math.IsInf(p.Cost, 0) {
		return fmt.Errorf("core: path %d (%s): invalid cost %v", idx, p.Name, p.Cost)
	}
	return nil
}

// delayDist returns the path's delay distribution: RandDelay if set,
// otherwise the deterministic point mass at Delay.
func (p Path) delayDist() dist.Delay {
	if p.RandDelay != nil {
		return p.RandDelay
	}
	return dist.Deterministic{D: p.Delay}
}

// meanDelay returns E[dᵢ] under the effective delay model.
func (p Path) meanDelay() time.Duration {
	if p.RandDelay != nil {
		return p.RandDelay.Mean()
	}
	return p.Delay
}

// Network is a deadline-aware multipath scenario: the paths plus the
// application parameters of Table I.
type Network struct {
	// Paths are the real (non-blackhole) paths, at least one.
	Paths []Path
	// Rate is the application data rate λ in bits per second.
	Rate float64
	// Lifetime is the data lifetime δ: data not delivered within Lifetime
	// of generation is useless.
	Lifetime time.Duration
	// CostBound is µ, the maximum total cost per second. Use
	// math.Inf(1) (or call WithUnlimitedCost) when cost is not limited.
	CostBound float64
	// Transmissions is m, the total number of transmission attempts per
	// data unit (1 = never retransmit; the paper's base model is 2).
	// Zero defaults to 2.
	Transmissions int
}

// NewNetwork returns a Network with rate λ (bits/s), lifetime δ, the given
// paths, an unlimited cost budget, and the paper's default of 2
// transmissions.
func NewNetwork(rate float64, lifetime time.Duration, paths ...Path) *Network {
	return &Network{
		Paths:         paths,
		Rate:          rate,
		Lifetime:      lifetime,
		CostBound:     math.Inf(1),
		Transmissions: 2,
	}
}

// Validate checks the network parameters.
func (n *Network) Validate() error {
	if len(n.Paths) == 0 {
		return errors.New("core: network has no paths")
	}
	if !(n.Rate > 0) || math.IsInf(n.Rate, 0) {
		return fmt.Errorf("core: rate %v must be positive and finite", n.Rate)
	}
	if n.Lifetime <= 0 {
		return fmt.Errorf("core: lifetime %v must be positive", n.Lifetime)
	}
	if math.IsNaN(n.CostBound) || n.CostBound < 0 {
		return fmt.Errorf("core: cost bound %v must be ≥ 0 (use +Inf for unlimited)", n.CostBound)
	}
	m := n.transmissions()
	if m < 1 || m > MaxTransmissions {
		return fmt.Errorf("core: transmissions %d outside [1, %d]", m, MaxTransmissions)
	}
	for i, p := range n.Paths {
		if err := p.validate(i); err != nil {
			return err
		}
	}
	return nil
}

func (n *Network) transmissions() int {
	if n.Transmissions == 0 {
		return 2
	}
	return n.Transmissions
}

// MinDelay returns d_min (Eq. 1): the smallest mean one-way delay across
// real paths — under random delays this is the expectation, matching
// Eq. 25's choice of acknowledgment path.
func (n *Network) MinDelay() time.Duration {
	min := n.Paths[0].meanDelay()
	for _, p := range n.Paths[1:] {
		if d := p.meanDelay(); d < min {
			min = d
		}
	}
	return min
}

// AckPathIndex returns the index (into Paths) of the acknowledgment path:
// the one with the smallest mean delay (Eq. 25). Ties break to the lower
// index.
func (n *Network) AckPathIndex() int {
	best := 0
	bestD := n.Paths[0].meanDelay()
	for i, p := range n.Paths[1:] {
		if d := p.meanDelay(); d < bestD {
			bestD = d
			best = i + 1
		}
	}
	return best
}

// SinglePath returns a copy of the network restricted to path i only —
// the single-path baselines of Figure 2.
func (n *Network) SinglePath(i int) *Network {
	cp := *n
	cp.Paths = []Path{n.Paths[i]}
	return &cp
}

// Combo is a path combination: Combo[k] is the model path index used for
// the (k+1)-th transmission attempt. Index 0 is the blackhole; index k ≥ 1
// is Network.Paths[k-1].
type Combo []int

// String renders the combination in the paper's x notation, e.g. "x1,2".
func (c Combo) String() string {
	s := "x"
	for k, i := range c {
		if k > 0 {
			s += ","
		}
		s += fmt.Sprint(i)
	}
	return s
}

// Equal reports whether two combinations are identical.
func (c Combo) Equal(other Combo) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i] != other[i] {
			return false
		}
	}
	return true
}

// model is the normalized optimization instance: user paths prefixed by
// the virtual blackhole (Eq. 19) at index 0, with the combination space
// enumerated (dense) or addressed on demand (sparse, column generation).
type model struct {
	net   *Network
	paths []Path // paths[0] is the blackhole
	m     int    // transmissions
	base  int    // len(paths)
	dmin  time.Duration
	nVars int // base^m for dense models; 0 when sparse (column generation)
}

// blackholePath is the Eq. 19 virtual path. Its bandwidth is unlimited:
// the paper states b₀ = λ, but its own Table IV solutions (x₀,₀ = 7/9)
// would violate that bound under Eq. 2 — see DESIGN.md erratum #1.
func blackholePath() Path {
	return Path{
		Name:      "blackhole",
		Bandwidth: math.Inf(1),
		Delay:     time.Duration(math.MaxInt64),
		Loss:      1,
		Cost:      0,
	}
}

// DenseLimit is the hard cap on materialized LP columns: dense-only
// entry points (BuildLP and QualityUpperBound) refuse instances whose
// combination count (n+1)^m exceeds it. Every solve entry point —
// SolveQuality, SolveMinCost, SolveQualityRandom — dispatches to column
// generation above its dense threshold instead of failing, so the cap
// is unreachable from them; see SolveQualityCG, SolveMinCostCG, and
// SolveQualityRandomCG.
const DenseLimit = 1 << 22

// combinationCount returns base^m when it is at most limit. The product
// is checked term by term — it bails out as soon as it would exceed
// limit — so extreme inputs (e.g. thousands of paths at m = 6, where
// base^m overflows int64) report ok = false instead of wrapping around
// the guard.
func combinationCount(base, m, limit int) (count int, ok bool) {
	if base <= 0 || limit <= 0 {
		return 0, false
	}
	count = 1
	for i := 0; i < m; i++ {
		if count > limit/base {
			return 0, false
		}
		count *= base
	}
	return count, true
}

func newModel(n *Network) (*model, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	nVars, ok := combinationCount(m.base, m.m, DenseLimit)
	if !ok {
		return nil, fmt.Errorf("core: %d paths with %d transmissions yields more than %d path combinations, beyond dense enumeration; the solve entry points (SolveQuality, SolveMinCost, SolveQualityRandom) handle such instances by column generation",
			len(n.Paths), m.m, DenseLimit)
	}
	m.nVars = nVars
	return m, nil
}

// newSparseModel builds a model without materializing (or bounding) the
// combination space: combinations are addressed by packed keys instead
// of dense indices. Used by the column-generation solve path.
func newSparseModel(n *Network) (*model, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	m := &model{
		net:   n,
		paths: append([]Path{blackholePath()}, n.Paths...),
		m:     n.transmissions(),
		dmin:  n.MinDelay(),
	}
	m.base = len(m.paths)
	// Packed combination keys must be unique within a uint64; with
	// m ≤ MaxTransmissions = 6 this allows ~1600 paths per model — far
	// beyond any realistic multipath scenario.
	if !keysFit(m.base, m.m) {
		return nil, fmt.Errorf("core: %d paths with %d transmissions exceeds the addressable combination space", len(n.Paths), m.m)
	}
	return m, nil
}

// keysFit reports whether base^m fits in a uint64, i.e. whether packed
// combination keys are collision-free for this model shape.
func keysFit(base, m int) bool {
	key := uint64(1)
	for i := 0; i < m; i++ {
		if key > math.MaxUint64/uint64(base) {
			return false
		}
		key *= uint64(base)
	}
	return true
}

// packKey packs a combination into its unique uint64 key (the Eq. 13
// index computed in uint64, valid whenever keysFit holds).
func (m *model) packKey(c []int) uint64 {
	var key uint64
	for k := len(c) - 1; k >= 0; k-- {
		key = key*uint64(m.base) + uint64(c[k])
	}
	return key
}

// combo unpacks variable index l into its per-transmission path digits
// (little-endian, Eq. 13 generalized).
func (m *model) combo(l int) Combo {
	c := make(Combo, m.m)
	for k := 0; k < m.m; k++ {
		c[k] = l % m.base
		l /= m.base
	}
	return c
}

// index packs a combination back into its variable index.
func (m *model) index(c Combo) int {
	l := 0
	for k := m.m - 1; k >= 0; k-- {
		l = l*m.base + c[k]
	}
	return l
}

// isBlackhole reports whether model path index i is the virtual path.
func (m *model) isBlackhole(i int) bool { return i == 0 }

// attemptSchedule returns, for combination c, each attempt's send time
// (Eq. 4 generalized: attempt k goes out after the retransmission timeouts
// t = dᵢ + d_min of all earlier attempts) and whether it meets the
// deadline. An earlier blackhole attempt never times out, so everything
// after it is unreachable.
func (m *model) attemptSchedule(c Combo) (sendAt []time.Duration, inTime []bool) {
	sendAt = make([]time.Duration, len(c))
	inTime = make([]bool, len(c))
	var t time.Duration
	reachable := true
	for k, i := range c {
		sendAt[k] = t
		p := m.paths[i]
		if reachable && !m.isBlackhole(i) {
			arrival := t + p.Delay
			inTime[k] = arrival >= 0 && arrival <= m.net.Lifetime // guard overflow
		}
		if m.isBlackhole(i) {
			reachable = false
			t = time.Duration(math.MaxInt64)
		} else if reachable {
			next := t + p.Delay + m.dmin
			if next < t { // overflow
				next = time.Duration(math.MaxInt64)
			}
			t = next
		}
	}
	return sendAt, inTime
}

// deliveryProb returns p_l (Eq. 12 generalized): the probability that
// combination c delivers its data before the deadline, Σ_k [attempt k in
// time]·(1−τ_k)·Π_{r<k} τ_r.
func (m *model) deliveryProb(c Combo) float64 {
	_, inTime := m.attemptSchedule(c)
	var p, surv float64
	surv = 1
	for k, i := range c {
		path := m.paths[i]
		if inTime[k] {
			p += surv * (1 - path.Loss)
		}
		surv *= path.Loss
		if surv == 0 {
			break
		}
	}
	return p
}

// The send-share (Eq. 15) and cost (Eq. 16) column coefficients are
// computed alongside delivery probability in the fused single pass of
// computeColumns (columns.go); deliveryProb/attemptSchedule above remain
// for QualityUpperBound and per-combination inspection.

package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"dmc/internal/dist"
)

// TestCombinationCountOverflow is the regression test for the unchecked
// nVars product: path counts whose (n+1)^m overflows int64 (e.g. 3000
// paths at m = 6, ~7e20) used to wrap around the dense-size guard and
// produce garbage downstream. The checked product must bail out during
// multiplication and the dense entry points must return the descriptive
// error.
func TestCombinationCountOverflow(t *testing.T) {
	cases := []struct {
		base, m, limit int
		want           int
		ok             bool
	}{
		{3, 2, 100, 9, true},
		{11, 3, DenseLimit, 1331, true},
		{2, 22, 1 << 22, 1 << 22, true}, // exactly at the limit
		{2, 23, 1 << 22, 0, false},      // one step past
		{3001, 6, DenseLimit, 0, false}, // would overflow int64 unchecked
		{1 << 31, 6, DenseLimit, 0, false},
		{0, 2, 100, 0, false},
	}
	for _, tc := range cases {
		got, ok := combinationCount(tc.base, tc.m, tc.limit)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("combinationCount(%d, %d, %d) = %d, %v; want %d, %v",
				tc.base, tc.m, tc.limit, got, ok, tc.want, tc.ok)
		}
	}

	// End to end: a 3000-path, 6-transmission network must produce the
	// descriptive size error from every dense entry point — not a wrapped
	// count slipping past the guard.
	paths := make([]Path, 3000)
	for i := range paths {
		paths[i] = Path{Bandwidth: Mbps, Delay: 100 * time.Millisecond}
	}
	n := NewNetwork(Mbps, time.Second, paths...)
	n.Transmissions = 6
	for name, call := range map[string]func() error{
		"BuildLP":           func() error { _, err := BuildLP(n); return err },
		"SolveMinCost":      func() error { _, err := SolveMinCost(n, 0.5); return err },
		"QualityUpperBound": func() error { _, err := QualityUpperBound(n); return err },
	} {
		err := call()
		if err == nil {
			t.Errorf("%s: expected combination-space error", name)
			continue
		}
		if !strings.Contains(err.Error(), "combination") {
			t.Errorf("%s: error %q does not describe the combination blowup", name, err)
		}
	}
}

// TestShortLifetimeTimeouts is the regression test for the coarse-grid
// scan starting at lo + step: a network whose Lifetime is below the
// default 5 ms GridStep used to evaluate zero grid points and report
// every t_{i,j} undefined even though feasible timeouts exist.
func TestShortLifetimeTimeouts(t *testing.T) {
	n := NewNetwork(Mbps, 3*time.Millisecond,
		Path{Bandwidth: 10 * Mbps, RandDelay: dist.Uniform{Lo: 100 * time.Microsecond, Hi: 300 * time.Microsecond}, Loss: 0.1},
		Path{Bandwidth: 10 * Mbps, RandDelay: dist.Uniform{Lo: 200 * time.Microsecond, Hi: 500 * time.Microsecond}, Loss: 0.1},
	)
	to, err := OptimalTimeouts(n, TimeoutOptions{}) // default 5 ms grid > 3 ms lifetime
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Paths {
		for j := range n.Paths {
			d, ok := to.Get(i, j)
			if !ok {
				t.Errorf("t[%d,%d] undefined; want a feasible timeout below the 3 ms lifetime", i, j)
				continue
			}
			if d <= 0 || d > n.Lifetime {
				t.Errorf("t[%d,%d] = %v outside (0, %v]", i, j, d, n.Lifetime)
			}
		}
	}
}

// TestGridMaximizerShortInterval covers maximizeOverGrid directly: the
// step must clamp to the interval and the upper endpoint must be probed.
func TestGridMaximizerShortInterval(t *testing.T) {
	// Objective peaked at the top of a 2 ms interval, probed with a 5 ms
	// step: pre-fix this evaluated nothing and reported no maximum.
	f := func(d time.Duration) float64 { return float64(d) }
	best, ok := maximizeOverGrid(f, 0, 2*time.Millisecond, 5*time.Millisecond, 2)
	if !ok {
		t.Fatal("no maximum found on a short interval")
	}
	if best != 2*time.Millisecond {
		t.Errorf("best = %v, want the interval endpoint 2ms", best)
	}
	// A step that does not divide the width must still probe hi.
	best, ok = maximizeOverGrid(f, 0, 10*time.Millisecond, 3*time.Millisecond, 0)
	if !ok || best != 10*time.Millisecond {
		t.Errorf("best = %v, %v; want hi probed at 10ms", best, ok)
	}
	// Degenerate interval still refuses.
	if _, ok := maximizeOverGrid(f, time.Millisecond, time.Millisecond, time.Millisecond, 1); ok {
		t.Error("empty interval should report no maximum")
	}
}

// TestValidationUniformAcrossEntryPoints audits Network.Validate: every
// public solve entry must reject non-positive lifetime, NaN fields, and
// malformed paths with an error, not solve garbage or panic.
func TestValidationUniformAcrossEntryPoints(t *testing.T) {
	valid := func() *Network {
		return NewNetwork(10*Mbps, time.Second,
			Path{Bandwidth: 10 * Mbps, Delay: 100 * time.Millisecond, Loss: 0.1},
			Path{Bandwidth: 5 * Mbps, Delay: 200 * time.Millisecond, Loss: 0.05},
		)
	}
	breakages := []struct {
		name   string
		mutate func(*Network)
	}{
		{"no paths", func(n *Network) { n.Paths = nil }},
		{"zero rate", func(n *Network) { n.Rate = 0 }},
		{"negative rate", func(n *Network) { n.Rate = -1 }},
		{"NaN rate", func(n *Network) { n.Rate = math.NaN() }},
		{"infinite rate", func(n *Network) { n.Rate = math.Inf(1) }},
		{"zero lifetime", func(n *Network) { n.Lifetime = 0 }},
		{"negative lifetime", func(n *Network) { n.Lifetime = -time.Second }},
		{"NaN cost bound", func(n *Network) { n.CostBound = math.NaN() }},
		{"negative cost bound", func(n *Network) { n.CostBound = -1 }},
		{"negative transmissions", func(n *Network) { n.Transmissions = -1 }},
		{"transmissions beyond cap", func(n *Network) { n.Transmissions = MaxTransmissions + 1 }},
		{"zero bandwidth", func(n *Network) { n.Paths[0].Bandwidth = 0 }},
		{"NaN bandwidth", func(n *Network) { n.Paths[0].Bandwidth = math.NaN() }},
		{"NaN loss", func(n *Network) { n.Paths[1].Loss = math.NaN() }},
		{"loss above one", func(n *Network) { n.Paths[1].Loss = 1.5 }},
		{"negative loss", func(n *Network) { n.Paths[1].Loss = -0.1 }},
		{"negative delay", func(n *Network) { n.Paths[0].Delay = -time.Millisecond }},
		{"NaN cost", func(n *Network) { n.Paths[0].Cost = math.NaN() }},
		{"infinite cost", func(n *Network) { n.Paths[0].Cost = math.Inf(1) }},
		{"negative cost", func(n *Network) { n.Paths[0].Cost = -1 }},
	}
	entries := map[string]func(*Network) error{
		"SolveQuality":    func(n *Network) error { _, err := SolveQuality(n); return err },
		"SolveQualityCG":  func(n *Network) error { _, err := SolveQualityCG(n); return err },
		"SolveMinCost":    func(n *Network) error { _, err := SolveMinCost(n, 0.5); return err },
		"BuildLP":         func(n *Network) error { _, err := BuildLP(n); return err },
		"QualityUpperBnd": func(n *Network) error { _, err := QualityUpperBound(n); return err },
		"OptimalTimeouts": func(n *Network) error {
			_, err := OptimalTimeouts(n, TimeoutOptions{GridStep: 100 * time.Millisecond, ConvolutionNodes: 32})
			return err
		},
		"DetTimeouts": func(n *Network) error { _, err := DeterministicTimeouts(n, 0); return err },
		"SolveMany":   func(n *Network) error { _, err := SolveMany([]*Network{n}); return err },
		"SolveQualityRandom": func(n *Network) error {
			to := NewTimeouts(len(n.Paths))
			_, err := SolveQualityRandom(n, to)
			return err
		},
	}
	for _, bk := range breakages {
		for entry, call := range entries {
			n := valid()
			bk.mutate(n)
			if err := call(n); err == nil {
				t.Errorf("%s accepted network with %s", entry, bk.name)
			}
		}
	}
	// Sanity: the unmutated network passes everywhere.
	for entry, call := range entries {
		if err := call(valid()); err != nil {
			t.Errorf("%s rejected a valid network: %v", entry, err)
		}
	}
}

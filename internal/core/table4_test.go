package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"dmc/internal/ratlp"
)

// exactTableIII builds the Table III network with exact rational
// characteristics and the §VII conservative model delays (450/150 ms),
// which is what the paper feeds CGAL for Table IV.
func exactTableIII(rateMbps int64, lifetime time.Duration) *ExactNetwork {
	return &ExactNetwork{
		Rate:     ratlp.Int(rateMbps * 1_000_000),
		Lifetime: lifetime,
		Paths: []ExactPath{
			{Name: "path1", Bandwidth: ratlp.Int(80_000_000), Delay: 450 * time.Millisecond, Loss: ratlp.Rat(1, 5)},
			{Name: "path2", Bandwidth: ratlp.Int(20_000_000), Delay: 150 * time.Millisecond, Loss: ratlp.Int(0)},
		},
	}
}

// comboFrac is one x_{i,j} = fraction entry of a published Table IV row.
type comboFrac struct {
	combo Combo
	frac  *big.Rat
}

// assertExactRow solves the scenario exactly and checks (a) the exact
// optimal quality matches the paper, and (b) the paper's published
// solution vector is feasible with that same objective value (the LP can
// have alternate optima, so the solver's own vertex may differ).
func assertExactRow(t *testing.T, n *ExactNetwork, wantQ *big.Rat, published []comboFrac) {
	t.Helper()
	sol, err := SolveQualityExact(n)
	if err != nil {
		t.Fatalf("SolveQualityExact: %v", err)
	}
	if sol.Quality.Cmp(wantQ) != 0 {
		t.Fatalf("quality = %s, want %s", sol.Quality.RatString(), wantQ.RatString())
	}

	// Check the published solution achieves the same exact objective and
	// respects every constraint.
	em := sol.em
	x := make([]*big.Rat, em.nVars)
	for l := range x {
		x[l] = new(big.Rat)
	}
	total := new(big.Rat)
	for _, cf := range published {
		x[em.index(cf.combo)] = cf.frac
		total.Add(total, cf.frac)
	}
	if total.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("published fractions sum to %s, want 1", total.RatString())
	}
	// Objective of the published vector.
	q := new(big.Rat)
	for l, xv := range x {
		if xv.Sign() == 0 {
			continue
		}
		q.Add(q, new(big.Rat).Mul(em.deliveryProb(em.combo(l)), xv))
	}
	if q.Cmp(wantQ) != 0 {
		t.Errorf("published solution achieves %s, want %s", q.RatString(), wantQ.RatString())
	}
	// Bandwidth feasibility of the published vector.
	for i := 1; i < em.base; i++ {
		if em.bw[i] == nil {
			continue
		}
		used := new(big.Rat)
		for l, xv := range x {
			if xv.Sign() == 0 {
				continue
			}
			share := em.sendShare(em.combo(l))[i]
			used.Add(used, new(big.Rat).Mul(xv, share))
		}
		used.Mul(used, em.net.Rate)
		if used.Cmp(em.bw[i]) > 0 {
			t.Errorf("published solution uses %s b/s on path %d, cap %s", used.RatString(), i, em.bw[i].RatString())
		}
	}
}

// TestTable4RateSweep reproduces the top half of Table IV exactly:
// δ = 800 ms, λ from 10 to 140 Mbps.
func TestTable4RateSweep(t *testing.T) {
	const δ = 800 * time.Millisecond
	one := big.NewRat(1, 1)
	rows := []struct {
		rateMbps  int64
		quality   *big.Rat
		published []comboFrac
	}{
		{10, one, []comboFrac{{Combo{2, 2}, one}}},
		{20, one, []comboFrac{{Combo{2, 2}, one}}},
		{40, one, []comboFrac{{Combo{1, 2}, ratlp.Rat(5, 8)}, {Combo{2, 2}, ratlp.Rat(3, 8)}}},
		{60, one, []comboFrac{{Combo{1, 2}, ratlp.Rat(5, 6)}, {Combo{2, 2}, ratlp.Rat(1, 6)}}},
		{80, one, []comboFrac{{Combo{1, 2}, ratlp.Rat(15, 16)}, {Combo{2, 2}, ratlp.Rat(1, 16)}}},
		{100, ratlp.Rat(21, 25), []comboFrac{{Combo{0, 0}, ratlp.Rat(4, 25)}, {Combo{1, 2}, ratlp.Rat(4, 5)}, {Combo{2, 2}, ratlp.Rat(1, 25)}}},
		{120, ratlp.Rat(7, 10), []comboFrac{{Combo{0, 0}, ratlp.Rat(3, 10)}, {Combo{1, 2}, ratlp.Rat(2, 3)}, {Combo{2, 2}, ratlp.Rat(1, 30)}}},
		{140, ratlp.Rat(3, 5), []comboFrac{{Combo{0, 0}, ratlp.Rat(2, 5)}, {Combo{1, 2}, ratlp.Rat(4, 7)}, {Combo{2, 2}, ratlp.Rat(1, 35)}}},
	}
	for _, row := range rows {
		n := exactTableIII(row.rateMbps, δ)
		assertExactRow(t, n, row.quality, row.published)
	}
}

// TestTable4LifetimeSweep reproduces the bottom half of Table IV exactly:
// λ = 90 Mbps, δ from 150 ms to 1050+ ms, including the published range
// boundaries.
func TestTable4LifetimeSweep(t *testing.T) {
	rows := []struct {
		lifetimes []time.Duration
		quality   *big.Rat
		published []comboFrac
	}{
		{
			[]time.Duration{150 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond},
			ratlp.Rat(2, 9),
			[]comboFrac{{Combo{0, 0}, ratlp.Rat(7, 9)}, {Combo{2, 2}, ratlp.Rat(2, 9)}},
		},
		{
			[]time.Duration{450 * time.Millisecond, 600 * time.Millisecond, 700 * time.Millisecond},
			ratlp.Rat(38, 45),
			[]comboFrac{{Combo{1, 0}, ratlp.Rat(7, 9)}, {Combo{2, 2}, ratlp.Rat(2, 9)}},
		},
		{
			[]time.Duration{750 * time.Millisecond, 800 * time.Millisecond, 1000 * time.Millisecond},
			ratlp.Rat(14, 15),
			[]comboFrac{{Combo{0, 0}, ratlp.Rat(1, 15)}, {Combo{1, 2}, ratlp.Rat(8, 9)}, {Combo{2, 2}, ratlp.Rat(2, 45)}},
		},
		{
			[]time.Duration{1050 * time.Millisecond, 1500 * time.Millisecond},
			ratlp.Rat(14, 15),
			[]comboFrac{{Combo{0, 0}, ratlp.Rat(1, 27)}, {Combo{1, 1}, ratlp.Rat(20, 27)}, {Combo{2, 2}, ratlp.Rat(2, 9)}},
		},
	}
	for _, row := range rows {
		for _, δ := range row.lifetimes {
			n := exactTableIII(90, δ)
			assertExactRow(t, n, row.quality, row.published)
		}
	}
}

// TestTable4QualityBreakpoints verifies the quality transitions happen at
// exactly the lifetimes the published ranges imply (steps at 450, 750, and
// no further change at 1050 ms).
func TestTable4QualityBreakpoints(t *testing.T) {
	quality := func(δ time.Duration) *big.Rat {
		sol, err := SolveQualityExact(exactTableIII(90, δ))
		if err != nil {
			t.Fatal(err)
		}
		return sol.Quality
	}
	if q := quality(449 * time.Millisecond); q.Cmp(ratlp.Rat(2, 9)) != 0 {
		t.Errorf("Q(449ms) = %s, want 2/9", q.RatString())
	}
	if q := quality(450 * time.Millisecond); q.Cmp(ratlp.Rat(38, 45)) != 0 {
		t.Errorf("Q(450ms) = %s, want 38/45", q.RatString())
	}
	if q := quality(749 * time.Millisecond); q.Cmp(ratlp.Rat(38, 45)) != 0 {
		t.Errorf("Q(749ms) = %s, want 38/45", q.RatString())
	}
	if q := quality(750 * time.Millisecond); q.Cmp(ratlp.Rat(14, 15)) != 0 {
		t.Errorf("Q(750ms) = %s, want 14/15", q.RatString())
	}
	if q := quality(2 * time.Second); q.Cmp(ratlp.Rat(14, 15)) != 0 {
		t.Errorf("Q(2s) = %s, want 14/15", q.RatString())
	}
	// Below 150 ms nothing arrives in time.
	if q := quality(100 * time.Millisecond); q.Sign() != 0 {
		t.Errorf("Q(100ms) = %s, want 0", q.RatString())
	}
}

// TestExactMatchesFloat cross-validates the exact and float pipelines on
// the Table IV scenarios.
func TestExactMatchesFloat(t *testing.T) {
	for _, rate := range []int64{10, 40, 90, 120, 150} {
		for _, δ := range []time.Duration{300, 600, 800, 1100} {
			δ := δ * time.Millisecond
			exact, err := SolveQualityExact(exactTableIII(rate, δ))
			if err != nil {
				t.Fatal(err)
			}
			float := solveQ(t, tableIIINetwork(float64(rate), δ))
			want, _ := exact.Quality.Float64()
			if diff := float.Quality - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("λ=%d δ=%v: float %v vs exact %v", rate, δ, float.Quality, want)
			}
		}
	}
}

// TestQuickExactMatchesFloatThreeTransmissions cross-validates the two
// solver pipelines on random m=3 instances with integer-friendly
// parameters (so float→rational conversion is exact).
func TestQuickExactMatchesFloatThreeTransmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		numPaths := 1 + rng.Intn(3)
		paths := make([]Path, numPaths)
		for i := range paths {
			paths[i] = Path{
				Bandwidth: float64(1+rng.Intn(100)) * Mbps,
				Delay:     time.Duration(10+rng.Intn(500)) * time.Millisecond,
				Loss:      float64(rng.Intn(10)) / 16, // dyadic: exact in float64
				Cost:      float64(rng.Intn(5)),
			}
		}
		n := NewNetwork(float64(1+rng.Intn(150))*Mbps, time.Duration(100+rng.Intn(1000))*time.Millisecond, paths...)
		n.Transmissions = 3
		if rng.Intn(2) == 0 {
			n.CostBound = float64(rng.Intn(1000)) * Mbps
		}
		fs, err := SolveQuality(n)
		if err != nil {
			t.Fatal(err)
		}
		en, err := ExactFromFloat(n)
		if err != nil {
			t.Fatal(err)
		}
		es, err := SolveQualityExact(en)
		if err != nil {
			t.Fatal(err)
		}
		eq, _ := es.Quality.Float64()
		if math.Abs(fs.Quality-eq) > 1e-9 {
			t.Fatalf("trial %d: float %v vs exact %v\nnetwork: %+v", trial, fs.Quality, eq, n)
		}
	}
}

func TestExactFromFloat(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	n.CostBound = 1000
	en, err := ExactFromFloat(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(en.Paths) != 2 || en.CostBound == nil {
		t.Fatal("conversion lost fields")
	}
	if _, err := SolveQualityExact(en); err != nil {
		t.Fatalf("solving converted network: %v", err)
	}
	// Invalid input propagates.
	bad := *n
	bad.Rate = -1
	if _, err := ExactFromFloat(&bad); err == nil {
		t.Error("ExactFromFloat accepted invalid network")
	}
}

func TestExactValidation(t *testing.T) {
	valid := exactTableIII(90, 800*time.Millisecond)
	mutations := []func(*ExactNetwork){
		func(n *ExactNetwork) { n.Paths = nil },
		func(n *ExactNetwork) { n.Rate = nil },
		func(n *ExactNetwork) { n.Rate = ratlp.Int(-5) },
		func(n *ExactNetwork) { n.Lifetime = 0 },
		func(n *ExactNetwork) { n.CostBound = ratlp.Int(-1) },
		func(n *ExactNetwork) { n.Transmissions = 9 },
		func(n *ExactNetwork) { n.Paths[0].Loss = nil },
		func(n *ExactNetwork) { n.Paths[0].Loss = ratlp.Int(2) },
		func(n *ExactNetwork) { n.Paths[0].Bandwidth = ratlp.Int(0) },
		func(n *ExactNetwork) { n.Paths[0].Delay = -1 },
		func(n *ExactNetwork) { n.Paths[0].Cost = ratlp.Int(-1) },
	}
	for i, mut := range mutations {
		n := exactTableIII(90, 800*time.Millisecond)
		*n = *valid
		n.Paths = append([]ExactPath(nil), valid.Paths...)
		mut(n)
		if _, err := SolveQualityExact(n); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestExactSolutionAccessors(t *testing.T) {
	sol, err := SolveQualityExact(exactTableIII(100, 800*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if sol.String() == "" {
		t.Error("String empty")
	}
	active := sol.ActiveCombos()
	if len(active) == 0 {
		t.Fatal("no active combos")
	}
	sum := new(big.Rat)
	for _, cs := range active {
		sum.Add(sum, cs.Fraction)
	}
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("fractions sum to %s", sum.RatString())
	}
	if sol.Fraction(Combo{0}).Sign() != 0 || sol.Fraction(Combo{0, 99}).Sign() != 0 {
		t.Error("bogus combos should have zero fraction")
	}
}

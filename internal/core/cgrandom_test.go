package core

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"time"

	"dmc/internal/dist"
	"dmc/internal/lp"
	"dmc/internal/ratlp"
)

// randomDelayNetwork draws a random m = 2 network mixing shifted-gamma
// and deterministic (nil RandDelay) path delays.
func randomDelayNetwork(rng *rand.Rand, paths int) *Network {
	ps := make([]Path, paths)
	var total float64
	for i := range ps {
		bw := (10 + rng.Float64()*90) * Mbps
		total += bw
		ps[i] = Path{
			Bandwidth: bw,
			Delay:     time.Duration(50+rng.IntN(350)) * time.Millisecond,
			Loss:      rng.Float64() * 0.3,
			Cost:      rng.Float64(),
		}
		if rng.IntN(2) == 0 {
			ps[i].RandDelay = dist.ShiftedGamma{
				Loc:   ps[i].Delay,
				Shape: 3 + rng.Float64()*10,
				Scale: time.Duration(1+rng.IntN(5)) * time.Millisecond,
			}
		}
	}
	n := NewNetwork(0.8*total, time.Second, ps...)
	n.Transmissions = 2
	if rng.IntN(2) == 0 {
		n.CostBound = total // finite budget half the time: exercises the cost row
	}
	return n
}

// randomTimeouts builds a deterministic-delay timeout table with a
// random subset of pairs left undefined (the Eq. 35 t₁,₁ situation).
func randomTimeouts(rng *rand.Rand, n *Network) *Timeouts {
	to, err := DeterministicTimeouts(n, 50*time.Millisecond)
	if err != nil {
		panic(err)
	}
	for i := range n.Paths {
		for j := range n.Paths {
			if rng.IntN(4) == 0 {
				to.Set(i, j, -1)
			}
		}
	}
	return to
}

// exactRandomQuality solves the dense random-delay LP with exact
// rational arithmetic over the float-derived coefficients — the ratlp
// reference the CG solve must match (it certifies the LP machinery;
// the Eq. 27–30 coefficient evaluation itself is shared bit-for-bit
// between the dense and CG paths).
func exactRandomQuality(t *testing.T, n *Network, to *Timeouts) float64 {
	t.Helper()
	m, err := newModel(n)
	if err != nil {
		t.Fatal(err)
	}
	cols := m.randomColumns(to)
	nVars, base := cols.len(), m.base
	λ := new(big.Rat).SetFloat64(n.Rate)

	obj := make([]*big.Rat, nVars)
	for l, p := range cols.delivery {
		obj[l] = new(big.Rat).SetFloat64(p)
	}
	prob := ratlp.NewProblem(lp.Maximize, obj)
	for i := 1; i < base; i++ {
		row := make([]*big.Rat, nVars)
		for l := 0; l < nVars; l++ {
			row[l] = new(big.Rat).Mul(λ, new(big.Rat).SetFloat64(cols.shares[l*base+i]))
		}
		prob.AddConstraint(row, lp.LE, new(big.Rat).SetFloat64(m.paths[i].Bandwidth))
	}
	if !math.IsInf(n.CostBound, 1) {
		row := make([]*big.Rat, nVars)
		for l, c := range cols.costs {
			row[l] = new(big.Rat).Mul(λ, new(big.Rat).SetFloat64(c))
		}
		prob.AddConstraint(row, lp.LE, new(big.Rat).SetFloat64(n.CostBound))
	}
	ones := make([]*big.Rat, nVars)
	for l := range ones {
		ones[l] = big.NewRat(1, 1)
	}
	prob.AddConstraint(ones, lp.EQ, big.NewRat(1, 1))

	sol, err := ratlp.Solve(prob)
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("exact random LP: %v / %v", err, sol.Status)
	}
	q, _ := sol.Objective.Float64()
	return q
}

// TestRandomCGMatchesExact is the §VI-B differential property test: on
// ≥100 randomized networks the column-generation solve must agree with
// both the dense float solve and the exact rational solver to 1e-6,
// including undefined-timeout pairs and finite cost budgets.
func TestRandomCGMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x4a7d, 0x1))
	cg := NewSolver()
	cg.DenseThreshold = -1 // force column generation at every size
	dense := NewSolver()
	for trial := 0; trial < 110; trial++ {
		n := randomDelayNetwork(rng, 2+rng.IntN(3)) // 2–4 paths: 9–25 pairs
		to := randomTimeouts(rng, n)

		exact := exactRandomQuality(t, n, to)
		dsol, err := dense.SolveQualityRandom(n, to)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		csol, err := cg.SolveQualityRandom(n, to)
		if err != nil {
			t.Fatalf("trial %d: cg: %v", trial, err)
		}
		if csol.Stats.Dispatch != DispatchCG || dsol.Stats.Dispatch != DispatchDense {
			t.Fatalf("trial %d: dispatches %v / %v", trial, csol.Stats.Dispatch, dsol.Stats.Dispatch)
		}
		if diff := math.Abs(csol.Quality - exact); diff > 1e-6 {
			t.Errorf("trial %d: cg quality %v vs exact %v (diff %v, %d iters, %d columns)",
				trial, csol.Quality, exact, diff, csol.Stats.CGIterations, csol.Stats.Columns)
		}
		if diff := math.Abs(dsol.Quality - exact); diff > 1e-6 {
			t.Errorf("trial %d: dense quality %v vs exact %v", trial, dsol.Quality, exact)
		}
		// CG must respect bandwidth caps like the dense path.
		for i, p := range n.Paths {
			if r := csol.SentRate(i); r > p.Bandwidth*(1+1e-6) {
				t.Errorf("trial %d: cg oversubscribed path %d: %v > %v", trial, i, r, p.Bandwidth)
			}
		}
	}
}

// TestRandomCGDispatchAtScale: a path count whose pair space exceeds
// the dense threshold must dispatch SolveQualityRandom to column
// generation automatically and agree with a forced dense solve of the
// same instance.
func TestRandomCGDispatchAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large random-delay differential is slow under -short")
	}
	rng := rand.New(rand.NewPCG(0x4a7d, 0x2))
	paths := 120 // (121)² = 14641 pairs > DefaultDenseThreshold
	n := randomDelayNetwork(rng, paths)
	to := randomTimeouts(rng, n)

	auto := NewSolver()
	sol, err := auto.SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Fatalf("dispatch %v, want %v", sol.Stats.Dispatch, DispatchCG)
	}
	if sol.Stats.Columns <= 0 || sol.Stats.CGIterations <= 0 {
		t.Fatalf("stats not populated: %+v", sol.Stats)
	}

	forced := NewSolver()
	forced.DenseThreshold = DenseLimit
	dsol, err := forced.SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(sol.Quality - dsol.Quality); diff > 1e-6 {
		t.Fatalf("cg quality %v vs dense %v (diff %v)", sol.Quality, dsol.Quality, diff)
	}
	// Degenerate instances (binding budget near quality 1) can need a
	// sizeable pool; the win is never materializing the whole space.
	if sol.Stats.Columns >= dsol.Stats.Columns/3 {
		t.Errorf("cg master held %d of %d dense columns; generation is not sparse",
			sol.Stats.Columns, dsol.Stats.Columns)
	}
}

// TestRandomCGErrors mirrors the dense path's argument validation on
// the forced-CG solver.
func TestRandomCGErrors(t *testing.T) {
	cg := NewSolver()
	cg.DenseThreshold = -1
	n := tableVNetwork()
	to, err := DeterministicTimeouts(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	n3 := *n
	n3.Transmissions = 3
	if _, err := cg.SolveQualityRandom(&n3, to); err != ErrRandomNeedsTwoTransmissions {
		t.Errorf("want ErrRandomNeedsTwoTransmissions, got %v", err)
	}
	if _, err := cg.SolveQualityRandom(n, nil); err == nil {
		t.Error("nil timeouts accepted")
	}
	if _, err := cg.SolveQualityRandom(n, NewTimeouts(5)); err == nil {
		t.Error("mis-sized timeouts accepted")
	}
	bad := *n
	bad.Rate = -1
	if _, err := cg.SolveQualityRandom(&bad, to); err == nil {
		t.Error("invalid network accepted")
	}
}

// TestRandomCGExperiment2 pins the paper's Experiment 2 quality on the
// CG path: forcing column generation on the Table V network must
// reproduce Q ≈ 93.3 % exactly like the dense solve does.
func TestRandomCGExperiment2(t *testing.T) {
	n := tableVNetwork()
	to, err := OptimalTimeouts(n, TimeoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cg := NewSolver()
	cg.DenseThreshold = -1
	s, err := cg.SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality < 0.930 || s.Quality > 0.9334 {
		t.Errorf("quality = %v, want ≈ 0.9333", s.Quality)
	}
	dense, err := SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(s.Quality - dense.Quality); diff > 1e-9 {
		t.Errorf("cg %v vs dense %v (diff %v)", s.Quality, dense.Quality, diff)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"dmc/internal/lp"
)

// Pool-retention parameters of the warm CG path. Every re-solve can add
// freshly priced columns; on a long drift trajectory the pool would
// otherwise grow without bound and the restricted master would slow past
// the cold solve it is meant to beat. Above cgTrimTrigger columns the
// warm path trims the pool down to the cgTrimKeep columns with the best
// reduced cost under the previous duals (always keeping the basic ones).
// A threshold-based trim does not work here: the master is massively
// degenerate — hundreds of combinations price within 1e-3 of zero — so
// ranking, not thresholding, is what bounds the pool. Columns a later
// drift genuinely needs are re-discovered by the pricing oracle.
// cgMaxPoolColumns is the hard backstop past which the warm state is
// dropped entirely (defensive; trimming keeps pools far below it).
const (
	cgTrimTrigger    = 512
	cgTrimKeep       = 256
	cgMaxPoolColumns = 8192
)

// resolveState is the persistent warm-start state behind Solver.Resolve:
// everything reusable across solves of same-shaped networks whose
// λ/µ/loss/delay coefficients drift. It is invalidated whenever the
// network shape (path count, transmissions, cost-boundedness) or the
// planned dispatch changes.
type resolveState struct {
	valid bool

	// Shape key.
	nPaths   int
	trans    int
	hasCost  bool
	dispatch Dispatch

	// Dense and pruned dispatch: the full dense column table, rebuilt in
	// place each re-solve.
	dense *columns
	// Pruned dispatch: packed combination keys of the previous master's
	// columns, in column order, for remapping the LP basis onto the next
	// solve's (possibly different) surviving subset.
	keptKeys []uint64

	// CG dispatch: the persistent column pool and pricing oracle.
	pool   *colSet
	pricer *pricer

	// Optimal LP basis of the previous solve and the structural column
	// count it was captured against.
	basis *lp.Basis
	lastN int
	// duals is the previous master's dual vector (CG dispatch), used to
	// score pooled columns for trimming.
	duals []float64
}

// matches reports whether the warm state can serve the network.
func (rs *resolveState) matches(s *Solver, n *Network) bool {
	return rs.valid &&
		rs.nPaths == len(n.Paths) &&
		rs.trans == n.transmissions() &&
		rs.hasCost == !math.IsInf(n.CostBound, 1) &&
		rs.dispatch == s.plannedDispatch(n)
}

// plannedDispatch computes which solve core SolveQuality/Resolve will
// use for the network's shape under the solver's current thresholds.
func (s *Solver) plannedDispatch(n *Network) Dispatch {
	if !s.denseDispatchOK(n) {
		return DispatchCG
	}
	nVars, _ := combinationCount(len(n.Paths)+1, n.transmissions(), DenseLimit)
	th := s.PruneThreshold
	if th == 0 {
		th = DefaultPruneThreshold
	}
	if th >= 0 && nVars > th {
		return DispatchPruned
	}
	return DispatchDense
}

// Resolve solves the deterministic-delay quality maximization (Eq. 10)
// incrementally: when the network shape (path count, transmissions,
// cost-boundedness) matches the previous Resolve call on this Solver and
// only the coefficients — λ, µ, per-path loss, delay, bandwidth, cost —
// drifted, the solve reuses everything structural from last time instead
// of starting cold:
//
//   - the dense column tables are rebuilt in place (no re-allocation),
//   - the column-generation pool is retained and repriced, so the
//     branch-and-bound pricing oracle only searches for columns the
//     drift actually made attractive,
//   - the previous optimal simplex basis is re-installed, skipping LP
//     Phase I whenever it is still feasible for the perturbed
//     coefficients (with automatic cold fallback when it is not).
//
// The result is identical to a cold SolveQuality up to solver tolerance;
// Solution.Stats reports Warm, PhaseISkipped, and the pool hit counts.
// On a shape change — or any failure of the warm path — Resolve falls
// back to a cold solve transparently and re-primes the state.
//
// The returned Solution shares column storage with the Solver's warm
// state: it is valid until the next Resolve call on the same Solver,
// which rebuilds that storage in place. Callers that need a solution to
// outlive the next re-solve must extract what they need first (or use
// SolveQuality, which never reuses result storage). Like every Solver
// method, Resolve is not safe for concurrent use.
func (s *Solver) Resolve(n *Network) (*Solution, error) {
	if s.rs.matches(s, n) {
		sol, err := s.resolveWarm(n)
		if err == nil {
			return sol, nil
		}
		// The warm state proved unusable (diverged column generation,
		// stale pool past its cap, …): drop it and solve cold. A stale
		// cache must never fail a solve that a cold path can do.
		s.rs = resolveState{}
	}
	return s.resolveCold(n)
}

// resolveCold primes the warm state with a cold solve.
func (s *Solver) resolveCold(n *Network) (*Solution, error) {
	s.rs = resolveState{}
	dispatch := s.plannedDispatch(n)
	var (
		sol *Solution
		err error
	)
	if dispatch == DispatchCG {
		sol, err = s.resolveColdCG(n)
	} else {
		sol, err = s.resolveColdDense(n)
	}
	if err != nil {
		s.rs = resolveState{}
		return nil, err
	}
	s.rs.valid = true
	s.rs.nPaths = len(n.Paths)
	s.rs.trans = n.transmissions()
	s.rs.hasCost = !math.IsInf(n.CostBound, 1)
	s.rs.dispatch = dispatch
	return sol, nil
}

// resolveColdDense is the dense/pruned cold solve with state capture.
func (s *Solver) resolveColdDense(n *Network) (*Solution, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	full := m.computeColumns(s.scratch(m.m))
	cols, index := s.pruneIfWorthwhile(m, full)
	prob := m.assembleProblemInto(&s.asm, lp.Maximize, cols.delivery, cols, nil, true)
	lpSol, err := s.lps.SolveWith(prob, lp.Options{AssumeValid: true, CaptureBasis: true})
	if err != nil {
		return nil, fmt.Errorf("core: solving quality LP: %w", err)
	}
	if lpSol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: quality LP unexpectedly %v", lpSol.Status)
	}
	out := m.newSolutionIndexed(prob, cols, lpSol.X, lpSol.Objective, index)
	out.Stats = denseStats(m, cols, index)

	s.rs.dense = full
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cols.len()
	s.rs.keptKeys = packedKeys(m, cols, nil)
	return out, nil
}

// resolveColdCG is the column-generation cold solve with pool capture.
func (s *Solver) resolveColdCG(n *Network) (*Solution, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	cs := newColSet()
	m.seedColumns(cs, s.scratch(m.m))
	pr := newPricer(m)
	prob, lpSol, iters, _, err := s.runCG(&s.asm, m, cs, pr, nil, cgPriceTol, cgPriceTol)
	if err != nil {
		return nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{
		Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters,
		PoolAdded: cs.cols.len(),
	}

	s.rs.pool = cs
	s.rs.pricer = pr
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cs.cols.len()
	s.rs.duals = append(s.rs.duals[:0], lpSol.Dual...)
	return sol, nil
}

// resolveWarm dispatches the warm re-solve; any error sends Resolve down
// the cold path.
func (s *Solver) resolveWarm(n *Network) (*Solution, error) {
	switch s.rs.dispatch {
	case DispatchCG:
		return s.resolveWarmCG(n)
	default:
		return s.resolveWarmDense(n)
	}
}

// resolveWarmDense re-solves the dense and pruned dispatches: the dense
// column table is re-evaluated in place and solved whole, with the
// previous basis remapped onto it via packed combination keys. The
// dominance pruner is deliberately NOT re-run on the warm path — its
// full sweep (sort + pairwise checks + column copies) costs more than
// warm-starting the simplex over the unpruned table, which the basis
// lands within a few pivots of optimal anyway. (The cold prime still
// prunes; only re-solves skip it.)
func (s *Solver) resolveWarmDense(n *Network) (*Solution, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	full := s.rs.dense
	if full == nil {
		return nil, fmt.Errorf("core: warm state has no cached columns")
	}
	if full.len() != m.nVars {
		return nil, fmt.Errorf("core: warm state shape mismatch (%d cached columns, %d needed)", full.len(), m.nVars)
	}
	m.computeColumnsInto(full, s.scratch(m.m))

	prob := m.assembleProblemInto(&s.asm, lp.Maximize, full.delivery, full, nil, true)
	opts := lp.Options{AssumeValid: true, CaptureBasis: true}
	if s.rs.basis != nil {
		opts.WarmBasis = s.rs.basis.Remap(full.len(), s.basisPerm())
	}
	lpSol, err := s.lps.SolveWith(prob, opts)
	if err != nil {
		return nil, fmt.Errorf("core: solving quality LP: %w", err)
	}
	if lpSol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: quality LP unexpectedly %v", lpSol.Status)
	}
	out := m.newSolution(prob, full, lpSol.X, lpSol.Objective)
	// Report the shape's planned dispatch (dense or pruned) so warm and
	// cold solves of the same network label their rows consistently,
	// even though the warm path solves the full table either way.
	out.Stats = SolveStats{Dispatch: s.rs.dispatch, Columns: full.len()}
	out.Stats.Warm = true
	out.Stats.PhaseISkipped = lpSol.PhaseISkipped

	s.rs.basis = lpSol.Basis
	s.rs.lastN = full.len()
	s.rs.keptKeys = nil // full-table solve: identity keys from here on
	return out, nil
}

// resolveWarmCG re-solves the column-generation dispatch: the pooled
// columns are repriced in place (every one a pricing-oracle call saved),
// and the CG loop continues from the previous optimal basis.
func (s *Solver) resolveWarmCG(n *Network) (*Solution, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	cs := s.rs.pool
	if cs.cols.len() > cgMaxPoolColumns {
		return nil, fmt.Errorf("core: warm column pool exceeded %d columns", cgMaxPoolColumns)
	}
	cs.reevaluate(m)
	pr := s.rs.pricer
	pr.bind(m)

	var basis *lp.Basis
	if s.rs.lastN == cs.cols.len() {
		basis = s.rs.basis
	}
	if cs.cols.len() > cgTrimTrigger {
		cs, basis = s.trimPool(m, basis)
	}
	poolHits := cs.cols.len()
	prob, lpSol, iters, firstWarm, err := s.runCG(&s.asm, m, cs, pr, basis, cgCertTolWarm, cgCertTolWarm)
	if err != nil {
		return nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{
		Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters,
		Warm: true, PhaseISkipped: firstWarm,
		PoolHits: poolHits, PoolAdded: cs.cols.len() - poolHits,
	}

	s.rs.pool = cs
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cs.cols.len()
	s.rs.duals = append(s.rs.duals[:0], lpSol.Dual...)
	return sol, nil
}

// trimPool compacts the warm column pool to the cgTrimKeep columns with
// the best reduced cost under the previous master's duals (evaluated on
// the already-repriced drifted columns), always keeping the basic ones.
// Returns the compact pool and the basis remapped onto it (nil when a
// basic column could not be preserved, which sends the master down the
// cold-LP path but keeps the pool win).
func (s *Solver) trimPool(m *model, basis *lp.Basis) (*colSet, *lp.Basis) {
	cs := s.rs.pool
	duals := s.rs.duals
	n := cs.cols.len()
	if n <= cgTrimKeep || duals == nil || len(duals) < m.base {
		return cs, basis
	}
	λ := m.net.Rate
	base := m.base
	yBW := duals[:base-1]
	next := base - 1
	yCost := 0.0
	if !math.IsInf(m.net.CostBound, 1) {
		yCost = duals[next]
		next++
	}
	y0 := duals[next]

	rc := make([]float64, n)
	for j := 0; j < n; j++ {
		v := cs.cols.delivery[j] - λ*yCost*cs.cols.costs[j] - y0
		shares := cs.cols.shares[j*base : (j+1)*base]
		for i := 1; i < base; i++ {
			v -= λ * yBW[i-1] * shares[i]
		}
		rc[j] = v
	}

	keep := make([]bool, n)
	kept := 0
	// The all-blackhole column (packed key 0) is what keeps the master
	// feasible under ANY bandwidth/cost drift — x′_blackhole = 1 uses no
	// constrained resource. Trimming it can leave the restricted master
	// genuinely infeasible after a hostile drift, killing the warm state.
	for j := 0; j < n; j++ {
		if cs.keys[j] == 0 {
			keep[j] = true
			kept++
			break
		}
	}
	if basis != nil {
		for _, c := range basis.StructuralCols() {
			if c >= 0 && c < n && !keep[c] {
				keep[c] = true
				kept++
			}
		}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return rc[order[a]] > rc[order[b]] })
	for _, j := range order {
		if kept >= cgTrimKeep {
			break
		}
		if !keep[j] {
			keep[j] = true
			kept++
		}
	}

	out := newColSet()
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		if !keep[j] {
			perm[j] = -1
			continue
		}
		perm[j] = out.cols.len()
		out.pos[cs.keys[j]] = out.cols.len()
		out.keys = append(out.keys, cs.keys[j])
		out.cols.appendFrom(&cs.cols, j, base)
	}
	if basis != nil {
		basis = basis.Remap(out.cols.len(), perm)
	}
	return out, basis
}

// basisPerm builds the structural-column permutation mapping the
// previous solve's column positions onto the full dense table: old
// position j held the combination with key keptKeys[j], and for an
// unpruned dense table the packed key IS the enumeration index (Eq. 13).
// A nil keptKeys means the previous solve already used the full table —
// the identity (nil perm) applies.
func (s *Solver) basisPerm() []int {
	old := s.rs.keptKeys
	if old == nil {
		return nil
	}
	perm := make([]int, len(old))
	for j, key := range old {
		perm[j] = int(key)
	}
	return perm
}

// packedKeys returns the packed combination key of every column, reusing
// buf when it has capacity. For an unpruned dense table the keys equal
// the enumeration order, but storing them uniformly keeps the basis
// remap independent of which shape the previous solve took.
func packedKeys(m *model, cols *columns, buf []uint64) []uint64 {
	if cap(buf) < cols.len() {
		buf = make([]uint64, cols.len())
	}
	buf = buf[:cols.len()]
	for l, combo := range cols.combos {
		buf[l] = m.packKey(combo)
	}
	return buf
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dmc/internal/fault"
	"dmc/internal/lp"
)

// Warm-path injection points. Errors injected here are absorbed by
// resolve's cold fallback; panics unwind to the caller like a real
// numerical crash.
var (
	fpResolveWarm = fault.Register("core.resolve.warm")
	fpCGReprice   = fault.Register("core.cg.reprice")
)

// Pool-retention parameters of the warm CG path. Every re-solve can add
// freshly priced columns; on a long drift trajectory the pool would
// otherwise grow without bound and the restricted master would slow past
// the cold solve it is meant to beat. Above cgTrimTrigger columns the
// warm path trims the pool down to the cgTrimKeep columns with the best
// reduced cost under the previous duals (always keeping the basic ones).
// A threshold-based trim does not work here: the master is massively
// degenerate — hundreds of combinations price within 1e-3 of zero — so
// ranking, not thresholding, is what bounds the pool. Columns a later
// drift genuinely needs are re-discovered by the pricing oracle.
// cgMaxPoolColumns is the hard backstop past which the warm state is
// dropped entirely (defensive; trimming keeps pools far below it).
const (
	cgTrimTrigger    = 512
	cgTrimKeep       = 256
	cgMaxPoolColumns = 8192
)

// solveObjective names which optimization a persistent re-solve state
// was built for. Reusing columns or a basis across objectives would be
// wrong (different masters, different duals), so the state is keyed on
// it alongside the network shape.
type solveObjective uint8

const (
	objQuality solveObjective = iota
	objMinCost
	objRandom
)

// resolveState is the persistent warm-start state behind the Resolve
// family: everything reusable across solves of same-shaped networks
// whose λ/µ/loss/delay coefficients drift. It is invalidated whenever
// the network shape (path count, transmissions, cost-boundedness), the
// objective, or the planned dispatch changes.
type resolveState struct {
	valid bool

	// Shape key.
	nPaths    int
	trans     int
	hasCost   bool
	dispatch  Dispatch
	objective solveObjective

	// Dense and pruned dispatch: the full dense column table, rebuilt in
	// place each re-solve.
	dense *columns
	// Pruned dispatch: packed combination keys of the previous master's
	// columns, in column order, for remapping the LP basis onto the next
	// solve's (possibly different) surviving subset.
	keptKeys []uint64

	// CG dispatch: the persistent column pool and pricing oracle.
	pool   *colSet
	pricer *pricer
	// rnd holds the random-delay pair tables (objRandom); its buffers
	// are reused across re-solves, the values re-tabulated each time.
	rnd *randomObjective
	// mcObj is the min-cost master objective buffer (objMinCost).
	mcObj []float64

	// Optimal LP basis of the previous solve and the structural column
	// count it was captured against.
	basis *lp.Basis
	lastN int
	// duals is the previous master's dual vector (CG dispatch), used to
	// score pooled columns for trimming.
	duals []float64
}

// resolveReq carries one Resolve call's objective and its parameters.
type resolveReq struct {
	obj        solveObjective
	minQuality float64   // objMinCost
	to         *Timeouts // objRandom
}

// matches reports whether the warm state can serve the network.
func (rs *resolveState) matches(s *Solver, n *Network, obj solveObjective) bool {
	return rs.valid &&
		rs.objective == obj &&
		rs.nPaths == len(n.Paths) &&
		rs.trans == n.transmissions() &&
		rs.hasCost == !math.IsInf(n.CostBound, 1) &&
		rs.dispatch == s.plannedDispatch(n, obj)
}

// plannedDispatch computes which solve core the Resolve family will use
// for the network's shape under the solver's current thresholds. The
// random-delay objective never dispatches to the dominance pruner (its
// structural canonicalization assumes the deterministic schedule), so
// its dense window reports DispatchDense throughout.
func (s *Solver) plannedDispatch(n *Network, obj solveObjective) Dispatch {
	if !s.denseDispatchOK(n) {
		return DispatchCG
	}
	if obj == objRandom {
		return DispatchDense
	}
	nVars, _ := combinationCount(len(n.Paths)+1, n.transmissions(), DenseLimit)
	th := s.PruneThreshold
	if th == 0 {
		th = DefaultPruneThreshold
	}
	if th >= 0 && nVars > th {
		return DispatchPruned
	}
	return DispatchDense
}

// Resolve solves the deterministic-delay quality maximization (Eq. 10)
// incrementally: when the network shape (path count, transmissions,
// cost-boundedness) matches the previous Resolve call on this Solver and
// only the coefficients — λ, µ, per-path loss, delay, bandwidth, cost —
// drifted, the solve reuses everything structural from last time instead
// of starting cold:
//
//   - the dense column tables are rebuilt in place (no re-allocation),
//   - the column-generation pool is retained and repriced, so the
//     branch-and-bound pricing oracle only searches for columns the
//     drift actually made attractive,
//   - the previous optimal simplex basis is re-installed, skipping LP
//     Phase I whenever it is still feasible for the perturbed
//     coefficients (with dual-simplex repair when the drift left it
//     dual feasible, and automatic cold fallback otherwise), and later
//     CG iterations append their columns onto the hot tableau.
//
// The result is identical to a cold SolveQuality up to solver tolerance;
// Solution.Stats reports Warm, PhaseISkipped, and the pool hit counts.
// On a shape change — or any failure of the warm path — Resolve falls
// back to a cold solve transparently and re-primes the state.
//
// The returned Solution shares column storage with the Solver's warm
// state: it is valid until the next Resolve call on the same Solver,
// which rebuilds that storage in place. Callers that need a solution to
// outlive the next re-solve must extract what they need first (or use
// SolveQuality, which never reuses result storage). Like every Solver
// method, Resolve is not safe for concurrent use.
func (s *Solver) Resolve(n *Network) (*Solution, error) {
	return s.resolve(n, resolveReq{obj: objQuality})
}

// ResolveMinCost is the incremental counterpart of SolveMinCost: §VI-A
// cost minimization under a quality floor, with the same warm-state
// reuse, result-invalidation contract, and cold fallback as Resolve.
// The floor itself may drift between calls — it is a constraint bound,
// not part of the network shape. A genuinely unattainable floor returns
// ErrInfeasible (the verdict is always certified cold) and re-primes
// the state on the next call.
func (s *Solver) ResolveMinCost(n *Network, minQuality float64) (*Solution, error) {
	if math.IsNaN(minQuality) || minQuality < 0 || minQuality > 1 {
		return nil, fmt.Errorf("core: min quality %v outside [0,1]", minQuality)
	}
	return s.resolve(n, resolveReq{obj: objMinCost, minQuality: minQuality})
}

// ResolveQualityRandom is the incremental counterpart of
// SolveQualityRandom: the §VI-B random-delay model under drifting
// delays, losses, and timeout tables, with the same warm-state reuse,
// result-invalidation contract, and cold fallback as Resolve. The pair
// tables are re-tabulated every call (they depend on the drifting
// delays); what warms is the column pool, the LP basis, and all
// storage.
func (s *Solver) ResolveQualityRandom(n *Network, to *Timeouts) (*Solution, error) {
	return s.resolve(n, resolveReq{obj: objRandom, to: to})
}

func (s *Solver) resolve(n *Network, req resolveReq) (*Solution, error) {
	if s.rs.matches(s, n, req.obj) {
		sol, err := s.resolveWarm(n, req)
		if err == nil {
			return sol, nil
		}
		// An infeasible quality floor is a genuine, cold-certified
		// verdict — not a warm-state failure. Report it; the state was
		// already reset so the next call re-primes.
		if errors.Is(err, ErrInfeasible) {
			s.rs = resolveState{}
			return nil, err
		}
		// The warm state proved unusable (diverged column generation,
		// stale pool past its cap, …): drop it and solve cold. A stale
		// cache must never fail a solve that a cold path can do.
		s.rs = resolveState{}
	}
	return s.resolveCold(n, req)
}

// resolveCold primes the warm state with a cold solve.
func (s *Solver) resolveCold(n *Network, req resolveReq) (*Solution, error) {
	s.rs = resolveState{}
	dispatch := s.plannedDispatch(n, req.obj)
	var (
		sol *Solution
		err error
	)
	if dispatch == DispatchCG {
		sol, err = s.resolveColdCG(n, req)
	} else {
		sol, err = s.resolveColdDense(n, req)
	}
	if err != nil {
		s.rs = resolveState{}
		return nil, err
	}
	s.rs.valid = true
	s.rs.nPaths = len(n.Paths)
	s.rs.trans = n.transmissions()
	s.rs.hasCost = !math.IsInf(n.CostBound, 1)
	s.rs.dispatch = dispatch
	s.rs.objective = req.obj
	return sol, nil
}

// denseMaster assembles and solves the dense master for the request's
// objective over the given columns, returning the LP solution (the
// caller builds the public Solution). Used by both the cold and warm
// dense resolve paths; opts carries the warm basis when one applies.
func (s *Solver) denseMaster(m *model, cols *columns, req resolveReq, opts lp.Options) (*lp.Problem, *lp.Solution, error) {
	var prob *lp.Problem
	switch req.obj {
	case objMinCost:
		s.rs.mcObj = grow(s.rs.mcObj, cols.len())
		λ := m.net.Rate
		for l, c := range cols.costs {
			s.rs.mcObj[l] = λ * c
		}
		quality := lp.Constraint{Name: "quality", Coeffs: cols.delivery, Rel: lp.GE, RHS: req.minQuality}
		prob = m.assembleProblemInto(&s.asm, lp.Minimize, s.rs.mcObj, cols, &quality, false)
	default: // objQuality, objRandom share the Eq. 10 master shape
		prob = m.assembleProblemInto(&s.asm, lp.Maximize, cols.delivery, cols, nil, true)
	}
	lpSol, err := s.lps.SolveWith(prob, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: solving LP: %w", err)
	}
	switch lpSol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		if req.obj == objMinCost {
			return nil, nil, fmt.Errorf("core: quality %v unattainable on this network: %w", req.minQuality, ErrInfeasible)
		}
		fallthrough
	default:
		return nil, nil, fmt.Errorf("core: LP unexpectedly %v", lpSol.Status)
	}
	return prob, lpSol, nil
}

// denseColumns evaluates the request's dense column tables, into cols
// when non-nil (the warm in-place rebuild) or freshly.
func (s *Solver) denseColumns(m *model, req resolveReq, cols *columns) *columns {
	if req.obj == objRandom {
		if cols == nil {
			return m.randomColumns(req.to)
		}
		m.randomColumnsInto(cols, req.to)
		return cols
	}
	if cols == nil {
		return m.computeColumns(s.scratch(m.m))
	}
	m.computeColumnsInto(cols, s.scratch(m.m))
	return cols
}

// finishSolution attaches the objective-appropriate quality to a solved
// master: the LP objective for the quality objectives, the recomputed
// p·x for min-cost (whose LP objective is cost).
func finishSolution(m *model, prob *lp.Problem, cols *columns, lpSol *lp.Solution, req resolveReq, index map[uint64]int) *Solution {
	quality := lpSol.Objective
	if req.obj == objMinCost {
		quality = 0
		for l, x := range lpSol.X {
			quality += x * cols.delivery[l]
		}
		quality = clamp01(quality)
	}
	return m.newSolutionIndexed(prob, cols, lpSol.X, quality, index)
}

// newDenseModel builds the dense model for a resolve request, checking
// the request's structural preconditions (m = 2 and the timeout table
// for the random objective).
func (s *Solver) newDenseModel(n *Network, req resolveReq) (*model, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	if req.obj == objRandom {
		if m.m != 2 {
			return nil, ErrRandomNeedsTwoTransmissions
		}
		if err := validateTimeouts(n, req.to); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// resolveColdDense is the dense/pruned cold solve with state capture.
func (s *Solver) resolveColdDense(n *Network, req resolveReq) (*Solution, error) {
	m, err := s.newDenseModel(n, req)
	if err != nil {
		return nil, err
	}
	full := s.denseColumns(m, req, nil)
	cols, index := full, map[uint64]int(nil)
	if req.obj != objRandom {
		// The dominance pruner's structural canonicalization assumes the
		// deterministic schedule; random-delay tables solve unpruned.
		cols, index = s.pruneIfWorthwhile(m, full)
	}
	prob, lpSol, err := s.denseMaster(m, cols, req, lp.Options{AssumeValid: true, CaptureBasis: true})
	if err != nil {
		return nil, err
	}
	out := finishSolution(m, prob, cols, lpSol, req, index)
	out.Stats = denseStats(m, cols, index)

	s.rs.dense = full
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cols.len()
	s.rs.keptKeys = packedKeys(m, cols, nil)
	return out, nil
}

// resolveWarmDense re-solves the dense and pruned dispatches: the dense
// column table is re-evaluated in place and solved whole, with the
// previous basis remapped onto it via packed combination keys. The
// dominance pruner is deliberately NOT re-run on the warm path — its
// full sweep (sort + pairwise checks + column copies) costs more than
// warm-starting the simplex over the unpruned table, which the basis
// lands within a few pivots of optimal anyway. (The cold prime still
// prunes; only re-solves skip it.)
func (s *Solver) resolveWarmDense(n *Network, req resolveReq) (*Solution, error) {
	m, err := s.newDenseModel(n, req)
	if err != nil {
		return nil, err
	}
	full := s.rs.dense
	if full == nil {
		return nil, fmt.Errorf("core: warm state has no cached columns")
	}
	if full.len() != m.nVars {
		return nil, fmt.Errorf("core: warm state shape mismatch (%d cached columns, %d needed)", full.len(), m.nVars)
	}
	s.denseColumns(m, req, full)

	opts := lp.Options{AssumeValid: true, CaptureBasis: true}
	if s.rs.basis != nil {
		opts.WarmBasis = s.rs.basis.Remap(full.len(), s.basisPerm())
	}
	prob, lpSol, err := s.denseMaster(m, full, req, opts)
	if err != nil {
		return nil, err
	}
	out := finishSolution(m, prob, full, lpSol, req, nil)
	// Report the shape's planned dispatch (dense or pruned) so warm and
	// cold solves of the same network label their rows consistently,
	// even though the warm path solves the full table either way.
	out.Stats = SolveStats{Dispatch: s.rs.dispatch, Columns: full.len()}
	out.Stats.Warm = true
	out.Stats.PhaseISkipped = lpSol.PhaseISkipped

	s.rs.basis = lpSol.Basis
	s.rs.lastN = full.len()
	s.rs.keptKeys = nil // full-table solve: identity keys from here on
	return out, nil
}

// cgSetup builds the request's sparse model and CG objective, reusing
// the persistent pricer and buffers from the warm state when they
// exist.
func (s *Solver) cgSetup(n *Network, req resolveReq) (*model, cgObjective, error) {
	if req.obj == objRandom {
		m, ro, err := s.randomModel(n, req.to, s.rs.rnd)
		if err != nil {
			return nil, nil, err
		}
		s.rs.rnd = ro
		return m, ro, nil
	}
	m, err := newSparseModel(n)
	if err != nil {
		return nil, nil, err
	}
	pr := s.rs.pricer
	if pr == nil {
		pr = newPricer(m)
		s.rs.pricer = pr
	} else {
		pr.bind(m)
	}
	if req.obj == objMinCost {
		mo := &minCostObjective{m: m, pr: pr, minQuality: req.minQuality, obj: s.rs.mcObj}
		return m, mo, nil
	}
	return m, &qualityObjective{m: m, pr: pr, costRow: true}, nil
}

// resolveColdCG is the column-generation cold solve with pool capture.
func (s *Solver) resolveColdCG(n *Network, req resolveReq) (*Solution, error) {
	m, obj, err := s.cgSetup(n, req)
	if err != nil {
		return nil, err
	}
	cs := newColSet()
	obj.seed(cs, s.scratch(m.m))
	sol, lpSol, err := s.runObjectiveCG(m, cs, obj, nil, cgPriceTol, false)
	if err != nil {
		return nil, err
	}
	sol.Stats.PoolAdded = cs.cols.len()

	s.rs.pool = cs
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cs.cols.len()
	s.rs.duals = append(s.rs.duals[:0], lpSol.Dual...)
	return sol, nil
}

// runObjectiveCG runs the objective's column-generation driver over the
// pool — the two-stage min-cost engine, or a plain runCG for the
// quality objectives — and assembles the Solution with its CG stats.
// Shared by the cold and warm CG resolve paths; basis and
// skipFeasStage carry the warm state (nil/false on cold primes).
func (s *Solver) runObjectiveCG(m *model, cs *colSet, obj cgObjective, basis *lp.Basis, certTol float64, skipFeasStage bool) (*Solution, *lp.Solution, error) {
	if o, ok := obj.(*minCostObjective); ok {
		sol, lpSol, err := s.solveMinCostCG(&s.asm, m, cs, o, basis, certTol, skipFeasStage)
		s.rs.mcObj = o.obj
		return sol, lpSol, err
	}
	prob, lpSol, iters, firstWarm, err := s.runCG(&s.asm, m, cs, obj, basis, certTol, certTol, nil)
	if err != nil {
		return nil, nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{
		Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters,
		PhaseISkipped: firstWarm,
	}
	return sol, lpSol, nil
}

// resolveWarm dispatches the warm re-solve; any error other than an
// infeasible quality floor sends resolve down the cold path.
func (s *Solver) resolveWarm(n *Network, req resolveReq) (*Solution, error) {
	if err := fpResolveWarm.Hit(); err != nil {
		return nil, err
	}
	switch s.rs.dispatch {
	case DispatchCG:
		return s.resolveWarmCG(n, req)
	default:
		return s.resolveWarmDense(n, req)
	}
}

// resolveWarmCG re-solves the column-generation dispatch: the pooled
// columns are repriced in place (every one a pricing-oracle call saved),
// and the CG loop continues from the previous optimal basis, appending
// newly priced columns onto the hot tableau.
func (s *Solver) resolveWarmCG(n *Network, req resolveReq) (*Solution, error) {
	m, obj, err := s.cgSetup(n, req)
	if err != nil {
		return nil, err
	}
	cs := s.rs.pool
	if cs.cols.len() > cgMaxPoolColumns {
		return nil, fmt.Errorf("core: warm column pool exceeded %d columns", cgMaxPoolColumns)
	}
	if err := fpCGReprice.Hit(); err != nil {
		return nil, err
	}
	cs.reevaluate(m, obj)

	var basis *lp.Basis
	if s.rs.lastN == cs.cols.len() {
		basis = s.rs.basis
	}
	if cs.cols.len() > cgTrimTrigger {
		cs, basis = s.trimPool(m, basis, req)
	}
	poolHits := cs.cols.len()

	sol, lpSol, err := s.runObjectiveCG(m, cs, obj, basis, cgCertTolWarm, true)
	if err != nil {
		return nil, err
	}
	sol.Stats.Warm = true
	sol.Stats.PoolHits = poolHits
	sol.Stats.PoolAdded = cs.cols.len() - poolHits

	s.rs.pool = cs
	s.rs.basis = lpSol.Basis
	s.rs.lastN = cs.cols.len()
	s.rs.duals = append(s.rs.duals[:0], lpSol.Dual...)
	return sol, nil
}

// trimPool compacts the warm column pool to the cgTrimKeep columns with
// the best pricing gain under the previous master's duals (evaluated on
// the already-repriced drifted columns), always keeping the basic ones.
// Returns the compact pool and the basis remapped onto it (nil when a
// basic column could not be preserved, which sends the master down the
// cold-LP path but keeps the pool win).
func (s *Solver) trimPool(m *model, basis *lp.Basis, req resolveReq) (*colSet, *lp.Basis) {
	cs := s.rs.pool
	duals := s.rs.duals
	n := cs.cols.len()
	if n <= cgTrimKeep || duals == nil || len(duals) < m.base {
		return cs, basis
	}
	score := s.poolScore(m, duals, req)
	if score == nil {
		return cs, basis
	}

	rc := make([]float64, n)
	for j := 0; j < n; j++ {
		rc[j] = score(j)
	}

	keep := make([]bool, n)
	kept := 0
	// The all-blackhole column (packed key 0) is what keeps the master
	// feasible under ANY bandwidth/cost drift — x′_blackhole = 1 uses no
	// constrained resource. Trimming it can leave the restricted master
	// genuinely infeasible after a hostile drift, killing the warm state.
	for j := 0; j < n; j++ {
		if cs.keys[j] == 0 {
			keep[j] = true
			kept++
			break
		}
	}
	if basis != nil {
		for _, c := range basis.StructuralCols() {
			if c >= 0 && c < n && !keep[c] {
				keep[c] = true
				kept++
			}
		}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return rc[order[a]] > rc[order[b]] })
	for _, j := range order {
		if kept >= cgTrimKeep {
			break
		}
		if !keep[j] {
			keep[j] = true
			kept++
		}
	}

	out := newColSet()
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		if !keep[j] {
			perm[j] = -1
			continue
		}
		perm[j] = out.cols.len()
		out.pos[cs.keys[j]] = out.cols.len()
		out.keys = append(out.keys, cs.keys[j])
		out.cols.appendFrom(&cs.cols, j, m.base)
	}
	if basis != nil {
		basis = basis.Remap(out.cols.len(), perm)
	}
	return out, basis
}

// poolScore returns the per-column pricing gain under the previous
// master's duals for the request's objective (higher = more worth
// keeping), or nil when the dual vector does not match the expected
// layout.
func (s *Solver) poolScore(m *model, duals []float64, req resolveReq) func(j int) float64 {
	cs := s.rs.pool
	λ := m.net.Rate
	base := m.base
	yBW := duals[:base-1]
	if req.obj == objMinCost {
		// Layout: bandwidth rows, quality floor, conservation.
		if len(duals) < base+1 {
			return nil
		}
		yQ, y0 := duals[base-1], duals[base]
		return func(j int) float64 {
			v := yQ*cs.cols.delivery[j] - λ*cs.cols.costs[j] + y0
			shares := cs.cols.shares[j*base : (j+1)*base]
			for i := 1; i < base; i++ {
				v += λ * yBW[i-1] * shares[i]
			}
			return v
		}
	}
	// Layout: bandwidth rows, the cost row when the budget is finite,
	// conservation.
	next := base - 1
	yCost := 0.0
	if !math.IsInf(m.net.CostBound, 1) {
		yCost = duals[next]
		next++
	}
	if len(duals) <= next {
		return nil
	}
	y0 := duals[next]
	return func(j int) float64 {
		v := cs.cols.delivery[j] - λ*yCost*cs.cols.costs[j] - y0
		shares := cs.cols.shares[j*base : (j+1)*base]
		for i := 1; i < base; i++ {
			v -= λ * yBW[i-1] * shares[i]
		}
		return v
	}
}

// basisPerm builds the structural-column permutation mapping the
// previous solve's column positions onto the full dense table: old
// position j held the combination with key keptKeys[j], and for an
// unpruned dense table the packed key IS the enumeration index (Eq. 13).
// A nil keptKeys means the previous solve already used the full table —
// the identity (nil perm) applies.
func (s *Solver) basisPerm() []int {
	old := s.rs.keptKeys
	if old == nil {
		return nil
	}
	perm := make([]int, len(old))
	for j, key := range old {
		perm[j] = int(key)
	}
	return perm
}

// packedKeys returns the packed combination key of every column, reusing
// buf when it has capacity. For an unpruned dense table the keys equal
// the enumeration order, but storing them uniformly keeps the basis
// remap independent of which shape the previous solve took.
func packedKeys(m *model, cols *columns, buf []uint64) []uint64 {
	if cap(buf) < cols.len() {
		buf = make([]uint64, cols.len())
	}
	buf = buf[:cols.len()]
	for l, combo := range cols.combos {
		buf[l] = m.packKey(combo)
	}
	return buf
}

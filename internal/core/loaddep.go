package core

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// LoadModel describes how a path's effective characteristics respond to
// its own utilization (§IX-A: "as utilization increases, latency also
// increases" and "a mostly-saturated link … may exhibit a higher loss
// rate"). The zero value means load-independent characteristics.
type LoadModel struct {
	// QueueFactor adds M/M/1-style queueing delay QueueFactor·u/(1−u) at
	// utilization u (clamped below saturation). Zero disables.
	QueueFactor time.Duration
	// LossKnee and LossSlope add LossSlope·(u−LossKnee)/(1−LossKnee) of
	// extra loss once utilization passes the knee. LossSlope zero
	// disables.
	LossKnee  float64
	LossSlope float64
}

func (m LoadModel) validate(i int) error {
	if m.QueueFactor < 0 {
		return fmt.Errorf("core: load model %d: negative queue factor", i)
	}
	if m.LossKnee < 0 || m.LossKnee >= 1 || math.IsNaN(m.LossKnee) {
		return fmt.Errorf("core: load model %d: loss knee %v outside [0,1)", i, m.LossKnee)
	}
	if m.LossSlope < 0 || math.IsNaN(m.LossSlope) {
		return fmt.Errorf("core: load model %d: negative loss slope", i)
	}
	return nil
}

// zero reports whether the model changes nothing.
func (m LoadModel) zero() bool { return m.QueueFactor == 0 && m.LossSlope == 0 }

// apply returns the effective delay and loss of a base path at
// utilization u ∈ [0, 1].
func (m LoadModel) apply(base Path, u float64) (time.Duration, float64) {
	if u < 0 {
		u = 0
	}
	const uMax = 0.999 // keep u/(1-u) finite
	if u > uMax {
		u = uMax
	}
	delay := base.Delay
	if m.QueueFactor > 0 {
		delay += time.Duration(float64(m.QueueFactor) * u / (1 - u))
	}
	loss := base.Loss
	if m.LossSlope > 0 && u > m.LossKnee {
		loss += m.LossSlope * (u - m.LossKnee) / (1 - m.LossKnee)
		if loss > 1 {
			loss = 1
		}
	}
	return delay, loss
}

// PathLoad reports one path's converged operating point.
type PathLoad struct {
	// Utilization is Sᵢ/bᵢ under the returned solution.
	Utilization float64
	// EffectiveDelay and EffectiveLoss are the load-adjusted
	// characteristics the final solve used.
	EffectiveDelay time.Duration
	EffectiveLoss  float64
}

// LoadAwareOptions tunes the fixed-point iteration.
type LoadAwareOptions struct {
	// MaxIterations bounds the solve loop; zero means 50.
	MaxIterations int
	// Damping blends utilizations across iterations in (0, 1]; zero
	// means 0.5. Smaller is more stable, larger converges faster.
	Damping float64
	// Tolerance is the per-path utilization convergence threshold; zero
	// means 1e-3.
	Tolerance float64
	// UtilizationCap, when in (0, 1), caps every path's planned
	// utilization: the LP sees bandwidth bᵢ·cap and load responses are
	// evaluated at most at the cap. This is the §IX-A headroom remedy
	// for bistable configurations whose saturation delay exceeds the
	// lifetime (see SolveQualityLoadAware). Zero means no cap.
	UtilizationCap float64
}

func (o LoadAwareOptions) withDefaults() LoadAwareOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.5
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-3
	}
	if o.UtilizationCap <= 0 || o.UtilizationCap > 1 {
		o.UtilizationCap = 1
	}
	return o
}

// ErrLoadAwareDiverged reports that the §IX-A fixed point did not
// converge within the iteration budget.
var ErrLoadAwareDiverged = errors.New("core: load-aware solve did not converge")

// SolveQualityLoadAware solves the §IX-A variant where path delay and
// loss depend on the traffic the solution itself places on them. Since
// changes in x feed back into the LP coefficients, Eq. 10 becomes
// non-linear; following the paper's prescription, the solver iterates:
// solve the LP with current effective characteristics, measure per-path
// utilization, update effective delay/loss through each path's LoadModel
// (with damping), and repeat to a fixed point.
//
// models must have one entry per path (zero values for load-independent
// paths). The returned PathLoad slice reports the converged operating
// point. Returns ErrLoadAwareDiverged (wrapped) if oscillation persists.
//
// Caveat: a fixed point need not exist. If a path's saturation delay
// exceeds the lifetime (QueueFactor large relative to the deadline
// slack), the system is bistable — the LP saturates the path while it
// looks usable, which makes it unusable — and the iteration detects the
// resulting limit cycle as divergence. The §IX-A remedy is explicit
// headroom: set LoadAwareOptions.UtilizationCap (e.g. 0.9) so planned
// utilization, and hence the modeled queueing delay, stays below the
// cliff.
func SolveQualityLoadAware(n *Network, models []LoadModel, opts LoadAwareOptions) (*Solution, []PathLoad, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	if len(models) != len(n.Paths) {
		return nil, nil, fmt.Errorf("core: %d load models for %d paths", len(models), len(n.Paths))
	}
	for i, m := range models {
		if err := m.validate(i); err != nil {
			return nil, nil, err
		}
	}
	opts = opts.withDefaults()

	allZero := true
	for _, m := range models {
		if !m.zero() {
			allZero = false
		}
	}

	util := make([]float64, len(n.Paths))
	var sol *Solution
	eff := *n
	damping := opts.Damping
	prevDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Build the effective network at the current utilizations.
		eff.Paths = append([]Path(nil), n.Paths...)
		for i := range eff.Paths {
			d, l := models[i].apply(n.Paths[i], util[i])
			eff.Paths[i].Delay = d
			eff.Paths[i].Loss = l
			eff.Paths[i].Bandwidth = n.Paths[i].Bandwidth * opts.UtilizationCap
			eff.Paths[i].RandDelay = nil // load model works on fixed delays
		}
		var err error
		sol, err = SolveQuality(&eff)
		if err != nil {
			return nil, nil, err
		}
		if allZero {
			return sol, loads(n, models, util), nil
		}

		maxDelta := 0.0
		for i, p := range n.Paths {
			newU := sol.SentRate(i) / p.Bandwidth
			if newU > 1 {
				newU = 1
			}
			blended := (1-damping)*util[i] + damping*newU
			if d := math.Abs(blended - util[i]); d > maxDelta {
				maxDelta = d
			}
			util[i] = blended
		}
		if maxDelta < opts.Tolerance {
			return sol, loads(n, models, util), nil
		}
		// The LP's response to load is piecewise constant (combinations
		// flip feasibility at delay thresholds), so fixed points can sit
		// exactly on a discontinuity where undamped iteration cycles.
		// When progress stalls, shrink the step to settle onto the
		// threshold operating point.
		if maxDelta >= prevDelta {
			damping *= 0.7
		}
		prevDelta = maxDelta
	}
	return nil, nil, fmt.Errorf("core: after %d iterations: %w", opts.MaxIterations, ErrLoadAwareDiverged)
}

// loads reports the operating point at the final utilizations; effective
// characteristics are recomputed from util so the report is always
// self-consistent (the last solved network used the pre-blend values).
func loads(n *Network, models []LoadModel, util []float64) []PathLoad {
	out := make([]PathLoad, len(n.Paths))
	for i := range out {
		d, l := models[i].apply(n.Paths[i], util[i])
		out[i] = PathLoad{
			Utilization:    util[i],
			EffectiveDelay: d,
			EffectiveLoss:  l,
		}
	}
	return out
}

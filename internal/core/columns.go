package core

import (
	"math"
	"time"
)

// columns holds the per-combination LP coefficient columns of Eq. 10 in
// flat form: one delivery probability and cost per combination, plus the
// send-share matrix stored row-major (combination l's share of model path
// i at shares[l*base+i]). A columns value is computed in a single pass
// over the combination space and is shared between the LP build and the
// returned Solution, so it must not be mutated after construction.
type columns struct {
	delivery []float64 // p_l (Eq. 12)
	costs    []float64 // r_l (Eq. 16)
	shares   []float64 // nCols × base, row-major
	combos   []Combo   // headers into one backing array (dense) or owned slices
}

// len returns the number of columns currently held.
func (c *columns) len() int { return len(c.delivery) }

// newColumns allocates the flat column tables for nVars combinations of
// trans path digits: one backing array carries every Combo, so the whole
// structure costs five allocations regardless of nVars.
func newColumns(nVars, base, trans int) *columns {
	cols := &columns{
		delivery: make([]float64, nVars),
		costs:    make([]float64, nVars),
		shares:   make([]float64, nVars*base),
		combos:   make([]Combo, nVars),
	}
	backing := make([]int, nVars*trans)
	for l := 0; l < nVars; l++ {
		cols.combos[l] = Combo(backing[l*trans : (l+1)*trans])
	}
	return cols
}

// columnOf evaluates one combination's LP column — delivery probability,
// expected cost, and per-path send shares — in a single fused pass over
// its attempts. share must be a zeroed slice of length base; it is
// filled in place.
func (m *model) columnOf(combo []int, share []float64) (delivery, cost float64) {
	δ := m.net.Lifetime
	surv := 1.0
	var t time.Duration
	for _, i := range combo {
		p := &m.paths[i]
		share[i] += surv
		if i == 0 {
			// Blackhole: the data is deliberately dropped; later
			// attempts never happen and cost nothing.
			break
		}
		cost += surv * p.Cost
		arrival := t + p.Delay
		if arrival >= 0 && arrival <= δ { // guard overflow
			delivery += surv * (1 - p.Loss)
		}
		next := t + p.Delay + m.dmin
		if next < t { // overflow
			next = time.Duration(math.MaxInt64)
		}
		t = next
		surv *= p.Loss
		if surv == 0 {
			break
		}
	}
	return delivery, cost
}

// computeColumns enumerates every combination once with an odometer over
// the little-endian path digits (Eq. 13) and evaluates each column via
// columnOf — the allocation-light dense enumeration. digits is
// caller-provided scratch of length ≥ m.
func (m *model) computeColumns(digits []int) *columns {
	cols := newColumns(m.nVars, m.base, m.m)
	m.computeColumnsInto(cols, digits)
	return cols
}

// computeColumnsInto re-evaluates the dense column tables in place for a
// model whose coefficients (λ, µ, loss, delay) drifted but whose shape
// (path count, transmissions) did not: cols must have been built by
// computeColumns for the same (nVars, base, trans). Every entry is
// overwritten, so no allocation survives a re-solve — the heart of the
// incremental warm path. Callers holding a Solution that shares cols see
// it change underneath them; Solver.Resolve documents that contract.
func (m *model) computeColumnsInto(cols *columns, digits []int) {
	base, trans, nVars := m.base, m.m, m.nVars
	clear(cols.shares)
	digits = digits[:trans]
	for k := range digits {
		digits[k] = 0
	}
	for l := 0; l < nVars; l++ {
		combo := cols.combos[l]
		copy(combo, digits)
		cols.delivery[l], cols.costs[l] = m.columnOf(combo, cols.shares[l*base:(l+1)*base])

		// Odometer increment of the little-endian digits.
		for k := 0; k < trans; k++ {
			digits[k]++
			if digits[k] < base {
				break
			}
			digits[k] = 0
		}
	}
}

// appendColumn evaluates combo's column via eval (the objective-specific
// column evaluation: deterministic columnOf, or the random-delay pair
// tables) and appends it, copying the digits. Used by the dynamically
// grown column sets of the pruned-dense and column-generation solve
// paths.
func (c *columns) appendColumn(base int, eval func([]int, []float64) (float64, float64), combo []int) {
	start := len(c.shares)
	c.shares = append(c.shares, make([]float64, base)...)
	delivery, cost := eval(combo, c.shares[start:start+base])
	c.delivery = append(c.delivery, delivery)
	c.costs = append(c.costs, cost)
	c.combos = append(c.combos, append(Combo(nil), combo...))
}

// appendFrom copies column l of src, including the combination digits —
// sharing the Combo header would keep src's full dense backing array
// (all nVars × m digits) reachable for the pruned Solution's lifetime.
func (c *columns) appendFrom(src *columns, l, base int) {
	c.delivery = append(c.delivery, src.delivery[l])
	c.costs = append(c.costs, src.costs[l])
	c.shares = append(c.shares, src.shares[l*base:(l+1)*base]...)
	c.combos = append(c.combos, append(Combo(nil), src.combos[l]...))
}

package core

import (
	"math"
	"time"
)

// columns holds the per-combination LP coefficient columns of Eq. 10 in
// flat form: one delivery probability and cost per combination, plus the
// send-share matrix stored row-major (combination l's share of model path
// i at shares[l*base+i]). A columns value is computed in a single pass
// over the combination space and is shared between the LP build and the
// returned Solution, so it must not be mutated after construction.
type columns struct {
	delivery []float64 // p_l (Eq. 12)
	costs    []float64 // r_l (Eq. 16)
	shares   []float64 // nVars × base, row-major
	combos   []Combo   // headers into one backing array
}

// newColumns allocates the flat column tables for nVars combinations of
// trans path digits: one backing array carries every Combo, so the whole
// structure costs five allocations regardless of nVars.
func newColumns(nVars, base, trans int) *columns {
	cols := &columns{
		delivery: make([]float64, nVars),
		costs:    make([]float64, nVars),
		shares:   make([]float64, nVars*base),
		combos:   make([]Combo, nVars),
	}
	backing := make([]int, nVars*trans)
	for l := 0; l < nVars; l++ {
		cols.combos[l] = Combo(backing[l*trans : (l+1)*trans])
	}
	return cols
}

// computeColumns enumerates every combination once with an odometer over
// the little-endian path digits (Eq. 13) and evaluates delivery
// probability, send shares, and cost in a single fused pass — the
// allocation-light replacement for per-combination combo/sendShare/
// attemptSchedule calls. digits is caller-provided scratch of length ≥ m.
func (m *model) computeColumns(digits []int) *columns {
	base, trans, nVars := m.base, m.m, m.nVars
	cols := newColumns(nVars, base, trans)
	digits = digits[:trans]
	for k := range digits {
		digits[k] = 0
	}
	δ := m.net.Lifetime
	for l := 0; l < nVars; l++ {
		combo := cols.combos[l]
		copy(combo, digits)

		share := cols.shares[l*base : (l+1)*base]
		var deliver, cost float64
		surv := 1.0
		var t time.Duration
		for _, i := range combo {
			p := &m.paths[i]
			share[i] += surv
			if i == 0 {
				// Blackhole: the data is deliberately dropped; later
				// attempts never happen and cost nothing.
				break
			}
			cost += surv * p.Cost
			arrival := t + p.Delay
			if arrival >= 0 && arrival <= δ { // guard overflow
				deliver += surv * (1 - p.Loss)
			}
			next := t + p.Delay + m.dmin
			if next < t { // overflow
				next = time.Duration(math.MaxInt64)
			}
			t = next
			surv *= p.Loss
			if surv == 0 {
				break
			}
		}
		cols.delivery[l] = deliver
		cols.costs[l] = cost

		// Odometer increment of the little-endian digits.
		for k := 0; k < trans; k++ {
			digits[k]++
			if digits[k] < base {
				break
			}
			digits[k] = 0
		}
	}
	return cols
}

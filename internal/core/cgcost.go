package core

import (
	"errors"
	"fmt"
	"math"

	"dmc/internal/lp"
)

// minCostFeasSlack is the relative slack allowed between the certified
// maximum quality and the requested floor before declaring the floor
// unattainable: a floor within solver tolerance of the optimum is
// handed to the master's own Phase I rather than rejected outright,
// matching the dense path's feasibility verdict.
const minCostFeasSlack = 1e-9

// SolveMinCostCG solves the §VI-A cost minimization by column
// generation with a pooled reusable Solver; see Solver.SolveMinCostCG.
func SolveMinCostCG(n *Network, minQuality float64) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveMinCostCG(n, minQuality)
	solverPool.Put(s)
	return sol, err
}

// minCostObjective is the §VI-A master: minimize the expected total
// cost per second (Eq. 21) over the bandwidth rows, the quality floor
// p·x ≥ minQuality (Eq. 22's constraint), and the conservation row. No
// cost row: the formulation replaces the budget µ with the floor.
type minCostObjective struct {
	m          *model
	pr         *pricer
	minQuality float64
	obj        []float64 // λ·costₗ per pooled column, rebuilt per assembly
	extra      lp.Constraint
}

func (o *minCostObjective) assembleInto(sc *asmScratch, cs *colSet) *lp.Problem {
	n := cs.cols.len()
	o.obj = grow(o.obj, n)
	λ := o.m.net.Rate
	for l, c := range cs.cols.costs[:n] {
		o.obj[l] = λ * c // Eq. 21: (λ·cᵢ) + (λ·τᵢ·cⱼ), generalized
	}
	o.extra = lp.Constraint{Name: "quality", Coeffs: cs.cols.delivery[:n:n], Rel: lp.GE, RHS: o.minQuality}
	return o.m.assembleProblemInto(sc, lp.Minimize, o.obj, &cs.cols, &o.extra, false)
}

func (o *minCostObjective) evalColumn(combo []int, share []float64) (float64, float64) {
	return o.m.columnOf(combo, share)
}

// reprice unpacks the min-cost master duals: bandwidth rows first, then
// the quality floor, then the conservation row.
func (o *minCostObjective) reprice(duals []float64) {
	base := o.m.base
	o.pr.repriceMinCost(duals[:base-1], duals[base-1], duals[base])
}

func (o *minCostObjective) price(floor float64) [][]int { return o.pr.price(floor) }

func (o *minCostObjective) seed(cs *colSet, scratch []int) { o.m.seedColumns(cs, o, scratch) }

// grow resizes a float64 workspace, reusing capacity. Contents are
// unspecified; callers overwrite every entry they read.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2)
	}
	return buf[:n]
}

// SolveMinCostCG solves the §VI-A cost minimization without
// materializing the (n+1)^m combination space. It runs in two stages
// over one shared column pool: a feasibility stage grows the pool with
// quality-maximization pricing rounds just until the restricted master
// can reach the quality floor (or certifies, at the true quality
// optimum, that no sending strategy can — ErrInfeasible), then the
// min-cost stage prices columns by cost-reduced duals until the master
// cost is certified minimal. Both stages share the incremental simplex:
// freshly priced columns are appended onto the hot tableau instead of
// re-solving each master from scratch.
//
// Most callers want SolveMinCost, which dispatches here automatically
// above the dense threshold.
func (s *Solver) SolveMinCostCG(n *Network, minQuality float64) (*Solution, error) {
	if math.IsNaN(minQuality) || minQuality < 0 || minQuality > 1 {
		return nil, fmt.Errorf("core: min quality %v outside [0,1]", minQuality)
	}
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	pr := newPricer(m)
	mo := &minCostObjective{m: m, pr: pr, minQuality: minQuality}
	cs := newColSet()
	mo.seed(cs, s.scratch(m.m))
	sol, _, err := s.solveMinCostCG(nil, m, cs, mo, nil, cgPriceTol, false)
	return sol, err
}

// solveMinCostCG is the two-stage min-cost column-generation core
// shared by the one-shot and incremental-resolve entry points. When
// skipFeasStage is set (a warm re-solve whose retained pool supported
// the floor last time), the feasibility stage is tried only if the
// min-cost master actually comes back infeasible under the drifted
// coefficients. Returns the solution and the final master LP solution
// (whose duals the resolve path stashes for pool trimming).
func (s *Solver) solveMinCostCG(sc *asmScratch, m *model, cs *colSet, mo *minCostObjective, basis *lp.Basis, certTol float64, skipFeasStage bool) (*Solution, *lp.Solution, error) {
	feasIters := 0
	if !skipFeasStage {
		var err error
		feasIters, err = s.growPoolToQualityFloor(sc, m, cs, mo, certTol)
		if err != nil {
			return nil, nil, err
		}
	}
	prob, lpSol, iters, firstWarm, err := s.runCG(sc, m, cs, mo, basis, certTol, certTol, nil)
	if errors.Is(err, errMasterInfeasible) && skipFeasStage {
		// The drift pushed the floor beyond the retained pool: grow it
		// and retry once (cold master — the basis belongs to the old,
		// now-infeasible restricted problem).
		feasIters, err = s.growPoolToQualityFloor(sc, m, cs, mo, certTol)
		if err != nil {
			return nil, nil, err
		}
		prob, lpSol, iters, firstWarm, err = s.runCG(sc, m, cs, mo, nil, certTol, certTol, nil)
	}
	if errors.Is(err, errMasterInfeasible) {
		// The pool provably reaches the floor's neighborhood, yet the
		// master's own Phase I rejects it: the floor sits right at the
		// feasibility boundary. Side with the authoritative Phase I.
		return nil, nil, fmt.Errorf("core: quality %v unattainable on this network: %w", mo.minQuality, ErrInfeasible)
	}
	if err != nil {
		return nil, nil, err
	}

	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, 0, cs.pos)
	sol.Stats = SolveStats{
		Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: feasIters + iters,
		PhaseISkipped: firstWarm,
	}
	// The LP objective is cost; recompute the achieved quality from the
	// solution, exactly as the dense path does.
	var q float64
	for l, x := range lpSol.X {
		q += x * cs.cols.delivery[l]
	}
	sol.Quality = clamp01(q)
	return sol, lpSol, nil
}

// growPoolToQualityFloor runs quality-maximization pricing rounds until
// the restricted master can reach the §VI-A quality floor, stopping the
// moment the master's optimal quality clears it (no certification
// needed — the pool is then provably sufficient). If the rounds instead
// certify the true quality optimum below the floor, no strategy over
// the full combination space can meet it: ErrInfeasible. Returns the
// master-solve count.
func (s *Solver) growPoolToQualityFloor(sc *asmScratch, m *model, cs *colSet, mo *minCostObjective, certTol float64) (int, error) {
	minQ := mo.minQuality
	qo := &qualityObjective{m: m, pr: mo.pr, costRow: false}
	stop := func(sol *lp.Solution) bool { return sol.Objective >= minQ }
	_, qSol, iters, _, err := s.runCG(sc, m, cs, qo, nil, certTol, certTol, stop)
	if err != nil {
		return iters, fmt.Errorf("core: min-cost feasibility stage: %w", err)
	}
	if qSol.Objective < minQ-minCostFeasSlack*(1+minQ) {
		return iters, fmt.Errorf("core: quality %v unattainable on this network (maximum %v): %w",
			minQ, clamp01(qSol.Objective), ErrInfeasible)
	}
	return iters, nil
}

package core

import (
	"errors"
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"time"
)

// minCostSolvers returns one solver per min-cost solve path: automatic
// dispatch (dense at test sizes), forced dominance pruning, and forced
// column generation.
func minCostSolvers() (dense, pruned, cg *Solver) {
	dense = NewSolver()
	pruned = NewSolver()
	pruned.PruneThreshold = 1
	pruned.DenseThreshold = DenseLimit
	cg = NewSolver()
	cg.DenseThreshold = -1
	return
}

// TestMinCostCGMatchesExact is the §VI-A differential property test: on
// ≥100 randomized networks — including cost-free, lossless, and m = 1
// edges — the dense, pruned, and column-generation min-cost solves must
// agree with the exact rational simplex on the optimal cost to 1e-6
// relative, and their solutions must meet the quality floor.
func TestMinCostCGMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc057, 0x1))
	dense, pruned, cg := minCostSolvers()
	for trial := 0; trial < 120; trial++ {
		paths := 2 + rng.IntN(3)         // 2–4 paths
		transmissions := 1 + rng.IntN(3) // 1–3 transmissions (m = 1 edge included)
		if paths == 4 && transmissions == 3 {
			transmissions = 2 // 125 exact rational variables is too slow under -race
		}
		net := diffRandomNetwork(rng, paths, transmissions)
		switch trial % 5 {
		case 3: // cost-free edge: the optimum is 0 by dropping nothing extra
			for i := range net.Paths {
				net.Paths[i].Cost = 0
			}
		case 4: // lossless edge: retransmissions never fire
			for i := range net.Paths {
				net.Paths[i].Loss = 0
			}
		}

		enet, err := ExactFromFloat(net)
		if err != nil {
			t.Fatalf("trial %d: exact conversion: %v", trial, err)
		}
		qsol, err := SolveQualityExact(enet)
		if err != nil {
			t.Fatalf("trial %d: exact quality solve: %v", trial, err)
		}
		qmax, _ := qsol.Quality.Float64()

		// Floors: zero, mid-range, and near the achievable optimum.
		for _, frac := range []float64{0, 0.5, 0.95} {
			floor := qmax * frac
			esol, err := SolveMinCostExact(enet, new(big.Rat).SetFloat64(floor))
			if err != nil {
				t.Fatalf("trial %d floor %v: exact min-cost: %v", trial, floor, err)
			}
			exactCost, _ := esol.Cost.Float64()

			for name, s := range map[string]*Solver{"dense": dense, "pruned": pruned, "cg": cg} {
				sol, err := s.SolveMinCost(net, floor)
				if err != nil {
					t.Fatalf("trial %d floor %v: %s min-cost: %v", trial, floor, name, err)
				}
				if diff := math.Abs(sol.Cost() - exactCost); diff > 1e-6*(1+exactCost) {
					t.Errorf("trial %d (paths=%d m=%d floor=%v): %s cost %v vs exact %v (diff %v, dispatch %v)",
						trial, paths, transmissions, floor, name, sol.Cost(), exactCost, diff, sol.Stats.Dispatch)
				}
				if sol.Quality < floor-1e-6 {
					t.Errorf("trial %d floor %v: %s quality %v below floor", trial, floor, name, sol.Quality)
				}
				var mass float64
				for _, x := range sol.X {
					mass += x
				}
				if math.Abs(mass-1) > 1e-6 {
					t.Errorf("trial %d floor %v: %s split mass %v", trial, floor, name, mass)
				}
			}
		}

		// Infeasible floor: everything above the certified quality
		// optimum must report ErrInfeasible on every path.
		if qmax < 0.99 {
			floor := qmax + 0.5*(1-qmax)
			for name, s := range map[string]*Solver{"dense": dense, "cg": cg} {
				if _, err := s.SolveMinCost(net, floor); !errors.Is(err, ErrInfeasible) {
					t.Errorf("trial %d: %s accepted infeasible floor %v (qmax %v): %v",
						trial, name, floor, qmax, err)
				}
			}
		}
	}
}

// TestMinCostCGStats: the CG dispatch must populate SolveStats exactly
// like the quality path does.
func TestMinCostCGStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc057, 0x2))
	_, _, cg := minCostSolvers()
	net := diffRandomNetwork(rng, 4, 2)
	sol, err := cg.SolveMinCost(net, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Errorf("dispatch %v, want %v", sol.Stats.Dispatch, DispatchCG)
	}
	if sol.Stats.Columns <= 0 || sol.Stats.CGIterations <= 0 {
		t.Errorf("stats not populated: %+v", sol.Stats)
	}
	dsol, err := NewSolver().SolveMinCost(net, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if dsol.Stats.Dispatch != DispatchDense || dsol.Stats.Columns != 25 {
		t.Errorf("dense stats not populated: %+v", dsol.Stats)
	}
}

// TestMinCostCGScale is the headline acceptance check: a 40 paths × 4
// transmissions network (2.8M combinations, beyond what the dense path
// used to reach for min-cost) solves via automatic CG dispatch, meets
// its floor, and its cost is consistent with the quality-max solve of
// the same network.
func TestMinCostCGScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CG-scale min-cost solve is slow under -short")
	}
	rng := rand.New(rand.NewPCG(0xc057, 0x3))
	net := diffRandomNetwork(rng, 40, 4)
	qsol, err := SolveQuality(net)
	if err != nil {
		t.Fatal(err)
	}
	floor := qsol.Quality * 0.9
	sol, err := SolveMinCost(net, floor)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Fatalf("dispatch %v, want %v (stats %+v)", sol.Stats.Dispatch, DispatchCG, sol.Stats)
	}
	if sol.Quality < floor-1e-6 {
		t.Fatalf("quality %v below floor %v", sol.Quality, floor)
	}
	// The min-cost optimum at a floor below the budgeted quality optimum
	// can never cost more than the quality-max strategy, which also
	// meets the floor.
	if sol.Cost() > qsol.Cost()*(1+1e-6)+1e-9 {
		t.Fatalf("min-cost %v exceeds the quality-max strategy's cost %v", sol.Cost(), qsol.Cost())
	}
}

// TestMinCostOverflowDispatchesToCG is the satellite regression for the
// 3001^6-style overflow path: a combination count far past DenseLimit
// (31^6 ≈ 888M here) used to stop SolveMinCost dead with the dense-cap
// error; it must now dispatch to column generation and solve.
func TestMinCostOverflowDispatchesToCG(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc057, 0x4))
	net := diffRandomNetwork(rng, 30, 6)
	sol, err := SolveMinCost(net, 0.5)
	if err != nil {
		t.Fatalf("SolveMinCost past DenseLimit: %v", err)
	}
	if sol.Stats.Dispatch != DispatchCG {
		t.Fatalf("dispatch %v, want %v", sol.Stats.Dispatch, DispatchCG)
	}
	if sol.Quality < 0.5-1e-6 {
		t.Fatalf("quality %v below floor", sol.Quality)
	}
}

// TestMinCostCGArgErrors mirrors the dense path's argument validation.
func TestMinCostCGArgErrors(t *testing.T) {
	_, _, cg := minCostSolvers()
	n := costedNetwork()
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := cg.SolveMinCost(n, q); err == nil {
			t.Errorf("quality %v accepted", q)
		}
	}
	bad := *n
	bad.Rate = 0
	if _, err := cg.SolveMinCost(&bad, 0.5); err == nil {
		t.Error("invalid network accepted")
	}
}

// TestMinCostCGQualityOne pins the boundary floor 1.0 on the costed
// two-path network whose exact answer is known in closed form (cost 4λ
// via cheap→pricey); the CG path must find it like the dense path does.
func TestMinCostCGQualityOne(t *testing.T) {
	_, _, cg := minCostSolvers()
	n := costedNetwork()
	s, err := cg.SolveMinCost(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality < 1-1e-9 {
		t.Fatalf("quality %v < 1", s.Quality)
	}
	if want := 4.0 * 10 * Mbps; math.Abs(s.Cost()-want) > 1 {
		t.Errorf("cost = %v, want %v", s.Cost(), want)
	}
	if f := s.Fraction(Combo{1, 2}); math.Abs(f-1) > 1e-9 {
		t.Errorf("x_{cheap,pricey} = %v, want 1", f)
	}
}

// TestMinCostCGImpossibleFloorOnLossyNetwork: a network that cannot
// reach quality 1 must certify infeasibility through the CG feasibility
// stage, not loop or mis-certify.
func TestMinCostCGImpossibleFloorOnLossyNetwork(t *testing.T) {
	_, _, cg := minCostSolvers()
	n := NewNetwork(10*Mbps, 800*time.Millisecond,
		Path{Bandwidth: 50 * Mbps, Delay: 200 * time.Millisecond, Loss: 0.3, Cost: 1},
	)
	n.Transmissions = 2
	// Single lossy path: quality caps at 1 − 0.3² = 0.91.
	if _, err := cg.SolveMinCost(n, 0.95); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if s, err := cg.SolveMinCost(n, 0.90); err != nil || s.Quality < 0.90-1e-9 {
		t.Fatalf("feasible floor failed: %v (quality %v)", err, s.Quality)
	}
}

package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestRiskReportTightSolutionExceedsHalfTheTime(t *testing.T) {
	// The LP saturates path 2 in expectation; with random per-packet
	// draws, realized usage exceeds the cap ≈ half the time (§IX-C's
	// motivation).
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	rep, err := s.RiskReport(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bandwidth) != 2 {
		t.Fatalf("report size %d", len(rep.Bandwidth))
	}
	// Path 2 is exactly tight: P ≈ 0.5.
	if rep.Bandwidth[1] < 0.35 || rep.Bandwidth[1] > 0.65 {
		t.Errorf("tight path exceedance %v, want ≈0.5", rep.Bandwidth[1])
	}
	if rep.Cost != 0 {
		t.Errorf("cost exceedance %v with unlimited budget", rep.Cost)
	}
	if rep.Max() < rep.Bandwidth[1] {
		t.Error("Max() wrong")
	}
	if rep.PacketsPerSecond < 10000 || rep.PacketsPerSecond > 11000 {
		t.Errorf("pps = %v", rep.PacketsPerSecond)
	}
}

func TestRiskReportSlackSolutionIsSafe(t *testing.T) {
	// Light load: nothing close to any cap → negligible probabilities.
	n := tableIIINetwork(10, 800*time.Millisecond)
	s := solveQ(t, n)
	rep, err := s.RiskReport(1024)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max() > 1e-6 {
		t.Errorf("slack solution risk %v", rep.Max())
	}
}

func TestRiskReportArgErrors(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	if _, err := s.RiskReport(0); err == nil {
		t.Error("zero packet size accepted")
	}
	if _, err := s.RiskReport(-5); err == nil {
		t.Error("negative packet size accepted")
	}
	tiny := NewNetwork(10, time.Second, Path{Bandwidth: 100, Delay: time.Millisecond})
	ts := solveQ(t, tiny)
	if _, err := ts.RiskReport(1024); err == nil {
		t.Error("sub-1-pps workload accepted")
	}
}

func TestSolveQualityRiskAdjusted(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	plain := solveQ(t, n)
	sol, rep, err := SolveQualityRiskAdjusted(n, RiskOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max() > 0.05 {
		t.Errorf("adjusted risk %v > 0.05", rep.Max())
	}
	// Safety costs quality, but only a little.
	if sol.Quality >= plain.Quality {
		t.Errorf("risk-adjusted quality %v not below tight quality %v", sol.Quality, plain.Quality)
	}
	if sol.Quality < plain.Quality-0.05 {
		t.Errorf("risk adjustment overshot: %v vs %v", sol.Quality, plain.Quality)
	}
}

func TestSolveQualityRiskAdjustedCostRow(t *testing.T) {
	n := NewNetwork(10*Mbps, 800*time.Millisecond,
		Path{Bandwidth: 50 * Mbps, Delay: 200 * time.Millisecond, Loss: 0.3, Cost: 1},
		Path{Bandwidth: 50 * Mbps, Delay: 100 * time.Millisecond, Loss: 0, Cost: 10},
	)
	n.CostBound = 40 * Mbps // exactly the cost of the all-(1,2) strategy
	sol, rep, err := SolveQualityRiskAdjusted(n, RiskOptions{Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost > 0.02 {
		t.Errorf("cost exceedance %v", rep.Cost)
	}
	if sol.Cost() > n.CostBound {
		t.Errorf("expected cost %v above budget %v", sol.Cost(), n.CostBound)
	}
}

func TestSolveQualityRiskAdjustedValidation(t *testing.T) {
	bad := &Network{}
	if _, _, err := SolveQualityRiskAdjusted(bad, RiskOptions{}); err == nil {
		t.Error("invalid network accepted")
	}
	// Unattainable epsilon with no shrink room: epsilon so small the loop
	// gives up (quality floor at 0 still leaves pps variance on used
	// paths... use a tiny round budget to force the error).
	n := tableIIINetwork(90, 800*time.Millisecond)
	_, _, err := SolveQualityRiskAdjusted(n, RiskOptions{Epsilon: 1e-12, MaxRounds: 1})
	if !errors.Is(err, ErrRiskUnattainable) {
		t.Errorf("want ErrRiskUnattainable, got %v", err)
	}
}

// TestRiskReportMonteCarlo validates the Gaussian model against direct
// simulation of per-packet draws.
func TestRiskReportMonteCarlo(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	s := solveQ(t, n)
	rep, err := s.RiskReport(1024)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate one-second windows of weighted-random scheduling with real
	// Bernoulli losses and count path-2 overflows.
	rng := rand.New(rand.NewSource(77))
	pps := int(rep.PacketsPerSecond)
	bits := 1024 * 8.0
	cum := make([]float64, len(s.X))
	acc := 0.0
	for l, x := range s.X {
		acc += x
		cum[l] = acc
	}
	combos := s.Combos()
	var exceed2 int
	const windows = 400
	for w := 0; w < windows; w++ {
		var used2 float64
		for p := 0; p < pps; p++ {
			u := rng.Float64()
			l := 0
			for l < len(cum) && cum[l] < u {
				l++
			}
			if l >= len(combos) {
				l = len(combos) - 1
			}
			// Attempt k fires iff every earlier attempt was lost; the
			// blackhole ends the chain.
			for _, pathIdx := range combos[l] {
				if pathIdx == 0 {
					break
				}
				if pathIdx == 2 {
					used2 += bits
				}
				if lost := rng.Float64() < n.Paths[pathIdx-1].Loss; !lost {
					break
				}
			}
		}
		if used2 > n.Paths[1].Bandwidth {
			exceed2++
		}
	}
	mc := float64(exceed2) / windows
	if math.Abs(mc-rep.Bandwidth[1]) > 0.12 {
		t.Errorf("Monte-Carlo exceedance %v vs Gaussian %v", mc, rep.Bandwidth[1])
	}
}
